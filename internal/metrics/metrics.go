// Package metrics computes the paper's four evaluation metrics from
// protocol events (§6.1):
//
//   - Access failure probability: the fraction of all replicas in the system
//     that are damaged, averaged over time (a time integral of the damaged
//     replica count).
//   - Delay ratio: mean time between successful polls under attack divided
//     by the same measurement without the attack.
//   - Coefficient of friction: average loyal effort per successful poll
//     under attack divided by the same measurement without the attack.
//   - Cost ratio: total attacker effort divided by total defender effort.
//
// A Collector gathers the raw ingredients for one run; ratios against a
// baseline run are taken by the experiment package.
package metrics

import (
	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

// replicaKey identifies one (peer, AU) replica.
type replicaKey struct {
	peer ids.PeerID
	au   content.AUID
}

// Collector implements protocol.Observer and accumulates raw statistics for
// one simulation run.
type Collector struct {
	replicas map[replicaKey]content.Replica
	damaged  map[replicaKey]bool

	lastT           sched.Time
	damagedIntegral float64 // replica-nanoseconds damaged

	// Successful-poll interarrival bookkeeping. gapSum/gapCount track
	// observed consecutive-success gaps (diagnostic); the headline
	// MeanSuccessInterval uses a censoring-aware renewal estimator.
	lastSuccess map[replicaKey]sched.Time
	gapSum      float64
	gapCount    int

	// Counters.
	Polls         map[protocol.Outcome]uint64
	Alarms        uint64
	DamageEvents  uint64
	RepairsFixed  uint64
	VotesSupplied uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return NewCollectorSized(0)
}

// NewCollectorSized returns an empty collector with its accumulator maps
// preallocated for the expected replica count (peers × AUs), so population
// registration and steady-state tracking do not grow maps incrementally.
func NewCollectorSized(replicas int) *Collector {
	if replicas < 0 {
		replicas = 0
	}
	return &Collector{
		replicas:    make(map[replicaKey]content.Replica, replicas),
		damaged:     make(map[replicaKey]bool, replicas),
		lastSuccess: make(map[replicaKey]sched.Time, replicas),
		Polls:       make(map[protocol.Outcome]uint64, 4),
	}
}

// RegisterReplica announces a (peer, AU) replica at simulation start.
func (c *Collector) RegisterReplica(peer ids.PeerID, au content.AUID, r content.Replica) {
	k := replicaKey{peer, au}
	c.replicas[k] = r
	if r.Damaged() {
		c.damaged[k] = true
	}
}

// advance integrates the damaged-replica count up to now.
func (c *Collector) advance(now sched.Time) {
	if now > c.lastT {
		c.damagedIntegral += float64(len(c.damaged)) * float64(now-c.lastT)
		c.lastT = now
	}
}

// OnDamage records a storage damage event (called by the damage injector
// after corrupting the replica).
func (c *Collector) OnDamage(peer ids.PeerID, au content.AUID, now sched.Time) {
	c.advance(now)
	c.DamageEvents++
	k := replicaKey{peer, au}
	if r := c.replicas[k]; r != nil && r.Damaged() {
		c.damaged[k] = true
	}
}

// RepairApplied implements protocol.Observer.
func (c *Collector) RepairApplied(peer ids.PeerID, au content.AUID, block int, now sched.Time) {
	c.advance(now)
	k := replicaKey{peer, au}
	if r := c.replicas[k]; r != nil && !r.Damaged() {
		if c.damaged[k] {
			c.RepairsFixed++
			delete(c.damaged, k)
		}
	}
}

// PollConcluded implements protocol.Observer.
func (c *Collector) PollConcluded(peer ids.PeerID, au content.AUID, o protocol.Outcome, now sched.Time) {
	c.advance(now)
	c.Polls[o]++
	if o != protocol.OutcomeSuccess {
		return
	}
	k := replicaKey{peer, au}
	if last, ok := c.lastSuccess[k]; ok {
		c.gapSum += float64(now - last)
		c.gapCount++
	}
	c.lastSuccess[k] = now
}

// Alarm implements protocol.Observer.
func (c *Collector) Alarm(peer ids.PeerID, au content.AUID, now sched.Time) {
	c.Alarms++
}

// VoteSupplied implements protocol.Observer.
func (c *Collector) VoteSupplied(voter, poller ids.PeerID, au content.AUID, now sched.Time) {
	c.VotesSupplied++
}

// Finalize integrates the tail of the run. Call once, at the horizon.
func (c *Collector) Finalize(end sched.Time) {
	c.advance(end)
}

// AccessFailureProbability returns the time-averaged fraction of damaged
// replicas over [0, end] (Finalize must have been called with end).
func (c *Collector) AccessFailureProbability() float64 {
	if len(c.replicas) == 0 || c.lastT == 0 {
		return 0
	}
	return c.damagedIntegral / (float64(len(c.replicas)) * float64(c.lastT))
}

// MeanSuccessInterval returns the mean time between successful polls on the
// same replica, in nanoseconds, using the censoring-aware renewal estimator
// (total replica observation time divided by total successes): replicas that
// never complete a poll during an attack lengthen the estimate rather than
// silently dropping out, matching the paper's delay-ratio intent.
func (c *Collector) MeanSuccessInterval() (float64, bool) {
	succ := c.Polls[protocol.OutcomeSuccess]
	if succ == 0 || len(c.replicas) == 0 || c.lastT == 0 {
		return 0, false
	}
	return float64(c.lastT) * float64(len(c.replicas)) / float64(succ), true
}

// ObservedGapMean returns the mean of directly observed consecutive-success
// gaps (biased under censoring; exposed for diagnostics and tests).
func (c *Collector) ObservedGapMean() (float64, bool) {
	if c.gapCount == 0 {
		return 0, false
	}
	return c.gapSum / float64(c.gapCount), true
}

// SuccessfulPolls returns the count of successful polls.
func (c *Collector) SuccessfulPolls() uint64 { return c.Polls[protocol.OutcomeSuccess] }

// TotalPolls returns the count of concluded polls of all outcomes.
func (c *Collector) TotalPolls() uint64 {
	var n uint64
	for _, v := range c.Polls {
		n += v
	}
	return n
}

// DamagedNow returns the current number of damaged replicas.
func (c *Collector) DamagedNow() int { return len(c.damaged) }

var _ protocol.Observer = (*Collector)(nil)
