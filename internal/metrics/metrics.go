// Package metrics computes the paper's four evaluation metrics from
// protocol events (§6.1):
//
//   - Access failure probability: the fraction of all replicas in the system
//     that are damaged, averaged over time (a time integral of the damaged
//     replica count).
//   - Delay ratio: mean time between successful polls under attack divided
//     by the same measurement without the attack.
//   - Coefficient of friction: average loyal effort per successful poll
//     under attack divided by the same measurement without the attack.
//   - Cost ratio: total attacker effort divided by total defender effort.
//
// A Collector gathers the raw ingredients for one run; ratios against a
// baseline run are taken by the experiment package.
//
// Accumulation is partition-invariant by construction: every time integral
// is kept as integer nanoseconds per replica and only summed (in replica
// registration order) when an aggregate is read. A sharded run keeps one
// Collector per shard, each observing a disjoint replica set, and merges
// them in canonical shard order at the end — producing bit-identical
// aggregates at any shard count.
package metrics

import (
	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

// replicaKey identifies one (peer, AU) replica.
type replicaKey struct {
	peer ids.PeerID
	au   content.AUID
}

// noTime marks "no timestamp recorded" in per-replica state.
const noTime = sched.Time(-1)

// repState is the dense per-replica accumulator. Time integrals stay integer
// nanoseconds so their order of accumulation cannot perturb the result.
type repState struct {
	r            content.Replica
	damagedSince sched.Time // noTime when currently undamaged
	damagedNs    int64      // closed damaged-interval total
	lastSuccess  sched.Time // noTime before the first successful poll
	gapNs        int64      // observed consecutive-success gap total
	gapCount     uint64
}

// Collector implements protocol.Observer and accumulates raw statistics for
// one simulation run (or one shard of a run; see Merge).
type Collector struct {
	reps []repState // dense, in registration order — the canonical order
	idx  map[replicaKey]int32

	damagedCount int
	lastT        sched.Time

	// Counters.
	Polls         map[protocol.Outcome]uint64
	Alarms        uint64
	DamageEvents  uint64
	RepairsFixed  uint64
	VotesSupplied uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return NewCollectorSized(0)
}

// NewCollectorSized returns an empty collector preallocated for the expected
// replica count (peers × AUs), so population registration and steady-state
// tracking do not grow the index incrementally.
func NewCollectorSized(replicas int) *Collector {
	if replicas < 0 {
		replicas = 0
	}
	return &Collector{
		reps:  make([]repState, 0, replicas),
		idx:   make(map[replicaKey]int32, replicas),
		Polls: make(map[protocol.Outcome]uint64, 4),
	}
}

// RegisterReplica announces a (peer, AU) replica at simulation start.
func (c *Collector) RegisterReplica(peer ids.PeerID, au content.AUID, r content.Replica) {
	k := replicaKey{peer, au}
	st := repState{r: r, damagedSince: noTime, lastSuccess: noTime}
	if r.Damaged() {
		st.damagedSince = 0
		c.damagedCount++
	}
	c.idx[k] = int32(len(c.reps))
	c.reps = append(c.reps, st)
}

// touch advances the latest-event watermark.
func (c *Collector) touch(now sched.Time) {
	if now > c.lastT {
		c.lastT = now
	}
}

// OnDamage records a storage damage event (called by the damage injector
// after corrupting the replica).
func (c *Collector) OnDamage(peer ids.PeerID, au content.AUID, now sched.Time) {
	c.touch(now)
	c.DamageEvents++
	i, ok := c.idx[replicaKey{peer, au}]
	if !ok {
		return
	}
	st := &c.reps[i]
	if st.damagedSince == noTime && st.r.Damaged() {
		st.damagedSince = now
		c.damagedCount++
	}
}

// RepairApplied implements protocol.Observer. The poll ID is ignored: the
// paper's metrics are per-replica time integrals, not per-poll spans.
func (c *Collector) RepairApplied(peer ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	c.touch(now)
	i, ok := c.idx[replicaKey{peer, au}]
	if !ok {
		return
	}
	st := &c.reps[i]
	if st.damagedSince != noTime && !st.r.Damaged() {
		st.damagedNs += int64(now - st.damagedSince)
		st.damagedSince = noTime
		c.damagedCount--
		c.RepairsFixed++
	}
}

// PollConcluded implements protocol.Observer.
func (c *Collector) PollConcluded(peer ids.PeerID, au content.AUID, pollID uint64, o protocol.Outcome, started, now sched.Time) {
	c.touch(now)
	c.Polls[o]++
	if o != protocol.OutcomeSuccess {
		return
	}
	i, ok := c.idx[replicaKey{peer, au}]
	if !ok {
		return
	}
	st := &c.reps[i]
	if st.lastSuccess != noTime {
		st.gapNs += int64(now - st.lastSuccess)
		st.gapCount++
	}
	st.lastSuccess = now
}

// Alarm implements protocol.Observer.
func (c *Collector) Alarm(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	c.Alarms++
}

// VoteSupplied implements protocol.Observer.
func (c *Collector) VoteSupplied(voter, poller ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	c.VotesSupplied++
}

// Merge folds other into c: replicas append in other's registration order,
// counters add. Call on unfinalized collectors, in canonical shard order, so
// the merged replica sequence is identical at every shard count; then
// Finalize the merged collector once. other must not be used afterwards.
func (c *Collector) Merge(other *Collector) {
	base := int32(len(c.reps))
	c.reps = append(c.reps, other.reps...)
	for k, i := range other.idx {
		c.idx[k] = base + i
	}
	c.damagedCount += other.damagedCount
	c.touch(other.lastT)
	for o, n := range other.Polls {
		c.Polls[o] += n
	}
	c.Alarms += other.Alarms
	c.DamageEvents += other.DamageEvents
	c.RepairsFixed += other.RepairsFixed
	c.VotesSupplied += other.VotesSupplied
}

// Finalize closes open damage intervals at the horizon. Call once, at the
// end of the run.
func (c *Collector) Finalize(end sched.Time) {
	c.touch(end)
	for i := range c.reps {
		st := &c.reps[i]
		if st.damagedSince != noTime {
			st.damagedNs += int64(c.lastT - st.damagedSince)
			st.damagedSince = c.lastT
		}
	}
}

// damagedIntegral sums closed damage intervals in registration order.
func (c *Collector) damagedIntegral() float64 {
	var f float64
	for i := range c.reps {
		f += float64(c.reps[i].damagedNs)
	}
	return f
}

// AccessFailureProbability returns the time-averaged fraction of damaged
// replicas over [0, end] (Finalize must have been called with end).
func (c *Collector) AccessFailureProbability() float64 {
	if len(c.reps) == 0 || c.lastT == 0 {
		return 0
	}
	return c.damagedIntegral() / (float64(len(c.reps)) * float64(c.lastT))
}

// MeanSuccessInterval returns the mean time between successful polls on the
// same replica, in nanoseconds, using the censoring-aware renewal estimator
// (total replica observation time divided by total successes): replicas that
// never complete a poll during an attack lengthen the estimate rather than
// silently dropping out, matching the paper's delay-ratio intent.
func (c *Collector) MeanSuccessInterval() (float64, bool) {
	succ := c.Polls[protocol.OutcomeSuccess]
	if succ == 0 || len(c.reps) == 0 || c.lastT == 0 {
		return 0, false
	}
	return float64(c.lastT) * float64(len(c.reps)) / float64(succ), true
}

// ObservedGapMean returns the mean of directly observed consecutive-success
// gaps (biased under censoring; exposed for diagnostics and tests).
func (c *Collector) ObservedGapMean() (float64, bool) {
	var (
		gapNs int64
		n     uint64
	)
	for i := range c.reps {
		gapNs += c.reps[i].gapNs
		n += c.reps[i].gapCount
	}
	if n == 0 {
		return 0, false
	}
	return float64(gapNs) / float64(n), true
}

// SuccessfulPolls returns the count of successful polls.
func (c *Collector) SuccessfulPolls() uint64 { return c.Polls[protocol.OutcomeSuccess] }

// TotalPolls returns the count of concluded polls of all outcomes.
func (c *Collector) TotalPolls() uint64 {
	var n uint64
	for _, v := range c.Polls {
		n += v
	}
	return n
}

// DamagedNow returns the current number of damaged replicas.
func (c *Collector) DamagedNow() int { return c.damagedCount }

var _ protocol.Observer = (*Collector)(nil)
