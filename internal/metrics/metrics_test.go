package metrics

import (
	"math"
	"testing"

	"lockss/internal/content"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

func reg(c *Collector, n int) []*content.SimReplica {
	spec := content.AUSpec{ID: 1, Name: "m", Size: 4096, BlockSize: 1024}
	out := make([]*content.SimReplica, n)
	for i := 0; i < n; i++ {
		out[i] = content.NewSimReplica(spec, uint64(i+1))
		c.RegisterReplica(1, content.AUID(i+1), out[i]) // one peer, n AUs
	}
	return out
}

func TestAccessFailureIntegral(t *testing.T) {
	c := NewCollector()
	rs := reg(c, 4)
	// Damage replica 0 at t=100; repair at t=300; horizon 1000.
	rs[0].Damage(0)
	c.OnDamage(1, 1, 100)
	if c.DamagedNow() != 1 {
		t.Fatal("damage not tracked")
	}
	rs[0].ApplyRepair(0, mustRepairData(t, rs[1], 0))
	c.RepairApplied(1, 1, 7, 0, 300)
	if c.DamagedNow() != 0 {
		t.Fatal("repair not tracked")
	}
	c.Finalize(1000)
	// One replica damaged for 200 of 4*1000 replica-time.
	want := 200.0 / 4000.0
	if got := c.AccessFailureProbability(); math.Abs(got-want) > 1e-12 {
		t.Errorf("AFP = %v, want %v", got, want)
	}
}

func mustRepairData(t *testing.T, r content.Replica, block int) []byte {
	t.Helper()
	d, err := r.RepairBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPartialRepairKeepsDamaged(t *testing.T) {
	c := NewCollector()
	rs := reg(c, 2)
	rs[0].Damage(0)
	rs[0].Damage(1)
	c.OnDamage(1, 1, 100)
	rs[0].ApplyRepair(0, mustRepairData(t, rs[1], 0))
	c.RepairApplied(1, 1, 7, 0, 200)
	if c.DamagedNow() != 1 {
		t.Error("partially repaired replica should stay damaged")
	}
	if c.RepairsFixed != 0 {
		t.Error("partial repair counted as fixed")
	}
	rs[0].ApplyRepair(1, mustRepairData(t, rs[1], 1))
	c.RepairApplied(1, 1, 7, 1, 300)
	if c.DamagedNow() != 0 || c.RepairsFixed != 1 {
		t.Error("full repair not registered")
	}
}

func TestMeanSuccessIntervalRenewal(t *testing.T) {
	c := NewCollector()
	reg(c, 2) // 2 replicas
	day := sched.Time(24 * 3600 * 1e9)
	c.PollConcluded(1, 1, 7, protocol.OutcomeSuccess, 80*day, 90*day)
	c.PollConcluded(1, 1, 8, protocol.OutcomeSuccess, 170*day, 180*day)
	c.PollConcluded(1, 2, 9, protocol.OutcomeSuccess, 90*day, 100*day)
	c.PollConcluded(1, 2, 10, protocol.OutcomeInquorate, 180*day, 190*day)
	c.Finalize(360 * day)
	// Renewal estimator: 2 replicas x 360 days / 3 successes = 240 days.
	got, ok := c.MeanSuccessInterval()
	if !ok {
		t.Fatal("no interval")
	}
	want := float64(2*360*day) / 3
	if math.Abs(got-want) > 1 {
		t.Errorf("renewal mean = %v, want %v", got, want)
	}
	// Observed-gap diagnostic: the single 90-day gap.
	gap, ok := c.ObservedGapMean()
	if !ok || math.Abs(gap-float64(90*day)) > 1 {
		t.Errorf("observed gap = %v", gap)
	}
}

func TestNoSuccesses(t *testing.T) {
	c := NewCollector()
	reg(c, 2)
	c.PollConcluded(1, 1, 7, protocol.OutcomeInquorate, 50, 100)
	c.Finalize(1000)
	if _, ok := c.MeanSuccessInterval(); ok {
		t.Error("interval reported with zero successes")
	}
	if c.SuccessfulPolls() != 0 || c.TotalPolls() != 1 {
		t.Error("poll counters wrong")
	}
}

func TestAlarmsAndCounts(t *testing.T) {
	c := NewCollector()
	reg(c, 1)
	c.Alarm(1, 1, 7, 10)
	c.Alarm(1, 1, 7, 20)
	c.PollConcluded(1, 1, 7, protocol.OutcomeInconclusive, 10, 20)
	c.VoteSupplied(2, 1, 1, 7, 5)
	c.Finalize(100)
	if c.Alarms != 2 || c.VotesSupplied != 1 {
		t.Errorf("counters: alarms=%d votes=%d", c.Alarms, c.VotesSupplied)
	}
	if c.Polls[protocol.OutcomeInconclusive] != 1 {
		t.Error("inconclusive poll not counted")
	}
}

func TestAccessFailureEmptyCollector(t *testing.T) {
	c := NewCollector()
	c.Finalize(1000)
	if c.AccessFailureProbability() != 0 {
		t.Error("empty collector should report zero AFP")
	}
}
