package admin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/store"
	"lockss/internal/telemetry"
)

// post drives a POST with a JSON body through the handler.
func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec, rec.Body.String()
}

// seedSpans injects a small poll history straight through the telemetry
// recorder's observer interface — the same entry points the protocol uses —
// so the endpoints can be tested without running a cluster.
func seedSpans(tel *telemetry.Telemetry) {
	base := sched.Time(1_000_000_000)
	// Poll 1 on AU 1: solicited, voted, concluded successfully.
	tel.PollStarted(1, 1, 101, base)
	tel.VoteSolicited(1, 2, 1, 101, base+10)
	tel.VoteReceived(1, 2, 1, 101, base+10, base+50)
	tel.PollConcluded(1, 1, 101, protocol.OutcomeSuccess, base, base+100)
	// Poll 2 on AU 2: concluded inquorate.
	tel.PollStarted(1, 2, 102, base+200)
	tel.PollConcluded(1, 2, 102, protocol.OutcomeInquorate, base+200, base+300)
	// Poll 3 on AU 1: still in flight.
	tel.PollStarted(1, 1, 103, base+400)
	// One voter-side vote into someone else's poll.
	tel.VoteSupplied(1, 9, 1, 901, base+500)
}

func TestPollsEndpointFilters(t *testing.T) {
	n := newTestNode(t, nil)
	s := New(n, Options{})
	seedSpans(n.Telemetry())

	type pollsBody struct {
		Peer  uint32                 `json:"peer"`
		Polls []telemetry.PollSpan   `json:"polls"`
		Votes []telemetry.VoteRecord `json:"votes"`
	}
	decode := func(path string) pollsBody {
		t.Helper()
		rec, body := get(t, s.Handler(), path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d (%s)", path, rec.Code, body)
		}
		var pb pollsBody
		if err := json.Unmarshal([]byte(body), &pb); err != nil {
			t.Fatalf("GET %s body not JSON: %v (%s)", path, err, body)
		}
		return pb
	}

	all := decode("/polls")
	if all.Peer != 1 {
		t.Errorf("peer = %d, want 1", all.Peer)
	}
	// The node's own boot poll may add spans beyond the seeded three; the
	// seeded poll IDs must all be present with the right shape.
	byID := make(map[uint64]telemetry.PollSpan)
	for _, p := range all.Polls {
		byID[p.PollID] = p
	}
	p1, ok := byID[101]
	if !ok || p1.Outcome != "success" || p1.Votes != 1 || p1.Solicits != 1 || p1.DurationNs != 100 {
		t.Errorf("poll 101 = %+v (present %v), want success/1 vote/1 solicit/100ns", p1, ok)
	}
	if p2 := byID[102]; p2.Outcome != "inquorate" {
		t.Errorf("poll 102 outcome = %q, want inquorate", p2.Outcome)
	}
	if p3 := byID[103]; p3.Outcome != "" || p3.ConcludedNs != 0 {
		t.Errorf("poll 103 = %+v, want in-flight (empty outcome)", p3)
	}
	foundVote := false
	for _, v := range all.Votes {
		if v.PollID == 901 && v.Poller == 9 && v.Voter == 1 {
			foundVote = true
		}
	}
	if !foundVote {
		t.Errorf("supplied vote for poll 901 missing from %+v", all.Votes)
	}

	au2 := decode("/polls?au=2")
	for _, p := range au2.Polls {
		if p.AU != 2 {
			t.Errorf("au=2 filter returned AU %d", p.AU)
		}
	}
	if len(au2.Polls) != 1 || au2.Polls[0].PollID != 102 {
		t.Errorf("au=2 polls = %+v, want just 102", au2.Polls)
	}

	succ := decode("/polls?outcome=success&au=1")
	if len(succ.Polls) != 1 || succ.Polls[0].PollID != 101 {
		t.Errorf("outcome=success au=1 polls = %+v, want just 101", succ.Polls)
	}
	pending := decode("/polls?outcome=pending&au=1")
	for _, p := range pending.Polls {
		if p.Outcome != "" {
			t.Errorf("outcome=pending returned concluded poll %+v", p)
		}
	}

	if rec, _ := get(t, s.Handler(), "/polls?au=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("GET /polls?au=bogus = %d, want 400", rec.Code)
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	n := newTestNode(t, nil)
	s := New(n, Options{})
	seedSpans(n.Telemetry())

	rec, body := get(t, s.Handler(), "/flightrecorder")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /flightrecorder = %d", rec.Code)
	}
	var events []telemetry.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/flightrecorder body not JSON: %v (%s)", err, body)
	}
	kinds := make(map[string]int)
	var lastSeq uint64
	for i, e := range events {
		kinds[e.Kind]++
		if i > 0 && e.Seq <= lastSeq {
			t.Errorf("events out of order: seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	for _, want := range []string{"poll-start", "solicit", "vote-in", "vote-out", "conclude"} {
		if kinds[want] == 0 {
			t.Errorf("flight recorder has no %q events: %v", want, kinds)
		}
	}
}

// TestReloadEndpoint covers the on-the-fly config reload: scrub pace and
// bandwidth reach the running store's scrubber, the stats interval reaches
// the OnReload hook, and malformed bodies are rejected.
func TestReloadEndpoint(t *testing.T) {
	dir, err := os.MkdirTemp("", "lockss-admin-reload")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	spec := content.AUSpec{ID: 1, Name: "au-reload", Size: 128 << 10, BlockSize: 32 << 10}
	n, err := node.New(node.Config{
		ID:          1,
		Listen:      "127.0.0.1:0",
		AddressBook: map[ids.PeerID]string{2: "127.0.0.1:1", 3: "127.0.0.1:1"},
		Protocol:    testProtocolConfig(),
		Costs:       testCosts(),
		MBF:         testMBF,
		EffortUnit:  0.05,
		Seed:        7,
		Store:       st,
		ScrubPace:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := content.NewRealReplica(spec, 1)
	refs := []ids.PeerID{2, 3}
	if err := n.AddAU(rep, refs); err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		n.Peer().SeedGrade(spec.ID, r, reputation.Even)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	var mu sync.Mutex
	var gotStats *time.Duration
	s := New(n, Options{OnReload: func(c ReloadConfig) {
		mu.Lock()
		defer mu.Unlock()
		gotStats = c.StatsInterval
	}})

	rec, body := post(t, s.Handler(), "/reload",
		`{"scrub_pace":"123ms","scrub_bandwidth":4096,"stats_interval":"2s"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /reload = %d (%s)", rec.Code, body)
	}
	if got := st.ScrubPace(); got != 123*time.Millisecond {
		t.Errorf("scrub pace after reload = %v, want 123ms", got)
	}
	if got := st.ScrubBandwidth(); got != 4096 {
		t.Errorf("scrub bandwidth after reload = %d, want 4096", got)
	}
	mu.Lock()
	if gotStats == nil || *gotStats != 2*time.Second {
		t.Errorf("OnReload stats interval = %v, want 2s", gotStats)
	}
	mu.Unlock()

	// Partial reload: only one knob moves, the others stay.
	rec, body = post(t, s.Handler(), "/reload", `{"scrub_bandwidth":0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("partial POST /reload = %d (%s)", rec.Code, body)
	}
	if got := st.ScrubBandwidth(); got != 0 {
		t.Errorf("scrub bandwidth after partial reload = %d, want 0 (unlimited)", got)
	}
	if got := st.ScrubPace(); got != 123*time.Millisecond {
		t.Errorf("scrub pace changed by partial reload: %v", got)
	}

	for _, bad := range []string{
		`{"scrub_pace":"not-a-duration"}`,
		`{"stats_interval":"-5s"}`,
		`{"scrub_bandwidth":-1}`,
		`{"unknown_knob":1}`,
		`{`,
	} {
		if rec, _ := post(t, s.Handler(), "/reload", bad); rec.Code != http.StatusBadRequest {
			t.Errorf("POST /reload %s = %d, want 400", bad, rec.Code)
		}
	}
	if got := st.ScrubPace(); got != 123*time.Millisecond {
		t.Errorf("scrub pace changed by rejected reload: %v", got)
	}
}
