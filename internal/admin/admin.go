// Package admin embeds an HTTP control plane into a running node: live
// Prometheus-text counters, health checking, per-AU and per-peer state
// inspection, and graceful drain. It is the observability surface the fleet
// harness (internal/fleet) scrapes to operate a population.
//
// Every handler reads through paths that cannot block the protocol:
// transport and store counters are atomic snapshots, and protocol state is
// fetched with a bounded post onto the node's actor loop — if the loop does
// not respond within InspectTimeout the handler degrades (503, or metrics
// without the protocol section) instead of waiting. No handler ever locks
// protocol state directly.
//
// Endpoints:
//
//	GET  /metrics  Prometheus text: transport, store and protocol counters
//	               plus liveness gauges (lockss_actor_responsive, ...).
//	GET  /healthz  200 when the listener is up, the actor loop answers a
//	               bounded round trip and the scrubber is making progress;
//	               503 with a JSON body naming the failing checks otherwise.
//	GET  /aus      JSON: per-AU damage marks, generation, in-flight poll
//	               deadline and graded reference list.
//	GET  /peers    JSON: per-peer dial address, link state (live session,
//	               queue depth, pending backoff) and per-AU grades.
//	POST /drain    Graceful drain: stop calling polls, finish in-flight
//	               ones, flush the store, then invoke OnDrained (the node
//	               binary exits 0). Responds 202 immediately.
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/protocol"
)

// Options configures the control plane.
type Options struct {
	// Logf receives diagnostics (may be nil).
	Logf func(format string, args ...any)
	// OnDrained runs once a POST /drain has fully drained and stopped the
	// node; lockss-node exits 0 from it. May be nil.
	OnDrained func()
	// InspectTimeout bounds the actor-loop round trip behind every handler
	// that needs protocol state. Default 3s.
	InspectTimeout time.Duration
	// ScrubStall marks the store scrubber unhealthy when its counters stop
	// moving for this long. Zero disables the check (no store, or a pace so
	// slow that stall detection is meaningless). Size it to comfortably
	// exceed one full scrub pass: pace * blocks + the pass pause.
	ScrubStall time.Duration
}

// Server is the embedded control plane for one node.
type Server struct {
	n    *node.Node
	opts Options
	mux  *http.ServeMux
	srv  *http.Server

	lnMu sync.Mutex
	ln   net.Listener

	drainOnce sync.Once

	// Scrub progress tracking for /healthz: counters at the last observed
	// change and when that change was seen.
	scrubMu   sync.Mutex
	scrubSeen uint64
	scrubAt   time.Time
}

// New builds the control plane for a node. Call Start to serve it.
func New(n *node.Node, opts Options) *Server {
	if opts.InspectTimeout <= 0 {
		opts.InspectTimeout = 3 * time.Second
	}
	s := &Server{n: n, opts: opts, scrubAt: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /aus", s.handleAUs)
	mux.HandleFunc("GET /peers", s.handlePeers)
	mux.HandleFunc("POST /drain", s.handleDrain)
	s.mux = mux
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler exposes the route table (tests drive it without a listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("admin: serve: %v", err)
		}
	}()
	s.logf("admin: listening on %v", ln.Addr())
	return nil
}

// Addr returns the bound admin address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops serving. It does not touch the node.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// inspect runs fn on the node's actor loop and returns its result, bounded
// by InspectTimeout. ok is false when the loop is wedged (no response in
// time) or the node is stopped. A late-completing fn delivers into a
// buffered channel nobody reads — safe, no shared state.
func inspect[T any](s *Server, fn func(p *protocol.Peer) T) (T, bool) {
	type reply struct {
		v  T
		ok bool
	}
	ch := make(chan reply, 1)
	go func() {
		var r reply
		r.ok = s.n.Inspect(func(p *protocol.Peer) { r.v = fn(p) })
		ch <- r
	}()
	timer := time.NewTimer(s.opts.InspectTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.ok
	case <-timer.C:
		var zero T
		return zero, false
	}
}

// metricRow is one exposition line: a name, a type and a value.
type metricRow struct {
	name string
	typ  string // "counter" or "gauge"
	val  float64
}

// handleMetrics serves Prometheus text-format counters. Transport and store
// counters always appear (atomic snapshots); protocol counters and AU gauges
// appear only when the actor loop answered in time, with
// lockss_actor_responsive telling the two apart.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, respOK := s.n.StatsWithin(s.opts.InspectTimeout)

	rows := make([]metricRow, 0, 48)
	add := func(name, typ string, v float64) { rows = append(rows, metricRow{name, typ, v}) }

	add("lockss_up", "gauge", 1)
	add("lockss_actor_responsive", "gauge", b2f(respOK))

	t := st.Transport
	add("lockss_transport_sent_total", "counter", float64(t.Sent))
	add("lockss_transport_drops_total", "counter", float64(t.Drops))
	add("lockss_transport_drops_queue_full_total", "counter", float64(t.DropsQueueFull))
	add("lockss_transport_dials_total", "counter", float64(t.Dials))
	add("lockss_transport_redials_total", "counter", float64(t.Redials))
	add("lockss_transport_dial_failures_total", "counter", float64(t.DialFailures))
	add("lockss_transport_queue_highwater", "gauge", float64(t.QueueHighWater))
	add("lockss_transport_inbound_accepted_total", "counter", float64(t.InboundAccepted))
	add("lockss_transport_inbound_rejected_total", "counter", float64(t.InboundRejected))

	links := s.n.LinkInfos()
	connected, depth := 0, 0
	for _, l := range links {
		if l.Connected {
			connected++
		}
		depth += l.QueueDepth
	}
	add("lockss_peer_links", "gauge", float64(len(links)))
	add("lockss_peer_links_connected", "gauge", float64(connected))
	add("lockss_send_queue_depth", "gauge", float64(depth))

	if s.n.HasStore() {
		ss := st.Store
		add("lockss_store_blocks_scanned_total", "counter", float64(ss.BlocksScanned))
		add("lockss_store_blocks_verified_total", "counter", float64(ss.BlocksVerified))
		add("lockss_store_blocks_damaged_total", "counter", float64(ss.BlocksDamaged))
		add("lockss_store_blocks_repaired_total", "counter", float64(ss.BlocksRepaired))
		add("lockss_store_scrub_passes_total", "counter", float64(ss.ScrubPasses))
		add("lockss_store_manifest_writes_total", "counter", float64(ss.ManifestWrites))
		add("lockss_store_manifest_mutations_total", "counter", float64(ss.ManifestMutations))
		add("lockss_store_manifest_commits_total", "counter", float64(ss.ManifestCommits))
		add("lockss_store_fsyncs_total", "counter", float64(ss.Fsyncs))
		add("lockss_store_bytes_ingested_total", "counter", float64(ss.BytesIngested))
		add("lockss_store_bytes_scrubbed_total", "counter", float64(ss.BytesScrubbed))
		add("lockss_store_damage_injected_total", "counter", float64(ss.DamageInjected))
	}

	if respOK {
		p := st.Peer
		add("lockss_polls_started_total", "counter", float64(p.PollsStarted))
		add("lockss_polls_succeeded_total", "counter", float64(p.PollsSucceeded))
		add("lockss_polls_inquorate_total", "counter", float64(p.PollsInquorate))
		add("lockss_polls_inconclusive_total", "counter", float64(p.PollsInconclusive))
		add("lockss_polls_repair_failed_total", "counter", float64(p.PollsRepairFailed))
		add("lockss_polls_concluded_total", "counter", float64(p.PollsConcluded()))
		add("lockss_alarms_total", "counter", float64(p.Alarms))
		add("lockss_votes_supplied_total", "counter", float64(p.VotesSupplied))
		add("lockss_votes_received_total", "counter", float64(p.VotesReceived))
		add("lockss_invites_considered_total", "counter", float64(p.InvitesConsidered))
		add("lockss_invites_refused_total", "counter", float64(p.InvitesRefused))
		add("lockss_invites_ignored_total", "counter", float64(p.InvitesIgnored))
		add("lockss_repairs_served_total", "counter", float64(p.RepairsServed))
		add("lockss_repairs_received_total", "counter", float64(p.RepairsReceived))
		add("lockss_acks_timed_out_total", "counter", float64(p.AcksTimedOut))
		add("lockss_votes_timed_out_total", "counter", float64(p.VotesTimedOut))
		add("lockss_proofs_timed_out_total", "counter", float64(p.ProofsTimedOut))
		add("lockss_receipts_timed_out_total", "counter", float64(p.ReceiptsTimedOut))
		add("lockss_bad_proofs_total", "counter", float64(p.BadProofs))

		if infos, ok := inspect(s, func(p *protocol.Peer) []protocol.AUInfo { return p.AUInfos() }); ok {
			damaged, polls, sessions := 0, 0, 0
			for _, au := range infos {
				damaged += len(au.DamagedBlocks)
				if au.PollActive {
					polls++
				}
				sessions += au.VoterSessions
			}
			add("lockss_aus", "gauge", float64(len(infos)))
			add("lockss_au_damaged_blocks", "gauge", float64(damaged))
			add("lockss_active_polls", "gauge", float64(polls))
			add("lockss_voter_sessions", "gauge", float64(sessions))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, row := range rows {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", row.name, row.typ, row.name, row.val)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// health is the /healthz body.
type health struct {
	Healthy  bool `json:"healthy"`
	Listener bool `json:"listener"`
	Actor    bool `json:"actor"`
	Scrub    bool `json:"scrub"`
}

// handleHealthz runs the three liveness checks: the protocol listener is
// bound, the actor loop answers a bounded post round trip, and the store
// scrubber's counters moved within ScrubStall.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := health{
		Listener: s.n.Addr() != nil,
		Actor:    true,
		Scrub:    true,
	}
	_, ok := inspect(s, func(p *protocol.Peer) struct{} { return struct{}{} })
	h.Actor = ok
	if s.opts.ScrubStall > 0 && s.n.HasStore() {
		h.Scrub = s.scrubAlive()
	}
	h.Healthy = h.Listener && h.Actor && h.Scrub
	w.Header().Set("Content-Type", "application/json")
	if !h.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// scrubAlive reports whether the scrubber's counters have moved within
// ScrubStall. Progress is scans plus completed passes, so a tiny store whose
// pass finishes between probes still registers.
func (s *Server) scrubAlive() bool {
	ss := s.n.StoreStats()
	progress := ss.BlocksScanned + ss.ScrubPasses
	now := time.Now()
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if progress != s.scrubSeen {
		s.scrubSeen = progress
		s.scrubAt = now
		return true
	}
	return now.Sub(s.scrubAt) <= s.opts.ScrubStall
}

// auJSON is the /aus wire shape for one AU.
type auJSON struct {
	ID            uint32     `json:"id"`
	Name          string     `json:"name"`
	Size          int64      `json:"size"`
	BlockSize     int64      `json:"block_size"`
	Blocks        int        `json:"blocks"`
	Generation    uint64     `json:"generation"`
	DamagedBlocks []int      `json:"damaged_blocks"`
	PollActive    bool       `json:"poll_active"`
	PollDeadline  *time.Time `json:"poll_deadline,omitempty"`
	Expedite      bool       `json:"expedite"`
	LastSuccess   *time.Time `json:"last_success,omitempty"`
	VoterSessions int        `json:"voter_sessions"`
	RefList       []refSON   `json:"ref_list"`
}

type refSON struct {
	Peer  uint32 `json:"peer"`
	Grade string `json:"grade"`
}

// handleAUs serves the per-AU inspection snapshot.
func (s *Server) handleAUs(w http.ResponseWriter, r *http.Request) {
	infos, ok := inspect(s, func(p *protocol.Peer) []protocol.AUInfo { return p.AUInfos() })
	if !ok {
		http.Error(w, "actor loop unresponsive", http.StatusServiceUnavailable)
		return
	}
	out := make([]auJSON, 0, len(infos))
	for _, au := range infos {
		j := auJSON{
			ID:            uint32(au.Spec.ID),
			Name:          au.Spec.Name,
			Size:          au.Spec.Size,
			BlockSize:     au.Spec.BlockSize,
			Blocks:        au.Spec.Blocks(),
			Generation:    au.Generation,
			DamagedBlocks: au.DamagedBlocks,
			PollActive:    au.PollActive,
			Expedite:      au.Expedite,
			VoterSessions: au.VoterSessions,
			RefList:       make([]refSON, 0, len(au.RefList)),
		}
		if j.DamagedBlocks == nil {
			j.DamagedBlocks = []int{}
		}
		// The node's protocol clock is Unix nanoseconds on the wall clock.
		if au.PollActive {
			t := time.Unix(0, int64(au.PollDeadline))
			j.PollDeadline = &t
		}
		if au.LastSuccess >= 0 {
			t := time.Unix(0, int64(au.LastSuccess))
			j.LastSuccess = &t
		}
		for _, e := range au.RefList {
			j.RefList = append(j.RefList, refSON{Peer: uint32(e.Peer), Grade: e.Grade.String()})
		}
		out = append(out, j)
	}
	writeJSON(w, out)
}

// peerJSON is the /peers wire shape for one known peer.
type peerJSON struct {
	Peer       uint32            `json:"peer"`
	Addr       string            `json:"addr,omitempty"`
	Connected  bool              `json:"connected"`
	QueueDepth int               `json:"queue_depth"`
	QueueCap   int               `json:"queue_cap"`
	NextDial   *time.Time        `json:"next_dial,omitempty"`
	Grades     map[string]string `json:"grades,omitempty"` // AU id -> grade
}

// handlePeers merges three views of the peerage: the address book, the
// transport's outbound links and the per-AU reference-list grades.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	infos, ok := inspect(s, func(p *protocol.Peer) []protocol.AUInfo { return p.AUInfos() })
	if !ok {
		http.Error(w, "actor loop unresponsive", http.StatusServiceUnavailable)
		return
	}
	peers := make(map[ids.PeerID]*peerJSON)
	ensure := func(id ids.PeerID) *peerJSON {
		p, ok := peers[id]
		if !ok {
			p = &peerJSON{Peer: uint32(id)}
			peers[id] = p
		}
		return p
	}
	for id, addr := range s.n.Addresses() {
		ensure(id).Addr = addr
	}
	for _, l := range s.n.LinkInfos() {
		p := ensure(l.Peer)
		p.Connected = l.Connected
		p.QueueDepth = l.QueueDepth
		p.QueueCap = l.QueueCap
		if !l.NextDial.IsZero() {
			t := l.NextDial
			p.NextDial = &t
		}
	}
	for _, au := range infos {
		key := fmt.Sprintf("%d", au.Spec.ID)
		for _, e := range au.RefList {
			p := ensure(e.Peer)
			if p.Grades == nil {
				p.Grades = make(map[string]string)
			}
			p.Grades[key] = e.Grade.String()
		}
	}
	out := make([]peerJSON, 0, len(peers))
	for _, p := range peers {
		out = append(out, *p)
	}
	// Stable order for operators and tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Peer > out[j].Peer; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	writeJSON(w, out)
}

// handleDrain starts a graceful drain exactly once and acknowledges
// immediately; the drain (bounded by the poll window) runs in the
// background and ends with OnDrained — the node binary's cue to exit 0.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.drainOnce.Do(func() {
		go func() {
			// Deliberately not the request context: the drain outlives the
			// HTTP exchange that triggered it.
			if err := s.n.Drain(context.Background()); err != nil {
				s.logf("admin: drain: %v", err)
				return
			}
			s.logf("admin: drain complete")
			if s.opts.OnDrained != nil {
				s.opts.OnDrained()
			}
		}()
	})
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "draining")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
