// Package admin embeds an HTTP control plane into a running node: live
// Prometheus-text counters, health checking, per-AU and per-peer state
// inspection, and graceful drain. It is the observability surface the fleet
// harness (internal/fleet) scrapes to operate a population.
//
// Every handler reads through paths that cannot block the protocol:
// transport and store counters are atomic snapshots, and protocol state is
// fetched with a bounded post onto the node's actor loop — if the loop does
// not respond within InspectTimeout the handler degrades (503, or metrics
// without the protocol section) instead of waiting. No handler ever locks
// protocol state directly.
//
// Endpoints:
//
//	GET  /metrics         Prometheus text: transport, store and protocol
//	                      counters, latency histogram families from the
//	                      node's telemetry recorder, liveness gauges
//	                      (lockss_actor_responsive, ...) and build info.
//	GET  /healthz         200 when the listener is up, the actor loop answers
//	                      a bounded round trip and the scrubber is making
//	                      progress; 503 with a JSON body naming the failing
//	                      checks otherwise.
//	GET  /aus             JSON: per-AU damage marks, generation, in-flight
//	                      poll deadline and graded reference list.
//	GET  /peers           JSON: per-peer dial address, link state (live
//	                      session, queue depth, pending backoff) and per-AU
//	                      grades.
//	GET  /polls           JSON: recent and in-flight poll spans (initiator
//	                      side) plus supplied votes (voter side), filterable
//	                      by ?au= and ?outcome=.
//	GET  /flightrecorder  JSON: the telemetry ring's recent poll-lifecycle
//	                      events, oldest first.
//	POST /reload          Apply runtime-tunable config (scrub pace, scrub
//	                      bandwidth, stats interval) to the running node.
//	POST /drain           Graceful drain: stop calling polls, finish
//	                      in-flight ones, flush the store, then invoke
//	                      OnDrained (the node binary exits 0). Responds 202
//	                      immediately.
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/protocol"
	"lockss/internal/telemetry"
)

// Options configures the control plane.
type Options struct {
	// Logf receives diagnostics (may be nil).
	Logf func(format string, args ...any)
	// OnDrained runs once a POST /drain has fully drained and stopped the
	// node; lockss-node exits 0 from it. May be nil.
	OnDrained func()
	// InspectTimeout bounds the actor-loop round trip behind every handler
	// that needs protocol state. Default 3s.
	InspectTimeout time.Duration
	// ScrubStall marks the store scrubber unhealthy when its counters stop
	// moving for this long. Zero disables the check (no store, or a pace so
	// slow that stall detection is meaningless). Size it to comfortably
	// exceed one full scrub pass: pace * blocks + the pass pause.
	ScrubStall time.Duration
	// Version labels the lockss_build_info metric. Default "dev".
	Version string
	// OnReload, if non-nil, runs after a POST /reload has applied its scrub
	// knobs to the node, with the parsed request — the embedding binary's
	// hook for knobs the node itself does not own (the stats interval).
	OnReload func(ReloadConfig)
}

// ReloadConfig is the parsed body of a POST /reload; nil fields were absent
// from the request and stay unchanged.
type ReloadConfig struct {
	// ScrubPace retunes the running scrubber's per-block pause.
	ScrubPace *time.Duration
	// ScrubBandwidth retunes the scrubber's read budget in bytes/second
	// (0 = unlimited).
	ScrubBandwidth *int64
	// StatsInterval retunes the embedding binary's periodic stats line; the
	// node ignores it (applied via Options.OnReload).
	StatsInterval *time.Duration
}

// Server is the embedded control plane for one node.
type Server struct {
	n       *node.Node
	opts    Options
	mux     *http.ServeMux
	handler http.Handler
	srv     *http.Server

	lnMu sync.Mutex
	ln   net.Listener

	drainOnce sync.Once

	// Scrub progress tracking for /healthz: counters at the last observed
	// change and when that change was seen.
	scrubMu   sync.Mutex
	scrubSeen uint64
	scrubAt   time.Time
}

// New builds the control plane for a node. Call Start to serve it.
func New(n *node.Node, opts Options) *Server {
	if opts.InspectTimeout <= 0 {
		opts.InspectTimeout = 3 * time.Second
	}
	if opts.Version == "" {
		opts.Version = "dev"
	}
	s := &Server{n: n, opts: opts, scrubAt: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /aus", s.handleAUs)
	mux.HandleFunc("GET /peers", s.handlePeers)
	mux.HandleFunc("GET /polls", s.handlePolls)
	mux.HandleFunc("GET /flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("POST /drain", s.handleDrain)
	s.mux = mux
	// Every request is timed into the node's admin-latency histogram — the
	// control plane monitors itself with the same machinery it exposes.
	timed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mux.ServeHTTP(w, r)
		n.Telemetry().AdminLatency.Observe(time.Since(start).Nanoseconds())
	})
	s.handler = timed
	s.srv = &http.Server{Handler: timed, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler exposes the route table (tests drive it without a listener).
func (s *Server) Handler() http.Handler { return s.handler }

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("admin: serve: %v", err)
		}
	}()
	s.logf("admin: listening on %v", ln.Addr())
	return nil
}

// Addr returns the bound admin address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops serving. It does not touch the node.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// inspect runs fn on the node's actor loop and returns its result, bounded
// by InspectTimeout. ok is false when the loop is wedged (no response in
// time) or the node is stopped. A late-completing fn delivers into a
// buffered channel nobody reads — safe, no shared state.
func inspect[T any](s *Server, fn func(p *protocol.Peer) T) (T, bool) {
	type reply struct {
		v  T
		ok bool
	}
	ch := make(chan reply, 1)
	go func() {
		var r reply
		r.ok = s.n.Inspect(func(p *protocol.Peer) { r.v = fn(p) })
		ch <- r
	}()
	timer := time.NewTimer(s.opts.InspectTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.ok
	case <-timer.C:
		var zero T
		return zero, false
	}
}

// metricRow is one exposition line: a name, a type and a value.
type metricRow struct {
	name string
	typ  string // "counter" or "gauge"
	val  float64
}

// helpText gives every scalar family its # HELP line. A name missing here
// still expositions cleanly (HELP is optional per family); the format lint in
// the tests keeps the map honest for the families it covers.
var helpText = map[string]string{
	"lockss_up":                               "Always 1 while the admin server answers.",
	"lockss_actor_responsive":                 "1 when the protocol actor loop answered a bounded round trip.",
	"lockss_transport_sent_total":             "Frames successfully handed to the kernel.",
	"lockss_transport_drops_total":            "Messages discarded anywhere on the send path.",
	"lockss_transport_drops_queue_full_total": "Drops due to a full per-peer send queue.",
	"lockss_transport_dials_total":            "Outbound dial attempts.",
	"lockss_transport_redials_total":          "Dial attempts reconnecting a previously live peer.",
	"lockss_transport_dial_failures_total":    "Dial or handshake attempts that produced no session.",
	"lockss_transport_queue_highwater":        "Maximum per-peer outbound queue depth observed.",
	"lockss_transport_inbound_accepted_total": "Inbound connections admitted to handshake.",
	"lockss_transport_inbound_rejected_total": "Inbound connections refused by the admission caps.",
	"lockss_peer_links":                       "Outbound peer links ever created.",
	"lockss_peer_links_connected":             "Outbound peer links with a live session.",
	"lockss_send_queue_depth":                 "Total frames waiting in outbound queues.",
	"lockss_store_blocks_scanned_total":       "Blocks read by the scrubber.",
	"lockss_store_blocks_verified_total":      "Scrubbed blocks that matched their manifest hash.",
	"lockss_store_blocks_damaged_total":       "Blocks newly marked damaged.",
	"lockss_store_blocks_repaired_total":      "Damage marks cleared by verified bytes.",
	"lockss_store_scrub_passes_total":         "Completed full scrub passes.",
	"lockss_store_manifest_writes_total":      "Manifest files written.",
	"lockss_store_manifest_mutations_total":   "Manifest mutations requested.",
	"lockss_store_manifest_commits_total":     "Group commits flushed.",
	"lockss_store_fsyncs_total":               "fsync calls issued by the store.",
	"lockss_store_bytes_ingested_total":       "Content bytes ingested.",
	"lockss_store_bytes_scrubbed_total":       "Content bytes read by the scrubber.",
	"lockss_store_damage_injected_total":      "Blocks corrupted by the damage-injection API.",
	"lockss_polls_started_total":              "Polls this peer initiated.",
	"lockss_polls_succeeded_total":            "Polls concluded with a landslide agreement.",
	"lockss_polls_inquorate_total":            "Polls concluded without reaching quorum.",
	"lockss_polls_inconclusive_total":         "Polls concluded without a landslide either way.",
	"lockss_polls_repair_failed_total":        "Polls whose repair attempt failed.",
	"lockss_polls_concluded_total":            "Polls concluded, any outcome.",
	"lockss_alarms_total":                     "Inconclusive-poll alarms raised.",
	"lockss_votes_supplied_total":             "Votes this peer supplied to other pollers.",
	"lockss_votes_received_total":             "Valid votes received in this peer's polls.",
	"lockss_invites_considered_total":         "Poll invitations considered.",
	"lockss_invites_refused_total":            "Poll invitations refused.",
	"lockss_invites_ignored_total":            "Poll invitations ignored.",
	"lockss_repairs_served_total":             "Repair blocks served to other peers.",
	"lockss_repairs_received_total":           "Repair blocks received and applied.",
	"lockss_acks_timed_out_total":             "Invitation acks that timed out.",
	"lockss_votes_timed_out_total":            "Votes that timed out.",
	"lockss_proofs_timed_out_total":           "Effort proofs that timed out.",
	"lockss_receipts_timed_out_total":         "Evaluation receipts that timed out.",
	"lockss_bad_proofs_total":                 "Effort proofs that failed verification.",
	"lockss_aus":                              "Archival units registered.",
	"lockss_au_damaged_blocks":                "Blocks currently marked damaged across all AUs.",
	"lockss_active_polls":                     "AUs with a poll in flight.",
	"lockss_voter_sessions":                   "Live voter-side sessions across all AUs.",
}

// handleMetrics serves Prometheus text-format counters. Transport and store
// counters always appear (atomic snapshots); protocol counters and AU gauges
// appear only when the actor loop answered in time, with
// lockss_actor_responsive telling the two apart.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, respOK := s.n.StatsWithin(s.opts.InspectTimeout)

	rows := make([]metricRow, 0, 48)
	add := func(name, typ string, v float64) { rows = append(rows, metricRow{name, typ, v}) }

	add("lockss_up", "gauge", 1)
	add("lockss_actor_responsive", "gauge", b2f(respOK))

	t := st.Transport
	add("lockss_transport_sent_total", "counter", float64(t.Sent))
	add("lockss_transport_drops_total", "counter", float64(t.Drops))
	add("lockss_transport_drops_queue_full_total", "counter", float64(t.DropsQueueFull))
	add("lockss_transport_dials_total", "counter", float64(t.Dials))
	add("lockss_transport_redials_total", "counter", float64(t.Redials))
	add("lockss_transport_dial_failures_total", "counter", float64(t.DialFailures))
	add("lockss_transport_queue_highwater", "gauge", float64(t.QueueHighWater))
	add("lockss_transport_inbound_accepted_total", "counter", float64(t.InboundAccepted))
	add("lockss_transport_inbound_rejected_total", "counter", float64(t.InboundRejected))

	links := s.n.LinkInfos()
	connected, depth := 0, 0
	for _, l := range links {
		if l.Connected {
			connected++
		}
		depth += l.QueueDepth
	}
	add("lockss_peer_links", "gauge", float64(len(links)))
	add("lockss_peer_links_connected", "gauge", float64(connected))
	add("lockss_send_queue_depth", "gauge", float64(depth))

	if s.n.HasStore() {
		ss := st.Store
		add("lockss_store_blocks_scanned_total", "counter", float64(ss.BlocksScanned))
		add("lockss_store_blocks_verified_total", "counter", float64(ss.BlocksVerified))
		add("lockss_store_blocks_damaged_total", "counter", float64(ss.BlocksDamaged))
		add("lockss_store_blocks_repaired_total", "counter", float64(ss.BlocksRepaired))
		add("lockss_store_scrub_passes_total", "counter", float64(ss.ScrubPasses))
		add("lockss_store_manifest_writes_total", "counter", float64(ss.ManifestWrites))
		add("lockss_store_manifest_mutations_total", "counter", float64(ss.ManifestMutations))
		add("lockss_store_manifest_commits_total", "counter", float64(ss.ManifestCommits))
		add("lockss_store_fsyncs_total", "counter", float64(ss.Fsyncs))
		add("lockss_store_bytes_ingested_total", "counter", float64(ss.BytesIngested))
		add("lockss_store_bytes_scrubbed_total", "counter", float64(ss.BytesScrubbed))
		add("lockss_store_damage_injected_total", "counter", float64(ss.DamageInjected))
	}

	if respOK {
		p := st.Peer
		add("lockss_polls_started_total", "counter", float64(p.PollsStarted))
		add("lockss_polls_succeeded_total", "counter", float64(p.PollsSucceeded))
		add("lockss_polls_inquorate_total", "counter", float64(p.PollsInquorate))
		add("lockss_polls_inconclusive_total", "counter", float64(p.PollsInconclusive))
		add("lockss_polls_repair_failed_total", "counter", float64(p.PollsRepairFailed))
		add("lockss_polls_concluded_total", "counter", float64(p.PollsConcluded()))
		add("lockss_alarms_total", "counter", float64(p.Alarms))
		add("lockss_votes_supplied_total", "counter", float64(p.VotesSupplied))
		add("lockss_votes_received_total", "counter", float64(p.VotesReceived))
		add("lockss_invites_considered_total", "counter", float64(p.InvitesConsidered))
		add("lockss_invites_refused_total", "counter", float64(p.InvitesRefused))
		add("lockss_invites_ignored_total", "counter", float64(p.InvitesIgnored))
		add("lockss_repairs_served_total", "counter", float64(p.RepairsServed))
		add("lockss_repairs_received_total", "counter", float64(p.RepairsReceived))
		add("lockss_acks_timed_out_total", "counter", float64(p.AcksTimedOut))
		add("lockss_votes_timed_out_total", "counter", float64(p.VotesTimedOut))
		add("lockss_proofs_timed_out_total", "counter", float64(p.ProofsTimedOut))
		add("lockss_receipts_timed_out_total", "counter", float64(p.ReceiptsTimedOut))
		add("lockss_bad_proofs_total", "counter", float64(p.BadProofs))

		if infos, ok := inspect(s, func(p *protocol.Peer) []protocol.AUInfo { return p.AUInfos() }); ok {
			damaged, polls, sessions := 0, 0, 0
			for _, au := range infos {
				damaged += len(au.DamagedBlocks)
				if au.PollActive {
					polls++
				}
				sessions += au.VoterSessions
			}
			add("lockss_aus", "gauge", float64(len(infos)))
			add("lockss_au_damaged_blocks", "gauge", float64(damaged))
			add("lockss_active_polls", "gauge", float64(polls))
			add("lockss_voter_sessions", "gauge", float64(sessions))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, row := range rows {
		if help, ok := helpText[row.name]; ok {
			fmt.Fprintf(w, "# HELP %s %s\n", row.name, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", row.name, row.typ, row.name, row.val)
	}

	fmt.Fprintf(w, "# HELP lockss_build_info Build metadata; value is always 1.\n")
	fmt.Fprintf(w, "# TYPE lockss_build_info gauge\n")
	fmt.Fprintf(w, "lockss_build_info{version=%q,goversion=%q} 1\n", s.opts.Version, runtime.Version())

	writeHistograms(w, s.n.Telemetry())
}

// writeHistograms expositions the telemetry recorder's histogram families as
// native Prometheus histograms: cumulative _bucket series over the trimmed
// log2 bounds, the implicit +Inf bucket, _sum in seconds and _count.
func writeHistograms(w http.ResponseWriter, tel *telemetry.Telemetry) {
	for _, fam := range tel.Histograms() {
		name := "lockss_" + fam.Name + "_seconds"
		snap := fam.H.Snapshot()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, fam.Help, name)
		bounds, cum := snap.Bounds()
		for i, b := range bounds {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(snap.Sum)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
	}
}

// formatBound renders a bucket bound in seconds with enough precision for
// telemetry.BucketFromBound to invert it exactly when the fleet harness
// merges scraped histograms.
func formatBound(sec float64) string {
	return strconv.FormatFloat(sec, 'g', 17, 64)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// health is the /healthz body.
type health struct {
	Healthy  bool `json:"healthy"`
	Listener bool `json:"listener"`
	Actor    bool `json:"actor"`
	Scrub    bool `json:"scrub"`
}

// handleHealthz runs the three liveness checks: the protocol listener is
// bound, the actor loop answers a bounded post round trip, and the store
// scrubber's counters moved within ScrubStall.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := health{
		Listener: s.n.Addr() != nil,
		Actor:    true,
		Scrub:    true,
	}
	_, ok := inspect(s, func(p *protocol.Peer) struct{} { return struct{}{} })
	h.Actor = ok
	if s.opts.ScrubStall > 0 && s.n.HasStore() {
		h.Scrub = s.scrubAlive()
	}
	h.Healthy = h.Listener && h.Actor && h.Scrub
	w.Header().Set("Content-Type", "application/json")
	if !h.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

// scrubAlive reports whether the scrubber's counters have moved within
// ScrubStall. Progress is scans plus completed passes, so a tiny store whose
// pass finishes between probes still registers.
func (s *Server) scrubAlive() bool {
	ss := s.n.StoreStats()
	progress := ss.BlocksScanned + ss.ScrubPasses
	now := time.Now()
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if progress != s.scrubSeen {
		s.scrubSeen = progress
		s.scrubAt = now
		return true
	}
	return now.Sub(s.scrubAt) <= s.opts.ScrubStall
}

// auJSON is the /aus wire shape for one AU.
type auJSON struct {
	ID            uint32     `json:"id"`
	Name          string     `json:"name"`
	Size          int64      `json:"size"`
	BlockSize     int64      `json:"block_size"`
	Blocks        int        `json:"blocks"`
	Generation    uint64     `json:"generation"`
	DamagedBlocks []int      `json:"damaged_blocks"`
	PollActive    bool       `json:"poll_active"`
	PollDeadline  *time.Time `json:"poll_deadline,omitempty"`
	Expedite      bool       `json:"expedite"`
	LastSuccess   *time.Time `json:"last_success,omitempty"`
	VoterSessions int        `json:"voter_sessions"`
	RefList       []refSON   `json:"ref_list"`
}

type refSON struct {
	Peer  uint32 `json:"peer"`
	Grade string `json:"grade"`
}

// handleAUs serves the per-AU inspection snapshot.
func (s *Server) handleAUs(w http.ResponseWriter, r *http.Request) {
	infos, ok := inspect(s, func(p *protocol.Peer) []protocol.AUInfo { return p.AUInfos() })
	if !ok {
		http.Error(w, "actor loop unresponsive", http.StatusServiceUnavailable)
		return
	}
	out := make([]auJSON, 0, len(infos))
	for _, au := range infos {
		j := auJSON{
			ID:            uint32(au.Spec.ID),
			Name:          au.Spec.Name,
			Size:          au.Spec.Size,
			BlockSize:     au.Spec.BlockSize,
			Blocks:        au.Spec.Blocks(),
			Generation:    au.Generation,
			DamagedBlocks: au.DamagedBlocks,
			PollActive:    au.PollActive,
			Expedite:      au.Expedite,
			VoterSessions: au.VoterSessions,
			RefList:       make([]refSON, 0, len(au.RefList)),
		}
		if j.DamagedBlocks == nil {
			j.DamagedBlocks = []int{}
		}
		// The node's protocol clock is Unix nanoseconds on the wall clock.
		if au.PollActive {
			t := time.Unix(0, int64(au.PollDeadline))
			j.PollDeadline = &t
		}
		if au.LastSuccess >= 0 {
			t := time.Unix(0, int64(au.LastSuccess))
			j.LastSuccess = &t
		}
		for _, e := range au.RefList {
			j.RefList = append(j.RefList, refSON{Peer: uint32(e.Peer), Grade: e.Grade.String()})
		}
		out = append(out, j)
	}
	writeJSON(w, out)
}

// peerJSON is the /peers wire shape for one known peer.
type peerJSON struct {
	Peer       uint32            `json:"peer"`
	Addr       string            `json:"addr,omitempty"`
	Connected  bool              `json:"connected"`
	QueueDepth int               `json:"queue_depth"`
	QueueCap   int               `json:"queue_cap"`
	NextDial   *time.Time        `json:"next_dial,omitempty"`
	Grades     map[string]string `json:"grades,omitempty"` // AU id -> grade
}

// handlePeers merges three views of the peerage: the address book, the
// transport's outbound links and the per-AU reference-list grades.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	infos, ok := inspect(s, func(p *protocol.Peer) []protocol.AUInfo { return p.AUInfos() })
	if !ok {
		http.Error(w, "actor loop unresponsive", http.StatusServiceUnavailable)
		return
	}
	peers := make(map[ids.PeerID]*peerJSON)
	ensure := func(id ids.PeerID) *peerJSON {
		p, ok := peers[id]
		if !ok {
			p = &peerJSON{Peer: uint32(id)}
			peers[id] = p
		}
		return p
	}
	for id, addr := range s.n.Addresses() {
		ensure(id).Addr = addr
	}
	for _, l := range s.n.LinkInfos() {
		p := ensure(l.Peer)
		p.Connected = l.Connected
		p.QueueDepth = l.QueueDepth
		p.QueueCap = l.QueueCap
		if !l.NextDial.IsZero() {
			t := l.NextDial
			p.NextDial = &t
		}
	}
	for _, au := range infos {
		key := fmt.Sprintf("%d", au.Spec.ID)
		for _, e := range au.RefList {
			p := ensure(e.Peer)
			if p.Grades == nil {
				p.Grades = make(map[string]string)
			}
			p.Grades[key] = e.Grade.String()
		}
	}
	out := make([]peerJSON, 0, len(peers))
	for _, p := range peers {
		out = append(out, *p)
	}
	// Stable order for operators and tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Peer > out[j].Peer; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	writeJSON(w, out)
}

// pollsJSON is the /polls body: the initiator-side spans and the voter-side
// vote records a fleet-level timeline joins by poll ID.
type pollsJSON struct {
	Peer  uint32                 `json:"peer"`
	Polls []telemetry.PollSpan   `json:"polls"`
	Votes []telemetry.VoteRecord `json:"votes"`
}

// handlePolls serves the telemetry recorder's poll spans (recent concluded,
// oldest first, then in-flight) and supplied votes. ?au=N filters both by
// archival unit; ?outcome=success|inquorate|inconclusive|repair-failed
// filters the spans by conclusion (in-flight spans match outcome=pending).
func (s *Server) handlePolls(w http.ResponseWriter, r *http.Request) {
	tel := s.n.Telemetry()
	out := pollsJSON{
		Peer:  uint32(s.n.ID()),
		Polls: tel.Polls(),
		Votes: tel.Votes(),
	}
	if auStr := r.URL.Query().Get("au"); auStr != "" {
		au, err := strconv.ParseUint(auStr, 10, 32)
		if err != nil {
			http.Error(w, "bad au: "+err.Error(), http.StatusBadRequest)
			return
		}
		out.Polls = filterInPlace(out.Polls, func(p telemetry.PollSpan) bool { return p.AU == uint32(au) })
		out.Votes = filterInPlace(out.Votes, func(v telemetry.VoteRecord) bool { return v.AU == uint32(au) })
	}
	if oc := r.URL.Query().Get("outcome"); oc != "" {
		out.Polls = filterInPlace(out.Polls, func(p telemetry.PollSpan) bool {
			if p.Outcome == "" {
				return oc == "pending"
			}
			return p.Outcome == oc
		})
	}
	if out.Polls == nil {
		out.Polls = []telemetry.PollSpan{}
	}
	if out.Votes == nil {
		out.Votes = []telemetry.VoteRecord{}
	}
	writeJSON(w, out)
}

// filterInPlace keeps the elements of s satisfying keep, preserving order.
func filterInPlace[T any](s []T, keep func(T) bool) []T {
	out := s[:0]
	for _, v := range s {
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}

// handleFlightRecorder dumps the telemetry ring: the most recent
// poll-lifecycle events across every poll this node initiated or voted in,
// oldest first, read without stopping the writers.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	events := s.n.Telemetry().Ring().Snapshot()
	if events == nil {
		events = []telemetry.Event{}
	}
	writeJSON(w, events)
}

// reloadJSON is the POST /reload body; absent fields stay unchanged.
// Durations are Go duration strings ("250ms", "1m30s").
type reloadJSON struct {
	ScrubPace      *string `json:"scrub_pace,omitempty"`
	ScrubBandwidth *int64  `json:"scrub_bandwidth,omitempty"`
	StatsInterval  *string `json:"stats_interval,omitempty"`
}

// handleReload applies runtime-tunable config to the running node: scrub
// pace and bandwidth retune the live scrubber directly; the stats interval is
// forwarded to the embedding binary via Options.OnReload. Responds with the
// applied set.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad reload body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var cfg ReloadConfig
	if req.ScrubPace != nil {
		d, err := time.ParseDuration(*req.ScrubPace)
		if err != nil {
			http.Error(w, "bad scrub_pace: "+err.Error(), http.StatusBadRequest)
			return
		}
		cfg.ScrubPace = &d
	}
	if req.StatsInterval != nil {
		d, err := time.ParseDuration(*req.StatsInterval)
		if err != nil {
			http.Error(w, "bad stats_interval: "+err.Error(), http.StatusBadRequest)
			return
		}
		if d <= 0 {
			http.Error(w, "stats_interval must be positive", http.StatusBadRequest)
			return
		}
		cfg.StatsInterval = &d
	}
	if req.ScrubBandwidth != nil {
		if *req.ScrubBandwidth < 0 {
			http.Error(w, "scrub_bandwidth must be >= 0", http.StatusBadRequest)
			return
		}
		cfg.ScrubBandwidth = req.ScrubBandwidth
	}
	if cfg.ScrubPace != nil {
		s.n.SetScrubPace(*cfg.ScrubPace)
		s.logf("admin: reload: scrub pace -> %v", *cfg.ScrubPace)
	}
	if cfg.ScrubBandwidth != nil {
		s.n.SetScrubBandwidth(*cfg.ScrubBandwidth)
		s.logf("admin: reload: scrub bandwidth -> %d B/s", *cfg.ScrubBandwidth)
	}
	if cfg.StatsInterval != nil {
		s.logf("admin: reload: stats interval -> %v", *cfg.StatsInterval)
	}
	if s.opts.OnReload != nil {
		s.opts.OnReload(cfg)
	}
	writeJSON(w, req)
}

// handleDrain starts a graceful drain exactly once and acknowledges
// immediately; the drain (bounded by the poll window) runs in the
// background and ends with OnDrained — the node binary's cue to exit 0.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.drainOnce.Do(func() {
		go func() {
			// Deliberately not the request context: the drain outlives the
			// HTTP exchange that triggered it.
			if err := s.n.Drain(context.Background()); err != nil {
				s.logf("admin: drain: %v", err)
				return
			}
			s.logf("admin: drain complete")
			if s.opts.OnDrained != nil {
				s.opts.OnDrained()
			}
		}()
	})
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "draining")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
