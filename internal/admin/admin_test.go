package admin

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/promtext"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/telemetry"
)

// testProtocolConfig compresses the protocol's preservation timescales to
// sub-second units, matching the node package's cluster tests.
func testProtocolConfig() protocol.Config {
	cfg := protocol.DefaultConfig()
	cfg.Quorum = 3
	cfg.InnerCircle = 5
	cfg.MaxDisagree = 1
	cfg.OuterCircle = 2
	cfg.Nominations = 3
	cfg.PollInterval = 1500 * time.Millisecond
	cfg.VoteWindow = 700 * time.Millisecond
	cfg.AckTimeout = 250 * time.Millisecond
	cfg.ProofTimeout = 150 * time.Millisecond
	cfg.VoteSlack = 300 * time.Millisecond
	cfg.ReceiptSlack = 500 * time.Millisecond
	cfg.RepairTimeout = 400 * time.Millisecond
	cfg.Refractory = 200 * time.Millisecond
	cfg.GradeDecay = time.Hour
	cfg.FrivolousRepairProb = 0
	cfg.RefListTarget = 5
	cfg.RefListMax = 8
	cfg.ConsiderBurst = 64
	cfg.BlockSize = 32 << 10
	return cfg
}

func testCosts() effort.CostModel {
	m := effort.DefaultCostModel()
	m.HashBytesPerSec = 64 << 30
	m.SessionSetup = 1e-6
	m.ScheduleCheck = 1e-6
	m.ReceiptCheck = 1e-6
	return m
}

var testMBF = effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7}

// newTestNode builds and starts a lone node preserving one AU whose
// reference peers exist only in the address book — good enough for every
// handler that reads state rather than driving the protocol.
func newTestNode(t *testing.T, damage []int) *node.Node {
	t.Helper()
	spec := content.AUSpec{ID: 1, Name: "au-admin", Size: 128 << 10, BlockSize: 32 << 10}
	book := map[ids.PeerID]string{
		2: "127.0.0.1:1", 3: "127.0.0.1:1", 4: "127.0.0.1:1",
		5: "127.0.0.1:1", 6: "127.0.0.1:1",
	}
	n, err := node.New(node.Config{
		ID:          1,
		Listen:      "127.0.0.1:0",
		AddressBook: book,
		Protocol:    testProtocolConfig(),
		Costs:       testCosts(),
		MBF:         testMBF,
		EffortUnit:  0.05,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := content.NewRealReplica(spec, 1)
	for _, b := range damage {
		if !rep.Damage(b) {
			t.Fatalf("damage injection at block %d failed", b)
		}
	}
	refs := []ids.PeerID{2, 3, 4, 5, 6}
	if err := n.AddAU(rep, refs); err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		n.Peer().SeedGrade(spec.ID, r, reputation.Even)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec, string(body)
}

// TestMetricsTextParses is the metrics-format lint: the exposition output
// must pass the strict promtext parser (well-formed HELP/TYPE declarations,
// parseable labeled samples, cumulative histogram buckets with a +Inf bucket
// equal to _count) and the counters a fleet scraper depends on must be
// present with sane values.
func TestMetricsTextParses(t *testing.T) {
	n := newTestNode(t, nil)
	s := New(n, Options{Version: "test-1.0"})
	// Warm the admin-latency histogram so at least one histogram family is
	// non-empty when linted.
	get(t, s.Handler(), "/healthz")
	rec, body := get(t, s.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	fams, err := promtext.Lint(body)
	if err != nil {
		t.Fatalf("metrics exposition failed lint: %v\n%s", err, body)
	}
	vals := make(map[string]float64)
	for name, f := range fams {
		if v, ok := f.Value(); ok {
			vals[name] = v
		}
	}
	for _, want := range []string{
		"lockss_up", "lockss_actor_responsive",
		"lockss_transport_sent_total", "lockss_transport_drops_total",
		"lockss_transport_inbound_accepted_total",
		"lockss_polls_started_total", "lockss_polls_concluded_total",
		"lockss_alarms_total", "lockss_aus", "lockss_active_polls",
	} {
		if _, ok := vals[want]; !ok {
			t.Errorf("metric %s missing from exposition", want)
		}
	}
	if vals["lockss_up"] != 1 || vals["lockss_actor_responsive"] != 1 {
		t.Errorf("up=%v responsive=%v, want 1/1", vals["lockss_up"], vals["lockss_actor_responsive"])
	}
	if vals["lockss_aus"] != 1 {
		t.Errorf("lockss_aus = %v, want 1", vals["lockss_aus"])
	}
	if vals["lockss_polls_started_total"] < 1 {
		t.Errorf("lockss_polls_started_total = %v, want >= 1 (poll starts at boot)", vals["lockss_polls_started_total"])
	}
	if _, ok := vals["lockss_store_blocks_scanned_total"]; ok {
		t.Error("store metrics exported for a node with no store")
	}

	// Build info: one gauge sample carrying version and goversion labels.
	bi, ok := fams["lockss_build_info"]
	if !ok || len(bi.Samples) != 1 {
		t.Fatalf("lockss_build_info missing or malformed: %+v", bi)
	}
	if got := bi.Samples[0].Labels["version"]; got != "test-1.0" {
		t.Errorf("build_info version = %q, want test-1.0", got)
	}
	if got := bi.Samples[0].Labels["goversion"]; got != runtime.Version() {
		t.Errorf("build_info goversion = %q, want %q", got, runtime.Version())
	}

	// Every telemetry histogram family expositions, and the admin-latency
	// one has recorded the /healthz round trip above.
	for _, fam := range []string{
		"lockss_poll_duration_seconds", "lockss_solicit_vote_seconds",
		"lockss_tally_seconds", "lockss_repair_seconds",
		"lockss_transport_queue_wait_seconds", "lockss_scrub_pass_seconds",
		"lockss_admin_latency_seconds",
	} {
		f, ok := fams[fam]
		if !ok {
			t.Errorf("histogram family %s missing", fam)
			continue
		}
		if f.Type != "histogram" {
			t.Errorf("%s type = %s, want histogram", fam, f.Type)
		}
	}
	if _, _, count, err := fams["lockss_admin_latency_seconds"].Histogram(); err != nil || count < 1 {
		t.Errorf("admin latency histogram count = %d (%v), want >= 1", count, err)
	}

	// Round trip: every exposed bucket bound must map back to a telemetry
	// bucket index, or fleet-side merging would silently drop samples.
	buckets, _, _, err := fams["lockss_admin_latency_seconds"].Histogram()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range buckets[:len(buckets)-1] { // all but +Inf
		if _, ok := telemetry.BucketFromBound(b.LE); !ok {
			t.Errorf("bucket bound %g does not invert to a telemetry bucket", b.LE)
		}
	}
}

// TestHealthzFlipsWhenActorWedged wedges the actor loop with a blocking
// Inspect and watches /healthz flip to 503 (actor=false), then recover.
func TestHealthzFlipsWhenActorWedged(t *testing.T) {
	n := newTestNode(t, nil)
	s := New(n, Options{InspectTimeout: 150 * time.Millisecond})

	rec, body := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d (%s), want 200 on a healthy node", rec.Code, body)
	}

	// Wedge: a closure that blocks the actor loop until released.
	started := make(chan struct{})
	release := make(chan struct{})
	go n.Inspect(func(p *protocol.Peer) {
		close(started)
		<-release
	})
	<-started

	rec, body = get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz = %d while wedged, want 503", rec.Code)
	}
	var h struct {
		Healthy  bool `json:"healthy"`
		Listener bool `json:"listener"`
		Actor    bool `json:"actor"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body not JSON: %v (%s)", err, body)
	}
	if h.Healthy || h.Actor || !h.Listener {
		t.Errorf("wedged healthz = %+v, want listener-only healthy", h)
	}

	close(release)
	deadline := time.After(5 * time.Second)
	for {
		rec, _ = get(t, s.Handler(), "/healthz")
		if rec.Code == http.StatusOK {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("healthz still %d after unwedging", rec.Code)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestAUsAndPeersEndpoints decodes both inspection endpoints and checks the
// damage marks, reference-list grades and address-book merge.
func TestAUsAndPeersEndpoints(t *testing.T) {
	n := newTestNode(t, []int{2})
	s := New(n, Options{})

	rec, body := get(t, s.Handler(), "/aus")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /aus = %d", rec.Code)
	}
	var aus []struct {
		ID            uint32 `json:"id"`
		Name          string `json:"name"`
		Blocks        int    `json:"blocks"`
		DamagedBlocks []int  `json:"damaged_blocks"`
		PollActive    bool   `json:"poll_active"`
		RefList       []struct {
			Peer  uint32 `json:"peer"`
			Grade string `json:"grade"`
		} `json:"ref_list"`
	}
	if err := json.Unmarshal([]byte(body), &aus); err != nil {
		t.Fatalf("/aus body not JSON: %v (%s)", err, body)
	}
	if len(aus) != 1 || aus[0].ID != 1 || aus[0].Name != "au-admin" || aus[0].Blocks != 4 {
		t.Fatalf("unexpected /aus payload: %+v", aus)
	}
	if len(aus[0].DamagedBlocks) != 1 || aus[0].DamagedBlocks[0] != 2 {
		t.Errorf("damaged_blocks = %v, want [2]", aus[0].DamagedBlocks)
	}
	if len(aus[0].RefList) != 5 {
		t.Errorf("ref_list size = %d, want 5", len(aus[0].RefList))
	}
	for _, e := range aus[0].RefList {
		if e.Grade != "even" {
			t.Errorf("grade of peer %d = %q, want even", e.Peer, e.Grade)
		}
	}

	rec, body = get(t, s.Handler(), "/peers")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /peers = %d", rec.Code)
	}
	var peers []struct {
		Peer   uint32            `json:"peer"`
		Addr   string            `json:"addr"`
		Grades map[string]string `json:"grades"`
	}
	if err := json.Unmarshal([]byte(body), &peers); err != nil {
		t.Fatalf("/peers body not JSON: %v (%s)", err, body)
	}
	if len(peers) != 5 {
		t.Fatalf("/peers returned %d peers, want 5: %+v", len(peers), peers)
	}
	for i, p := range peers {
		if p.Peer != uint32(i+2) {
			t.Errorf("peers not sorted: index %d has peer %d", i, p.Peer)
		}
		if p.Addr == "" {
			t.Errorf("peer %d missing address", p.Peer)
		}
		if p.Grades["1"] != "even" {
			t.Errorf("peer %d grades = %v, want AU 1 even", p.Peer, p.Grades)
		}
	}
}

// TestMethodDiscipline: /drain is POST-only, inspection endpoints GET-only.
func TestMethodDiscipline(t *testing.T) {
	n := newTestNode(t, nil)
	s := New(n, Options{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/drain", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /drain = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

// TestDrainEndpointMidPoll boots a real 6-node cluster, POSTs /drain to one
// node while its first poll is in flight, and requires the drain to finish
// the poll, stop the node and fire OnDrained. Real-time; skipped by -short.
func TestDrainEndpointMidPoll(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	const N = 6
	spec := content.AUSpec{ID: 1, Name: "au-drain", Size: 128 << 10, BlockSize: 32 << 10}
	book := make(map[ids.PeerID]string)
	nodes := make([]*node.Node, N)
	for i := 0; i < N; i++ {
		n, err := node.New(node.Config{
			ID:          ids.PeerID(i + 1),
			Listen:      "127.0.0.1:0",
			AddressBook: book,
			Protocol:    testProtocolConfig(),
			Costs:       testCosts(),
			MBF:         testMBF,
			EffortUnit:  0.05,
			Seed:        uint64(2000 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for i, n := range nodes {
		var refs []ids.PeerID
		for j := 0; j < N; j++ {
			if j != i {
				refs = append(refs, ids.PeerID(j+1))
			}
		}
		if err := n.AddAU(content.NewRealReplica(spec, uint64(i+1)), refs); err != nil {
			t.Fatal(err)
		}
		n.SetFriends(refs)
		for _, r := range refs {
			n.Peer().SeedGrade(spec.ID, r, reputation.Even)
		}
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range nodes {
		addr := n.Addr().String()
		for _, m := range nodes {
			m.SetAddress(ids.PeerID(i+1), addr)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	drained := make(chan struct{})
	s := New(nodes[0], Options{
		Logf:      t.Logf,
		OnDrained: func() { close(drained) },
	})

	// The first poll starts at boot; confirm it is in flight, then drain.
	var active int
	nodes[0].Inspect(func(p *protocol.Peer) { active = p.ActivePolls() })
	if active != 1 {
		t.Fatalf("ActivePolls = %d before drain, want 1", active)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/drain", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /drain = %d, want 202", rec.Code)
	}
	// A second POST must be a no-op (still accepted, drain not restarted).
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/drain", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("second POST /drain = %d, want 202", rec.Code)
	}

	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}
	// The node is stopped: Inspect must refuse, and the in-flight poll must
	// have concluded rather than been abandoned.
	if nodes[0].Inspect(func(p *protocol.Peer) {}) {
		t.Error("Inspect succeeded on a drained node; want stopped")
	}
	st := nodes[0].Stats()
	if st.Peer.PollsStarted == 0 || st.Peer.PollsStarted != st.Peer.PollsConcluded() {
		t.Errorf("drained node stats: started=%d concluded=%d, want equal and nonzero",
			st.Peer.PollsStarted, st.Peer.PollsConcluded())
	}
}
