// Per-peer, non-blocking transport for the real node.
//
// The paper's pipe-stoppage adversary (§6) wedges a peer by accepting TCP
// connections and then never reading. Before this subsystem existed, every
// outbound write happened under the node-global mutex, so one stalled remote
// serialized all sends, froze protocol timers, and could deadlock Stop. The
// transport isolates peers from each other:
//
//   - Each remote peer gets a bounded outbound queue drained by a dedicated
//     writer goroutine. A full queue evicts its oldest message to admit the
//     new one — the network is lossy by contract; the protocol's timeouts
//     own reliability.
//   - Dialing happens in the writer, never on the caller (actor) path, with
//     exponential backoff plus jitter between failed attempts, replacing the
//     old silent re-dial-per-message to dead peers.
//   - Inbound connections pass admission control: a global cap and a
//     per-remote-address cap on concurrent inbound sessions, both charged
//     from accept until the session ends (the paper's admission-control
//     theme applied at the transport layer).
//   - Every send, drop, dial, redial and the queue high-water mark is
//     counted; Node.TransportStats exposes the counters.
package node

import (
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/session"
	"lockss/internal/wire"
)

// TransportStats is a snapshot of the node's transport counters.
type TransportStats struct {
	// Sent counts frames successfully handed to the kernel.
	Sent uint64
	// Drops counts messages discarded anywhere on the send path: queue
	// full, no route, dial or handshake failure, write failure.
	Drops uint64
	// DropsQueueFull counts the subset of Drops due to a full per-peer
	// queue (backpressure from a slow or stalled remote).
	DropsQueueFull uint64
	// Dials counts outbound dial attempts.
	Dials uint64
	// Redials counts dial attempts for peers that previously had a live
	// session (reconnects after a failure).
	Redials uint64
	// DialFailures counts dial or handshake attempts that did not produce
	// a session.
	DialFailures uint64
	// QueueHighWater is the maximum per-peer outbound queue depth observed.
	QueueHighWater uint64
	// InboundAccepted counts inbound connections admitted to handshake.
	InboundAccepted uint64
	// InboundRejected counts inbound connections refused by the admission
	// caps.
	InboundRejected uint64
}

// transportConfig holds the resolved transport knobs (defaults applied).
type transportConfig struct {
	sendQueue         int
	maxInbound        int
	maxInboundPerAddr int
	dialTimeout       time.Duration
	writeTimeout      time.Duration
	backoffMin        time.Duration
	backoffMax        time.Duration
	inboundIdle       time.Duration
}

// withDefaults fills zero or invalid knobs with the defaults documented on
// node.Config, keeping knob, doc and default next to each other.
func (tc transportConfig) withDefaults() transportConfig {
	if tc.sendQueue <= 0 {
		tc.sendQueue = 128
	}
	if tc.maxInbound <= 0 {
		tc.maxInbound = 256
	}
	if tc.maxInboundPerAddr <= 0 {
		tc.maxInboundPerAddr = 16
	}
	if tc.dialTimeout <= 0 {
		tc.dialTimeout = 5 * time.Second
	}
	if tc.writeTimeout <= 0 {
		tc.writeTimeout = 10 * time.Second
	}
	if tc.backoffMin <= 0 {
		tc.backoffMin = 100 * time.Millisecond
	}
	if tc.backoffMax <= 0 {
		tc.backoffMax = 15 * time.Second
	}
	if tc.backoffMax < tc.backoffMin {
		tc.backoffMax = tc.backoffMin
	}
	if tc.inboundIdle <= 0 {
		tc.inboundIdle = 5 * time.Minute
	}
	return tc
}

// transport owns all per-peer outbound links and the inbound admission
// state for one node.
type transport struct {
	n   *Node
	cfg transportConfig

	sent            atomic.Uint64
	drops           atomic.Uint64
	dropsQueueFull  atomic.Uint64
	dials           atomic.Uint64
	redials         atomic.Uint64
	dialFailures    atomic.Uint64
	queueHighWater  atomic.Uint64
	inboundAccepted atomic.Uint64
	inboundRejected atomic.Uint64

	// mu guards links and closed; closed stops new writer goroutines from
	// starting once Stop has begun (wg.Add must not race wg.Wait).
	mu     sync.Mutex
	links  map[ids.PeerID]*peerLink
	closed bool

	// imu guards the inbound admission state.
	imu     sync.Mutex
	inbound int                 // live inbound sessions (handshaking + established)
	perAddr map[string]int      // remote IP -> live inbound sessions
	addrOf  map[net.Conn]string // raw conn -> remote IP, for release at session end
}

func newTransport(n *Node, cfg transportConfig) *transport {
	return &transport{
		n:       n,
		cfg:     cfg,
		links:   make(map[ids.PeerID]*peerLink),
		perAddr: make(map[string]int),
		addrOf:  make(map[net.Conn]string),
	}
}

// stats snapshots the counters.
func (t *transport) stats() TransportStats {
	return TransportStats{
		Sent:            t.sent.Load(),
		Drops:           t.drops.Load(),
		DropsQueueFull:  t.dropsQueueFull.Load(),
		Dials:           t.dials.Load(),
		Redials:         t.redials.Load(),
		DialFailures:    t.dialFailures.Load(),
		QueueHighWater:  t.queueHighWater.Load(),
		InboundAccepted: t.inboundAccepted.Load(),
		InboundRejected: t.inboundRejected.Load(),
	}
}

// close bars new links. Existing writers exit via the node's stop channel.
func (t *transport) close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
}

// LinkInfo is an inspection snapshot of one outbound peer link (the admin
// API's /peers endpoint renders these).
type LinkInfo struct {
	// Peer is the remote identity this link serves.
	Peer ids.PeerID
	// Connected reports a live session (handshake completed, no failure
	// observed since).
	Connected bool
	// QueueDepth and QueueCap describe the bounded outbound queue.
	QueueDepth int
	QueueCap   int
	// NextDial is the earliest next dial attempt while a backoff window is
	// armed; the zero time means no backoff is pending.
	NextDial time.Time
}

// linkInfos snapshots every outbound link, sorted by peer ID. Queue depth is
// read racily (len on a channel is a point-in-time observation) and the
// atomics are monotonic snapshots — good enough for observability, and no
// lock the writer goroutines care about is held.
func (t *transport) linkInfos() []LinkInfo {
	t.mu.Lock()
	links := make([]*peerLink, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	t.mu.Unlock()
	out := make([]LinkInfo, 0, len(links))
	for _, l := range links {
		info := LinkInfo{
			Peer:       l.to,
			Connected:  l.up.Load(),
			QueueDepth: len(l.q),
			QueueCap:   cap(l.q),
		}
		if nano := l.nextDialNano.Load(); nano > 0 {
			info.NextDial = time.Unix(0, nano)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// encodeBufs recycles wire-encoding scratch; buffers travel through the
// per-peer queues and return to the pool after the frame is written or
// dropped.
var encodeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func putEncodeBuf(bufp *[]byte) {
	*bufp = (*bufp)[:0]
	encodeBufs.Put(bufp)
}

// send encodes m synchronously — on the caller's goroutine, before the
// protocol can recycle the pooled records backing m's fields — and enqueues
// only the resulting bytes. It never blocks: a full queue evicts its oldest
// frame, and a stopped node drops the message.
func (t *transport) send(to ids.PeerID, m *protocol.Msg) {
	bufp := encodeBufs.Get().(*[]byte)
	data, err := wire.AppendEncode((*bufp)[:0], m)
	if err != nil {
		putEncodeBuf(bufp)
		t.drops.Add(1)
		t.n.logf("encode %v: %v", m.Type, err)
		return
	}
	*bufp = data
	l := t.link(to)
	if l == nil { // stopped
		putEncodeBuf(bufp)
		t.drops.Add(1)
		return
	}
	l.enqueue(queuedFrame{bufp: bufp, at: time.Now().UnixNano()})
}

// link returns the outbound link to a peer, creating it (and its writer
// goroutine) on first use. Returns nil once the transport is closed.
func (t *transport) link(to ids.PeerID) *peerLink {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	l := t.links[to]
	if l == nil {
		l = &peerLink{
			t:       t,
			to:      to,
			q:       make(chan queuedFrame, t.cfg.sendQueue),
			backoff: t.cfg.backoffMin,
		}
		t.links[to] = l
		t.n.wg.Add(1)
		go l.run()
	}
	return l
}

// peerLink is one peer's outbound path: a bounded queue and the writer
// goroutine that owns the connection to that peer. The atomic fields are the
// link's externally visible state (linkInfos snapshots them from any
// goroutine); everything below them is writer-goroutine state, touched by no
// one else.
type peerLink struct {
	t  *transport
	to ids.PeerID
	q  chan queuedFrame

	// up reports a live session to the peer (handshake completed, no
	// failure observed since).
	up atomic.Bool
	// nextDialNano is the earliest next dial attempt, Unix nanoseconds
	// (zero until the first failure arms a backoff window).
	nextDialNano atomic.Int64

	connected   bool          // a session existed at some point (dials after this are redials)
	backoff     time.Duration // next backoff step after a dial failure
	connectedAt time.Time     // when the current session's handshake completed
}

// queuedFrame is one encoded frame plus its enqueue instant, so the writer
// can histogram how long frames wait behind a slow link.
type queuedFrame struct {
	bufp *[]byte
	at   int64 // UnixNano at enqueue
}

// enqueue offers one encoded frame to the writer; a full queue evicts the
// oldest queued frame to make room — the protocol's time-sensitive
// messages are the fresh ones, and the stalest frame is the one its
// recipient is least likely to still want.
func (l *peerLink) enqueue(f queuedFrame) {
	for {
		select {
		case l.q <- f:
			depth := uint64(len(l.q))
			for {
				cur := l.t.queueHighWater.Load()
				if depth <= cur || l.t.queueHighWater.CompareAndSwap(cur, depth) {
					break
				}
			}
			return
		default:
		}
		select {
		case old := <-l.q:
			l.t.dropsQueueFull.Add(1)
			l.t.drops.Add(1)
			putEncodeBuf(old.bufp)
		default:
			// The writer drained a slot in the meantime; retry the send.
		}
	}
}

// peerConn pairs a session with the liveness signal from its read loop.
type peerConn struct {
	c    *session.Conn
	dead chan struct{} // closed when the read loop exits (remote hung up)
}

// run drains the queue until the node stops.
func (l *peerLink) run() {
	n := l.t.n
	defer n.wg.Done()
	var pc *peerConn
	defer func() {
		l.up.Store(false)
		if pc != nil {
			pc.c.Close()
		}
	}()
	for {
		select {
		case <-n.stop:
			return
		case f := <-l.q:
			// Queue wait is the time the frame sat behind this link's
			// earlier frames (and any dial/backoff) before the writer
			// picked it up.
			n.tel.QueueWait.Observe(time.Now().UnixNano() - f.at)
			pc = l.deliver(pc, *f.bufp)
			putEncodeBuf(f.bufp)
		}
	}
}

// deliver writes one frame, (re)connecting first if needed, and returns the
// connection to use for the next frame (nil after any failure — failures
// drop the frame; the protocol's timeouts own reliability).
func (l *peerLink) deliver(pc *peerConn, frame []byte) *peerConn {
	t := l.t
	if pc != nil {
		select {
		case <-pc.dead: // remote hung up
			pc.c.Close()
			pc = nil
			l.up.Store(false)
			// Schedule the reconnect through the backoff window: a
			// crash-looping remote must not get an instant redial just
			// because its death was noticed by the reader instead of a
			// failed write.
			l.backoffNext()
		default:
		}
	}
	if pc == nil {
		pc = l.connect()
		if pc == nil {
			t.drops.Add(1)
			// The link is known dead and the next attempt is a full
			// backoff window away: flush everything queued behind this
			// frame too. Draining one stale frame per backoff window
			// would deliver minutes-old protocol messages after the peer
			// recovers, instead of the prompt loss the protocol's
			// timeouts are designed around.
			l.flush()
			return nil
		}
	}
	if err := pc.c.WriteMsg(frame); err != nil {
		t.n.logf("send to %v: %v", l.to, err)
		t.drops.Add(1)
		pc.c.Close()
		l.up.Store(false)
		// Arm the backoff here too: a peer that handshakes and then fails
		// every write (crash loop, instant reset) must not trigger a
		// zero-delay dial+DH spin — only a successful write proves the
		// link healthy. And flush, for the same reason as the connect
		// failure above: the link is dead and the queue's contents will
		// be stale by the next window.
		l.backoffNext()
		l.flush()
		return nil
	}
	t.sent.Add(1)
	// Reset the backoff only once the session has proven longevity: a
	// write "succeeding" into the socket buffer of a peer that resets
	// right after every handshake proves nothing, and resetting on it
	// would re-arm the zero-delay spin.
	if time.Since(l.connectedAt) >= t.cfg.backoffMin {
		l.backoff = t.cfg.backoffMin
	}
	return pc
}

// connect dials and handshakes the peer, honoring the backoff window from
// previous failures. The wait, the dial and the handshake all abort promptly
// when the node stops.
func (l *peerLink) connect() *peerConn {
	t := l.t
	n := t.n
	if wait := time.Until(time.Unix(0, l.nextDialNano.Load())); wait > 0 {
		timer := time.NewTimer(wait)
		select {
		case <-n.stop:
			timer.Stop()
			return nil
		case <-timer.C:
		}
	}
	n.mu.Lock()
	addr, ok := n.addrs[l.to]
	n.mu.Unlock()
	if !ok {
		n.logf("no address for %v", l.to)
		l.backoffNext() // not a dial failure: no dial was attempted
		return nil
	}
	t.dials.Add(1)
	if l.connected {
		t.redials.Add(1)
	}
	// One DialTimeout bounds the dial and the handshake together.
	deadline := time.Now().Add(t.cfg.dialTimeout)
	d := net.Dialer{Deadline: deadline}
	raw, err := d.DialContext(n.dialCtx, "tcp", addr)
	if err != nil {
		n.logf("dial %v: %v", l.to, err)
		l.dialFailed()
		return nil
	}
	// Track the raw conn so Stop can abort a handshake against a peer that
	// accepted and went silent; the deadline bounds it regardless.
	n.trackRaw(raw)
	raw.SetDeadline(deadline)
	c, err := session.Client(raw)
	n.untrackRaw(raw)
	if err != nil {
		raw.Close()
		n.logf("handshake %v: %v", l.to, err)
		l.dialFailed()
		return nil
	}
	raw.SetDeadline(time.Time{})
	c.SetWriteTimeout(t.cfg.writeTimeout)
	l.connected = true
	l.connectedAt = time.Now()
	l.up.Store(true)
	// The backoff value is NOT reset here: a handshake alone proves
	// nothing against a peer that resets right after it. deliver resets it
	// on the first successful write.
	pc := &peerConn{c: c, dead: make(chan struct{})}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(pc.dead)
		// Replies arriving on the outbound session are protocol input.
		n.readLoop(c)
	}()
	return pc
}

// flush discards every queued frame, counting each as a drop.
func (l *peerLink) flush() {
	for {
		select {
		case f := <-l.q:
			l.t.drops.Add(1)
			putEncodeBuf(f.bufp)
		default:
			return
		}
	}
}

// dialFailed records a failed dial/handshake attempt and schedules the
// next one.
func (l *peerLink) dialFailed() {
	l.t.dialFailures.Add(1)
	l.backoffNext()
}

// backoffNext pushes the next dial attempt out by the jittered backoff
// delay and doubles the backoff (capped). Used on any link failure —
// missing address, dial, handshake or write — without implying a dial was
// attempted.
func (l *peerLink) backoffNext() {
	delay, next := jitteredBackoff(l.backoff, l.t.cfg.backoffMax, rand.Int63n)
	l.nextDialNano.Store(time.Now().Add(delay).UnixNano())
	l.backoff = next
}

// jitteredBackoff maps the current backoff value to the delay before the
// next dial (uniform in [cur/2, cur], so synchronized peers desynchronize)
// and the doubled, capped backoff to use after that.
func jitteredBackoff(cur, max time.Duration, randn func(n int64) int64) (delay, next time.Duration) {
	if cur <= 0 {
		cur = time.Millisecond
	}
	if cur > max {
		cur = max
	}
	half := cur / 2
	delay = half + time.Duration(randn(int64(half)+1))
	next = cur * 2
	if next > max {
		next = max
	}
	return delay, next
}

// admit decides whether an inbound connection may proceed, charging it —
// from the moment of accept, so half-open handshakes are covered too —
// against the global session cap and the per-remote-address session cap.
// Both slots are held for the life of the session (one IP must not be able
// to monopolize the global budget by finishing cheap handshakes and parking
// the sessions). The caller must close the conn on refusal and call
// inboundDone when the session ends.
func (t *transport) admit(raw net.Conn) bool {
	ip := remoteIP(raw)
	t.imu.Lock()
	if t.inbound >= t.cfg.maxInbound || t.perAddr[ip] >= t.cfg.maxInboundPerAddr {
		t.imu.Unlock()
		t.inboundRejected.Add(1)
		return false
	}
	t.inbound++
	t.perAddr[ip]++
	t.addrOf[raw] = ip
	t.imu.Unlock()
	t.inboundAccepted.Add(1)
	return true
}

// inboundDone releases the admission slots when the session ends
// (idempotent).
func (t *transport) inboundDone(raw net.Conn) {
	t.imu.Lock()
	if ip, ok := t.addrOf[raw]; ok {
		delete(t.addrOf, raw)
		if t.perAddr[ip]--; t.perAddr[ip] <= 0 {
			delete(t.perAddr, ip)
		}
		t.inbound--
	}
	t.imu.Unlock()
}

// remoteIP extracts the host part of a conn's remote address.
func remoteIP(raw net.Conn) string {
	addr := raw.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}
