package node

import (
	"net"
	"sync"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/session"
)

// testMBF keeps proof tables tiny so nodes construct instantly.
var testMBF = effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7}

// waitUntil polls cond every interval until it returns true or the deadline
// passes, reporting whether the condition was met. It mirrors
// harness.WaitFor, which node tests cannot import without a cycle.
func waitUntil(timeout, interval time.Duration, cond func() bool) bool {
	if cond() {
		return true
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		time.Sleep(interval)
		if cond() {
			return true
		}
	}
	return cond()
}

// newTestNode builds an unstarted node with compressed timescales and any
// zero Config fields filled with test-friendly values.
func newTestNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	if cfg.ID == 0 {
		cfg.ID = 1
	}
	if cfg.Protocol.Quorum == 0 {
		cfg.Protocol = demoProtocolConfig()
	}
	if cfg.Costs.HashBytesPerSec == 0 {
		cfg.Costs = demoCosts()
	}
	if cfg.MBF.TableWords == 0 {
		cfg.MBF = testMBF
	}
	if cfg.EffortUnit == 0 {
		cfg.EffortUnit = 0.05
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestJitteredBackoff pins the backoff schedule: delay uniform in
// [cur/2, cur], doubling growth, and a hard cap.
func TestJitteredBackoff(t *testing.T) {
	minr := func(n int64) int64 { return 0 }
	maxr := func(n int64) int64 { return n - 1 }

	delay, next := jitteredBackoff(100*time.Millisecond, time.Second, minr)
	if delay != 50*time.Millisecond {
		t.Errorf("min-jitter delay = %v, want 50ms", delay)
	}
	if next != 200*time.Millisecond {
		t.Errorf("next = %v, want 200ms", next)
	}
	delay, _ = jitteredBackoff(100*time.Millisecond, time.Second, maxr)
	if delay != 100*time.Millisecond {
		t.Errorf("max-jitter delay = %v, want 100ms", delay)
	}

	// Growth doubles and saturates at the cap.
	b := 100 * time.Millisecond
	want := []time.Duration{200, 400, 800, 1000, 1000}
	for i, w := range want {
		_, b = jitteredBackoff(b, time.Second, minr)
		if b != w*time.Millisecond {
			t.Errorf("step %d: backoff = %v, want %v", i, b, w*time.Millisecond)
		}
	}

	// A current value above the cap is clamped before use.
	delay, next = jitteredBackoff(5*time.Second, time.Second, minr)
	if delay != 500*time.Millisecond || next != time.Second {
		t.Errorf("over-cap: delay = %v next = %v, want 500ms / 1s", delay, next)
	}

	// Zero and negative inputs still produce a sane, positive schedule.
	delay, next = jitteredBackoff(0, time.Second, minr)
	if delay <= 0 || next != 2*time.Millisecond {
		t.Errorf("zero cur: delay = %v next = %v", delay, next)
	}
}

// TestQueueFullDropAccounting: enqueueing past a link's capacity drops the
// excess and the counters record exactly how many, plus the high-water mark.
func TestQueueFullDropAccounting(t *testing.T) {
	n := newTestNode(t, Config{})
	defer n.Stop()

	// A link with no writer goroutine: nothing drains the queue, so the
	// arithmetic is exact.
	l := &peerLink{t: n.tr, to: 9, q: make(chan queuedFrame, 4)}
	for i := 0; i < 10; i++ {
		b := []byte{byte(i)}
		l.enqueue(queuedFrame{bufp: &b})
	}
	st := n.TransportStats()
	if st.DropsQueueFull != 6 {
		t.Errorf("DropsQueueFull = %d, want 6", st.DropsQueueFull)
	}
	if st.Drops != 6 {
		t.Errorf("Drops = %d, want 6", st.Drops)
	}
	if st.QueueHighWater != 4 {
		t.Errorf("QueueHighWater = %d, want 4", st.QueueHighWater)
	}
}

// TestQueueFullEvictsOldest: under overflow the queue keeps the freshest
// frames — stale protocol messages are the ones sacrificed.
func TestQueueFullEvictsOldest(t *testing.T) {
	n := newTestNode(t, Config{})
	defer n.Stop()

	l := &peerLink{t: n.tr, to: 9, q: make(chan queuedFrame, 4)}
	for i := byte(0); i < 10; i++ {
		b := []byte{i}
		l.enqueue(queuedFrame{bufp: &b})
	}
	var got []byte
	for len(l.q) > 0 {
		got = append(got, (*(<-l.q).bufp)[0])
	}
	want := []byte{6, 7, 8, 9}
	if string(got) != string(want) {
		t.Errorf("queue retained %v, want the newest frames %v", got, want)
	}
}

// TestUnreachablePeerBackoff: sends to a dead address are dropped by the
// writer after failed dials, dial failures are counted, and Stop returns
// promptly with a writer mid-backoff.
func TestUnreachablePeerBackoff(t *testing.T) {
	// Reserve a port, then close it so dials fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	n := newTestNode(t, Config{
		AddressBook:    map[ids.PeerID]string{9: dead},
		DialBackoffMin: time.Millisecond,
		DialBackoffMax: 5 * time.Millisecond,
	})
	m := &protocol.Msg{Type: protocol.MsgPollAck, AU: 1, PollID: 1, Poller: 9, Voter: 1, Refuse: protocol.RefuseBusy}
	const sends = 3
	for i := 0; i < sends; i++ {
		n.tr.send(9, m)
	}
	if !waitUntil(10*time.Second, 5*time.Millisecond, func() bool {
		st := n.TransportStats()
		return st.Drops >= sends && st.DialFailures >= 1 && st.Dials >= 1
	}) {
		t.Fatalf("counters never converged: %+v", n.TransportStats())
	}

	done := make(chan struct{})
	go func() { n.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return with a writer in dial backoff")
	}
}

// dialSession establishes a full client session to addr.
func dialSession(t *testing.T, addr string) *session.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := session.Client(raw)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	return c
}

// TestInboundGlobalCap: the MaxInbound-th+1 concurrent inbound connection is
// refused at accept and counted.
func TestInboundGlobalCap(t *testing.T) {
	n := newTestNode(t, Config{Listen: "127.0.0.1:0", MaxInbound: 2})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	addr := n.Addr().String()

	c1 := dialSession(t, addr)
	defer c1.Close()
	c2 := dialSession(t, addr)
	defer c2.Close()

	// Both slots held: the third connection is closed without a handshake.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := session.Client(raw); err == nil {
		t.Error("third inbound session established past MaxInbound=2")
	}
	if st := n.TransportStats(); st.InboundRejected < 1 {
		t.Errorf("InboundRejected = %d, want >= 1", st.InboundRejected)
	}
}

// TestInboundPerAddrHandshakeCap: one address stuck mid-handshake exhausts
// its per-address slot; a second handshake from the same address is refused
// while other state is untouched.
func TestInboundPerAddrHandshakeCap(t *testing.T) {
	n := newTestNode(t, Config{Listen: "127.0.0.1:0", MaxInbound: 100, MaxInboundPerAddr: 1})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	addr := n.Addr().String()

	// Hold a connection half-open: never send the client key, so the server
	// stays in its handshake and the per-address slot stays charged.
	stuck, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	if !waitUntil(10*time.Second, 2*time.Millisecond, func() bool {
		return n.TransportStats().InboundAccepted >= 1
	}) {
		t.Fatal("first connection never admitted")
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := session.Client(raw); err == nil {
		t.Error("second concurrent handshake from the same address succeeded past cap 1")
	}
	if st := n.TransportStats(); st.InboundRejected < 1 {
		t.Errorf("InboundRejected = %d, want >= 1", st.InboundRejected)
	}
}

// TestInboundPerAddrEstablishedCap: the per-address slot is held for the
// whole session, not just the handshake — one IP cannot park established
// sessions to eat the global budget.
func TestInboundPerAddrEstablishedCap(t *testing.T) {
	n := newTestNode(t, Config{Listen: "127.0.0.1:0", MaxInbound: 100, MaxInboundPerAddr: 1})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	addr := n.Addr().String()

	c1 := dialSession(t, addr) // fully established, held open
	defer c1.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := session.Client(raw); err == nil {
		t.Error("second session from the same address succeeded past per-addr cap 1")
	}
	if st := n.TransportStats(); st.InboundRejected < 1 {
		t.Errorf("InboundRejected = %d, want >= 1", st.InboundRejected)
	}
}

// TestInboundIdleReclaim: a handshaked-but-mute inbound session is reaped
// after InboundIdleTimeout and its admission slots are released — parked
// sessions cannot exhaust MaxInbound.
func TestInboundIdleReclaim(t *testing.T) {
	n := newTestNode(t, Config{
		Listen:             "127.0.0.1:0",
		MaxInbound:         1,
		InboundIdleTimeout: 100 * time.Millisecond,
	})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	addr := n.Addr().String()

	mute := dialSession(t, addr) // holds the only slot, sends nothing
	defer mute.Close()

	// Once the idle reaper fires, a fresh session must be admitted.
	if !waitUntil(10*time.Second, 25*time.Millisecond, func() bool {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c, err := session.Client(raw)
		if err != nil {
			raw.Close()
			return false
		}
		c.Close()
		return true // slot was reclaimed
	}) {
		t.Fatal("idle inbound session never reaped; admission slot still parked")
	}
}

// sessionPair builds a client/server session over an in-memory pipe.
func sessionPair(t *testing.T) (*session.Conn, *session.Conn) {
	t.Helper()
	a, b := net.Pipe()
	ch := make(chan *session.Conn, 1)
	go func() {
		s, err := session.Server(b)
		if err != nil {
			ch <- nil
			return
		}
		ch <- s
	}()
	c, err := session.Client(a)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	s := <-ch
	if s == nil {
		t.Fatal("server handshake failed")
	}
	return c, s
}

// TestWriteFailureArmsBackoff: a write error on an established session must
// schedule the next dial into the future and grow the backoff — a peer that
// handshakes and then resets must not induce a zero-delay redial spin.
func TestWriteFailureArmsBackoff(t *testing.T) {
	n := newTestNode(t, Config{DialBackoffMin: 100 * time.Millisecond, DialBackoffMax: time.Second})
	defer n.Stop()

	c, s := sessionPair(t)
	s.Close() // the remote resets right after the handshake
	l := &peerLink{t: n.tr, to: 9, backoff: n.tr.cfg.backoffMin}
	pc := &peerConn{c: c, dead: make(chan struct{})}

	before := time.Now()
	if got := l.deliver(pc, []byte("frame")); got != nil {
		t.Fatal("deliver returned a live conn after a write failure")
	}
	if !time.Unix(0, l.nextDialNano.Load()).After(before) {
		t.Error("write failure did not push nextDial into the future")
	}
	if l.backoff != 200*time.Millisecond {
		t.Errorf("backoff after write failure = %v, want 200ms (doubled)", l.backoff)
	}
	st := n.TransportStats()
	if st.Drops != 1 || st.Sent != 0 {
		t.Errorf("counters = %+v, want exactly one drop and no sends", st)
	}
	if st.DialFailures != 0 {
		t.Errorf("DialFailures = %d after a write failure; the counter is for dial/handshake attempts only", st.DialFailures)
	}
}

// wedgedAcceptor accepts TCP connections, completes the session handshake,
// and then never reads another byte: the paper's pipe-stoppage adversary
// realized at the transport layer.
type wedgedAcceptor struct {
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
	count int
}

func newWedgedAcceptor(t *testing.T) *wedgedAcceptor {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := &wedgedAcceptor{ln: ln}
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			w.mu.Lock()
			w.conns = append(w.conns, raw)
			w.count++
			w.mu.Unlock()
			go func() {
				if _, err := session.Server(raw); err != nil {
					raw.Close()
				}
				// Session established — now go silent forever.
			}()
		}
	}()
	return w
}

func (w *wedgedAcceptor) addr() string { return w.ln.Addr().String() }

func (w *wedgedAcceptor) connections() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

func (w *wedgedAcceptor) close() {
	w.ln.Close()
	w.mu.Lock()
	for _, c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
}

// TestStopPromptWhileWriteWedged: a remote that handshakes and then never
// reads eventually blocks the per-peer writer inside a frame write (once
// the kernel socket buffers fill). Stop must still return promptly — it
// closes the session out from under the blocked write — and the bounded
// queue must have recorded drops while the writer was stuck.
func TestStopPromptWhileWriteWedged(t *testing.T) {
	w := newWedgedAcceptor(t)
	defer w.close()

	n := newTestNode(t, Config{
		AddressBook:  map[ids.PeerID]string{9: w.addr()},
		SendQueue:    8,
		WriteTimeout: time.Hour, // prove Stop unblocks the write, not the deadline
	})
	// 256 KiB frames overwhelm the socket buffers quickly.
	m := &protocol.Msg{Type: protocol.MsgRepair, AU: 1, PollID: 1, Poller: 1, Voter: 9, Block: 0, RepairData: make([]byte, 256<<10)}
	if !waitUntil(15*time.Second, time.Millisecond, func() bool {
		if n.TransportStats().DropsQueueFull > 0 {
			return true
		}
		n.tr.send(9, m)
		return false
	}) {
		t.Fatalf("writer never wedged: %+v", n.TransportStats())
	}

	done := make(chan struct{})
	go func() { n.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return while a frame write was wedged")
	}
	st := n.TransportStats()
	if st.DropsQueueFull == 0 || st.Sent == 0 {
		t.Errorf("expected sends and queue-full drops, got %+v", st)
	}
}

// TestClusterSurvivesStalledPeer is the acceptance scenario: a live cluster
// whose members all reference one wedged peer (accepts TCP, handshakes,
// never reads, never votes) must still conclude polls, and every node must
// stop within a bounded time. Run with -race.
func TestClusterSurvivesStalledPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	const N = 5
	wedgedID := ids.PeerID(N + 1)
	spec := content.AUSpec{ID: 1, Name: "au-stall", Size: 128 << 10, BlockSize: 32 << 10}
	obs := &testObserver{}

	w := newWedgedAcceptor(t)
	defer w.close()

	book := make(map[ids.PeerID]string)
	nodes := make([]*Node, N)
	for i := 0; i < N; i++ {
		nodes[i] = newTestNode(t, Config{
			ID:             ids.PeerID(i + 1),
			Listen:         "127.0.0.1:0",
			AddressBook:    book,
			Seed:           uint64(2000 + i),
			Observer:       obs,
			SendQueue:      32,
			WriteTimeout:   300 * time.Millisecond,
			DialBackoffMin: 25 * time.Millisecond,
			DialBackoffMax: 250 * time.Millisecond,
		})
	}
	for i, n := range nodes {
		refs := []ids.PeerID{wedgedID}
		for j := 0; j < N; j++ {
			if j != i {
				refs = append(refs, ids.PeerID(j+1))
			}
		}
		if err := n.AddAU(content.NewRealReplica(spec, uint64(i+1)), refs); err != nil {
			t.Fatal(err)
		}
		n.SetFriends(refs)
		for _, r := range refs {
			n.Peer().SeedGrade(spec.ID, r, reputation.Even)
		}
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range nodes {
		addr := n.Addr().String()
		for _, m := range nodes {
			m.SetAddress(ids.PeerID(i+1), addr)
		}
	}
	for _, m := range nodes {
		m.SetAddress(wedgedID, w.addr())
	}

	// Polls must conclude successfully despite the wedged reference peer.
	if !waitUntil(45*time.Second, 250*time.Millisecond, func() bool {
		succ, _, _ := obs.snapshot()
		return succ >= N
	}) {
		succ, other, _ := obs.snapshot()
		t.Fatalf("cluster wedged: polls ok=%d other=%d (want ok >= %d)", succ, other, N)
	}

	if w.connections() == 0 {
		t.Error("wedged peer was never contacted — scenario did not engage")
	}

	// Every node must stop within a bounded time despite the stalled links.
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for _, n := range nodes {
			wg.Add(1)
			go func(n *Node) { defer wg.Done(); n.Stop() }(n)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not return within 10s with a wedged peer in the network")
	}

	var agg TransportStats
	for _, n := range nodes {
		st := n.TransportStats()
		agg.Sent += st.Sent
		agg.Dials += st.Dials
		agg.Drops += st.Drops
	}
	if agg.Sent == 0 || agg.Dials == 0 {
		t.Errorf("transport counters empty: %+v", agg)
	}
	t.Logf("aggregate transport: %+v; wedged-peer connections: %d", agg, w.connections())
}
