package node

import (
	"path/filepath"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/store"
)

// TestClusterRepairsDurableStore is the durable-storage acceptance test: a
// real TCP cluster whose replicas live in on-disk stores. One node suffers
// *silent* bit rot (injected directly into its block file, manifest
// untouched); its scrubber must find and mark the damage, and the audit
// protocol must confirm it against the other nodes' votes and repair the
// actual bytes on disk — after which the store is reopened from disk and
// every manifest verifies.
func TestClusterRepairsDurableStore(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	const N = 6
	spec := content.AUSpec{ID: 1, Name: "au-durable", Size: 128 << 10, BlockSize: 32 << 10}
	mbf := effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7}
	obs := &testObserver{}

	book := make(map[ids.PeerID]string)
	nodes := make([]*Node, N)
	stores := make([]*store.Store, N)
	dirs := make([]string, N)

	for i := 0; i < N; i++ {
		dirs[i] = filepath.Join(t.TempDir(), "data")
		st, err := store.Open(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		replica, err := st.Create(spec, uint64(i+1), content.PublisherBytes(spec))
		if err != nil {
			t.Fatal(err)
		}
		id := ids.PeerID(i + 1)
		n, err := New(Config{
			ID:          id,
			Listen:      "127.0.0.1:0",
			AddressBook: book,
			Protocol:    demoProtocolConfig(),
			Costs:       demoCosts(),
			MBF:         mbf,
			EffortUnit:  0.05,
			Seed:        uint64(2000 + i),
			Observer:    obs,
			Store:       st,
			ScrubPace:   10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n

		var refs []ids.PeerID
		for j := 0; j < N; j++ {
			if j != i {
				refs = append(refs, ids.PeerID(j+1))
			}
		}
		if err := n.AddAU(replica, refs); err != nil {
			t.Fatal(err)
		}
		n.SetFriends(refs)
		for _, r := range refs {
			n.Peer().SeedGrade(spec.ID, r, reputation.Even)
		}
	}

	// Node 0's disk rots silently at block 2 before the cluster starts:
	// real bits flip in blocks.dat, the manifest still vouches for the old
	// content, and no damage mark exists anywhere.
	if err := stores[0].InjectDamage(spec.ID, 2); err != nil {
		t.Fatal(err)
	}
	if stores[0].Replica(spec.ID).Damaged() {
		t.Fatal("injected damage must be silent")
	}

	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range nodes {
		addr := n.Addr().String()
		for _, m := range nodes {
			m.SetAddress(ids.PeerID(i+1), addr)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.After(45 * time.Second)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if cond() {
					return
				}
			case <-deadline:
				succ, other, repairs := obs.snapshot()
				t.Fatalf("%s did not happen in time (polls ok=%d other=%d repairs=%d, store0 %+v)",
					what, succ, other, repairs, nodes[0].StoreStats())
			}
		}
	}

	// Phase 1: the scrubber finds the silent rot and marks it.
	waitFor("scrub detection", func() bool {
		return nodes[0].StoreStats().BlocksDamaged >= 1
	})

	// Phase 2: polls confirm the damage against the cluster and repair the
	// bytes on disk; the whole store verifies again.
	waitFor("poll-driven repair", func() bool {
		dam, err := stores[0].VerifyAll()
		return err == nil && dam == nil && !stores[0].Replica(spec.ID).Damaged()
	})
	if _, _, repairs := obs.snapshot(); repairs == 0 {
		t.Error("no RepairApplied event observed")
	}
	if st := nodes[0].StoreStats(); st.BlocksRepaired == 0 {
		t.Errorf("store counters show no repair: %+v", st)
	}

	// Bounded shutdown with a store to flush: Stop must return promptly and
	// close the store exactly once.
	done := make(chan struct{})
	go func() {
		for _, n := range nodes {
			n.Stop()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Stop with durable stores did not return in time")
	}

	// Durability: reopen every store from disk; every manifest must verify.
	for i, dir := range dirs {
		re, err := store.Open(dir)
		if err != nil {
			t.Fatalf("node %d store not loadable after shutdown: %v", i, err)
		}
		dam, err := re.VerifyAll()
		if err != nil {
			t.Fatalf("node %d store verify: %v", i, err)
		}
		if dam != nil {
			t.Errorf("node %d store has damage after repair+shutdown: %v", i, dam)
		}
		re.Close()
	}
}

// TestStoreStatsWithoutStore: a storeless node reports zero store stats and
// stops cleanly (the store lifecycle hooks must be no-ops).
func TestStoreStatsWithoutStore(t *testing.T) {
	n, err := New(Config{
		ID:          1,
		Listen:      "127.0.0.1:0",
		AddressBook: map[ids.PeerID]string{2: "127.0.0.1:1"},
		Protocol:    demoProtocolConfig(),
		Costs:       demoCosts(),
		MBF:         effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7},
		Observer:    &testObserver{},
	})
	if err != nil {
		t.Fatal(err)
	}
	replica := content.NewRealReplica(content.AUSpec{ID: 1, Name: "x", Size: 1 << 10, BlockSize: 1 << 10}, 1)
	if err := n.AddAU(replica, []ids.PeerID{2}); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if st := n.StoreStats(); st != (store.Stats{}) {
		t.Errorf("storeless node reports store stats %+v", st)
	}
	n.Stop()
	_ = protocol.Outcome(0) // keep protocol import for the observer types
}
