package node

import (
	"testing"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/store"
)

// The durable-storage acceptance test (a real cluster repairing silent
// on-disk rot) lives in internal/harness as TestClusterRepairsDurableStore,
// built on the harness's exported cluster helpers.

// TestStoreStatsWithoutStore: a storeless node reports zero store stats and
// stops cleanly (the store lifecycle hooks must be no-ops).
func TestStoreStatsWithoutStore(t *testing.T) {
	n, err := New(Config{
		ID:          1,
		Listen:      "127.0.0.1:0",
		AddressBook: map[ids.PeerID]string{2: "127.0.0.1:1"},
		Protocol:    demoProtocolConfig(),
		Costs:       demoCosts(),
		MBF:         effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7},
		Observer:    &testObserver{},
	})
	if err != nil {
		t.Fatal(err)
	}
	replica := content.NewRealReplica(content.AUSpec{ID: 1, Name: "x", Size: 1 << 10, BlockSize: 1 << 10}, 1)
	if err := n.AddAU(replica, []ids.PeerID{2}); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if st := n.StoreStats(); st != (store.Stats{}) {
		t.Errorf("storeless node reports store stats %+v", st)
	}
	n.Stop()
	_ = protocol.Outcome(0) // keep protocol import for the observer types
}
