package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
)

// testObserver records poll conclusions and repairs thread-safely.
type testObserver struct {
	mu        sync.Mutex
	succeeded int
	other     int
	repairs   int
}

func (o *testObserver) PollConcluded(p ids.PeerID, au content.AUID, pollID uint64, out protocol.Outcome, started, now sched.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if out == protocol.OutcomeSuccess {
		o.succeeded++
	} else {
		o.other++
	}
}
func (o *testObserver) Alarm(ids.PeerID, content.AUID, uint64, sched.Time) {}
func (o *testObserver) RepairApplied(p ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.repairs++
}
func (o *testObserver) VoteSupplied(ids.PeerID, ids.PeerID, content.AUID, uint64, sched.Time) {}

func (o *testObserver) snapshot() (succ, other, repairs int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.succeeded, o.other, o.repairs
}

// demoProtocolConfig compresses the protocol's preservation timescales to
// sub-second units so an audit-and-repair round completes in a test.
func demoProtocolConfig() protocol.Config {
	cfg := protocol.DefaultConfig()
	cfg.Quorum = 3
	cfg.InnerCircle = 5
	cfg.MaxDisagree = 1
	cfg.OuterCircle = 2
	cfg.Nominations = 3
	cfg.PollInterval = 1500 * time.Millisecond
	cfg.VoteWindow = 700 * time.Millisecond
	cfg.AckTimeout = 250 * time.Millisecond
	cfg.ProofTimeout = 150 * time.Millisecond
	cfg.VoteSlack = 300 * time.Millisecond
	cfg.ReceiptSlack = 500 * time.Millisecond
	cfg.RepairTimeout = 400 * time.Millisecond
	cfg.Refractory = 200 * time.Millisecond
	cfg.GradeDecay = time.Hour
	cfg.FrivolousRepairProb = 0
	cfg.RefListTarget = 5
	cfg.RefListMax = 8
	cfg.ConsiderBurst = 64
	cfg.BlockSize = 32 << 10
	return cfg
}

// demoCosts makes effort scheduling negligible against the compressed
// timescales while remaining non-zero.
func demoCosts() effort.CostModel {
	m := effort.DefaultCostModel()
	m.HashBytesPerSec = 64 << 30 // hashing 128 KiB "costs" ~2us of schedule
	m.SessionSetup = 1e-6
	m.ScheduleCheck = 1e-6
	m.ReceiptCheck = 1e-6
	return m
}

// TestClusterAuditAndRepair boots a real 6-node TCP cluster with one
// damaged replica and waits for the audit protocol to detect and repair it
// using real hashing, MBF proofs and encrypted sessions.
func TestClusterAuditAndRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	const N = 6
	spec := content.AUSpec{ID: 1, Name: "au-demo", Size: 128 << 10, BlockSize: 32 << 10}

	mbf := effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7}
	obs := &testObserver{}

	book := make(map[ids.PeerID]string)
	nodes := make([]*Node, N)
	replicas := make([]*content.RealReplica, N)

	// Start with placeholder addresses; fill the book after binding.
	for i := 0; i < N; i++ {
		id := ids.PeerID(i + 1)
		n, err := New(Config{
			ID:          id,
			Listen:      "127.0.0.1:0",
			AddressBook: book,
			Protocol:    demoProtocolConfig(),
			Costs:       demoCosts(),
			MBF:         mbf,
			EffortUnit:  0.05,
			Seed:        uint64(1000 + i),
			Observer:    obs,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		replicas[i] = content.NewRealReplica(spec, uint64(i+1))
	}

	// Node 0's replica suffers bit rot at block 2 before the system starts.
	if !replicas[0].Damage(2) {
		t.Fatal("damage injection failed")
	}
	if !replicas[0].Damaged() {
		t.Fatal("replica should be damaged")
	}

	for i, n := range nodes {
		var refs []ids.PeerID
		for j := 0; j < N; j++ {
			if j != i {
				refs = append(refs, ids.PeerID(j+1))
			}
		}
		if err := n.AddAU(replicas[i], refs); err != nil {
			t.Fatal(err)
		}
		n.SetFriends(refs)
		// Steady-state acquaintance, as in a deployed network.
		for _, r := range refs {
			n.Peer().SeedGrade(spec.ID, r, reputation.Even)
		}
	}

	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Ephemeral ports are known only now; bind them through the race-safe
	// setter rather than mutating the shared book under running nodes.
	for i, n := range nodes {
		addr := n.Addr().String()
		for _, m := range nodes {
			m.SetAddress(ids.PeerID(i+1), addr)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	deadline := time.After(30 * time.Second)
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	// Replicas belong to their node's actor loop once started; Inspect
	// gives the test race-free reads.
	damaged0 := func() bool {
		var d bool
		nodes[0].Inspect(func(p *protocol.Peer) { d = p.Replica(spec.ID).Damaged() })
		return d
	}
	for {
		select {
		case <-tick.C:
			succ, _, _ := obs.snapshot()
			if !damaged0() && succ >= N {
				succ, other, repairs := obs.snapshot()
				t.Logf("repaired; polls ok=%d other=%d repairs=%d", succ, other, repairs)
				return
			}
		case <-deadline:
			succ, other, repairs := obs.snapshot()
			t.Fatalf("cluster did not repair in time: damaged=%v polls ok=%d other=%d repairs=%d",
				damaged0(), succ, other, repairs)
		}
	}
}

// TestSenderOf checks role-based sender inference.
func TestSenderOf(t *testing.T) {
	m := &protocol.Msg{Type: protocol.MsgVote, Poller: 1, Voter: 2}
	if senderOf(m) != 2 {
		t.Errorf("vote sender = %v, want voter", senderOf(m))
	}
	m.Type = protocol.MsgPoll
	if senderOf(m) != 1 {
		t.Errorf("poll sender = %v, want poller", senderOf(m))
	}
	for _, typ := range []protocol.MsgType{
		protocol.MsgPollAck, protocol.MsgRepair,
	} {
		if senderOf(&protocol.Msg{Type: typ, Poller: 1, Voter: 2}) != 2 {
			t.Errorf("%v sender should be voter", typ)
		}
	}
	for _, typ := range []protocol.MsgType{
		protocol.MsgPollProof, protocol.MsgRepairRequest, protocol.MsgEvaluationReceipt,
	} {
		if senderOf(&protocol.Msg{Type: typ, Poller: 1, Voter: 2}) != 1 {
			t.Errorf("%v sender should be poller", typ)
		}
	}
	_ = fmt.Sprintf // keep fmt for future debug
}
