// Package node runs a real LOCKSS peer: the same protocol state machines as
// the simulator, driven by the wall clock, real SHA-256 content hashing,
// real memory-bound-function effort proofs, and encrypted TCP transport.
//
// A Node is an actor: all protocol callbacks (incoming messages, timers)
// execute on one internal goroutine, preserving the protocol package's
// single-threaded contract.
package node

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/sched"
	"lockss/internal/session"
	"lockss/internal/store"
	"lockss/internal/telemetry"
	"lockss/internal/wire"
)

// Config configures a networked peer.
type Config struct {
	// ID is this peer's identity.
	ID ids.PeerID
	// Listen is the TCP listen address, e.g. ":7421".
	Listen string
	// AddressBook maps peer identities to dial addresses.
	AddressBook map[ids.PeerID]string
	// Protocol is the protocol operating point (scale timeouts down for
	// demos: the defaults audit on a 3-month cadence).
	Protocol protocol.Config
	// Costs is the effort cost model used for scheduling and balancing.
	Costs effort.CostModel
	// MBF parameterizes the real proofs of effort. All peers must agree.
	MBF effort.MBFParams
	// EffortUnit is the effort-seconds one MBF walk stands for when scaling
	// proof sizes to requested costs.
	EffortUnit effort.Seconds
	// Seed drives the peer's (non-cryptographic) protocol randomness.
	Seed uint64
	// Observer receives protocol events (may be nil).
	Observer protocol.Observer
	// Tap, if non-nil, observes the exact event stream driving the protocol
	// state machine — decoded inbound frames, live timer firings, outbound
	// messages, scrub-detected damage — synchronously on the actor loop, in
	// execution order. Trace recording (internal/trace) hangs off this hook.
	Tap protocol.EnvTap
	// Logf, if non-nil, receives diagnostic logs.
	Logf func(format string, args ...any)

	// SendQueue bounds each peer's outbound message queue; when a queue is
	// full its oldest message is dropped to admit the new one (the network
	// is lossy by contract — the protocol's timeouts own reliability, and
	// fresh messages are the ones a slow peer can still use). Default 128.
	SendQueue int
	// MaxInbound caps concurrent inbound sessions across all remotes;
	// connections beyond the cap are closed at accept. Default 256.
	MaxInbound int
	// MaxInboundPerAddr caps concurrent inbound sessions per remote IP —
	// charged from accept through session end, so one address can neither
	// flood handshakes nor park established sessions to monopolize the
	// global budget. Default 16.
	MaxInboundPerAddr int
	// DialTimeout bounds one outbound connection attempt — the TCP dial
	// and the session handshake share this one budget. It is also the
	// deadline for each inbound handshake, i.e. how long a half-open
	// connection may hold an admission slot. Default 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a remote that stops reading
	// (pipe stoppage) fails the write instead of wedging the writer.
	// Default 10s.
	WriteTimeout time.Duration
	// DialBackoffMin and DialBackoffMax bound the jittered exponential
	// backoff between failed dials to the same peer. Defaults 100ms / 15s.
	DialBackoffMin time.Duration
	DialBackoffMax time.Duration
	// InboundIdleTimeout reaps an established inbound session that stays
	// silent this long, reclaiming its admission slots — without it, an
	// adversary could park handshaked-but-mute sessions until MaxInbound
	// is exhausted. Legitimate peers transparently redial on their next
	// send. Default 5m.
	InboundIdleTimeout time.Duration

	// Store, if non-nil, is the durable on-disk AU store backing this
	// node's replicas. The node owns its lifecycle from Start on: it runs
	// the store's background scrubber (damage found on disk raises the
	// AU's audit priority), surfaces its counters via StoreStats, and
	// flushes and closes it during Stop — after every protocol goroutine
	// has drained, so no callback can touch a closed store. Register the
	// store's replicas with AddAU before Start, as with any replica.
	Store *store.Store
	// ScrubPace is the pause between scrubbed blocks (see
	// store.ScrubConfig.Pace). Default 1s.
	ScrubPace time.Duration
	// ScrubWorkers shards the scrubber across this many concurrent workers
	// (see store.ScrubConfig.Workers). Default 1.
	ScrubWorkers int
	// ScrubBandwidth caps the scrubber's total read rate in bytes/second
	// across all workers (see store.ScrubConfig.Bandwidth). 0 = unlimited.
	ScrubBandwidth int64
}

// Node is a running peer.
type Node struct {
	cfg  Config
	peer *protocol.Peer
	mbf  *effort.MBF
	rnd  *prng.Source
	// tel is the always-on flight recorder: poll-lifecycle spans and latency
	// histograms, teed into the protocol observer chain. Its record path is
	// lock-free, so it rides every deployment rather than being a debug knob.
	tel *telemetry.Telemetry

	loop     chan func()
	stop     chan struct{}
	stopped  sync.Once
	listener net.Listener
	wg       sync.WaitGroup

	// tr owns all outbound links and inbound admission (transport.go).
	tr *transport
	// dialCtx is cancelled by Stop so in-flight dials abort instead of
	// outliving shutdown by up to a full DialTimeout.
	dialCtx    context.Context
	dialCancel context.CancelFunc

	mu sync.Mutex
	// all tracks every live session (inbound and outbound) so Stop can
	// unblock their read loops.
	all map[*session.Conn]struct{}
	// raws tracks raw conns that are mid-handshake (no session yet) so
	// Stop can abort handshakes against silent remotes promptly.
	raws map[net.Conn]struct{}
	// addrs is the node's own copy of the address book, guarded by mu so
	// operators can bind addresses (SetAddress) after peers have started.
	addrs map[ids.PeerID]string

	// tmu guards the timer table on its own lock: protocol timers must
	// never contend with transport or session state, so a stalled peer
	// cannot delay a timer arm or cancel.
	tmu sync.Mutex
	// timers maps protocol timer IDs to their wall-clock timers so the
	// protocol can cancel by ID; fired and cancelled entries are removed.
	timers   map[protocol.TimerID]*time.Timer
	timerSeq uint64
}

// New builds a node. AddAU must be called before Start.
func New(cfg Config) (*Node, error) {
	if cfg.ID == ids.NoPeer {
		return nil, errors.New("node: missing peer ID")
	}
	if cfg.EffortUnit <= 0 {
		cfg.EffortUnit = 1
	}
	if cfg.MBF.TableWords == 0 {
		cfg.MBF = effort.DefaultMBFParams()
	}
	n := &Node{
		cfg:    cfg,
		tel:    telemetry.New(),
		mbf:    effort.NewMBF(cfg.MBF),
		rnd:    prng.New(cfg.Seed ^ uint64(cfg.ID)*0x9e3779b97f4a7c15),
		loop:   make(chan func(), 1024),
		stop:   make(chan struct{}),
		all:    make(map[*session.Conn]struct{}),
		raws:   make(map[net.Conn]struct{}),
		timers: make(map[protocol.TimerID]*time.Timer),
		addrs:  make(map[ids.PeerID]string, len(cfg.AddressBook)),
	}
	for id, addr := range cfg.AddressBook {
		n.addrs[id] = addr
	}
	n.dialCtx, n.dialCancel = context.WithCancel(context.Background())
	n.tr = newTransport(n, transportConfig{
		sendQueue:         cfg.SendQueue,
		maxInbound:        cfg.MaxInbound,
		maxInboundPerAddr: cfg.MaxInboundPerAddr,
		dialTimeout:       cfg.DialTimeout,
		writeTimeout:      cfg.WriteTimeout,
		backoffMin:        cfg.DialBackoffMin,
		backoffMax:        cfg.DialBackoffMax,
		inboundIdle:       cfg.InboundIdleTimeout,
	}.withDefaults())
	// The telemetry recorder leads the tee so spans are recorded before any
	// user observer runs; TeeObserver also forwards span events to it.
	p, err := protocol.New(cfg.ID, cfg.Protocol, cfg.Costs, (*env)(n), protocol.TeeObserver(n.tel, cfg.Observer))
	if err != nil {
		return nil, err
	}
	n.peer = p
	return n, nil
}

// Peer exposes the protocol peer for inspection (replicas, stats).
func (n *Node) Peer() *protocol.Peer { return n.peer }

// Telemetry exposes the node's always-on flight recorder (histograms, poll
// spans, event ring). Safe to read concurrently with a running node.
func (n *Node) Telemetry() *telemetry.Telemetry { return n.tel }

// SetScrubPace retunes the running scrubber's per-block pause (no-op without
// a store). See store.SetScrubPace.
func (n *Node) SetScrubPace(d time.Duration) {
	if n.cfg.Store != nil {
		n.cfg.Store.SetScrubPace(d)
	}
}

// SetScrubBandwidth retunes the running scrubber's byte budget (no-op
// without a store). See store.SetScrubBandwidth.
func (n *Node) SetScrubBandwidth(bytesPerSec int64) {
	if n.cfg.Store != nil {
		n.cfg.Store.SetScrubBandwidth(bytesPerSec)
	}
}

// ID returns the node's peer identity.
func (n *Node) ID() ids.PeerID { return n.cfg.ID }

// HasStore reports whether the node runs on a durable on-disk store.
func (n *Node) HasStore() bool { return n.cfg.Store != nil }

// Stats is one aggregate snapshot of everything the node counts: the
// protocol peer's event counters, the transport's link counters and (when
// the node runs on a durable store) the store's scrub counters. It is the
// single source for the admin API's /metrics, the -stats-interval one-liner
// and the exit statistics.
type Stats struct {
	Peer      protocol.PeerStats
	Transport TransportStats
	Store     store.Stats
}

// Stats snapshots the aggregate counters. The protocol counters are read on
// the actor loop (a bounded post round-trip); transport and store counters
// are atomic snapshots. Blocks until the actor loop responds; after Stop it
// reads the drained peer directly. Use StatsWithin to bound the wait against
// a wedged loop.
func (n *Node) Stats() Stats {
	s, _ := n.statsWait(nil)
	return s
}

// StatsWithin is Stats with a deadline: when the actor loop does not respond
// within d (wedged or overloaded), ok is false and the snapshot carries only
// the transport and store counters. The protocol read stays queued and
// completes harmlessly if the loop recovers.
func (n *Node) StatsWithin(d time.Duration) (Stats, bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return n.statsWait(timer.C)
}

func (n *Node) statsWait(timeout <-chan time.Time) (Stats, bool) {
	s := Stats{Transport: n.tr.stats(), Store: n.StoreStats()}
	done := make(chan protocol.PeerStats, 1)
	go func() {
		if !n.Inspect(func(p *protocol.Peer) { done <- p.Stats() }) {
			// Stopping or stopped: wait for every goroutine to drain, after
			// which nothing else touches the peer and a direct read is safe.
			n.wg.Wait()
			done <- n.peer.Stats()
		}
	}()
	select {
	case ps := <-done:
		s.Peer = ps
		return s, true
	case <-timeout:
		return s, false
	}
}

// LinkInfos snapshots the transport's outbound links (queue depth, live
// session, pending backoff), sorted by peer ID. Safe to call concurrently
// with a running node.
func (n *Node) LinkInfos() []LinkInfo { return n.tr.linkInfos() }

// Addresses returns a copy of the node's current address book.
func (n *Node) Addresses() map[ids.PeerID]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[ids.PeerID]string, len(n.addrs))
	for id, addr := range n.addrs {
		out[id] = addr
	}
	return out
}

// Drain gracefully shuts the node down: the peer stops calling new polls,
// every in-flight poll runs to its conclusion (the protocol's guard timer
// bounds that by one poll window plus grace), and only then is the node
// stopped — which flushes and closes the durable store. Voter sessions keep
// serving votes and repairs until the stop, so a draining node remains
// useful to the population to its last moment. Cancelling ctx abandons the
// wait and returns without stopping; a nil error means the node is down.
// Draining an already-stopped node returns nil immediately.
func (n *Node) Drain(ctx context.Context) error {
	if !n.Inspect(func(p *protocol.Peer) { p.Drain() }) {
		return nil // already stopped
	}
	n.logf("draining: no new polls; waiting for in-flight polls")
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		idle := false
		if !n.Inspect(func(p *protocol.Peer) { idle = p.ActivePolls() == 0 }) {
			break // stopped underneath us; Stop below is idempotent
		}
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	n.logf("drained: stopping")
	n.Stop()
	return nil
}

// DropConnections closes every live session (inbound and outbound) without
// stopping the node. Peers re-establish on demand through the normal dial
// path, so this is an operational "sever and let it heal" action — the fleet
// harness uses it to make address-book partitions bite immediately instead
// of waiting for established sessions to idle out.
func (n *Node) DropConnections() {
	n.mu.Lock()
	conns := make([]*session.Conn, 0, len(n.all))
	for c := range n.all {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// TransportStats snapshots the transport counters (sends, drops, dials,
// redials, queue high-water, inbound admission). Safe to call concurrently
// with a running node.
func (n *Node) TransportStats() TransportStats { return n.tr.stats() }

// StoreStats snapshots the durable store's counters (blocks scanned,
// verified, damaged and repaired, scrub passes, manifest writes). Zero when
// the node runs without a store. Safe to call concurrently with a running
// node.
func (n *Node) StoreStats() store.Stats {
	if n.cfg.Store == nil {
		return store.Stats{}
	}
	return n.cfg.Store.Stats()
}

// AddAU registers a replica to preserve; see protocol.Peer.AddAU.
func (n *Node) AddAU(replica content.Replica, refs []ids.PeerID) error {
	return n.peer.AddAU(replica, refs)
}

// SetFriends installs the operator's friends list.
func (n *Node) SetFriends(friends []ids.PeerID) { n.peer.SetFriends(friends) }

// SetAddress binds (or rebinds) a peer's dial address. Safe while the node
// is running — clusters that bind ephemeral listen ports fill the book
// after every member has started.
func (n *Node) SetAddress(peer ids.PeerID, addr string) {
	n.mu.Lock()
	n.addrs[peer] = addr
	n.mu.Unlock()
}

// Inspect runs fn on the actor loop and waits for it, giving callers
// race-free access to the peer's state machines and replicas while the node
// runs. It returns false (without running fn) once the node is stopped.
func (n *Node) Inspect(fn func(p *protocol.Peer)) bool {
	done := make(chan struct{})
	select {
	case n.loop <- func() { fn(n.peer); close(done) }:
	case <-n.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.stop:
		return false
	}
}

// logf logs when configured.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf("node %v: %s", n.cfg.ID, fmt.Sprintf(format, args...))
	}
}

// post schedules fn on the actor loop; drops silently after Stop.
func (n *Node) post(fn func()) {
	select {
	case n.loop <- fn:
	case <-n.stop:
	}
}

// Start begins listening and launches the protocol.
func (n *Node) Start() error {
	l, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("node: listen: %w", err)
	}
	n.listener = l
	n.wg.Add(2)
	go n.runLoop()
	go n.acceptLoop()
	if n.cfg.Store != nil {
		// Scrub found damage on disk: raise the AU's audit priority on the
		// actor loop so that if the in-flight poll fails to heal it, the
		// retry comes a quarter interval later instead of a full one. The
		// scrubber re-observes unrepaired damage every pass, re-raising the
		// priority until a poll heals the block.
		n.cfg.Store.StartScrub(store.ScrubConfig{
			Pace:      n.cfg.ScrubPace,
			Workers:   n.cfg.ScrubWorkers,
			Bandwidth: n.cfg.ScrubBandwidth,
			OnDamage: func(au content.AUID, block int) {
				n.logf("scrub: AU %d block %d damaged on disk", au, block)
				n.tel.DamageNoticed(n.cfg.ID, au, block, (*env)(n).Now())
				n.post(func() {
					if n.cfg.Tap != nil {
						n.cfg.Tap.DamageNoticed(au, block, (*env)(n).Now())
					}
					n.peer.RaiseAuditPriority(au)
				})
			},
			OnPass: func(d time.Duration) {
				n.tel.ScrubPass.Observe(int64(d))
			},
		})
	}
	n.post(func() { n.peer.Start() })
	n.logf("listening on %v", l.Addr())
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (n *Node) Addr() net.Addr {
	if n.listener == nil {
		return nil
	}
	return n.listener.Addr()
}

// Stop terminates the node within a bounded time regardless of peer
// behavior: the stop channel unwinds the actor loop and every per-peer
// writer, cancelling dialCtx aborts in-flight dials, and closing tracked
// sessions and mid-handshake raw conns unblocks reads, writes and
// handshakes stalled on a wedged remote. Every goroutine the node spawns is
// in n.wg, so when Wait returns nothing is left running — only then is the
// durable store (if any) flushed and closed, so no protocol callback or
// scrub pass can race a closed block file.
func (n *Node) Stop() {
	n.stopped.Do(func() {
		close(n.stop)
		n.dialCancel()
		n.tr.close()
		if n.listener != nil {
			n.listener.Close()
		}
		n.mu.Lock()
		for c := range n.all {
			c.Close()
		}
		for r := range n.raws {
			r.Close()
		}
		n.all = map[*session.Conn]struct{}{}
		n.raws = map[net.Conn]struct{}{}
		n.mu.Unlock()
	})
	n.wg.Wait()
	if n.cfg.Store != nil {
		// Store.Close is idempotent (and remembers its first error), so
		// repeated Stop calls are safe.
		if err := n.cfg.Store.Close(); err != nil {
			n.logf("store close: %v", err)
		}
	}
}

// runLoop is the actor goroutine: every protocol callback runs here.
func (n *Node) runLoop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.loop:
			fn()
		case <-n.stop:
			return
		}
	}
}

// acceptLoop serves inbound sessions behind the transport's admission caps.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.tr.admit(raw) {
			n.logf("inbound from %v rejected: admission cap", raw.RemoteAddr())
			raw.Close()
			continue
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer n.tr.inboundDone(raw)
			// Bound the handshake so a half-open connection cannot hold an
			// admission slot indefinitely; track the raw conn so Stop can
			// abort the handshake immediately.
			n.trackRaw(raw)
			raw.SetDeadline(time.Now().Add(n.tr.cfg.dialTimeout))
			conn, err := session.Server(raw)
			n.untrackRaw(raw)
			if err != nil {
				n.logf("inbound handshake failed: %v", err)
				raw.Close()
				return
			}
			raw.SetDeadline(time.Time{})
			conn.SetWriteTimeout(n.tr.cfg.writeTimeout)
			// A silent established session is reaped so it cannot park
			// its admission slots forever; real peers redial on demand.
			conn.SetReadIdleTimeout(n.tr.cfg.inboundIdle)
			n.readLoop(conn)
		}()
	}
}

// track registers a live session for shutdown; it reports false (closing
// the session) if Stop already ran, so a session that finished its
// handshake during shutdown cannot escape the close sweep.
func (n *Node) track(conn *session.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.stop:
		conn.Close()
		return false
	default:
	}
	n.all[conn] = struct{}{}
	return true
}

// untrack forgets a closed session.
func (n *Node) untrack(conn *session.Conn) {
	n.mu.Lock()
	delete(n.all, conn)
	n.mu.Unlock()
}

// trackRaw registers a mid-handshake conn for Stop's close sweep; if Stop
// already ran the conn is closed on the spot so the handshake fails fast.
func (n *Node) trackRaw(raw net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.stop:
		raw.Close()
	default:
		n.raws[raw] = struct{}{}
	}
}

// untrackRaw forgets a conn whose handshake resolved.
func (n *Node) untrackRaw(raw net.Conn) {
	n.mu.Lock()
	delete(n.raws, raw)
	n.mu.Unlock()
}

// readLoop decodes frames from one session and feeds the protocol.
func (n *Node) readLoop(conn *session.Conn) {
	if !n.track(conn) {
		return
	}
	defer n.untrack(conn)
	defer conn.Close()
	for {
		frame, err := conn.ReadMsg()
		if err != nil {
			return
		}
		m, err := wire.Decode(frame)
		if err != nil {
			n.logf("bad frame: %v", err)
			return
		}
		from := senderOf(m)
		// session.ReadMsg returns a fresh buffer per frame, so the tap may
		// retain frame without copying.
		n.post(func() {
			if n.cfg.Tap != nil {
				n.cfg.Tap.MsgIn(from, frame, m, (*env)(n).Now())
			}
			n.peer.Receive(from, m)
		})
	}
}

// senderOf infers the ostensible sender identity from the message role.
// Sessions are anonymous (per the paper); identity is claimed, and the
// protocol's defenses are designed for exactly that.
func senderOf(m *protocol.Msg) ids.PeerID {
	switch m.Type {
	case protocol.MsgPollAck, protocol.MsgVote, protocol.MsgRepair:
		return m.Voter
	default:
		return m.Poller
	}
}

// env adapts Node to protocol.Env.
type env Node

// Now implements protocol.Env on the wall clock; Unix nanoseconds are
// consistent across cooperating nodes (the protocol tolerates ordinary
// clock skew through its generous timeouts).
func (e *env) Now() sched.Time { return sched.Time(time.Now().UnixNano()) }

// After implements protocol.Env. The liveness check runs inside the posted
// closure — on the actor loop, the same goroutine that calls Cancel — so a
// timer whose AfterFunc fired concurrently with its cancellation is still
// suppressed. The protocol's record pooling relies on a cancelled timer
// never reaching its callback.
func (e *env) After(d sched.Duration, fn func()) protocol.TimerID {
	n := (*Node)(e)
	if d < 0 {
		d = 0
	}
	n.tmu.Lock()
	n.timerSeq++
	id := protocol.TimerID(n.timerSeq)
	n.timers[id] = time.AfterFunc(time.Duration(d), func() {
		n.post(func() {
			n.tmu.Lock()
			_, live := n.timers[id]
			delete(n.timers, id)
			n.tmu.Unlock()
			if live {
				// Cancelled timers never reach here, so the tap records
				// exactly the firings that drove the state machine.
				if n.cfg.Tap != nil {
					n.cfg.Tap.TimerFired(id, e.Now())
				}
				fn()
			}
		})
	})
	n.tmu.Unlock()
	return id
}

// Cancel implements protocol.Env.
func (e *env) Cancel(id protocol.TimerID) bool {
	n := (*Node)(e)
	n.tmu.Lock()
	t, ok := n.timers[id]
	delete(n.timers, id)
	n.tmu.Unlock()
	if ok {
		t.Stop() // best-effort; the loop-side liveness check is authoritative
	}
	return ok
}

// Rand implements protocol.Env.
func (e *env) Rand() *prng.Source { return e.rnd }

// Send implements protocol.Env. The message is encoded to bytes here,
// synchronously on the actor loop, because the protocol pools the records
// backing m's fields and may reuse them the moment this call returns; only
// the encoded buffer travels to the per-peer writer. The call never blocks:
// a full queue drops the message (transport.go).
func (e *env) Send(to ids.PeerID, m *protocol.Msg) {
	if e.cfg.Tap != nil {
		e.cfg.Tap.MsgOut(to, m, e.Now())
	}
	(*Node)(e).tr.send(to, m)
}

// units scales a requested effort cost to MBF walk units.
func (e *env) units(cost effort.Seconds) int {
	u := int(float64(cost)/float64(e.cfg.EffortUnit)) + 1
	if u < 1 {
		u = 1
	}
	if u > 64 {
		u = 64
	}
	return u
}

// MakeProof implements protocol.Env with a real MBF computation.
func (e *env) MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt) {
	p, r := e.mbf.Generate(ctx, e.units(cost), e.cfg.EffortUnit)
	p.UnitCost = effort.Seconds(float64(cost) / float64(p.Units))
	return p, r
}

// VerifyProof implements protocol.Env: spot-check verification.
func (e *env) VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool {
	mp, ok := p.(*effort.MBFProof)
	if !ok || mp == nil {
		return false
	}
	e.mbf.Bind(mp)
	return mp.Cost() >= minCost-1e-9 && e.mbf.Verify(mp, ctx)
}

// EvalReceipt implements protocol.Env: the full walk recovers the receipt
// byproduct.
func (e *env) EvalReceipt(ctx []byte, p effort.Proof) (effort.Receipt, bool) {
	mp, ok := p.(*effort.MBFProof)
	if !ok || mp == nil {
		return effort.Receipt{}, false
	}
	e.mbf.Bind(mp)
	return e.mbf.RecomputeByproduct(mp, ctx)
}
