// Package node runs a real LOCKSS peer: the same protocol state machines as
// the simulator, driven by the wall clock, real SHA-256 content hashing,
// real memory-bound-function effort proofs, and encrypted TCP transport.
//
// A Node is an actor: all protocol callbacks (incoming messages, timers)
// execute on one internal goroutine, preserving the protocol package's
// single-threaded contract.
package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/sched"
	"lockss/internal/session"
	"lockss/internal/wire"
)

// Config configures a networked peer.
type Config struct {
	// ID is this peer's identity.
	ID ids.PeerID
	// Listen is the TCP listen address, e.g. ":7421".
	Listen string
	// AddressBook maps peer identities to dial addresses.
	AddressBook map[ids.PeerID]string
	// Protocol is the protocol operating point (scale timeouts down for
	// demos: the defaults audit on a 3-month cadence).
	Protocol protocol.Config
	// Costs is the effort cost model used for scheduling and balancing.
	Costs effort.CostModel
	// MBF parameterizes the real proofs of effort. All peers must agree.
	MBF effort.MBFParams
	// EffortUnit is the effort-seconds one MBF walk stands for when scaling
	// proof sizes to requested costs.
	EffortUnit effort.Seconds
	// Seed drives the peer's (non-cryptographic) protocol randomness.
	Seed uint64
	// Observer receives protocol events (may be nil).
	Observer protocol.Observer
	// Logf, if non-nil, receives diagnostic logs.
	Logf func(format string, args ...any)
}

// Node is a running peer.
type Node struct {
	cfg  Config
	peer *protocol.Peer
	mbf  *effort.MBF
	rnd  *prng.Source

	loop     chan func()
	stop     chan struct{}
	stopped  sync.Once
	listener net.Listener
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[ids.PeerID]*session.Conn
	// all tracks every live session (inbound and outbound) so Stop can
	// unblock their read loops.
	all map[*session.Conn]struct{}

	// timers maps protocol timer IDs to their wall-clock timers so the
	// protocol can cancel by ID; fired and cancelled entries are removed.
	timers   map[protocol.TimerID]*time.Timer
	timerSeq uint64

	// addrs is the node's own copy of the address book, guarded by mu so
	// operators can bind addresses (SetAddress) after peers have started.
	addrs map[ids.PeerID]string
}

// New builds a node. AddAU must be called before Start.
func New(cfg Config) (*Node, error) {
	if cfg.ID == ids.NoPeer {
		return nil, errors.New("node: missing peer ID")
	}
	if cfg.EffortUnit <= 0 {
		cfg.EffortUnit = 1
	}
	if cfg.MBF.TableWords == 0 {
		cfg.MBF = effort.DefaultMBFParams()
	}
	n := &Node{
		cfg:    cfg,
		mbf:    effort.NewMBF(cfg.MBF),
		rnd:    prng.New(cfg.Seed ^ uint64(cfg.ID)*0x9e3779b97f4a7c15),
		loop:   make(chan func(), 1024),
		stop:   make(chan struct{}),
		conns:  make(map[ids.PeerID]*session.Conn),
		all:    make(map[*session.Conn]struct{}),
		timers: make(map[protocol.TimerID]*time.Timer),
		addrs:  make(map[ids.PeerID]string, len(cfg.AddressBook)),
	}
	for id, addr := range cfg.AddressBook {
		n.addrs[id] = addr
	}
	p, err := protocol.New(cfg.ID, cfg.Protocol, cfg.Costs, (*env)(n), cfg.Observer)
	if err != nil {
		return nil, err
	}
	n.peer = p
	return n, nil
}

// Peer exposes the protocol peer for inspection (replicas, stats).
func (n *Node) Peer() *protocol.Peer { return n.peer }

// AddAU registers a replica to preserve; see protocol.Peer.AddAU.
func (n *Node) AddAU(replica content.Replica, refs []ids.PeerID) error {
	return n.peer.AddAU(replica, refs)
}

// SetFriends installs the operator's friends list.
func (n *Node) SetFriends(friends []ids.PeerID) { n.peer.SetFriends(friends) }

// SetAddress binds (or rebinds) a peer's dial address. Safe while the node
// is running — clusters that bind ephemeral listen ports fill the book
// after every member has started.
func (n *Node) SetAddress(peer ids.PeerID, addr string) {
	n.mu.Lock()
	n.addrs[peer] = addr
	n.mu.Unlock()
}

// Inspect runs fn on the actor loop and waits for it, giving callers
// race-free access to the peer's state machines and replicas while the node
// runs. It returns false (without running fn) once the node is stopped.
func (n *Node) Inspect(fn func(p *protocol.Peer)) bool {
	done := make(chan struct{})
	select {
	case n.loop <- func() { fn(n.peer); close(done) }:
	case <-n.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.stop:
		return false
	}
}

// logf logs when configured.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf("node %v: %s", n.cfg.ID, fmt.Sprintf(format, args...))
	}
}

// post schedules fn on the actor loop; drops silently after Stop.
func (n *Node) post(fn func()) {
	select {
	case n.loop <- fn:
	case <-n.stop:
	}
}

// Start begins listening and launches the protocol.
func (n *Node) Start() error {
	l, err := net.Listen("tcp", n.cfg.Listen)
	if err != nil {
		return fmt.Errorf("node: listen: %w", err)
	}
	n.listener = l
	n.wg.Add(2)
	go n.runLoop()
	go n.acceptLoop()
	n.post(func() { n.peer.Start() })
	n.logf("listening on %v", l.Addr())
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (n *Node) Addr() net.Addr {
	if n.listener == nil {
		return nil
	}
	return n.listener.Addr()
}

// Stop terminates the node.
func (n *Node) Stop() {
	n.stopped.Do(func() {
		close(n.stop)
		if n.listener != nil {
			n.listener.Close()
		}
		n.mu.Lock()
		for c := range n.all {
			c.Close()
		}
		n.all = map[*session.Conn]struct{}{}
		n.conns = map[ids.PeerID]*session.Conn{}
		n.mu.Unlock()
	})
	n.wg.Wait()
}

// runLoop is the actor goroutine: every protocol callback runs here.
func (n *Node) runLoop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.loop:
			fn()
		case <-n.stop:
			return
		}
	}
}

// acceptLoop serves inbound sessions.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			// Bound the handshake so a half-open connection cannot wedge
			// shutdown.
			raw.SetDeadline(time.Now().Add(10 * time.Second))
			conn, err := session.Server(raw)
			if err != nil {
				n.logf("inbound handshake failed: %v", err)
				raw.Close()
				return
			}
			raw.SetDeadline(time.Time{})
			n.readLoop(conn)
		}()
	}
}

// track registers a live session for shutdown.
func (n *Node) track(conn *session.Conn) {
	n.mu.Lock()
	n.all[conn] = struct{}{}
	n.mu.Unlock()
}

// untrack forgets a closed session.
func (n *Node) untrack(conn *session.Conn) {
	n.mu.Lock()
	delete(n.all, conn)
	n.mu.Unlock()
}

// readLoop decodes frames from one session and feeds the protocol.
func (n *Node) readLoop(conn *session.Conn) {
	n.track(conn)
	defer n.untrack(conn)
	defer conn.Close()
	for {
		frame, err := conn.ReadMsg()
		if err != nil {
			return
		}
		m, err := wire.Decode(frame)
		if err != nil {
			n.logf("bad frame: %v", err)
			return
		}
		from := senderOf(m)
		n.post(func() { n.peer.Receive(from, m) })
	}
}

// senderOf infers the ostensible sender identity from the message role.
// Sessions are anonymous (per the paper); identity is claimed, and the
// protocol's defenses are designed for exactly that.
func senderOf(m *protocol.Msg) ids.PeerID {
	switch m.Type {
	case protocol.MsgPollAck, protocol.MsgVote, protocol.MsgRepair:
		return m.Voter
	default:
		return m.Poller
	}
}

// connTo returns (dialing if necessary) the outbound session to a peer.
func (n *Node) connTo(to ids.PeerID) (*session.Conn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	n.mu.Lock()
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("node: no address for %v", to)
	}
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	conn, err := session.Client(raw)
	if err != nil {
		raw.Close()
		return nil, err
	}
	n.mu.Lock()
	if existing, ok := n.conns[to]; ok {
		n.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	n.conns[to] = conn
	n.mu.Unlock()
	// Replies arriving on the outbound session are also protocol input.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(conn)
		n.mu.Lock()
		if n.conns[to] == conn {
			delete(n.conns, to)
		}
		n.mu.Unlock()
	}()
	return conn, nil
}

// encodeBufs recycles wire-encoding scratch across concurrent sendMsg calls.
var encodeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// sendMsg delivers one message asynchronously; failures are silent, like
// the network (the protocol's timeouts and retries own reliability).
func (n *Node) sendMsg(to ids.PeerID, m *protocol.Msg) {
	bufp := encodeBufs.Get().(*[]byte)
	defer func() { *bufp = (*bufp)[:0]; encodeBufs.Put(bufp) }()
	data, err := wire.AppendEncode((*bufp)[:0], m)
	if err != nil {
		n.logf("encode %v: %v", m.Type, err)
		return
	}
	*bufp = data
	conn, err := n.connTo(to)
	if err != nil {
		n.logf("dial %v: %v", to, err)
		return
	}
	n.mu.Lock()
	err = conn.WriteMsg(data)
	n.mu.Unlock()
	if err != nil {
		n.logf("send %v to %v: %v", m.Type, to, err)
		n.mu.Lock()
		if n.conns[to] == conn {
			delete(n.conns, to)
		}
		n.mu.Unlock()
		conn.Close()
	}
}

// env adapts Node to protocol.Env.
type env Node

// Now implements protocol.Env on the wall clock; Unix nanoseconds are
// consistent across cooperating nodes (the protocol tolerates ordinary
// clock skew through its generous timeouts).
func (e *env) Now() sched.Time { return sched.Time(time.Now().UnixNano()) }

// After implements protocol.Env. The liveness check runs inside the posted
// closure — on the actor loop, the same goroutine that calls Cancel — so a
// timer whose AfterFunc fired concurrently with its cancellation is still
// suppressed. The protocol's record pooling relies on a cancelled timer
// never reaching its callback.
func (e *env) After(d sched.Duration, fn func()) protocol.TimerID {
	n := (*Node)(e)
	if d < 0 {
		d = 0
	}
	n.mu.Lock()
	n.timerSeq++
	id := protocol.TimerID(n.timerSeq)
	n.timers[id] = time.AfterFunc(time.Duration(d), func() {
		n.post(func() {
			n.mu.Lock()
			_, live := n.timers[id]
			delete(n.timers, id)
			n.mu.Unlock()
			if live {
				fn()
			}
		})
	})
	n.mu.Unlock()
	return id
}

// Cancel implements protocol.Env.
func (e *env) Cancel(id protocol.TimerID) bool {
	n := (*Node)(e)
	n.mu.Lock()
	t, ok := n.timers[id]
	delete(n.timers, id)
	n.mu.Unlock()
	if ok {
		t.Stop() // best-effort; the loop-side liveness check is authoritative
	}
	return ok
}

// Rand implements protocol.Env.
func (e *env) Rand() *prng.Source { return e.rnd }

// Send implements protocol.Env.
func (e *env) Send(to ids.PeerID, m *protocol.Msg) {
	n := (*Node)(e)
	go n.sendMsg(to, m)
}

// units scales a requested effort cost to MBF walk units.
func (e *env) units(cost effort.Seconds) int {
	u := int(float64(cost)/float64(e.cfg.EffortUnit)) + 1
	if u < 1 {
		u = 1
	}
	if u > 64 {
		u = 64
	}
	return u
}

// MakeProof implements protocol.Env with a real MBF computation.
func (e *env) MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt) {
	p, r := e.mbf.Generate(ctx, e.units(cost), e.cfg.EffortUnit)
	p.UnitCost = effort.Seconds(float64(cost) / float64(p.Units))
	return p, r
}

// VerifyProof implements protocol.Env: spot-check verification.
func (e *env) VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool {
	mp, ok := p.(*effort.MBFProof)
	if !ok || mp == nil {
		return false
	}
	e.mbf.Bind(mp)
	return mp.Cost() >= minCost-1e-9 && e.mbf.Verify(mp, ctx)
}

// EvalReceipt implements protocol.Env: the full walk recovers the receipt
// byproduct.
func (e *env) EvalReceipt(ctx []byte, p effort.Proof) (effort.Receipt, bool) {
	mp, ok := p.(*effort.MBFProof)
	if !ok || mp == nil {
		return effort.Receipt{}, false
	}
	e.mbf.Bind(mp)
	return e.mbf.RecomputeByproduct(mp, ctx)
}
