// Package prng provides a deterministic, splittable pseudo-random number
// generator for reproducible simulations.
//
// All randomness in a simulation run flows from a single root seed through
// named child streams (one per peer, per adversary, per damage process, and
// so on), so that a run is reproducible bit-for-bit regardless of event
// interleaving or Go version. The generator is xoshiro256** seeded via
// splitmix64, following the reference construction by Blackman and Vigna.
package prng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; derive independent child streams with Child instead of
// sharing one Source across goroutines.
type Source struct {
	s [4]uint64
	// scratch is the reusable index map behind SampleInto's partial
	// Fisher–Yates; it never influences the output, only avoids a per-call
	// allocation.
	scratch map[int]int
}

// splitmix64 advances a 64-bit state and returns the next output. It is used
// only to seed and split xoshiro streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams with overwhelming probability.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Child derives an independent stream identified by name. Calling Child with
// the same name on an equivalent Source always yields the same stream, and
// does not perturb the parent.
func (r *Source) Child(name string) *Source {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	// Mix the parent state in without advancing it.
	h ^= r.s[0] ^ bits.RotateLeft64(r.s[2], 19)
	return New(h)
}

// ChildN derives an independent stream identified by a name and an index,
// convenient for per-peer or per-AU streams.
func (r *Source) ChildN(name string, n int) *Source {
	c := r.Child(name)
	sm := c.s[0] ^ uint64(n)*0x9e3779b97f4a7c15
	return New(splitmix64(&sm))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("prng: Int63n called with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n) using Lemire's
// nearly-divisionless method with rejection to remove modulo bias.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// ExpFloat64 returns an exponentially distributed value with the given mean.
// A mean of zero or less returns zero.
func (r *Source) ExpFloat64(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	// Inverse CDF; clamp u away from 0 to avoid +Inf.
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Source) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the given swap function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. If k >= n it returns a full permutation.
func (r *Source) Sample(n, k int) []int {
	return r.SampleInto(nil, n, k)
}

// SampleInto is Sample reusing dst's backing array when it has capacity. The
// random draws are identical to Sample's, so the two are interchangeable
// without perturbing the stream.
func (r *Source) SampleInto(dst []int, n, k int) []int {
	if k >= n {
		if cap(dst) < n {
			dst = make([]int, n)
		}
		dst = dst[:n]
		for i := range dst {
			dst[i] = i
		}
		r.ShuffleInts(dst)
		return dst
	}
	// Partial Fisher–Yates over a scratch index map: O(k) space.
	if r.scratch == nil {
		r.scratch = make(map[int]int, k*2)
	}
	scratch := r.scratch
	get := func(i int) int {
		if v, ok := scratch[i]; ok {
			return v
		}
		return i
	}
	if cap(dst) < k {
		dst = make([]int, k)
	}
	dst = dst[:k]
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		dst[i] = get(j)
		scratch[j] = get(i)
	}
	clear(scratch)
	return dst
}

// Jitter returns d multiplied by a uniform factor in [1-frac, 1+frac].
// Useful for desynchronizing periodic events.
func (r *Source) Jitter(d int64, frac float64) int64 {
	if frac <= 0 || d == 0 {
		return d
	}
	f := 1 + frac*(2*r.Float64()-1)
	return int64(float64(d) * f)
}
