package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestChildIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Child("alpha")
	c2 := root.Child("beta")
	c1again := New(7).Child("alpha")
	if c1.Uint64() != c1again.Uint64() {
		t.Error("child streams are not reproducible")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling child streams coincide")
	}
	// Deriving children must not perturb the parent.
	p1 := New(7)
	v1 := p1.Uint64()
	p2 := New(7)
	_ = p2.Child("x")
	if p2.Uint64() != v1 {
		t.Error("Child perturbed parent stream")
	}
}

func TestChildNDistinct(t *testing.T) {
	root := New(3)
	seen := map[uint64]int{}
	for i := 0; i < 200; i++ {
		v := root.ChildN("peer", i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("ChildN %d and %d coincide", i, j)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const buckets = 10
	counts := make([]int, buckets)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 0.05*n/buckets {
			t.Errorf("bucket %d count %d deviates from %d", b, c, n/buckets)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const mean = 42.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-mean) > 0.05*mean {
		t.Errorf("exponential mean %.2f, want ~%.2f", got, mean)
	}
	if New(1).ExpFloat64(0) != 0 || New(1).ExpFloat64(-5) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestBool(t *testing.T) {
	r := New(19)
	if r.Bool(0) || !r.Bool(1) {
		t.Error("Bool boundary behavior wrong")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.9) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.9) > 0.01 {
		t.Errorf("Bool(0.9) rate %.4f", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 10)
		s := New(seed).Sample(n, k)
		want := k
		if k > n {
			want = n
		}
		if len(s) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSampleUniform(t *testing.T) {
	// Every element should appear in a k-of-n sample with probability k/n.
	r := New(23)
	const n, k, trials = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("element %d sampled %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestJitter(t *testing.T) {
	r := New(29)
	const d = int64(1000000)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.25)
		if j < 750000 || j > 1250000 {
			t.Fatalf("jitter out of band: %d", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Error("zero-fraction jitter should be identity")
	}
}

func TestUint64nBoundary(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d", v)
		}
	}
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
}

func TestShuffleCoverage(t *testing.T) {
	// A 3-element shuffle should reach all 6 permutations.
	r := New(37)
	seen := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen[a]++
	}
	if len(seen) != 6 {
		t.Errorf("shuffle reached %d of 6 permutations", len(seen))
	}
	for p, c := range seen {
		if c < 800 || c > 1200 {
			t.Errorf("permutation %v count %d deviates from 1000", p, c)
		}
	}
}
