// Package adversary implements the paper's attack strategies against a
// simulated LOCKSS population:
//
//   - PipeStoppage (§7.2): network-level suppression of all communication
//     for a coverage fraction of the population, in repeated pulses of a
//     given duration separated by a recuperation period.
//   - AdmissionFlood (§7.3): cheap garbage poll invitations from unknown
//     identities, continuously triggering victims' refractory periods.
//   - BruteForce (§7.4): effortful invitations with valid introductory
//     proofs from in-debt identities, defecting at a chosen protocol stage
//     (INTRO, REMAINING or NONE).
//
// The adversary is conservatively modeled per §6.2: a cluster outside the
// loyal network, with as many addresses and as much compute as needed, total
// information awareness (it can inspect loyal schedules and reputation
// state), and magically incorruptible AU copies. Loyal peers never invite
// minions into polls; minions only invite loyal peers.
package adversary

import (
	"lockss/internal/prng"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Adversary is an attack strategy installable on a world before Run.
type Adversary interface {
	// Install registers the adversary's nodes and schedules its behavior.
	Install(w *world.World)
	// Name describes the strategy for reports.
	Name() string
}

// Pulse describes the repeated attack window shared by all attrition
// adversaries in the paper: attack for Duration, recuperate for
// Recuperation, repeat until the horizon, re-selecting victims each pulse.
type Pulse struct {
	// Coverage is the fraction of the loyal population attacked per pulse.
	Coverage float64
	// Duration is the attack window length.
	Duration sim.Duration
	// Recuperation separates pulses (paper: 30 days).
	Recuperation sim.Duration
}

// victims samples ceil(coverage*N) distinct peer indices.
func (p Pulse) victims(rnd *prng.Source, n int) []int {
	k := int(p.Coverage*float64(n) + 0.999999)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	return rnd.Sample(n, k)
}

// forEachPulse drives the pulse schedule: onStart receives the victim set,
// onEnd fires at the end of each attack window.
func (p Pulse) forEachPulse(w *world.World, rnd *prng.Source, onStart func([]int), onEnd func([]int)) {
	if p.Duration <= 0 || p.Coverage <= 0 {
		return
	}
	var start func()
	start = func() {
		vs := p.victims(rnd, len(w.Peers))
		onStart(vs)
		w.Engine.After(p.Duration, func() {
			onEnd(vs)
			rec := p.Recuperation
			if rec <= 0 {
				rec = 30 * sim.Day
			}
			w.Engine.After(rec, start)
		})
	}
	start()
}

// schedTime converts any nanosecond-valued clock quantity (sim.Time,
// sim.Duration, sched.Duration) to the scheduler clock.
func schedTime[T ~int64](v T) sched.Time { return sched.Time(v) }
