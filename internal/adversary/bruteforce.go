package adversary

import (
	"fmt"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/netsim"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Defection identifies where the brute-force adversary abandons the
// protocol (Table 1 of the paper).
type Defection uint8

const (
	// DefectIntro: provide the introductory effort in Poll, then never send
	// the PollProof (a reservation attack).
	DefectIntro Defection = iota
	// DefectRemaining: provide the remaining effort in PollProof, then
	// never send an EvaluationReceipt (a wasteful attack).
	DefectRemaining
	// DefectNone: participate fully, including a valid receipt.
	DefectNone
)

func (d Defection) String() string {
	switch d {
	case DefectIntro:
		return "INTRO"
	case DefectRemaining:
		return "REMAINING"
	case DefectNone:
		return "NONE"
	}
	return "invalid"
}

// BruteForce is the effortful application-level adversary of §7.4: it
// continuously sends poll invitations with valid introductory efforts from
// a pool of in-debt identities (conservatively initialized to a debt grade
// at every victim), getting one invitation admitted per victim per
// refractory period, and then defects at the configured stage. An insider
// oracle lets it skip volleys that a victim's schedule would refuse anyway,
// sparing it wasted introductory efforts.
type BruteForce struct {
	// Defection selects the strategy row of Table 1.
	Defection Defection
	// Minions is the in-debt identity pool size.
	Minions int
	// VolleyLimit bounds invitations per volley (expected tries to
	// admission at a 0.80 drop rate is 5).
	VolleyLimit int
	// Coverage is the attacked fraction of the population (Table 1: all).
	Coverage float64

	w       *world.World
	costs   effort.CostModel
	efforts map[content.AUID]effort.PollEffort
	pool    []ids.PeerID
	pollSeq uint64
}

// Name implements Adversary.
func (a *BruteForce) Name() string {
	return fmt.Sprintf("brute-force(%v)", a.Defection)
}

// Install implements Adversary.
func (a *BruteForce) Install(w *world.World) {
	if a.Minions <= 0 {
		a.Minions = 40
	}
	if a.VolleyLimit <= 0 {
		a.VolleyLimit = 25
	}
	if a.Coverage <= 0 {
		a.Coverage = 1.0
	}
	a.w = w
	a.costs = effort.DefaultCostModel()
	a.efforts = make(map[content.AUID]effort.PollEffort)
	for _, spec := range w.Specs() {
		a.efforts[spec.ID] = a.costs.PollEffortFor(spec.Size, spec.Blocks())
	}

	// Register the minion pool; every minion can receive replies.
	a.pool = make([]ids.PeerID, a.Minions)
	for i := range a.pool {
		id := ids.MinionBase + 1000 + ids.PeerID(i)
		a.pool[i] = id
		w.Net.AddNode(id, netsim.Link{Bandwidth: netsim.FastEth, Latency: sim.Millisecond},
			func(from ids.PeerID, payload any, size int) {
				if m, ok := payload.(*protocol.Msg); ok {
					a.handleReply(id, from, m)
				}
			})
	}

	// Conservative initialization: all minions are in debt at all victims.
	rnd := w.Root.Child("adversary/bruteforce")
	n := int(a.Coverage*float64(len(w.Peers)) + 0.999999)
	if n > len(w.Peers) {
		n = len(w.Peers)
	}
	for _, vi := range rnd.Sample(len(w.Peers), n) {
		victim := w.Peers[vi]
		for _, au := range victim.AUs() {
			for _, m := range a.pool {
				victim.SeedGrade(au, m, reputation.Debt)
			}
			a.attackLoop(victim, au, rnd.ChildN("victim", vi))
		}
	}
}

// attackLoop sends one effortful volley per (victim, AU) refractory period,
// consulting the oracle first.
func (a *BruteForce) attackLoop(victim *protocol.Peer, au content.AUID, rnd interface{ Float64() float64 }) {
	w := a.w
	refractory := sim.Duration(w.Cfg.Protocol.Refractory)
	var tick func()
	tick = func() {
		delay := sim.Duration(float64(refractory) * (1.02 + 0.1*rnd.Float64()))
		if a.oracleSaysSend(victim, au) {
			a.sendVolley(victim.ID(), au)
		} else {
			// Nothing schedulable at the victim: check back sooner, the
			// oracle costs the adversary nothing.
			delay = refractory / 4
		}
		w.Engine.After(delay, tick)
	}
	w.Engine.After(sim.Duration(float64(refractory)*rnd.Float64()), tick)
}

// oracleSaysSend uses the adversary's insider information: skip the volley
// if the victim is still refractory (it would be auto-rejected) or its
// schedule cannot accommodate a vote (it would refuse Busy), either of
// which would waste introductory efforts.
func (a *BruteForce) oracleSaysSend(victim *protocol.Peer, au content.AUID) bool {
	now := schedTime(a.w.Engine.Now())
	rep := victim.Reputation(au)
	if rep == nil || rep.InRefractory(reputation.Time(now)) {
		return false
	}
	pe := a.efforts[au]
	cfg := a.w.Cfg.Protocol
	voteDur := sched.Duration((pe.VoteHash + pe.VoteProof).Duration())
	_, ok := victim.Schedule().FindSlot(now+schedTime(cfg.ProofTimeout), voteDur, now+schedTime(cfg.VoteWindow))
	return ok
}

// sendVolley emits one burst of effortful invitations from the in-debt
// pool, paying one introductory effort per invitation actually sent.
func (a *BruteForce) sendVolley(victim ids.PeerID, au content.AUID) {
	a.pollSeq++
	now := a.w.Engine.Now()
	cfg := a.w.Cfg.Protocol
	intro := a.efforts[au].Intro
	burst := &world.BurstPayload{
		Pool:  a.pool,
		Count: a.VolleyLimit,
		Template: protocol.Msg{
			Type:         protocol.MsgPoll,
			AU:           au,
			PollID:       a.pollSeq << 8, // distinct per volley
			VoteBy:       schedTime(now) + schedTime(cfg.VoteWindow),
			PollDeadline: schedTime(now) + schedTime(cfg.PollInterval),
		},
		Ledger: a.w.AdversaryLedger,
	}
	// With effort balancing disabled (ablation), invitations need no proof
	// and the attack becomes effortless for the adversary.
	if cfg.EffortBalancing {
		burst.MakeProof = func(ctx []byte) (effort.Proof, effort.Seconds) {
			return effort.SimProof{Effort: intro, Genuine: true}, intro
		}
	}
	a.w.Net.Send(sourceNodeFor(a.pool[0]), victim, burst, burst.BurstWireSize())
}

// sourceNodeFor picks the network attachment for a burst: the first pool
// minion doubles as the cluster's uplink.
func sourceNodeFor(first ids.PeerID) ids.PeerID { return first }

// handleReply reacts to victim responses according to the defection
// strategy.
func (a *BruteForce) handleReply(minion ids.PeerID, victim ids.PeerID, m *protocol.Msg) {
	switch m.Type {
	case protocol.MsgPollAck:
		if !m.Accept || a.Defection == DefectIntro {
			return // INTRO: desert after the introductory effort
		}
		// Supply the remaining effort and a nonce.
		pe := a.efforts[m.AU]
		reply := &protocol.Msg{
			Type:   protocol.MsgPollProof,
			AU:     m.AU,
			PollID: m.PollID,
			Poller: minion,
			Voter:  victim,
		}
		r := a.w.Root.Child("adversary/nonce")
		for i := 0; i < len(reply.Nonce); i += 8 {
			v := r.Uint64()
			for j := 0; j < 8 && i+j < len(reply.Nonce); j++ {
				reply.Nonce[i+j] = byte(v >> (8 * j))
			}
		}
		if a.w.Cfg.Protocol.EffortBalancing {
			reply.Proof = effort.SimProof{Effort: pe.Remainder, Genuine: true}
			a.w.ChargeAdversary("attack-remainder", pe.Remainder)
		}
		a.w.Net.Send(minion, victim, reply, reply.WireSize())
	case protocol.MsgVote:
		if a.Defection != DefectNone {
			return // REMAINING: desert after the vote arrives
		}
		// Full participation: evaluate the vote (the adversary's copy is
		// magically correct, but evaluation effort is still effort) and
		// return a valid receipt.
		pe := a.efforts[m.AU]
		a.w.ChargeAdversary("attack-eval", pe.EvalHash)
		ctx := protocol.PollContext(minion, victim, m.AU, m.PollID, "vote")
		var receipt effort.Receipt
		if m.Proof != nil {
			receipt = effort.SimReceiptFor(ctx, m.Proof.Cost())
		}
		a.w.Net.Send(minion, victim, &protocol.Msg{
			Type:    protocol.MsgEvaluationReceipt,
			AU:      m.AU,
			PollID:  m.PollID,
			Poller:  minion,
			Voter:   victim,
			Receipt: receipt,
		}, 64)
	case protocol.MsgRepairRequest:
		// Frivolous repairs are never requested from minions: victims only
		// request repairs from their own polls' voters, and minions never
		// vote. Ignore defensively.
	}
}
