package adversary

import (
	"fmt"

	"lockss/internal/world"
)

// PipeStoppage is the effortless network-level adversary: it floods victims'
// links (modeled as total suppression of their communication) in repeated
// pulses. Local readers can still access content at the victims; only
// peer-to-peer communication stops.
type PipeStoppage struct {
	Pulse
}

// Name implements Adversary.
func (a *PipeStoppage) Name() string {
	return fmt.Sprintf("pipe-stoppage(cov=%.0f%%,dur=%v)", a.Coverage*100, a.Duration)
}

// Install implements Adversary.
func (a *PipeStoppage) Install(w *world.World) {
	rnd := w.Root.Child("adversary/pipestoppage")
	a.forEachPulse(w, rnd,
		func(victims []int) {
			for _, i := range victims {
				w.Net.SetStopped(world.PeerIDOf(i), true)
			}
		},
		func(victims []int) {
			for _, i := range victims {
				w.Net.SetStopped(world.PeerIDOf(i), false)
			}
		})
}
