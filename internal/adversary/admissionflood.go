package adversary

import (
	"fmt"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/netsim"
	"lockss/internal/protocol"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// AdmissionFlood is the effortless application-level adversary of §7.3: it
// sends cheap garbage poll invitations from ever-fresh, unknown identities
// to victims, so that the one unknown/in-debt invitation a victim admits per
// refractory period is always the adversary's — continuously re-triggering
// the refractory period and locking loyal unknown or in-debt pollers out.
//
// The garbage invitations carry no valid introductory effort: a victim that
// admits one pays only session setup, a schedule check and a failed
// verification, then penalizes and forgets the identity — which the
// adversary never reuses.
type AdmissionFlood struct {
	Pulse
	// VolleyLimit bounds invitations per volley; at the default drop
	// probability of 0.90 a volley of 40 is admitted with ~99% probability.
	VolleyLimit int

	nextIdentity ids.PeerID
	pollSeq      uint64
}

// Name implements Adversary.
func (a *AdmissionFlood) Name() string {
	return fmt.Sprintf("admission-flood(cov=%.0f%%,dur=%v)", a.Coverage*100, a.Duration)
}

// sourceNode is the adversary cluster's network attachment point.
const sourceNode = ids.MinionBase

// Install implements Adversary.
func (a *AdmissionFlood) Install(w *world.World) {
	if a.VolleyLimit <= 0 {
		a.VolleyLimit = 40
	}
	a.nextIdentity = ids.MinionBase + 1
	rnd := w.Root.Child("adversary/admissionflood")
	w.Net.AddNode(sourceNode, netsim.Link{Bandwidth: netsim.FastEth, Latency: sim.Millisecond},
		func(from ids.PeerID, payload any, size int) {
			// Replies (refusals) to garbage invitations are ignored.
		})

	refractory := sim.Duration(w.Cfg.Protocol.Refractory)
	epoch := 0
	a.forEachPulse(w, rnd,
		func(victims []int) {
			epoch++
			myEpoch := epoch
			for _, vi := range victims {
				victim := w.Peers[vi]
				for _, au := range victim.AUs() {
					a.floodLoop(w, rnd, victim.ID(), au, refractory, func() bool { return epoch == myEpoch })
				}
			}
		},
		func(victims []int) {
			epoch++ // invalidates the pulse's flood loops
		})
}

// floodLoop sends one garbage volley per refractory period to a (victim,
// AU) pair while active() holds.
func (a *AdmissionFlood) floodLoop(w *world.World, rnd interface{ Float64() float64 }, victim ids.PeerID, au content.AUID, refractory sim.Duration, active func() bool) {
	var tick func()
	tick = func() {
		if !active() {
			return
		}
		a.sendVolley(w, victim, au)
		// Re-arm just after the refractory period the admitted invitation
		// triggered, with jitter to avoid synchronizing volleys.
		gap := sim.Duration(float64(refractory) * (1.02 + 0.1*rnd.Float64()))
		w.Engine.After(gap, tick)
	}
	// First volley at a random phase within one refractory period.
	w.Engine.After(sim.Duration(float64(refractory)*rnd.Float64()), tick)
}

// sendVolley dispatches one burst of garbage invitations from fresh
// identities. Generating garbage is effortless: nothing is charged to the
// adversary's ledger.
func (a *AdmissionFlood) sendVolley(w *world.World, victim ids.PeerID, au content.AUID) {
	a.pollSeq++
	first := a.nextIdentity
	a.nextIdentity += ids.PeerID(a.VolleyLimit)
	now := w.Engine.Now()
	burst := &world.BurstPayload{
		First: first,
		Count: a.VolleyLimit,
		Template: protocol.Msg{
			Type:         protocol.MsgPoll,
			AU:           au,
			PollID:       a.pollSeq,
			VoteBy:       schedTime(now) + schedTime(w.Cfg.Protocol.VoteWindow),
			PollDeadline: schedTime(now) + schedTime(w.Cfg.Protocol.PollInterval),
			// No effort proof: verification at the victim fails cheaply.
		},
	}
	w.Net.Send(sourceNode, victim, burst, burst.BurstWireSize())
}
