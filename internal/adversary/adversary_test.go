package adversary

import (
	"testing"

	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sim"
	"lockss/internal/world"
)

func TestPulseVictims(t *testing.T) {
	rnd := prng.New(1)
	p := Pulse{Coverage: 0.4}
	v := p.victims(rnd, 100)
	if len(v) != 40 {
		t.Errorf("40%% of 100 = %d victims", len(v))
	}
	seen := map[int]bool{}
	for _, i := range v {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatal("invalid or duplicate victim")
		}
		seen[i] = true
	}
	if len((Pulse{Coverage: 1.5}).victims(rnd, 10)) != 10 {
		t.Error("coverage above 1 should clamp")
	}
	if (Pulse{Coverage: 0}).victims(rnd, 10) != nil {
		t.Error("zero coverage should have no victims")
	}
	// Small fractions round up: some victim is always chosen.
	if len((Pulse{Coverage: 0.01}).victims(rnd, 10)) != 1 {
		t.Error("fractional coverage should round up")
	}
}

func tinyWorld(t *testing.T) world.Config {
	t.Helper()
	cfg := world.Default()
	cfg.Peers = 20
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = sim.Year / 2
	cfg.DamageDiskYears = 0
	return cfg
}

func TestPipeStoppagePulseCycle(t *testing.T) {
	cfg := tinyWorld(t)
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &PipeStoppage{Pulse: Pulse{Coverage: 0.5, Duration: 30 * sim.Day, Recuperation: 30 * sim.Day}}
	a.Install(w)

	// Sample the stopped-node count during attack and recuperation windows.
	counts := map[string]int{}
	w.Engine.At(sim.Time(15*sim.Day), func() { counts["attack"] = stopped(w) })
	w.Engine.At(sim.Time(45*sim.Day), func() { counts["recup"] = stopped(w) })
	w.Engine.At(sim.Time(75*sim.Day), func() { counts["attack2"] = stopped(w) })
	w.Run()

	if counts["attack"] != 10 || counts["attack2"] != 10 {
		t.Errorf("stopped during attack: %v, want 10", counts)
	}
	if counts["recup"] != 0 {
		t.Errorf("stopped during recuperation: %d, want 0", counts["recup"])
	}
	if a.Name() == "" {
		t.Error("empty name")
	}
}

func stopped(w *world.World) int {
	n := 0
	for i := range w.Peers {
		if w.Net.Stopped(world.PeerIDOf(i)) {
			n++
		}
	}
	return n
}

func TestAdmissionFloodTriggersRefractory(t *testing.T) {
	cfg := tinyWorld(t)
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &AdmissionFlood{Pulse: Pulse{Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day}}
	a.Install(w)

	inRefractory := 0
	w.Engine.At(sim.Time(30*sim.Day), func() {
		now := reputation.Time(w.Engine.Now())
		for _, p := range w.Peers {
			if p.Reputation(1).InRefractory(now) {
				inRefractory++
			}
		}
	})
	w.Run()
	if inRefractory < len(w.Peers)*3/4 {
		t.Errorf("only %d/%d victims in refractory mid-attack", inRefractory, len(w.Peers))
	}
	// The flood is effortless.
	if w.AdversaryLedger.Total != 0 {
		t.Errorf("admission flood charged %v effort", w.AdversaryLedger.Total)
	}
	// Victims considered (and rejected) garbage: penalized identities pile
	// up as debt entries.
	if w.Peers[0].Stats().BadProofs == 0 {
		t.Error("no garbage invitation was ever considered")
	}
}

func TestBruteForceSpendsAndSchedules(t *testing.T) {
	cfg := tinyWorld(t)
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &BruteForce{Defection: DefectRemaining}
	a.Install(w)
	w.Run()
	if w.AdversaryLedger.Kind("attack-intro") == 0 {
		t.Error("brute force paid no introductory effort")
	}
	if w.AdversaryLedger.Kind("attack-remainder") == 0 {
		t.Error("REMAINING strategy never sent a PollProof")
	}
	// Victims computed votes for the adversary (wasted effort), visible as
	// receipt timeouts.
	timeouts := uint64(0)
	for _, p := range w.Peers {
		timeouts += p.Stats().ReceiptsTimedOut
	}
	if timeouts == 0 {
		t.Error("no victim ever timed out waiting for the adversary's receipt")
	}
}

func TestBruteForceIntroNeverSendsProof(t *testing.T) {
	cfg := tinyWorld(t)
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &BruteForce{Defection: DefectIntro}
	a.Install(w)
	w.Run()
	if w.AdversaryLedger.Kind("attack-remainder") != 0 {
		t.Error("INTRO strategy sent PollProofs")
	}
	proofTimeouts := uint64(0)
	for _, p := range w.Peers {
		proofTimeouts += p.Stats().ProofsTimedOut
	}
	if proofTimeouts == 0 {
		t.Error("INTRO desertion never triggered a reservation timeout")
	}
}

func TestBruteForceNoneSendsValidReceipts(t *testing.T) {
	cfg := tinyWorld(t)
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &BruteForce{Defection: DefectNone}
	a.Install(w)
	w.Run()
	if w.AdversaryLedger.Kind("attack-eval") == 0 {
		t.Error("NONE strategy never evaluated a vote")
	}
	// Full participation leaves no receipt timeouts attributable to the
	// adversary beyond stragglers at the horizon; penalized receipts would
	// show up as bogus-receipt penalties instead. Check votes were indeed
	// supplied to minions.
	votes := uint64(0)
	for _, p := range w.Peers {
		votes += p.Stats().VotesSupplied
	}
	if votes == 0 {
		t.Error("no votes supplied at all")
	}
}

func TestMinionIdentityRange(t *testing.T) {
	if !ids.PeerID(ids.MinionBase + 5).IsMinion() {
		t.Error("minion range check broken")
	}
	if ids.PeerID(5).IsMinion() {
		t.Error("loyal peer classified as minion")
	}
}

func TestDefectionStrings(t *testing.T) {
	if DefectIntro.String() != "INTRO" || DefectRemaining.String() != "REMAINING" || DefectNone.String() != "NONE" {
		t.Error("defection strings wrong")
	}
	var names []string
	for _, a := range []Adversary{
		&PipeStoppage{Pulse: Pulse{Coverage: 0.5, Duration: sim.Day}},
		&AdmissionFlood{Pulse: Pulse{Coverage: 1, Duration: sim.Day}},
		&BruteForce{Defection: DefectNone},
	} {
		names = append(names, a.Name())
	}
	for i, n := range names {
		if n == "" {
			t.Errorf("adversary %d has empty name", i)
		}
	}
}

var _ = protocol.MsgPoll // keep the protocol import for future assertions

// TestVoteFloodHasNoEffect: unsolicited votes are ignored before any
// expensive processing (the §5.1 vote-flood defense). The flood must not
// change poll outcomes or charge victims effort beyond baseline.
func TestVoteFloodHasNoEffect(t *testing.T) {
	cfg := tinyWorld(t)

	base, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base.Run()
	baseEffort := base.DefenderEffort()
	basePolls := base.Metrics.SuccessfulPolls()

	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &VoteFlood{
		Pulse:       Pulse{Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day},
		VotesPerDay: 48,
	}
	a.Install(w)
	w.Run()

	if a.SentVotes == 0 {
		t.Fatal("flood sent nothing")
	}
	if got := w.Metrics.SuccessfulPolls(); got != basePolls {
		t.Errorf("vote flood changed poll outcomes: %d vs %d", got, basePolls)
	}
	// Ignoring an unsolicited vote costs nothing measurable.
	if got := w.DefenderEffort(); float64(got) > float64(baseEffort)*1.001 {
		t.Errorf("vote flood raised defender effort: %v vs %v", got, baseEffort)
	}
	votesIgnored := uint64(0)
	for _, p := range w.Peers {
		votesIgnored += p.Stats().VotesReceived
	}
	// VotesReceived only counts solicited votes; the flood adds none beyond
	// the baseline count.
	if w.AdversaryLedger.Total != 0 {
		t.Error("vote flood should be effortless for the adversary")
	}
}

// TestCombinedAdversary: §9's combined-strategy question — a pipe stoppage
// softening the population while a brute-force attacker drains it.
func TestCombinedAdversary(t *testing.T) {
	cfg := tinyWorld(t)
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := &Combined{Parts: []Adversary{
		&PipeStoppage{Pulse: Pulse{Coverage: 0.4, Duration: 30 * sim.Day, Recuperation: 30 * sim.Day}},
		&BruteForce{Defection: DefectRemaining},
	}}
	if a.Name() == "" {
		t.Error("empty combined name")
	}
	a.Install(w)
	w.Run()
	if w.AdversaryLedger.Total == 0 {
		t.Error("combined attack spent nothing")
	}
	if w.Net.DroppedStoppage == 0 {
		t.Error("combined attack never stopped a pipe")
	}
	if w.Metrics.SuccessfulPolls() == 0 {
		t.Error("combined tiny attack should not collapse the system")
	}
}
