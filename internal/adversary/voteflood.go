package adversary

import (
	"fmt"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/netsim"
	"lockss/internal/protocol"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// VoteFlood is the vote-flood adversary of §5.1: it "seeks to supply as
// many bogus votes as possible hoping to exhaust loyal pollers' resources
// in useless but expensive proofs of invalidity." The defense is
// structural: votes can only be supplied in response to an invitation by
// the putative victim, and pollers solicit at a fixed rate — unsolicited
// votes are ignored before any expensive processing. This adversary exists
// to demonstrate that the defense holds: its floods must measurably change
// nothing.
type VoteFlood struct {
	Pulse
	// VotesPerDay is the flood rate per victim per AU.
	VotesPerDay float64

	pollSeq uint64
	// SentVotes counts emitted bogus votes (for tests).
	SentVotes uint64
}

// Name implements Adversary.
func (a *VoteFlood) Name() string {
	return fmt.Sprintf("vote-flood(cov=%.0f%%,rate=%.0f/day)", a.Coverage*100, a.VotesPerDay)
}

// voteFloodSource is the flooder's network attachment.
const voteFloodSource = ids.MinionBase + 500000

// Install implements Adversary.
func (a *VoteFlood) Install(w *world.World) {
	if a.VotesPerDay <= 0 {
		a.VotesPerDay = 48
	}
	rnd := w.Root.Child("adversary/voteflood")
	w.Net.AddNode(voteFloodSource, netsim.Link{Bandwidth: netsim.FastEth, Latency: sim.Millisecond},
		func(from ids.PeerID, payload any, size int) {})

	specs := make(map[content.AUID]content.AUSpec)
	for _, s := range w.Specs() {
		specs[s.ID] = s
	}
	epoch := 0
	a.forEachPulse(w, rnd,
		func(victims []int) {
			epoch++
			myEpoch := epoch
			gap := sim.Duration(float64(sim.Day) / a.VotesPerDay)
			for _, vi := range victims {
				victim := w.Peers[vi]
				for _, au := range victim.AUs() {
					au := au
					vID := victim.ID()
					var tick func()
					tick = func() {
						if epoch != myEpoch {
							return
						}
						a.sendBogusVote(w, vID, au, specs[au])
						w.Engine.After(sim.Duration(float64(gap)*(0.5+rnd.Float64())), tick)
					}
					w.Engine.After(sim.Duration(float64(gap)*rnd.Float64()), tick)
				}
			}
		},
		func(victims []int) { epoch++ })
}

// sendBogusVote emits one unsolicited Vote claiming a poll that the victim
// never called.
func (a *VoteFlood) sendBogusVote(w *world.World, victim ids.PeerID, au content.AUID, spec content.AUSpec) {
	a.pollSeq++
	a.SentVotes++
	m := &protocol.Msg{
		Type:   protocol.MsgVote,
		AU:     au,
		PollID: a.pollSeq | 1<<62, // never a real poll ID
		Poller: victim,            // pretends the victim solicited it
		Voter:  voteFloodSource,
		Vote:   protocol.SimVote{NumBlocks: spec.Blocks()},
	}
	w.Net.Send(voteFloodSource, victim, m, m.WireSize())
}
