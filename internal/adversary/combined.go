package adversary

import (
	"strings"

	"lockss/internal/world"
)

// Combined installs several attack strategies at once, for studying the
// paper's §9 question: "it could be that the adversary can use an attrition
// attack to weaken the system in some way that leaves it more vulnerable to
// other attack goals." All constituents share the world's single attacker
// ledger, so cost accounting aggregates naturally.
type Combined struct {
	Parts []Adversary
}

// Name implements Adversary.
func (a *Combined) Name() string {
	names := make([]string, len(a.Parts))
	for i, p := range a.Parts {
		names[i] = p.Name()
	}
	return "combined(" + strings.Join(names, "+") + ")"
}

// Install implements Adversary.
func (a *Combined) Install(w *world.World) {
	for _, p := range a.Parts {
		p.Install(w)
	}
}
