package reputation

import (
	"testing"

	"lockss/internal/ids"
	"lockss/internal/prng"
)

const day = Duration(24 * 3600 * 1e9)

func params() Params { return DefaultParams(day, 90*day) }

func at(days float64) Time { return Time(days * float64(day)) }

func TestGradeTransitions(t *testing.T) {
	l := NewList(params())
	p := ids.PeerID(1)
	if l.GradeOf(0, p) != Unknown {
		t.Fatal("fresh peer should be unknown")
	}
	l.Raise(0, p) // creates a debt entry, then raises it
	if g := l.GradeOf(0, p); g != Even {
		t.Errorf("after first raise: %v, want even", g)
	}
	l.Raise(0, p)
	if g := l.GradeOf(0, p); g != Credit {
		t.Errorf("after second raise: %v, want credit", g)
	}
	l.Raise(0, p)
	if g := l.GradeOf(0, p); g != Credit {
		t.Errorf("credit should saturate: %v", g)
	}
	l.Lower(0, p)
	if g := l.GradeOf(0, p); g != Even {
		t.Errorf("after lower: %v, want even", g)
	}
	l.Lower(0, p)
	l.Lower(0, p)
	if g := l.GradeOf(0, p); g != Debt {
		t.Errorf("debt should saturate: %v", g)
	}
	l.Raise(0, p)
	l.Penalize(0, p)
	if g := l.GradeOf(0, p); g != Debt {
		t.Errorf("penalize should force debt: %v", g)
	}
}

func TestDecayTowardDebt(t *testing.T) {
	l := NewList(params())
	p := ids.PeerID(1)
	l.Raise(0, p)
	l.Raise(0, p) // credit at t=0
	if g := l.GradeOf(at(89), p); g != Credit {
		t.Errorf("no decay before interval: %v", g)
	}
	if g := l.GradeOf(at(91), p); g != Even {
		t.Errorf("one decay step: %v, want even", g)
	}
	if g := l.GradeOf(at(181), p); g != Debt {
		t.Errorf("two decay steps: %v, want debt", g)
	}
	if g := l.GradeOf(at(500), p); g != Debt {
		t.Errorf("debt is the floor: %v", g)
	}
}

func TestInteractionResetsDecayClock(t *testing.T) {
	l := NewList(params())
	p := ids.PeerID(1)
	l.Raise(0, p)      // even
	l.Raise(at(80), p) // credit, clock reset at day 80
	if g := l.GradeOf(at(160), p); g != Credit {
		t.Errorf("decay clock not reset: %v", g)
	}
}

func TestConsiderKnownGood(t *testing.T) {
	l := NewList(params())
	rnd := prng.New(1)
	p := ids.PeerID(1)
	l.Raise(0, p) // even
	d := l.Consider(at(1), p, rnd)
	if d != AdmitKnown {
		t.Fatalf("even peer decision %v", d)
	}
	// Second invitation within the same refractory period is rate-capped.
	if d := l.Consider(at(1.2), p, rnd); d != RejectRateCap {
		t.Errorf("rate cap not applied: %v", d)
	}
	// After the period it is admitted again.
	if d := l.Consider(at(2.5), p, rnd); d != AdmitKnown {
		t.Errorf("rate cap did not lapse: %v", d)
	}
}

func TestConsiderUnknownDropsAndRefractory(t *testing.T) {
	l := NewList(params())
	rnd := prng.New(7)
	// Hammer with unknown identities until one is admitted.
	admitted := 0
	tries := 0
	now := Time(0)
	for admitted == 0 && tries < 1000 {
		tries++
		d := l.Consider(now, ids.PeerID(uint32(1000+tries)), rnd)
		switch d {
		case AdmitUnknown:
			admitted++
		case RejectDropped:
		default:
			t.Fatalf("unexpected decision %v", d)
		}
	}
	if admitted != 1 {
		t.Fatal("no unknown invitation ever admitted")
	}
	if tries < 2 {
		t.Log("admitted on first try (possible but unlikely)")
	}
	// Now in refractory: every unknown/in-debt invitation is auto-rejected.
	for i := 0; i < 50; i++ {
		if d := l.Consider(now+Time(day)/2, ids.PeerID(uint32(5000+i)), rnd); d != RejectRefractory {
			t.Fatalf("refractory not enforced: %v", d)
		}
	}
	if !l.InRefractory(now + Time(day)/2) {
		t.Error("InRefractory false during period")
	}
	// Known-good peers still get through during the refractory period.
	good := ids.PeerID(42)
	l.Raise(now, good)
	if d := l.Consider(now+Time(day)/2, good, rnd); d != AdmitKnown {
		t.Errorf("even peer blocked by refractory: %v", d)
	}
	// After the period, unknowns are considered again (subject to drops).
	later := now + Time(day) + 1
	if l.InRefractory(later) {
		t.Error("refractory should have lapsed")
	}
}

func TestDropRates(t *testing.T) {
	l := NewList(params())
	rnd := prng.New(99)
	debtor := ids.PeerID(9)
	l.Penalize(0, debtor)

	const trials = 20000
	dropsUnknown, dropsDebt := 0, 0
	for i := 0; i < trials; i++ {
		// Fresh list each time to avoid refractory interference.
		lu := NewList(params())
		if lu.Consider(0, ids.PeerID(uint32(100+i)), rnd) == RejectDropped {
			dropsUnknown++
		}
		ld := NewList(params())
		ld.Penalize(0, debtor)
		if ld.Consider(0, debtor, rnd) == RejectDropped {
			dropsDebt++
		}
	}
	if rate := float64(dropsUnknown) / trials; rate < 0.88 || rate > 0.92 {
		t.Errorf("unknown drop rate %.3f, want ~0.90", rate)
	}
	if rate := float64(dropsDebt) / trials; rate < 0.78 || rate > 0.82 {
		t.Errorf("debt drop rate %.3f, want ~0.80", rate)
	}
}

func TestWhitewashingUnattractive(t *testing.T) {
	// DropUnknown must never be below DropDebt, even if misconfigured.
	p := params()
	p.DropUnknown = 0.5
	p.DropDebt = 0.9
	l := NewList(p)
	if l.params.DropUnknown < l.params.DropDebt {
		t.Error("normalization failed: whitewashing would pay")
	}
}

func TestIntroductionBypassesRefractory(t *testing.T) {
	l := NewList(params())
	rnd := prng.New(3)
	// Trigger refractory with an admitted unknown.
	for i := 0; ; i++ {
		if l.Consider(0, ids.PeerID(uint32(100+i)), rnd) == AdmitUnknown {
			break
		}
	}
	introducer, introducee := ids.PeerID(1), ids.PeerID(2)
	l.AddIntroduction(0, introducer, introducee)
	if !l.HasIntroduction(introducee) {
		t.Fatal("introduction not recorded")
	}
	d := l.Consider(Time(day)/2, introducee, rnd)
	if d != AdmitIntroduced {
		t.Fatalf("introduced peer decision %v", d)
	}
	// Treated as even afterwards.
	if g := l.GradeOf(Time(day)/2, introducee); g != Even {
		t.Errorf("introduced peer grade %v, want even", g)
	}
	// Consumed: a second invitation does not bypass.
	if l.HasIntroduction(introducee) {
		t.Error("introduction not consumed")
	}
}

func TestIntroductionForgetSemantics(t *testing.T) {
	l := NewList(params())
	a, b := ids.PeerID(1), ids.PeerID(2) // introducers
	x, y, z := ids.PeerID(10), ids.PeerID(11), ids.PeerID(12)
	l.AddIntroduction(0, a, x)
	l.AddIntroduction(0, a, y) // a introduces two peers
	l.AddIntroduction(0, b, z)
	if l.PendingIntroductions() != 3 {
		t.Fatalf("pending %d", l.PendingIntroductions())
	}
	// Consuming x's introduction (by a) forgets a's other introductions.
	rnd := prng.New(5)
	if d := l.Consider(0, x, rnd); d != AdmitIntroduced {
		t.Fatalf("decision %v", d)
	}
	if l.HasIntroduction(y) {
		t.Error("introducer's other introductions not forgotten")
	}
	if !l.HasIntroduction(z) {
		t.Error("unrelated introduction was forgotten")
	}
}

func TestIntroductionReintroductionOverwrites(t *testing.T) {
	l := NewList(params())
	a, b, x := ids.PeerID(1), ids.PeerID(2), ids.PeerID(10)
	l.AddIntroduction(0, a, x)
	l.AddIntroduction(0, b, x) // b re-introduces x
	if l.PendingIntroductions() != 1 {
		t.Fatalf("pending %d", l.PendingIntroductions())
	}
	l.ForgetIntroducer(b)
	if l.HasIntroduction(x) {
		t.Error("ForgetIntroducer left the overwritten introduction")
	}
}

func TestIntroductionCap(t *testing.T) {
	p := params()
	p.MaxIntroductions = 3
	l := NewList(p)
	for i := 0; i < 10; i++ {
		l.AddIntroduction(0, ids.PeerID(1), ids.PeerID(uint32(100+i)))
	}
	if l.PendingIntroductions() != 3 {
		t.Errorf("cap not enforced: %d", l.PendingIntroductions())
	}
	if l.IntroductionsCut != 7 {
		t.Errorf("cut counter %d", l.IntroductionsCut)
	}
}

func TestIntroductionsDisabled(t *testing.T) {
	p := params()
	p.IntroductionsEnabled = false
	l := NewList(p)
	l.AddIntroduction(0, ids.PeerID(1), ids.PeerID(2))
	if l.PendingIntroductions() != 0 {
		t.Error("introductions recorded while disabled")
	}
}

func TestSelfIntroductionIgnored(t *testing.T) {
	l := NewList(params())
	l.AddIntroduction(0, ids.PeerID(1), ids.PeerID(1))
	if l.PendingIntroductions() != 0 {
		t.Error("self-introduction recorded")
	}
}

func TestConsiderCounters(t *testing.T) {
	l := NewList(params())
	rnd := prng.New(11)
	good := ids.PeerID(1)
	l.Raise(0, good)
	l.Consider(0, good, rnd)
	if l.AdmittedKnown != 1 {
		t.Errorf("AdmittedKnown = %d", l.AdmittedKnown)
	}
	total := 0
	for i := 0; i < 200; i++ {
		l.Consider(at(float64(i)*2), ids.PeerID(uint32(500+i)), rnd)
		total++
	}
	if l.AdmittedUnknown+l.DroppedRandom+l.RejectedRefract != uint64(total) {
		t.Errorf("counter sum mismatch: %d+%d+%d != %d",
			l.AdmittedUnknown, l.DroppedRandom, l.RejectedRefract, total)
	}
	if l.Known() == 0 {
		t.Error("no entries recorded")
	}
}
