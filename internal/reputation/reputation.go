// Package reputation implements the first-hand reputation half of the
// LOCKSS admission control defense (§5.1 of the paper):
//
//   - A per-(peer, AU) known-peers list holding a grade — debt, even or
//     credit — for every encountered identity, tracking the exchange of
//     votes. Grades decay toward debt with time.
//   - Random drops of poll invitations from unknown identities (probability
//     0.90 by default) and from in-debt identities (0.80), making identity
//     whitewashing strictly worse than staying in debt.
//   - A refractory period: after admitting one invitation from an unknown or
//     in-debt poller, all further such invitations are auto-rejected until
//     the period lapses. Per refractory period a voter also admits at most
//     one invitation from each even/credit peer, bounding its total
//     "liability" to a small constant per period.
//   - Peer introductions: an introduced poller bypasses drops and the
//     refractory period once, and is treated as a known peer with an even
//     grade. Consuming B's introduction by A forgets A's other introductions
//     and B's introductions by others; unused introductions do not
//     accumulate beyond a cap.
package reputation

import (
	"lockss/internal/ids"
	"lockss/internal/prng"
)

// Grade is a peer's first-hand reputation grade.
type Grade uint8

const (
	// Unknown means the peer has never been encountered (no entry).
	Unknown Grade = iota
	// Debt means the peer has supplied fewer votes than it received.
	Debt
	// Even means recent vote exchanges balance.
	Even
	// Credit means the peer has supplied more votes than it received.
	Credit
)

func (g Grade) String() string {
	switch g {
	case Unknown:
		return "unknown"
	case Debt:
		return "debt"
	case Even:
		return "even"
	case Credit:
		return "credit"
	}
	return "invalid"
}

// Time and Duration mirror sched's abstract nanosecond clock.
type Time int64
type Duration int64

// Params configures the admission policy. Defaults follow §6.3 of the paper.
type Params struct {
	// DropUnknown is the probability of dropping an invitation from an
	// unknown identity (paper: 0.90).
	DropUnknown float64
	// DropDebt is the probability of dropping an invitation from an in-debt
	// identity (paper: 0.80). It must be below DropUnknown to discourage
	// whitewashing.
	DropDebt float64
	// Refractory is the period after admitting an unknown/in-debt
	// invitation during which all such invitations are auto-rejected
	// (paper: 1 day).
	Refractory Duration
	// Decay is the interval after which an entry's grade drops one step
	// toward debt absent interactions.
	Decay Duration
	// MaxIntroductions caps outstanding introductions per AU.
	MaxIntroductions int
	// IntroductionsEnabled allows disabling introductions for ablation.
	IntroductionsEnabled bool
}

// DefaultParams returns the paper's operating point.
func DefaultParams(refractory, decay Duration) Params {
	return Params{
		DropUnknown:          0.90,
		DropDebt:             0.80,
		Refractory:           refractory,
		Decay:                decay,
		MaxIntroductions:     40,
		IntroductionsEnabled: true,
	}
}

type entry struct {
	grade   Grade
	updated Time
	// lastAdmit is when this (even/credit) peer's invitation was last
	// admitted, enforcing the one-per-refractory-period cap.
	lastAdmit Time
}

type intro struct {
	introducer ids.PeerID
	added      Time
}

// List is the known-peers list for one AU at one peer. Not safe for
// concurrent use.
type List struct {
	params  Params
	entries map[ids.PeerID]*entry
	// refractoryUntil guards the unknown/in-debt admission slot.
	refractoryUntil Time
	// intros maps introducee -> pending introduction.
	intros map[ids.PeerID]intro

	// Counters for metrics and tests.
	AdmittedKnown    uint64
	AdmittedUnknown  uint64
	AdmittedIntro    uint64
	DroppedRandom    uint64
	RejectedRefract  uint64
	RejectedRateCap  uint64
	IntroductionsCut uint64
}

// NewList returns an empty known-peers list.
func NewList(p Params) *List {
	if p.DropUnknown < p.DropDebt {
		// The policy requires unknown to fare worse than debt; normalize to
		// keep whitewashing unattractive even with odd configurations.
		p.DropUnknown = p.DropDebt
	}
	return &List{
		params:  p,
		entries: make(map[ids.PeerID]*entry),
		intros:  make(map[ids.PeerID]intro),
	}
}

// decayed applies grade decay lazily and returns the effective entry, or nil
// for unknown peers.
func (l *List) decayed(now Time, p ids.PeerID) *entry {
	e, ok := l.entries[p]
	if !ok {
		return nil
	}
	if l.params.Decay > 0 {
		for e.grade > Debt && now-e.updated >= Time(l.params.Decay) {
			e.grade--
			e.updated += Time(l.params.Decay)
		}
		if e.grade == Debt && now-e.updated >= Time(l.params.Decay) {
			e.updated = now
		}
	}
	return e
}

// GradeOf returns the peer's current grade, applying decay.
func (l *List) GradeOf(now Time, p ids.PeerID) Grade {
	if e := l.decayed(now, p); e != nil {
		return e.grade
	}
	return Unknown
}

// ensure returns the entry for p, creating a debt-grade entry if absent.
func (l *List) ensure(now Time, p ids.PeerID) *entry {
	if e := l.decayed(now, p); e != nil {
		return e
	}
	e := &entry{grade: Debt, updated: now}
	l.entries[p] = e
	return e
}

// Raise moves the peer's grade one step up (they supplied us a valid vote
// and any requested repairs): debt->even->credit->credit.
func (l *List) Raise(now Time, p ids.PeerID) {
	e := l.ensure(now, p)
	if e.grade < Credit {
		e.grade++
	}
	e.updated = now
}

// Lower moves the peer's grade one step down (we supplied them a vote):
// credit->even->debt->debt.
func (l *List) Lower(now Time, p ids.PeerID) {
	e := l.ensure(now, p)
	if e.grade > Debt {
		e.grade--
	}
	e.updated = now
}

// Penalize drops the peer straight to debt (they misbehaved: deserted a
// commitment, sent an invalid proof, withheld a receipt or repair).
func (l *List) Penalize(now Time, p ids.PeerID) {
	e := l.ensure(now, p)
	e.grade = Debt
	e.updated = now
}

// Decision is the outcome of admission control for a poll invitation.
type Decision uint8

const (
	// RejectRefractory: auto-rejected during the refractory period. Costs
	// the victim essentially nothing.
	RejectRefractory Decision = iota
	// RejectDropped: randomly dropped. Costs the victim essentially nothing.
	RejectDropped
	// RejectRateCap: an even/credit peer exceeded one invitation per
	// refractory period.
	RejectRateCap
	// AdmitKnown: admitted on the strength of an even/credit grade.
	AdmitKnown
	// AdmitUnknown: the one unknown/in-debt admission of this refractory
	// period; admitting it starts a new refractory period.
	AdmitUnknown
	// AdmitIntroduced: admitted by consuming an introduction.
	AdmitIntroduced
)

// Admitted reports whether the decision lets the invitation through to
// consideration (session setup, effort verification, schedule check).
func (d Decision) Admitted() bool { return d >= AdmitKnown }

func (d Decision) String() string {
	switch d {
	case RejectRefractory:
		return "reject-refractory"
	case RejectDropped:
		return "reject-dropped"
	case RejectRateCap:
		return "reject-ratecap"
	case AdmitKnown:
		return "admit-known"
	case AdmitUnknown:
		return "admit-unknown"
	case AdmitIntroduced:
		return "admit-introduced"
	}
	return "invalid"
}

// Consider runs the admission control policy for a poll invitation from p.
// It mutates refractory and introduction state according to the decision.
func (l *List) Consider(now Time, p ids.PeerID, rnd *prng.Source) Decision {
	// Introductions bypass drops and refractory periods.
	if l.params.IntroductionsEnabled {
		if in, ok := l.intros[p]; ok {
			l.consumeIntroduction(p, in.introducer)
			// Treated as a known peer with an even grade.
			e := l.ensure(now, p)
			if e.grade < Even {
				e.grade = Even
			}
			e.lastAdmit = now
			e.updated = now
			l.AdmittedIntro++
			return AdmitIntroduced
		}
	}
	g := l.GradeOf(now, p)
	if g == Even || g == Credit {
		e := l.ensure(now, p)
		if e.lastAdmit != 0 && now-e.lastAdmit < Time(l.params.Refractory) {
			l.RejectedRateCap++
			return RejectRateCap
		}
		e.lastAdmit = now
		l.AdmittedKnown++
		return AdmitKnown
	}
	// Unknown or in-debt.
	if now < l.refractoryUntil {
		l.RejectedRefract++
		return RejectRefractory
	}
	drop := l.params.DropUnknown
	if g == Debt {
		drop = l.params.DropDebt
	}
	if rnd.Bool(drop) {
		l.DroppedRandom++
		return RejectDropped
	}
	l.refractoryUntil = now + Time(l.params.Refractory)
	l.AdmittedUnknown++
	return AdmitUnknown
}

// InRefractory reports whether the unknown/in-debt slot is closed at now.
func (l *List) InRefractory(now Time) bool { return now < l.refractoryUntil }

// RefractoryUntil returns when the current refractory period lapses.
func (l *List) RefractoryUntil() Time { return l.refractoryUntil }

// AddIntroduction records that introducer vouches for introducee. The
// introduction is dropped silently if the cap is reached or introductions
// are disabled. Re-introduction refreshes the introducer.
func (l *List) AddIntroduction(now Time, introducer, introducee ids.PeerID) {
	if !l.params.IntroductionsEnabled || introducer == introducee {
		return
	}
	if _, exists := l.intros[introducee]; !exists && len(l.intros) >= l.params.MaxIntroductions {
		l.IntroductionsCut++
		return
	}
	l.intros[introducee] = intro{introducer: introducer, added: now}
}

// consumeIntroduction implements the paper's forget-on-use semantics: using
// B's introduction by A forgets all other introductions by A and all other
// introductions of B.
func (l *List) consumeIntroduction(introducee, introducer ids.PeerID) {
	delete(l.intros, introducee)
	for b, in := range l.intros {
		if in.introducer == introducer || b == introducee {
			delete(l.intros, b)
		}
	}
}

// ForgetIntroducer removes all introductions by a peer that has left the
// reference list.
func (l *List) ForgetIntroducer(p ids.PeerID) {
	for b, in := range l.intros {
		if in.introducer == p {
			delete(l.intros, b)
		}
	}
}

// PendingIntroductions returns the number of outstanding introductions.
func (l *List) PendingIntroductions() int { return len(l.intros) }

// HasIntroduction reports whether p holds an unconsumed introduction.
func (l *List) HasIntroduction(p ids.PeerID) bool {
	_, ok := l.intros[p]
	return ok
}

// Known returns the number of known-peers entries.
func (l *List) Known() int { return len(l.entries) }
