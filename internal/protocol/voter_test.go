package protocol

import (
	"testing"
	"time"

	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/sim"
)

// inviteMsg builds a valid Poll invitation from poller to voter.
func inviteMsg(p *Peer, poller ids.PeerID, env *fakeEnv, pollID uint64) *Msg {
	au := p.AUs()[0]
	pe := effort.DefaultCostModel().PollEffortFor(testSpecN(4).Size, 4)
	m := &Msg{
		Type:         MsgPoll,
		AU:           au,
		PollID:       pollID,
		Poller:       poller,
		Voter:        p.ID(),
		VoteBy:       env.Now() + sched.Time(p.Config().VoteWindow),
		PollDeadline: env.Now() + sched.Time(p.Config().PollInterval),
	}
	m.Proof = effort.SimProof{Effort: pe.Intro, Genuine: true}
	return m
}

func proofMsg(p *Peer, poller ids.PeerID, pollID uint64, nonce Nonce) *Msg {
	pe := effort.DefaultCostModel().PollEffortFor(testSpecN(4).Size, 4)
	return &Msg{
		Type:   MsgPollProof,
		AU:     p.AUs()[0],
		PollID: pollID,
		Poller: poller,
		Voter:  p.ID(),
		Nonce:  nonce,
		Proof:  effort.SimProof{Effort: pe.Remainder, Genuine: true},
	}
}

func TestVoterAcceptsAndCommits(t *testing.T) {
	env := newFakeEnv(1)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2, 3})
	poller := ids.PeerID(2)
	p.SeedGrade(p.AUs()[0], poller, reputation.Even)

	p.Receive(poller, inviteMsg(p, poller, env, 100))
	ack := env.lastTo(poller, MsgPollAck)
	if ack == nil || !ack.Accept {
		t.Fatalf("expected acceptance, got %+v", ack)
	}
	if p.Schedule().Len() != 1 {
		t.Fatalf("no schedule commitment recorded")
	}
	if p.Stats().InvitesConsidered != 1 {
		t.Error("consideration not counted")
	}
}

func TestVoterReservationTimeout(t *testing.T) {
	env := newFakeEnv(2)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2, 3})
	poller := ids.PeerID(2)
	au := p.AUs()[0]
	p.SeedGrade(au, poller, reputation.Even)

	p.Receive(poller, inviteMsg(p, poller, env, 100))
	if p.Schedule().Len() != 1 {
		t.Fatal("no commitment")
	}
	// Never send the PollProof: a reservation attack. The voter must
	// release the slot and penalize.
	env.eng.Run(sim.Time(2 * time.Hour))
	if p.Schedule().Len() != 0 {
		t.Error("deserted reservation not released")
	}
	if g := p.Reputation(au).GradeOf(reputation.Time(env.Now()), poller); g != reputation.Debt {
		t.Errorf("deserting poller grade %v, want debt", g)
	}
	if p.Stats().ProofsTimedOut != 1 {
		t.Error("proof timeout not counted")
	}
}

func TestVoterRefusesWhenBusy(t *testing.T) {
	env := newFakeEnv(3)
	cfg := testConfig()
	p, _ := newTestPeer(t, env, 10, cfg, []ids.PeerID{2, 3})
	poller := ids.PeerID(2)
	au := p.AUs()[0]
	p.SeedGrade(au, poller, reputation.Even)

	// Saturate the schedule across the whole vote window.
	if _, err := p.Schedule().Reserve(0, sched.Duration(cfg.VoteWindow)*2, "busy"); err != nil {
		t.Fatal(err)
	}
	p.Receive(poller, inviteMsg(p, poller, env, 100))
	ack := env.lastTo(poller, MsgPollAck)
	if ack == nil || ack.Accept || ack.Refuse != RefuseBusy {
		t.Fatalf("expected busy refusal, got %+v", ack)
	}
}

func TestVoterRejectsBadIntroEffort(t *testing.T) {
	env := newFakeEnv(4)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2, 3})
	poller := ids.PeerID(2)
	au := p.AUs()[0]
	p.SeedGrade(au, poller, reputation.Even)

	m := inviteMsg(p, poller, env, 100)
	m.Proof = effort.SimProof{Effort: 0, Genuine: true} // no effort at all
	p.Receive(poller, m)
	ack := env.lastTo(poller, MsgPollAck)
	if ack == nil || ack.Accept || ack.Refuse != RefuseBadEffort {
		t.Fatalf("expected bad-effort refusal, got %+v", ack)
	}
	if g := p.Reputation(au).GradeOf(reputation.Time(env.Now()), poller); g != reputation.Debt {
		t.Errorf("cheap poller grade %v, want debt", g)
	}
}

func TestVoterFullFlowAndReceipt(t *testing.T) {
	env := newFakeEnv(5)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2, 3, 4, 5})
	poller := ids.PeerID(2)
	au := p.AUs()[0]
	p.SeedGrade(au, poller, reputation.Credit)

	p.Receive(poller, inviteMsg(p, poller, env, 100))
	if a := env.lastTo(poller, MsgPollAck); a == nil || !a.Accept {
		t.Fatal("not accepted")
	}
	var nonce Nonce
	nonce[0] = 9
	p.Receive(poller, proofMsg(p, poller, 100, nonce))
	// The vote materializes at the end of the reserved compute slot.
	env.eng.Run(sim.Time(12 * time.Hour))
	vote := env.lastTo(poller, MsgVote)
	if vote == nil {
		t.Fatal("no vote sent")
	}
	if vote.Vote == nil || vote.Vote.Blocks() != 4 {
		t.Fatalf("vote body wrong: %+v", vote.Vote)
	}
	if len(vote.Nominations) == 0 {
		t.Error("vote carries no nominations")
	}
	for _, nom := range vote.Nominations {
		if nom == poller || nom == p.ID() {
			t.Errorf("nominated %v (poller or self)", nom)
		}
	}
	if vote.Proof == nil {
		t.Fatal("vote carries no effort proof")
	}
	if p.Stats().VotesSupplied != 1 {
		t.Error("vote not counted")
	}

	// A valid receipt settles the exchange: the poller consumed a vote, so
	// its grade drops one step (credit -> even).
	ctx := PollContext(poller, p.ID(), au, 100, "vote")
	receipt := effort.SimReceiptFor(ctx, vote.Proof.Cost())
	p.Receive(poller, &Msg{
		Type: MsgEvaluationReceipt, AU: au, PollID: 100,
		Poller: poller, Voter: p.ID(), Receipt: receipt,
	})
	if g := p.Reputation(au).GradeOf(reputation.Time(env.Now()), poller); g != reputation.Even {
		t.Errorf("grade after valid receipt %v, want even", g)
	}
}

func TestVoterPenalizesBogusReceipt(t *testing.T) {
	env := newFakeEnv(6)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2, 3, 4})
	poller := ids.PeerID(2)
	au := p.AUs()[0]
	p.SeedGrade(au, poller, reputation.Credit)

	p.Receive(poller, inviteMsg(p, poller, env, 100))
	p.Receive(poller, proofMsg(p, poller, 100, Nonce{}))
	env.eng.Run(sim.Time(12 * time.Hour))
	if env.lastTo(poller, MsgVote) == nil {
		t.Fatal("no vote")
	}
	var bogus effort.Receipt
	bogus[0] = 0xAA
	p.Receive(poller, &Msg{
		Type: MsgEvaluationReceipt, AU: au, PollID: 100,
		Poller: poller, Voter: p.ID(), Receipt: bogus,
	})
	if g := p.Reputation(au).GradeOf(reputation.Time(env.Now()), poller); g != reputation.Debt {
		t.Errorf("grade after bogus receipt %v, want debt", g)
	}
}

func TestVoterReceiptTimeout(t *testing.T) {
	env := newFakeEnv(7)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2, 3, 4})
	poller := ids.PeerID(2)
	au := p.AUs()[0]
	p.SeedGrade(au, poller, reputation.Credit)

	p.Receive(poller, inviteMsg(p, poller, env, 100))
	p.Receive(poller, proofMsg(p, poller, 100, Nonce{}))
	// Run past the poll deadline plus slack with no receipt: a wasteful
	// poller; penalize.
	env.eng.Run(sim.Time(sched.Duration(testConfig().PollInterval) + 10*time.Hour))
	if g := p.Reputation(au).GradeOf(reputation.Time(env.Now()), poller); g != reputation.Debt {
		t.Errorf("grade after receipt timeout %v, want debt", g)
	}
	if p.Stats().ReceiptsTimedOut != 1 {
		t.Error("receipt timeout not counted")
	}
}

func TestVoterServesRepairsUpToCap(t *testing.T) {
	env := newFakeEnv(8)
	cfg := testConfig()
	cfg.MaxRepairsServed = 2
	p, _ := newTestPeer(t, env, 10, cfg, []ids.PeerID{2, 3, 4})
	poller := ids.PeerID(2)
	au := p.AUs()[0]
	p.SeedGrade(au, poller, reputation.Even)

	p.Receive(poller, inviteMsg(p, poller, env, 100))
	p.Receive(poller, proofMsg(p, poller, 100, Nonce{}))
	env.eng.Run(sim.Time(12 * time.Hour))
	if env.lastTo(poller, MsgVote) == nil {
		t.Fatal("no vote")
	}
	env.take()
	for i := 0; i < 4; i++ {
		p.Receive(poller, &Msg{
			Type: MsgRepairRequest, AU: au, PollID: 100,
			Poller: poller, Voter: p.ID(), Block: int32(i % 4),
		})
	}
	served := 0
	for _, s := range env.take() {
		if s.m.Type == MsgRepair {
			served++
			if len(s.m.RepairData) == 0 {
				t.Error("empty repair payload")
			}
		}
	}
	if served != 2 {
		t.Errorf("served %d repairs, want cap 2", served)
	}
}

func TestVoterIgnoresRepairRequestWithoutSession(t *testing.T) {
	env := newFakeEnv(9)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2})
	p.Receive(3, &Msg{
		Type: MsgRepairRequest, AU: p.AUs()[0], PollID: 5,
		Poller: 3, Voter: p.ID(), Block: 0,
	})
	if len(env.take()) != 0 {
		t.Error("served a repair with no committed session")
	}
}

func TestVoterSilentlyDropsUnknown(t *testing.T) {
	env := newFakeEnv(10)
	cfg := testConfig()
	cfg.DropUnknown = 1.0 // always drop
	p, _ := newTestPeer(t, env, 10, cfg, []ids.PeerID{2})
	p.Receive(77, inviteMsg(p, 77, env, 100))
	if len(env.take()) != 0 {
		t.Error("dropped invitation produced a response")
	}
	if p.Stats().InvitesIgnored != 1 {
		t.Error("drop not counted as ignored")
	}
}

func TestVoterConsiderRateLimit(t *testing.T) {
	env := newFakeEnv(11)
	cfg := testConfig()
	cfg.ConsiderBurst = 1
	cfg.ConsiderRateFactor = 0.0001 // effectively no refill
	p, _ := newTestPeer(t, env, 10, cfg, []ids.PeerID{2, 3})
	au := p.AUs()[0]
	p.SeedGrade(au, 2, reputation.Even)
	p.SeedGrade(au, 3, reputation.Even)

	p.Receive(2, inviteMsg(p, 2, env, 100))
	if a := env.lastTo(2, MsgPollAck); a == nil {
		t.Fatal("first invitation should be considered")
	}
	p.Receive(3, inviteMsg(p, 3, env, 200))
	if a := env.lastTo(3, MsgPollAck); a != nil {
		t.Error("second invitation should be rate-capped silently")
	}
	if p.Stats().InvitesIgnored != 1 {
		t.Error("rate-capped invitation not counted")
	}
}

func TestUnsolicitedVoteIgnored(t *testing.T) {
	env := newFakeEnv(12)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2})
	// A vote for a poll this peer never called: the vote-flood defense.
	p.Receive(2, &Msg{
		Type: MsgVote, AU: p.AUs()[0], PollID: 999,
		Poller: p.ID(), Voter: 2,
		Vote: SimVote{NumBlocks: 4},
	})
	if len(env.take()) != 0 {
		t.Error("unsolicited vote produced a response")
	}
	if p.Stats().VotesReceived != 0 {
		t.Error("unsolicited vote counted")
	}
}

func TestDuplicateInvitationIgnored(t *testing.T) {
	env := newFakeEnv(13)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2})
	au := p.AUs()[0]
	p.SeedGrade(au, 2, reputation.Even)
	p.Receive(2, inviteMsg(p, 2, env, 100))
	first := len(env.take())
	p.Receive(2, inviteMsg(p, 2, env, 100)) // same poll ID
	if len(env.take()) != 0 || first == 0 {
		t.Error("duplicate invitation re-processed")
	}
}

func TestUnknownAUIgnored(t *testing.T) {
	env := newFakeEnv(14)
	p, _ := newTestPeer(t, env, 10, testConfig(), []ids.PeerID{2})
	m := inviteMsg(p, 2, env, 100)
	m.AU = 99
	p.Receive(2, m)
	if len(env.take()) != 0 {
		t.Error("invitation for unpreserved AU answered")
	}
}
