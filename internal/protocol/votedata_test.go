package protocol

import (
	"testing"
	"testing/quick"

	"lockss/internal/content"
	"lockss/internal/prng"
)

func spec4() content.AUSpec {
	return content.AUSpec{ID: 1, Name: "t", Size: 4096, BlockSize: 1024}
}

func TestVoteDataOfChoosesRepresentation(t *testing.T) {
	simR := content.NewSimReplica(spec4(), 1)
	if _, ok := VoteDataOf(simR, []byte("n")).(SimVote); !ok {
		t.Error("SimReplica should produce SimVote")
	}
	realR := content.NewRealReplica(spec4(), 1)
	if _, ok := VoteDataOf(realR, []byte("n")).(HashVote); !ok {
		t.Error("RealReplica should produce HashVote")
	}
}

func TestSimVoteFirstDisagreement(t *testing.T) {
	mk := func(blocks int, dam ...content.DamageEntry) SimVote {
		return SimVote{NumBlocks: blocks, Dam: dam}
	}
	cases := []struct {
		a, b SimVote
		want int
	}{
		{mk(4), mk(4), -1},
		{mk(4, content.DamageEntry{Block: 2, Mark: 5}), mk(4), 2},
		{mk(4), mk(4, content.DamageEntry{Block: 0, Mark: 5}), 0},
		{mk(4, content.DamageEntry{Block: 1, Mark: 5}), mk(4, content.DamageEntry{Block: 1, Mark: 5}), -1},
		{mk(4, content.DamageEntry{Block: 1, Mark: 5}), mk(4, content.DamageEntry{Block: 1, Mark: 6}), 1},
		{mk(4, content.DamageEntry{Block: 1, Mark: 5}), mk(4, content.DamageEntry{Block: 3, Mark: 5}), 1},
		{mk(4, content.DamageEntry{Block: 3, Mark: 5}), mk(4, content.DamageEntry{Block: 1, Mark: 5}), 1},
		{mk(4), mk(5), 4}, // length mismatch disagrees at the boundary
	}
	for i, c := range cases {
		if got := c.a.FirstDisagreement(c.b); got != c.want {
			t.Errorf("case %d: FirstDisagreement = %d, want %d", i, got, c.want)
		}
	}
}

func TestHashVoteFirstDisagreement(t *testing.T) {
	h := func(vals ...byte) HashVote {
		hv := HashVote{Hashes: make([]content.Hash, len(vals))}
		for i, v := range vals {
			hv.Hashes[i][0] = v
		}
		return hv
	}
	if d := h(1, 2, 3).FirstDisagreement(h(1, 2, 3)); d != -1 {
		t.Errorf("equal votes disagree at %d", d)
	}
	if d := h(1, 2, 3).FirstDisagreement(h(1, 9, 3)); d != 1 {
		t.Errorf("FirstDisagreement = %d, want 1", d)
	}
	if d := h(1, 2).FirstDisagreement(h(1, 2, 3)); d != 2 {
		t.Errorf("length mismatch = %d, want 2", d)
	}
}

func TestIncomparableRepresentationsDisagree(t *testing.T) {
	sv := SimVote{NumBlocks: 4}
	hv := HashVote{Hashes: make([]content.Hash, 4)}
	if sv.FirstDisagreement(hv) != 0 || hv.FirstDisagreement(sv) != 0 {
		t.Error("mixed representations should disagree immediately")
	}
}

// TestSimHashEquivalence is the load-bearing property: for any damage
// pattern, the symbolic vote comparison and the real hash comparison find
// the same first point of disagreement.
func TestSimHashEquivalence(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rnd := prng.New(seed)
		spec := content.AUSpec{ID: 2, Name: "p", Size: 8 * 512, BlockSize: 512}
		simA, simB := content.NewSimReplica(spec, 1), content.NewSimReplica(spec, 2)
		realA, realB := content.NewRealReplica(spec, 1), content.NewRealReplica(spec, 2)
		for i := 0; i < 4; i++ {
			if rnd.Bool(0.6) {
				b := rnd.Intn(spec.Blocks())
				simA.Damage(b)
				realA.Damage(b)
			}
			if rnd.Bool(0.6) {
				b := rnd.Intn(spec.Blocks())
				simB.Damage(b)
				realB.Damage(b)
			}
		}
		nonce := []byte("nonce")
		simDis := VoteDataOf(simA, nonce).FirstDisagreement(VoteDataOf(simB, nonce))
		realDis := VoteDataOf(realA, nonce).FirstDisagreement(VoteDataOf(realB, nonce))
		if simDis != realDis {
			t.Logf("seed %d: sim=%d real=%d", seed, simDis, realDis)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestWireBytesParity(t *testing.T) {
	// Network timing must not depend on the vote representation.
	spec := spec4()
	sv := VoteDataOf(content.NewSimReplica(spec, 1), []byte("n"))
	hv := VoteDataOf(content.NewRealReplica(spec, 1), []byte("n"))
	if sv.WireBytes() != hv.WireBytes() {
		t.Errorf("wire size differs: sim %d, hash %d", sv.WireBytes(), hv.WireBytes())
	}
	if sv.Blocks() != hv.Blocks() {
		t.Errorf("block count differs")
	}
}
