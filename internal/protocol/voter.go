package protocol

import (
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/reputation"
	"lockss/internal/sched"
)

// voterState tracks one voter-side session.
type voterState uint8

const (
	vsAwaitProof voterState = iota
	vsAwaitSlot
	vsAwaitReceipt
	vsClosed
)

// voterSession is the voter's record of a poll it committed to.
type voterSession struct {
	key          sessionKey
	state        voterState
	taskID       sched.TaskID
	slotStart    sched.Time
	slotEnd      sched.Time
	voteBy       sched.Time
	pollDeadline sched.Time
	nonce        Nonce
	myReceipt    effort.Receipt
	timer        TimerID
	repairs      int
}

// refillConsiderTokens advances the self-clocked consideration rate
// limiter: a peer considers poll invitations at most at a small multiple of
// the invitation rate it generates itself (§5.1).
func (p *Peer) refillConsiderTokens(st *auState) {
	now := p.env.Now()
	if st.considerAt < 0 {
		st.considerAt = now
		return
	}
	elapsed := float64(now - st.considerAt)
	if elapsed <= 0 {
		return
	}
	ownRate := float64(p.cfg.InnerCircle+p.cfg.OuterCircle) / float64(p.cfg.PollInterval)
	st.considerTokens += elapsed * ownRate * p.cfg.ConsiderRateFactor
	if st.considerTokens > p.cfg.ConsiderBurst {
		st.considerTokens = p.cfg.ConsiderBurst
	}
	st.considerAt = now
}

// voterHandlePoll runs admission control and, on admission, considers the
// invitation: session setup, introductory-effort verification, schedule
// check, and commitment.
func (p *Peer) voterHandlePoll(st *auState, from ids.PeerID, m *Msg) {
	if from == p.id || m.Poller != from {
		return
	}
	key := sessionKey{poller: from, pollID: m.PollID}
	if _, dup := st.sessions[key]; dup {
		return
	}

	// Self-clocked rate limit on considering invitations at all.
	p.refillConsiderTokens(st)
	if st.considerTokens < 1 {
		p.stats.InvitesIgnored++
		return
	}
	// First-hand reputation admission control: refractory periods, random
	// drops, introductions. Rejections are silent and essentially free.
	now := repTime(p.env.Now())
	dec := st.rep.Consider(now, from, p.env.Rand())
	if !dec.Admitted() {
		p.stats.InvitesIgnored++
		return
	}
	st.considerTokens--

	// Adaptive acceptance (§9 extension): the busier this peer has recently
	// been, the likelier it is to ignore invitations from the unknown/
	// in-debt channel — the only channel an attacker can scale.
	if p.cfg.AdaptiveAcceptance && dec == reputation.AdmitUnknown {
		window := sched.Duration(p.cfg.VoteWindow)
		busy := p.sch.BusyFraction(p.env.Now()-sched.Time(window), p.env.Now())
		refuseProb := busy * p.cfg.AdaptiveGain
		if refuseProb > 0.95 {
			refuseProb = 0.95
		}
		if p.env.Rand().Bool(refuseProb) {
			p.stats.InvitesIgnored++
			return
		}
	}

	// Consideration proper: establish the session, check the schedule,
	// verify the introductory effort.
	p.stats.InvitesConsidered++
	p.charge(KindSession, p.costs.SessionSetup)
	p.charge(KindConsider, p.costs.ScheduleCheck)

	if p.cfg.EffortBalancing {
		p.charge(KindVerify, p.costs.VerifyCost(st.pollEffort.Intro))
		if !p.env.VerifyProof(p.msgContext(m, "intro"), m.Proof, st.pollEffort.Intro) {
			p.stats.BadProofs++
			st.rep.Penalize(now, from)
			p.refuseInvite(st, from, m.PollID, RefuseBadEffort)
			return
		}
	}

	// Schedule the vote computation: hashing the replica plus generating
	// the vote's effort proof, within the poller's allowance. The slot must
	// start after the proof timeout so the PollProof always precedes it.
	voteDur := sched.Duration((st.pollEffort.VoteHash + st.pollEffort.VoteProof).Duration())
	earliest := p.env.Now() + sched.Time(p.cfg.ProofTimeout)
	taskID, slotStart, ok := p.sch.ReserveSlot(earliest, voteDur, m.VoteBy, st.voteLabel)
	if !ok {
		p.refuseInvite(st, from, m.PollID, RefuseBusy)
		return
	}

	var s *voterSession
	if k := len(p.freeSessions); k > 0 {
		s = p.freeSessions[k-1]
		p.freeSessions[k-1] = nil
		p.freeSessions = p.freeSessions[:k-1]
	} else {
		s = &voterSession{}
	}
	*s = voterSession{
		key:          key,
		state:        vsAwaitProof,
		taskID:       taskID,
		slotStart:    slotStart,
		slotEnd:      slotStart + sched.Time(voteDur),
		voteBy:       m.VoteBy,
		pollDeadline: m.PollDeadline,
	}
	st.sessions[key] = s
	p.send(from, &Msg{
		Type:   MsgPollAck,
		AU:     st.spec.ID,
		PollID: m.PollID,
		Poller: from,
		Voter:  p.id,
		Accept: true,
	})
	// Reservation defense: if the poller never follows up with PollProof,
	// release the commitment and penalize (the introductory effort was
	// sized to cover exactly this exposure).
	s.timer = p.env.After(p.cfg.ProofTimeout, func() {
		if s.state != vsAwaitProof {
			return
		}
		p.stats.ProofsTimedOut++
		p.sch.Release(s.taskID)
		st.rep.Penalize(repTime(p.env.Now()), from)
		p.closeSession(st, s)
	})
}

// refuseInvite sends a negative PollAck.
func (p *Peer) refuseInvite(st *auState, from ids.PeerID, pollID uint64, r RefuseReason) {
	p.stats.InvitesRefused++
	p.send(from, &Msg{
		Type:   MsgPollAck,
		AU:     st.spec.ID,
		PollID: pollID,
		Poller: from,
		Voter:  p.id,
		Accept: false,
		Refuse: r,
	})
}

// voterHandleProof processes the PollProof: verify the remaining poller
// effort, then compute the vote in the reserved slot.
func (p *Peer) voterHandleProof(st *auState, from ids.PeerID, m *Msg) {
	key := sessionKey{poller: from, pollID: m.PollID}
	s, ok := st.sessions[key]
	if !ok || s.state != vsAwaitProof {
		return
	}
	p.stopTimer(&s.timer)
	now := repTime(p.env.Now())
	if p.cfg.EffortBalancing {
		p.charge(KindVerify, p.costs.VerifyCost(st.pollEffort.Remainder))
		if !p.env.VerifyProof(p.msgContext(m, "remainder"), m.Proof, st.pollEffort.Remainder) {
			p.stats.BadProofs++
			p.sch.Release(s.taskID)
			st.rep.Penalize(now, from)
			p.closeSession(st, s)
			return
		}
	}
	s.nonce = m.Nonce
	s.state = vsAwaitSlot
	// The vote materializes when its reserved compute slot completes.
	s.timer = p.env.After(sched.Duration(s.slotEnd-p.env.Now()), func() {
		p.completeVote(st, s, from)
	})
}

// completeVote runs at the end of the reserved compute slot: hash the
// replica under the nonce, generate the vote's provable effort, remember the
// receipt byproduct, and send the Vote with discovery nominations.
func (p *Peer) completeVote(st *auState, s *voterSession, poller ids.PeerID) {
	if s.state != vsAwaitSlot {
		return
	}
	p.charge(KindVote, st.pollEffort.VoteHash+st.pollEffort.VoteProof)
	vd := p.ownVoteData(st, s.nonce[:])
	m := &Msg{
		Type:   MsgVote,
		AU:     st.spec.ID,
		PollID: s.key.pollID,
		Poller: poller,
		Voter:  p.id,
		Vote:   vd,
	}
	if p.cfg.EffortBalancing {
		proof, receipt := p.env.MakeProof(p.msgContext(m, "vote"), st.pollEffort.VoteProof)
		m.Proof = proof
		s.myReceipt = receipt
	}
	// Discovery: offer a random subset of the reference list.
	m.Nominations = p.sampleRefList(st, p.cfg.Nominations, poller)

	s.state = vsAwaitReceipt
	p.stats.VotesSupplied++
	p.obs.VoteSupplied(p.id, poller, st.spec.ID, s.key.pollID, p.env.Now())
	p.send(poller, m)

	// Waste defense: the poller owes an evaluation receipt by shortly after
	// the poll deadline; withholding it is penalized.
	wait := sched.Duration(s.pollDeadline-p.env.Now()) + p.cfg.ReceiptSlack
	if wait < 0 {
		wait = p.cfg.ReceiptSlack
	}
	s.timer = p.env.After(wait, func() {
		if s.state != vsAwaitReceipt {
			return
		}
		p.stats.ReceiptsTimedOut++
		st.rep.Penalize(repTime(p.env.Now()), poller)
		p.closeSession(st, s)
	})
}

// voterHandleRepairRequest serves a block to a poller we voted for, up to
// the per-poll cap. Voters committed to a poll are expected to supply a
// small number of repairs; exceeding the cap is ignored (and the poller will
// look elsewhere).
func (p *Peer) voterHandleRepairRequest(st *auState, from ids.PeerID, m *Msg) {
	key := sessionKey{poller: from, pollID: m.PollID}
	s, ok := st.sessions[key]
	if !ok || s.state != vsAwaitReceipt {
		return
	}
	if s.repairs >= p.cfg.MaxRepairsServed {
		return
	}
	data, err := st.replica.RepairBlock(int(m.Block))
	if err != nil {
		return
	}
	s.repairs++
	p.stats.RepairsServed++
	p.charge(KindRepair, p.costs.HashCost(st.spec.BlockSize))
	p.send(from, &Msg{
		Type:       MsgRepair,
		AU:         st.spec.ID,
		PollID:     m.PollID,
		Poller:     from,
		Voter:      p.id,
		Block:      m.Block,
		RepairData: data,
	})
}

// voterHandleReceipt closes the loop: a valid receipt proves the poller
// evaluated our vote; the exchange bookkeeping then lowers the poller's
// grade by one step (it consumed a vote). An invalid receipt is misbehavior.
func (p *Peer) voterHandleReceipt(st *auState, from ids.PeerID, m *Msg) {
	key := sessionKey{poller: from, pollID: m.PollID}
	s, ok := st.sessions[key]
	if !ok || s.state != vsAwaitReceipt {
		return
	}
	now := repTime(p.env.Now())
	if p.cfg.EffortBalancing {
		p.charge(KindReceipt, p.costs.ReceiptCheck)
		if !effort.ReceiptMatches(s.myReceipt, m.Receipt) {
			st.rep.Penalize(now, from)
			p.closeSession(st, s)
			return
		}
	}
	st.rep.Lower(now, from)
	p.closeSession(st, s)
}

// closeSession cancels timers and forgets the session, recycling the record.
// A session's only live closure is its current timer, cancelled here, so
// nothing can observe the record after it returns to the freelist.
func (p *Peer) closeSession(st *auState, s *voterSession) {
	p.stopTimer(&s.timer)
	s.state = vsClosed
	delete(st.sessions, s.key)
	p.freeSessions = append(p.freeSessions, s)
}
