package protocol

import (
	"lockss/internal/content"
)

// VoteData is the content evidence carried by a Vote message: conceptually,
// the running hash of the voter's replica at every block boundary under the
// poll nonce.
//
// Two implementations exist: HashVote carries actual hashes (real node,
// integration tests); SimVote carries the voter's damage snapshot, from
// which the same agreement pattern is derived symbolically at a tiny
// fraction of the cost (the hashing *effort* is charged by the cost model).
// A property test asserts the two produce identical FirstDisagreement
// results for identical damage states.
type VoteData interface {
	// Blocks returns the number of block boundaries covered.
	Blocks() int
	// FirstDisagreement returns the smallest block index at which this
	// vote's running hash differs from ref's, or -1 if they agree at every
	// boundary. ref must be built against the evaluator's own replica under
	// the same nonce.
	FirstDisagreement(ref VoteData) int
	// WireBytes is the encoded size of the vote body, used to model
	// transfer time.
	WireBytes() int
}

// VoteDataOf snapshots a replica's vote under nonce, choosing the symbolic
// representation for SimReplica and real hashes otherwise.
func VoteDataOf(r content.Replica, nonce []byte) VoteData {
	if sr, ok := r.(*content.SimReplica); ok {
		return SimVote{NumBlocks: sr.Spec().Blocks(), Dam: sr.Snapshot()}
	}
	return HashVote{Hashes: r.VoteHashes(nonce)}
}

// ownVoteData is VoteDataOf for the peer's own replica of st, memoized on
// the replica's damage generation for the symbolic representation (which is
// nonce-independent). Votes are compared and encoded read-only, so reusing
// one boxed value is indistinguishable from rebuilding it.
func (p *Peer) ownVoteData(st *auState, nonce []byte) VoteData {
	sr, ok := st.replica.(*content.SimReplica)
	if !ok {
		return VoteDataOf(st.replica, nonce)
	}
	if st.ownVote == nil || st.ownVoteGen != sr.Generation() {
		st.ownVote = SimVote{NumBlocks: sr.Spec().Blocks(), Dam: sr.Snapshot()}
		st.ownVoteGen = sr.Generation()
	}
	return st.ownVote
}

// HashVote is the literal vote body: one running hash per block boundary.
type HashVote struct {
	Hashes []content.Hash
}

// Blocks implements VoteData.
func (v HashVote) Blocks() int { return len(v.Hashes) }

// FirstDisagreement implements VoteData.
func (v HashVote) FirstDisagreement(ref VoteData) int {
	o, ok := ref.(HashVote)
	if !ok {
		return 0 // incomparable representations disagree immediately
	}
	n := len(v.Hashes)
	if len(o.Hashes) < n {
		n = len(o.Hashes)
	}
	for i := 0; i < n; i++ {
		if v.Hashes[i] != o.Hashes[i] {
			return i
		}
	}
	if len(v.Hashes) != len(o.Hashes) {
		return n
	}
	return -1
}

// WireBytes implements VoteData.
func (v HashVote) WireBytes() int { return len(v.Hashes) * 32 }

// SimVote is the symbolic vote body: the voter's damage snapshot. Because
// the running hash at boundary i depends on blocks [0, i], the first
// boundary where two replicas' hashes differ is exactly the first block
// where their damage marks differ.
type SimVote struct {
	NumBlocks int
	Dam       []content.DamageEntry // sorted by block
}

// Blocks implements VoteData.
func (v SimVote) Blocks() int { return v.NumBlocks }

// FirstDisagreement implements VoteData.
func (v SimVote) FirstDisagreement(ref VoteData) int {
	o, ok := ref.(SimVote)
	if !ok {
		return 0
	}
	i, j := 0, 0
	for i < len(v.Dam) && j < len(o.Dam) {
		a, b := v.Dam[i], o.Dam[j]
		switch {
		case a.Block < b.Block:
			return a.Block // damaged here, ref correct here
		case a.Block > b.Block:
			return b.Block
		case a.Mark != b.Mark:
			return a.Block // both damaged, different corruption
		default:
			i++
			j++
		}
	}
	if i < len(v.Dam) {
		return v.Dam[i].Block
	}
	if j < len(o.Dam) {
		return o.Dam[j].Block
	}
	if v.NumBlocks != o.NumBlocks {
		return min(v.NumBlocks, o.NumBlocks)
	}
	return -1
}

// WireBytes implements VoteData: the simulated transfer size matches what
// the hash representation would have occupied, so network timing is
// representation-independent.
func (v SimVote) WireBytes() int { return v.NumBlocks * 32 }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
