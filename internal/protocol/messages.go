package protocol

import (
	"encoding/binary"
	"fmt"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/sched"
)

// MsgType enumerates the protocol messages of Figure 1 in the paper, plus
// the repair pair.
type MsgType uint8

const (
	// MsgPoll invites a voter into a poll, carrying the introductory effort
	// proof (anti-reservation).
	MsgPoll MsgType = iota + 1
	// MsgPollAck accepts or refuses the invitation; acceptance commits the
	// voter's schedule.
	MsgPollAck
	// MsgPollProof supplies the vote nonce and the remaining poller effort
	// proof (anti-desertion).
	MsgPollProof
	// MsgVote carries the vote body, its effort proof (anti-desertion by
	// voters) and discovery nominations.
	MsgVote
	// MsgRepairRequest asks a voter for one block's content.
	MsgRepairRequest
	// MsgRepair supplies the requested block.
	MsgRepair
	// MsgEvaluationReceipt proves the poller evaluated the vote
	// (anti-waste); its body is the MBF byproduct of the vote's effort
	// proof.
	MsgEvaluationReceipt
)

func (t MsgType) String() string {
	switch t {
	case MsgPoll:
		return "Poll"
	case MsgPollAck:
		return "PollAck"
	case MsgPollProof:
		return "PollProof"
	case MsgVote:
		return "Vote"
	case MsgRepairRequest:
		return "RepairRequest"
	case MsgRepair:
		return "Repair"
	case MsgEvaluationReceipt:
		return "EvaluationReceipt"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// RefuseReason explains a negative PollAck.
type RefuseReason uint8

const (
	// RefuseNone means the invitation was accepted.
	RefuseNone RefuseReason = iota
	// RefuseBusy means the vote could not be accommodated in the schedule.
	RefuseBusy
	// RefuseBadEffort means the introductory effort proof failed to verify.
	RefuseBadEffort
	// RefuseProtocol means the message was malformed or out of order.
	RefuseProtocol
)

func (r RefuseReason) String() string {
	switch r {
	case RefuseNone:
		return "accepted"
	case RefuseBusy:
		return "busy"
	case RefuseBadEffort:
		return "bad-effort"
	case RefuseProtocol:
		return "protocol"
	}
	return "invalid"
}

// Nonce is the poller-supplied randomness a vote is keyed by.
type Nonce [16]byte

// Msg is a protocol message. One struct covers all types; unused fields are
// zero. The wire codec (internal/wire) encodes exactly the fields relevant
// to each type, and WireSize reflects that encoding for network-timing
// purposes in the simulator.
type Msg struct {
	Type   MsgType
	AU     content.AUID
	PollID uint64
	Poller ids.PeerID
	Voter  ids.PeerID

	// Poll fields.
	VoteBy       sched.Time // deadline for vote delivery
	PollDeadline sched.Time // when the poll concludes (receipt horizon)

	// Poll / PollProof / Vote: proof of effort.
	Proof effort.Proof

	// PollAck fields.
	Accept bool
	Refuse RefuseReason

	// PollProof fields.
	Nonce Nonce

	// Vote fields.
	Vote        VoteData
	Nominations []ids.PeerID

	// Repair fields.
	Block      int32
	RepairData []byte

	// EvaluationReceipt fields.
	Receipt effort.Receipt
}

// headerBytes is the encoded size of the fields common to all messages.
const headerBytes = 1 + 4 + 8 + 4 + 4 // type, au, pollID, poller, voter

// proofWireBytes models the encoded size of an effort proof. MBF proofs
// carry their checkpoint vectors; simulated proofs are sized as a real proof
// of the same cost would be, at one checkpoint row per effort unit.
func proofWireBytes(p effort.Proof) int {
	if p == nil {
		return 1
	}
	if mp, ok := p.(*effort.MBFProof); ok {
		n := 1 + 8
		for _, cp := range mp.Checkpoints {
			n += 8 * len(cp)
		}
		return n + 20
	}
	// Simulated: 17 checkpoint words per effort unit (16 checkpoints + seed)
	// at one unit per effort-second, minimum one row.
	units := int(float64(p.Cost())) + 1
	return 1 + 8 + units*17*8 + 20
}

// WireSize returns the modeled encoded size of the message in bytes.
func (m *Msg) WireSize() int {
	n := headerBytes
	switch m.Type {
	case MsgPoll:
		n += 8 + 8 // VoteBy, PollDeadline
		n += proofWireBytes(m.Proof)
	case MsgPollAck:
		n += 1 + 1 // accept, reason
	case MsgPollProof:
		n += len(m.Nonce)
		n += proofWireBytes(m.Proof)
	case MsgVote:
		if m.Vote != nil {
			n += 4 + m.Vote.WireBytes()
		}
		n += 2 + 4*len(m.Nominations)
		n += proofWireBytes(m.Proof)
	case MsgRepairRequest:
		n += 4
	case MsgRepair:
		n += 4 + 4 + len(m.RepairData)
	case MsgEvaluationReceipt:
		n += len(m.Receipt)
	}
	return n
}

// Context derives the effort-proof binding context for a protocol phase of
// this poll: poller, voter, poll and phase are all bound, so proofs cannot
// be replayed across exchanges.
func (m *Msg) Context(phase string) []byte {
	return PollContext(m.Poller, m.Voter, m.AU, m.PollID, phase)
}

// PollContext builds the canonical effort-binding context.
func PollContext(poller, voter ids.PeerID, au content.AUID, pollID uint64, phase string) []byte {
	return AppendPollContext(make([]byte, 0, 20+len(phase)), poller, voter, au, pollID, phase)
}

// AppendPollContext appends the canonical effort-binding context to dst and
// returns the extended slice. The hot path reuses a per-peer scratch buffer
// through it; contexts are consumed synchronously by the effort primitives
// and never retained.
func AppendPollContext(dst []byte, poller, voter ids.PeerID, au content.AUID, pollID uint64, phase string) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(poller))
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(voter))
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(au))
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], pollID)
	dst = append(dst, tmp[:8]...)
	dst = append(dst, phase...)
	return dst
}
