package protocol

import (
	"fmt"
	"reflect"
	"testing"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/sched"
)

// orderObserver records every callback it receives into a shared log, so a
// test can assert the tee's fan-out order. It optionally implements
// SpanObserver via spanOrderObserver.
type orderObserver struct {
	name string
	log  *[]string
}

func (o orderObserver) note(ev string) { *o.log = append(*o.log, o.name+":"+ev) }

func (o orderObserver) PollConcluded(p ids.PeerID, au content.AUID, pollID uint64, out Outcome, started, now sched.Time) {
	o.note(fmt.Sprintf("concluded/%d", pollID))
}
func (o orderObserver) Alarm(p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	o.note("alarm")
}
func (o orderObserver) RepairApplied(p ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	o.note(fmt.Sprintf("repair/%d", block))
}
func (o orderObserver) VoteSupplied(v, p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	o.note("vote-supplied")
}

type spanOrderObserver struct{ orderObserver }

func (o spanOrderObserver) PollStarted(p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	o.note(fmt.Sprintf("started/%d", pollID))
}
func (o spanOrderObserver) VoteSolicited(p, v ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	o.note("solicited")
}
func (o spanOrderObserver) VoteReceived(p, v ids.PeerID, au content.AUID, pollID uint64, solicitedAt, now sched.Time) {
	o.note("vote-received")
}
func (o spanOrderObserver) TallyStarted(p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	o.note("tally")
}
func (o spanOrderObserver) RepairRequested(p, v ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	o.note("repair-req")
}

// TestTeeObserverFanOut pins the tee contract: every Observer callback
// reaches every non-nil observer in argument order, and SpanObserver
// callbacks reach exactly the observers that implement the interface —
// still in argument order.
func TestTeeObserverFanOut(t *testing.T) {
	var log []string
	a := spanOrderObserver{orderObserver{"a", &log}}
	b := orderObserver{"b", &log} // Observer only
	c := spanOrderObserver{orderObserver{"c", &log}}
	tee := TeeObserver(a, nil, b, c)

	tee.PollConcluded(1, 2, 7, OutcomeSuccess, 0, 10)
	tee.Alarm(1, 2, 7, 11)
	tee.RepairApplied(1, 2, 7, 3, 12)
	tee.VoteSupplied(1, 2, 2, 7, 13)
	want := []string{
		"a:concluded/7", "b:concluded/7", "c:concluded/7",
		"a:alarm", "b:alarm", "c:alarm",
		"a:repair/3", "b:repair/3", "c:repair/3",
		"a:vote-supplied", "b:vote-supplied", "c:vote-supplied",
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("Observer fan-out:\n got %v\nwant %v", log, want)
	}

	log = log[:0]
	span, ok := tee.(SpanObserver)
	if !ok {
		t.Fatal("tee of span observers does not implement SpanObserver")
	}
	span.PollStarted(1, 2, 7, 20)
	span.VoteSolicited(1, 3, 2, 7, 21)
	span.VoteReceived(1, 3, 2, 7, 21, 22)
	span.TallyStarted(1, 2, 7, 23)
	span.RepairRequested(1, 3, 2, 7, 0, 24)
	want = []string{
		"a:started/7", "c:started/7",
		"a:solicited", "c:solicited",
		"a:vote-received", "c:vote-received",
		"a:tally", "c:tally",
		"a:repair-req", "c:repair-req",
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("SpanObserver fan-out:\n got %v\nwant %v", log, want)
	}
}

// orderTap records EnvTap callbacks into a shared log.
type orderTap struct {
	name string
	log  *[]string
}

func (o orderTap) note(ev string) { *o.log = append(*o.log, o.name+":"+ev) }

func (o orderTap) MsgIn(from ids.PeerID, frame []byte, m *Msg, now sched.Time) { o.note("msg-in") }
func (o orderTap) TimerFired(id TimerID, now sched.Time)                       { o.note("timer") }
func (o orderTap) MsgOut(to ids.PeerID, m *Msg, now sched.Time)                { o.note("msg-out") }
func (o orderTap) DamageNoticed(au content.AUID, block int, now sched.Time)    { o.note("damage") }

// TestTeeTapFanOut pins the tap tee: nil taps are dropped, the rest receive
// every callback in argument order.
func TestTeeTapFanOut(t *testing.T) {
	var log []string
	tee := TeeTap(nil, orderTap{"x", &log}, nil, orderTap{"y", &log})
	tee.MsgIn(1, nil, nil, 10)
	tee.TimerFired(5, 11)
	tee.MsgOut(2, nil, 12)
	tee.DamageNoticed(3, 4, 13)
	want := []string{
		"x:msg-in", "y:msg-in",
		"x:timer", "y:timer",
		"x:msg-out", "y:msg-out",
		"x:damage", "y:damage",
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("EnvTap fan-out:\n got %v\nwant %v", log, want)
	}
}
