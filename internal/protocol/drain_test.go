package protocol

import (
	"testing"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/sim"
)

// TestDrainFinishesInFlightPoll drains a peer mid-poll: the in-flight poll
// must run to its conclusion, no successor may start, and ActivePolls must
// reach zero and stay there.
func TestDrainFinishesInFlightPoll(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.p.Start()
	if h.p.ActivePolls() != 1 {
		t.Fatalf("ActivePolls = %d after Start, want 1", h.p.ActivePolls())
	}
	h.p.Drain()
	if !h.p.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	h.pump(3 * sim.Duration(cfg.PollInterval))
	st := h.p.Stats()
	if st.PollsConcluded() != 1 {
		t.Fatalf("PollsConcluded = %d after drain, want exactly the in-flight poll: %+v", st.PollsConcluded(), st)
	}
	if st.PollsStarted != 1 {
		t.Fatalf("PollsStarted = %d, want 1 (no successor during drain)", st.PollsStarted)
	}
	if h.p.ActivePolls() != 0 {
		t.Fatalf("ActivePolls = %d after drain horizon, want 0", h.p.ActivePolls())
	}
}

// TestPollsStartedCounter checks the started counter tracks conclusions one
// ahead (a new poll is always in flight when not draining).
func TestPollsStartedCounter(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.p.Start()
	h.pump(3 * sim.Duration(pollerConfig().PollInterval))
	st := h.p.Stats()
	if st.PollsStarted != st.PollsConcluded()+1 {
		t.Errorf("PollsStarted = %d, want concluded+1 = %d", st.PollsStarted, st.PollsConcluded()+1)
	}
}

// TestAUInfoSnapshot exercises the inspection snapshot: spec, damage list,
// in-flight poll deadline and graded reference list.
func TestAUInfoSnapshot(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.replica.Damage(2)
	h.p.Start()

	info, ok := h.p.AUInfo(1)
	if !ok {
		t.Fatal("AUInfo(1) not found")
	}
	if info.Spec.ID != 1 || info.Spec.Blocks() != 4 {
		t.Errorf("unexpected spec %+v", info.Spec)
	}
	if len(info.DamagedBlocks) != 1 || info.DamagedBlocks[0] != 2 {
		t.Errorf("DamagedBlocks = %v, want [2]", info.DamagedBlocks)
	}
	if !info.PollActive || info.PollDeadline <= 0 {
		t.Errorf("expected an in-flight poll with a deadline, got %+v", info)
	}
	if info.LastSuccess >= 0 {
		t.Errorf("LastSuccess = %v before any success", info.LastSuccess)
	}
	if len(info.RefList) != 5 {
		t.Fatalf("RefList size = %d, want 5", len(info.RefList))
	}
	for i := 1; i < len(info.RefList); i++ {
		if info.RefList[i-1].Peer >= info.RefList[i].Peer {
			t.Fatalf("RefList not sorted: %+v", info.RefList)
		}
	}
	// The harness seeds every voter Even.
	for _, e := range info.RefList {
		if e.Grade.String() != "even" {
			t.Errorf("grade of %v = %v, want even", e.Peer, e.Grade)
		}
	}
	if _, ok := h.p.AUInfo(99); ok {
		t.Error("AUInfo(99) should not exist")
	}
	if n := len(h.p.AUInfos()); n != 1 {
		t.Errorf("AUInfos len = %d, want 1", n)
	}

	// After repair, the damage list empties and the generation advances.
	gen := info.Generation
	h.pump(2 * sim.Duration(cfg.PollInterval))
	info, _ = h.p.AUInfo(1)
	if len(info.DamagedBlocks) != 0 {
		t.Errorf("DamagedBlocks = %v after repair horizon", info.DamagedBlocks)
	}
	if info.Generation == gen {
		t.Error("generation unchanged across a repair")
	}
	if info.LastSuccess < 0 {
		t.Error("LastSuccess unset after successful polls")
	}
	var _ content.Replica = h.replica
}
