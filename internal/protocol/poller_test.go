package protocol

import (
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/reputation"
	"lockss/internal/sim"
)

// pollerHarness runs one peer as poller against scripted voter behavior.
type pollerHarness struct {
	t        *testing.T
	env      *fakeEnv
	p        *Peer
	replica  *content.SimReplica
	pe       effort.PollEffort
	voters   map[ids.PeerID]*scriptedVoter
	au       content.AUID
	delay    sim.Duration // simulated network delay for scripted replies
	receipts map[ids.PeerID]effort.Receipt
	// receiptsGot counts evaluation receipts delivered to each voter.
	receiptsGot map[ids.PeerID]int
}

// scriptedVoter describes how a fake voter behaves.
type scriptedVoter struct {
	replica    *content.SimReplica
	refuse     bool // always refuse busy
	silent     bool // never answer
	noVote     bool // accept, then never vote
	badProof   bool // vote with an invalid effort proof
	noms       []ids.PeerID
	norepair   bool
	votedNonce *Nonce
}

func newPollerHarness(t *testing.T, cfg Config, voterIDs []ids.PeerID) *pollerHarness {
	env := newFakeEnv(42)
	h := &pollerHarness{
		t:           t,
		env:         env,
		voters:      make(map[ids.PeerID]*scriptedVoter),
		au:          1,
		delay:       sim.Duration(50 * time.Millisecond),
		receipts:    make(map[ids.PeerID]effort.Receipt),
		receiptsGot: make(map[ids.PeerID]int),
	}
	p, replica := newTestPeer(t, env, 1, cfg, voterIDs)
	h.p = p
	h.replica = replica
	h.pe = effort.DefaultCostModel().PollEffortFor(testSpecN(4).Size, 4)
	for i, v := range voterIDs {
		h.voters[v] = &scriptedVoter{replica: content.NewSimReplica(testSpecN(4), uint64(100+i))}
		p.SeedGrade(h.au, v, reputation.Even)
	}
	return h
}

// pump processes outbound messages, generating scripted replies, stepping
// the engine one event at a time so replies interleave naturally, until the
// horizon passes or the system quiesces.
func (h *pollerHarness) pump(horizon sim.Duration) {
	deadline := h.env.eng.Now().Add(horizon)
	for {
		for _, s := range h.env.take() {
			h.reply(s)
		}
		next, ok := h.env.eng.Next()
		if !ok || next > deadline {
			break
		}
		h.env.eng.Step()
	}
}

// reply scripts the voter side of the exchange.
func (h *pollerHarness) reply(s sentMsg) {
	v, ok := h.voters[s.to]
	if !ok || v.silent {
		return
	}
	m := s.m
	after := func(d sim.Duration, fn func()) { h.env.eng.After(d, fn) }
	switch m.Type {
	case MsgPoll:
		reply := &Msg{Type: MsgPollAck, AU: m.AU, PollID: m.PollID, Poller: m.Poller, Voter: s.to}
		reply.Accept = !v.refuse
		if v.refuse {
			reply.Refuse = RefuseBusy
		}
		after(h.delay, func() { h.p.Receive(reply.Voter, reply) })
	case MsgPollProof:
		if v.noVote {
			return
		}
		nonce := m.Nonce
		v.votedNonce = &nonce
		vote := &Msg{
			Type: MsgVote, AU: m.AU, PollID: m.PollID, Poller: m.Poller, Voter: s.to,
			Vote:        VoteDataOf(v.replica, nonce[:]),
			Nominations: v.noms,
		}
		ctx := PollContext(m.Poller, s.to, m.AU, m.PollID, "vote")
		if v.badProof {
			vote.Proof = effort.SimProof{Effort: h.pe.VoteProof, Genuine: false}
		} else {
			vote.Proof = effort.SimProof{Effort: h.pe.VoteProof, Genuine: true}
			h.receipts[s.to] = effort.SimReceiptFor(ctx, h.pe.VoteProof)
		}
		after(h.delay, func() { h.p.Receive(vote.Voter, vote) })
	case MsgRepairRequest:
		if v.norepair {
			return
		}
		data, err := v.replica.RepairBlock(int(m.Block))
		if err != nil {
			return
		}
		rep := &Msg{Type: MsgRepair, AU: m.AU, PollID: m.PollID, Poller: m.Poller, Voter: s.to,
			Block: m.Block, RepairData: data}
		after(h.delay, func() { h.p.Receive(rep.Voter, rep) })
	case MsgEvaluationReceipt:
		h.receiptsGot[s.to]++
	}
}

func pollerConfig() Config {
	cfg := testConfig()
	cfg.InnerCircle = 5
	cfg.Quorum = 3
	cfg.MaxDisagree = 1
	cfg.OuterCircle = 0
	return cfg
}

func TestPollerHappyPath(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.p.Start()
	h.pump(3 * sim.Duration(pollerConfig().PollInterval))
	st := h.p.Stats()
	if st.PollsSucceeded == 0 {
		t.Fatalf("no successful polls: %+v", st)
	}
	if st.PollsInconclusive != 0 || st.PollsRepairFailed != 0 {
		t.Errorf("unexpected poll failures: %+v", st)
	}
	if st.VotesReceived < uint64(pollerConfig().Quorum) {
		t.Errorf("too few votes: %d", st.VotesReceived)
	}
}

func TestPollerRepairsOwnDamage(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.replica.Damage(2)
	h.p.Start()
	h.pump(2 * sim.Duration(pollerConfig().PollInterval))
	if h.replica.Damaged() {
		t.Error("poller's damaged block was not repaired")
	}
	if h.p.Stats().RepairsReceived == 0 {
		t.Error("no repair received")
	}
	if h.p.Stats().PollsSucceeded == 0 {
		t.Error("repairing poll should conclude successfully")
	}
}

func TestPollerExcludesDamagedVoter(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.voters[3].replica.Damage(1) // one voter holds a damaged replica
	h.p.Start()
	h.pump(2 * sim.Duration(pollerConfig().PollInterval))
	if h.replica.Damaged() {
		t.Error("poller replica should be intact")
	}
	if h.p.Stats().PollsSucceeded == 0 {
		t.Error("landslide agreement should still succeed")
	}
	if h.p.Stats().RepairsReceived != 0 {
		t.Error("no repair should be needed for the poller")
	}
}

func TestPollerInconclusiveAlarm(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	// Split the population: two voters damaged at block 1 (distinct
	// corruption), vs three agreeing with the poller. With MaxDisagree=1,
	// 2 disagreeing of 5 is no landslide either way at that block... the
	// tally is 3 agree / 2 disagree: agree > MaxDisagree and disagree >
	// MaxDisagree -> inconclusive.
	h.voters[2].replica.Damage(1)
	h.voters[3].replica.Damage(1)
	h.p.Start()
	h.pump(2 * sim.Duration(cfg.PollInterval))
	if h.p.Stats().PollsInconclusive == 0 {
		t.Errorf("expected an inconclusive poll: %+v", h.p.Stats())
	}
}

func TestPollerInquorate(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	for _, v := range h.voters {
		v.silent = true // total non-response (e.g. pipe stoppage)
	}
	h.p.Start()
	h.pump(2 * sim.Duration(pollerConfig().PollInterval))
	st := h.p.Stats()
	if st.PollsInquorate == 0 {
		t.Errorf("expected inquorate polls: %+v", st)
	}
	if st.PollsSucceeded != 0 {
		t.Error("silent voters cannot produce success")
	}
	// Rate limitation: the next poll must still have been scheduled.
	if h.env.eng.Pending() == 0 {
		t.Error("no next poll scheduled after failure")
	}
}

func TestPollerRetriesRefusals(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.voters[2].refuse = true
	h.p.Start()
	h.pump(sim.Duration(pollerConfig().PollInterval))
	// The reluctant voter is re-invited later in the same phase.
	polls := 0
	for _, s := range h.env.sent {
		_ = s
	}
	if h.p.Stats().PollsSucceeded == 0 {
		t.Error("poll should succeed despite one refusal")
	}
	_ = polls
}

func TestPollerPenalizesCommittedNonVoter(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.voters[2].noVote = true
	h.p.Start()
	h.pump(2 * sim.Duration(pollerConfig().PollInterval))
	if h.p.Stats().VotesTimedOut == 0 {
		t.Error("committed non-voter did not time out")
	}
	g := h.p.Reputation(h.au).GradeOf(reputation.Time(h.env.Now()), 2)
	if g != reputation.Debt {
		t.Errorf("deserting voter grade %v, want debt", g)
	}
}

func TestPollerRejectsBadVoteProof(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.voters[2].badProof = true
	h.p.Start()
	h.pump(2 * sim.Duration(pollerConfig().PollInterval))
	if h.p.Stats().BadProofs == 0 {
		t.Error("bogus vote proof not detected")
	}
	g := h.p.Reputation(h.au).GradeOf(reputation.Time(h.env.Now()), 2)
	if g != reputation.Debt {
		t.Errorf("bogus voter grade %v, want debt", g)
	}
}

func TestPollerGradeBookkeeping(t *testing.T) {
	h := newPollerHarness(t, pollerConfig(), []ids.PeerID{2, 3, 4, 5, 6})
	h.p.Start()
	h.pump(sim.Duration(pollerConfig().PollInterval))
	// Voters that supplied valid votes get raised (even -> credit).
	raised := 0
	for v := range h.voters {
		if h.p.Reputation(h.au).GradeOf(reputation.Time(h.env.Now()), v) == reputation.Credit {
			raised++
		}
	}
	if raised < pollerConfig().Quorum {
		t.Errorf("only %d voters raised", raised)
	}
}

func TestPollerReferenceListChurn(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.p.Start()
	h.pump(sim.Duration(cfg.PollInterval) * 3 / 2)
	if h.p.Stats().PollsSucceeded == 0 {
		t.Fatal("no successful poll")
	}
	// Tallied voters are removed; friends replenish. With no friends set,
	// the list refills from tallied voters only if below quorum.
	refs := h.p.ReferenceList(h.au)
	if len(refs) == 0 {
		t.Error("reference list emptied out")
	}
}

func TestPollerFrivolousRepair(t *testing.T) {
	cfg := pollerConfig()
	cfg.FrivolousRepairProb = 1.0 // always request one
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.p.Start()
	h.pump(sim.Duration(cfg.PollInterval) * 3 / 2)
	if h.p.Stats().RepairsReceived == 0 {
		t.Error("frivolous repair was not requested")
	}
	if h.replica.Damaged() {
		t.Error("frivolous repair corrupted the replica")
	}
	if h.p.Stats().PollsSucceeded == 0 {
		t.Error("poll with frivolous repair should succeed")
	}
}

func TestPollerRepairFromSecondSourceAfterTimeout(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.replica.Damage(0)
	// Some voters refuse to serve repairs; the poller must try others.
	h.voters[2].norepair = true
	h.voters[3].norepair = true
	h.p.Start()
	h.pump(3 * sim.Duration(cfg.PollInterval))
	if h.replica.Damaged() {
		t.Error("repair did not route around unresponsive suppliers")
	}
}
