package protocol

import (
	"lockss/internal/ids"
	"lockss/internal/sched"
)

// startEvaluation reserves the evaluation compute slot and arms the run.
// Evaluation compares every received vote, block by block, against the
// poller's own replica, repairing blocks the landslide majority says are
// damaged.
func (p *Peer) startEvaluation(st *auState, poll *pollState) {
	if poll.concluded || poll.evalDone {
		return
	}
	votes := 0
	for _, v := range poll.order {
		if poll.sols[v].state == solGotVote {
			votes++
		}
	}
	if votes == 0 {
		p.concludePoll(st, poll, OutcomeInquorate)
		return
	}
	dur := sched.Duration(float64(st.pollEffort.EvalHash.Duration()) * float64(votes))
	grace := sched.Time(float64(p.cfg.PollInterval) * 0.15)
	_, start, ok := p.sch.ReserveSlot(p.env.Now(), dur, poll.deadline+grace, st.evalLabel)
	if !ok {
		// Hopelessly overloaded: the poll cannot be evaluated in time.
		p.concludePoll(st, poll, OutcomeInquorate)
		return
	}
	// The run timer must be tracked on the poll: if the conclude guard fires
	// before the reserved slot completes (possible on short first-poll
	// windows, where deadline+grace can exceed the guard), the recycled poll
	// record must not receive a stale evaluation.
	poll.evalRunTimer = p.env.After(sched.Duration(start-p.env.Now())+dur, func() {
		poll.evalRunTimer = 0
		p.runEvaluation(st, poll)
	})
}

// refVoteFor computes the poller's own vote data under a solicitation's
// nonce (what the voter's hashes should be if its replica agreed).
func (p *Peer) refVoteFor(st *auState, sol *solicitation) VoteData {
	return p.ownVoteData(st, sol.nonce[:])
}

// recomputeDisagreements refreshes every unexcluded vote's first point of
// disagreement against the poller's current content.
func (p *Peer) recomputeDisagreements(st *auState, poll *pollState) {
	for _, v := range poll.order {
		sol := poll.sols[v]
		if sol.state != solGotVote || sol.excluded {
			continue
		}
		sol.dis = sol.vote.FirstDisagreement(p.refVoteFor(st, sol))
	}
}

// runEvaluation performs the charged comparison work, derives the
// evaluation receipts, and enters the landslide/repair loop.
func (p *Peer) runEvaluation(st *auState, poll *pollState) {
	if poll.concluded || poll.evalDone {
		return
	}
	poll.evalDone = true
	if p.spanObs != nil {
		p.spanObs.TallyStarted(p.id, st.spec.ID, poll.id, p.env.Now())
	}
	for _, v := range poll.order {
		sol := poll.sols[v]
		if sol.state != solGotVote {
			continue
		}
		// Hashing our replica against this vote, and recovering the
		// receipt byproduct from the vote's effort proof.
		p.charge(KindEval, st.pollEffort.EvalHash)
		if p.cfg.EffortBalancing && sol.voteProof != nil {
			p.ctxScratch = AppendPollContext(p.ctxScratch[:0], p.id, v, st.spec.ID, poll.id, "vote")
			if r, ok := p.env.EvalReceipt(p.ctxScratch, sol.voteProof); ok {
				sol.receipt = r
			}
		}
	}
	p.recomputeDisagreements(st, poll)
	p.evaluationLoop(st, poll)
}

// evaluationLoop processes blocks in disagreement order until the tally is
// clean, a repair round trip is needed (it suspends and resumes on the
// Repair message), or the poll proves inconclusive.
func (p *Peer) evaluationLoop(st *auState, poll *pollState) {
	if poll.concluded {
		return
	}
	for {
		// Find the earliest disagreeing block among unexcluded inner votes.
		block := -1
		for _, v := range poll.order {
			sol := poll.sols[v]
			if sol.state != solGotVote || sol.excluded || sol.outer || sol.dis < 0 {
				continue
			}
			if block < 0 || sol.dis < block {
				block = sol.dis
			}
		}
		if block < 0 {
			p.finishEvaluation(st, poll)
			return
		}
		var agree, disagree int
		for _, v := range poll.order {
			sol := poll.sols[v]
			if sol.state != solGotVote || sol.excluded || sol.outer {
				continue
			}
			if sol.dis == block {
				disagree++
			} else {
				agree++
			}
		}
		switch {
		case disagree <= p.cfg.MaxDisagree:
			// Landslide agreement: the disagreeing voters' replicas are
			// damaged at this block; their votes leave the running tally.
			for _, v := range poll.order {
				sol := poll.sols[v]
				if sol.state == solGotVote && !sol.excluded && !sol.outer && sol.dis == block {
					sol.excluded = true
				}
			}
			// Outer votes disagreeing here are simply not inserted later;
			// exclude them too so they stop tracking.
			for _, v := range poll.order {
				sol := poll.sols[v]
				if sol.state == solGotVote && !sol.excluded && sol.outer && sol.dis == block {
					sol.excluded = true
				}
			}
		case agree <= p.cfg.MaxDisagree:
			// Landslide disagreement: our replica is damaged at this block.
			p.requestRepair(st, poll, block)
			return // resumes in pollerHandleRepair
		default:
			// No landslide either way: inconclusive; raise the alarm.
			p.concludePoll(st, poll, OutcomeInconclusive)
			return
		}
	}
}

// requestRepair asks a random untried voter that disagrees at block (and
// thus holds content the landslide endorses) for the block.
func (p *Peer) requestRepair(st *auState, poll *pollState, block int) {
	if block != poll.repairBlock {
		poll.repairBlock = block
		poll.repairAttempts = 0
		for _, v := range poll.order {
			poll.sols[v].tried = false
		}
	}
	candidates := p.candScratch[:0]
	for _, v := range poll.order {
		sol := poll.sols[v]
		if sol.state == solGotVote && !sol.excluded && !sol.outer && sol.dis == block && !sol.tried {
			candidates = append(candidates, v)
		}
	}
	p.candScratch = candidates
	if len(candidates) == 0 || poll.repairAttempts >= p.cfg.MaxRepairAttempts {
		p.concludePoll(st, poll, OutcomeRepairFailed)
		return
	}
	target := candidates[p.env.Rand().Intn(len(candidates))]
	poll.sols[target].tried = true
	poll.repairAttempts++
	if p.spanObs != nil {
		p.spanObs.RepairRequested(p.id, target, st.spec.ID, poll.id, block, p.env.Now())
	}
	p.send(target, &Msg{
		Type:   MsgRepairRequest,
		AU:     st.spec.ID,
		PollID: poll.id,
		Poller: p.id,
		Voter:  target,
		Block:  int32(block),
	})
	poll.repairTimer = p.env.After(p.cfg.RepairTimeout, func() {
		poll.repairTimer = 0
		// Supplier unresponsive: voters owe repairs once committed.
		st.rep.Penalize(repTime(p.env.Now()), target)
		p.requestRepair(st, poll, block)
	})
}

// pollerHandleRepair applies a received repair block and resumes whichever
// flow was waiting on it (damage repair loop or frivolous repair).
func (p *Peer) pollerHandleRepair(st *auState, from ids.PeerID, m *Msg) {
	poll := st.poll
	if poll == nil || poll.concluded || m.PollID != poll.id {
		return
	}
	sol, ok := poll.sols[from]
	if !ok || sol.state != solGotVote {
		return
	}
	if poll.repairTimer == 0 {
		return // no repair outstanding
	}
	p.stopTimer(&poll.repairTimer)

	// Re-hash the repaired block and re-evaluate.
	p.charge(KindRepair, p.costs.HashCost(st.spec.BlockSize))
	p.stats.RepairsReceived++
	if poll.frivolousDone {
		// Frivolous repair response: content is expected to be identical;
		// applying it is a no-op. Proceed to receipts.
		_ = st.replica.ApplyRepair(int(m.Block), m.RepairData)
		p.sendReceiptsAndConclude(st, poll)
		return
	}
	if err := st.replica.ApplyRepair(int(m.Block), m.RepairData); err == nil {
		p.obs.RepairApplied(p.id, st.spec.ID, poll.id, int(m.Block), p.env.Now())
	}
	p.recomputeDisagreements(st, poll)
	p.evaluationLoop(st, poll)
}

// finishEvaluation runs after the landslide loop drains: optionally issue a
// frivolous repair (free-riding deterrent), then send receipts and conclude.
func (p *Peer) finishEvaluation(st *auState, poll *pollState) {
	if !poll.frivolousDone && p.cfg.FrivolousRepairProb > 0 &&
		p.env.Rand().Bool(p.cfg.FrivolousRepairProb) {
		poll.frivolousDone = true
		// Pick a fully agreeing inner voter and a random block: its content
		// there provably matches ours, so applying the repair is a no-op.
		candidates := p.candScratch[:0]
		for _, v := range poll.order {
			sol := poll.sols[v]
			if sol.state == solGotVote && !sol.excluded && !sol.outer && sol.dis < 0 {
				candidates = append(candidates, v)
			}
		}
		p.candScratch = candidates
		if len(candidates) > 0 {
			target := candidates[p.env.Rand().Intn(len(candidates))]
			block := p.env.Rand().Intn(st.spec.Blocks())
			p.send(target, &Msg{
				Type:   MsgRepairRequest,
				AU:     st.spec.ID,
				PollID: poll.id,
				Poller: p.id,
				Voter:  target,
				Block:  int32(block),
			})
			poll.repairTimer = p.env.After(p.cfg.RepairTimeout, func() {
				poll.repairTimer = 0
				st.rep.Penalize(repTime(p.env.Now()), target)
				p.sendReceiptsAndConclude(st, poll)
			})
			return // resumes in pollerHandleRepair
		}
	}
	poll.frivolousDone = true
	p.sendReceiptsAndConclude(st, poll)
}

// sendReceiptsAndConclude distributes evaluation receipts to every voter
// that supplied a vote, then settles the poll outcome.
func (p *Peer) sendReceiptsAndConclude(st *auState, poll *pollState) {
	if poll.concluded {
		return
	}
	talliedInner := 0
	for _, v := range poll.order {
		sol := poll.sols[v]
		if sol.state != solGotVote {
			continue
		}
		if !sol.outer {
			talliedInner++
		}
		p.send(v, &Msg{
			Type:    MsgEvaluationReceipt,
			AU:      st.spec.ID,
			PollID:  poll.id,
			Poller:  p.id,
			Voter:   v,
			Receipt: sol.receipt,
		})
	}
	if talliedInner < p.cfg.Quorum {
		p.concludePoll(st, poll, OutcomeInquorate)
		return
	}
	p.concludePoll(st, poll, OutcomeSuccess)
}
