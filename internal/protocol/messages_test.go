package protocol

import (
	"bytes"
	"testing"

	"lockss/internal/effort"
)

func TestMsgTypeStrings(t *testing.T) {
	for _, typ := range []MsgType{MsgPoll, MsgPollAck, MsgPollProof, MsgVote,
		MsgRepairRequest, MsgRepair, MsgEvaluationReceipt} {
		if s := typ.String(); s == "" || s[0] == 'M' && len(s) > 20 {
			t.Errorf("bad string for %d: %q", typ, s)
		}
	}
	if MsgType(99).String() != "MsgType(99)" {
		t.Errorf("unknown type string: %q", MsgType(99).String())
	}
}

func TestRefuseReasonStrings(t *testing.T) {
	for r := RefuseNone; r <= RefuseProtocol; r++ {
		if r.String() == "invalid" {
			t.Errorf("reason %d has no string", r)
		}
	}
}

func TestContextBindsAllIdentifiers(t *testing.T) {
	base := PollContext(1, 2, 3, 4, "intro")
	variants := [][]byte{
		PollContext(9, 2, 3, 4, "intro"),
		PollContext(1, 9, 3, 4, "intro"),
		PollContext(1, 2, 9, 4, "intro"),
		PollContext(1, 2, 3, 9, "intro"),
		PollContext(1, 2, 3, 4, "vote"),
	}
	for i, v := range variants {
		if bytes.Equal(base, v) {
			t.Errorf("variant %d does not change the context", i)
		}
	}
	m := &Msg{Poller: 1, Voter: 2, AU: 3, PollID: 4}
	if !bytes.Equal(m.Context("intro"), base) {
		t.Error("Msg.Context disagrees with PollContext")
	}
}

func TestWireSizeMonotonic(t *testing.T) {
	// A vote over more blocks must model as a larger message.
	small := &Msg{Type: MsgVote, Vote: SimVote{NumBlocks: 16}}
	large := &Msg{Type: MsgVote, Vote: SimVote{NumBlocks: 512}}
	if small.WireSize() >= large.WireSize() {
		t.Error("vote wire size not monotonic in blocks")
	}
	// A costlier proof models as a larger message.
	cheap := &Msg{Type: MsgPoll, Proof: effort.SimProof{Effort: 1, Genuine: true}}
	dear := &Msg{Type: MsgPoll, Proof: effort.SimProof{Effort: 10, Genuine: true}}
	if cheap.WireSize() >= dear.WireSize() {
		t.Error("proof wire size not monotonic in cost")
	}
}

func TestWireSizePositive(t *testing.T) {
	for _, typ := range []MsgType{MsgPoll, MsgPollAck, MsgPollProof, MsgVote,
		MsgRepairRequest, MsgRepair, MsgEvaluationReceipt} {
		m := &Msg{Type: typ}
		if m.WireSize() < headerBytes {
			t.Errorf("%v wire size %d below header", typ, m.WireSize())
		}
	}
}
