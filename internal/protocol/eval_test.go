package protocol

import (
	"testing"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/sim"
)

// TestEvalCorruptRepairSupplierRetried: when the landslide says the poller
// is damaged but the first repair supplier is itself damaged at that block
// (so its repair leaves the block corrupt), the poller must re-evaluate and
// fetch from another supplier.
func TestEvalCorruptRepairSupplierRetried(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	// Poller damaged at block 2; one voter is ALSO damaged at block 2 with
	// different corruption. The landslide (4 voters disagreeing with the
	// poller) includes that damaged voter; if it supplies the repair, the
	// block stays damaged and the loop must try another source.
	h.replica.Damage(2)
	h.voters[2].replica.Damage(2)
	h.p.Start()
	h.pump(3 * sim.Duration(cfg.PollInterval))
	if h.replica.Damaged() {
		t.Errorf("poller still damaged after retries: %v", h.replica.Snapshot())
	}
}

// TestEvalMultipleDamagedBlocks: several damaged blocks on the poller are
// all repaired within one poll.
func TestEvalMultipleDamagedBlocks(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.replica.Damage(0)
	h.replica.Damage(2)
	h.replica.Damage(3)
	h.p.Start()
	h.pump(2 * sim.Duration(cfg.PollInterval))
	if h.replica.Damaged() {
		t.Errorf("multi-block damage not fully repaired: %v", h.replica.Snapshot())
	}
	if h.p.Stats().RepairsReceived < 3 {
		t.Errorf("only %d repairs received", h.p.Stats().RepairsReceived)
	}
}

// TestEvalVoterAndPollerDamagedDifferentBlocks: a damaged voter must not
// stop the poller from repairing its own damage elsewhere.
func TestEvalVoterAndPollerDamagedDifferentBlocks(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.replica.Damage(1)
	h.voters[4].replica.Damage(3)
	h.p.Start()
	h.pump(2 * sim.Duration(cfg.PollInterval))
	if h.replica.Damaged() {
		t.Error("poller damage not repaired")
	}
	if h.p.Stats().PollsSucceeded == 0 {
		t.Error("poll did not succeed")
	}
}

// TestEvalReceiptsSentToAllVoters: every voter that supplied a vote gets an
// evaluation receipt, including damaged (excluded) ones.
func TestEvalReceiptsSentToAllVoters(t *testing.T) {
	cfg := pollerConfig()
	h := newPollerHarness(t, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	h.voters[3].replica.Damage(1) // will be excluded from the tally
	h.p.Start()
	h.pump(sim.Duration(cfg.PollInterval) * 3 / 2)
	for v := range h.voters {
		if h.receiptsGot[v] == 0 {
			t.Errorf("voter %v got no receipt", v)
		}
	}
}

// TestEvalLengthMismatchedVoteRejected: a vote body with the wrong block
// count is discarded and penalized rather than evaluated.
func TestEvalLengthMismatchedVoteRejected(t *testing.T) {
	env := newFakeEnv(21)
	cfg := testConfig()
	p, _ := newTestPeer(t, env, 1, cfg, []ids.PeerID{2, 3, 4, 5, 6})
	p.Start()
	// Drive until a PollProof goes out to some voter, then reply with a
	// malformed vote.
	deadline := env.eng.Now().Add(2 * sim.Duration(cfg.PollInterval))
	for {
		done := false
		for _, s := range env.take() {
			switch s.m.Type {
			case MsgPoll:
				env.eng.After(1, func() {
					p.Receive(s.to, &Msg{Type: MsgPollAck, AU: s.m.AU, PollID: s.m.PollID,
						Poller: p.ID(), Voter: s.to, Accept: true})
				})
			case MsgPollProof:
				bad := &Msg{Type: MsgVote, AU: s.m.AU, PollID: s.m.PollID,
					Poller: p.ID(), Voter: s.to,
					Vote: SimVote{NumBlocks: 99, Dam: []content.DamageEntry{}}}
				env.eng.After(1, func() { p.Receive(s.to, bad) })
				done = true
			}
		}
		if done {
			break
		}
		next, ok := env.eng.Next()
		if !ok || next > deadline {
			t.Fatal("no PollProof ever sent")
		}
		env.eng.Step()
	}
	// Let the bad vote arrive.
	for i := 0; i < 10; i++ {
		env.eng.Step()
	}
	if p.Stats().VotesReceived != 0 {
		t.Error("malformed vote accepted into the tally")
	}
}
