package protocol

import (
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/sched"
)

// solicitState tracks one vote solicitation's progress.
type solicitState uint8

const (
	solUnsent solicitState = iota
	solAwaitAck
	solAwaitProofSlot // accepted; remainder effort being generated
	solAwaitVote
	solGotVote
	solRetryWait // refused or timed out; will retry
	solFailed
)

// solicitation is the poller's record of one invitee.
type solicitation struct {
	peer     ids.PeerID
	outer    bool
	state    solicitState
	attempts int
	nonce    Nonce
	voteBy   sched.Time
	sentAt   sched.Time // when the latest invitation was sent
	timer    TimerID    // pending timer, if any

	vote      VoteData
	voteProof effort.Proof
	receipt   effort.Receipt // evaluation byproduct, derived during eval

	// Evaluation bookkeeping.
	dis      int // first disagreement vs poller's current content
	excluded bool
	tried    bool // tried as a repair source for the current block
}

// pollState is the poller side of one poll.
type pollState struct {
	id        uint64
	started   sched.Time
	deadline  sched.Time
	sols      map[ids.PeerID]*solicitation
	order     []ids.PeerID
	noms      map[ids.PeerID]bool // outer-circle candidate pool
	outerSent bool
	evalDone  bool
	concluded bool

	// Repair state during evaluation.
	repairBlock    int
	repairAttempts int
	repairTimer    TimerID
	frivolousDone  bool

	// Poll-lifecycle timers, cancelled at conclusion. evalTimer launches
	// startEvaluation; evalRunTimer fires when the reserved evaluation slot
	// completes.
	outerTimer   TimerID
	evalTimer    TimerID
	evalRunTimer TimerID
	guardTimer   TimerID
}

// newPollState draws a zeroed poll record from the freelist, keeping its
// cleared maps and order slice.
func (p *Peer) newPollState() *pollState {
	if k := len(p.freePolls); k > 0 {
		poll := p.freePolls[k-1]
		p.freePolls[k-1] = nil
		p.freePolls = p.freePolls[:k-1]
		return poll
	}
	return &pollState{
		sols: make(map[ids.PeerID]*solicitation),
		noms: make(map[ids.PeerID]bool),
	}
}

// releasePoll recycles a concluded poll and its solicitations. All the
// poll's timers were cancelled at conclusion, so no live closure can still
// reach the recycled records.
func (p *Peer) releasePoll(poll *pollState) {
	for _, v := range poll.order {
		sol := poll.sols[v]
		*sol = solicitation{}
		p.freeSols = append(p.freeSols, sol)
	}
	clear(poll.sols)
	clear(poll.noms)
	sols, noms, order := poll.sols, poll.noms, poll.order[:0]
	*poll = pollState{sols: sols, noms: noms, order: order}
	p.freePolls = append(p.freePolls, poll)
}

// newSolicitation draws a solicitation record from the freelist.
func (p *Peer) newSolicitation(peer ids.PeerID, outer bool) *solicitation {
	var sol *solicitation
	if k := len(p.freeSols); k > 0 {
		sol = p.freeSols[k-1]
		p.freeSols[k-1] = nil
		p.freeSols = p.freeSols[:k-1]
	} else {
		sol = &solicitation{}
	}
	sol.peer, sol.outer, sol.dis = peer, outer, -1
	return sol
}

// startPoll begins a new poll on the AU, to conclude at deadline. A
// draining peer calls no new polls: the AU stays idle (st.poll == nil) and
// ActivePolls eventually reaches zero.
func (p *Peer) startPoll(st *auState, deadline sched.Time) {
	if p.draining {
		return
	}
	p.gcSchedule()
	p.stats.PollsStarted++
	p.pollSeq++
	poll := p.newPollState()
	poll.id = uint64(p.id)<<32 | uint64(p.pollSeq)
	poll.started = p.env.Now()
	poll.deadline = deadline
	st.poll = poll
	window := sched.Duration(deadline - poll.started)
	if window <= 0 {
		window = p.cfg.PollInterval
		poll.deadline = poll.started + sched.Time(window)
	}
	if p.spanObs != nil {
		p.spanObs.PollStarted(p.id, st.spec.ID, poll.id, poll.started)
	}

	// Invite the inner circle at desynchronized instants across the
	// solicitation phase. With desynchronization disabled (ablation), all
	// invitations fire at once and votes are due within a single narrow
	// window, recreating the synchronous-rendezvous weakness of §5.2.
	// Invitees are consumed within this call, so they draw into scratch.
	invitees := p.sampleRefListInto(p.inviteeScratch, st, p.cfg.InnerCircle, ids.NoPeer)
	p.inviteeScratch = invitees
	solicitSpan := float64(window) * p.cfg.SolicitFrac
	for _, v := range invitees {
		sol := p.newSolicitation(v, false)
		poll.sols[v] = sol
		poll.order = append(poll.order, v)
		var at sched.Duration
		if p.cfg.Desynchronize {
			at = sched.Duration(p.env.Rand().Float64() * solicitSpan)
		}
		p.scheduleSolicitation(st, poll, sol, at)
	}

	// Outer-circle launch.
	outerDelay := sched.Duration(float64(window) * p.cfg.OuterStartFrac)
	poll.outerTimer = p.env.After(outerDelay, func() { p.launchOuterCircle(st, poll) })

	// Evaluation launch.
	evalDelay := sched.Duration(float64(window) * p.cfg.EvalFrac)
	poll.evalTimer = p.env.After(evalDelay, func() { p.startEvaluation(st, poll) })

	// Conclude guard: whatever happens, the poll ends and the next begins.
	grace := sched.Duration(float64(window) * 0.25)
	poll.guardTimer = p.env.After(sched.Duration(poll.deadline-poll.started)+grace, func() {
		p.concludePoll(st, poll, OutcomeInquorate)
	})
}

// stopTimer cancels a pending env timer and zeroes it. Safe on the zero ID
// and on timers that already fired.
func (p *Peer) stopTimer(t *TimerID) {
	if *t != 0 {
		p.env.Cancel(*t)
		*t = 0
	}
}

// scheduleSolicitation arms a timer to send the Poll message after delay.
func (p *Peer) scheduleSolicitation(st *auState, poll *pollState, sol *solicitation, delay sched.Duration) {
	sol.state = solUnsent
	sol.timer = p.env.After(delay, func() { p.sendPollInvitation(st, poll, sol) })
}

// sendPollInvitation generates the introductory effort and sends Poll.
func (p *Peer) sendPollInvitation(st *auState, poll *pollState, sol *solicitation) {
	if poll.concluded {
		return
	}
	sol.attempts++
	now := p.env.Now()
	window := p.cfg.VoteWindow
	if !p.cfg.Desynchronize {
		// Synchronous-rendezvous variant (§5.2 ablation): all votes must
		// materialize within a narrow common window, so the poll needs a
		// quorum of voters simultaneously free.
		window /= 8
	}
	voteBy := now + sched.Time(window)
	if voteBy > poll.deadline {
		voteBy = poll.deadline
	}
	sol.voteBy = voteBy

	m := &Msg{
		Type:         MsgPoll,
		AU:           st.spec.ID,
		PollID:       poll.id,
		Poller:       p.id,
		Voter:        sol.peer,
		VoteBy:       voteBy,
		PollDeadline: poll.deadline,
	}
	p.charge(KindSession, p.costs.SessionSetup)
	if p.cfg.EffortBalancing {
		intro := st.pollEffort.Intro
		proof, _ := p.env.MakeProof(p.msgContext(m, "intro"), intro)
		m.Proof = proof
		p.charge(KindIntroGen, intro)
	}
	sol.state = solAwaitAck
	sol.sentAt = now
	if p.spanObs != nil {
		p.spanObs.VoteSolicited(p.id, sol.peer, st.spec.ID, poll.id, now)
	}
	p.send(sol.peer, m)

	// Ack timeout: silent drops (admission control, pipe stoppage) look
	// identical to losses; retry later in the solicitation phase.
	sol.timer = p.env.After(p.cfg.AckTimeout, func() {
		p.stats.AcksTimedOut++
		p.retrySolicitation(st, poll, sol)
	})
}

// retrySolicitation reschedules a reluctant or unresponsive invitee at a
// random later instant within the retry window, or gives up.
func (p *Peer) retrySolicitation(st *auState, poll *pollState, sol *solicitation) {
	if poll.concluded {
		return
	}
	window := sched.Duration(poll.deadline - poll.started)
	retryBy := poll.started + sched.Time(float64(window)*p.cfg.RetryFrac)
	now := p.env.Now()
	if sol.attempts >= p.cfg.MaxSolicitAttempts || now >= retryBy {
		sol.state = solFailed
		return
	}
	sol.state = solRetryWait
	span := float64(retryBy - now)
	delay := sched.Duration(p.env.Rand().Float64() * span)
	sol.timer = p.env.After(delay, func() { p.sendPollInvitation(st, poll, sol) })
}

// pollerHandleAck processes a PollAck.
func (p *Peer) pollerHandleAck(st *auState, from ids.PeerID, m *Msg) {
	poll := st.poll
	if poll == nil || poll.concluded || m.PollID != poll.id {
		return
	}
	sol, ok := poll.sols[from]
	if !ok || sol.state != solAwaitAck {
		return
	}
	p.stopTimer(&sol.timer)
	if !m.Accept {
		p.retrySolicitation(st, poll, sol)
		return
	}

	// Acceptance: generate the remaining effort on our own schedule, then
	// send PollProof with the per-voter nonce.
	sol.state = solAwaitProofSlot
	var nonce Nonce
	r := p.env.Rand()
	for i := 0; i < len(nonce); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(nonce); j++ {
			nonce[i+j] = byte(v >> (8 * j))
		}
	}
	sol.nonce = nonce

	sendProof := func() {
		if poll.concluded || sol.state != solAwaitProofSlot {
			return
		}
		pm := &Msg{
			Type:   MsgPollProof,
			AU:     st.spec.ID,
			PollID: poll.id,
			Poller: p.id,
			Voter:  sol.peer,
			Nonce:  sol.nonce,
		}
		if p.cfg.EffortBalancing {
			rem := st.pollEffort.Remainder
			proof, _ := p.env.MakeProof(p.msgContext(pm, "remainder"), rem)
			pm.Proof = proof
			p.charge(KindRemainderGen, rem)
		}
		sol.state = solAwaitVote
		p.send(sol.peer, pm)
		// Vote timeout: the voter committed; failure to deliver is
		// penalized.
		wait := sched.Duration(sol.voteBy-p.env.Now()) + p.cfg.VoteSlack
		sol.timer = p.env.After(wait, func() {
			if sol.state == solAwaitVote {
				sol.state = solFailed
				p.stats.VotesTimedOut++
				st.rep.Penalize(repTime(p.env.Now()), sol.peer)
			}
		})
	}

	if !p.cfg.EffortBalancing {
		sendProof()
		return
	}
	// Reserve a slot for remainder generation; it is a real compute task.
	genDur := sched.Duration(st.pollEffort.Remainder.Duration())
	id, start, ok := p.sch.ReserveSlot(p.env.Now(), genDur, poll.deadline, "remainder-gen")
	if !ok {
		// Too busy to honor the acceptance; abandon this solicitation.
		sol.state = solFailed
		return
	}
	_ = id
	sol.timer = p.env.After(sched.Duration(start-p.env.Now())+genDur, sendProof)
}

// pollerHandleVote processes an incoming Vote.
func (p *Peer) pollerHandleVote(st *auState, from ids.PeerID, m *Msg) {
	poll := st.poll
	if poll == nil || poll.concluded || m.PollID != poll.id {
		return // unsolicited votes are ignored (vote-flood defense)
	}
	sol, ok := poll.sols[from]
	if !ok || sol.state != solAwaitVote {
		return
	}
	p.stopTimer(&sol.timer)
	if m.Vote == nil || m.Vote.Blocks() != st.spec.Blocks() {
		sol.state = solFailed
		st.rep.Penalize(repTime(p.env.Now()), from)
		return
	}
	if p.cfg.EffortBalancing {
		// Verify the vote's effort proof (covers one block hash).
		p.charge(KindVerify, p.costs.VerifyCost(st.pollEffort.VoteProof))
		if !p.env.VerifyProof(p.msgContext(m, "vote"), m.Proof, st.pollEffort.VoteProof) {
			p.stats.BadProofs++
			sol.state = solFailed
			st.rep.Penalize(repTime(p.env.Now()), from)
			return
		}
	}
	sol.state = solGotVote
	sol.vote = m.Vote
	sol.voteProof = m.Proof
	p.stats.VotesReceived++
	if p.spanObs != nil {
		p.spanObs.VoteReceived(p.id, from, st.spec.ID, poll.id, sol.sentAt, p.env.Now())
	}
	// The voter supplied a valid vote: raise its grade.
	st.rep.Raise(repTime(p.env.Now()), from)

	// Discovery: randomly partition the vote's peer identities into
	// outer-circle nominations and introductions (§5.1).
	for _, nom := range m.Nominations {
		if nom == p.id {
			continue
		}
		if p.cfg.Introductions && p.env.Rand().Bool(0.5) {
			st.rep.AddIntroduction(repTime(p.env.Now()), from, nom)
		} else if !st.refList[nom] {
			poll.noms[nom] = true
		}
	}
}

// launchOuterCircle samples discovered peers and solicits their votes.
func (p *Peer) launchOuterCircle(st *auState, poll *pollState) {
	if poll.concluded || poll.outerSent {
		return
	}
	poll.outerSent = true
	pool := p.poolScratch[:0]
	for id := range poll.noms {
		if id == p.id || st.refList[id] {
			continue
		}
		if _, already := poll.sols[id]; already {
			continue
		}
		pool = append(pool, id)
	}
	p.poolScratch = pool
	sortPeers(pool)
	n := p.cfg.OuterCircle
	var chosen []ids.PeerID
	if n >= len(pool) {
		chosen = pool
	} else {
		idx := p.env.Rand().SampleInto(p.idxScratch, len(pool), n)
		p.idxScratch = idx
		chosen = p.candScratch[:0]
		for _, j := range idx {
			chosen = append(chosen, pool[j])
		}
		p.candScratch = chosen
	}
	window := sched.Duration(poll.deadline - poll.started)
	start := poll.started + sched.Time(float64(window)*p.cfg.OuterStartFrac)
	end := poll.started + sched.Time(float64(window)*p.cfg.OuterEndFrac)
	span := float64(end - start)
	now := p.env.Now()
	for _, v := range chosen {
		sol := p.newSolicitation(v, true)
		poll.sols[v] = sol
		poll.order = append(poll.order, v)
		var at sched.Duration
		if p.cfg.Desynchronize {
			at = sched.Duration(p.env.Rand().Float64() * span)
		}
		fire := start + sched.Time(at)
		if fire < now {
			fire = now
		}
		p.scheduleSolicitation(st, poll, sol, sched.Duration(fire-now))
	}
}

// concludePoll finalizes a poll, updates the reference list on success, and
// immediately schedules the next poll at the fixed autonomous rate.
func (p *Peer) concludePoll(st *auState, poll *pollState, outcome Outcome) {
	if poll.concluded {
		return
	}
	poll.concluded = true
	p.stopTimer(&poll.outerTimer)
	p.stopTimer(&poll.evalTimer)
	p.stopTimer(&poll.evalRunTimer)
	p.stopTimer(&poll.guardTimer)
	for _, v := range poll.order {
		p.stopTimer(&poll.sols[v].timer)
	}
	p.stopTimer(&poll.repairTimer)
	now := p.env.Now()
	switch outcome {
	case OutcomeSuccess:
		p.stats.PollsSucceeded++
		st.lastSuccess = now
		p.updateReferenceList(st, poll)
	case OutcomeInquorate:
		p.stats.PollsInquorate++
		// No outcome was determined, so nobody is removed — but discovery
		// still made progress: outer-circle voters whose votes agreed are
		// usable in future polls. Without this, a cold-started peer whose
		// early polls are inquorate could never grow its reference list.
		if poll.evalDone {
			for _, v := range poll.order {
				sol := poll.sols[v]
				if sol.outer && sol.state == solGotVote && !sol.excluded && sol.dis < 0 {
					st.refList[v] = true
				}
			}
		}
	case OutcomeInconclusive:
		p.stats.PollsInconclusive++
		p.stats.Alarms++
		p.obs.Alarm(p.id, st.spec.ID, poll.id, now)
	case OutcomeRepairFailed:
		p.stats.PollsRepairFailed++
	}
	p.obs.PollConcluded(p.id, st.spec.ID, poll.id, outcome, poll.started, now)

	// Fixed-rate restart: the next poll concludes one interval after this
	// poll's scheduled deadline, regardless of adversity (rate limitation:
	// peers do not back off, nor hurry). The one sanctioned exception is an
	// expedited audit (RaiseAuditPriority): first-hand local evidence of
	// on-disk damage pulls the next conclusion in to a quarter interval.
	nextDeadline := poll.deadline + sched.Time(p.cfg.PollInterval)
	if nextDeadline <= now {
		nextDeadline = now + sched.Time(p.cfg.PollInterval)
	}
	// The expedite cut runs after the late-poll clamp: a poll that
	// concluded behind schedule (a stall is exactly when damage tends to be
	// outstanding) must not swallow the raised priority.
	if st.expedite {
		st.expedite = false
		if exp := now + sched.Time(p.cfg.PollInterval/4); exp < nextDeadline {
			nextDeadline = exp
		}
	}
	st.poll = nil
	p.releasePoll(poll)
	p.startPoll(st, nextDeadline)
}

// updateReferenceList applies the paper's conclusion-time churn: remove the
// inner-circle voters whose votes determined the outcome, insert agreeing
// outer-circle voters, and replenish from the friends list.
func (p *Peer) updateReferenceList(st *auState, poll *pollState) {
	now := repTime(p.env.Now())
	for _, v := range poll.order {
		sol := poll.sols[v]
		if sol.state != solGotVote {
			continue
		}
		if sol.outer {
			if !sol.excluded && sol.dis < 0 {
				st.refList[v] = true
			}
			continue
		}
		// Tallied inner voter: remove, and forget its introductions.
		delete(st.refList, v)
		st.rep.ForgetIntroducer(v)
	}
	_ = now
	// Replenish toward the target from friends, then re-admit tallied
	// voters if the population is too small to refill otherwise.
	if len(st.refList) < p.cfg.RefListTarget {
		// SampleInto with k == n is a full permutation with Perm's draws.
		perm := p.env.Rand().SampleInto(p.idxScratch, len(p.friends), len(p.friends))
		p.idxScratch = perm
		for _, i := range perm {
			if len(st.refList) >= p.cfg.RefListTarget {
				break
			}
			f := p.friends[i]
			if f != p.id {
				st.refList[f] = true
			}
		}
	}
	if len(st.refList) < p.cfg.Quorum {
		for _, v := range poll.order {
			if len(st.refList) >= p.cfg.RefListTarget {
				break
			}
			sol := poll.sols[v]
			if sol.state == solGotVote && !sol.excluded && v != p.id {
				st.refList[v] = true
			}
		}
	}
	// Trim above the maximum, dropping random members.
	if len(st.refList) > p.cfg.RefListMax {
		members := p.candScratch[:0]
		for id := range st.refList {
			members = append(members, id)
		}
		p.candScratch = members
		sortPeers(members)
		for len(st.refList) > p.cfg.RefListMax {
			i := p.env.Rand().Intn(len(members))
			victim := members[i]
			members = append(members[:i], members[i+1:]...)
			delete(st.refList, victim)
			st.rep.ForgetIntroducer(victim)
		}
	}
}
