package protocol

import (
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/sched"
	"lockss/internal/sim"
)

// fakeEnv drives a Peer deterministically in unit tests: timers run on a
// sim.Engine, sends are recorded, proofs are symbolic.
type fakeEnv struct {
	eng  *sim.Engine
	rnd  *prng.Source
	sent []sentMsg
}

type sentMsg struct {
	to ids.PeerID
	m  *Msg
}

func newFakeEnv(seed uint64) *fakeEnv {
	return &fakeEnv{eng: sim.NewEngine(), rnd: prng.New(seed)}
}

func (e *fakeEnv) Now() sched.Time { return sched.Time(e.eng.Now()) }

func (e *fakeEnv) After(d sched.Duration, fn func()) TimerID {
	return TimerID(e.eng.After(d, fn))
}

func (e *fakeEnv) Cancel(t TimerID) bool {
	return e.eng.Cancel(sim.EventID(t))
}

func (e *fakeEnv) Rand() *prng.Source { return e.rnd }

func (e *fakeEnv) Send(to ids.PeerID, m *Msg) {
	e.sent = append(e.sent, sentMsg{to: to, m: m})
}

func (e *fakeEnv) MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt) {
	return effort.SimProof{Effort: cost, Genuine: true}, effort.SimReceiptFor(ctx, cost)
}

func (e *fakeEnv) VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool {
	return p != nil && p.Valid(ctx) && p.Cost() >= minCost-1e-9
}

func (e *fakeEnv) EvalReceipt(ctx []byte, p effort.Proof) (effort.Receipt, bool) {
	if p == nil || !p.Valid(ctx) {
		return effort.Receipt{}, false
	}
	return effort.SimReceiptFor(ctx, p.Cost()), true
}

// take drains and returns recorded sends.
func (e *fakeEnv) take() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

// lastTo returns the last message sent to a peer, or nil.
func (e *fakeEnv) lastTo(to ids.PeerID, typ MsgType) *Msg {
	for i := len(e.sent) - 1; i >= 0; i-- {
		if e.sent[i].to == to && e.sent[i].m.Type == typ {
			return e.sent[i].m
		}
	}
	return nil
}

// testConfig compresses timescales for unit tests.
func testConfig() Config {
	c := DefaultConfig()
	c.Quorum = 3
	c.InnerCircle = 5
	c.MaxDisagree = 1
	c.OuterCircle = 2
	c.Nominations = 3
	c.PollInterval = 100 * time.Hour
	c.VoteWindow = 10 * time.Hour
	c.AckTimeout = time.Hour
	c.ProofTimeout = time.Hour
	c.VoteSlack = time.Hour
	c.ReceiptSlack = 2 * time.Hour
	c.RepairTimeout = time.Hour
	c.Refractory = 2 * time.Hour
	c.GradeDecay = 1000 * time.Hour
	c.FrivolousRepairProb = 0
	c.RefListTarget = 6
	c.RefListMax = 10
	c.ConsiderBurst = 100 // effectively unlimited unless a test tightens it
	c.BlockSize = 1024
	return c
}

// testSpecN builds a small AU spec.
func testSpecN(blocks int) content.AUSpec {
	return content.AUSpec{ID: 1, Name: "au", Size: int64(blocks) * 1024, BlockSize: 1024}
}

// newTestPeer builds a peer with one symbolic AU and the given reference
// list, without starting polls.
func newTestPeer(t *testing.T, env *fakeEnv, id ids.PeerID, cfg Config, refs []ids.PeerID) (*Peer, *content.SimReplica) {
	t.Helper()
	costs := effort.DefaultCostModel()
	p, err := New(id, cfg, costs, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	replica := content.NewSimReplica(testSpecN(4), uint64(id))
	if err := p.AddAU(replica, refs); err != nil {
		t.Fatal(err)
	}
	return p, replica
}
