package protocol

import (
	"testing"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultConfigPaperOperatingPoint(t *testing.T) {
	c := DefaultConfig()
	if c.Quorum != 10 {
		t.Errorf("quorum %d, want 10", c.Quorum)
	}
	if c.InnerCircle != 2*c.Quorum {
		t.Errorf("inner circle %d, want twice the quorum", c.InnerCircle)
	}
	if c.MaxDisagree != 3 {
		t.Errorf("landslide margin %d, want 3", c.MaxDisagree)
	}
	if c.PollInterval != 90*24*time.Hour {
		t.Errorf("poll interval %v, want 3 months", c.PollInterval)
	}
	if c.DropUnknown != 0.90 || c.DropDebt != 0.80 {
		t.Errorf("drop probabilities %v/%v, want 0.90/0.80", c.DropUnknown, c.DropDebt)
	}
	if c.Refractory != 24*time.Hour {
		t.Errorf("refractory %v, want 1 day", c.Refractory)
	}
	if !c.Desynchronize || !c.EffortBalancing || !c.Introductions {
		t.Error("defenses must default on")
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero quorum", func(c *Config) { c.Quorum = 0 }},
		{"inner below quorum", func(c *Config) { c.InnerCircle = c.Quorum - 1 }},
		{"margin >= quorum", func(c *Config) { c.MaxDisagree = c.Quorum }},
		{"negative margin", func(c *Config) { c.MaxDisagree = -1 }},
		{"zero interval", func(c *Config) { c.PollInterval = 0 }},
		{"bad fractions", func(c *Config) { c.EvalFrac = 0.1 }},
		{"zero vote window", func(c *Config) { c.VoteWindow = 0 }},
		{"zero block size", func(c *Config) { c.BlockSize = 0 }},
	}
	for _, m := range mutations {
		c := DefaultConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestReputationParamsConversion(t *testing.T) {
	c := DefaultConfig()
	p := c.reputationParams()
	if p.DropUnknown != c.DropUnknown || p.DropDebt != c.DropDebt {
		t.Error("drop probabilities not forwarded")
	}
	if time.Duration(p.Refractory) != c.Refractory {
		t.Error("refractory not forwarded")
	}
	if !p.IntroductionsEnabled {
		t.Error("introductions flag not forwarded")
	}
}
