package protocol

import (
	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/sched"
)

// TimerID identifies a timer armed through Env.After so it can be cancelled
// without allocating a closure per timer (the protocol arms one or more
// timers per message on the hot path). The zero TimerID is never issued, so
// it doubles as "no timer pending".
type TimerID uint64

// Env supplies a Peer with time, timers, randomness, transport and effort
// primitives. The discrete-event simulator and the real networked node each
// provide an implementation; the protocol state machines are identical under
// both.
type Env interface {
	// Now returns the current time on the environment's clock.
	Now() sched.Time
	// After schedules fn once, d from now, returning the timer's ID.
	After(d sched.Duration, fn func()) TimerID
	// Cancel stops a pending timer. Cancelling the zero TimerID, or a timer
	// that already fired or was already cancelled, is a no-op returning
	// false.
	Cancel(t TimerID) bool
	// Rand returns the peer's deterministic randomness stream.
	Rand() *prng.Source
	// Send transmits a message to another peer. Delivery is best-effort and
	// unacknowledged at this layer.
	Send(to ids.PeerID, m *Msg)
	// MakeProof generates a proof of effort of the given cost bound to ctx,
	// returning the proof and its secret byproduct receipt. Generation cost
	// is charged by the caller via the peer's ledger; in the simulator the
	// proof is symbolic, in the real node it is an MBF computation.
	MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt)
	// VerifyProof checks that p is valid for ctx and claims at least
	// minCost of effort.
	VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool
	// EvalReceipt derives the byproduct receipt of p by fully evaluating it
	// (the expensive path a poller takes while evaluating a vote). ok is
	// false if the proof does not withstand full evaluation.
	EvalReceipt(ctx []byte, p effort.Proof) (r effort.Receipt, ok bool)
}

// EnvTap observes the inputs an Env feeds into a Peer, plus the messages the
// Peer hands back to the Env for transmission. A tap sees exactly the event
// stream that determines the peer's state evolution, in execution order, so a
// recording of these events suffices to replay the peer deterministically.
// All methods are called synchronously on the peer's execution context (the
// node actor loop); implementations must be cheap and must not call back into
// the peer.
type EnvTap interface {
	// MsgIn fires after a frame is decoded and immediately before it is
	// delivered to Peer.Receive. frame is the decoded wire payload; the tap
	// may retain it.
	MsgIn(from ids.PeerID, frame []byte, m *Msg, now sched.Time)
	// TimerFired fires when a live timer's callback is about to run.
	// Cancelled timers are never reported.
	TimerFired(id TimerID, now sched.Time)
	// MsgOut fires when the peer asks the Env to transmit a message.
	MsgOut(to ids.PeerID, m *Msg, now sched.Time)
	// DamageNoticed fires when local storage damage is detected (scrub) and
	// is about to be raised to the peer via RaiseAuditPriority.
	DamageNoticed(au content.AUID, block int, now sched.Time)
}

// Outcome classifies how a poll concluded.
type Outcome uint8

const (
	// OutcomeSuccess: quorate, landslide agreement on every block after any
	// repairs.
	OutcomeSuccess Outcome = iota
	// OutcomeInquorate: fewer than quorum inner votes tallied.
	OutcomeInquorate
	// OutcomeInconclusive: no landslide either way on some block; raises an
	// alarm for the human operator.
	OutcomeInconclusive
	// OutcomeRepairFailed: the poller could not obtain a usable repair for
	// a block the landslide says is damaged.
	OutcomeRepairFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeInquorate:
		return "inquorate"
	case OutcomeInconclusive:
		return "inconclusive"
	case OutcomeRepairFailed:
		return "repair-failed"
	}
	return "invalid"
}

// Observer receives protocol-level events for metrics collection. All
// methods are called synchronously from the protocol; implementations must
// be cheap.
type Observer interface {
	// PollConcluded fires when a peer finishes a poll on an AU.
	PollConcluded(peer ids.PeerID, au content.AUID, outcome Outcome, now sched.Time)
	// Alarm fires on an inconclusive poll.
	Alarm(peer ids.PeerID, au content.AUID, now sched.Time)
	// RepairApplied fires after a replica block is overwritten by a repair.
	RepairApplied(peer ids.PeerID, au content.AUID, block int, now sched.Time)
	// VoteSupplied fires when a voter sends a vote.
	VoteSupplied(voter, poller ids.PeerID, au content.AUID, now sched.Time)
}

// NopObserver ignores all events.
type NopObserver struct{}

// PollConcluded implements Observer.
func (NopObserver) PollConcluded(ids.PeerID, content.AUID, Outcome, sched.Time) {}

// Alarm implements Observer.
func (NopObserver) Alarm(ids.PeerID, content.AUID, sched.Time) {}

// RepairApplied implements Observer.
func (NopObserver) RepairApplied(ids.PeerID, content.AUID, int, sched.Time) {}

// VoteSupplied implements Observer.
func (NopObserver) VoteSupplied(ids.PeerID, ids.PeerID, content.AUID, sched.Time) {}

// TeeObserver fans protocol events out to several observers in order. Nil
// entries are skipped.
func TeeObserver(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	return teeObserver(kept)
}

type teeObserver []Observer

// PollConcluded implements Observer.
func (t teeObserver) PollConcluded(p ids.PeerID, au content.AUID, o Outcome, now sched.Time) {
	for _, ob := range t {
		ob.PollConcluded(p, au, o, now)
	}
}

// Alarm implements Observer.
func (t teeObserver) Alarm(p ids.PeerID, au content.AUID, now sched.Time) {
	for _, ob := range t {
		ob.Alarm(p, au, now)
	}
}

// RepairApplied implements Observer.
func (t teeObserver) RepairApplied(p ids.PeerID, au content.AUID, block int, now sched.Time) {
	for _, ob := range t {
		ob.RepairApplied(p, au, block, now)
	}
}

// VoteSupplied implements Observer.
func (t teeObserver) VoteSupplied(voter, poller ids.PeerID, au content.AUID, now sched.Time) {
	for _, ob := range t {
		ob.VoteSupplied(voter, poller, au, now)
	}
}
