package protocol

import (
	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/sched"
)

// TimerID identifies a timer armed through Env.After so it can be cancelled
// without allocating a closure per timer (the protocol arms one or more
// timers per message on the hot path). The zero TimerID is never issued, so
// it doubles as "no timer pending".
type TimerID uint64

// Env supplies a Peer with time, timers, randomness, transport and effort
// primitives. The discrete-event simulator and the real networked node each
// provide an implementation; the protocol state machines are identical under
// both.
type Env interface {
	// Now returns the current time on the environment's clock.
	Now() sched.Time
	// After schedules fn once, d from now, returning the timer's ID.
	After(d sched.Duration, fn func()) TimerID
	// Cancel stops a pending timer. Cancelling the zero TimerID, or a timer
	// that already fired or was already cancelled, is a no-op returning
	// false.
	Cancel(t TimerID) bool
	// Rand returns the peer's deterministic randomness stream.
	Rand() *prng.Source
	// Send transmits a message to another peer. Delivery is best-effort and
	// unacknowledged at this layer.
	Send(to ids.PeerID, m *Msg)
	// MakeProof generates a proof of effort of the given cost bound to ctx,
	// returning the proof and its secret byproduct receipt. Generation cost
	// is charged by the caller via the peer's ledger; in the simulator the
	// proof is symbolic, in the real node it is an MBF computation.
	MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt)
	// VerifyProof checks that p is valid for ctx and claims at least
	// minCost of effort.
	VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool
	// EvalReceipt derives the byproduct receipt of p by fully evaluating it
	// (the expensive path a poller takes while evaluating a vote). ok is
	// false if the proof does not withstand full evaluation.
	EvalReceipt(ctx []byte, p effort.Proof) (r effort.Receipt, ok bool)
}

// EnvTap observes the inputs an Env feeds into a Peer, plus the messages the
// Peer hands back to the Env for transmission. A tap sees exactly the event
// stream that determines the peer's state evolution, in execution order, so a
// recording of these events suffices to replay the peer deterministically.
// All methods are called synchronously on the peer's execution context (the
// node actor loop); implementations must be cheap and must not call back into
// the peer.
type EnvTap interface {
	// MsgIn fires after a frame is decoded and immediately before it is
	// delivered to Peer.Receive. frame is the decoded wire payload; the tap
	// may retain it.
	MsgIn(from ids.PeerID, frame []byte, m *Msg, now sched.Time)
	// TimerFired fires when a live timer's callback is about to run.
	// Cancelled timers are never reported.
	TimerFired(id TimerID, now sched.Time)
	// MsgOut fires when the peer asks the Env to transmit a message.
	MsgOut(to ids.PeerID, m *Msg, now sched.Time)
	// DamageNoticed fires when local storage damage is detected (scrub) and
	// is about to be raised to the peer via RaiseAuditPriority.
	DamageNoticed(au content.AUID, block int, now sched.Time)
}

// Outcome classifies how a poll concluded.
type Outcome uint8

const (
	// OutcomeSuccess: quorate, landslide agreement on every block after any
	// repairs.
	OutcomeSuccess Outcome = iota
	// OutcomeInquorate: fewer than quorum inner votes tallied.
	OutcomeInquorate
	// OutcomeInconclusive: no landslide either way on some block; raises an
	// alarm for the human operator.
	OutcomeInconclusive
	// OutcomeRepairFailed: the poller could not obtain a usable repair for
	// a block the landslide says is damaged.
	OutcomeRepairFailed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeInquorate:
		return "inquorate"
	case OutcomeInconclusive:
		return "inconclusive"
	case OutcomeRepairFailed:
		return "repair-failed"
	}
	return "invalid"
}

// Observer receives protocol-level events for metrics collection. Every
// event carries the ID of the poll it belongs to, so observers can correlate
// events into per-poll spans without shadowing protocol state. All methods
// are called synchronously from the protocol; implementations must be cheap.
type Observer interface {
	// PollConcluded fires when a peer finishes a poll on an AU. started is
	// the poll's start time, so now-started is the poll duration.
	PollConcluded(peer ids.PeerID, au content.AUID, pollID uint64, outcome Outcome, started, now sched.Time)
	// Alarm fires on an inconclusive poll.
	Alarm(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time)
	// RepairApplied fires after a replica block is overwritten by a repair.
	RepairApplied(peer ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time)
	// VoteSupplied fires when a voter sends a vote.
	VoteSupplied(voter, poller ids.PeerID, au content.AUID, pollID uint64, now sched.Time)
}

// SpanObserver receives the finer-grained poll-lifecycle events between a
// poll's start and its conclusion. It is optional: the protocol discovers it
// by type-asserting the configured Observer, so implementations that do not
// need spans pay nothing. TeeObserver forwards span events to every member
// that implements this interface.
type SpanObserver interface {
	// PollStarted fires when a poller opens a poll.
	PollStarted(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time)
	// VoteSolicited fires each time the poller sends (or re-sends) a vote
	// invitation to a prospective voter.
	VoteSolicited(poller, voter ids.PeerID, au content.AUID, pollID uint64, now sched.Time)
	// VoteReceived fires when the poller accepts a valid vote. solicitedAt
	// is when this voter's latest invitation was sent, so now-solicitedAt is
	// the solicitation-to-vote latency.
	VoteReceived(poller, voter ids.PeerID, au content.AUID, pollID uint64, solicitedAt, now sched.Time)
	// TallyStarted fires when the poller begins evaluating collected votes.
	TallyStarted(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time)
	// RepairRequested fires when the poller asks a voter for a repair block.
	RepairRequested(poller, voter ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time)
}

// NopObserver ignores all events.
type NopObserver struct{}

// PollConcluded implements Observer.
func (NopObserver) PollConcluded(ids.PeerID, content.AUID, uint64, Outcome, sched.Time, sched.Time) {
}

// Alarm implements Observer.
func (NopObserver) Alarm(ids.PeerID, content.AUID, uint64, sched.Time) {}

// RepairApplied implements Observer.
func (NopObserver) RepairApplied(ids.PeerID, content.AUID, uint64, int, sched.Time) {}

// VoteSupplied implements Observer.
func (NopObserver) VoteSupplied(ids.PeerID, ids.PeerID, content.AUID, uint64, sched.Time) {}

// TeeObserver fans protocol events out to several observers in order. Nil
// entries are skipped. The returned observer also implements SpanObserver,
// forwarding span events (in the same order) to the members that implement
// it.
func TeeObserver(obs ...Observer) Observer {
	t := &teeObserver{obs: make([]Observer, 0, len(obs))}
	for _, o := range obs {
		if o == nil {
			continue
		}
		t.obs = append(t.obs, o)
		if so, ok := o.(SpanObserver); ok {
			t.spans = append(t.spans, so)
		}
	}
	return t
}

type teeObserver struct {
	obs   []Observer
	spans []SpanObserver
}

// PollConcluded implements Observer.
func (t *teeObserver) PollConcluded(p ids.PeerID, au content.AUID, pollID uint64, o Outcome, started, now sched.Time) {
	for _, ob := range t.obs {
		ob.PollConcluded(p, au, pollID, o, started, now)
	}
}

// Alarm implements Observer.
func (t *teeObserver) Alarm(p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	for _, ob := range t.obs {
		ob.Alarm(p, au, pollID, now)
	}
}

// RepairApplied implements Observer.
func (t *teeObserver) RepairApplied(p ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	for _, ob := range t.obs {
		ob.RepairApplied(p, au, pollID, block, now)
	}
}

// VoteSupplied implements Observer.
func (t *teeObserver) VoteSupplied(voter, poller ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	for _, ob := range t.obs {
		ob.VoteSupplied(voter, poller, au, pollID, now)
	}
}

// PollStarted implements SpanObserver.
func (t *teeObserver) PollStarted(p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	for _, ob := range t.spans {
		ob.PollStarted(p, au, pollID, now)
	}
}

// VoteSolicited implements SpanObserver.
func (t *teeObserver) VoteSolicited(poller, voter ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	for _, ob := range t.spans {
		ob.VoteSolicited(poller, voter, au, pollID, now)
	}
}

// VoteReceived implements SpanObserver.
func (t *teeObserver) VoteReceived(poller, voter ids.PeerID, au content.AUID, pollID uint64, solicitedAt, now sched.Time) {
	for _, ob := range t.spans {
		ob.VoteReceived(poller, voter, au, pollID, solicitedAt, now)
	}
}

// TallyStarted implements SpanObserver.
func (t *teeObserver) TallyStarted(p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	for _, ob := range t.spans {
		ob.TallyStarted(p, au, pollID, now)
	}
}

// RepairRequested implements SpanObserver.
func (t *teeObserver) RepairRequested(poller, voter ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	for _, ob := range t.spans {
		ob.RepairRequested(poller, voter, au, pollID, block, now)
	}
}

// TeeTap fans Env-tap events out to several taps in order. Nil entries are
// skipped.
func TeeTap(taps ...EnvTap) EnvTap {
	kept := make([]EnvTap, 0, len(taps))
	for _, t := range taps {
		if t != nil {
			kept = append(kept, t)
		}
	}
	return teeTap(kept)
}

type teeTap []EnvTap

// MsgIn implements EnvTap.
func (t teeTap) MsgIn(from ids.PeerID, frame []byte, m *Msg, now sched.Time) {
	for _, tap := range t {
		tap.MsgIn(from, frame, m, now)
	}
}

// TimerFired implements EnvTap.
func (t teeTap) TimerFired(id TimerID, now sched.Time) {
	for _, tap := range t {
		tap.TimerFired(id, now)
	}
}

// MsgOut implements EnvTap.
func (t teeTap) MsgOut(to ids.PeerID, m *Msg, now sched.Time) {
	for _, tap := range t {
		tap.MsgOut(to, m, now)
	}
}

// DamageNoticed implements EnvTap.
func (t teeTap) DamageNoticed(au content.AUID, block int, now sched.Time) {
	for _, tap := range t {
		tap.DamageNoticed(au, block, now)
	}
}
