package protocol

import (
	"fmt"
	"time"

	"lockss/internal/reputation"
	"lockss/internal/sched"
)

// Config holds every protocol operating parameter. DefaultConfig matches the
// paper's evaluation operating point (§6.3); the ablation benches flip the
// boolean defenses.
type Config struct {
	// Quorum is the minimum number of tallied inner-circle votes for a poll
	// to be valid (paper: 10).
	Quorum int
	// InnerCircle is the number of inner-circle invitees, typically twice
	// the quorum (paper: 20).
	InnerCircle int
	// MaxDisagree is the landslide margin: a landslide exists when the
	// losing side has at most this many votes (paper: 3).
	MaxDisagree int
	// OuterCircle is the number of outer-circle (discovery) invitees
	// sampled from nominations.
	OuterCircle int
	// Nominations is how many reference-list peers a voter offers per vote.
	Nominations int

	// PollInterval is the duration of one poll: a new poll is scheduled to
	// conclude one interval into the future (paper: 3 months).
	PollInterval sched.Duration
	// PollJitter desynchronizes poll schedules across AUs and peers
	// (fractional jitter on the first poll's phase).
	PollJitter float64

	// Solicitation timeline, as fractions of the poll interval:
	// inner invitations are sent at random instants in [0, SolicitFrac],
	// retries run until RetryFrac, outer invitations span
	// [OuterStartFrac, OuterEndFrac], evaluation starts at EvalFrac.
	SolicitFrac    float64
	RetryFrac      float64
	OuterStartFrac float64
	OuterEndFrac   float64
	EvalFrac       float64

	// VoteWindow is the allowance a voter gets to schedule and compute the
	// vote after accepting.
	VoteWindow sched.Duration
	// AckTimeout bounds the wait for a PollAck.
	AckTimeout sched.Duration
	// ProofTimeout bounds the voter's wait for the PollProof after
	// accepting; the introductory effort must cover this exposure.
	ProofTimeout sched.Duration
	// VoteSlack extends the poller's wait for a vote beyond VoteBy.
	VoteSlack sched.Duration
	// ReceiptSlack extends the voter's wait for the evaluation receipt
	// beyond the poll deadline.
	ReceiptSlack sched.Duration
	// RepairTimeout bounds each repair round trip.
	RepairTimeout sched.Duration

	// MaxSolicitAttempts bounds invitations per invitee per poll (silent
	// drops look like losses and are retried).
	MaxSolicitAttempts int
	// MaxRepairAttempts bounds repair sources tried per damaged block.
	MaxRepairAttempts int
	// MaxRepairsServed caps blocks a voter supplies per poll it voted in.
	MaxRepairsServed int
	// FrivolousRepairProb is the per-poll probability of requesting a
	// repair for an agreeing block, discouraging targeted free-riding via
	// refusal of repairs.
	FrivolousRepairProb float64

	// RefListTarget is the reference list size the peer replenishes toward
	// (from friends) after each poll; RefListMax trims above.
	RefListTarget int
	RefListMax    int

	// ConsiderRateFactor multiplies the peer's own outbound invitation rate
	// to derive the self-clocked cap on invitations considered per AU
	// (paper: 4x). ConsiderBurst is the token bucket depth.
	ConsiderRateFactor float64
	ConsiderBurst      float64

	// Reputation / admission parameters.
	DropUnknown     float64
	DropDebt        float64
	Refractory      sched.Duration
	GradeDecay      sched.Duration
	MaxIntros       int
	Introductions   bool
	Desynchronize   bool
	EffortBalancing bool

	// AdaptiveAcceptance enables the paper's §9 proposal: loyal peers
	// modulate the probability of accepting invitations from unknown or
	// in-debt pollers according to recent busyness, raising the marginal
	// effort an attacker needs to increase a victim's load. Disabled by
	// default (it is future work in the paper; we implement it for the
	// ablation study).
	AdaptiveAcceptance bool
	// AdaptiveGain scales recent busy-fraction into a refusal probability
	// (capped at 0.95).
	AdaptiveGain float64

	// BlockSize is the audit/repair granularity.
	BlockSize int64
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	day := sched.Duration(24 * time.Hour)
	return Config{
		Quorum:              10,
		InnerCircle:         20,
		MaxDisagree:         3,
		OuterCircle:         10,
		Nominations:         8,
		PollInterval:        sched.Duration(90 * 24 * time.Hour),
		PollJitter:          0.9,
		SolicitFrac:         0.50,
		RetryFrac:           0.70,
		OuterStartFrac:      0.55,
		OuterEndFrac:        0.80,
		EvalFrac:            0.85,
		VoteWindow:          7 * day,
		AckTimeout:          day / 4,
		ProofTimeout:        day / 4,
		VoteSlack:           day,
		ReceiptSlack:        2 * day,
		RepairTimeout:       day,
		MaxSolicitAttempts:  4,
		MaxRepairAttempts:   3,
		MaxRepairsServed:    8,
		FrivolousRepairProb: 0.05,
		RefListTarget:       40,
		RefListMax:          60,
		ConsiderRateFactor:  4.0,
		ConsiderBurst:       8,
		DropUnknown:         0.90,
		DropDebt:            0.80,
		Refractory:          day,
		GradeDecay:          sched.Duration(90 * 24 * time.Hour),
		MaxIntros:           40,
		Introductions:       true,
		Desynchronize:       true,
		EffortBalancing:     true,
		BlockSize:           1 << 20,
	}
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Quorum <= 0:
		return fmt.Errorf("protocol: quorum must be positive, got %d", c.Quorum)
	case c.InnerCircle < c.Quorum:
		return fmt.Errorf("protocol: inner circle %d below quorum %d", c.InnerCircle, c.Quorum)
	case c.MaxDisagree < 0 || c.MaxDisagree >= c.Quorum:
		return fmt.Errorf("protocol: landslide margin %d incompatible with quorum %d", c.MaxDisagree, c.Quorum)
	case c.PollInterval <= 0:
		return fmt.Errorf("protocol: non-positive poll interval")
	case c.SolicitFrac <= 0 || c.SolicitFrac > 1 || c.EvalFrac <= c.OuterEndFrac || c.EvalFrac > 1:
		return fmt.Errorf("protocol: inconsistent poll timeline fractions")
	case c.VoteWindow <= 0:
		return fmt.Errorf("protocol: non-positive vote window")
	case c.BlockSize <= 0:
		return fmt.Errorf("protocol: non-positive block size")
	}
	return nil
}

// reputationParams converts the admission fields for the reputation package.
func (c Config) reputationParams() reputation.Params {
	return reputation.Params{
		DropUnknown:          c.DropUnknown,
		DropDebt:             c.DropDebt,
		Refractory:           reputation.Duration(c.Refractory),
		Decay:                reputation.Duration(c.GradeDecay),
		MaxIntroductions:     c.MaxIntros,
		IntroductionsEnabled: c.Introductions,
	}
}
