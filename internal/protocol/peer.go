package protocol

import (
	"fmt"
	"slices"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/reputation"
	"lockss/internal/sched"
)

// Effort ledger kinds, for diagnostics and the cost-ratio metric.
const (
	KindSession      = "session"
	KindConsider     = "consider"
	KindIntroGen     = "intro-gen"
	KindRemainderGen = "remainder-gen"
	KindVerify       = "verify"
	KindVote         = "vote"
	KindEval         = "eval"
	KindRepair       = "repair"
	KindReceipt      = "receipt"
)

// PeerStats counts protocol events at one peer.
type PeerStats struct {
	PollsStarted      uint64
	PollsSucceeded    uint64
	PollsInquorate    uint64
	PollsInconclusive uint64
	PollsRepairFailed uint64
	Alarms            uint64
	VotesSupplied     uint64
	VotesReceived     uint64
	InvitesConsidered uint64
	InvitesRefused    uint64
	InvitesIgnored    uint64
	RepairsServed     uint64
	RepairsReceived   uint64
	AcksTimedOut      uint64
	VotesTimedOut     uint64
	ProofsTimedOut    uint64
	ReceiptsTimedOut  uint64
	BadProofs         uint64
}

// sessionKey identifies a voter-side session.
type sessionKey struct {
	poller ids.PeerID
	pollID uint64
}

// auState is a peer's per-AU protocol state.
type auState struct {
	spec       content.AUSpec
	replica    content.Replica
	rep        *reputation.List
	refList    map[ids.PeerID]bool
	poll       *pollState
	sessions   map[sessionKey]*voterSession
	pollEffort effort.PollEffort

	// voteLabel and evalLabel are the schedule-reservation labels, built
	// once so the hot path does not concatenate strings per invitation.
	voteLabel string
	evalLabel string

	// ownVote caches the symbolic vote data derived from this peer's
	// replica, keyed on the replica's damage generation. Symbolic votes do
	// not depend on the poll nonce, so one boxed value serves every vote and
	// reference comparison until the replica mutates; the underlying
	// snapshot slice is immutable once built, so sharing it across in-flight
	// messages is safe.
	ownVote    VoteData
	ownVoteGen uint64

	// Self-clocked consideration rate limit (token bucket).
	considerTokens float64
	considerAt     sched.Time

	// lastSuccess is the conclusion time of the last successful poll
	// (negative when none yet).
	lastSuccess sched.Time

	// expedite requests that the next poll on this AU conclude early
	// (RaiseAuditPriority): local evidence — a storage scrubber finding rot
	// on disk — says the AU needs an audit sooner than the fixed cadence.
	expedite bool
}

// Peer is a LOCKSS peer: it runs polls on its AUs as a poller and serves
// votes and repairs as a voter. A Peer is single-threaded: the environment
// must deliver messages and timer callbacks sequentially.
type Peer struct {
	id    ids.PeerID
	cfg   Config
	costs effort.CostModel
	env   Env
	obs   Observer
	// spanObs is the optional fine-grained lifecycle observer, discovered by
	// type-asserting obs at construction; nil when the observer does not
	// implement SpanObserver, so peers without one pay a nil check per
	// lifecycle event and nothing more.
	spanObs SpanObserver
	sch     *sched.Schedule
	ledger  *effort.Ledger
	aus     map[content.AUID]*auState
	auOrder []content.AUID
	friends []ids.PeerID
	pollSeq uint32
	stats   PeerStats
	started bool
	// draining stops new polls from being called: in-flight polls run to
	// conclusion, voter sessions keep serving, but concludePoll no longer
	// schedules a successor. Set by Drain for graceful shutdown.
	draining bool

	// Reusable hot-path scratch. A Peer is single-threaded, and none of
	// these escape a single protocol callback: ctxScratch backs effort
	// contexts (consumed synchronously by Env), poolScratch/idxScratch back
	// reference-list sampling, candScratch backs repair-candidate and
	// reference-list-churn selection.
	ctxScratch     []byte
	poolScratch    []ids.PeerID
	idxScratch     []int
	candScratch    []ids.PeerID
	inviteeScratch []ids.PeerID

	// Freelists for per-poll state machines: polls, their solicitations and
	// voter sessions churn constantly but only a bounded number are live at
	// once on one peer.
	freePolls    []*pollState
	freeSols     []*solicitation
	freeSessions []*voterSession
}

// New constructs a peer. The observer may be nil.
func New(id ids.PeerID, cfg Config, costs effort.CostModel, env Env, obs Observer) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if obs == nil {
		obs = NopObserver{}
	}
	spanObs, _ := obs.(SpanObserver)
	return &Peer{
		id:      id,
		cfg:     cfg,
		costs:   costs,
		env:     env,
		obs:     obs,
		spanObs: spanObs,
		sch:     sched.New(),
		ledger:  effort.NewLedger(),
		aus:     make(map[content.AUID]*auState),
	}, nil
}

// ID returns the peer's identity.
func (p *Peer) ID() ids.PeerID { return p.id }

// Config returns the peer's protocol configuration.
func (p *Peer) Config() Config { return p.cfg }

// Schedule exposes the task schedule (for the layering hook and tests).
func (p *Peer) Schedule() *sched.Schedule { return p.sch }

// Ledger exposes the peer's effort ledger.
func (p *Peer) Ledger() *effort.Ledger { return p.ledger }

// Stats returns a snapshot of the peer's counters.
func (p *Peer) Stats() PeerStats { return p.stats }

// PollsConcluded sums the per-outcome conclusion counters.
func (s PeerStats) PollsConcluded() uint64 {
	return s.PollsSucceeded + s.PollsInquorate + s.PollsInconclusive + s.PollsRepairFailed
}

// Drain stops the peer from calling new polls: every in-flight poll runs to
// its conclusion (the guard timer bounds that), after which the AU sits idle
// instead of starting a successor. Voter-side sessions keep serving votes and
// repairs — a draining peer stays useful to the population until it is
// stopped. Drain is irreversible for the life of the Peer.
func (p *Peer) Drain() { p.draining = true }

// Draining reports whether Drain has been called.
func (p *Peer) Draining() bool { return p.draining }

// ActivePolls counts AUs with a poller-side poll in flight. It reaches zero
// only after Drain (a non-draining peer immediately replaces each concluded
// poll with the next).
func (p *Peer) ActivePolls() int {
	n := 0
	for _, au := range p.auOrder {
		if p.aus[au].poll != nil {
			n++
		}
	}
	return n
}

// ActiveVoterSessions counts voter-side sessions currently committed to
// other pollers' polls.
func (p *Peer) ActiveVoterSessions() int {
	n := 0
	for _, au := range p.auOrder {
		n += len(p.aus[au].sessions)
	}
	return n
}

// SetFriends installs the operator-maintained friends list.
func (p *Peer) SetFriends(friends []ids.PeerID) {
	p.friends = nil
	for _, f := range friends {
		if f != p.id {
			p.friends = append(p.friends, f)
		}
	}
}

// AddFriend appends one peer to the operator-maintained friends list at
// runtime (operators coordinate when a new library joins the network).
func (p *Peer) AddFriend(f ids.PeerID) {
	if f == p.id {
		return
	}
	for _, existing := range p.friends {
		if existing == f {
			return
		}
	}
	p.friends = append(p.friends, f)
}

// AddToReferenceList inserts a peer into the reference list for an AU, as a
// deliberate operator action (mutual friendship on join).
func (p *Peer) AddToReferenceList(au content.AUID, peer ids.PeerID) {
	st, ok := p.aus[au]
	if !ok || peer == p.id {
		return
	}
	st.refList[peer] = true
}

// AddAU registers a replica to preserve, with an initial reference list
// (typically friends plus a bootstrap sample of the population). Must be
// called before Start.
func (p *Peer) AddAU(replica content.Replica, refList []ids.PeerID) error {
	if p.started {
		return fmt.Errorf("protocol: AddAU after Start")
	}
	spec := replica.Spec()
	if _, dup := p.aus[spec.ID]; dup {
		return fmt.Errorf("protocol: duplicate AU %v", spec.ID)
	}
	st := &auState{
		spec:       spec,
		replica:    replica,
		rep:        reputation.NewList(p.cfg.reputationParams()),
		refList:    make(map[ids.PeerID]bool),
		sessions:   make(map[sessionKey]*voterSession),
		pollEffort: p.costs.PollEffortFor(spec.Size, spec.Blocks()),
		voteLabel:  "vote " + spec.Name,
		evalLabel:  "eval " + spec.Name,
		considerAt: -1,
		// considerTokens starts full.
		considerTokens: p.cfg.ConsiderBurst,
		lastSuccess:    -1,
	}
	for _, r := range refList {
		if r != p.id {
			st.refList[r] = true
		}
	}
	p.aus[spec.ID] = st
	p.auOrder = append(p.auOrder, spec.ID)
	return nil
}

// AUs returns the preserved AU IDs in registration order.
func (p *Peer) AUs() []content.AUID {
	out := make([]content.AUID, len(p.auOrder))
	copy(out, p.auOrder)
	return out
}

// Replica returns the peer's replica of an AU, or nil.
func (p *Peer) Replica(au content.AUID) content.Replica {
	if st, ok := p.aus[au]; ok {
		return st.replica
	}
	return nil
}

// ReferenceList returns the current reference list for an AU.
func (p *Peer) ReferenceList(au content.AUID) []ids.PeerID {
	st, ok := p.aus[au]
	if !ok {
		return nil
	}
	out := make([]ids.PeerID, 0, len(st.refList))
	for id := range st.refList {
		out = append(out, id)
	}
	return out
}

// Reputation exposes the known-peers list for an AU (for tests, metrics and
// the adversary's insider-information oracle).
func (p *Peer) Reputation(au content.AUID) *reputation.List {
	if st, ok := p.aus[au]; ok {
		return st.rep
	}
	return nil
}

// SeedGrade initializes a peer's grade in the known-peers list of one AU.
// Population builders use it to model steady-state acquaintance; the
// brute-force experiment uses it to start minions in debt (the paper's
// conservative initialization).
func (p *Peer) SeedGrade(au content.AUID, peer ids.PeerID, g reputation.Grade) {
	st, ok := p.aus[au]
	if !ok || peer == p.id {
		return
	}
	now := p.env.Now()
	switch g {
	case reputation.Debt:
		st.rep.Penalize(reputation.Time(now), peer)
	case reputation.Even:
		st.rep.Penalize(reputation.Time(now), peer)
		st.rep.Raise(reputation.Time(now), peer)
	case reputation.Credit:
		st.rep.Penalize(reputation.Time(now), peer)
		st.rep.Raise(reputation.Time(now), peer)
		st.rep.Raise(reputation.Time(now), peer)
	}
}

// RefEntry is one reference-list member with its current first-hand
// reputation grade for the AU.
type RefEntry struct {
	Peer  ids.PeerID
	Grade reputation.Grade
}

// AUInfo is a point-in-time snapshot of one AU's protocol state, built for
// operator inspection (the admin API's /aus endpoint). It must be taken on
// the peer's single thread — the real node routes it through Inspect.
type AUInfo struct {
	Spec       content.AUSpec
	Generation uint64
	// DamagedBlocks lists the replica's currently damaged block indices.
	DamagedBlocks []int
	// PollActive reports a poller-side poll in flight; PollDeadline is its
	// scheduled conclusion time (zero when idle, which only happens while
	// draining).
	PollActive   bool
	PollDeadline sched.Time
	// Expedite reports a pending RaiseAuditPriority request.
	Expedite bool
	// LastSuccess is the conclusion time of the last successful poll
	// (negative before the first).
	LastSuccess sched.Time
	// VoterSessions counts voter-side commitments to other pollers.
	VoterSessions int
	// RefList holds the reference list with grades, sorted by peer ID.
	RefList []RefEntry
}

// AUInfo snapshots one AU, reporting false for AUs the peer does not
// preserve.
func (p *Peer) AUInfo(au content.AUID) (AUInfo, bool) {
	st, ok := p.aus[au]
	if !ok {
		return AUInfo{}, false
	}
	info := AUInfo{
		Spec:          st.spec,
		Generation:    st.replica.Generation(),
		Expedite:      st.expedite,
		LastSuccess:   st.lastSuccess,
		VoterSessions: len(st.sessions),
	}
	for _, d := range st.replica.Snapshot() {
		info.DamagedBlocks = append(info.DamagedBlocks, d.Block)
	}
	if st.poll != nil {
		info.PollActive = true
		info.PollDeadline = st.poll.deadline
	}
	now := repTime(p.env.Now())
	members := make([]ids.PeerID, 0, len(st.refList))
	for id := range st.refList {
		members = append(members, id)
	}
	sortPeers(members)
	for _, id := range members {
		info.RefList = append(info.RefList, RefEntry{Peer: id, Grade: st.rep.GradeOf(now, id)})
	}
	return info, ok
}

// AUInfos snapshots every preserved AU in registration order.
func (p *Peer) AUInfos() []AUInfo {
	out := make([]AUInfo, 0, len(p.auOrder))
	for _, au := range p.auOrder {
		info, _ := p.AUInfo(au)
		out = append(out, info)
	}
	return out
}

// RaiseAuditPriority asks for the poll *after* the in-flight one on an AU
// to be scheduled a quarter interval out instead of a full one. The real
// node calls it when its storage scrubber finds damage on disk. A poll is
// always in flight and its votes hash the actual stored bytes, so the
// damage is under audit already; what this trims is the idle gap before the
// retry when that poll fails to heal it (inquorate, repair-failed, or the
// rot appeared too late in the window). The quarter-interval floor keeps
// the paper's rate limitation biting — peers do not hurry under external
// pressure, and this fires only on first-hand local evidence, which no
// remote attacker controls. The request is consumed at the next poll
// conclusion; callers with persistent damage (the scrubber re-observes it
// every pass) simply raise it again. The simulator never calls this, so
// simulation runs are unaffected.
func (p *Peer) RaiseAuditPriority(au content.AUID) {
	if st, ok := p.aus[au]; ok {
		st.expedite = true
	}
}

// Start schedules the first poll on every AU at a jittered phase within the
// poll interval, desynchronizing peers and AUs from the outset.
func (p *Peer) Start() {
	p.started = true
	for _, au := range p.auOrder {
		st := p.aus[au]
		// First poll concludes at a random phase within [0.1, 1.1) of an
		// interval, so poll deadlines are spread uniformly in steady state.
		frac := 0.1 + p.cfg.PollJitter*p.env.Rand().Float64()
		delay := sched.Duration(float64(p.cfg.PollInterval) * frac)
		deadline := p.env.Now() + sched.Time(delay)
		p.startPoll(st, deadline)
	}
}

// Receive is the transport entry point.
func (p *Peer) Receive(from ids.PeerID, m *Msg) {
	if m == nil {
		return
	}
	st, ok := p.aus[m.AU]
	if !ok {
		return // not preserving this AU
	}
	switch m.Type {
	case MsgPoll:
		p.voterHandlePoll(st, from, m)
	case MsgPollAck:
		p.pollerHandleAck(st, from, m)
	case MsgPollProof:
		p.voterHandleProof(st, from, m)
	case MsgVote:
		p.pollerHandleVote(st, from, m)
	case MsgRepairRequest:
		p.voterHandleRepairRequest(st, from, m)
	case MsgRepair:
		p.pollerHandleRepair(st, from, m)
	case MsgEvaluationReceipt:
		p.voterHandleReceipt(st, from, m)
	}
}

// charge records defender effort.
func (p *Peer) charge(kind string, e effort.Seconds) {
	p.ledger.Charge(kind, e)
}

// repTime converts the environment clock for the reputation package.
func repTime(t sched.Time) reputation.Time { return reputation.Time(t) }

// gcSchedules trims expired reservations; called at poll boundaries.
func (p *Peer) gcSchedule() {
	p.sch.GC(p.env.Now())
}

// send transmits a message, filling in the sender-side identity fields.
func (p *Peer) send(to ids.PeerID, m *Msg) {
	p.env.Send(to, m)
}

// sortPeers orders peer IDs ascending; pools derived from map iteration
// must be sorted before random sampling to keep runs deterministic.
func sortPeers(s []ids.PeerID) {
	slices.Sort(s)
}

// msgContext derives m's effort-binding context for a protocol phase into
// the peer's reusable scratch buffer. The result is only valid until the
// next msgContext call on this peer; Env's effort primitives consume it
// synchronously.
func (p *Peer) msgContext(m *Msg, phase string) []byte {
	p.ctxScratch = AppendPollContext(p.ctxScratch[:0], m.Poller, m.Voter, m.AU, m.PollID, phase)
	return p.ctxScratch
}

// sampleRefList draws up to n distinct reference-list members, excluding
// the given peer (ids.NoPeer excludes nobody). The returned slice is freshly
// allocated (callers retain it across messages); the candidate pool behind
// the draw is scratch. sampleRefListInto is the non-retaining variant.
func (p *Peer) sampleRefList(st *auState, n int, exclude ids.PeerID) []ids.PeerID {
	return p.sampleRefListInto(nil, st, n, exclude)
}

// sampleRefListInto is sampleRefList appending into dst's backing array; use
// it when the result is consumed before the next call on this peer.
func (p *Peer) sampleRefListInto(dst []ids.PeerID, st *auState, n int, exclude ids.PeerID) []ids.PeerID {
	pool := p.poolScratch[:0]
	for id := range st.refList {
		if id == p.id || id == exclude {
			continue
		}
		pool = append(pool, id)
	}
	p.poolScratch = pool
	sortPeers(pool)
	if n >= len(pool) {
		p.env.Rand().Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		return append(dst[:0], pool...)
	}
	idx := p.env.Rand().SampleInto(p.idxScratch, len(pool), n)
	p.idxScratch = idx
	dst = dst[:0]
	for _, j := range idx {
		dst = append(dst, pool[j])
	}
	return dst
}
