package protocol

import (
	"testing"

	"lockss/internal/sched"
)

// TestRaiseAuditPriorityExpeditesNextPoll: an expedited AU's next poll
// concludes a quarter interval out instead of a full one, the request is
// consumed, and unknown AUs are ignored.
func TestRaiseAuditPriorityExpeditesNextPoll(t *testing.T) {
	env := newFakeEnv(1)
	p, _ := newTestPeer(t, env, 1, testConfig(), nil)
	p.Start()
	st := p.aus[1]
	if st.poll == nil {
		t.Fatal("no poll after Start")
	}

	p.RaiseAuditPriority(99) // not preserved; must be a no-op
	p.RaiseAuditPriority(1)
	if !st.expedite {
		t.Fatal("expedite flag not set")
	}

	now := env.Now()
	p.concludePoll(st, st.poll, OutcomeInquorate)
	if st.expedite {
		t.Error("expedite request not consumed")
	}
	want := now + sched.Time(p.cfg.PollInterval/4)
	got := st.poll.deadline
	if got != want {
		t.Errorf("expedited deadline = %v, want %v", got, want)
	}

	// Without a raised priority the following poll reverts to the fixed
	// cadence: one interval after the (expedited) deadline.
	p.concludePoll(st, st.poll, OutcomeInquorate)
	if st.poll.deadline != want+sched.Time(p.cfg.PollInterval) {
		t.Errorf("next deadline = %v, want fixed cadence %v", st.poll.deadline, want+sched.Time(p.cfg.PollInterval))
	}
}

// TestExpediteSurvivesLatePoll: a poll that concluded behind schedule (its
// deadline plus an interval is already in the past) must still honor a
// raised audit priority — the late-poll clamp must not swallow it.
func TestExpediteSurvivesLatePoll(t *testing.T) {
	env := newFakeEnv(1)
	p, _ := newTestPeer(t, env, 1, testConfig(), nil)
	p.Start()
	st := p.aus[1]
	p.RaiseAuditPriority(1)
	// Force the just-concluded poll to look ancient.
	st.poll.deadline = -sched.Time(2 * p.cfg.PollInterval)
	now := env.Now()
	p.concludePoll(st, st.poll, OutcomeInquorate)
	want := now + sched.Time(p.cfg.PollInterval/4)
	if st.poll.deadline != want {
		t.Errorf("late expedited deadline = %v, want %v", st.poll.deadline, want)
	}
}
