// Package sched implements a peer's task schedule of promises to perform
// effort — computing votes for others and running its own polls.
//
// The schedule is the over-commitment defense of §5.1 of the paper: "peers
// maintain a task schedule of their promises to perform effort ... If the
// effort of computing the vote solicited by an incoming Poll message cannot
// be accommodated in the schedule, the invitation is refused."
//
// Time is abstract int64 nanoseconds so the same scheduler serves the
// discrete-event simulator (virtual time) and the real node (wall time).
package sched

import (
	"fmt"
	"sort"
	"time"
)

// Time mirrors sim.Time without importing it, keeping sched reusable by the
// real node. Values are nanoseconds since an arbitrary epoch.
type Time int64

// Duration is a span in nanoseconds; aliasing time.Duration keeps protocol
// configuration interoperable with both the simulator's clock and the real
// node's wall clock.
type Duration = time.Duration

// TaskID identifies a reservation. The zero TaskID is never issued.
type TaskID uint64

// Task is a committed interval of compute on the peer's single audit
// resource.
type Task struct {
	ID    TaskID
	Start Time
	End   Time
	// Label describes the commitment ("vote au=3 poll=17", "eval au=3").
	Label string
}

// Schedule tracks non-overlapping committed intervals plus an optional
// background load hook. It is not safe for concurrent use.
type Schedule struct {
	tasks  []Task // sorted by Start, non-overlapping
	nextID TaskID

	// Background, if non-nil, reports extra busy intervals in [from, to)
	// owed to lower simulation layers (the paper's 600-AU layering, §6.3).
	// Returned intervals must be sorted and non-overlapping.
	Background func(from, to Time) []Task

	// CommittedTotal accumulates the total committed duration ever
	// reserved, for utilization metrics.
	CommittedTotal Duration
	// CommittedCount counts reservations ever made.
	CommittedCount uint64

	// mergeScratch backs merged's union timeline; slot searches under
	// background load (layered runs) call merged on every schedule check, so
	// the union is assembled in place instead of allocating per query.
	mergeScratch []Task
}

// New returns an empty schedule.
func New() *Schedule { return &Schedule{} }

// Len returns the number of live reservations.
func (s *Schedule) Len() int { return len(s.tasks) }

// Tasks returns a copy of the live reservations in start order.
func (s *Schedule) Tasks() []Task {
	out := make([]Task, len(s.tasks))
	copy(out, s.tasks)
	return out
}

// GC drops reservations that ended at or before now. Call periodically (the
// peer does, on poll boundaries) to keep the schedule small.
func (s *Schedule) GC(now Time) {
	i := 0
	for i < len(s.tasks) && s.tasks[i].End <= now {
		i++
	}
	if i > 0 {
		s.tasks = append(s.tasks[:0], s.tasks[i:]...)
	}
}

// merged returns the union of committed and background intervals within
// [from, to), sorted and non-overlapping.
func (s *Schedule) merged(from, to Time) []Task {
	var bg []Task
	if s.Background != nil {
		bg = s.Background(from, to)
	}
	if len(bg) == 0 {
		return s.tasks
	}
	all := append(s.mergeScratch[:0], s.tasks...)
	all = append(all, bg...)
	s.mergeScratch = all
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	// Coalesce overlaps so gap-finding sees one busy timeline.
	out := all[:0]
	for _, t := range all {
		if n := len(out); n > 0 && t.Start <= out[n-1].End {
			if t.End > out[n-1].End {
				out[n-1].End = t.End
			}
			continue
		}
		out = append(out, t)
	}
	return out
}

// FindSlot returns the earliest start >= earliest such that a task of length
// d fits entirely before deadline, honoring existing commitments and
// background load. ok is false if no slot exists.
func (s *Schedule) FindSlot(earliest Time, d Duration, deadline Time) (start Time, ok bool) {
	if d <= 0 {
		return earliest, true
	}
	if earliest+Time(d) > deadline {
		return 0, false
	}
	cur := earliest
	for _, t := range s.merged(earliest, deadline) {
		if t.End <= cur {
			continue
		}
		if t.Start >= cur+Time(d) {
			break // gap before this task fits
		}
		// Task overlaps the candidate window; move past it.
		cur = t.End
		if cur+Time(d) > deadline {
			return 0, false
		}
	}
	if cur+Time(d) > deadline {
		return 0, false
	}
	return cur, true
}

// Reserve commits [start, start+d) with the given label. It fails if the
// interval overlaps an existing commitment (background load is advisory for
// slot search but does not block explicit reservations, mirroring the
// layering technique's one-way coupling).
func (s *Schedule) Reserve(start Time, d Duration, label string) (TaskID, error) {
	if d <= 0 {
		return 0, fmt.Errorf("sched: non-positive duration %d", d)
	}
	end := start + Time(d)
	idx := sort.Search(len(s.tasks), func(i int) bool { return s.tasks[i].Start >= start })
	if idx > 0 && s.tasks[idx-1].End > start {
		return 0, fmt.Errorf("sched: %q overlaps %q", label, s.tasks[idx-1].Label)
	}
	if idx < len(s.tasks) && s.tasks[idx].Start < end {
		return 0, fmt.Errorf("sched: %q overlaps %q", label, s.tasks[idx].Label)
	}
	s.nextID++
	t := Task{ID: s.nextID, Start: start, End: end, Label: label}
	s.tasks = append(s.tasks, Task{})
	copy(s.tasks[idx+1:], s.tasks[idx:])
	s.tasks[idx] = t
	s.CommittedTotal += Duration(d)
	s.CommittedCount++
	return t.ID, nil
}

// ReserveSlot finds a slot and reserves it in one step.
func (s *Schedule) ReserveSlot(earliest Time, d Duration, deadline Time, label string) (TaskID, Time, bool) {
	start, ok := s.FindSlot(earliest, d, deadline)
	if !ok {
		return 0, 0, false
	}
	id, err := s.Reserve(start, d, label)
	if err != nil {
		// FindSlot guarantees no overlap with commitments; an error here is
		// a programming bug worth failing loudly on.
		panic(err)
	}
	return id, start, true
}

// Release cancels a reservation (a deserting poller's slot, for example).
// Releasing an unknown ID is a no-op returning false.
func (s *Schedule) Release(id TaskID) bool {
	for i, t := range s.tasks {
		if t.ID == id {
			s.CommittedTotal -= Duration(t.End - t.Start)
			s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
			return true
		}
	}
	return false
}

// BusyFraction reports the fraction of [from, to) covered by commitments and
// background load.
func (s *Schedule) BusyFraction(from, to Time) float64 {
	if to <= from {
		return 0
	}
	var busy Duration
	for _, t := range s.merged(from, to) {
		lo, hi := t.Start, t.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			busy += Duration(hi - lo)
		}
	}
	return float64(busy) / float64(to-from)
}

// Validate checks the internal invariant (sorted, non-overlapping) and
// returns an error describing the first violation. Property tests call it.
func (s *Schedule) Validate() error {
	for i := 1; i < len(s.tasks); i++ {
		a, b := s.tasks[i-1], s.tasks[i]
		if b.Start < a.Start {
			return fmt.Errorf("sched: tasks out of order at %d", i)
		}
		if b.Start < a.End {
			return fmt.Errorf("sched: %q overlaps %q", b.Label, a.Label)
		}
	}
	for _, t := range s.tasks {
		if t.End <= t.Start {
			return fmt.Errorf("sched: empty task %q", t.Label)
		}
	}
	return nil
}
