package sched

import (
	"testing"
	"testing/quick"

	"lockss/internal/prng"
)

func TestReserveAndFind(t *testing.T) {
	s := New()
	// Reserve [100, 200).
	id, err := s.Reserve(100, 100, "a")
	if err != nil || id == 0 {
		t.Fatalf("Reserve: %v", err)
	}
	// A 50-long task from 0 fits before it.
	start, ok := s.FindSlot(0, 50, 1000)
	if !ok || start != 0 {
		t.Errorf("FindSlot = %v,%v; want 0,true", start, ok)
	}
	// A 150-long task from 0 must go after [100,200).
	start, ok = s.FindSlot(0, 150, 1000)
	if !ok || start != 200 {
		t.Errorf("FindSlot(150) = %v,%v; want 200,true", start, ok)
	}
	// No room before deadline 300 for a 150-long task starting at 90.
	_, ok = s.FindSlot(90, 150, 300)
	if ok {
		t.Error("FindSlot should fail when nothing fits before the deadline")
	}
}

func TestReserveOverlapFails(t *testing.T) {
	s := New()
	if _, err := s.Reserve(100, 100, "a"); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ start, d Time }{
		{50, 100}, {150, 10}, {199, 5}, {100, 100}, {0, 101},
	} {
		if _, err := s.Reserve(c.start, Duration(c.d), "x"); err == nil {
			t.Errorf("Reserve(%d,%d) should overlap", c.start, c.d)
		}
	}
	// Adjacent intervals are fine.
	if _, err := s.Reserve(200, 50, "after"); err != nil {
		t.Errorf("adjacent reserve failed: %v", err)
	}
	if _, err := s.Reserve(0, 100, "before"); err != nil {
		t.Errorf("adjacent reserve failed: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRelease(t *testing.T) {
	s := New()
	id, _ := s.Reserve(100, 100, "a")
	if !s.Release(id) {
		t.Error("Release returned false")
	}
	if s.Release(id) {
		t.Error("double Release returned true")
	}
	if _, err := s.Reserve(100, 100, "b"); err != nil {
		t.Errorf("slot not freed: %v", err)
	}
}

func TestGC(t *testing.T) {
	s := New()
	s.Reserve(0, 10, "old")
	s.Reserve(20, 10, "mid")
	s.Reserve(100, 10, "new")
	s.GC(50)
	if s.Len() != 1 {
		t.Errorf("GC left %d tasks, want 1", s.Len())
	}
	if s.Tasks()[0].Label != "new" {
		t.Errorf("wrong survivor: %v", s.Tasks()[0].Label)
	}
}

func TestBusyFraction(t *testing.T) {
	s := New()
	s.Reserve(0, 50, "a")
	s.Reserve(100, 50, "b")
	if f := s.BusyFraction(0, 200); f != 0.5 {
		t.Errorf("BusyFraction = %v, want 0.5", f)
	}
	if f := s.BusyFraction(0, 50); f != 1.0 {
		t.Errorf("BusyFraction = %v, want 1", f)
	}
	if f := s.BusyFraction(50, 100); f != 0 {
		t.Errorf("BusyFraction = %v, want 0", f)
	}
}

func TestBackgroundLoad(t *testing.T) {
	s := New()
	s.Background = func(from, to Time) []Task {
		// Permanently busy [0, 1000).
		if to <= 0 || from >= 1000 {
			return nil
		}
		return []Task{{Start: 0, End: 1000, Label: "bg"}}
	}
	start, ok := s.FindSlot(0, 10, 2000)
	if !ok || start != 1000 {
		t.Errorf("FindSlot with background = %v,%v; want 1000,true", start, ok)
	}
	// Background does not block explicit reservation (advisory only).
	if _, err := s.Reserve(500, 10, "forced"); err != nil {
		t.Errorf("background blocked explicit reserve: %v", err)
	}
	if f := s.BusyFraction(0, 1000); f != 1.0 {
		t.Errorf("BusyFraction with background = %v", f)
	}
}

func TestFindSlotZeroDuration(t *testing.T) {
	s := New()
	start, ok := s.FindSlot(42, 0, 100)
	if !ok || start != 42 {
		t.Errorf("zero-duration slot = %v,%v", start, ok)
	}
}

func TestReserveSlot(t *testing.T) {
	s := New()
	s.Reserve(0, 100, "head")
	id, start, ok := s.ReserveSlot(0, 50, 1000, "tail")
	if !ok || start != 100 || id == 0 {
		t.Errorf("ReserveSlot = %v,%v,%v", id, start, ok)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

// TestPropertyRandomOps drives random reserve/release/gc operations and
// checks the schedule invariant plus non-overlap of found slots.
func TestPropertyRandomOps(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := prng.New(seed)
		s := New()
		var live []TaskID
		now := Time(0)
		for op := 0; op < 300; op++ {
			switch r.Intn(5) {
			case 0, 1: // reserve via FindSlot
				d := Duration(r.Intn(100) + 1)
				deadline := now + Time(r.Intn(5000)+200)
				if id, start, ok := s.ReserveSlot(now, d, deadline, "t"); ok {
					if start < now || start+Time(d) > deadline {
						return false
					}
					live = append(live, id)
				}
			case 2: // direct reserve at a random spot (may fail)
				start := now + Time(r.Intn(2000))
				if id, err := s.Reserve(start, Duration(r.Intn(50)+1), "d"); err == nil {
					live = append(live, id)
				}
			case 3: // release random
				if len(live) > 0 {
					i := r.Intn(len(live))
					s.Release(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 4: // advance time and GC
				now += Time(r.Intn(200))
				s.GC(now)
			}
			if err := s.Validate(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyFindSlotRespectsCommitments: a found slot never overlaps an
// existing commitment.
func TestPropertyFindSlotRespectsCommitments(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := prng.New(seed)
		s := New()
		type iv struct{ lo, hi Time }
		var ivs []iv
		for i := 0; i < 30; i++ {
			start := Time(r.Intn(3000))
			d := Duration(r.Intn(80) + 1)
			if _, err := s.Reserve(start, d, "x"); err == nil {
				ivs = append(ivs, iv{start, start + Time(d)})
			}
		}
		for q := 0; q < 50; q++ {
			earliest := Time(r.Intn(3000))
			d := Duration(r.Intn(120) + 1)
			deadline := earliest + Time(r.Intn(3000)+1)
			start, ok := s.FindSlot(earliest, d, deadline)
			if !ok {
				continue
			}
			end := start + Time(d)
			if start < earliest || end > deadline {
				return false
			}
			for _, v := range ivs {
				if start < v.hi && v.lo < end {
					return false // overlap
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestCommittedAccounting(t *testing.T) {
	s := New()
	s.Reserve(0, 10, "a")
	s.Reserve(20, 30, "b")
	if s.CommittedTotal != 40 || s.CommittedCount != 2 {
		t.Errorf("accounting: total=%v count=%v", s.CommittedTotal, s.CommittedCount)
	}
	id, _ := s.Reserve(100, 5, "c")
	s.Release(id)
	if s.CommittedTotal != 40 {
		t.Errorf("release should refund total, got %v", s.CommittedTotal)
	}
}
