package telemetry

import (
	"sync"
	"testing"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

// TestSpanAggregation drives one full poll lifecycle through the observer
// interfaces and checks the resulting span and histogram samples.
func TestSpanAggregation(t *testing.T) {
	tel := New()
	var (
		peer   = ids.PeerID(1)
		voter  = ids.PeerID(2)
		au     = content.AUID(7)
		pollID = uint64(42)
		t0     = sched.Time(1000)
	)
	tel.PollStarted(peer, au, pollID, t0)
	tel.VoteSolicited(peer, voter, au, pollID, t0+10)
	tel.VoteSolicited(peer, 3, au, pollID, t0+11)
	tel.VoteReceived(peer, voter, au, pollID, t0+10, t0+60)
	tel.TallyStarted(peer, au, pollID, t0+100)
	tel.RepairRequested(peer, voter, au, pollID, 5, t0+120)
	tel.RepairApplied(peer, au, pollID, 5, t0+150)
	tel.PollConcluded(peer, au, pollID, protocol.OutcomeSuccess, t0, t0+200)

	polls := tel.Polls()
	if len(polls) != 1 {
		t.Fatalf("Polls() = %+v, want one span", polls)
	}
	s := polls[0]
	if s.PollID != pollID || s.Peer != 1 || s.AU != 7 {
		t.Errorf("span identity: %+v", s)
	}
	if s.Solicits != 2 || s.Votes != 1 || s.Repairs != 1 {
		t.Errorf("span counters: %+v", s)
	}
	if s.Outcome != "success" || s.StartedNs != 1000 || s.ConcludedNs != 1200 || s.DurationNs != 200 {
		t.Errorf("span timing: %+v", s)
	}

	check := func(name string, h *Histogram, count uint64, sum int64) {
		t.Helper()
		if snap := h.Snapshot(); snap.Count != count || snap.Sum != sum {
			t.Errorf("%s: count=%d sum=%d, want count=%d sum=%d", name, snap.Count, snap.Sum, count, sum)
		}
	}
	check("PollDuration", &tel.PollDuration, 1, 200)
	check("SolicitToVote", &tel.SolicitToVote, 1, 50)
	check("TallyTime", &tel.TallyTime, 1, 100)
	check("RepairTime", &tel.RepairTime, 1, 30)

	// Every lifecycle event also landed in the flight recorder.
	wantKinds := []string{"poll-start", "solicit", "solicit", "vote-in", "tally", "repair-req", "repair", "conclude"}
	ev := tel.Ring().Snapshot()
	if len(ev) != len(wantKinds) {
		t.Fatalf("ring has %d events: %+v", len(ev), ev)
	}
	for i, e := range ev {
		if e.Kind != wantKinds[i] {
			t.Errorf("ring event %d kind %q, want %q", i, e.Kind, wantKinds[i])
		}
	}
}

// TestConcludeWithoutStart pins the recorder-attached-late path: a
// conclusion with no in-flight span synthesizes one from the event alone.
func TestConcludeWithoutStart(t *testing.T) {
	tel := New()
	tel.PollConcluded(1, 2, 99, protocol.OutcomeInquorate, 500, 900)
	polls := tel.Polls()
	if len(polls) != 1 {
		t.Fatalf("Polls() = %+v", polls)
	}
	s := polls[0]
	if s.PollID != 99 || s.Outcome != "inquorate" || s.StartedNs != 500 || s.DurationNs != 400 {
		t.Errorf("synthesized span: %+v", s)
	}
}

// TestRecentEviction pins the concluded-span table's circular behavior:
// oldest spans fall off, survivors come back oldest first, in-flight spans
// follow.
func TestRecentEviction(t *testing.T) {
	tel := NewSized(16, 2)
	for id := uint64(1); id <= 3; id++ {
		tel.PollStarted(1, 1, id, sched.Time(id*100))
		tel.PollConcluded(1, 1, id, protocol.OutcomeSuccess, sched.Time(id*100), sched.Time(id*100+50))
	}
	tel.PollStarted(1, 1, 4, 1000)
	polls := tel.Polls()
	if len(polls) != 3 {
		t.Fatalf("Polls() = %+v, want spans 2, 3 and in-flight 4", polls)
	}
	if polls[0].PollID != 2 || polls[1].PollID != 3 {
		t.Errorf("concluded order: %+v", polls)
	}
	if polls[2].PollID != 4 || polls[2].Outcome != "" {
		t.Errorf("in-flight span: %+v", polls[2])
	}
}

// TestTelemetryConcurrent hammers the whole recorder from concurrent
// poll lifecycles while readers pull spans, votes, ring snapshots and
// histogram snapshots — the always-on record path under -race.
func TestTelemetryConcurrent(t *testing.T) {
	tel := NewSized(256, 64)
	const workers, pollsPer = 8, 200
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tel.Polls()
			_ = tel.Votes()
			_ = tel.Ring().Snapshot()
			_ = tel.PollDuration.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			peer := ids.PeerID(w + 1)
			for i := 0; i < pollsPer; i++ {
				id := uint64(w)<<32 | uint64(i)
				t0 := sched.Time(i * 10)
				tel.PollStarted(peer, 1, id, t0)
				tel.VoteSolicited(peer, peer+1, 1, id, t0+1)
				tel.VoteReceived(peer, peer+1, 1, id, t0+1, t0+3)
				tel.VoteSupplied(peer, peer+1, 1, id, t0+4)
				tel.PollConcluded(peer, 1, id, protocol.OutcomeSuccess, t0, t0+5)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := tel.PollDuration.Snapshot().Count; got != workers*pollsPer {
		t.Errorf("PollDuration count = %d, want %d", got, workers*pollsPer)
	}
	if got := tel.SolicitToVote.Snapshot().Count; got != workers*pollsPer {
		t.Errorf("SolicitToVote count = %d, want %d", got, workers*pollsPer)
	}
	if n := len(tel.Polls()); n != 64 {
		t.Errorf("recent table has %d spans, want the cap 64", n)
	}
}
