// Package telemetry is the node's always-on observability layer: lock-free
// log-bucketed latency histograms, a fixed-size flight-recorder ring of
// poll-lifecycle events, and per-poll span aggregation — all cheap enough to
// leave enabled in production (unlike the opt-in -record trace tap, which
// captures every message).
//
// The histograms are the paper's missing health signal: rate-limited sampled
// voting lives or dies on the *tails* of poll duration and vote-solicitation
// latency, which monotonic counters cannot show. Everything here is fed from
// protocol.Observer/SpanObserver events carrying poll IDs and timestamps, so
// the same recorder works on virtual time under the simulator and wall time
// on a real node.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram: bucket i counts
// values v (nanoseconds) with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i),
// with bucket 0 holding exact zeros. 64 buckets cover the full int64 range,
// so sub-microsecond admin handlers and month-long simulated polls land in
// the same fixed-size structure.
const NumBuckets = 64

// Histogram is a lock-free log₂-bucketed histogram of non-negative
// nanosecond values. Observe is wait-free (one bits.Len64 and three atomic
// adds, no allocation); Snapshot can be taken from any goroutine while
// writers proceed. Snapshots merge by addition, so per-node histograms
// combine into fleet-wide distributions exactly.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Observe records one nanosecond measurement. Negative values clamp to zero
// (they can only arise from clock steps on a real node).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Snapshot copies the histogram's current state. The copy is not an atomic
// cut across buckets — writers may land between bucket reads — but every
// recorded value is eventually visible and the drift is bounded by the
// in-flight writes, which is the right trade for a no-stop reader.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Snapshot is a point-in-time copy of a Histogram, mergeable by addition.
type Snapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     int64 // nanoseconds
}

// Merge adds o into s.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// BucketBound returns bucket i's inclusive upper bound in seconds
// (2^i - 1 nanoseconds; bucket 0 is the zero bucket).
func BucketBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)-1) / 1e9
}

// BucketFromBound inverts BucketBound for a bound expressed in seconds,
// tolerating float rounding: it returns the bucket whose bound is nearest.
// ok is false for bounds that match no bucket (off by more than rounding).
func BucketFromBound(sec float64) (int, bool) {
	if sec <= 0 {
		return 0, sec == 0
	}
	if math.IsInf(sec, 1) {
		return NumBuckets - 1, true
	}
	i := int(math.Round(math.Log2(sec * 1e9)))
	for _, c := range [3]int{i, i + 1, i - 1} {
		if c > 0 && c < NumBuckets-1 {
			b := BucketBound(c)
			if math.Abs(b-sec) <= 1e-9*math.Max(1, b) {
				return c, true
			}
		}
	}
	return 0, false
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds, interpolating
// linearly within the containing power-of-two bucket. Returns 0 on an empty
// snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := float64(uint64(1) << uint(i-1))
		hi := 2 * lo
		if i == NumBuckets-1 {
			hi = lo // open-ended top bucket: report its lower edge
		}
		frac := (rank - prev) / float64(c)
		return (lo + frac*(hi-lo)) / 1e9
	}
	return BucketBound(NumBuckets - 2)
}

// Mean returns the mean recorded value in seconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count) / 1e9
}

// Bounds returns the trimmed Prometheus exposition of the snapshot: the
// cumulative counts and their upper bounds in seconds, from the first
// non-empty bucket through the last (empty histograms return nil). The
// +Inf bucket is implicit — it always equals Count.
func (s Snapshot) Bounds() (bounds []float64, cum []uint64) {
	lo, hi := -1, -1
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i
	}
	if lo < 0 {
		return nil, nil
	}
	var acc uint64
	for i := lo; i <= hi && i < NumBuckets-1; i++ {
		acc += s.Buckets[i]
		bounds = append(bounds, BucketBound(i))
		cum = append(cum, acc)
	}
	return bounds, cum
}
