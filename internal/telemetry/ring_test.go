package telemetry

import (
	"sync"
	"testing"
)

func TestRingAppendSnapshot(t *testing.T) {
	r := NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	r.Append(EvPollStart, 100, 1, 0, 7, 42, 0, 0)
	r.Append(EvSolicit, 110, 1, 2, 7, 42, 0, 0)
	r.Append(EvConclude, 200, 1, 0, 7, 42, 0, 3)
	ev := r.Snapshot()
	if len(ev) != 3 {
		t.Fatalf("snapshot has %d events: %+v", len(ev), ev)
	}
	for i, e := range ev {
		if e.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if e := ev[1]; e.Kind != "solicit" || e.T != 110 || e.Peer != 1 || e.Other != 2 || e.AU != 7 || e.PollID != 42 {
		t.Errorf("solicit event round trip: %+v", e)
	}
	if e := ev[2]; e.Kind != "conclude" || e.Outcome != 3 {
		t.Errorf("conclude event round trip: %+v", e)
	}
	if r.Appended() != 3 {
		t.Errorf("Appended = %d", r.Appended())
	}
}

func TestRingMinimumSize(t *testing.T) {
	if got := NewRing(1).Cap(); got != 16 {
		t.Errorf("NewRing(1).Cap() = %d, want 16", got)
	}
	if got := NewRing(17).Cap(); got != 32 {
		t.Errorf("NewRing(17).Cap() = %d, want 32 (power of two)", got)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(16)
	const total = 40
	for i := 0; i < total; i++ {
		r.Append(EvVoteOut, int64(i), uint32(i), 0, 1, uint64(i), 0, 0)
	}
	ev := r.Snapshot()
	if len(ev) != 16 {
		t.Fatalf("snapshot has %d events after wraparound, want 16", len(ev))
	}
	for i, e := range ev {
		if e.Seq < total-16 {
			t.Errorf("stale event survived wraparound: seq %d", e.Seq)
		}
		if i > 0 && e.Seq != ev[i-1].Seq+1 {
			t.Errorf("snapshot not dense: seq %d after %d", e.Seq, ev[i-1].Seq)
		}
		// t, peer and pollID were all derived from the append index, so any
		// torn slot would break the correlation.
		if e.T != int64(e.Seq) || uint64(e.Peer) != e.Seq || e.PollID != e.Seq {
			t.Errorf("event fields inconsistent: %+v", e)
		}
	}
	if r.Appended() != total {
		t.Errorf("Appended = %d, want %d", r.Appended(), total)
	}
}

// TestRingConcurrent races a snapshot reader against appending writers —
// the seqlock must keep the reader race-detector-clean and every returned
// event internally consistent.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const writers, per = 4, 5_000
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ev := r.Snapshot()
			for i, e := range ev {
				if i > 0 && e.Seq <= ev[i-1].Seq {
					t.Errorf("snapshot out of order: %d after %d", e.Seq, ev[i-1].Seq)
					return
				}
				if e.T != int64(e.PollID) {
					t.Errorf("torn event: t=%d poll=%d", e.T, e.PollID)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(w*per + i)
				r.Append(EvVoteIn, int64(v), uint32(w), 0, 1, v, 0, 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if r.Appended() != writers*per {
		t.Fatalf("Appended = %d, want %d", r.Appended(), writers*per)
	}
}
