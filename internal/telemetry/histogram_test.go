package telemetry

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

func TestBucketIndexPlacement(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0},
		{-7, 0}, // clamped
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1000, 10},           // 512 <= 1000 < 1024
		{int64(1) << 62, 63}, // clamped into the top bucket
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.ns)
		s := h.Snapshot()
		if s.Buckets[c.bucket] != 1 {
			t.Errorf("Observe(%d): bucket %d empty, snapshot %v", c.ns, c.bucket, s.Buckets)
		}
		if s.Count != 1 {
			t.Errorf("Observe(%d): count %d", c.ns, s.Count)
		}
	}
	var h Histogram
	h.Observe(-5)
	if s := h.Snapshot(); s.Sum != 0 {
		t.Errorf("negative observation summed: %d", s.Sum)
	}
}

func TestBucketBoundRoundTrip(t *testing.T) {
	for i := 0; i < NumBuckets; i++ {
		sec := BucketBound(i)
		got, ok := BucketFromBound(sec)
		if !ok || got != i {
			t.Errorf("BucketFromBound(BucketBound(%d)=%g) = %d, %v", i, sec, got, ok)
		}
		// The exposition formats bounds with 'g'/17; the inverse must survive
		// that round trip too, or fleet merging would misplace every bucket.
		if !math.IsInf(sec, 1) {
			text := strconv.FormatFloat(sec, 'g', 17, 64)
			back, err := strconv.ParseFloat(text, 64)
			if err != nil {
				t.Fatalf("bucket %d bound %q: %v", i, text, err)
			}
			if got, ok := BucketFromBound(back); !ok || got != i {
				t.Errorf("bucket %d: formatted bound %q inverts to %d, %v", i, text, got, ok)
			}
		}
	}
	if _, ok := BucketFromBound(0.123); ok {
		t.Error("BucketFromBound accepted a bound off every bucket")
	}
	if _, ok := BucketFromBound(-1); ok {
		t.Error("BucketFromBound accepted a negative bound")
	}
}

func TestSnapshotMergeQuantileMean(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 900; i++ {
		a.Observe(1000) // bucket 10: [512ns, 1024ns)
	}
	for i := 0; i < 100; i++ {
		b.Observe(1_000_000) // bucket 20: [512us, 1024us)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 1000 || s.Sum != 900*1000+100*1_000_000 {
		t.Fatalf("merged count=%d sum=%d", s.Count, s.Sum)
	}
	if p50 := s.Quantile(0.50); p50 < 512e-9 || p50 > 1024e-9 {
		t.Errorf("p50 = %g, want within bucket [512ns, 1024ns]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 512e-6 || p99 > 1024e-6 {
		t.Errorf("p99 = %g, want within bucket [512us, 1024us]", p99)
	}
	wantMean := float64(900*1000+100*1_000_000) / 1000 / 1e9
	if m := s.Mean(); math.Abs(m-wantMean) > 1e-15 {
		t.Errorf("mean = %g, want %g", m, wantMean)
	}
	if q := (Snapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g", q)
	}
}

func TestBoundsTrimmed(t *testing.T) {
	if b, c := (Snapshot{}).Bounds(); b != nil || c != nil {
		t.Errorf("empty Bounds = %v, %v", b, c)
	}
	var h Histogram
	h.Observe(1000) // bucket 10
	h.Observe(2000) // bucket 11
	bounds, cum := h.Snapshot().Bounds()
	if len(bounds) != 2 || len(cum) != 2 {
		t.Fatalf("Bounds = %v, %v; want the two occupied buckets only", bounds, cum)
	}
	if bounds[0] != BucketBound(10) || bounds[1] != BucketBound(11) {
		t.Errorf("bounds = %v", bounds)
	}
	if cum[0] != 1 || cum[1] != 2 {
		t.Errorf("cumulative = %v", cum)
	}

	// A top-bucket observation has no finite bound: it shows up in Count
	// (the implicit +Inf bucket), never in the exposed bounds.
	var top Histogram
	top.Observe(1 << 62)
	bounds, cum = top.Snapshot().Bounds()
	if len(bounds) != 0 || len(cum) != 0 {
		t.Errorf("top-bucket-only Bounds = %v, %v; want empty", bounds, cum)
	}
	if s := top.Snapshot(); s.Count != 1 {
		t.Errorf("count = %d", s.Count)
	}
}

// TestHistogramConcurrent drives concurrent writers into one histogram while
// a reader snapshots — the wait-free record path under -race.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers, per = 8, 10_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var total uint64
			for _, c := range s.Buckets {
				total += c
			}
			// Bucket adds land before the count add, and a snapshot is not an
			// atomic cut, so bucket totals may run ahead of Count — but never
			// beyond the true number of writes.
			if total > writers*per {
				t.Errorf("snapshot buckets total %d beyond %d writes", total, writers*per)
				return
			}
		}
	}()
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("final count = %d, want %d", s.Count, writers*per)
	}
}
