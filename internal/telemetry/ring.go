package telemetry

import (
	"sort"
	"sync/atomic"
)

// EventKind tags one flight-recorder event.
type EventKind uint8

const (
	// EvPollStart: a poller opened a poll on an AU.
	EvPollStart EventKind = iota
	// EvSolicit: the poller sent (or re-sent) a vote invitation.
	EvSolicit
	// EvVoteIn: the poller accepted a valid vote.
	EvVoteIn
	// EvVoteOut: this node, as a voter, supplied a vote to another poller.
	EvVoteOut
	// EvTally: the poller began evaluating the collected votes.
	EvTally
	// EvRepairReq: the poller asked a voter for a repair block.
	EvRepairReq
	// EvRepair: a repair block was applied to the local replica.
	EvRepair
	// EvConclude: the poll concluded (Other carries the Outcome).
	EvConclude
	// EvAlarm: an inconclusive poll raised the operator alarm.
	EvAlarm
	// EvDamage: the scrubber marked a local block damaged.
	EvDamage
)

func (k EventKind) String() string {
	switch k {
	case EvPollStart:
		return "poll-start"
	case EvSolicit:
		return "solicit"
	case EvVoteIn:
		return "vote-in"
	case EvVoteOut:
		return "vote-out"
	case EvTally:
		return "tally"
	case EvRepairReq:
		return "repair-req"
	case EvRepair:
		return "repair"
	case EvConclude:
		return "conclude"
	case EvAlarm:
		return "alarm"
	case EvDamage:
		return "damage"
	}
	return "unknown"
}

// Event is one flight-recorder entry. Peer is the acting peer, Other the
// counterpart (voter for solicit/vote-in/repair-req, poller for vote-out;
// zero when there is none). Outcome is protocol.Outcome for EvConclude.
type Event struct {
	Seq     uint64 `json:"seq"`
	T       int64  `json:"t_ns"`
	Kind    string `json:"kind"`
	Peer    uint32 `json:"peer"`
	Other   uint32 `json:"other,omitempty"`
	AU      uint32 `json:"au"`
	PollID  uint64 `json:"poll_id,omitempty"`
	Block   int32  `json:"block,omitempty"`
	Outcome uint8  `json:"outcome,omitempty"`
	kind    EventKind
}

// ringSlot packs one event into atomic words so a reader can race writers
// without locks or torn reads flagged by the race detector. ver is a
// seqlock: odd = write in progress, (idx+1)<<1 = slot holds write index idx.
type ringSlot struct {
	ver     atomic.Uint64
	t       atomic.Int64
	poll    atomic.Uint64
	peers   atomic.Uint64 // peer<<32 | other
	auBlock atomic.Uint64 // au<<32 | uint32(block)
	ko      atomic.Uint64 // kind<<8 | outcome
}

// Ring is the flight recorder: a fixed-size, allocation-free ring of Events.
// Appends are wait-free with respect to readers; Snapshot never blocks a
// writer (a concurrently overwritten slot is simply dropped from the
// snapshot). Two writers landing on the same slot in one wrap-around could
// in principle interleave, but at the default size that requires one writer
// to stall for a full ring worth of events.
type Ring struct {
	slots []ringSlot
	mask  uint64
	next  atomic.Uint64
}

// NewRing returns a ring holding the last `size` events (rounded up to a
// power of two, minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]ringSlot, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Appended returns the total number of events ever appended.
func (r *Ring) Appended() uint64 { return r.next.Load() }

// Append records one event, overwriting the oldest when full.
func (r *Ring) Append(kind EventKind, t int64, peer, other, au uint32, pollID uint64, block int32, outcome uint8) {
	idx := r.next.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.ver.Store(idx<<1 | 1)
	s.t.Store(t)
	s.poll.Store(pollID)
	s.peers.Store(uint64(peer)<<32 | uint64(other))
	s.auBlock.Store(uint64(au)<<32 | uint64(uint32(block)))
	s.ko.Store(uint64(kind)<<8 | uint64(outcome))
	s.ver.Store((idx + 1) << 1)
}

// Snapshot returns the ring's current contents, oldest first. Slots being
// overwritten while the snapshot runs are skipped; everything else is a
// consistent event.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		v1 := s.ver.Load()
		if v1 == 0 || v1&1 == 1 {
			continue // never written, or mid-write
		}
		t := s.t.Load()
		poll := s.poll.Load()
		peers := s.peers.Load()
		auBlock := s.auBlock.Load()
		ko := s.ko.Load()
		if s.ver.Load() != v1 {
			continue // overwritten while copying
		}
		k := EventKind(ko >> 8)
		out = append(out, Event{
			Seq:     v1>>1 - 1,
			T:       t,
			Kind:    k.String(),
			kind:    k,
			Peer:    uint32(peers >> 32),
			Other:   uint32(peers),
			AU:      uint32(auBlock >> 32),
			PollID:  poll,
			Block:   int32(uint32(auBlock)),
			Outcome: uint8(ko),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
