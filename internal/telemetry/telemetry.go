package telemetry

import (
	"sync"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

// Defaults for the recorder's fixed-size buffers.
const (
	defaultRingSize   = 4096
	defaultRecentSize = 512
	defaultVotesSize  = 1024
)

// PollSpan is the aggregated lifecycle of one poll as seen by its initiator:
// every timestamp is on the recording node's clock (virtual time under the
// simulator, wall UnixNano on a real node).
type PollSpan struct {
	PollID      uint64 `json:"poll_id"`
	Peer        uint32 `json:"peer"`
	AU          uint32 `json:"au"`
	StartedNs   int64  `json:"started_ns"`
	ConcludedNs int64  `json:"concluded_ns,omitempty"`
	DurationNs  int64  `json:"duration_ns,omitempty"`
	// Outcome is empty while the poll is in flight.
	Outcome  string `json:"outcome,omitempty"`
	Solicits int    `json:"solicits"`
	Votes    int    `json:"votes"`
	Repairs  int    `json:"repairs"`
	TallyNs  int64  `json:"tally_ns,omitempty"`
}

// VoteRecord is one vote this node supplied to another poller's poll — the
// voter-side half that a fleet-level timeline joins to the initiator's
// PollSpan by PollID.
type VoteRecord struct {
	PollID uint64 `json:"poll_id"`
	Voter  uint32 `json:"voter"`
	Poller uint32 `json:"poller"`
	AU     uint32 `json:"au"`
	TNs    int64  `json:"t_ns"`
}

// pollAgg is the in-flight accumulator behind one PollSpan.
type pollAgg struct {
	span        PollSpan
	tallyAt     sched.Time
	repairReqAt sched.Time
}

// Telemetry is one node's always-on recorder. It implements
// protocol.Observer and protocol.SpanObserver, so it attaches to a peer via
// protocol.TeeObserver next to whatever observer the embedding layer already
// uses. The histograms are wait-free; the span table takes a short mutex on
// poll-lifecycle events only (a handful per poll, never per message).
type Telemetry struct {
	// PollDuration: poll start to conclusion, per concluded poll.
	PollDuration Histogram
	// SolicitToVote: invitation sent to valid vote accepted, per vote.
	SolicitToVote Histogram
	// TallyTime: evaluation start to conclusion (includes repair rounds).
	TallyTime Histogram
	// RepairTime: repair requested to repair applied, per repair.
	RepairTime Histogram
	// QueueWait: transport enqueue to writer dequeue, per frame.
	QueueWait Histogram
	// ScrubPass: duration of one full scrub pass over the store.
	ScrubPass Histogram
	// AdminLatency: admin HTTP handler latency, per request.
	AdminLatency Histogram

	ring *Ring

	mu         sync.Mutex
	inflight   map[uint64]*pollAgg
	recent     []PollSpan // circular; recentNext is the oldest slot
	recentNext int
	recentFull bool
	votes      []VoteRecord
	votesNext  int
	votesFull  bool
	free       []*pollAgg
}

// New returns a Telemetry with the default buffer sizes.
func New() *Telemetry { return NewSized(defaultRingSize, defaultRecentSize) }

// NewSized returns a Telemetry with a flight-recorder ring of ringSize
// events and a concluded-poll table of recentSize spans.
func NewSized(ringSize, recentSize int) *Telemetry {
	if recentSize < 1 {
		recentSize = 1
	}
	return &Telemetry{
		ring:     NewRing(ringSize),
		inflight: make(map[uint64]*pollAgg),
		recent:   make([]PollSpan, 0, recentSize),
		votes:    make([]VoteRecord, 0, defaultVotesSize),
	}
}

// Ring exposes the flight recorder for dumps.
func (t *Telemetry) Ring() *Ring { return t.ring }

// Histograms returns the named histogram families in a stable order,
// matching the /metrics family names (without the lockss_ prefix and
// _seconds suffix).
func (t *Telemetry) Histograms() []struct {
	Name string
	Help string
	H    *Histogram
} {
	return []struct {
		Name string
		Help string
		H    *Histogram
	}{
		{"poll_duration", "Poll start to conclusion.", &t.PollDuration},
		{"solicit_vote", "Vote invitation sent to valid vote accepted.", &t.SolicitToVote},
		{"tally", "Vote evaluation start to poll conclusion (including repair rounds).", &t.TallyTime},
		{"repair", "Repair requested to repair block applied.", &t.RepairTime},
		{"transport_queue_wait", "Outbound frame enqueue to writer dequeue.", &t.QueueWait},
		{"scrub_pass", "One full scrub pass over the store.", &t.ScrubPass},
		{"admin_latency", "Admin HTTP handler latency.", &t.AdminLatency},
	}
}

// getAgg draws a poll accumulator from the freelist; callers hold t.mu.
func (t *Telemetry) getAgg() *pollAgg {
	if k := len(t.free); k > 0 {
		a := t.free[k-1]
		t.free = t.free[:k-1]
		*a = pollAgg{}
		return a
	}
	return &pollAgg{}
}

// PollStarted implements protocol.SpanObserver.
func (t *Telemetry) PollStarted(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	t.ring.Append(EvPollStart, int64(now), uint32(peer), 0, uint32(au), pollID, 0, 0)
	t.mu.Lock()
	a := t.getAgg()
	a.span = PollSpan{PollID: pollID, Peer: uint32(peer), AU: uint32(au), StartedNs: int64(now)}
	t.inflight[pollID] = a
	t.mu.Unlock()
}

// VoteSolicited implements protocol.SpanObserver.
func (t *Telemetry) VoteSolicited(poller, voter ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	t.ring.Append(EvSolicit, int64(now), uint32(poller), uint32(voter), uint32(au), pollID, 0, 0)
	t.mu.Lock()
	if a := t.inflight[pollID]; a != nil {
		a.span.Solicits++
	}
	t.mu.Unlock()
}

// VoteReceived implements protocol.SpanObserver.
func (t *Telemetry) VoteReceived(poller, voter ids.PeerID, au content.AUID, pollID uint64, solicitedAt, now sched.Time) {
	t.SolicitToVote.Observe(int64(now - solicitedAt))
	t.ring.Append(EvVoteIn, int64(now), uint32(poller), uint32(voter), uint32(au), pollID, 0, 0)
	t.mu.Lock()
	if a := t.inflight[pollID]; a != nil {
		a.span.Votes++
	}
	t.mu.Unlock()
}

// TallyStarted implements protocol.SpanObserver.
func (t *Telemetry) TallyStarted(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	t.ring.Append(EvTally, int64(now), uint32(peer), 0, uint32(au), pollID, 0, 0)
	t.mu.Lock()
	if a := t.inflight[pollID]; a != nil {
		a.tallyAt = now
		a.span.TallyNs = int64(now)
	}
	t.mu.Unlock()
}

// RepairRequested implements protocol.SpanObserver.
func (t *Telemetry) RepairRequested(poller, voter ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	t.ring.Append(EvRepairReq, int64(now), uint32(poller), uint32(voter), uint32(au), pollID, int32(block), 0)
	t.mu.Lock()
	if a := t.inflight[pollID]; a != nil {
		a.repairReqAt = now
	}
	t.mu.Unlock()
}

// RepairApplied implements protocol.Observer.
func (t *Telemetry) RepairApplied(peer ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	t.ring.Append(EvRepair, int64(now), uint32(peer), 0, uint32(au), pollID, int32(block), 0)
	t.mu.Lock()
	if a := t.inflight[pollID]; a != nil {
		a.span.Repairs++
		if a.repairReqAt != 0 {
			t.RepairTime.Observe(int64(now - a.repairReqAt))
			a.repairReqAt = 0
		}
	}
	t.mu.Unlock()
}

// PollConcluded implements protocol.Observer: it closes the span, records
// the poll-duration (and tally-time) samples, and retires the span to the
// recent table.
func (t *Telemetry) PollConcluded(peer ids.PeerID, au content.AUID, pollID uint64, outcome protocol.Outcome, started, now sched.Time) {
	t.PollDuration.Observe(int64(now - started))
	t.ring.Append(EvConclude, int64(now), uint32(peer), 0, uint32(au), pollID, 0, uint8(outcome))
	t.mu.Lock()
	a := t.inflight[pollID]
	if a == nil {
		// Poll started before the recorder attached: synthesize the span
		// from the conclusion event alone.
		a = t.getAgg()
		a.span = PollSpan{PollID: pollID, Peer: uint32(peer), AU: uint32(au), StartedNs: int64(started)}
	} else {
		delete(t.inflight, pollID)
	}
	if a.tallyAt != 0 {
		t.TallyTime.Observe(int64(now - a.tallyAt))
	}
	a.span.ConcludedNs = int64(now)
	a.span.DurationNs = int64(now - started)
	a.span.Outcome = outcome.String()
	t.pushRecent(a.span)
	t.free = append(t.free, a)
	t.mu.Unlock()
}

// Alarm implements protocol.Observer.
func (t *Telemetry) Alarm(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	t.ring.Append(EvAlarm, int64(now), uint32(peer), 0, uint32(au), pollID, 0, 0)
}

// VoteSupplied implements protocol.Observer (the voter side).
func (t *Telemetry) VoteSupplied(voter, poller ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	t.ring.Append(EvVoteOut, int64(now), uint32(voter), uint32(poller), uint32(au), pollID, 0, 0)
	t.mu.Lock()
	v := VoteRecord{PollID: pollID, Voter: uint32(voter), Poller: uint32(poller), AU: uint32(au), TNs: int64(now)}
	if len(t.votes) < cap(t.votes) {
		t.votes = append(t.votes, v)
	} else {
		t.votes[t.votesNext] = v
		t.votesNext = (t.votesNext + 1) % cap(t.votes)
		t.votesFull = true
	}
	t.mu.Unlock()
}

// DamageNoticed records a scrub-detected damage event in the flight
// recorder (wired from the node's scrub OnDamage path).
func (t *Telemetry) DamageNoticed(peer ids.PeerID, au content.AUID, block int, now sched.Time) {
	t.ring.Append(EvDamage, int64(now), uint32(peer), 0, uint32(au), 0, int32(block), 0)
}

// pushRecent appends a concluded span to the circular table; callers hold
// t.mu.
func (t *Telemetry) pushRecent(s PollSpan) {
	if len(t.recent) < cap(t.recent) {
		t.recent = append(t.recent, s)
		return
	}
	t.recent[t.recentNext] = s
	t.recentNext = (t.recentNext + 1) % cap(t.recent)
	t.recentFull = true
}

// Polls returns the recently concluded poll spans, oldest first, followed by
// the currently in-flight spans (empty Outcome).
func (t *Telemetry) Polls() []PollSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PollSpan, 0, len(t.recent)+len(t.inflight))
	if t.recentFull {
		out = append(out, t.recent[t.recentNext:]...)
		out = append(out, t.recent[:t.recentNext]...)
	} else {
		out = append(out, t.recent...)
	}
	for _, a := range t.inflight {
		out = append(out, a.span)
	}
	return out
}

// Votes returns the recently supplied voter-side votes, oldest first.
func (t *Telemetry) Votes() []VoteRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]VoteRecord, 0, len(t.votes))
	if t.votesFull {
		out = append(out, t.votes[t.votesNext:]...)
		out = append(out, t.votes[:t.votesNext]...)
	} else {
		out = append(out, t.votes...)
	}
	return out
}

var (
	_ protocol.Observer     = (*Telemetry)(nil)
	_ protocol.SpanObserver = (*Telemetry)(nil)
)
