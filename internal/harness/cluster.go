// Package harness runs paper scenarios against either execution stack — the
// discrete-event simulator or a cluster of real in-process nodes (loopback
// TCP transport, per-node on-disk stores) — behind one Backend interface,
// producing the same experiment.RunStats and metrics tables either way. It
// is the sim/real convergence layer: the cross-validation tests score the
// production node stack on the same scenarios the paper's figures use.
package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/experiment"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/store"
	"lockss/internal/world"
)

// ClusterConfig shapes the real-node backend: everything about cluster
// execution that a world.Config does not specify.
type ClusterConfig struct {
	// Dir is the root of the per-node store data directories; empty means a
	// fresh temporary directory, removed after the run.
	Dir string
	// TimeScale is the virtual-to-wall compression factor K: a virtual
	// horizon of D runs for D/K of wall time, and wall-clock metric times
	// are scaled by K back into virtual time. The protocol itself is NOT
	// rescaled — pass a demo-compressed protocol.Config in the world config
	// and a matching TimeScale. Default 1 (the config's durations run in
	// real time).
	TimeScale float64
	// MBF parameterizes the real effort proofs; the zero value selects
	// small, test-sized parameters.
	MBF effort.MBFParams
	// EffortUnit is the effort-seconds one MBF walk stands for. Default 0.05.
	EffortUnit effort.Seconds
	// ScrubPace is the pause between scrubbed blocks. Default 100ms.
	ScrubPace time.Duration
	// MaxNodes caps the cluster size (each node is threads, sockets and a
	// store). Default 16.
	MaxNodes int
	// MaxAUBytes caps per-AU content size. Default 16 MiB.
	MaxAUBytes int64
	// Logf, if non-nil, receives node diagnostics.
	Logf func(format string, args ...any)
}

// withDefaults fills the zero values.
func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.MBF.TableWords == 0 {
		c.MBF = effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7}
	}
	if c.EffortUnit <= 0 {
		c.EffortUnit = 0.05
	}
	if c.ScrubPace <= 0 {
		c.ScrubPace = 100 * time.Millisecond
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 16
	}
	if c.MaxAUBytes <= 0 {
		c.MaxAUBytes = 16 << 20
	}
	return c
}

// RunCluster executes one attack-free world configuration on a cluster of
// real nodes and extracts the same RunStats the simulator produces. The
// population bootstrap (friends lists, reference lists, replica salts,
// acquaintance seeding) mirrors world.New's derivation from cfg.Seed, so the
// two backends audit topologically equivalent populations.
func RunCluster(ctx context.Context, cfg world.Config, ccfg ClusterConfig) (experiment.RunStats, error) {
	ccfg = ccfg.withDefaults()
	if err := validateClusterConfig(cfg, ccfg); err != nil {
		return experiment.RunStats{}, err
	}

	dir := ccfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "lockss-harness-")
		if err != nil {
			return experiment.RunStats{}, err
		}
		dir = tmp
		defer os.RemoveAll(tmp)
	}

	root := prng.New(cfg.Seed)
	bootRnd := root.Child("bootstrap")

	specs := make([]content.AUSpec, cfg.AUs)
	for i := range specs {
		specs[i] = content.AUSpec{
			ID:        content.AUID(i + 1),
			Name:      fmt.Sprintf("au-%03d", i+1),
			Size:      cfg.AUSize,
			BlockSize: cfg.Protocol.BlockSize,
		}
	}

	costs := effort.DefaultCostModel()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	if cfg.HashBytesPerSec > 0 {
		costs.HashBytesPerSec = cfg.HashBytesPerSec
	}

	coll := newLockedCollector(cfg.Peers * cfg.AUs)

	nodes := make([]*node.Node, 0, cfg.Peers)
	stores := make([]*store.Store, 0, cfg.Peers)
	started := 0
	defer func() {
		for _, n := range nodes[:started] {
			n.Stop() // closes its store
		}
		for _, st := range stores[started:] {
			st.Close()
		}
	}()

	// Mirror world.New's assembly order exactly — nodes, then friends, then
	// replicas and reference lists — so bootRnd yields the same samples.
	for i := 0; i < cfg.Peers; i++ {
		st, err := store.Open(filepath.Join(dir, fmt.Sprintf("node-%03d", i+1)))
		if err != nil {
			return experiment.RunStats{}, err
		}
		stores = append(stores, st)
		n, err := node.New(node.Config{
			ID:         world.PeerIDOf(i),
			Listen:     "127.0.0.1:0",
			Protocol:   cfg.Protocol,
			Costs:      costs,
			MBF:        ccfg.MBF,
			EffortUnit: ccfg.EffortUnit,
			Seed:       cfg.Seed,
			Observer:   coll,
			Logf:       ccfg.Logf,
			Store:      st,
			ScrubPace:  ccfg.ScrubPace,
		})
		if err != nil {
			return experiment.RunStats{}, err
		}
		nodes = append(nodes, n)
	}
	for i, n := range nodes {
		n.SetFriends(sampleOthers(bootRnd, cfg.Peers, i, cfg.Friends))
	}
	for i, n := range nodes {
		for _, spec := range specs {
			salt := uint64(i+1)<<20 | uint64(spec.ID)
			replica, err := stores[i].Create(spec, salt, content.PublisherBytes(spec))
			if err != nil {
				return experiment.RunStats{}, err
			}
			refs := sampleOthers(bootRnd, cfg.Peers, i, cfg.Protocol.RefListTarget)
			if err := n.AddAU(replica, refs); err != nil {
				return experiment.RunStats{}, err
			}
			coll.RegisterReplica(n.Peer().ID(), spec.ID, replica)
		}
	}
	if cfg.SeedAllEven {
		for i, n := range nodes {
			for _, spec := range specs {
				for j := range nodes {
					if j != i {
						n.Peer().SeedGrade(spec.ID, world.PeerIDOf(j), reputation.Even)
					}
				}
			}
		}
	}

	// t0 precedes every node start, so no observer event maps to a negative
	// cluster-relative time.
	coll.setStart(sched.Time(time.Now().UnixNano()))
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			return experiment.RunStats{}, err
		}
		started++
	}
	for i, n := range nodes {
		addr := n.Addr().String()
		for _, m := range nodes {
			m.SetAddress(world.PeerIDOf(i), addr)
		}
	}

	stopDamage := startClusterDamage(cfg, ccfg, root, nodes, coll)
	defer stopDamage()

	wall := time.Duration(float64(cfg.Duration) / ccfg.TimeScale)
	select {
	case <-time.After(wall):
	case <-ctx.Done():
		return experiment.RunStats{}, ctx.Err()
	}
	stopDamage()

	// Gather effort on each actor loop before stopping (Inspect refuses
	// after Stop).
	var defender effort.Seconds
	for _, n := range nodes {
		n.Inspect(func(p *protocol.Peer) { defender += p.Ledger().Total })
	}
	for _, n := range nodes {
		n.Stop()
	}
	started = 0 // the deferred sweep must not re-stop (idempotent anyway)

	coll.Finalize(sched.Time(time.Now().UnixNano()))
	return coll.stats(ccfg.TimeScale, defender), nil
}

// validateClusterConfig guards against configurations that only make sense
// in the simulator (hundred-peer populations, gigabyte AUs, year horizons).
func validateClusterConfig(cfg world.Config, ccfg ClusterConfig) error {
	if err := cfg.Protocol.Validate(); err != nil {
		return err
	}
	if cfg.Peers <= cfg.Protocol.Quorum {
		return fmt.Errorf("harness: population %d cannot sustain quorum %d", cfg.Peers, cfg.Protocol.Quorum)
	}
	if cfg.Peers > ccfg.MaxNodes {
		return fmt.Errorf("harness: %d nodes exceeds the cluster cap %d (override the scenario config down to cluster scale)", cfg.Peers, ccfg.MaxNodes)
	}
	if cfg.AUs <= 0 {
		return fmt.Errorf("harness: need at least one AU")
	}
	if cfg.AUSize > ccfg.MaxAUBytes {
		return fmt.Errorf("harness: AU size %d exceeds the cluster cap %d bytes", cfg.AUSize, ccfg.MaxAUBytes)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("harness: need a positive horizon")
	}
	if wall := time.Duration(float64(cfg.Duration) / ccfg.TimeScale); wall > 10*time.Minute {
		return fmt.Errorf("harness: horizon %v runs for %v of wall time; compress the config or raise TimeScale", time.Duration(cfg.Duration), wall)
	}
	return nil
}

// sampleOthers mirrors world.New's bootstrap sampling: n distinct peers
// excluding self, drawn from rnd exactly as the simulator draws them.
func sampleOthers(rnd *prng.Source, peers, self, n int) []ids.PeerID {
	if n > peers-1 {
		n = peers - 1
	}
	out := make([]ids.PeerID, 0, n)
	for _, j := range rnd.Sample(peers, n+1) {
		if j != self && len(out) < n {
			out = append(out, world.PeerIDOf(j))
		}
	}
	return out
}

// startClusterDamage runs the simulator's storage-damage Poisson process
// against the cluster in wall time: same per-peer randomness streams, with
// the virtual mean gap compressed by TimeScale. Damage is applied on the
// owning node's actor loop (via Inspect), so replica access never races the
// protocol. The returned stop function is idempotent and waits for the
// drivers to exit.
func startClusterDamage(cfg world.Config, ccfg ClusterConfig, root *prng.Source, nodes []*node.Node, coll *lockedCollector) func() {
	if cfg.DamageDiskYears <= 0 {
		return func() {}
	}
	perDisk := cfg.AUsPerDisk
	if perDisk <= 0 {
		perDisk = 50
	}
	disks := (cfg.AUs + perDisk - 1) / perDisk
	ratePerYear := float64(disks) / cfg.DamageDiskYears
	meanGapWall := float64(sim.Year) / ratePerYear / ccfg.TimeScale

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node.Node) {
			defer wg.Done()
			rnd := root.ChildN("damage", i)
			for {
				gap := time.Duration(rnd.ExpFloat64(meanGapWall))
				select {
				case <-time.After(gap):
				case <-stop:
					return
				}
				n.Inspect(func(p *protocol.Peer) {
					aus := p.AUs()
					if len(aus) == 0 {
						return
					}
					au := aus[rnd.Intn(len(aus))]
					replica := p.Replica(au)
					block := rnd.Intn(replica.Spec().Blocks())
					replica.Damage(block)
					coll.OnDamage(p.ID(), au, sched.Time(time.Now().UnixNano()))
				})
			}
		}(i, n)
	}
	var once sync.Once
	return func() {
		once.Do(func() { close(stop) })
		wg.Wait()
	}
}
