package harness

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/experiment"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// demoProtocolConfig compresses the protocol's preservation timescales to
// sub-second units so an audit-and-repair round completes inside a test.
// (Kept in sync with the node package's internal demo configuration.)
func demoProtocolConfig() protocol.Config {
	cfg := protocol.DefaultConfig()
	cfg.Quorum = 3
	cfg.InnerCircle = 5
	cfg.MaxDisagree = 1
	cfg.OuterCircle = 2
	cfg.Nominations = 3
	cfg.PollInterval = 1500 * time.Millisecond
	cfg.VoteWindow = 700 * time.Millisecond
	cfg.AckTimeout = 250 * time.Millisecond
	cfg.ProofTimeout = 150 * time.Millisecond
	cfg.VoteSlack = 300 * time.Millisecond
	cfg.ReceiptSlack = 500 * time.Millisecond
	cfg.RepairTimeout = 400 * time.Millisecond
	cfg.Refractory = 200 * time.Millisecond
	cfg.GradeDecay = time.Hour
	cfg.FrivolousRepairProb = 0
	cfg.RefListTarget = 5
	cfg.RefListMax = 8
	cfg.ConsiderBurst = 64
	cfg.BlockSize = 32 << 10
	return cfg
}

// demoCosts makes effort scheduling negligible against the compressed
// timescales while remaining non-zero.
func demoCosts() effort.CostModel {
	m := effort.DefaultCostModel()
	m.HashBytesPerSec = 64 << 30
	m.SessionSetup = 1e-6
	m.ScheduleCheck = 1e-6
	m.ReceiptCheck = 1e-6
	return m
}

// demoMBF is the small proof parameterization every cluster test uses.
func demoMBF() effort.MBFParams {
	return effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7}
}

// countObserver tallies protocol events thread-safely.
type countObserver struct {
	mu        sync.Mutex
	succeeded int
	other     int
	repairs   int
}

func (o *countObserver) PollConcluded(p ids.PeerID, au content.AUID, pollID uint64, out protocol.Outcome, started, now sched.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if out == protocol.OutcomeSuccess {
		o.succeeded++
	} else {
		o.other++
	}
}
func (o *countObserver) Alarm(ids.PeerID, content.AUID, uint64, sched.Time) {}
func (o *countObserver) RepairApplied(p ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.repairs++
}
func (o *countObserver) VoteSupplied(ids.PeerID, ids.PeerID, content.AUID, uint64, sched.Time) {}

func (o *countObserver) snapshot() (succ, other, repairs int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.succeeded, o.other, o.repairs
}

// demoOverride shrinks a scenario's paper-scale configuration to cluster
// scale: six nodes, one small AU, demo-compressed protocol timescales, and a
// damage process fast enough to exercise repair inside the horizon. The
// sweep axis has already applied to cfg.Protocol, so the toggles the axes
// touch are preserved across the wholesale protocol replacement.
func demoOverride(horizon time.Duration) func(*world.Config) {
	return func(cfg *world.Config) {
		p := demoProtocolConfig()
		p.Introductions = cfg.Protocol.Introductions
		p.Desynchronize = cfg.Protocol.Desynchronize
		cfg.Protocol = p
		costs := demoCosts()
		cfg.Costs = &costs
		cfg.HashBytesPerSec = 0
		cfg.Seed = 12345
		cfg.Peers = 6
		cfg.AUs = 1
		cfg.AUSize = 128 << 10
		cfg.Friends = 3
		cfg.AUsPerDisk = 1
		// Mean silent-damage gap per node ≈ 6 wall seconds.
		cfg.DamageDiskYears = 6 * float64(time.Second) / float64(sim.Year)
		cfg.SeedAllEven = true
		cfg.Duration = sim.Duration(horizon)
	}
}

// TestCrossValidationIntroductions is the sim/real convergence test: the
// registered ablation-introductions scenario runs on both backends with the
// identical cluster-scale configuration, and the resulting health metrics
// must agree within loose tolerances. The simulator models an idealized
// network; the cluster runs real TCP, real stores and real MBF proofs — so
// the comparison checks orders of magnitude and signs, not decimals.
func TestCrossValidationIntroductions(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	s, ok := experiment.Lookup("ablation-introductions")
	if !ok {
		t.Fatal("scenario ablation-introductions not registered")
	}
	o := experiment.Options{Scale: experiment.ScaleTiny, Seeds: 1}
	override := demoOverride(12 * time.Second)
	ctx := context.Background()

	simRes, err := RunScenario(ctx, s, o, &SimBackend{BaselineOnly: true}, override)
	if err != nil {
		t.Fatalf("sim backend: %v", err)
	}
	cluRes, err := RunScenario(ctx, s, o, &ClusterBackend{}, override)
	if err != nil {
		t.Fatalf("cluster backend: %v", err)
	}

	if len(simRes.Points) != len(cluRes.Points) || len(simRes.Points) == 0 {
		t.Fatalf("point counts differ: sim %d, cluster %d", len(simRes.Points), len(cluRes.Points))
	}
	for i := range simRes.Points {
		ss := simRes.Points[i].Stats
		cs := cluRes.Points[i].Stats
		label := s.Axes[0].Format(simRes.Points[i].Point.At(0))
		t.Logf("introductions=%s sim:  polls-ok=%.0f/%.0f afp=%.3f repairs=%.0f",
			label, ss.SuccessfulPolls, ss.TotalPolls, ss.AccessFailure, ss.RepairsFixed)
		t.Logf("introductions=%s real: polls-ok=%.0f/%.0f afp=%.3f repairs=%.0f",
			label, cs.SuccessfulPolls, cs.TotalPolls, cs.AccessFailure, cs.RepairsFixed)

		if ss.SuccessfulPolls == 0 {
			t.Errorf("point %d: simulator completed no successful polls", i)
		}
		if cs.SuccessfulPolls == 0 {
			t.Errorf("point %d: cluster completed no successful polls", i)
		}
		if ss.SuccessfulPolls > 0 && cs.SuccessfulPolls > 0 {
			ratio := cs.SuccessfulPolls / ss.SuccessfulPolls
			if ratio < 0.2 || ratio > 5 {
				t.Errorf("point %d: poll-rate ratio cluster/sim = %.2f outside [0.2, 5]", i, ratio)
			}
		}
		if d := math.Abs(cs.AccessFailure - ss.AccessFailure); d > 0.25 {
			t.Errorf("point %d: access-failure disagrees by %.3f (sim %.3f, cluster %.3f)",
				i, d, ss.AccessFailure, cs.AccessFailure)
		}
	}

	// Both results render through the same generic table without panicking,
	// comparison columns or not.
	if tab := Table(s, o, simRes); tab == nil || len(tab.Rows) == 0 {
		t.Error("sim result rendered an empty table")
	}
	if tab := Table(s, o, cluRes); tab == nil || len(tab.Rows) == 0 {
		t.Error("cluster result rendered an empty table")
	}
}

// TestClusterBackendRejectsOversizedConfigs pins the guard rails: cluster
// execution refuses paper-scale populations rather than forking a hundred
// OS processes' worth of goroutines.
func TestClusterBackendRejectsOversizedConfigs(t *testing.T) {
	cfg := world.Default() // 100 peers, 50 AUs, 512 MB
	_, err := RunCluster(context.Background(), cfg, ClusterConfig{})
	if err == nil {
		t.Fatal("paper-scale config accepted by the cluster backend")
	}
}

// TestWaitFor pins the condition-poll helper's contract.
func TestWaitFor(t *testing.T) {
	if !WaitFor(time.Second, time.Millisecond, func() bool { return true }) {
		t.Error("immediately-true condition reported false")
	}
	var n int
	if !WaitFor(time.Second, time.Millisecond, func() bool { n++; return n > 3 }) {
		t.Error("eventually-true condition reported false")
	}
	if WaitFor(10*time.Millisecond, time.Millisecond, func() bool { return false }) {
		t.Error("never-true condition reported true")
	}
}
