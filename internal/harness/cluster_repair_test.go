package harness

import (
	"path/filepath"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/reputation"
	"lockss/internal/store"
)

// buildDemoCluster assembles (without starting) an N-node loopback cluster
// over on-disk stores, all preserving one copy of spec, fully meshed with
// Even grades. Per-node customization (taps, observers) goes through mod.
func buildDemoCluster(t *testing.T, n int, spec content.AUSpec, mod func(i int, cfg *node.Config)) (nodes []*node.Node, stores []*store.Store, dirs []string) {
	t.Helper()
	nodes = make([]*node.Node, n)
	stores = make([]*store.Store, n)
	dirs = make([]string, n)
	for i := 0; i < n; i++ {
		dirs[i] = filepath.Join(t.TempDir(), "data")
		st, err := store.Open(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		replica, err := st.Create(spec, uint64(i+1), content.PublisherBytes(spec))
		if err != nil {
			t.Fatal(err)
		}
		cfg := node.Config{
			ID:         ids.PeerID(i + 1),
			Listen:     "127.0.0.1:0",
			Protocol:   demoProtocolConfig(),
			Costs:      demoCosts(),
			MBF:        demoMBF(),
			EffortUnit: 0.05,
			Seed:       uint64(2000 + i),
			Store:      st,
			ScrubPace:  10 * time.Millisecond,
		}
		if mod != nil {
			mod(i, &cfg)
		}
		nd, err := node.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd

		var refs []ids.PeerID
		for j := 0; j < n; j++ {
			if j != i {
				refs = append(refs, ids.PeerID(j+1))
			}
		}
		if err := nd.AddAU(replica, refs); err != nil {
			t.Fatal(err)
		}
		nd.SetFriends(refs)
		for _, r := range refs {
			nd.Peer().SeedGrade(spec.ID, r, reputation.Even)
		}
	}
	return nodes, stores, dirs
}

// startDemoCluster starts every node and exchanges addresses.
func startDemoCluster(t *testing.T, nodes []*node.Node) {
	t.Helper()
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range nodes {
		addr := n.Addr().String()
		for _, m := range nodes {
			m.SetAddress(ids.PeerID(i+1), addr)
		}
	}
}

// TestClusterRepairsDurableStore is the durable-storage acceptance test
// (ported from the node package onto the harness helpers): a real TCP
// cluster whose replicas live in on-disk stores. One node suffers *silent*
// bit rot (injected directly into its block file, manifest untouched); its
// scrubber must find and mark the damage, and the audit protocol must
// confirm it against the other nodes' votes and repair the actual bytes on
// disk — after which the store is reopened from disk and every manifest
// verifies.
func TestClusterRepairsDurableStore(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	const N = 6
	spec := content.AUSpec{ID: 1, Name: "au-durable", Size: 128 << 10, BlockSize: 32 << 10}
	obs := &countObserver{}
	nodes, stores, dirs := buildDemoCluster(t, N, spec, func(i int, cfg *node.Config) {
		cfg.Observer = obs
	})

	// Node 0's disk rots silently at block 2 before the cluster starts:
	// real bits flip in blocks.dat, the manifest still vouches for the old
	// content, and no damage mark exists anywhere.
	if err := stores[0].InjectDamage(spec.ID, 2); err != nil {
		t.Fatal(err)
	}
	if stores[0].Replica(spec.ID).Damaged() {
		t.Fatal("injected damage must be silent")
	}

	startDemoCluster(t, nodes)
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		if !WaitFor(45*time.Second, 100*time.Millisecond, cond) {
			succ, other, repairs := obs.snapshot()
			t.Fatalf("%s did not happen in time (polls ok=%d other=%d repairs=%d, store0 %+v)",
				what, succ, other, repairs, nodes[0].StoreStats())
		}
	}

	// Phase 1: the scrubber finds the silent rot and marks it.
	waitFor("scrub detection", func() bool {
		return nodes[0].StoreStats().BlocksDamaged >= 1
	})

	// Phase 2: polls confirm the damage against the cluster and repair the
	// bytes on disk; the whole store verifies again.
	waitFor("poll-driven repair", func() bool {
		dam := stores[0].VerifyAll()
		return dam == nil && !stores[0].Replica(spec.ID).Damaged()
	})
	if _, _, repairs := obs.snapshot(); repairs == 0 {
		t.Error("no RepairApplied event observed")
	}
	if st := nodes[0].StoreStats(); st.BlocksRepaired == 0 {
		t.Errorf("store counters show no repair: %+v", st)
	}

	// Bounded shutdown with a store to flush: Stop must return promptly and
	// close the store exactly once.
	done := make(chan struct{})
	go func() {
		for _, n := range nodes {
			n.Stop()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Stop with durable stores did not return in time")
	}

	// Durability: reopen every store from disk; every manifest must verify.
	for i, dir := range dirs {
		re, err := store.Open(dir)
		if err != nil {
			t.Fatalf("node %d store not loadable after shutdown: %v", i, err)
		}
		dam := re.VerifyAll()
		if dam != nil {
			t.Errorf("node %d store has damage after repair+shutdown: %v", i, dam)
		}
		re.Close()
	}
}
