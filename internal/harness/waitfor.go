package harness

import "time"

// WaitFor polls cond every interval until it returns true or the deadline
// passes, reporting whether the condition was met. It replaces fixed-sleep
// convergence waits in cluster tests: the wait ends the moment the condition
// holds, and a slow machine gets the full deadline instead of a flake.
func WaitFor(timeout, interval time.Duration, cond func() bool) bool {
	if cond() {
		return true
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if cond() {
				return true
			}
		case <-deadline.C:
			return cond()
		}
	}
}
