package harness

import (
	"math"
	"sync"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/experiment"
	"lockss/internal/ids"
	"lockss/internal/metrics"
	"lockss/internal/protocol"
	"lockss/internal/sched"
	"lockss/internal/sim"
)

// lockedCollector adapts the single-goroutine metrics.Collector to a cluster
// of real nodes: one mutex serializes observer events arriving from every
// node's actor loop, and wall-clock timestamps are rebased to the cluster
// start so the collector's time integrals (which divide by absolute end
// time) measure the run, not the Unix epoch.
type lockedCollector struct {
	mu sync.Mutex
	c  *metrics.Collector
	t0 sched.Time
}

func newLockedCollector(replicas int) *lockedCollector {
	return &lockedCollector{c: metrics.NewCollectorSized(replicas)}
}

// setStart pins the cluster-relative time origin. Call before starting any
// node.
func (l *lockedCollector) setStart(t0 sched.Time) {
	l.mu.Lock()
	l.t0 = t0
	l.mu.Unlock()
}

// rel rebases a wall timestamp; callers hold l.mu.
func (l *lockedCollector) rel(now sched.Time) sched.Time {
	if now < l.t0 {
		return 0
	}
	return now - l.t0
}

// RegisterReplica mirrors metrics.Collector.RegisterReplica.
func (l *lockedCollector) RegisterReplica(peer ids.PeerID, au content.AUID, r content.Replica) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.RegisterReplica(peer, au, r)
}

// OnDamage mirrors metrics.Collector.OnDamage. The caller must already hold
// the replica's owning actor loop (the damage drivers apply damage via
// Inspect), so the collector's replica.Damaged() probe cannot race.
func (l *lockedCollector) OnDamage(peer ids.PeerID, au content.AUID, now sched.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.OnDamage(peer, au, l.rel(now))
}

// PollConcluded implements protocol.Observer.
func (l *lockedCollector) PollConcluded(peer ids.PeerID, au content.AUID, pollID uint64, o protocol.Outcome, started, now sched.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.PollConcluded(peer, au, pollID, o, l.rel(started), l.rel(now))
}

// Alarm implements protocol.Observer.
func (l *lockedCollector) Alarm(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.Alarm(peer, au, pollID, l.rel(now))
}

// RepairApplied implements protocol.Observer.
func (l *lockedCollector) RepairApplied(peer ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.RepairApplied(peer, au, pollID, block, l.rel(now))
}

// VoteSupplied implements protocol.Observer.
func (l *lockedCollector) VoteSupplied(voter, poller ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.VoteSupplied(voter, poller, au, pollID, l.rel(now))
}

// Finalize integrates the tail of the run.
func (l *lockedCollector) Finalize(end sched.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.Finalize(l.rel(end))
}

// stats extracts RunStats, converting wall-denominated times back into
// virtual time by the compression factor K (dimensionless metrics pass
// through unchanged).
func (l *lockedCollector) stats(k float64, defender effort.Seconds) experiment.RunStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s experiment.RunStats
	s.AccessFailure = l.c.AccessFailureProbability()
	if gap, ok := l.c.MeanSuccessInterval(); ok {
		s.MeanSuccessGap = gap * k / float64(sim.Day)
	} else {
		s.MeanSuccessGap = math.Inf(1)
	}
	s.SuccessfulPolls = float64(l.c.SuccessfulPolls())
	s.TotalPolls = float64(l.c.TotalPolls())
	s.DefenderEffort = float64(defender)
	if s.SuccessfulPolls > 0 {
		s.EffortPerPoll = s.DefenderEffort / s.SuccessfulPolls
	}
	s.Alarms = float64(l.c.Alarms)
	s.DamageEvents = float64(l.c.DamageEvents)
	s.RepairsFixed = float64(l.c.RepairsFixed)
	return s
}

var _ protocol.Observer = (*lockedCollector)(nil)
