package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false,
	"re-record the golden trace from a live cluster and rewrite testdata/traces")

const (
	goldenTrace  = "testdata/traces/cluster-repair.trace.jsonl"
	goldenReport = "testdata/traces/cluster-repair.report.golden"
)

// recordClusterTrace runs the standard damaged-node cluster with node 1
// recording, waits for the scrub→audit→repair cycle to complete on the
// recorded node, and returns the serialized trace.
func recordClusterTrace(t *testing.T) []byte {
	const N = 6
	spec := content.AUSpec{ID: 1, Name: "au-trace", Size: 128 << 10, BlockSize: 32 << 10}
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	obs := &countObserver{}
	nodes, stores, _ := buildDemoCluster(t, N, spec, func(i int, cfg *node.Config) {
		if i == 0 {
			cfg.Tap = rec
			cfg.Observer = protocol.TeeObserver(rec, obs)
		} else {
			cfg.Observer = obs
		}
	})

	// Silent rot on the recorded node, before anything runs.
	if err := stores[0].InjectDamage(spec.ID, 2); err != nil {
		t.Fatal(err)
	}

	// The header mirrors node 1's bootstrap exactly as buildDemoCluster
	// performed it: seed 2000+0, salt 1, full-mesh refs, Even grades.
	refs := []ids.PeerID{2, 3, 4, 5, 6}
	grades := make([]trace.GradeRef, len(refs))
	for i, r := range refs {
		grades[i] = trace.GradeRef{Peer: r, Grade: uint8(reputation.Even)}
	}
	hdr := trace.Header{
		Peer:       1,
		Seed:       2000,
		StartT:     time.Now().UnixNano(),
		Protocol:   demoProtocolConfig(),
		Costs:      demoCosts(),
		MBF:        demoMBF(),
		EffortUnit: 0.05,
		Friends:    refs,
		AUs: []trace.AUHeader{{
			ID: spec.ID, Name: spec.Name, Size: spec.Size, BlockSize: spec.BlockSize,
			Salt: 1, Refs: refs, Grades: grades,
		}},
		Injected: []trace.DamageRef{{AU: spec.ID, Block: 2}},
	}
	if err := rec.WriteHeader(hdr); err != nil {
		t.Fatal(err)
	}

	startDemoCluster(t, nodes)
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	if !WaitFor(45*time.Second, 100*time.Millisecond, func() bool {
		dam := stores[0].VerifyAll()
		return dam == nil && !stores[0].Replica(spec.ID).Damaged()
	}) {
		succ, other, repairs := obs.snapshot()
		t.Fatalf("recorded node never repaired (polls ok=%d other=%d repairs=%d)", succ, other, repairs)
	}
	// Grace period so the repairing poll's conclusion (receipt round) lands
	// in the trace; this pads the recording, it gates nothing.
	time.Sleep(2 * time.Second)

	// Stop the recorded node first so its trace ends at a quiet point.
	for _, n := range nodes {
		n.Stop()
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder: %v", err)
	}
	return buf.Bytes()
}

// assertReplayMatches replays raw twice and requires (a) no divergence from
// the recording and (b) byte-identical reports across the two replays.
func assertReplayMatches(t *testing.T, raw []byte) *trace.Result {
	t.Helper()
	tr, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged() {
		t.Fatalf("replay diverged from recording:\n%s", res.Report())
	}
	tr2, err := trace.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := trace.Replay(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report() != res2.Report() {
		t.Fatal("two replays of the same trace produced different reports")
	}
	return res
}

// TestClusterRecordReplayLive is the end-to-end determinism check: record a
// real cluster run (TCP, stores, scrub, MBF proofs), then re-execute the
// recorded node's event stream offline and require identical observable
// behavior — every send, poll outcome, repair and alarm, in order.
func TestClusterRecordReplayLive(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	raw := recordClusterTrace(t)
	res := assertReplayMatches(t, raw)
	if res.Inputs == 0 || len(res.Recorded) == 0 {
		t.Errorf("trace is trivial: %d inputs, %d outputs", res.Inputs, len(res.Recorded))
	}
	var sawRepair bool
	for _, k := range res.Recorded {
		if k == "repair au=1 block=2" {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Errorf("recorded outputs never repaired au 1 block 2: %v", res.Recorded)
	}
}

// TestGoldenTraceReplay replays the committed golden trace and pins the
// replayed poll/repair event sequence byte-for-byte. It needs no cluster and
// runs in the short suite; regenerate the artifacts with -update-golden
// after an intentional protocol change.
func TestGoldenTraceReplay(t *testing.T) {
	if *updateGolden {
		raw := recordClusterTrace(t)
		res := assertReplayMatches(t, raw)
		if err := os.MkdirAll(filepath.Dir(goldenTrace), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTrace, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReport, []byte(res.Report()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes) and %s", goldenTrace, len(raw), goldenReport)
	}
	raw, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatalf("golden trace missing (regenerate with -update-golden): %v", err)
	}
	res := assertReplayMatches(t, raw)
	golden, err := os.ReadFile(goldenReport)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report() != string(golden) {
		t.Errorf("replayed event sequence diverged from the pinned golden report:\n--- got ---\n%s--- want ---\n%s",
			res.Report(), golden)
	}
}
