package harness

import (
	"context"
	"fmt"

	"lockss/internal/experiment"
	"lockss/internal/world"
)

// Backend executes one scenario grid point and returns its structured
// result. The simulator backend runs the point as the experiment package
// always has; the cluster backend runs it on real in-process nodes.
type Backend interface {
	// Name labels the backend in reports.
	Name() string
	// RunPoint executes one grid cell with a driver-prepared configuration.
	RunPoint(ctx context.Context, s *experiment.Scenario, o experiment.Options, cfg world.Config, pt experiment.Point) (experiment.PointResult, error)
}

// SimBackend runs points on the discrete-event simulator.
type SimBackend struct {
	// BaselineOnly strips the scenario's attack and comparison so the run
	// matches what the cluster backend can execute (clusters are
	// attack-free); cross-validation uses it on both sides.
	BaselineOnly bool
	// Engine, if non-nil, schedules the runs; nil lazily creates one engine
	// per backend so baselines memoize across points.
	Engine *experiment.Engine
}

// Name implements Backend.
func (b *SimBackend) Name() string { return "sim" }

// RunPoint implements Backend.
func (b *SimBackend) RunPoint(ctx context.Context, s *experiment.Scenario, o experiment.Options, cfg world.Config, pt experiment.Point) (experiment.PointResult, error) {
	if b.Engine == nil {
		b.Engine = experiment.NewEngine(0)
	}
	run := s
	if b.BaselineOnly {
		sc := *s
		sc.Attack = nil
		sc.Compare = false
		run = &sc
	}
	return run.RunPointOn(ctx, b.Engine, o, pt, cfg)
}

// ClusterBackend runs points on real in-process node clusters. It is
// inherently baseline-only: adversaries install themselves through simulator
// hooks that real nodes do not expose.
type ClusterBackend struct {
	Cluster ClusterConfig
}

// Name implements Backend.
func (b *ClusterBackend) Name() string { return "cluster" }

// RunPoint implements Backend.
func (b *ClusterBackend) RunPoint(ctx context.Context, s *experiment.Scenario, o experiment.Options, cfg world.Config, pt experiment.Point) (experiment.PointResult, error) {
	if s.RunPoint != nil {
		return experiment.PointResult{}, fmt.Errorf("harness: scenario %q has a custom point executor; the cluster backend only runs standard points", s.Name)
	}
	stats, err := RunCluster(ctx, cfg, b.Cluster)
	if err != nil {
		return experiment.PointResult{}, fmt.Errorf("harness: scenario %q point %d: %w", s.Name, pt.Index, err)
	}
	return experiment.PointResult{Point: pt, Stats: stats}, nil
}

// RunScenario executes a registered scenario's full sweep grid on the given
// backend. Points run serially — a cluster is a real workload, and the sim
// engine already parallelizes within a point. override, if non-nil, adjusts
// each point's configuration after the scenario builds it (cross-validation
// uses it to shrink paper-scale populations to cluster scale; the same
// override must go to both backends for the comparison to mean anything).
func RunScenario(ctx context.Context, s *experiment.Scenario, o experiment.Options, b Backend, override func(*world.Config)) (*experiment.Result, error) {
	if s == nil {
		return nil, fmt.Errorf("harness: RunScenario(nil scenario)")
	}
	points, err := s.Points(o)
	if err != nil {
		return nil, err
	}
	res := &experiment.Result{Scenario: s.Name}
	for _, pt := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := s.ConfigAt(o, pt)
		if override != nil {
			override(&cfg)
		}
		pr, err := b.RunPoint(ctx, s, o, cfg, pt)
		if err != nil {
			return nil, err
		}
		pr.Point = pt
		res.Points = append(res.Points, pr)
	}
	return res, nil
}

// Table renders a backend run with the scenario's generic renderer — the
// same table shape for every backend, tolerant of the comparison columns a
// baseline-only backend cannot fill.
func Table(s *experiment.Scenario, o experiment.Options, res *experiment.Result) *experiment.Table {
	return s.GenericTable(o, res)
}
