// Package store is the durable on-disk AU backend: a crash-safe,
// content-addressed, block-oriented store that the real node preserves and
// repairs for real, in place of regenerating synthetic replicas in memory.
//
// On-disk layout, one directory per archival unit under the store root:
//
//	<root>/au-<id>/blocks.dat   raw block bytes, spec.Size total
//	<root>/au-<id>/manifest     versioned, checksummed metadata (below)
//
// The manifest records the AU's shape, the SHA-256 digest of every block as
// ingested from the publisher, and a per-block damage mark (zero = believed
// intact). It is only ever replaced atomically — encode to manifest.tmp,
// fsync, rename over manifest, fsync the directory — so a crash at any
// instant leaves either the old or the new manifest, never a torn one. Block
// data is written and fsynced *before* the manifest that describes it, so
// the invariant a crash preserves is: a block the manifest calls damaged may
// secretly already be healed (the next scrub pass notices and clears the
// mark), but a block the manifest calls intact is never silently wrong
// unless the medium itself rots — which is exactly what scrubbing and the
// audit protocol exist to catch.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"lockss/internal/content"
)

// Manifest format constants.
const (
	manifestMagic   = "LOCKSSM1"
	manifestVersion = 1

	// maxNameLen bounds the AU name field against hostile manifests.
	maxNameLen = 4096
	// maxBlocks matches the wire codec's per-AU block limit.
	maxBlocks = 1 << 22
)

// manifestName and blocksName are the fixed file names inside an AU dir.
const (
	manifestName = "manifest"
	blocksName   = "blocks.dat"
)

// ErrManifestCorrupt reports a manifest whose bytes fail validation —
// truncation, bit flips, bad magic, or an inconsistent geometry.
var ErrManifestCorrupt = errors.New("store: corrupt manifest")

// manifest is the decoded per-AU metadata: the AU's published shape, the
// digest of each block as ingested, and the current damage marks.
type manifest struct {
	spec   content.AUSpec
	salt   uint64
	gen    uint64
	events uint32
	// digests[i] is the SHA-256 of block i's ingested bytes (the partial
	// last block is hashed at its true length).
	digests []content.Hash
	// marks[i] is zero while block i is believed intact, else the damage
	// mark Snapshot reports.
	marks []content.Mark
}

// encode serializes the manifest with a trailing SHA-256 checksum over every
// preceding byte.
func (m *manifest) encode() []byte {
	n := len(m.digests)
	buf := make([]byte, 0, 8+4+4+len(m.spec.Name)+8+8+8+8+4+4+n*40+32)
	buf = append(buf, manifestMagic...)
	buf = binary.BigEndian.AppendUint32(buf, manifestVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.spec.Name)))
	buf = append(buf, m.spec.Name...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.spec.ID))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.spec.Size))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.spec.BlockSize))
	buf = binary.BigEndian.AppendUint64(buf, m.salt)
	buf = binary.BigEndian.AppendUint64(buf, m.gen)
	buf = binary.BigEndian.AppendUint32(buf, m.events)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		buf = append(buf, m.digests[i][:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.marks[i]))
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// decodeManifest parses and validates manifest bytes. Any corruption —
// truncation, a flipped bit anywhere, inconsistent geometry — yields
// ErrManifestCorrupt (wrapped with detail); it never panics and never
// returns a partially-filled manifest.
func decodeManifest(data []byte) (*manifest, error) {
	// The checksum is verified first: it covers every failure mode at once,
	// and the field parsing below then runs on bytes known to be exactly
	// what encode produced (its bounds checks guard against crafted inputs,
	// e.g. a re-checksummed hostile manifest).
	if len(data) < len(manifestMagic)+4+32 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrManifestCorrupt, len(data))
	}
	body, tail := data[:len(data)-32], data[len(data)-32:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrManifestCorrupt)
	}
	if string(body[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrManifestCorrupt)
	}
	r := body[len(manifestMagic):]
	u32 := func() (uint32, bool) {
		if len(r) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(r)
		r = r[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(r) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(r)
		r = r[8:]
		return v, true
	}
	version, ok := u32()
	if !ok || version != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrManifestCorrupt, version)
	}
	nameLen, ok := u32()
	if !ok || nameLen > maxNameLen || int(nameLen) > len(r) {
		return nil, fmt.Errorf("%w: name length %d out of range", ErrManifestCorrupt, nameLen)
	}
	name := string(r[:nameLen])
	r = r[nameLen:]
	m := &manifest{}
	m.spec.Name = name
	id, ok1 := u32()
	size, ok2 := u64()
	blockSize, ok3 := u64()
	salt, ok4 := u64()
	gen, ok5 := u64()
	events, ok6 := u32()
	nblocks, ok7 := u32()
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
		return nil, fmt.Errorf("%w: truncated header", ErrManifestCorrupt)
	}
	m.spec.ID = content.AUID(id)
	m.spec.Size = int64(size)
	m.spec.BlockSize = int64(blockSize)
	m.salt, m.gen, m.events = salt, gen, events
	if m.spec.Size < 0 || m.spec.BlockSize < 0 {
		return nil, fmt.Errorf("%w: negative geometry", ErrManifestCorrupt)
	}
	if nblocks > maxBlocks || int(nblocks) != m.spec.Blocks() {
		return nil, fmt.Errorf("%w: %d block records for a %d-block AU", ErrManifestCorrupt, nblocks, m.spec.Blocks())
	}
	if len(r) != int(nblocks)*40 {
		return nil, fmt.Errorf("%w: %d trailing bytes for %d blocks", ErrManifestCorrupt, len(r), nblocks)
	}
	m.digests = make([]content.Hash, nblocks)
	m.marks = make([]content.Mark, nblocks)
	for i := range m.digests {
		copy(m.digests[i][:], r[:32])
		m.marks[i] = content.Mark(binary.BigEndian.Uint64(r[32:40]))
		r = r[40:]
	}
	return m, nil
}

// writeManifestBytes atomically replaces dir's manifest with pre-encoded
// bytes: write to a temp file, fsync it, rename over the live name, fsync the
// directory. A crash at any point leaves either the previous or the new
// manifest intact. fsyncs, when non-nil, counts the fsync syscalls issued
// (temp file plus directory) for the store's Stats.
func writeManifestBytes(dir string, data []byte, fsyncs *atomic.Uint64) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if fsyncs != nil {
		fsyncs.Add(1)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: replace manifest: %w", err)
	}
	if fsyncs != nil {
		fsyncs.Add(1)
	}
	return syncDir(dir)
}

// writeManifest atomically replaces dir's manifest (uncounted convenience
// wrapper for tests and tools).
func writeManifest(dir string, m *manifest) error {
	return writeManifestBytes(dir, m.encode(), nil)
}

// readManifest loads and validates dir's manifest.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	return m, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems reject fsync on directories; the rename itself is
	// still atomic there, so the error is not fatal to correctness.
	_ = d.Sync()
	return d.Close()
}
