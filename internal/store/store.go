package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lockss/internal/content"
)

// ingestChunk bounds the streaming-ingest copy buffer: CreateFrom never
// holds more than this much AU content in memory, regardless of AU or block
// size.
const ingestChunk = 1 << 20

// Stats counts store activity. All counters are cumulative since Open.
type Stats struct {
	// BlocksScanned is how many blocks the scrubber has read and hashed.
	BlocksScanned uint64
	// BlocksVerified is the subset of scans that matched their manifest
	// digest.
	BlocksVerified uint64
	// BlocksDamaged is how many blocks the scrubber newly marked damaged.
	BlocksDamaged uint64
	// BlocksRepaired is how many marked blocks were healed back to their
	// manifest digest — by an applied repair, or by a scrub pass finding a
	// crash-interrupted repair that had written the bytes but not yet the
	// manifest.
	BlocksRepaired uint64
	// ScrubPasses counts completed full passes over every AU.
	ScrubPasses uint64
	// ManifestMutations counts manifest-state mutations (damage marks,
	// repairs, scrub mark changes, ingests) requested of the store.
	ManifestMutations uint64
	// ManifestWrites counts atomic manifest replacements that reached disk.
	// Under group commit this trails ManifestMutations: mutations coalescing
	// in one commit window share a single replacement.
	ManifestWrites uint64
	// ManifestCommits counts group-commit trains (batches of manifest
	// replacements sharing one flush). Without group commit every write is
	// its own train.
	ManifestCommits uint64
	// Fsyncs counts fsync syscalls the store issued — block files, manifest
	// temp files and directories. The cost group commit amortizes.
	Fsyncs uint64
	// BytesIngested counts content bytes written by Create/CreateFrom.
	BytesIngested uint64
	// BytesScrubbed counts content bytes read and hashed by the scrubber.
	BytesScrubbed uint64
	// DamageInjected counts InjectDamage bit flips.
	DamageInjected uint64
}

// Store is a durable collection of AU replicas rooted at one directory.
// Stores are safe for concurrent use: ingest streams its IO outside the
// store lock, and the node's actor loop and the scrub workers reach replicas
// through per-replica locks.
type Store struct {
	root string
	opts Options

	mu  sync.Mutex
	aus map[content.AUID]*Replica
	// creating reserves AU ids whose ingest is streaming outside the lock,
	// so concurrent CreateFrom calls for one id cannot both write the
	// directory.
	creating map[content.AUID]bool
	order    []content.AUID

	// committer batches manifest flushes; nil with Options.NoGroupCommit,
	// where mutations persist synchronously.
	committer *committer

	scrubStop chan struct{}
	scrubWG   sync.WaitGroup
	// Runtime-tunable scrub knobs (see SetScrubPace / SetScrubBandwidth);
	// scrubBucket is guarded by mu, the knobs are atomics read per block.
	scrubPace   atomic.Int64
	scrubBW     atomic.Int64
	scrubBucket *tokenBucket

	closeOnce sync.Once
	closeErr  error

	blocksScanned     atomic.Uint64
	blocksVerified    atomic.Uint64
	blocksDamaged     atomic.Uint64
	blocksRepaired    atomic.Uint64
	scrubPasses       atomic.Uint64
	manifestMutations atomic.Uint64
	manifestWrites    atomic.Uint64
	manifestCommits   atomic.Uint64
	fsyncs            atomic.Uint64
	bytesIngested     atomic.Uint64
	bytesScrubbed     atomic.Uint64
	damageInjected    atomic.Uint64
}

// Open loads (or creates) a store rooted at dir with default Options.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenWith loads (or creates) a store rooted at dir. Every au-<id>
// subdirectory with a valid manifest is loaded in numeric id order; a
// directory missing its manifest is a crash-interrupted ingest and is
// skipped (re-ingesting the AU overwrites it), but a *corrupt* manifest is
// an error — it means bytes rotted in place, and silently dropping the AU
// would defeat the whole point. An au- directory whose name does not parse
// as a decimal id is rejected explicitly rather than silently loaded or
// skipped: it is either foreign data or corruption of the store root, and
// both deserve an operator's eyes.
func OpenWith(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{
		root:     dir,
		opts:     opts.withDefaults(),
		aus:      make(map[content.AUID]*Replica),
		creating: make(map[content.AUID]bool),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	// AU directories are ordered by parsed numeric id, not by name: auDir
	// zero-pads to 8 digits, so an id >= 10^8 widens the name and a
	// lexicographic sort would diverge from id order across reopen.
	type auDirent struct {
		id   uint64
		name string
	}
	var dirs []auDirent
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "au-") {
			continue
		}
		num := strings.TrimPrefix(e.Name(), "au-")
		id, err := strconv.ParseUint(num, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("store: malformed AU directory name %q in %s", e.Name(), dir)
		}
		dirs = append(dirs, auDirent{id: id, name: e.Name()})
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].id < dirs[j].id })
	// On any failure, close the block files of replicas already loaded —
	// the caller gets no Store to Close, so they would leak.
	closeLoaded := func() {
		for _, r := range s.aus {
			r.close()
		}
	}
	for i, d := range dirs {
		if i > 0 && dirs[i-1].id == d.id {
			// "au-7" and "au-00000007" denote the same AU; loading both
			// would double-register it.
			closeLoaded()
			return nil, fmt.Errorf("store: AU directories %q and %q share id %d in %s", dirs[i-1].name, d.name, d.id, dir)
		}
		auDir := filepath.Join(dir, d.name)
		man, err := readManifest(auDir)
		if os.IsNotExist(err) {
			continue // ingest died before the manifest existed; not an AU yet
		}
		if err != nil {
			closeLoaded()
			return nil, err
		}
		r, err := s.openReplica(auDir, man)
		if err != nil {
			closeLoaded()
			return nil, err
		}
		if _, dup := s.aus[man.spec.ID]; dup {
			r.close()
			closeLoaded()
			return nil, fmt.Errorf("store: duplicate AU %v in %s", man.spec.ID, auDir)
		}
		s.aus[man.spec.ID] = r
		s.order = append(s.order, man.spec.ID)
	}
	if !s.opts.NoGroupCommit {
		s.committer = newCommitter(s, s.opts.CommitInterval)
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// auDir returns the directory for one AU.
func (s *Store) auDir(id content.AUID) string {
	return filepath.Join(s.root, fmt.Sprintf("au-%08d", id))
}

// Create ingests one AU from an in-memory buffer: data is the publisher's
// content for spec (its length must equal spec.Size). It is a thin wrapper
// over CreateFrom for KB-scale callers; anything archive-sized should stream.
func (s *Store) Create(spec content.AUSpec, salt uint64, data []byte) (*Replica, error) {
	if int64(len(data)) != spec.Size {
		return nil, fmt.Errorf("store: AU %v content is %d bytes, spec says %d", spec.ID, len(data), spec.Size)
	}
	return s.CreateFrom(spec, salt, bytes.NewReader(data))
}

// CreateFrom ingests one AU by streaming spec.Size bytes from src: content
// is written and hashed block by block through a bounded buffer, so a
// multi-GB AU never exists in memory. Block bytes are written and fsynced
// before the manifest that vouches for them, so a crash mid-ingest leaves a
// directory without a manifest — invisible to Open — rather than an AU with
// unvouched bytes. The salt individualizes this replica's damage marks.
//
// All IO runs outside the store lock: concurrent Replica lookups, scrubbing
// and other ingests proceed while an AU streams in. The AU id is reserved up
// front, so two concurrent ingests of one id cannot interleave their writes.
func (s *Store) CreateFrom(spec content.AUSpec, salt uint64, src io.Reader) (*Replica, error) {
	if spec.Size < 0 {
		return nil, fmt.Errorf("store: AU %v has negative size %d", spec.ID, spec.Size)
	}
	if len(spec.Name) > maxNameLen {
		return nil, fmt.Errorf("store: AU %v name exceeds %d bytes", spec.ID, maxNameLen)
	}
	if spec.Blocks() > maxBlocks {
		return nil, fmt.Errorf("store: AU %v has %d blocks, limit %d", spec.ID, spec.Blocks(), maxBlocks)
	}
	// Reserve the id under the lock; stream outside it.
	s.mu.Lock()
	if _, dup := s.aus[spec.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: duplicate AU %v", spec.ID)
	}
	if s.creating[spec.ID] {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: AU %v ingest already in progress", spec.ID)
	}
	s.creating[spec.ID] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, spec.ID)
		s.mu.Unlock()
	}()

	dir := s.auDir(spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create AU %v: %w", spec.ID, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, blocksName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create AU %v: %w", spec.ID, err)
	}
	// On failure the directory is left without a manifest — the same state
	// a crash leaves — which Open skips and a re-ingest overwrites.
	fail := func(err error) (*Replica, error) {
		f.Close()
		return nil, err
	}
	n := spec.Blocks()
	man := &manifest{spec: spec, salt: salt, digests: make([]content.Hash, n), marks: make([]content.Mark, n)}
	bufSize := int64(ingestChunk)
	if spec.Size > 0 && spec.Size < bufSize {
		bufSize = spec.Size
	}
	buf := make([]byte, bufSize)
	h := sha256.New()
	var written int64
	for i := 0; i < n; i++ {
		lo, hi := blockRange(spec, i)
		h.Reset()
		for remain := hi - lo; remain > 0; {
			c := int64(len(buf))
			if c > remain {
				c = remain
			}
			if _, err := io.ReadFull(src, buf[:c]); err != nil {
				return fail(fmt.Errorf("store: ingest AU %v: content ends at byte %d of %d: %w", spec.ID, written, spec.Size, err))
			}
			if _, err := f.Write(buf[:c]); err != nil {
				return fail(fmt.Errorf("store: write AU %v: %w", spec.ID, err))
			}
			h.Write(buf[:c])
			remain -= c
			written += c
		}
		h.Sum(man.digests[i][:0])
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("store: sync AU %v: %w", spec.ID, err))
	}
	s.fsyncs.Add(1)
	s.bytesIngested.Add(uint64(written))
	// The manifest write is the ingest's commit point; it is synchronous —
	// group commit batches mutations of live AUs, not births of new ones.
	if err := writeManifestBytes(dir, man.encode(), &s.fsyncs); err != nil {
		return fail(err)
	}
	s.manifestMutations.Add(1)
	s.manifestWrites.Add(1)
	s.manifestCommits.Add(1)
	// The au-<id> dirent itself lives in the store root; sync it too, or a
	// power loss after CreateFrom returns could drop the whole AU directory.
	if err := syncDir(s.root); err != nil {
		return fail(fmt.Errorf("store: sync root for AU %v: %w", spec.ID, err))
	}
	s.fsyncs.Add(1)

	r := &Replica{st: s, dir: dir, f: f, man: man, persistedGen: man.gen}
	s.mu.Lock()
	if _, dup := s.aus[spec.ID]; dup {
		// Defensive re-check; the creating reservation makes this
		// unreachable, but registering a second replica for one id would be
		// far worse than failing an ingest.
		s.mu.Unlock()
		f.Close()
		return nil, fmt.Errorf("store: duplicate AU %v", spec.ID)
	}
	s.aus[spec.ID] = r
	s.order = append(s.order, spec.ID)
	s.mu.Unlock()
	return r, nil
}

// openReplica opens an AU directory already vouched for by man.
func (s *Store) openReplica(dir string, man *manifest) (*Replica, error) {
	f, err := os.OpenFile(filepath.Join(dir, blocksName), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open AU %v: %w", man.spec.ID, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: open AU %v: %w", man.spec.ID, err)
	}
	if fi.Size() != man.spec.Size {
		f.Close()
		return nil, fmt.Errorf("store: AU %v block file is %d bytes, manifest says %d", man.spec.ID, fi.Size(), man.spec.Size)
	}
	return &Replica{st: s, dir: dir, f: f, man: man, persistedGen: man.gen}, nil
}

// Replica returns the store's replica of an AU, or nil.
func (s *Store) Replica(id content.AUID) *Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aus[id]
}

// Replicas returns every replica in registration order.
func (s *Store) Replicas() []*Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Replica, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.aus[id])
	}
	return out
}

// AUs returns the stored AU IDs in registration order.
func (s *Store) AUs() []content.AUID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]content.AUID, len(s.order))
	copy(out, s.order)
	return out
}

// InjectDamage flips bits on disk in one block, bypassing the manifest and
// the damage marks entirely — silent corruption, exactly what decades of
// storage produce. The scrubber (or an audit poll) has to find it the honest
// way. Demos and the corruption-repair CI job drive this through
// `lockss-node -inject-damage`.
func (s *Store) InjectDamage(id content.AUID, block int) error {
	r := s.Replica(id)
	if r == nil {
		return fmt.Errorf("store: no AU %v", id)
	}
	if err := r.injectDamage(block); err != nil {
		return err
	}
	s.damageInjected.Add(1)
	return nil
}

// Damage identifies one damaged or unreadable block found by verification.
type Damage struct {
	AU    content.AUID
	Block int
	// Marked reports whether the manifest already records the damage (a
	// scrub or a failed repair has seen it) or the verification found it
	// silently rotted.
	Marked bool
	// Unreadable reports that the block could not be read at all (Err says
	// why): its bytes cannot be vouched for, which is damage for every
	// practical purpose, reported in place so one unreadable block does not
	// mask rot found elsewhere in the store.
	Unreadable bool
	// Err is the read error for an unreadable block, nil otherwise.
	Err error
}

// VerifyAll reads and hashes every block of every AU against its manifest,
// returning all mismatches. Read errors do not abort the sweep: an
// unreadable block is reported as Damage with Unreadable set and
// verification continues, so the report always covers the whole store. A nil
// slice means everything verifies.
func (s *Store) VerifyAll() []Damage {
	var out []Damage
	for _, r := range s.Replicas() {
		spec := r.Spec()
		var buf []byte
		for i := 0; i < spec.Blocks(); i++ {
			var ok, marked bool
			var err error
			ok, marked, buf, err = r.verifyBlock(i, false, buf)
			if err != nil {
				out = append(out, Damage{AU: spec.ID, Block: i, Marked: marked, Unreadable: true, Err: err})
				continue
			}
			if !ok {
				out = append(out, Damage{AU: spec.ID, Block: i, Marked: marked})
			}
		}
	}
	return out
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		BlocksScanned:     s.blocksScanned.Load(),
		BlocksVerified:    s.blocksVerified.Load(),
		BlocksDamaged:     s.blocksDamaged.Load(),
		BlocksRepaired:    s.blocksRepaired.Load(),
		ScrubPasses:       s.scrubPasses.Load(),
		ManifestMutations: s.manifestMutations.Load(),
		ManifestWrites:    s.manifestWrites.Load(),
		ManifestCommits:   s.manifestCommits.Load(),
		Fsyncs:            s.fsyncs.Load(),
		BytesIngested:     s.bytesIngested.Load(),
		BytesScrubbed:     s.bytesScrubbed.Load(),
		DamageInjected:    s.damageInjected.Load(),
	}
}

// Close stops the scrubber, flushes every dirty manifest through one final
// commit train, then closes every block file. It is idempotent; the first
// error encountered is returned every time.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.StopScrub()
		if s.committer != nil {
			s.committer.close()
		}
		for _, r := range s.Replicas() {
			if err := r.close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// blockRange returns the byte range [lo, hi) of block i within an AU.
func blockRange(spec content.AUSpec, i int) (lo, hi int64) {
	if spec.BlockSize <= 0 {
		return 0, spec.Size
	}
	lo = int64(i) * spec.BlockSize
	hi = lo + spec.BlockSize
	if hi > spec.Size {
		hi = spec.Size
	}
	return lo, hi
}
