package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"lockss/internal/content"
)

// Stats counts store activity. All counters are cumulative since Open.
type Stats struct {
	// BlocksScanned is how many blocks the scrubber has read and hashed.
	BlocksScanned uint64
	// BlocksVerified is the subset of scans that matched their manifest
	// digest.
	BlocksVerified uint64
	// BlocksDamaged is how many blocks the scrubber newly marked damaged.
	BlocksDamaged uint64
	// BlocksRepaired is how many marked blocks were healed back to their
	// manifest digest — by an applied repair, or by a scrub pass finding a
	// crash-interrupted repair that had written the bytes but not yet the
	// manifest.
	BlocksRepaired uint64
	// ScrubPasses counts completed full passes over every AU.
	ScrubPasses uint64
	// ManifestWrites counts atomic manifest replacements.
	ManifestWrites uint64
	// DamageInjected counts InjectDamage bit flips.
	DamageInjected uint64
}

// Store is a durable collection of AU replicas rooted at one directory.
// Stores are safe for concurrent use: the node's actor loop and the
// background scrubber both reach replicas through per-replica locks.
type Store struct {
	root string

	mu    sync.Mutex
	aus   map[content.AUID]*Replica
	order []content.AUID

	scrubStop chan struct{}
	scrubWG   sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	blocksScanned  atomic.Uint64
	blocksVerified atomic.Uint64
	blocksDamaged  atomic.Uint64
	blocksRepaired atomic.Uint64
	scrubPasses    atomic.Uint64
	manifestWrites atomic.Uint64
	damageInjected atomic.Uint64
}

// Open loads (or creates) a store rooted at dir. Every au-* subdirectory
// with a valid manifest is loaded; a directory missing its manifest is a
// crash-interrupted ingest and is skipped (re-ingesting the AU overwrites
// it), but a *corrupt* manifest is an error — it means bytes rotted in
// place, and silently dropping the AU would defeat the whole point.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{root: dir, aus: make(map[content.AUID]*Replica)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) > 3 && e.Name()[:3] == "au-" {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	// On any failure, close the block files of replicas already loaded —
	// the caller gets no Store to Close, so they would leak.
	closeLoaded := func() {
		for _, r := range s.aus {
			r.close()
		}
	}
	for _, name := range dirs {
		auDir := filepath.Join(dir, name)
		man, err := readManifest(auDir)
		if os.IsNotExist(err) {
			continue // ingest died before the manifest existed; not an AU yet
		}
		if err != nil {
			closeLoaded()
			return nil, err
		}
		r, err := s.openReplica(auDir, man)
		if err != nil {
			closeLoaded()
			return nil, err
		}
		if _, dup := s.aus[man.spec.ID]; dup {
			r.close()
			closeLoaded()
			return nil, fmt.Errorf("store: duplicate AU %v in %s", man.spec.ID, auDir)
		}
		s.aus[man.spec.ID] = r
		s.order = append(s.order, man.spec.ID)
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// auDir returns the directory for one AU.
func (s *Store) auDir(id content.AUID) string {
	return filepath.Join(s.root, fmt.Sprintf("au-%08d", id))
}

// Create ingests one AU: data is the publisher's content for spec (its
// length must equal spec.Size). Block bytes are written and fsynced before
// the manifest that vouches for them, so a crash mid-ingest leaves a
// directory without a manifest — invisible to Open — rather than an AU with
// unvouched bytes. The salt individualizes this replica's damage marks.
func (s *Store) Create(spec content.AUSpec, salt uint64, data []byte) (*Replica, error) {
	if int64(len(data)) != spec.Size {
		return nil, fmt.Errorf("store: AU %v content is %d bytes, spec says %d", spec.ID, len(data), spec.Size)
	}
	if len(spec.Name) > maxNameLen {
		return nil, fmt.Errorf("store: AU %v name exceeds %d bytes", spec.ID, maxNameLen)
	}
	if spec.Blocks() > maxBlocks {
		return nil, fmt.Errorf("store: AU %v has %d blocks, limit %d", spec.ID, spec.Blocks(), maxBlocks)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.aus[spec.ID]; dup {
		return nil, fmt.Errorf("store: duplicate AU %v", spec.ID)
	}
	dir := s.auDir(spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create AU %v: %w", spec.ID, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, blocksName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create AU %v: %w", spec.ID, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: write AU %v: %w", spec.ID, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sync AU %v: %w", spec.ID, err)
	}
	n := spec.Blocks()
	man := &manifest{spec: spec, salt: salt, digests: make([]content.Hash, n), marks: make([]content.Mark, n)}
	for i := 0; i < n; i++ {
		lo, hi := blockRange(spec, i)
		man.digests[i] = sha256.Sum256(data[lo:hi])
	}
	if err := writeManifest(dir, man); err != nil {
		f.Close()
		return nil, err
	}
	// The au-<id> dirent itself lives in the store root; sync it too, or a
	// power loss after Create returns could drop the whole AU directory.
	if err := syncDir(s.root); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sync root for AU %v: %w", spec.ID, err)
	}
	s.manifestWrites.Add(1)
	r := &Replica{st: s, dir: dir, f: f, man: man}
	s.aus[spec.ID] = r
	s.order = append(s.order, spec.ID)
	return r, nil
}

// openReplica opens an AU directory already vouched for by man.
func (s *Store) openReplica(dir string, man *manifest) (*Replica, error) {
	f, err := os.OpenFile(filepath.Join(dir, blocksName), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open AU %v: %w", man.spec.ID, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: open AU %v: %w", man.spec.ID, err)
	}
	if fi.Size() != man.spec.Size {
		f.Close()
		return nil, fmt.Errorf("store: AU %v block file is %d bytes, manifest says %d", man.spec.ID, fi.Size(), man.spec.Size)
	}
	return &Replica{st: s, dir: dir, f: f, man: man}, nil
}

// Replica returns the store's replica of an AU, or nil.
func (s *Store) Replica(id content.AUID) *Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aus[id]
}

// Replicas returns every replica in AU-ID registration order.
func (s *Store) Replicas() []*Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Replica, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.aus[id])
	}
	return out
}

// AUs returns the stored AU IDs in registration order.
func (s *Store) AUs() []content.AUID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]content.AUID, len(s.order))
	copy(out, s.order)
	return out
}

// InjectDamage flips bits on disk in one block, bypassing the manifest and
// the damage marks entirely — silent corruption, exactly what decades of
// storage produce. The scrubber (or an audit poll) has to find it the honest
// way. Demos and the corruption-repair CI job drive this through
// `lockss-node -inject-damage`.
func (s *Store) InjectDamage(id content.AUID, block int) error {
	r := s.Replica(id)
	if r == nil {
		return fmt.Errorf("store: no AU %v", id)
	}
	if err := r.injectDamage(block); err != nil {
		return err
	}
	s.damageInjected.Add(1)
	return nil
}

// Damage identifies one damaged block found by verification.
type Damage struct {
	AU    content.AUID
	Block int
	// Marked reports whether the manifest already records the damage (a
	// scrub or a failed repair has seen it) or the verification found it
	// silently rotted.
	Marked bool
}

// VerifyAll reads and hashes every block of every AU against its manifest,
// returning all mismatches. A nil slice with a nil error means the whole
// store verifies.
func (s *Store) VerifyAll() ([]Damage, error) {
	var out []Damage
	for _, r := range s.Replicas() {
		spec := r.Spec()
		for i := 0; i < spec.Blocks(); i++ {
			ok, marked, err := r.verifyBlock(i, false)
			if err != nil {
				return out, err
			}
			if !ok {
				out = append(out, Damage{AU: spec.ID, Block: i, Marked: marked})
			}
		}
	}
	return out, nil
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		BlocksScanned:  s.blocksScanned.Load(),
		BlocksVerified: s.blocksVerified.Load(),
		BlocksDamaged:  s.blocksDamaged.Load(),
		BlocksRepaired: s.blocksRepaired.Load(),
		ScrubPasses:    s.scrubPasses.Load(),
		ManifestWrites: s.manifestWrites.Load(),
		DamageInjected: s.damageInjected.Load(),
	}
}

// Close stops the scrubber, then flushes and closes every block file. It is
// idempotent; the first error encountered is returned every time.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.StopScrub()
		for _, r := range s.Replicas() {
			if err := r.close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// blockRange returns the byte range [lo, hi) of block i within an AU.
func blockRange(spec content.AUSpec, i int) (lo, hi int64) {
	if spec.BlockSize <= 0 {
		return 0, spec.Size
	}
	lo = int64(i) * spec.BlockSize
	hi = lo + spec.BlockSize
	if hi > spec.Size {
		hi = spec.Size
	}
	return lo, hi
}
