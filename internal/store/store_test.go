package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"lockss/internal/content"
)

// The store replica must be a drop-in content.Replica for the node.
var _ content.Replica = (*Replica)(nil)

func testSpec() content.AUSpec {
	return content.AUSpec{ID: 7, Name: "test", Size: 4096, BlockSize: 1024}
}

// newTestStore creates a store with one AU of publisher content.
func newTestStore(t *testing.T, spec content.AUSpec, salt uint64) (*Store, *Replica) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	r, err := s.Create(spec, salt, content.PublisherBytes(spec))
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(spec, 3, content.PublisherBytes(spec)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	r := s2.Replica(spec.ID)
	if r == nil {
		t.Fatal("AU not loaded after reopen")
	}
	if r.Spec() != spec {
		t.Fatalf("spec round trip: %v != %v", r.Spec(), spec)
	}
	if r.Damaged() {
		t.Error("fresh store damaged")
	}
	if dam := s2.VerifyAll(); dam != nil {
		t.Fatalf("fresh store does not verify: %v", dam)
	}
}

// TestVoteHashesMatchRealReplica pins the on-disk replica's votes to the
// in-memory implementation: same publisher content, same nonce, identical
// hashes — the property that lets store-backed and synthetic nodes audit
// each other.
func TestVoteHashesMatchRealReplica(t *testing.T) {
	spec := content.AUSpec{ID: 9, Name: "partial", Size: 2500, BlockSize: 1024}
	_, r := newTestStore(t, spec, 1)
	real := content.NewRealReplica(spec, 2)
	nonce := []byte("poll-nonce")
	a, b := r.VoteHashes(nonce), real.VoteHashes(nonce)
	if len(a) != len(b) {
		t.Fatalf("hash counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vote hash %d differs between store and real replica", i)
		}
	}
}

func TestDamageRepairCycle(t *testing.T) {
	spec := testSpec()
	s, r := newTestStore(t, spec, 1)
	_, supplier := newTestStore(t, spec, 2)

	g0 := r.Generation()
	if r.Damage(99) {
		t.Error("out-of-range damage accepted")
	}
	if !r.Damage(2) {
		t.Fatal("damage failed")
	}
	if !r.Damaged() || r.Generation() == g0 {
		t.Fatal("damage not recorded")
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Block != 2 {
		t.Fatalf("snapshot %v", snap)
	}
	dam := s.VerifyAll()
	if len(dam) != 1 || dam[0].Block != 2 || !dam[0].Marked {
		t.Fatalf("verify after damage: %v", dam)
	}

	data, err := supplier.RepairBlock(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyRepair(2, data); err != nil {
		t.Fatal(err)
	}
	if r.Damaged() {
		t.Error("repair did not clear the mark")
	}
	if dam := s.VerifyAll(); dam != nil {
		t.Fatalf("store does not verify after repair: %v", dam)
	}
	if s.Stats().BlocksRepaired != 1 {
		t.Errorf("BlocksRepaired = %d, want 1", s.Stats().BlocksRepaired)
	}
}

func TestApplyRepairErrors(t *testing.T) {
	spec := testSpec()
	_, r := newTestStore(t, spec, 1)
	if err := r.ApplyRepair(-1, nil); err == nil {
		t.Error("negative block accepted")
	}
	if err := r.ApplyRepair(4, nil); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := r.ApplyRepair(1, []byte("short")); err == nil {
		t.Error("wrong-size repair accepted")
	}
	if _, err := r.RepairBlock(-1); err == nil {
		t.Error("negative RepairBlock accepted")
	}
	if _, err := r.RepairBlock(4); err == nil {
		t.Error("out-of-range RepairBlock accepted")
	}
}

// TestCorruptRepairStaysMarked: repair data endorsed by a poll but different
// from the ingest digest is written (the landslide outranks local history)
// yet the block stays marked, so audits keep pursuing it.
func TestCorruptRepairStaysMarked(t *testing.T) {
	spec := testSpec()
	_, r := newTestStore(t, spec, 1)
	r.Damage(1)
	bad := bytes.Repeat([]byte{0xAB}, int(spec.BlockSize))
	if err := r.ApplyRepair(1, bad); err != nil {
		t.Fatal(err)
	}
	if !r.Damaged() {
		t.Error("corrupt repair cleared the mark")
	}
	got, err := r.RepairBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bad) {
		t.Error("corrupt repair bytes were not written")
	}
}

// TestCrashDuringRepairLeavesMarked simulates the crash window the atomic
// write path defends: the repair wrote (and fsynced) the healed block bytes,
// then the process died before the manifest replacement. The store must
// reopen cleanly with the block still marked damaged, and the next scrub
// pass — observing bytes that match the manifest digest — completes the
// repair by clearing the mark.
func TestCrashDuringRepairLeavesMarked(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pub := content.PublisherBytes(spec)
	r, err := s.Create(spec, 1, pub)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Damage(2) {
		t.Fatal("damage failed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash window: block 2's correct bytes land in blocks.dat, the
	// manifest is never updated (kill -9 between the two).
	lo, hi := blockRange(spec, 2)
	f, err := os.OpenFile(filepath.Join(s.auDir(spec.ID), blocksName), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pub[lo:hi], lo); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("store not loadable after simulated crash: %v", err)
	}
	defer s2.Close()
	r2 := s2.Replica(spec.ID)
	if !r2.Damaged() {
		t.Fatal("damage mark lost across the crash")
	}
	// A scrub pass completes the interrupted repair.
	ok, marked, _, err := r2.verifyBlock(2, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || marked {
		t.Fatalf("scrub did not complete the repair: ok=%v marked=%v", ok, marked)
	}
	if r2.Damaged() {
		t.Error("mark not cleared")
	}
	if s2.Stats().BlocksRepaired != 1 {
		t.Errorf("BlocksRepaired = %d, want 1", s2.Stats().BlocksRepaired)
	}
}

func TestScrubDetectsInjectedDamage(t *testing.T) {
	spec := testSpec()
	s, r := newTestStore(t, spec, 1)
	if err := s.InjectDamage(spec.ID, 3); err != nil {
		t.Fatal(err)
	}
	if r.Damaged() {
		t.Fatal("injection must be silent")
	}
	var hits atomic.Uint64
	s.StartScrub(ScrubConfig{
		Pace: time.Millisecond,
		OnDamage: func(au content.AUID, block int) {
			if au == spec.ID && block == 3 {
				hits.Add(1)
			}
		},
	})
	deadline := time.Now().Add(10 * time.Second)
	for !r.Damaged() {
		if time.Now().After(deadline) {
			t.Fatal("scrub did not detect injected damage")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.StopScrub()
	if hits.Load() == 0 {
		t.Error("OnDamage never fired")
	}
	st := s.Stats()
	if st.BlocksDamaged != 1 || st.BlocksScanned == 0 || st.DamageInjected != 1 {
		t.Errorf("stats %+v", st)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Block != 3 || snap[0].Mark == 0 {
		t.Errorf("snapshot after scrub: %v", snap)
	}
}

func TestScrubPassCountsAndStops(t *testing.T) {
	spec := testSpec()
	s, _ := newTestStore(t, spec, 1)
	s.StartScrub(ScrubConfig{Pace: time.Millisecond, PassPause: time.Millisecond})
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().ScrubPasses < 2 {
		if time.Now().After(deadline) {
			t.Fatal("scrubber did not complete two passes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.StopScrub()
	st := s.Stats()
	if st.BlocksVerified < uint64(spec.Blocks()) {
		t.Errorf("BlocksVerified = %d after %d passes", st.BlocksVerified, st.ScrubPasses)
	}
	// Stopped means stopped: counters freeze.
	before := s.Stats().BlocksScanned
	time.Sleep(20 * time.Millisecond)
	if s.Stats().BlocksScanned != before {
		t.Error("scrubber still running after StopScrub")
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(spec, 1, content.PublisherBytes(spec)); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(s.auDir(spec.ID), manifestName)
	s.Close()

	good, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	// A single flipped bit anywhere must be caught.
	for _, off := range []int{0, 10, len(good) / 2, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		if err := os.WriteFile(manPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Errorf("bit flip at %d not detected", off)
		}
	}
	// Truncation must be caught.
	for _, n := range []int{0, 8, len(good) - 1} {
		if err := os.WriteFile(manPath, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
	// The pristine manifest still loads.
	if err := os.WriteFile(manPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

// TestLeftoverTmpAndPartialIngestIgnored: a stale manifest.tmp (crash during
// an atomic replace) and an AU directory without a manifest (crash during
// ingest) must not break Open.
func TestLeftoverTmpAndPartialIngestIgnored(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(spec, 1, content.PublisherBytes(spec)); err != nil {
		t.Fatal(err)
	}
	auDir := s.auDir(spec.ID)
	s.Close()

	if err := os.WriteFile(filepath.Join(auDir, manifestName+".tmp"), []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(dir, "au-00000099")
	if err := os.MkdirAll(partial, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(partial, blocksName), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("crash leftovers broke Open: %v", err)
	}
	defer s2.Close()
	if s2.Replica(spec.ID) == nil {
		t.Error("intact AU not loaded")
	}
	if s2.Replica(99) != nil {
		t.Error("manifest-less AU directory was loaded")
	}
}

func TestBlockFileSizeMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(spec, 1, content.PublisherBytes(spec)); err != nil {
		t.Fatal(err)
	}
	blocks := filepath.Join(s.auDir(spec.ID), blocksName)
	s.Close()
	if err := os.Truncate(blocks, spec.Size-100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("truncated block file not detected at Open")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	spec := content.AUSpec{ID: 42, Name: "J. Irreproducible Results 2004", Size: 2500, BlockSize: 1024}
	m := &manifest{spec: spec, salt: 77, gen: 9, events: 3,
		digests: make([]content.Hash, spec.Blocks()),
		marks:   make([]content.Mark, spec.Blocks())}
	for i := range m.digests {
		m.digests[i][0] = byte(i + 1)
	}
	m.marks[1] = 12345
	got, err := decodeManifest(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.spec != m.spec || got.salt != m.salt || got.gen != m.gen || got.events != m.events {
		t.Errorf("header round trip: %+v vs %+v", got, m)
	}
	for i := range m.digests {
		if got.digests[i] != m.digests[i] || got.marks[i] != m.marks[i] {
			t.Errorf("block %d round trip mismatch", i)
		}
	}
}
