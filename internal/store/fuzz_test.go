package store

import (
	"bytes"
	"testing"

	"lockss/internal/content"
)

// fuzzSeedManifests are valid encodings seeding the corpus.
func fuzzSeedManifests() [][]byte {
	var out [][]byte
	for _, spec := range []content.AUSpec{
		{ID: 1, Name: "a", Size: 1024, BlockSize: 1024},
		{ID: 7, Name: "journal-2004", Size: 2500, BlockSize: 1024},
		{ID: 0xFFFFFFFF, Name: "", Size: 0, BlockSize: 0},
	} {
		n := spec.Blocks()
		m := &manifest{spec: spec, salt: 3, gen: 2, events: 1,
			digests: make([]content.Hash, n), marks: make([]content.Mark, n)}
		for i := range m.digests {
			m.digests[i][0] = byte(i)
			if i%2 == 1 {
				m.marks[i] = content.Mark(i * 1000)
			}
		}
		out = append(out, m.encode())
	}
	return out
}

// FuzzManifest drives decodeManifest with arbitrary bytes: it must never
// panic, must reject every mutation of a valid manifest (the checksum covers
// truncation and bit flips), and anything it accepts must re-encode to the
// exact input (the format is canonical).
func FuzzManifest(f *testing.F) {
	for _, seed := range fuzzSeedManifests() {
		f.Add(seed)
		// Seed some classic corruptions so the interesting paths are in the
		// corpus even before the fuzzer finds them.
		if len(seed) > 16 {
			f.Add(seed[:len(seed)-1]) // truncated tail
			f.Add(seed[:8])           // truncated header
			flip := append([]byte(nil), seed...)
			flip[12] ^= 0x40
			f.Add(flip) // bit flip
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil manifest")
			}
			return
		}
		re := m.encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted manifest is not canonical: %d in, %d out", len(data), len(re))
		}
		// An accepted manifest must also survive a field-level round trip.
		m2, err := decodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if m2.spec != m.spec || len(m2.digests) != len(m.digests) {
			t.Fatal("round trip changed the manifest")
		}
	})
}

// TestFuzzSeedCorpus runs the fuzz body over the seed corpus in normal `go
// test` runs (the CI fuzz-corpus step also runs FuzzManifest explicitly).
func TestFuzzSeedCorpus(t *testing.T) {
	for _, seed := range fuzzSeedManifests() {
		if _, err := decodeManifest(seed); err != nil {
			t.Fatalf("seed manifest rejected: %v", err)
		}
		for off := 0; off < len(seed); off += 7 {
			bad := append([]byte(nil), seed...)
			bad[off] ^= 0x10
			if _, err := decodeManifest(bad); err == nil {
				t.Fatalf("bit flip at %d accepted", off)
			}
		}
		for n := 0; n < len(seed); n += 11 {
			if _, err := decodeManifest(seed[:n]); err == nil {
				t.Fatalf("truncation to %d accepted", n)
			}
		}
	}
}
