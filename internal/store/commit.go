package store

import (
	"sync"
	"time"
)

// Options tunes a store opened with OpenWith. The zero value is the
// production configuration.
type Options struct {
	// CommitInterval bounds how long a dirty manifest may sit in memory
	// before the committer flushes it to disk: the group-commit latency knob.
	// Mutations arriving inside one window share a single fsync train.
	// Default 2ms; <= 0 means the default.
	CommitInterval time.Duration
	// NoGroupCommit reverts to the original per-mutation behavior: every
	// manifest mutation is replaced atomically and fsynced before the
	// mutating call returns. It exists as a safety valve and as the baseline
	// the store benchmarks compare group commit against.
	NoGroupCommit bool
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.CommitInterval <= 0 {
		o.CommitInterval = 2 * time.Millisecond
	}
	return o
}

// committer is the store's group-commit goroutine: manifest mutations mark
// their replica dirty and return; the committer coalesces everything dirty
// into batched atomic replacements — one write (and one fsync train) per
// replica per group, no matter how many mutations landed in the window.
//
// Durability contract: a mutation is durable once a flush train that started
// after it completes. Paths that must not return before their manifest is on
// disk (repairs) call Flush, which triggers an immediate train and waits;
// concurrent Flush callers share one train. Everything else (scrub marks,
// damage marks) rides the CommitInterval timer — those marks are re-derivable
// from the block bytes by the next scrub pass, so deferring them never
// weakens what a crash can lose. The blocks-fsynced-before-manifest invariant
// is untouched: block writes still fsync before the mutation that marks the
// manifest dirty, and the manifest itself is still only ever replaced
// atomically, so a kill -9 inside a commit window leaves every manifest
// loadable at either its old or its new generation.
type committer struct {
	st       *Store
	interval time.Duration

	mu    sync.Mutex
	dirty map[*Replica]struct{}

	// wake (capacity 1) nudges the run loop when the dirty set becomes
	// non-empty; flushReq carries Flush barriers, answered with the first
	// error of their train.
	wake     chan struct{}
	flushReq chan chan error
	stop     chan struct{}
	done     chan struct{}
}

func newCommitter(st *Store, interval time.Duration) *committer {
	c := &committer{
		st:       st,
		interval: interval,
		dirty:    make(map[*Replica]struct{}),
		wake:     make(chan struct{}, 1),
		flushReq: make(chan chan error),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

// markDirty schedules r's manifest for the next commit train.
func (c *committer) markDirty(r *Replica) {
	c.mu.Lock()
	c.dirty[r] = struct{}{}
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// flush triggers an immediate commit train covering every mutation enqueued
// before the call and waits for it, returning the train's first error. Safe
// concurrently; concurrent callers share one train.
func (c *committer) flush() error {
	w := make(chan error, 1)
	select {
	case c.flushReq <- w:
		select {
		case err := <-w:
			return err
		case <-c.done:
			// The committer stopped while our train was forming; close's
			// final drain flushed everything that was dirty.
			return nil
		}
	case <-c.done:
		// Already closed: close's final drain covered our mutations.
		return nil
	}
}

// close stops the run loop after one final drain of the dirty set.
func (c *committer) close() {
	close(c.stop)
	<-c.done
}

// run is the committer goroutine.
func (c *committer) run() {
	defer close(c.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			<-timer.C
		}
		armed = false
	}
	for {
		select {
		case <-c.wake:
			if !armed {
				timer.Reset(c.interval)
				armed = true
			}
		case w := <-c.flushReq:
			// Coalesce every barrier (and wake) that is already pending into
			// this train, then flush immediately: barriers want durability
			// now, and batching across them is where repairs that land
			// together share one fsync train.
			waiters := []chan error{w}
		drain:
			for {
				select {
				case w2 := <-c.flushReq:
					waiters = append(waiters, w2)
				case <-c.wake:
				default:
					break drain
				}
			}
			disarm()
			err := c.flushBatch()
			for _, w := range waiters {
				w <- err
			}
		case <-timer.C:
			armed = false
			c.flushBatch()
		case <-c.stop:
			disarm()
			c.flushBatch()
			return
		}
	}
}

// flushBatch swaps out the dirty set and persists each replica's manifest
// once. A replica whose persist fails is re-queued, so transient write
// errors retry on the next train instead of silently shedding the mutation;
// the first error is returned to any barrier waiting on this train.
func (c *committer) flushBatch() error {
	c.mu.Lock()
	if len(c.dirty) == 0 {
		c.mu.Unlock()
		return nil
	}
	batch := make([]*Replica, 0, len(c.dirty))
	for r := range c.dirty {
		batch = append(batch, r)
	}
	c.dirty = make(map[*Replica]struct{})
	c.mu.Unlock()

	var firstErr error
	wrote := false
	for _, r := range batch {
		n, err := r.persistNow()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			c.markDirty(r)
			continue
		}
		wrote = wrote || n
	}
	if wrote {
		c.st.manifestCommits.Add(1)
	}
	return firstErr
}

// persistNow writes r's manifest if its in-memory generation is ahead of the
// durable one, reporting whether a write happened. The encode runs under
// r.mu but the IO does not, so votes and scrub reads proceed during the
// write; a mutation racing the write re-marks the replica dirty and lands in
// the next train.
func (r *Replica) persistNow() (bool, error) {
	r.mu.Lock()
	if r.man.gen == r.persistedGen {
		r.mu.Unlock()
		return false, nil
	}
	gen := r.man.gen
	data := r.man.encode()
	r.mu.Unlock()

	if err := writeManifestBytes(r.dir, data, &r.st.fsyncs); err != nil {
		return false, err
	}
	r.st.manifestWrites.Add(1)
	r.mu.Lock()
	if gen > r.persistedGen {
		r.persistedGen = gen
	}
	r.mu.Unlock()
	return true, nil
}

// Flush is the store's durability barrier: it returns once every manifest
// mutation made before the call is on disk (one immediate commit train,
// shared with concurrent callers), or with the train's first error. It is a
// no-op without group commit, where every mutation already persisted
// synchronously.
func (s *Store) Flush() error {
	if s.committer == nil {
		return nil
	}
	return s.committer.flush()
}
