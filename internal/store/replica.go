package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sync"

	"lockss/internal/content"
)

// Replica is one AU preserved on disk. It implements content.Replica: votes
// hash the actual stored bytes (streamed block by block, never the whole AU
// in memory), and repairs land through the crash-safe write path — block
// bytes first, fsync, then the manifest atomically. Unlike the in-memory
// implementations, a store Replica is safe for concurrent use: the node's
// actor loop and the scrub workers serialize on an internal lock.
type Replica struct {
	st  *Store
	dir string
	man *manifest

	mu sync.Mutex
	f  *os.File
	// persistedGen is the manifest generation durably on disk; the
	// committer advances it as commit trains land. man.gen running ahead of
	// it means the replica is dirty.
	persistedGen uint64
}

// Spec implements content.Replica.
func (r *Replica) Spec() content.AUSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.man.spec
}

// Generation implements content.Replica: the manifest's persisted mutation
// counter, so vote caching keyed on it survives restarts coherently.
func (r *Replica) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.man.gen
}

// VoteHashes implements content.Replica by streaming the block file through
// the shared running-hash chain. The hashes cover whatever bytes are on disk
// right now — a rotted block votes wrong, which is how polls catch damage
// the scrubber has not reached yet.
func (r *Replica) VoteHashes(nonce []byte) []content.Hash {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.man.spec.Blocks()
	out := make([]content.Hash, n)
	v := content.NewVoteHasher()
	buf := make([]byte, r.man.spec.BlockSize)
	for i := 0; i < n; i++ {
		b, err := r.readBlockLocked(i, buf)
		if err != nil {
			// An unreadable block cannot vote its true content; hash an
			// empty payload so the vote simply disagrees there (and the
			// poll's repair machinery takes over), rather than panicking
			// the protocol loop.
			b = buf[:0]
		}
		out[i] = v.Step(nonce, r.man.spec.ID, i, b)
	}
	return out
}

// Snapshot implements content.Replica from the persisted damage marks.
func (r *Replica) Snapshot() []content.DamageEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []content.DamageEntry
	for i, m := range r.man.marks {
		if m != 0 {
			out = append(out, content.DamageEntry{Block: i, Mark: m})
		}
	}
	return out
}

// Damaged implements content.Replica.
func (r *Replica) Damaged() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.man.marks {
		if m != 0 {
			return true
		}
	}
	return false
}

// Damage implements content.Replica: overwrite block i on disk with
// replica-unique pseudo-random corruption and persist the damage mark. This
// is *marked* damage (the replica knows it is damaged) — demos of silent rot
// use Store.InjectDamage instead.
func (r *Replica) Damage(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= r.man.spec.Blocks() {
		return false
	}
	mark := r.freshMarkLocked()
	lo, hi := blockRange(r.man.spec, i)
	b := content.CorruptBytes(mark, i, int(hi-lo))
	if err := r.writeBlockLocked(i, b); err != nil {
		return false
	}
	r.man.marks[i] = mark
	r.man.gen++
	// The mark rides the next commit train; losing it to a crash is
	// harmless — the bytes on disk are corrupt regardless, and a scrub pass
	// re-derives the mark from them.
	_ = r.persistLocked()
	return true
}

// RepairBlock implements content.Replica: the repair payload is the block's
// current bytes on disk (correct if this replica is undamaged at i).
func (r *Replica) RepairBlock(i int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= r.man.spec.Blocks() {
		return nil, fmt.Errorf("store: repair block %d out of range for %v", i, r.man.spec)
	}
	return r.readBlockLocked(i, nil)
}

// ApplyRepair implements content.Replica through the crash-safe write path:
// the block bytes are written and fsynced first, then the manifest is
// committed — through the group-commit barrier, so the call does not return
// until the new manifest is on disk, but concurrent repairs share one fsync
// train. A crash between the block write and the commit leaves the old
// manifest — the block still marked damaged — and the next scrub pass
// observes the healed bytes and clears the mark. Repair data that does not
// match the ingest digest is still written (the poll's landslide majority
// outranks our local history) but the block stays marked, with a fresh mark,
// so scrubbing and future polls keep pursuing it.
func (r *Replica) ApplyRepair(i int, data []byte) error {
	r.mu.Lock()
	if i < 0 || i >= r.man.spec.Blocks() {
		r.mu.Unlock()
		return fmt.Errorf("store: repair block %d out of range for %v", i, r.man.spec)
	}
	lo, hi := blockRange(r.man.spec, i)
	if int64(len(data)) != hi-lo {
		r.mu.Unlock()
		return fmt.Errorf("store: repair for block %d has %d bytes, want %d", i, len(data), hi-lo)
	}
	if err := r.writeBlockLocked(i, data); err != nil {
		r.mu.Unlock()
		return err
	}
	sum := content.Hash(sha256.Sum256(data))
	healed := false
	if sum == r.man.digests[i] {
		healed = r.man.marks[i] != 0
		r.man.marks[i] = 0
	} else {
		r.man.marks[i] = r.freshMarkLocked()
	}
	r.man.gen++
	err := r.persistLocked()
	r.mu.Unlock()
	if err != nil {
		return err
	}
	// Repairs are the crash-safety-critical manifest path: wait out the
	// commit train (taken without r.mu — the committer needs it to encode).
	if err := r.st.Flush(); err != nil {
		return err
	}
	if healed {
		r.st.blocksRepaired.Add(1)
	}
	return nil
}

// verifyBlock reads block i into buf (grown as needed and returned for
// reuse), hashes it, and compares against the manifest. With mark set, a
// mismatch records a fresh damage mark and a match clears a stale one — the
// scrubber's write side; mark changes ride the commit train (re-derivable
// from the block bytes, so deferral loses nothing a crash could not already
// take). Without group commit a mark change that fails to persist is rolled
// back and reported as an error, so counters and OnDamage never claim
// durability the disk refused; the next pass retries. It returns whether the
// block verified and whether the manifest now marks it damaged.
func (r *Replica) verifyBlock(i int, mark bool, buf []byte) (ok, marked bool, bufOut []byte, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, err := r.readBlockLocked(i, buf)
	if err != nil {
		return false, r.man.marks[i] != 0, buf, err
	}
	buf = b
	sum := content.Hash(sha256.Sum256(b))
	ok = sum == r.man.digests[i]
	if mark {
		switch {
		case !ok && r.man.marks[i] == 0:
			prevEvents := r.man.events
			r.man.marks[i] = r.freshMarkLocked()
			r.man.gen++
			if err := r.persistLocked(); err != nil {
				r.man.marks[i] = 0
				r.man.gen--
				r.man.events = prevEvents
				return ok, false, buf, err
			}
			r.st.blocksDamaged.Add(1)
		case ok && r.man.marks[i] != 0:
			// The bytes verify but the manifest says damaged: a repair (or
			// a crash-interrupted one) healed the block before the manifest
			// caught up. Complete it.
			prev := r.man.marks[i]
			r.man.marks[i] = 0
			r.man.gen++
			if err := r.persistLocked(); err != nil {
				r.man.marks[i] = prev
				r.man.gen--
				return ok, true, buf, err
			}
			r.st.blocksRepaired.Add(1)
		}
	}
	return ok, r.man.marks[i] != 0, buf, nil
}

// injectDamage flips the bits of one byte in the middle of the block,
// touching neither marks nor manifest.
func (r *Replica) injectDamage(i int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= r.man.spec.Blocks() {
		return fmt.Errorf("store: inject block %d out of range for %v", i, r.man.spec)
	}
	if r.f == nil {
		return fmt.Errorf("store: AU %v is closed", r.man.spec.ID)
	}
	lo, hi := blockRange(r.man.spec, i)
	off := lo + (hi-lo)/2
	var b [1]byte
	if _, err := r.f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("store: inject damage: %w", err)
	}
	b[0] ^= 0xFF
	if _, err := r.f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("store: inject damage: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return err
	}
	r.st.fsyncs.Add(1)
	return nil
}

// freshMarkLocked derives a new replica-unique damage mark and persists the
// event counter with the next manifest write.
func (r *Replica) freshMarkLocked() content.Mark {
	r.man.events++
	m := content.Mark(r.man.salt<<20 | uint64(r.man.events))
	if m == 0 {
		m = 1
	}
	return m
}

// readBlockLocked reads block i into buf (grown as needed).
func (r *Replica) readBlockLocked(i int, buf []byte) ([]byte, error) {
	if r.f == nil {
		return nil, fmt.Errorf("store: AU %v is closed", r.man.spec.ID)
	}
	lo, hi := blockRange(r.man.spec, i)
	n := int(hi - lo)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := r.f.ReadAt(buf, lo); err != nil {
		return nil, fmt.Errorf("store: read block %d of %v: %w", i, r.man.spec, err)
	}
	return buf, nil
}

// writeBlockLocked writes and fsyncs block i's bytes.
func (r *Replica) writeBlockLocked(i int, b []byte) error {
	if r.f == nil {
		return fmt.Errorf("store: AU %v is closed", r.man.spec.ID)
	}
	lo, _ := blockRange(r.man.spec, i)
	if _, err := r.f.WriteAt(b, lo); err != nil {
		return fmt.Errorf("store: write block %d of %v: %w", i, r.man.spec, err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("store: sync block %d of %v: %w", i, r.man.spec, err)
	}
	r.st.fsyncs.Add(1)
	return nil
}

// persistLocked makes the manifest mutation just applied durable: under
// group commit it marks the replica dirty for the committer and returns
// immediately (ApplyRepair adds the Flush barrier on top); without group
// commit it replaces the manifest synchronously, the pre-batching behavior.
// Called with r.mu held.
func (r *Replica) persistLocked() error {
	r.st.manifestMutations.Add(1)
	if c := r.st.committer; c != nil {
		c.markDirty(r)
		return nil
	}
	if err := writeManifestBytes(r.dir, r.man.encode(), &r.st.fsyncs); err != nil {
		return err
	}
	r.persistedGen = r.man.gen
	r.st.manifestWrites.Add(1)
	r.st.manifestCommits.Add(1)
	return nil
}

// close flushes and closes the block file.
func (r *Replica) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	syncErr := r.f.Sync()
	closeErr := r.f.Close()
	r.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
