package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lockss/internal/content"
)

// The storage benchmarks measure the three archive-scale paths this package
// optimizes: streaming ingest throughput, manifest fsync amortization under
// group commit, and scrub throughput versus worker count. `go test -bench .
// ./internal/store` runs them; TestBenchSnapshot (gated on LOCKSS_BENCH_OUT)
// distills the same measurements into one machine-readable BENCH_8.json for
// docs/BENCHMARKS.md and CI.

func benchSpec(id content.AUID, size, blockSize int64) content.AUSpec {
	return content.AUSpec{ID: id, Name: fmt.Sprintf("bench-%d", id), Size: size, BlockSize: blockSize}
}

// BenchmarkIngest streams publisher content through CreateFrom; b.SetBytes
// makes `go test -bench` report MB/s.
func BenchmarkIngest(b *testing.B) {
	const size = 64 << 20
	spec := benchSpec(1, size, 64<<10)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.CreateFrom(spec, 1, content.PublisherReader(spec)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// corruptAllBlocks rots every block of the AU directly on disk, behind the
// store's back — the manifest-mutation workload generator: a marking scrub
// pass over the result mutates the manifest once per block with no block
// writes in the measured path.
func corruptAllBlocks(tb testing.TB, s *Store, spec content.AUSpec) {
	tb.Helper()
	f, err := os.OpenFile(filepath.Join(s.auDir(spec.ID), blocksName), os.O_RDWR, 0)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	for i := 0; i < spec.Blocks(); i++ {
		lo, _ := blockRange(spec, i)
		if _, err := f.ReadAt(b[:], lo); err != nil {
			tb.Fatal(err)
		}
		b[0] ^= 0xFF // flip, never overwrite: guaranteed to differ
		if _, err := f.WriteAt(b[:], lo); err != nil {
			tb.Fatal(err)
		}
	}
}

// markingPass runs exactly one unpaced scrub pass, which marks every
// corrupted block: one manifest mutation per block.
func markingPass(tb testing.TB, s *Store, workers int) {
	tb.Helper()
	s.StartScrub(ScrubConfig{Pace: -1, PassPause: time.Hour, Workers: workers})
	deadline := time.Now().Add(2 * time.Minute)
	base := s.Stats().ScrubPasses
	for s.Stats().ScrubPasses == base {
		if time.Now().After(deadline) {
			tb.Fatal("scrub pass did not finish")
		}
		time.Sleep(time.Millisecond)
	}
	s.StopScrub()
}

// fsyncComparison measures the fsync and manifest-write cost of one marking
// pass over nBlocks corrupted blocks, group commit versus per-mutation
// replacement, at equal durability (the marks are re-derivable either way).
func fsyncComparison(tb testing.TB, group bool, nBlocks int) (mutations, writes, commits, fsyncs uint64, elapsed time.Duration) {
	tb.Helper()
	spec := benchSpec(1, int64(nBlocks)<<12, 4<<10)
	s, err := OpenWith(tb.TempDir(), Options{NoGroupCommit: !group})
	if err != nil {
		tb.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Create(spec, 1, content.PublisherBytes(spec)); err != nil {
		tb.Fatal(err)
	}
	corruptAllBlocks(tb, s, spec)
	base := s.Stats()
	start := time.Now()
	markingPass(tb, s, 1)
	// Equal durability: the measured region ends only when every mark is on
	// disk, so the group-commit side pays for its final train too.
	if err := s.Flush(); err != nil {
		tb.Fatal(err)
	}
	elapsed = time.Since(start)
	st := s.Stats()
	return st.ManifestMutations - base.ManifestMutations,
		st.ManifestWrites - base.ManifestWrites,
		st.ManifestCommits - base.ManifestCommits,
		st.Fsyncs - base.Fsyncs,
		elapsed
}

// BenchmarkManifestMarks measures a marking scrub pass (one manifest mutation
// per block) with and without group commit.
func BenchmarkManifestMarks(b *testing.B) {
	for _, mode := range []struct {
		name  string
		group bool
	}{{"group-commit", true}, {"per-mutation", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fsyncComparison(b, mode.group, 256)
			}
		})
	}
}

// BenchmarkScrubWorkers measures one full scrub pass over a sharded store at
// increasing worker counts.
func BenchmarkScrubWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			const nAU, auSize = 8, int64(4 << 20)
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for id := content.AUID(1); id <= nAU; id++ {
				spec := benchSpec(id, auSize, 64<<10)
				if _, err := s.CreateFrom(spec, uint64(id), content.PublisherReader(spec)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(nAU * auSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				markingPass(b, s, workers)
			}
		})
	}
}

// benchReport is the BENCH_8.json schema.
type benchReport struct {
	// Ingest: streaming a synthetic AU through CreateFrom.
	IngestBytes      int64   `json:"ingest_bytes"`
	IngestSeconds    float64 `json:"ingest_seconds"`
	IngestMBPerSec   float64 `json:"ingest_mb_per_sec"`
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	PeakHeapOverBase uint64  `json:"peak_heap_over_baseline_bytes"`
	BufferBoundBytes int64   `json:"buffer_bound_bytes"`
	BufferUnderBound bool    `json:"buffer_under_bound"`

	// Manifest commit: one marking scrub pass over N corrupted blocks.
	MarkBlocks          int     `json:"mark_blocks"`
	GroupFsyncs         uint64  `json:"group_fsyncs"`
	GroupWrites         uint64  `json:"group_manifest_writes"`
	GroupCommits        uint64  `json:"group_commits"`
	GroupSeconds        float64 `json:"group_seconds"`
	PerMutationFsyncs   uint64  `json:"per_mutation_fsyncs"`
	PerMutationWrites   uint64  `json:"per_mutation_manifest_writes"`
	PerMutationSeconds  float64 `json:"per_mutation_seconds"`
	FsyncReductionRatio float64 `json:"fsync_reduction_ratio"`

	// Scrub: MB/s of one unpaced pass versus worker count.
	ScrubBytes    int64              `json:"scrub_bytes"`
	ScrubMBPerSec map[string]float64 `json:"scrub_mb_per_sec_by_workers"`
}

// TestBenchSnapshot runs the full storage benchmark suite once and writes the
// machine-readable snapshot to $LOCKSS_BENCH_OUT (skipped when unset — this
// is a measurement, not a correctness gate, except for the two acceptance
// bounds it does assert: bounded ingest buffering and >= 5x fsync reduction).
// $LOCKSS_BENCH_INGEST_BYTES overrides the ingest size (default 1 GiB).
func TestBenchSnapshot(t *testing.T) {
	out := os.Getenv("LOCKSS_BENCH_OUT")
	if out == "" {
		t.Skip("set LOCKSS_BENCH_OUT=path to run the benchmark snapshot")
	}
	var rep benchReport

	// --- Streaming ingest, with a heap sampler watching peak buffering.
	ingestBytes := int64(1 << 30)
	if v := os.Getenv("LOCKSS_BENCH_INGEST_BYTES"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &ingestBytes); err != nil {
			t.Fatalf("bad LOCKSS_BENCH_INGEST_BYTES %q: %v", v, err)
		}
	}
	spec := benchSpec(1, ingestBytes, 64<<10)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapInuse
	var peak atomic.Uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSampler:
				return
			default:
			}
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			for {
				cur := peak.Load()
				if m.HeapInuse <= cur || peak.CompareAndSwap(cur, m.HeapInuse) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	start := time.Now()
	if _, err := s.CreateFrom(spec, 1, content.PublisherReader(spec)); err != nil {
		t.Fatal(err)
	}
	rep.IngestSeconds = time.Since(start).Seconds()
	close(stopSampler)
	<-samplerDone
	s.Close()

	rep.IngestBytes = ingestBytes
	rep.IngestMBPerSec = float64(ingestBytes) / (1 << 20) / rep.IngestSeconds
	rep.PeakHeapBytes = peak.Load()
	if rep.PeakHeapBytes > baseline {
		rep.PeakHeapOverBase = rep.PeakHeapBytes - baseline
	}
	rep.BufferBoundBytes = 64 << 20
	rep.BufferUnderBound = rep.PeakHeapOverBase < uint64(rep.BufferBoundBytes)
	if !rep.BufferUnderBound {
		t.Errorf("ingest of %d bytes peaked %d bytes of heap over baseline, bound is %d",
			ingestBytes, rep.PeakHeapOverBase, rep.BufferBoundBytes)
	}

	// --- Manifest fsync amortization: group commit vs per-mutation.
	rep.MarkBlocks = 256
	muts, gw, gc, gf, gsec := fsyncComparison(t, true, rep.MarkBlocks)
	if muts != uint64(rep.MarkBlocks) {
		t.Fatalf("group-commit pass made %d mutations, want %d", muts, rep.MarkBlocks)
	}
	rep.GroupFsyncs, rep.GroupWrites, rep.GroupCommits, rep.GroupSeconds = gf, gw, gc, gsec.Seconds()
	muts, pw, _, pf, psec := fsyncComparison(t, false, rep.MarkBlocks)
	if muts != uint64(rep.MarkBlocks) {
		t.Fatalf("per-mutation pass made %d mutations, want %d", muts, rep.MarkBlocks)
	}
	rep.PerMutationFsyncs, rep.PerMutationWrites, rep.PerMutationSeconds = pf, pw, psec.Seconds()
	if gf == 0 {
		t.Fatal("group-commit pass recorded zero fsyncs")
	}
	rep.FsyncReductionRatio = float64(pf) / float64(gf)
	if rep.FsyncReductionRatio < 5 {
		t.Errorf("fsync reduction %.1fx (%d -> %d for %d mutations), want >= 5x",
			rep.FsyncReductionRatio, pf, gf, rep.MarkBlocks)
	}

	// --- Scrub throughput vs workers.
	const nAU, auSize = 8, int64(16 << 20)
	rep.ScrubBytes = nAU * auSize
	rep.ScrubMBPerSec = make(map[string]float64)
	for _, workers := range []int{1, 2, 4} {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for id := content.AUID(1); id <= nAU; id++ {
			sp := benchSpec(id, auSize, 64<<10)
			if _, err := s.CreateFrom(sp, uint64(id), content.PublisherReader(sp)); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		markingPass(t, s, workers)
		el := time.Since(start).Seconds()
		rep.ScrubMBPerSec[fmt.Sprintf("%d", workers)] = float64(rep.ScrubBytes) / (1 << 20) / el
		s.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("benchmark snapshot written to %s:\n%s", out, data)
}
