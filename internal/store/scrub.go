package store

import (
	"time"

	"lockss/internal/content"
)

// ScrubConfig paces the background scrubber.
type ScrubConfig struct {
	// Pace is the pause between consecutive block verifications. Scrubbing
	// is deliberately slow — the paper's threat is rot over decades, and a
	// scrubber that saturates the disk starves the node it serves. Demos
	// and tests turn it down. Default 1s.
	Pace time.Duration
	// PassPause is the extra rest between full passes over the store.
	// Default 10x Pace.
	PassPause time.Duration
	// OnDamage, if non-nil, is called for every damaged block each pass
	// observes — newly marked or still unrepaired — so the node can keep
	// the AU's audit priority raised until the damage is gone. It runs on
	// the scrubber goroutine (outside all store locks) and must not block:
	// a wedged callback wedges the pass and, through StopScrub, Close.
	OnDamage func(au content.AUID, block int)
}

// withDefaults fills zero fields.
func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.Pace <= 0 {
		c.Pace = time.Second
	}
	if c.PassPause <= 0 {
		c.PassPause = 10 * c.Pace
	}
	return c
}

// StartScrub launches the background scrubber: an endless, paced, sequential
// verification of every block of every AU against its manifest. Mismatched
// blocks gain a persisted damage mark (raising their audit priority through
// OnDamage); marked blocks whose bytes verify again — a repair that landed,
// or a crash-interrupted repair whose manifest write never happened — have
// their marks cleared. At most one scrubber runs per store; a second call is
// a no-op while one is active.
func (s *Store) StartScrub(cfg ScrubConfig) {
	cfg = cfg.withDefaults()
	s.mu.Lock()
	if s.scrubStop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	s.scrubStop = stop
	s.mu.Unlock()

	s.scrubWG.Add(1)
	go s.scrubLoop(cfg, stop)
}

// StopScrub halts the scrubber and waits for it to exit. Safe to call when
// none is running.
func (s *Store) StopScrub() {
	s.mu.Lock()
	stop := s.scrubStop
	s.scrubStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	s.scrubWG.Wait()
}

// scrubLoop is the scrubber goroutine.
func (s *Store) scrubLoop(cfg ScrubConfig, stop chan struct{}) {
	defer s.scrubWG.Done()
	pace := time.NewTimer(cfg.Pace)
	defer pace.Stop()
	wait := func(d time.Duration) bool {
		pace.Reset(d)
		select {
		case <-stop:
			return false
		case <-pace.C:
			return true
		}
	}
	for {
		for _, r := range s.Replicas() {
			spec := r.Spec()
			for i := 0; i < spec.Blocks(); i++ {
				if !wait(cfg.Pace) {
					return
				}
				ok, marked, err := r.verifyBlock(i, true)
				s.blocksScanned.Add(1)
				if err != nil {
					continue // unreadable now; retried next pass
				}
				if ok && !marked {
					s.blocksVerified.Add(1)
				}
				if marked && cfg.OnDamage != nil {
					cfg.OnDamage(spec.ID, i)
				}
			}
		}
		s.scrubPasses.Add(1)
		if !wait(cfg.PassPause) {
			return
		}
	}
}
