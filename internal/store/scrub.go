package store

import (
	"sync"
	"time"

	"lockss/internal/content"
)

// ScrubConfig paces the background scrubber.
type ScrubConfig struct {
	// Pace is the pause each worker takes between consecutive block
	// verifications. Scrubbing is deliberately slow — the paper's threat is
	// rot over decades, and a scrubber that saturates the disk starves the
	// node it serves. Demos and tests turn it down. Default 1s; negative
	// means no pause (benchmarks).
	Pace time.Duration
	// PassPause is the extra rest between full passes over the store.
	// Default 10x Pace; negative means none.
	PassPause time.Duration
	// Workers shards the store across this many concurrent scrub workers:
	// replica i of a pass goes to worker i mod Workers, so throughput
	// scales with AUs instead of serializing thousands of them behind one
	// goroutine. Default 1.
	Workers int
	// Bandwidth is a global read budget in bytes/second shared by every
	// worker through one token bucket — the knob that keeps a many-worker
	// scrub from starving foreground reads no matter how many AUs it
	// shards. 0 means unlimited.
	Bandwidth int64
	// OnDamage, if non-nil, is called for every damaged block each pass
	// observes — newly marked or still unrepaired — so the node can keep
	// the AU's audit priority raised until the damage is gone. With
	// Workers > 1 it is called concurrently from multiple scrub goroutines
	// (outside all store locks) and must not block: a wedged callback
	// wedges the pass and, through StopScrub, Close.
	OnDamage func(au content.AUID, block int)
	// OnPass, if non-nil, is called with the wall-clock duration of each
	// completed pass (aborted passes are not reported). Called from the
	// scrub coordinator goroutine; must not block.
	OnPass func(d time.Duration)
}

// withDefaults fills zero fields.
func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.Pace == 0 {
		c.Pace = time.Second
	}
	if c.PassPause == 0 && c.Pace > 0 {
		c.PassPause = 10 * c.Pace
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// StartScrub launches the background scrubber: an endless, paced
// verification of every block of every AU against its manifest, sharded
// across cfg.Workers goroutines under one shared byte budget. Mismatched
// blocks gain a persisted damage mark (raising their audit priority through
// OnDamage); marked blocks whose bytes verify again — a repair that landed,
// or a crash-interrupted repair whose manifest write never happened — have
// their marks cleared. At most one scrubber runs per store; a second call is
// a no-op while one is active.
func (s *Store) StartScrub(cfg ScrubConfig) {
	cfg = cfg.withDefaults()
	s.mu.Lock()
	if s.scrubStop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	s.scrubStop = stop
	s.scrubPace.Store(int64(cfg.Pace))
	s.scrubBW.Store(cfg.Bandwidth)
	s.scrubBucket = newTokenBucket(cfg.Bandwidth)
	bucket := s.scrubBucket
	s.mu.Unlock()

	s.scrubWG.Add(1)
	go s.scrubLoop(cfg, bucket, stop)
}

// SetScrubPace retunes the per-block pause of a running scrubber; workers
// pick the new pace up at their next block. Also effective before StartScrub
// is called again: StartScrub resets it from its config. Negative means no
// pause.
func (s *Store) SetScrubPace(d time.Duration) {
	if d == 0 {
		d = time.Second
	}
	s.scrubPace.Store(int64(d))
}

// ScrubPace reports the scrubber's current per-block pause.
func (s *Store) ScrubPace() time.Duration { return time.Duration(s.scrubPace.Load()) }

// SetScrubBandwidth retunes the scrubber's shared read budget in
// bytes/second (0 = unlimited) without restarting it. Workers blocked in the
// token bucket observe the new rate on their next wakeup.
func (s *Store) SetScrubBandwidth(bytesPerSec int64) {
	s.scrubBW.Store(bytesPerSec)
	s.mu.Lock()
	bucket := s.scrubBucket
	s.mu.Unlock()
	if bucket != nil {
		bucket.setRate(bytesPerSec)
	}
}

// ScrubBandwidth reports the scrubber's current byte budget (0 = unlimited).
func (s *Store) ScrubBandwidth() int64 { return s.scrubBW.Load() }

// StopScrub halts the scrubber and waits for it (and every worker) to exit.
// Safe to call when none is running.
func (s *Store) StopScrub() {
	s.mu.Lock()
	stop := s.scrubStop
	s.scrubStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	s.scrubWG.Wait()
}

// scrubLoop coordinates passes: each pass snapshots the replica list, deals
// it round-robin into Workers shards, runs the shards concurrently, and
// counts the pass only when every shard finished it.
func (s *Store) scrubLoop(cfg ScrubConfig, bucket *tokenBucket, stop chan struct{}) {
	defer s.scrubWG.Done()
	for {
		passStart := time.Now()
		reps := s.Replicas()
		shards := make([][]*Replica, cfg.Workers)
		for i, r := range reps {
			shards[i%cfg.Workers] = append(shards[i%cfg.Workers], r)
		}
		var wg sync.WaitGroup
		for _, shard := range shards {
			if len(shard) == 0 {
				continue
			}
			wg.Add(1)
			go func(shard []*Replica) {
				defer wg.Done()
				s.scrubShard(shard, cfg, bucket, stop)
			}(shard)
		}
		wg.Wait()
		select {
		case <-stop:
			return // workers bailed mid-pass; don't count it
		default:
		}
		s.scrubPasses.Add(1)
		if cfg.OnPass != nil {
			cfg.OnPass(time.Since(passStart))
		}
		if !sleepOrStop(cfg.PassPause, stop) {
			return
		}
	}
}

// scrubShard verifies one worker's share of a pass, reusing one read buffer
// across its blocks.
func (s *Store) scrubShard(shard []*Replica, cfg ScrubConfig, bucket *tokenBucket, stop chan struct{}) {
	var buf []byte
	for _, r := range shard {
		spec := r.Spec()
		for i := 0; i < spec.Blocks(); i++ {
			// Pace is re-read per block so SetScrubPace retunes a
			// running pass, not just the next one.
			if !sleepOrStop(time.Duration(s.scrubPace.Load()), stop) {
				return
			}
			lo, hi := blockRange(spec, i)
			if !bucket.take(hi-lo, stop) {
				return
			}
			var ok, marked bool
			var err error
			ok, marked, buf, err = r.verifyBlock(i, true, buf)
			s.blocksScanned.Add(1)
			s.bytesScrubbed.Add(uint64(hi - lo))
			if err != nil {
				continue // unreadable now; retried next pass
			}
			if ok && !marked {
				s.blocksVerified.Add(1)
			}
			if marked && cfg.OnDamage != nil {
				cfg.OnDamage(spec.ID, i)
			}
		}
	}
}

// sleepOrStop waits d (no wait when d <= 0), reporting false once stop
// closes.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// tokenBucket is the scrubber's shared IO budget: rate bytes/second with a
// one-second burst, shared by every worker. Rate <= 0 (and a nil bucket)
// means unlimited: always admit. The rate is settable at runtime so a config
// reload retunes a long-running scrub without restarting it.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(bytesPerSec int64) *tokenBucket {
	return &tokenBucket{
		rate:   float64(bytesPerSec),
		burst:  float64(bytesPerSec),
		tokens: float64(bytesPerSec),
		last:   time.Now(),
	}
}

// setRate replaces the budget. Lowering the rate clamps accumulated credit
// so the first second after a reload doesn't burst at the old rate.
func (b *tokenBucket) setRate(bytesPerSec int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rate = float64(bytesPerSec)
	b.burst = float64(bytesPerSec)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = time.Now()
}

// take blocks until n bytes of budget are available (or stop closes,
// returning false). A single block larger than the burst is admitted once
// the bucket is full and charged as debt, so long-run throughput still
// converges to the configured rate.
func (b *tokenBucket) take(n int64, stop <-chan struct{}) bool {
	if b == nil {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	need := float64(n)
	for {
		b.mu.Lock()
		if b.rate <= 0 {
			b.mu.Unlock()
			select {
			case <-stop:
				return false
			default:
				return true
			}
		}
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		admit := need
		if admit > b.burst {
			admit = b.burst
		}
		if b.tokens >= admit {
			b.tokens -= need // may go negative: debt paces the next taker
			b.mu.Unlock()
			return true
		}
		deficit := admit - b.tokens
		b.mu.Unlock()
		d := time.Duration(deficit / b.rate * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-stop:
			t.Stop()
			return false
		case <-t.C:
		}
	}
}
