package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lockss/internal/content"
)

// TestCreateFromStreaming: streaming ingest must land byte-identical state to
// the buffered path — same digests, same blocks, same verification — and
// round-trip through reopen.
func TestCreateFromStreaming(t *testing.T) {
	dir := t.TempDir()
	spec := content.AUSpec{ID: 3, Name: "streamed", Size: 100<<10 + 123, BlockSize: 4 << 10}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.CreateFrom(spec, 9, content.PublisherReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	want := content.PublisherBytes(spec)
	got, err := r.RepairBlock(spec.Blocks() - 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := blockRange(spec, spec.Blocks()-1)
	if !bytes.Equal(got, want[lo:hi]) {
		t.Fatal("streamed final block differs from publisher bytes")
	}
	if st := s.Stats(); st.BytesIngested != uint64(spec.Size) {
		t.Errorf("BytesIngested = %d, want %d", st.BytesIngested, spec.Size)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if dam := s2.VerifyAll(); dam != nil {
		t.Fatalf("streamed AU does not verify after reopen: %v", dam)
	}
	// The streamed ingest and the buffered wrapper must agree digest for
	// digest: votes from either are interchangeable.
	other, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	ro, err := other.Create(spec, 9, want)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("n")
	a, b := s2.Replica(spec.ID).VoteHashes(nonce), ro.VoteHashes(nonce)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vote hash %d differs between streamed and buffered ingest", i)
		}
	}
}

// TestCreateFromShortContent: a source that dries up mid-stream (the ingest
// analogue of a crash) must leave no manifest behind — the directory is
// invisible to Open and a re-ingest succeeds over it.
func TestCreateFromShortContent(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	short := io.LimitReader(content.PublisherReader(spec), spec.Size/2)
	if _, err := s.CreateFrom(spec, 1, short); err == nil {
		t.Fatal("short content accepted")
	}
	if _, err := os.Stat(filepath.Join(s.auDir(spec.ID), manifestName)); !os.IsNotExist(err) {
		t.Fatalf("failed ingest left a manifest (err=%v)", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("aborted ingest broke Open: %v", err)
	}
	if s2.Replica(spec.ID) != nil {
		t.Fatal("half-ingested AU was loaded")
	}
	if _, err := s2.CreateFrom(spec, 1, content.PublisherReader(spec)); err != nil {
		t.Fatalf("re-ingest over aborted ingest: %v", err)
	}
	if dam := s2.VerifyAll(); dam != nil {
		t.Fatalf("re-ingested AU does not verify: %v", dam)
	}
	s2.Close()
}

// TestCreateFromSizeMismatch: Create still rejects content whose length
// disagrees with the spec.
func TestCreateFromSizeMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := testSpec()
	if _, err := s.Create(spec, 1, make([]byte, spec.Size-1)); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := s.Create(spec, 1, make([]byte, spec.Size+1)); err == nil {
		t.Error("long buffer accepted")
	}
}

// TestNumericAUOrder: au-%08d widens past id 10^8, where lexicographic and
// numeric directory order diverge. Reopen must load (and order) AUs by parsed
// id, not by name.
func TestNumericAUOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id content.AUID) content.AUSpec {
		return content.AUSpec{ID: id, Name: fmt.Sprintf("au%d", id), Size: 2048, BlockSize: 1024}
	}
	// Created wide-id first: "au-100000000" sorts lexicographically *before*
	// "au-99999999" even though its id is larger.
	for _, id := range []content.AUID{100000000, 99999999} {
		spec := mk(id)
		if _, err := s.Create(spec, uint64(id), content.PublisherBytes(spec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	aus := s2.AUs()
	if len(aus) != 2 || aus[0] != 99999999 || aus[1] != 100000000 {
		t.Fatalf("AUs() after reopen = %v, want numeric order [99999999 100000000]", aus)
	}
	if dam := s2.VerifyAll(); dam != nil {
		t.Fatalf("wide-id store does not verify: %v", dam)
	}
}

// TestMalformedAUDirRejected: an au-* directory whose suffix is not a decimal
// id is foreign data or root corruption; Open must say so, not guess.
func TestMalformedAUDirRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "au-banana"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("malformed AU directory name accepted")
	}
	// Non-au- directories remain none of the store's business.
	dir2 := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir2, "lost+found"), 0o755); err != nil {
		t.Fatal(err)
	}
	if s, err := Open(dir2); err != nil {
		t.Fatalf("unrelated directory broke Open: %v", err)
	} else {
		s.Close()
	}
}

// TestDuplicateNumericIDRejected: "au-7" and "au-00000007" are the same AU id
// spelled two ways; loading both would double-register it.
func TestDuplicateNumericIDRejected(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(spec, 1, content.PublisherBytes(spec)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, fmt.Sprintf("au-%d", spec.ID)), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("duplicate numeric AU id accepted")
	}
}

// TestVerifyAllAggregatesReadErrors: an unreadable block must enter the
// report as Damage{Unreadable} and the sweep must carry on to find rot in
// other AUs — no early return, no ambiguity.
func TestVerifyAllAggregatesReadErrors(t *testing.T) {
	dir := t.TempDir()
	specA := content.AUSpec{ID: 1, Name: "truncated", Size: 4096, BlockSize: 1024}
	specB := content.AUSpec{ID: 2, Name: "rotted", Size: 4096, BlockSize: 1024}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, spec := range []content.AUSpec{specA, specB} {
		if _, err := s.Create(spec, uint64(spec.ID), content.PublisherBytes(spec)); err != nil {
			t.Fatal(err)
		}
	}
	// AU 1 loses its last block to truncation (reads past EOF fail), AU 2
	// rots silently.
	if err := os.Truncate(filepath.Join(s.auDir(specA.ID), blocksName), specA.Size-int64(specA.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectDamage(specB.ID, 2); err != nil {
		t.Fatal(err)
	}

	dam := s.VerifyAll()
	if len(dam) != 2 {
		t.Fatalf("VerifyAll = %v, want one unreadable + one rotted", dam)
	}
	if dam[0].AU != specA.ID || dam[0].Block != 3 || !dam[0].Unreadable || dam[0].Err == nil {
		t.Errorf("unreadable block reported as %+v", dam[0])
	}
	if dam[1].AU != specB.ID || dam[1].Block != 2 || dam[1].Unreadable || dam[1].Marked {
		t.Errorf("silent rot reported as %+v", dam[1])
	}
}

// TestGroupCommitCrashWindow: a kill -9 inside the commit window loses only
// the async mark, never manifest integrity. With the committer parked (huge
// interval), the on-disk manifest stays at its old generation — loadable,
// mark absent, block bytes already corrupt; after Flush it is loadable at the
// new generation with the mark present.
func TestGroupCommitCrashWindow(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := OpenWith(dir, Options{CommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.Create(spec, 1, content.PublisherBytes(spec))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Damage(2) {
		t.Fatal("damage failed")
	}

	// "Crash" now: read the directory as a second store without closing the
	// first — exactly the bytes kill -9 would leave.
	crashed, err := Open(dir)
	if err != nil {
		t.Fatalf("manifest not loadable inside the commit window: %v", err)
	}
	if crashed.Replica(spec.ID).Damaged() {
		t.Fatal("async mark reached disk with the committer parked")
	}
	// The bytes are corrupt regardless; a scrub pass re-derives the mark.
	dam := crashed.VerifyAll()
	if len(dam) != 1 || dam[0].Block != 2 || dam[0].Marked {
		t.Fatalf("verify inside commit window: %v", dam)
	}
	crashed.Close()

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := Open(dir)
	if err != nil {
		t.Fatalf("manifest not loadable after Flush: %v", err)
	}
	if !after.Replica(spec.ID).Damaged() {
		t.Fatal("mark not durable after Flush")
	}
	after.Close()
}

// TestRepairDurableBeforeReturn: ApplyRepair is the crash-safety-critical
// path — when it returns, the cleared mark must already be on disk even
// though the committer batches everything else.
func TestRepairDurableBeforeReturn(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	s, err := OpenWith(dir, Options{CommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.Create(spec, 1, content.PublisherBytes(spec))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Damage(1) {
		t.Fatal("damage failed")
	}
	lo, hi := blockRange(spec, 1)
	if err := r.ApplyRepair(1, content.PublisherBytes(spec)[lo:hi]); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Replica(spec.ID).Damaged() {
		t.Fatal("repair returned before its manifest was durable")
	}
	if dam := re.VerifyAll(); dam != nil {
		t.Fatalf("repaired store does not verify on disk: %v", dam)
	}
	re.Close()
}

// TestGroupCommitCoalesces: mutations landing inside one commit window must
// share a single manifest replacement — the fsync amortization the committer
// exists for.
func TestGroupCommitCoalesces(t *testing.T) {
	spec := content.AUSpec{ID: 5, Name: "busy", Size: 32 << 10, BlockSize: 1 << 10}
	s, err := OpenWith(t.TempDir(), Options{CommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.Create(spec, 1, content.PublisherBytes(spec))
	if err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	for i := 0; i < 8; i++ {
		if !r.Damage(i) {
			t.Fatalf("damage %d failed", i)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	muts := st.ManifestMutations - base.ManifestMutations
	writes := st.ManifestWrites - base.ManifestWrites
	commits := st.ManifestCommits - base.ManifestCommits
	if muts != 8 {
		t.Fatalf("ManifestMutations delta = %d, want 8", muts)
	}
	if writes != 1 || commits != 1 {
		t.Errorf("8 mutations took %d writes in %d commits, want 1 in 1", writes, commits)
	}
}

// TestConcurrentIngestScrubLookup drives ingest, scrubbing, lookups and stats
// concurrently — the archive-scale contention pattern; run under -race.
func TestConcurrentIngestScrubLookup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mk := func(id content.AUID) content.AUSpec {
		return content.AUSpec{ID: id, Name: fmt.Sprintf("au%d", id), Size: 8 << 10, BlockSize: 1 << 10}
	}
	for id := content.AUID(1); id <= 4; id++ {
		if _, err := s.CreateFrom(mk(id), uint64(id), content.PublisherReader(mk(id))); err != nil {
			t.Fatal(err)
		}
	}
	s.StartScrub(ScrubConfig{Pace: -1, PassPause: -1, Workers: 2, Bandwidth: 64 << 20})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for id := content.AUID(10); id < 20; id++ {
			if _, err := s.CreateFrom(mk(id), uint64(id), content.PublisherReader(mk(id))); err != nil {
				t.Errorf("concurrent ingest AU %d: %v", id, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			s.Replica(2)
			s.Replicas()
			s.Stats()
		}
	}()
	wg.Wait()
	s.StopScrub()
	if dam := s.VerifyAll(); dam != nil {
		t.Fatalf("store does not verify after concurrent load: %v", dam)
	}
	if got := len(s.AUs()); got != 14 {
		t.Fatalf("AUs after concurrent ingest = %d, want 14", got)
	}
}

// TestDuplicateIngestInFlight: a second CreateFrom for an id mid-stream must
// be refused by the reservation, not interleave writes.
func TestDuplicateIngestInFlight(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := testSpec()
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, err := s.CreateFrom(spec, 1, &gatedReader{r: content.PublisherReader(spec), started: started, release: release})
		if err != nil {
			t.Errorf("gated ingest: %v", err)
		}
	}()
	<-started
	if _, err := s.CreateFrom(spec, 2, content.PublisherReader(spec)); err == nil {
		t.Error("concurrent ingest of one AU id accepted")
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for s.Replica(spec.ID) == nil {
		if time.Now().After(deadline) {
			t.Fatal("gated ingest never registered")
		}
		time.Sleep(time.Millisecond)
	}
}

// gatedReader signals its first Read and then blocks until released.
type gatedReader struct {
	r        io.Reader
	started  chan struct{}
	release  chan struct{}
	signaled bool
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if !g.signaled {
		g.signaled = true
		close(g.started)
		<-g.release
	}
	return g.r.Read(p)
}

// TestScrubShardingFindsAllDamage: a multi-worker scrub pass must cover every
// AU exactly as one worker would — damage in shards beyond the first is found.
func TestScrubShardingFindsAllDamage(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const nAU = 8
	for id := content.AUID(1); id <= nAU; id++ {
		spec := content.AUSpec{ID: id, Name: fmt.Sprintf("au%d", id), Size: 4096, BlockSize: 1024}
		if _, err := s.Create(spec, uint64(id), content.PublisherBytes(spec)); err != nil {
			t.Fatal(err)
		}
		if err := s.InjectDamage(id, int(id)%4); err != nil {
			t.Fatal(err)
		}
	}
	s.StartScrub(ScrubConfig{Pace: -1, PassPause: time.Hour, Workers: 3})
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().ScrubPasses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("sharded scrub never finished a pass")
		}
		time.Sleep(time.Millisecond)
	}
	s.StopScrub()
	st := s.Stats()
	if st.BlocksDamaged != nAU {
		t.Errorf("BlocksDamaged = %d, want %d", st.BlocksDamaged, nAU)
	}
	if st.BlocksScanned < nAU*4 {
		t.Errorf("BlocksScanned = %d, want >= %d", st.BlocksScanned, nAU*4)
	}
	if st.BytesScrubbed < nAU*4096 {
		t.Errorf("BytesScrubbed = %d, want >= %d", st.BytesScrubbed, nAU*4096)
	}
	for id := content.AUID(1); id <= nAU; id++ {
		if !s.Replica(id).Damaged() {
			t.Errorf("AU %d damage not marked by sharded scrub", id)
		}
	}
}

// TestTokenBucket pins the pacing contract: a nil bucket always admits, an
// oversized request is admitted once as debt, an exhausted bucket makes the
// next taker wait for refill, and stop aborts a blocked take.
func TestTokenBucket(t *testing.T) {
	stop := make(chan struct{})
	var nilBucket *tokenBucket
	if !nilBucket.take(1<<40, stop) {
		t.Fatal("nil bucket refused")
	}

	b := newTokenBucket(1 << 20) // 1 MiB/s, full burst
	if !b.take(10<<20, stop) {   // 10 MiB > burst: admitted once, as debt
		t.Fatal("oversized take refused on a full bucket")
	}
	if b.tokens >= 0 {
		t.Fatalf("oversized take left tokens = %v, want debt", b.tokens)
	}

	// A blocked take must honor stop promptly rather than sleeping out the
	// (multi-second) debt.
	done := make(chan bool, 1)
	go func() { done <- b.take(1, stop) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped take reported admitted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stopped take did not return")
	}

	// Refill: an exhausted small bucket admits again after ~need/rate.
	b2 := newTokenBucket(100 << 20) // 100 MiB/s
	if !b2.take(100<<20, make(chan struct{})) {
		t.Fatal("full-burst take refused")
	}
	start := time.Now()
	if !b2.take(10<<20, make(chan struct{})) { // ~100ms refill
		t.Fatal("refill take refused")
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Errorf("refill take returned in %v, want >= 50ms of pacing", el)
	}
}
