package effort

import (
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
)

// MBF implements a simplified memory-bound function in the spirit of
// Dwork, Goldberg and Naor (CRYPTO 2003), as adapted by the LOCKSS protocol:
//
//   - The prover performs a long pseudo-random walk through a large table of
//     incompressible data; each step's address depends on the previous
//     fetch, so the walk is latency-bound on the memory system rather than
//     the CPU, narrowing the performance spread between machines.
//   - The verifier re-walks only a sampled subset of checkpointed segments,
//     making verification a configurable fraction of generation cost.
//   - Generation yields a 160-bit byproduct (the running digest of the walk)
//     that cannot be obtained without doing the walk; the protocol uses it
//     as the evaluation receipt.
//
// This is NOT a hardened implementation — it exists so the real node and the
// integration tests exercise true generate/verify asymmetry and receipt
// semantics end to end with stdlib crypto only.
type MBF struct {
	table []uint64
	// Steps is the walk length for a unit of effort.
	Steps int
	// Checkpoints is how many evenly spaced walk states a proof records.
	Checkpoints int
	// VerifySegments is how many segments the verifier re-walks.
	VerifySegments int
}

// MBFParams configures an MBF instance.
type MBFParams struct {
	// TableWords is the size of the incompressible table in 8-byte words.
	// Real deployments size this beyond L2 cache; tests use small tables.
	TableWords int
	// Steps per unit effort.
	Steps int
	// Checkpoints recorded per proof.
	Checkpoints int
	// VerifySegments re-walked per verification.
	VerifySegments int
	// Seed determines the table contents. All parties must share it.
	Seed uint64
}

// DefaultMBFParams returns parameters sized for tests and examples: a table
// that exceeds typical L1 cache with a walk long enough to measure, small
// enough to keep test suites fast.
func DefaultMBFParams() MBFParams {
	return MBFParams{
		TableWords:     1 << 16, // 512 KiB
		Steps:          1 << 14,
		Checkpoints:    16,
		VerifySegments: 2,
		Seed:           0x10c55,
	}
}

// NewMBF builds the shared table deterministically from params.Seed.
func NewMBF(p MBFParams) *MBF {
	if p.TableWords <= 0 || p.Steps <= 0 || p.Checkpoints <= 0 || p.VerifySegments <= 0 {
		panic("effort: invalid MBF params")
	}
	if p.Checkpoints > p.Steps {
		p.Checkpoints = p.Steps
	}
	if p.VerifySegments > p.Checkpoints {
		p.VerifySegments = p.Checkpoints
	}
	t := make([]uint64, p.TableWords)
	state := p.Seed | 1
	for i := range t {
		// splitmix64 fill: incompressible enough for our purposes.
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return &MBF{
		table:          t,
		Steps:          p.Steps,
		Checkpoints:    p.Checkpoints,
		VerifySegments: p.VerifySegments,
	}
}

// MBFProof carries the walk checkpoints and the final digest. The byproduct
// receipt is NOT part of the proof — the prover keeps it secret; whoever
// verifies the full walk (or, in the protocol, evaluates the vote generated
// alongside it) recomputes it.
type MBFProof struct {
	// Units is the number of effort units (walks) the proof claims.
	Units int
	// Checkpoints holds the walk state at evenly spaced points, per unit.
	Checkpoints [][]uint64
	// Digest is the SHA-1 digest over all walk outputs; it doubles as the
	// receipt byproduct for the prover.
	Digest Receipt
	// UnitCost is the effort-seconds one walk represents, claimed by the
	// prover and bounded by protocol configuration.
	UnitCost Seconds

	mbf *MBF // bound at generation/verification time, not serialized
}

// Cost implements Proof.
func (p *MBFProof) Cost() Seconds { return Seconds(float64(p.Units) * float64(p.UnitCost)) }

// Valid implements Proof: it spot-checks VerifySegments segments per unit.
func (p *MBFProof) Valid(context []byte) bool {
	if p.mbf == nil {
		return false
	}
	return p.mbf.Verify(p, context)
}

// walkFrom advances the walk from state through n steps, mixing context, and
// returns the final state. The address of each fetch depends on the previous
// fetch, defeating prefetch and making the walk memory-latency-bound.
func (m *MBF) walkFrom(state uint64, steps int, ctxMix uint64) uint64 {
	mask := uint64(len(m.table) - 1)
	if len(m.table)&(len(m.table)-1) != 0 {
		// Non-power-of-two tables use modulo; slower but correct.
		for i := 0; i < steps; i++ {
			state = state*0x2545f4914f6cdd1d + ctxMix
			state ^= m.table[state%uint64(len(m.table))]
		}
		return state
	}
	for i := 0; i < steps; i++ {
		state = state*0x2545f4914f6cdd1d + ctxMix
		state ^= m.table[state&mask]
	}
	return state
}

func ctxSeed(context []byte, unit int) (uint64, uint64) {
	h := sha256.Sum256(append(append([]byte("lockss/mbf"), context...), byte(unit), byte(unit>>8)))
	return binary.BigEndian.Uint64(h[0:8]) | 1, binary.BigEndian.Uint64(h[8:16]) | 1
}

// Generate performs `units` walks bound to context and returns the proof
// together with the secret receipt byproduct.
func (m *MBF) Generate(context []byte, units int, unitCost Seconds) (*MBFProof, Receipt) {
	if units <= 0 {
		units = 1
	}
	digest := sha1.New()
	digest.Write([]byte("lockss/mbf-byproduct"))
	digest.Write(context)
	cps := make([][]uint64, units)
	segSteps := m.Steps / m.Checkpoints
	for u := 0; u < units; u++ {
		start, mix := ctxSeed(context, u)
		state := start
		cp := make([]uint64, m.Checkpoints+1)
		cp[0] = state
		for c := 0; c < m.Checkpoints; c++ {
			steps := segSteps
			if c == m.Checkpoints-1 {
				steps = m.Steps - segSteps*(m.Checkpoints-1)
			}
			state = m.walkFrom(state, steps, mix)
			cp[c+1] = state
		}
		cps[u] = cp
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], state)
		digest.Write(buf[:])
	}
	var r Receipt
	copy(r[:], digest.Sum(nil))
	p := &MBFProof{Units: units, Checkpoints: cps, UnitCost: unitCost, mbf: m}
	// The transmitted digest is an HMAC-style commitment to the byproduct,
	// so the verifier can check consistency without learning the receipt.
	p.Digest = commitReceipt(r, context)
	return p, r
}

// commitReceipt hides the byproduct while committing to it.
func commitReceipt(r Receipt, context []byte) Receipt {
	mac := hmac.New(sha1.New, []byte("lockss/receipt-commit"))
	mac.Write(context)
	mac.Write(r[:])
	var out Receipt
	copy(out[:], mac.Sum(nil))
	return out
}

// Bind attaches the MBF instance to a proof received off the wire so Valid
// can verify it.
func (m *MBF) Bind(p *MBFProof) { p.mbf = m }

// Verify re-walks VerifySegments randomly-chosen (deterministically from the
// context) segments per unit and checks them against the checkpoints. A
// prover that skipped part of the walk is caught with probability
// 1-((k-v)/k)^cheated.
func (m *MBF) Verify(p *MBFProof, context []byte) bool {
	if p.Units <= 0 || len(p.Checkpoints) != p.Units {
		return false
	}
	segSteps := m.Steps / m.Checkpoints
	for u := 0; u < p.Units; u++ {
		cp := p.Checkpoints[u]
		if len(cp) != m.Checkpoints+1 {
			return false
		}
		start, mix := ctxSeed(context, u)
		if cp[0] != start {
			return false
		}
		// Deterministic segment choice derived from context and the final
		// state, so the prover cannot predict which segments are checked
		// before finishing the walk.
		h := sha256.Sum256(append(append([]byte("lockss/mbf-verify"), context...), byte(u)))
		pick := binary.BigEndian.Uint64(h[:8]) ^ cp[m.Checkpoints]
		for s := 0; s < m.VerifySegments; s++ {
			seg := int((pick + uint64(s)*0x9e3779b97f4a7c15) % uint64(m.Checkpoints))
			steps := segSteps
			if seg == m.Checkpoints-1 {
				steps = m.Steps - segSteps*(m.Checkpoints-1)
			}
			if m.walkFrom(cp[seg], steps, mix) != cp[seg+1] {
				return false
			}
		}
	}
	return true
}

// ReceiptMatches lets a voter check that the evaluation receipt presented by
// a poller matches the byproduct the voter remembered, via the commitment in
// the proof it originally sent.
func ReceiptMatches(remembered Receipt, presented Receipt) bool {
	return hmac.Equal(remembered[:], presented[:])
}

// RecomputeByproduct performs the full walk (full generation cost!) to learn
// the byproduct of a proof — this is what an evaluating poller does
// implicitly when verifying the vote effort in full. Exposed for the real
// node's evaluation path and for tests.
func (m *MBF) RecomputeByproduct(p *MBFProof, context []byte) (Receipt, bool) {
	digest := sha1.New()
	digest.Write([]byte("lockss/mbf-byproduct"))
	digest.Write(context)
	segSteps := m.Steps / m.Checkpoints
	for u := 0; u < p.Units; u++ {
		start, mix := ctxSeed(context, u)
		state := start
		for c := 0; c < m.Checkpoints; c++ {
			steps := segSteps
			if c == m.Checkpoints-1 {
				steps = m.Steps - segSteps*(m.Checkpoints-1)
			}
			state = m.walkFrom(state, steps, mix)
			if state != p.Checkpoints[u][c+1] {
				return Receipt{}, false
			}
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], state)
		digest.Write(buf[:])
	}
	var r Receipt
	copy(r[:], digest.Sum(nil))
	if commitReceipt(r, context) != p.Digest {
		return Receipt{}, false
	}
	return r, true
}
