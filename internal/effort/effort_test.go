package effort

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashCost(t *testing.T) {
	m := DefaultCostModel()
	c := m.HashCost(64 << 20)
	if math.Abs(float64(c)-1.0) > 1e-9 {
		t.Errorf("hashing 64 MiB at 64 MiB/s should cost 1s, got %v", c)
	}
}

func TestVerifyCheaperThanGenerate(t *testing.T) {
	m := DefaultCostModel()
	gen := Seconds(8)
	if v := m.VerifyCost(gen); v >= gen || v <= 0 {
		t.Errorf("verification cost %v not in (0, %v)", v, gen)
	}
}

// TestPollEffortBalance checks the §5.1 balance conditions the derivation
// must guarantee.
func TestPollEffortBalance(t *testing.T) {
	m := DefaultCostModel()
	pe := m.PollEffortFor(512<<20, 512)

	// The vote proof covers detecting a bogus vote: one block hash plus
	// verifying the proof itself.
	blockHash := m.HashCost((512 << 20) / 512)
	if float64(pe.VoteProof) < float64(blockHash+m.VerifyCost(pe.VoteProof))-1e-9 {
		t.Errorf("vote proof %v does not cover block hash %v + verify %v",
			pe.VoteProof, blockHash, m.VerifyCost(pe.VoteProof))
	}
	// The poller's total provable effort exceeds the voter's cost to verify
	// it plus produce the vote.
	voterCost := m.VerifyCost(pe.PollerTotal) + pe.VoteHash + pe.VoteProof
	if float64(pe.PollerTotal) <= float64(voterCost) {
		t.Errorf("poller total %v does not exceed voter cost %v", pe.PollerTotal, voterCost)
	}
	// Intro fraction.
	if math.Abs(float64(pe.Intro)/float64(pe.PollerTotal)-m.IntroEffortFraction) > 1e-9 {
		t.Errorf("intro %v is not %v of total %v", pe.Intro, m.IntroEffortFraction, pe.PollerTotal)
	}
	if pe.Intro+pe.Remainder != pe.PollerTotal {
		t.Errorf("intro+remainder != total")
	}
	// Five expected attempts at the in-debt drop rate cost the attacker at
	// least the full poller effort (the paper's calibration).
	if 5*float64(pe.Intro) < float64(pe.PollerTotal)*0.999 {
		t.Errorf("5 x intro (%v) should reach the total (%v)", 5*pe.Intro, pe.PollerTotal)
	}
}

func TestPollEffortDegenerate(t *testing.T) {
	m := DefaultCostModel()
	pe := m.PollEffortFor(100, 0) // zero blocks clamps to 1
	if pe.VoteHash <= 0 || pe.PollerTotal <= 0 {
		t.Errorf("degenerate AU should still cost something: %+v", pe)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Charge("vote", 3)
	l.Charge("vote", 2)
	l.Charge("eval", 1)
	if l.Total != 6 {
		t.Errorf("total %v, want 6", l.Total)
	}
	if l.Kind("vote") != 5 || l.Kind("eval") != 1 || l.Kind("nope") != 0 {
		t.Errorf("kind accounting wrong: %v", l.ByKind)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative charge did not panic")
		}
	}()
	l.Charge("bad", -1)
}

func TestSimProof(t *testing.T) {
	p := SimProof{Effort: 2.5, Genuine: true}
	if p.Cost() != 2.5 || !p.Valid(nil) {
		t.Error("genuine sim proof misbehaves")
	}
	bad := SimProof{Effort: 2.5, Genuine: false}
	if bad.Valid([]byte("ctx")) {
		t.Error("bogus sim proof validates")
	}
}

func TestSimReceiptDeterministic(t *testing.T) {
	a := SimReceiptFor([]byte("ctx"), 3)
	b := SimReceiptFor([]byte("ctx"), 3)
	if a != b {
		t.Error("sim receipts not deterministic")
	}
	if SimReceiptFor([]byte("ctx2"), 3) == a {
		t.Error("different contexts share receipts")
	}
	if SimReceiptFor([]byte("ctx"), 4) == a {
		t.Error("different efforts share receipts")
	}
}

func testMBF() *MBF {
	return NewMBF(MBFParams{TableWords: 1 << 10, Steps: 1 << 8, Checkpoints: 8, VerifySegments: 3, Seed: 99})
}

func TestMBFGenerateVerify(t *testing.T) {
	m := testMBF()
	ctx := []byte("poll 1 voter 2")
	p, receipt := m.Generate(ctx, 2, 0.5)
	if p.Cost() != 1.0 {
		t.Errorf("cost %v, want 1.0", p.Cost())
	}
	if !m.Verify(p, ctx) {
		t.Error("honest proof rejected")
	}
	if m.Verify(p, []byte("other ctx")) {
		t.Error("proof verified under wrong context")
	}
	// The byproduct is recoverable by full evaluation and matches.
	got, ok := m.RecomputeByproduct(p, ctx)
	if !ok {
		t.Fatal("byproduct recomputation failed")
	}
	if !ReceiptMatches(receipt, got) {
		t.Error("recomputed byproduct differs from prover's receipt")
	}
	var zero Receipt
	if receipt == zero {
		t.Error("receipt is zero")
	}
}

func TestMBFTamperedCheckpointRejected(t *testing.T) {
	// Verification spot-checks segments, so a single tampered checkpoint is
	// caught probabilistically; with VerifySegments == Checkpoints every
	// segment is re-walked and tampering must always be caught.
	m := NewMBF(MBFParams{TableWords: 1 << 10, Steps: 1 << 8, Checkpoints: 8, VerifySegments: 8, Seed: 99})
	ctx := []byte("ctx")
	p, _ := m.Generate(ctx, 1, 1)
	for i := 1; i < len(p.Checkpoints[0]); i++ {
		p.Checkpoints[0][i] ^= 1
		if m.Verify(p, ctx) {
			t.Errorf("tampered checkpoint %d accepted", i)
		}
		p.Checkpoints[0][i] ^= 1
	}
	if !m.Verify(p, ctx) {
		t.Error("restored proof should verify")
	}
}

func TestMBFWrongStartRejected(t *testing.T) {
	m := testMBF()
	p, _ := m.Generate([]byte("a"), 1, 1)
	q, _ := m.Generate([]byte("b"), 1, 1)
	// Swap rows: contexts bind start states, so cross-use must fail.
	p.Checkpoints = q.Checkpoints
	if m.Verify(p, []byte("a")) {
		t.Error("proof with foreign walk accepted")
	}
}

func TestMBFProofInterface(t *testing.T) {
	m := testMBF()
	ctx := []byte("iface")
	p, _ := m.Generate(ctx, 1, 2)
	var pr Proof = p
	if pr.Cost() != 2 {
		t.Errorf("Cost() = %v", pr.Cost())
	}
	if !pr.Valid(ctx) {
		t.Error("Valid through interface failed")
	}
	// Unbound proofs (fresh off the wire) must not validate until bound.
	clone := &MBFProof{Units: p.Units, Checkpoints: p.Checkpoints, Digest: p.Digest, UnitCost: p.UnitCost}
	if clone.Valid(ctx) {
		t.Error("unbound proof validated")
	}
	m.Bind(clone)
	if !clone.Valid(ctx) {
		t.Error("bound clone failed to validate")
	}
}

func TestMBFDigestBindsByproduct(t *testing.T) {
	m := testMBF()
	ctx := []byte("d")
	p, _ := m.Generate(ctx, 1, 1)
	p.Digest[0] ^= 0xff
	if _, ok := m.RecomputeByproduct(p, ctx); ok {
		t.Error("corrupted digest commitment accepted")
	}
}

func TestReceiptMatches(t *testing.T) {
	var a, b Receipt
	a[0] = 1
	if ReceiptMatches(a, b) {
		t.Error("distinct receipts match")
	}
	b[0] = 1
	if !ReceiptMatches(a, b) {
		t.Error("equal receipts do not match")
	}
}

func TestMBFDeterministicByproduct(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		m := testMBF()
		ctx := make([]byte, 8)
		for i := range ctx {
			ctx[i] = byte(seed >> (8 * i))
		}
		_, r1 := m.Generate(ctx, 1, 1)
		_, r2 := m.Generate(ctx, 1, 1)
		return r1 == r2
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestSecondsDuration(t *testing.T) {
	if Seconds(2.5).Duration().Seconds() != 2.5 {
		t.Error("Seconds->Duration conversion wrong")
	}
	if Seconds(1.5).String() != "1.500es" {
		t.Errorf("String() = %q", Seconds(1.5).String())
	}
}
