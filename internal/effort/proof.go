package effort

import (
	"crypto/sha256"
	"encoding/binary"
)

// Proof is a proof of computational effort attached to a protocol message.
// The simulator uses SimProof (a claimed cost plus a validity bit, charged
// against the sender's schedule); the real node uses MBFProof.
type Proof interface {
	// Cost is the effort the prover claims to have expended.
	Cost() Seconds
	// Valid reports whether the proof checks out for the given binding
	// context (poller, voter, poll nonce...). Verification cost is charged
	// separately by the caller using CostModel.VerifyCost.
	Valid(context []byte) bool
}

// SimProof is the simulator's symbolic proof of effort. Generating one in
// the simulator charges the claimed cost to the sender; Valid is a recorded
// fact rather than a cryptographic check.
type SimProof struct {
	Effort  Seconds
	Genuine bool
}

// Cost implements Proof.
func (p SimProof) Cost() Seconds { return p.Effort }

// Valid implements Proof.
func (p SimProof) Valid([]byte) bool { return p.Genuine }

// Receipt is the 160-bit unforgeable byproduct of generating a proof of
// effort. The voter remembers it when generating the vote's effort proof;
// the poller can only learn it by actually evaluating the vote, and returns
// it in the EvaluationReceipt message (§5.1, "wasteful" attacks).
type Receipt [20]byte

// simReceipt derives the deterministic receipt for a simulated proof bound
// to a context. Both sides of a simulated exchange can derive it, which
// models "the poller performed the necessary effort" without simulating the
// MBF bit-for-bit.
func SimReceiptFor(context []byte, effort Seconds) Receipt {
	h := sha256.New()
	h.Write([]byte("lockss/sim-receipt"))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(float64(effort)*1e6))
	h.Write(buf[:])
	h.Write(context)
	var r Receipt
	copy(r[:], h.Sum(nil))
	return r
}
