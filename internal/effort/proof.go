package effort

import (
	"crypto/sha256"
	"encoding/binary"
)

// Proof is a proof of computational effort attached to a protocol message.
// The simulator uses SimProof (a claimed cost plus a validity bit, charged
// against the sender's schedule); the real node uses MBFProof.
type Proof interface {
	// Cost is the effort the prover claims to have expended.
	Cost() Seconds
	// Valid reports whether the proof checks out for the given binding
	// context (poller, voter, poll nonce...). Verification cost is charged
	// separately by the caller using CostModel.VerifyCost.
	Valid(context []byte) bool
}

// SimProof is the simulator's symbolic proof of effort. Generating one in
// the simulator charges the claimed cost to the sender; Valid is a recorded
// fact rather than a cryptographic check.
type SimProof struct {
	Effort  Seconds
	Genuine bool
}

// Cost implements Proof.
func (p SimProof) Cost() Seconds { return p.Effort }

// Valid implements Proof.
func (p SimProof) Valid([]byte) bool { return p.Genuine }

// Receipt is the 160-bit unforgeable byproduct of generating a proof of
// effort. The voter remembers it when generating the vote's effort proof;
// the poller can only learn it by actually evaluating the vote, and returns
// it in the EvaluationReceipt message (§5.1, "wasteful" attacks).
type Receipt [20]byte

// simReceiptPrefix is the domain-separation tag plus the 8-byte effort field
// that precede the context in a simulated receipt's hash input.
const simReceiptPrefix = "lockss/sim-receipt"

// SimReceiptFor derives the deterministic receipt for a simulated proof
// bound to a context. Both sides of a simulated exchange can derive it,
// which models "the poller performed the necessary effort" without
// simulating the MBF bit-for-bit.
//
// The hash input is assembled in a stack buffer and digested with
// sha256.Sum256 so the hot path (one receipt per proof generated and one per
// vote evaluated) does not allocate; protocol contexts are ~24 bytes, far
// inside the buffer. The rare oversized context takes the allocating path
// with identical output bytes.
func SimReceiptFor(context []byte, effort Seconds) Receipt {
	var in [128]byte
	n := copy(in[:], simReceiptPrefix)
	binary.BigEndian.PutUint64(in[n:], uint64(float64(effort)*1e6))
	n += 8
	if len(context) <= len(in)-n {
		n += copy(in[n:], context)
		sum := sha256.Sum256(in[:n])
		return Receipt(sum[:20])
	}
	h := sha256.New()
	h.Write(in[:n])
	h.Write(context)
	var r Receipt
	copy(r[:], h.Sum(nil))
	return r
}
