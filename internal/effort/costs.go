// Package effort models proofs of computational effort for the LOCKSS
// effort-balancing defense.
//
// Two implementations coexist behind one accounting model:
//
//   - A cost model (this file) expressing every protocol operation in
//     "effort-seconds" on the paper's reference low-cost 2005 PC. The
//     discrete-event simulator charges these against each peer's task
//     schedule and the attacker/defender cost ledgers.
//   - A real, simplified memory-bound function (mbf.go) with the three
//     properties the protocol needs: provable cost, cheaper verification,
//     and a 160-bit unforgeable byproduct used as the evaluation receipt.
//     The real node and the integration tests use it.
package effort

import (
	"fmt"
	"time"
)

// Seconds is an amount of computational effort, measured as seconds of
// compute on the reference machine. Effort is additive.
type Seconds float64

// Duration converts effort to simulated compute time at 1x the reference
// machine's speed.
func (s Seconds) Duration() time.Duration {
	return time.Duration(float64(s) * float64(time.Second))
}

func (s Seconds) String() string { return fmt.Sprintf("%.3fes", float64(s)) }

// CostModel holds the primitive-operation costs used to charge simulated
// effort. The defaults approximate the paper's low-cost PC (§6.3: "We set
// all costs of primitive operations ... to match the capabilities of such a
// low-cost PC").
type CostModel struct {
	// HashBytesPerSec is the content hashing throughput (SHA-1 class on a
	// 2005 PC, dominated by disk+hash; the paper's AUs are read from disk).
	HashBytesPerSec float64

	// MBFVerifyFraction is the cost of verifying an MBF proof relative to
	// generating it. Memory-bound functions verify cheaper than they
	// generate, but by a modest factor compared to CPU puzzles.
	MBFVerifyFraction float64

	// SessionSetup is the cost of establishing the per-poll encrypted
	// session (anonymous Diffie-Hellman key exchange + TLS handshake).
	SessionSetup Seconds

	// ScheduleCheck is the bookkeeping cost of consulting the local task
	// schedule when considering a poll invitation.
	ScheduleCheck Seconds

	// IntroEffortFraction is the fraction of the total poller effort that
	// must be proven in the Poll message itself (the "introductory effort").
	// The paper sets this to 20% so that, at a 0.2 admission probability for
	// in-debt identities, an attacker spends on average 100% of the honest
	// cost before his invitation is even admitted (§6.3).
	IntroEffortFraction float64

	// ReceiptCheck is the voter's cost to compare an evaluation receipt with
	// the remembered MBF byproduct.
	ReceiptCheck Seconds
}

// DefaultCostModel returns the calibrated 2005-PC cost model used across the
// evaluation. See EXPERIMENTS.md for the calibration notes.
func DefaultCostModel() CostModel {
	return CostModel{
		HashBytesPerSec:     64 << 20, // 64 MiB/s read+hash
		MBFVerifyFraction:   1.0 / 8,
		SessionSetup:        0.05,
		ScheduleCheck:       0.005,
		IntroEffortFraction: 0.20,
		ReceiptCheck:        0.001,
	}
}

// HashCost returns the effort to read and hash n bytes of content.
func (m CostModel) HashCost(n int64) Seconds {
	return Seconds(float64(n) / m.HashBytesPerSec)
}

// VerifyCost returns the effort to verify a proof that cost gen to generate.
func (m CostModel) VerifyCost(gen Seconds) Seconds {
	return Seconds(float64(gen) * m.MBFVerifyFraction)
}

// PollEffort describes the per-solicitation effort budget that effort
// balancing imposes on poller and voter, derived from the AU size. All the
// protocol's balance conditions (§5.1 of the paper) are encoded here:
//
//   - The voter's cost to produce a vote is hashing the AU plus generating
//     the vote's own provable effort (which must cover the poller's cost of
//     detecting a bogus vote: hashing one block plus verifying that effort).
//   - The poller's total provable effort (Poll intro + PollProof remainder)
//     must exceed the voter's verification plus vote-production cost.
//   - The intro effort alone must cover what the voter could expend while
//     waiting for the PollProof before timing out (anti-reservation).
type PollEffort struct {
	// VoteHash is the voter's cost to hash its AU replica for one vote.
	VoteHash Seconds
	// VoteProof is the provable effort the voter embeds in the Vote message.
	VoteProof Seconds
	// PollerTotal is the total provable effort across Poll + PollProof.
	PollerTotal Seconds
	// Intro is the provable effort carried by the Poll message alone.
	Intro Seconds
	// Remainder is the provable effort carried by the PollProof message.
	Remainder Seconds
	// EvalHash is the poller's cost to hash its own replica when evaluating
	// one vote (same content walk as the voter's).
	EvalHash Seconds
}

// PollEffortFor derives the balanced effort budget for an AU of the given
// size and block count.
func (m CostModel) PollEffortFor(auBytes int64, blocks int) PollEffort {
	if blocks <= 0 {
		blocks = 1
	}
	voteHash := m.HashCost(auBytes)
	blockHash := m.HashCost(auBytes / int64(blocks))
	// Voter's proof must cover hashing one block + verifying this proof.
	// Solve p = blockHash + verifyFraction*p  =>  p = blockHash/(1-f).
	voteProof := Seconds(float64(blockHash) / (1 - m.MBFVerifyFraction))
	// Poller must out-invest the voter's full production cost plus the
	// voter's cost to verify the poller's proofs, plus a safety margin for
	// generating the vote proof. Solve for total T:
	//   T >= voterVerify(T) + voteHash + voteProof
	//   T >= f*T + voteHash + voteProof  =>  T = (voteHash+voteProof)/(1-f)
	// with a 5% margin on top.
	total := Seconds(1.05 * float64(voteHash+voteProof) / (1 - m.MBFVerifyFraction))
	intro := Seconds(float64(total) * m.IntroEffortFraction)
	return PollEffort{
		VoteHash:    voteHash,
		VoteProof:   voteProof,
		PollerTotal: total,
		Intro:       intro,
		Remainder:   total - intro,
		EvalHash:    voteHash,
	}
}

// Ledger accumulates effort attributed to one party (a peer or the
// adversary). The metrics package reads ledgers to compute the coefficient
// of friction and the cost ratio.
type Ledger struct {
	Total Seconds
	// ByKind breaks the total down for diagnostics and tests.
	ByKind map[string]Seconds
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{ByKind: make(map[string]Seconds)}
}

// Charge adds effort of the given kind.
func (l *Ledger) Charge(kind string, e Seconds) {
	if e < 0 {
		panic("effort: negative charge")
	}
	l.Total += e
	l.ByKind[kind] += e
}

// Kind returns the accumulated effort of one kind.
func (l *Ledger) Kind(kind string) Seconds { return l.ByKind[kind] }
