package trace

import (
	"fmt"
	"strings"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/wire"
)

// Result is the outcome of replaying a trace: the recorded observable
// outputs, the outputs the replayed state machine produced, and the
// element-wise divergences between them. Report renders it deterministically
// — replaying the same trace twice yields byte-identical reports.
type Result struct {
	// Recorded and Replayed are the normalized output keys, in order.
	Recorded []string
	Replayed []string
	// Divergences lists every mismatch, in order of detection.
	Divergences []string
	// Inputs counts the input records driven through the state machine.
	Inputs int
}

// Diverged reports whether the replay disagreed with the recording anywhere.
func (r *Result) Diverged() bool { return len(r.Divergences) > 0 }

// Report renders the deterministic replay report.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d input events; %d recorded outputs, %d replayed outputs\n",
		r.Inputs, len(r.Recorded), len(r.Replayed))
	for i, k := range r.Replayed {
		fmt.Fprintf(&b, "out[%d] %s\n", i, k)
	}
	if len(r.Divergences) == 0 {
		b.WriteString("verdict: MATCH\n")
	} else {
		for _, d := range r.Divergences {
			fmt.Fprintf(&b, "divergence: %s\n", d)
		}
		fmt.Fprintf(&b, "verdict: DIVERGED (%d)\n", len(r.Divergences))
	}
	return b.String()
}

// replayEnv is a protocol.Env that mirrors the real node's environment
// exactly — the same timer-ID sequence, the same seed derivation, the same
// MBF proof arithmetic — but with the clock pinned to each trace record's
// timestamp and timers fired by the trace instead of the wall clock.
type replayEnv struct {
	now      sched.Time
	rnd      *prng.Source
	mbf      *effort.MBF
	unit     effort.Seconds
	timerSeq uint64
	timers   map[protocol.TimerID]func()
	send     func(to ids.PeerID, m *protocol.Msg)
}

// Now implements protocol.Env.
func (e *replayEnv) Now() sched.Time { return e.now }

// After implements protocol.Env. IDs are issued sequentially from 1 exactly
// as the node's timer table does, so a deterministic re-execution arms timer
// k at the same point the recorded run did and the trace's timer records
// resolve by ID.
func (e *replayEnv) After(d sched.Duration, fn func()) protocol.TimerID {
	e.timerSeq++
	id := protocol.TimerID(e.timerSeq)
	e.timers[id] = fn
	return id
}

// Cancel implements protocol.Env.
func (e *replayEnv) Cancel(id protocol.TimerID) bool {
	_, ok := e.timers[id]
	delete(e.timers, id)
	return ok
}

// Rand implements protocol.Env.
func (e *replayEnv) Rand() *prng.Source { return e.rnd }

// Send implements protocol.Env. The message is summarized synchronously —
// the protocol pools the records backing m.
func (e *replayEnv) Send(to ids.PeerID, m *protocol.Msg) { e.send(to, m) }

// units mirrors node/(*env).units.
func (e *replayEnv) units(cost effort.Seconds) int {
	u := int(float64(cost)/float64(e.unit)) + 1
	if u < 1 {
		u = 1
	}
	if u > 64 {
		u = 64
	}
	return u
}

// MakeProof implements protocol.Env, mirroring node/(*env).MakeProof.
func (e *replayEnv) MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt) {
	p, r := e.mbf.Generate(ctx, e.units(cost), e.unit)
	p.UnitCost = effort.Seconds(float64(cost) / float64(p.Units))
	return p, r
}

// VerifyProof implements protocol.Env, mirroring node/(*env).VerifyProof.
func (e *replayEnv) VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool {
	mp, ok := p.(*effort.MBFProof)
	if !ok || mp == nil {
		return false
	}
	e.mbf.Bind(mp)
	return mp.Cost() >= minCost-1e-9 && e.mbf.Verify(mp, ctx)
}

// EvalReceipt implements protocol.Env, mirroring node/(*env).EvalReceipt.
func (e *replayEnv) EvalReceipt(ctx []byte, p effort.Proof) (effort.Receipt, bool) {
	mp, ok := p.(*effort.MBFProof)
	if !ok || mp == nil {
		return effort.Receipt{}, false
	}
	e.mbf.Bind(mp)
	return e.mbf.RecomputeByproduct(mp, ctx)
}

// replayObserver collects the replayed peer's observable outputs.
type replayObserver struct {
	out *[]string
}

func (o replayObserver) PollConcluded(peer ids.PeerID, au content.AUID, pollID uint64, outcome protocol.Outcome, started, now sched.Time) {
	*o.out = append(*o.out, (&Record{Kind: KindPoll, AU: au, Outcome: outcome.String()}).Key())
}

func (o replayObserver) Alarm(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	*o.out = append(*o.out, (&Record{Kind: KindAlarm, AU: au}).Key())
}

func (o replayObserver) RepairApplied(peer ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	*o.out = append(*o.out, (&Record{Kind: KindRepair, AU: au, Block: block}).Key())
}

func (o replayObserver) VoteSupplied(voter, poller ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
}

// maxDivergences bounds the report; past this the diff is noise.
const maxDivergences = 50

// Replay reconstructs the recorded peer from the trace header, drives it
// through the trace's input records, and diffs its outputs against the
// recorded ones. The error return covers reconstruction failures only;
// behavioral disagreement is reported through Result.Divergences.
func Replay(t *Trace) (*Result, error) {
	res := &Result{Recorded: t.Outputs()}

	env := &replayEnv{
		// The clock starts at StartT immediately: the recorded node
		// bootstrapped (AddAU, SeedGrade) at wall time moments before Start,
		// so grade and schedule timestamps must not predate it by decades.
		now:    sched.Time(t.Header.StartT),
		rnd:    prng.New(t.Header.Seed ^ uint64(t.Header.Peer)*0x9e3779b97f4a7c15),
		mbf:    effort.NewMBF(t.Header.MBF),
		unit:   effort.Seconds(t.Header.EffortUnit),
		timers: make(map[protocol.TimerID]func()),
	}
	env.send = func(to ids.PeerID, m *protocol.Msg) {
		res.Replayed = append(res.Replayed,
			(&Record{Kind: KindSend, To: to, MsgType: m.Type.String(), AU: m.AU, PollID: m.PollID}).Key())
	}
	peer, err := protocol.New(t.Header.Peer, t.Header.Protocol, t.Header.Costs, env, replayObserver{out: &res.Replayed})
	if err != nil {
		return nil, fmt.Errorf("trace: rebuild peer: %w", err)
	}

	// Bootstrap in header order: AddAU with the recorded reference lists,
	// then grades, then friends — the same call order the recorded node
	// used, so registration order and randomness consumption line up.
	replicas := make(map[content.AUID]content.Replica, len(t.Header.AUs))
	for _, au := range t.Header.AUs {
		rep := content.NewRealReplica(au.Spec(), au.Salt)
		if err := peer.AddAU(rep, au.Refs); err != nil {
			return nil, fmt.Errorf("trace: AddAU %d: %w", au.ID, err)
		}
		replicas[au.ID] = rep
	}
	for _, au := range t.Header.AUs {
		for _, g := range au.Grades {
			peer.SeedGrade(au.ID, g.Peer, reputation.Grade(g.Grade))
		}
	}
	peer.SetFriends(t.Header.Friends)

	// Pre-start silent rot: the bytes differ from the recorded node's
	// on-disk corruption, but both are non-canonical, which is all the
	// vote-hash comparison distinguishes.
	for _, d := range t.Header.Injected {
		replicas[d.AU].Damage(d.Block)
	}

	peer.Start()

	diverge := func(format string, args ...any) {
		if len(res.Divergences) < maxDivergences {
			res.Divergences = append(res.Divergences, fmt.Sprintf(format, args...))
		}
	}

	for i := range t.Events {
		rec := &t.Events[i]
		if !rec.IsInput() {
			continue
		}
		res.Inputs++
		env.now = sched.Time(rec.T)
		switch rec.Kind {
		case KindRecv:
			m, err := wire.Decode(rec.Frame)
			if err != nil {
				// Read validated every frame; reaching here means the caller
				// handed Replay an unvalidated trace.
				return nil, fmt.Errorf("trace: seq %d: frame does not decode: %w", rec.Seq, err)
			}
			peer.Receive(rec.From, m)
		case KindTimer:
			id := protocol.TimerID(rec.Timer)
			fn, ok := env.timers[id]
			if !ok {
				diverge("seq %d: timer %d fired in recording but is not armed in replay", rec.Seq, rec.Timer)
				continue
			}
			delete(env.timers, id)
			fn()
		case KindDamage:
			// Scrub detection: the corruption physically predates this event.
			// Pre-injected blocks are already damaged; for rot the trace did
			// not capture at injection time, apply it now — the detection
			// point is its first protocol-visible moment.
			rep := replicas[rec.AU]
			already := false
			for _, d := range rep.Snapshot() {
				if d.Block == rec.Block {
					already = true
					break
				}
			}
			if !already {
				rep.Damage(rec.Block)
			}
			peer.RaiseAuditPriority(rec.AU)
		}
	}

	// Element-wise diff of the output sequences.
	n := len(res.Recorded)
	if len(res.Replayed) < n {
		n = len(res.Replayed)
	}
	for i := 0; i < n; i++ {
		if res.Recorded[i] != res.Replayed[i] {
			diverge("out[%d]: recorded %q, replayed %q", i, res.Recorded[i], res.Replayed[i])
		}
	}
	for i := n; i < len(res.Recorded); i++ {
		diverge("out[%d]: recorded %q, replay produced nothing", i, res.Recorded[i])
	}
	for i := n; i < len(res.Replayed); i++ {
		diverge("out[%d]: replay produced %q beyond the recording", i, res.Replayed[i])
	}
	return res, nil
}
