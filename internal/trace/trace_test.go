package trace

import (
	"bytes"
	"strings"
	"testing"

	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/wire"
)

// testHeader builds a minimal valid header: one tiny AU, default protocol.
func testHeader() Header {
	return Header{
		Peer:       1,
		Seed:       42,
		StartT:     1_000_000,
		Protocol:   protocol.DefaultConfig(),
		Costs:      effort.DefaultCostModel(),
		MBF:        effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7},
		EffortUnit: 0.05,
		Friends:    []ids.PeerID{2, 3},
		AUs: []AUHeader{{
			ID: 1, Name: "au-test", Size: 64 << 10, BlockSize: 32 << 10,
			Salt:   9,
			Refs:   []ids.PeerID{2, 3},
			Grades: []GradeRef{{Peer: 2, Grade: 2}, {Peer: 3, Grade: 2}},
		}},
		Injected: []DamageRef{{AU: 1, Block: 1}},
	}
}

// testFrame encodes one well-formed wire message.
func testFrame(t testing.TB) []byte {
	t.Helper()
	frame, err := wire.Encode(&protocol.Msg{
		Type: protocol.MsgPollAck, AU: 1, PollID: 7, Poller: 2, Voter: 1, Accept: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// recordSample writes a header plus one event of every kind and returns the
// serialized trace.
func recordSample(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	if err := r.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	r.MsgIn(2, testFrame(t), nil, 1_000_010)
	r.TimerFired(1, 1_000_020)
	r.DamageNoticed(1, 0, 1_000_030)
	r.MsgOut(3, &protocol.Msg{Type: protocol.MsgPoll, AU: 1, PollID: 9}, 1_000_040)
	r.PollConcluded(1, 1, 9, protocol.OutcomeSuccess, 1_000_000, 1_000_050)
	r.RepairApplied(1, 1, 9, 0, 1_000_060)
	r.Alarm(1, 1, 9, 1_000_070)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecorderRoundTrip(t *testing.T) {
	raw := recordSample(t)
	tr, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Peer != 1 || tr.Header.Seed != 42 || tr.Header.Version != Version {
		t.Errorf("header did not round-trip: %+v", tr.Header)
	}
	wantKinds := []string{KindRecv, KindTimer, KindDamage, KindSend, KindPoll, KindRepair, KindAlarm}
	if len(tr.Events) != len(wantKinds) {
		t.Fatalf("got %d events, want %d", len(tr.Events), len(wantKinds))
	}
	for i, rec := range tr.Events {
		if rec.Kind != wantKinds[i] {
			t.Errorf("event %d kind %q, want %q", i, rec.Kind, wantKinds[i])
		}
		if rec.Seq != uint64(i+1) {
			t.Errorf("event %d seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	wantOut := []string{
		"send to=3 type=Poll au=1 poll=9",
		"poll au=1 outcome=success",
		"repair au=1 block=0",
		"alarm au=1",
	}
	got := tr.Outputs()
	if len(got) != len(wantOut) {
		t.Fatalf("outputs %v, want %v", got, wantOut)
	}
	for i := range got {
		if got[i] != wantOut[i] {
			t.Errorf("output %d = %q, want %q", i, got[i], wantOut[i])
		}
	}
	// A block-0 repair must survive serialization (no omitempty on Block).
	if tr.Events[5].Block != 0 || tr.Events[5].AU != 1 {
		t.Errorf("repair record lost its block: %+v", tr.Events[5])
	}
}

func TestRecorderDropsEventsBeforeHeader(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	r.TimerFired(1, 5) // dropped: no header yet
	if err := r.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	r.TimerFired(2, 6)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Timer != 2 {
		t.Fatalf("pre-header event leaked into the trace: %+v", tr.Events)
	}
	if err := r.WriteHeader(testHeader()); err == nil {
		t.Error("second WriteHeader must fail")
	}
}

func TestRecorderRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	if err := r.WriteHeader(testHeader()); err != nil {
		t.Fatal(err)
	}
	r.MsgIn(2, make([]byte, MaxFrameBytes+1), nil, 1)
	if r.Err() == nil {
		t.Error("oversized frame must set the sticky error")
	}
}

// mutateLine returns the trace with line n (0-based) replaced by repl; a nil
// repl deletes the line.
func mutateLine(t testing.TB, raw []byte, n int, repl []byte) []byte {
	t.Helper()
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if n >= len(lines) {
		t.Fatalf("trace has %d lines, wanted line %d", len(lines), n)
	}
	if repl == nil {
		lines = append(lines[:n], lines[n+1:]...)
	} else {
		lines[n] = repl
	}
	return append(bytes.Join(lines, []byte("\n")), '\n')
}

func TestReadRejectsCorruptTraces(t *testing.T) {
	raw := recordSample(t)
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "empty input"},
		{"header-not-json", []byte("{\n"), "parse header"},
		{"header-wrong-kind", mutateLine(t, raw, 0,
			bytes.Replace(lines[0], []byte(`"k":"header"`), []byte(`"k":"nope"`), 1)), "kind"},
		{"header-wrong-version", mutateLine(t, raw, 0,
			bytes.Replace(lines[0], []byte(`"v":1`), []byte(`"v":99`), 1)), "version 99"},
		{"record-truncated", append(append([]byte{}, raw...), lines[1][:len(lines[1])/2]...), "parse"},
		{"record-unknown-kind", mutateLine(t, raw, 3,
			bytes.Replace(lines[3], []byte(`"k":"damage"`), []byte(`"k":"mystery"`), 1)), "unknown kind"},
		{"record-missing", mutateLine(t, raw, 2, nil), "out of order"},
		{"record-duplicated", mutateLine(t, raw, 3, lines[2]), "out of order"},
		{"records-reordered", mutateLine(t, mutateLine(t, raw, 2, lines[3]), 3, lines[2]), "out of order"},
		{"recv-bad-frame", mutateLine(t, raw, 1,
			[]byte(`{"k":"recv","q":1,"t":5,"from":2,"frame":"AAAA"}`)), "does not decode"},
		{"damage-unknown-au", mutateLine(t, raw, 3,
			[]byte(`{"k":"damage","q":3,"t":5,"au":77,"block":0}`)), "unknown AU"},
		{"damage-block-range", mutateLine(t, raw, 3,
			[]byte(`{"k":"damage","q":3,"t":5,"au":1,"block":99}`)), "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("Read accepted a corrupt trace")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestReadToleratesTrailingBlankLine(t *testing.T) {
	raw := append(recordSample(t), '\n')
	if _, err := Read(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderValidateBounds(t *testing.T) {
	h := testHeader()
	h.MBF.TableWords = 1 << 30
	if err := (&h).validate(); err == nil {
		t.Error("gigantic MBF table accepted")
	}
	h = testHeader()
	h.AUs[0].Size = 1 << 40
	if err := (&h).validate(); err == nil {
		t.Error("gigantic AU accepted")
	}
	h = testHeader()
	h.Injected = []DamageRef{{AU: 1, Block: 99}}
	if err := (&h).validate(); err == nil {
		t.Error("out-of-range injected damage accepted")
	}
	h = testHeader()
	h.AUs = nil
	if err := (&h).validate(); err == nil {
		t.Error("AU-less header accepted")
	}
}

// TestReplayReportDeterminism: replaying the same trace twice produces
// byte-identical reports, even when the trace diverges (here: a timer record
// that replay never arms, because no inputs precede it).
func TestReplayReportDeterminism(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	h := testHeader()
	h.Injected = nil
	if err := r.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	r.TimerFired(9999, 1_000_010) // never armed in replay
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Replay(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Report() != res2.Report() {
		t.Errorf("reports differ:\n%s\n----\n%s", res1.Report(), res2.Report())
	}
	if !res1.Diverged() {
		t.Error("phantom timer did not register as a divergence")
	}
}
