package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"lockss/internal/content"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

// Recorder serializes a node's event stream to a trace writer. It implements
// both protocol.EnvTap (wire it as node.Config.Tap) and protocol.Observer
// (tee it into node.Config.Observer with protocol.TeeObserver), so one value
// captures the inputs and the observable outputs of a run.
//
// All tap and observer callbacks arrive on the node's actor loop, but the
// Recorder carries its own mutex so Close and Err are safe from any
// goroutine. Errors are sticky: the first write failure is remembered and
// every later event is dropped, so a full disk cannot wedge the node.
type Recorder struct {
	mu         sync.Mutex
	w          *bufio.Writer
	seq        uint64
	err        error
	headerDone bool
}

// NewRecorder wraps w. Call WriteHeader before wiring the recorder into a
// node; Close flushes buffered records.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteHeader emits the trace's first line. The caller fills the
// reconstruction fields; Kind and Version are set here.
func (r *Recorder) WriteHeader(h Header) error {
	h.Kind = "header"
	h.Version = Version
	if err := h.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.headerDone {
		return fmt.Errorf("trace: header already written")
	}
	if r.err != nil {
		return r.err
	}
	r.headerDone = true
	r.writeLine(&h)
	return r.err
}

// writeLine marshals v and appends it as one line; sticky on error. Callers
// hold r.mu.
func (r *Recorder) writeLine(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		r.err = fmt.Errorf("trace: marshal: %w", err)
		return
	}
	if _, err := r.w.Write(b); err != nil {
		r.err = fmt.Errorf("trace: write: %w", err)
		return
	}
	if err := r.w.WriteByte('\n'); err != nil {
		r.err = fmt.Errorf("trace: write: %w", err)
	}
}

// record assigns the next logical-clock key and writes one event line.
func (r *Recorder) record(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || !r.headerDone {
		return
	}
	r.seq++
	rec.Seq = r.seq
	r.writeLine(&rec)
}

// MsgIn implements protocol.EnvTap. The frame is retained only for the
// duration of the call (it is serialized before returning).
func (r *Recorder) MsgIn(from ids.PeerID, frame []byte, m *protocol.Msg, now sched.Time) {
	if len(frame) > MaxFrameBytes {
		r.mu.Lock()
		if r.err == nil {
			r.err = fmt.Errorf("trace: inbound frame of %d bytes exceeds recordable maximum %d", len(frame), MaxFrameBytes)
		}
		r.mu.Unlock()
		return
	}
	r.record(Record{Kind: KindRecv, T: int64(now), From: from, Frame: frame})
}

// TimerFired implements protocol.EnvTap.
func (r *Recorder) TimerFired(id protocol.TimerID, now sched.Time) {
	r.record(Record{Kind: KindTimer, T: int64(now), Timer: uint64(id)})
}

// MsgOut implements protocol.EnvTap: a summary of the outbound message, not
// its bytes (see Record).
func (r *Recorder) MsgOut(to ids.PeerID, m *protocol.Msg, now sched.Time) {
	r.record(Record{Kind: KindSend, T: int64(now), To: to, MsgType: m.Type.String(), AU: m.AU, PollID: m.PollID})
}

// DamageNoticed implements protocol.EnvTap.
func (r *Recorder) DamageNoticed(au content.AUID, block int, now sched.Time) {
	r.record(Record{Kind: KindDamage, T: int64(now), AU: au, Block: block})
}

// PollConcluded implements protocol.Observer. The poll ID and start time are
// deliberately not serialized: the trace format (and its pinned goldens) is
// byte-stable, and replay re-derives both from the input stream anyway.
func (r *Recorder) PollConcluded(peer ids.PeerID, au content.AUID, pollID uint64, outcome protocol.Outcome, started, now sched.Time) {
	r.record(Record{Kind: KindPoll, T: int64(now), AU: au, Outcome: outcome.String()})
}

// Alarm implements protocol.Observer.
func (r *Recorder) Alarm(peer ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	r.record(Record{Kind: KindAlarm, T: int64(now), AU: au})
}

// RepairApplied implements protocol.Observer.
func (r *Recorder) RepairApplied(peer ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	r.record(Record{Kind: KindRepair, T: int64(now), AU: au, Block: block})
}

// VoteSupplied implements protocol.Observer. Vote sends are already captured
// as send records; this adds nothing for replay diffing.
func (r *Recorder) VoteSupplied(voter, poller ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
}

// Err returns the sticky error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes buffered records and returns the sticky error. It does not
// close the underlying writer.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = fmt.Errorf("trace: flush: %w", err)
	}
	return r.err
}
