package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode hammers the trace reader with truncated, corrupt and
// reordered input. The contract: Read either returns a validated trace or an
// error — it never panics — and anything it accepts renders output keys
// without panicking either.
func FuzzTraceDecode(f *testing.F) {
	valid := recordSample(f)
	lines := bytes.Split(bytes.TrimSuffix(valid, []byte("\n")), []byte("\n"))

	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte("{}\n{}\n"))
	f.Add(valid[:len(valid)/2])                       // truncated mid-record
	f.Add(append([]byte{}, lines[0]...))              // header only, no newline
	f.Add(mutateLine(f, valid, 2, lines[4]))          // reordered seq
	f.Add(mutateLine(f, valid, 1, lines[1][:20]))     // corrupt record JSON
	f.Add(mutateLine(f, valid, 0, []byte(`{"k":1}`))) // header wrong type
	f.Add(mutateLine(f, valid, 1,
		[]byte(`{"k":"recv","q":1,"t":5,"from":2,"frame":"AAAA"}`))) // undecodable frame
	f.Add(mutateLine(f, valid, 1,
		[]byte(`{"k":"repair","q":1,"t":5,"au":1,"block":-1}`))) // negative block

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must be internally consistent enough to render.
		var prev uint64
		for i := range tr.Events {
			rec := &tr.Events[i]
			if rec.Seq != prev+1 {
				t.Fatalf("accepted trace has unordered seq %d after %d", rec.Seq, prev)
			}
			prev = rec.Seq
			_ = rec.Key()
			_ = rec.IsInput()
		}
		_ = tr.Outputs()
	})
}
