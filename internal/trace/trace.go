// Package trace records and replays the exact event stream that drives one
// node's protocol state machine. The recording tap (Recorder) captures, in
// actor-loop execution order: decoded inbound frames, live timer firings,
// scrub-detected damage, plus the peer's observable outputs (sends, poll
// conclusions, repairs, alarms). Because the protocol layer is a
// deterministic function of that input stream — single-threaded, with all
// randomness drawn from a seeded PRNG recorded in the header — the Replay
// engine can re-execute a captured trace offline through the simulator-style
// environment and diff the replayed outputs against the recorded ones. Any
// fleet bug whose trace is captured becomes a reproducible offline test case
// (after O'Callahan et al., "Lightweight User-Space Record And Replay").
//
// A trace is a JSONL file: line 1 is the Header, every subsequent line one
// Record carrying a strictly sequential logical-clock key assigned on the
// actor loop. The format is versioned via Header.Version; readers reject
// versions they do not understand.
package trace

import (
	"fmt"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
)

// Version is the trace format version this package writes and the only
// version it reads.
const Version = 1

// MaxFrameBytes bounds one recorded wire frame; traces are a debugging
// format for demo-scale clusters, not bulk transfer.
const MaxFrameBytes = 4 << 20

// MaxLineBytes bounds one serialized trace line (a frame base64-expands by
// 4/3, plus JSON overhead).
const MaxLineBytes = 8 << 20

// Record kinds. Input kinds drive the replayed state machine; output kinds
// pin the observable behavior the replay is diffed against.
const (
	// KindRecv is an inbound frame, recorded after decode and immediately
	// before delivery to the protocol. Input.
	KindRecv = "recv"
	// KindTimer is a live protocol timer firing. Cancelled timers are never
	// recorded. Input.
	KindTimer = "timer"
	// KindDamage is scrub-detected on-disk damage, recorded at the point it
	// is raised to the protocol as an expedited-audit request. Input.
	KindDamage = "damage"
	// KindSend is an outbound protocol message (summary, not bytes). Output.
	KindSend = "send"
	// KindPoll is a concluded poll with its outcome. Output.
	KindPoll = "poll"
	// KindRepair is a repair applied to a local replica block. Output.
	KindRepair = "repair"
	// KindAlarm is an inconclusive-poll alarm. Output.
	KindAlarm = "alarm"
)

// GradeRef seeds one acquaintance grade in the header.
type GradeRef struct {
	Peer  ids.PeerID `json:"peer"`
	Grade uint8      `json:"grade"`
}

// DamageRef names one damaged block.
type DamageRef struct {
	AU    content.AUID `json:"au"`
	Block int          `json:"block"`
}

// AUHeader captures one archival unit's bootstrap state: its published
// shape, the replica salt, and the ordered reference list. Order matters —
// replay re-executes AddAU and SeedGrade calls in exactly this order so the
// peer's internal registration order (and hence its randomness consumption)
// matches the recorded run.
type AUHeader struct {
	ID        content.AUID `json:"id"`
	Name      string       `json:"name"`
	Size      int64        `json:"size"`
	BlockSize int64        `json:"blockSize"`
	Salt      uint64       `json:"salt"`
	Refs      []ids.PeerID `json:"refs"`
	Grades    []GradeRef   `json:"grades,omitempty"`
}

// Spec returns the AU's published shape.
func (a AUHeader) Spec() content.AUSpec {
	return content.AUSpec{ID: a.ID, Name: a.Name, Size: a.Size, BlockSize: a.BlockSize}
}

// Header is the first line of a trace: everything needed to reconstruct the
// recorded peer at its start state. The determinism contract is that a peer
// built from this header and fed the trace's input records re-derives the
// trace's output records exactly.
type Header struct {
	Kind    string `json:"k"` // always "header"
	Version int    `json:"v"`
	// Peer is the recorded node's identity.
	Peer ids.PeerID `json:"peer"`
	// Seed is the node's protocol randomness seed (node.Config.Seed; the
	// per-peer stream derives from it exactly as in the node).
	Seed uint64 `json:"seed"`
	// StartT is the environment clock (Unix nanoseconds) at Peer.Start.
	StartT int64 `json:"start"`
	// Protocol, Costs, MBF and EffortUnit reproduce the node's operating
	// point; MBF proofs are deterministic given these.
	Protocol   protocol.Config  `json:"protocol"`
	Costs      effort.CostModel `json:"costs"`
	MBF        effort.MBFParams `json:"mbf"`
	EffortUnit float64          `json:"effortUnit"`
	// Friends is the operator friends list, in SetFriends order.
	Friends []ids.PeerID `json:"friends,omitempty"`
	// AUs lists the preserved units in AddAU order.
	AUs []AUHeader `json:"aus"`
	// Injected lists blocks that were silently damaged on disk before the
	// recording started (injected rot the scrubber had not yet found).
	// Replay applies equivalent damage up front: the corrupt bytes differ
	// from the on-disk ones, but any non-canonical content disagrees with
	// the canonical vote hashes identically, so poll outcomes match.
	Injected []DamageRef `json:"injected,omitempty"`
}

// validate checks the header's internal consistency.
func (h *Header) validate() error {
	if h.Kind != "header" {
		return fmt.Errorf("trace: first line kind %q, want \"header\"", h.Kind)
	}
	if h.Version != Version {
		return fmt.Errorf("trace: version %d unsupported (reader speaks %d)", h.Version, Version)
	}
	if h.Peer == ids.NoPeer {
		return fmt.Errorf("trace: header missing peer identity")
	}
	if len(h.AUs) == 0 {
		return fmt.Errorf("trace: header lists no AUs")
	}
	if h.EffortUnit <= 0 {
		return fmt.Errorf("trace: header effort unit %g not positive", h.EffortUnit)
	}
	if err := h.Protocol.Validate(); err != nil {
		return fmt.Errorf("trace: header protocol config: %w", err)
	}
	if h.MBF.TableWords <= 0 || h.MBF.Steps <= 0 || h.MBF.Checkpoints <= 0 || h.MBF.VerifySegments <= 0 {
		return fmt.Errorf("trace: header MBF params invalid")
	}
	// Traces are demo-scale; cap the proof parameters so a hostile header
	// cannot demand gigabyte tables or unbounded walks from the replayer.
	if h.MBF.TableWords > 1<<24 || h.MBF.Steps > 1<<24 ||
		h.MBF.Checkpoints > 1<<12 || h.MBF.VerifySegments > h.MBF.Checkpoints {
		return fmt.Errorf("trace: header MBF params exceed replayable bounds")
	}
	seen := make(map[content.AUID]bool, len(h.AUs))
	for _, au := range h.AUs {
		if au.ID == 0 {
			return fmt.Errorf("trace: header AU with zero ID")
		}
		if seen[au.ID] {
			return fmt.Errorf("trace: header AU %d listed twice", au.ID)
		}
		seen[au.ID] = true
		if au.Size <= 0 || au.BlockSize <= 0 {
			return fmt.Errorf("trace: header AU %d has non-positive size or block size", au.ID)
		}
		if au.Size > 64<<20 {
			return fmt.Errorf("trace: header AU %d size %d exceeds the replayable maximum %d", au.ID, au.Size, 64<<20)
		}
	}
	for _, d := range h.Injected {
		au, ok := h.au(d.AU)
		if !ok {
			return fmt.Errorf("trace: injected damage names unknown AU %d", d.AU)
		}
		if d.Block < 0 || d.Block >= au.Spec().Blocks() {
			return fmt.Errorf("trace: injected damage block %d out of range for AU %d", d.Block, d.AU)
		}
	}
	return nil
}

// au finds an AU header by ID.
func (h *Header) au(id content.AUID) (AUHeader, bool) {
	for _, a := range h.AUs {
		if a.ID == id {
			return a, true
		}
	}
	return AUHeader{}, false
}

// Record is one trace event. Seq is the logical clock: strictly sequential
// from 1, assigned on the actor loop, so the file order is the execution
// order. T is the environment clock (Unix nanoseconds) when the event was
// observed; replay pins its clock to it. Block deliberately has no omitempty
// — block 0 is a valid index.
type Record struct {
	Kind string `json:"k"`
	Seq  uint64 `json:"q"`
	T    int64  `json:"t"`

	// recv fields: the claimed sender and the decoded wire frame.
	From  ids.PeerID `json:"from,omitempty"`
	Frame []byte     `json:"frame,omitempty"`

	// timer fields.
	Timer uint64 `json:"timer,omitempty"`

	// send fields (To, MsgType, AU, PollID) — a summary sufficient for
	// divergence diffing; payload bytes are intentionally excluded because
	// injected-corruption bytes are replica-mark-dependent.
	To      ids.PeerID `json:"to,omitempty"`
	MsgType string     `json:"mt,omitempty"`

	// damage / send / poll / repair / alarm fields.
	AU     content.AUID `json:"au,omitempty"`
	Block  int          `json:"block"`
	PollID uint64       `json:"poll,omitempty"`

	// poll fields.
	Outcome string `json:"outcome,omitempty"`
}

// IsInput reports whether the record drives the replayed state machine (as
// opposed to pinning its expected output).
func (r *Record) IsInput() bool {
	switch r.Kind {
	case KindRecv, KindTimer, KindDamage:
		return true
	}
	return false
}

// validate checks one record against the header and the previous sequence
// number.
func (r *Record) validate(h *Header, prevSeq uint64) error {
	if r.Seq != prevSeq+1 {
		return fmt.Errorf("trace: record %q out of order: seq %d after %d", r.Kind, r.Seq, prevSeq)
	}
	switch r.Kind {
	case KindRecv:
		if len(r.Frame) == 0 {
			return fmt.Errorf("trace: recv record %d has no frame", r.Seq)
		}
		if len(r.Frame) > MaxFrameBytes {
			return fmt.Errorf("trace: recv record %d frame exceeds %d bytes", r.Seq, MaxFrameBytes)
		}
	case KindTimer:
		if r.Timer == 0 {
			return fmt.Errorf("trace: timer record %d has zero timer ID", r.Seq)
		}
	case KindDamage, KindRepair:
		au, ok := h.au(r.AU)
		if !ok {
			return fmt.Errorf("trace: %s record %d names unknown AU %d", r.Kind, r.Seq, r.AU)
		}
		if r.Block < 0 || r.Block >= au.Spec().Blocks() {
			return fmt.Errorf("trace: %s record %d block %d out of range for AU %d", r.Kind, r.Seq, r.Block, r.AU)
		}
	case KindSend:
		if r.To == ids.NoPeer {
			return fmt.Errorf("trace: send record %d has no recipient", r.Seq)
		}
		if r.MsgType == "" {
			return fmt.Errorf("trace: send record %d has no message type", r.Seq)
		}
	case KindPoll:
		if _, ok := h.au(r.AU); !ok {
			return fmt.Errorf("trace: poll record %d names unknown AU %d", r.Seq, r.AU)
		}
		if r.Outcome == "" {
			return fmt.Errorf("trace: poll record %d has no outcome", r.Seq)
		}
	case KindAlarm:
		if _, ok := h.au(r.AU); !ok {
			return fmt.Errorf("trace: alarm record %d names unknown AU %d", r.Seq, r.AU)
		}
	default:
		return fmt.Errorf("trace: record %d has unknown kind %q", r.Seq, r.Kind)
	}
	return nil
}

// Key renders the record's divergence-diff key: the normalized one-line form
// of an observable output. Input records have no key.
func (r *Record) Key() string {
	switch r.Kind {
	case KindSend:
		return fmt.Sprintf("send to=%d type=%s au=%d poll=%d", r.To, r.MsgType, r.AU, r.PollID)
	case KindPoll:
		return fmt.Sprintf("poll au=%d outcome=%s", r.AU, r.Outcome)
	case KindRepair:
		return fmt.Sprintf("repair au=%d block=%d", r.AU, r.Block)
	case KindAlarm:
		return fmt.Sprintf("alarm au=%d", r.AU)
	}
	return ""
}

// Trace is a fully read and validated trace file.
type Trace struct {
	Header Header
	Events []Record
}

// Outputs returns the recorded observable-output keys in order.
func (t *Trace) Outputs() []string {
	var out []string
	for i := range t.Events {
		if k := t.Events[i].Key(); k != "" {
			out = append(out, k)
		}
	}
	return out
}
