package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"lockss/internal/wire"
)

// Read parses and validates a trace stream: the header line, then every
// record in strict logical-clock order, with each recv frame checked against
// the wire codec so a validated trace is guaranteed replayable. Truncated,
// corrupt or reordered input returns an error; it never panics.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var t Trace
	if err := json.Unmarshal(sc.Bytes(), &t.Header); err != nil {
		return nil, fmt.Errorf("trace: parse header: %w", err)
	}
	if err := t.Header.validate(); err != nil {
		return nil, err
	}
	var prevSeq uint64
	for line := 2; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue // tolerate a trailing blank line
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: parse: %w", line, err)
		}
		if err := rec.validate(&t.Header, prevSeq); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Kind == KindRecv {
			if _, err := wire.Decode(rec.Frame); err != nil {
				return nil, fmt.Errorf("trace: line %d: recv frame does not decode: %w", line, err)
			}
		}
		prevSeq = rec.Seq
		t.Events = append(t.Events, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return &t, nil
}

// ReadFile reads and validates a trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
