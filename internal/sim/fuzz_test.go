package sim

import (
	"slices"
	"testing"
)

// checkHeapInvariants asserts the queue is a well-formed binary min-heap
// whose back-pointers are consistent and whose membership matches the live
// index. The event pool must never hand out a struct that is still queued.
func checkHeapInvariants(t *testing.T, e *Engine) {
	t.Helper()
	if len(e.queue) != len(e.live) {
		t.Fatalf("queue has %d events, live index has %d", len(e.queue), len(e.live))
	}
	for i, ev := range e.queue {
		if ev.heap != i {
			t.Fatalf("event %d stores heap index %d at position %d", ev.id, ev.heap, i)
		}
		if got, ok := e.live[ev.id]; !ok || got != ev {
			t.Fatalf("queued event %d missing from live index", ev.id)
		}
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < len(e.queue) && e.queue.Less(child, i) {
				t.Fatalf("heap order violated between %d and child %d", i, child)
			}
		}
	}
	for _, ev := range e.free {
		if ev.fn != nil {
			t.Fatal("pooled event retains its closure")
		}
		if _, ok := e.live[ev.id]; ok && len(e.queue) > 0 && e.live[ev.id] == ev {
			t.Fatalf("pooled event %d still live", ev.id)
		}
	}
}

// FuzzEventHeap drives an Engine through arbitrary schedule/cancel/run/step
// interleavings against a naive model, asserting that events fire in
// (timestamp, FIFO-at-same-instant) order, cancellation semantics hold, and
// the heap plus the event pool stay structurally sound throughout.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 2, 10})
	f.Add([]byte{0, 5, 0, 5, 0, 5, 1, 0, 2, 255})
	f.Add([]byte{0, 1, 3, 0, 0, 0, 1, 1, 0, 2, 2, 4, 3, 0, 3, 0})
	f.Add([]byte{0, 200, 0, 100, 0, 100, 0, 0, 1, 2, 2, 150, 0, 50, 2, 255, 2, 255})
	f.Fuzz(func(t *testing.T, ops []byte) {
		e := NewEngine()
		type modelEvent struct {
			at    Time
			label int // scheduling order, the FIFO tie-break
			id    EventID
		}
		var (
			pending []modelEvent
			fired   []int
			nextLab int
		)
		schedule := func(delta byte) {
			at := e.Now().Add(Duration(delta))
			label := nextLab
			nextLab++
			id := e.At(at, func() { fired = append(fired, label) })
			pending = append(pending, modelEvent{at: at, label: label, id: id})
		}
		expectUpTo := func(until Time) []int {
			var due []modelEvent
			rest := pending[:0:0]
			for _, ev := range pending {
				if ev.at <= until {
					due = append(due, ev)
				} else {
					rest = append(rest, ev)
				}
			}
			slices.SortStableFunc(due, func(a, b modelEvent) int {
				switch {
				case a.at != b.at:
					return int(a.at - b.at)
				default:
					return a.label - b.label
				}
			})
			pending = rest
			out := make([]int, len(due))
			for i, ev := range due {
				out[i] = ev.label
			}
			return out
		}
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%4, ops[i+1]
			switch op {
			case 0: // schedule arg ns from now
				schedule(arg)
			case 1: // cancel the arg-th pending event (twice: second is a no-op)
				if len(pending) == 0 {
					continue
				}
				k := int(arg) % len(pending)
				ev := pending[k]
				if !e.Cancel(ev.id) {
					t.Fatalf("Cancel(%d) of a pending event returned false", ev.id)
				}
				if e.Cancel(ev.id) {
					t.Fatalf("second Cancel(%d) returned true", ev.id)
				}
				pending = append(pending[:k], pending[k+1:]...)
			case 2: // run to a horizon
				until := e.Now().Add(Duration(arg))
				want := expectUpTo(until)
				fired = fired[:0]
				e.Run(until)
				if !slices.Equal(fired, want) {
					t.Fatalf("Run(%v) fired %v, want %v", until, fired, want)
				}
			case 3: // single step
				want := []int(nil)
				if len(pending) > 0 {
					earliest := pending[0]
					for _, ev := range pending[1:] {
						if ev.at < earliest.at || (ev.at == earliest.at && ev.label < earliest.label) {
							earliest = ev
						}
					}
					want = append(want, earliest.label)
					for k, ev := range pending {
						if ev.id == earliest.id {
							pending = append(pending[:k], pending[k+1:]...)
							break
						}
					}
				}
				fired = fired[:0]
				stepped := e.Step()
				if stepped != (len(want) > 0) {
					t.Fatalf("Step() = %v with %d pending", stepped, len(want))
				}
				if !slices.Equal(fired, want) {
					t.Fatalf("Step fired %v, want %v", fired, want)
				}
			}
			if e.Pending() != len(pending) {
				t.Fatalf("Pending() = %d, model has %d", e.Pending(), len(pending))
			}
			if at, ok := e.Next(); ok != (len(pending) > 0) {
				t.Fatalf("Next() ok = %v with %d pending", ok, len(pending))
			} else if ok {
				min := pending[0].at
				for _, ev := range pending[1:] {
					if ev.at < min {
						min = ev.at
					}
				}
				if at != min {
					t.Fatalf("Next() = %v, model min %v", at, min)
				}
			}
			checkHeapInvariants(t, e)
		}
	})
}
