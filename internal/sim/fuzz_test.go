package sim

import (
	"slices"
	"testing"
)

// checkHeapInvariants asserts the queue is a well-formed binary min-heap
// whose back-pointers are consistent and whose membership matches the dense
// slot index. The event pool must never hand out a struct that is still
// queued, and vacated slots must be generation-bumped and free-listed.
func checkHeapInvariants(t *testing.T, e *Engine) {
	t.Helper()
	live := 0
	for _, ev := range e.slots {
		if ev != nil {
			live++
		}
	}
	if len(e.queue) != live {
		t.Fatalf("queue has %d events, slot index has %d", len(e.queue), live)
	}
	if len(e.slots) != len(e.gens) {
		t.Fatalf("slots/gens length mismatch: %d vs %d", len(e.slots), len(e.gens))
	}
	for i, ev := range e.queue {
		if ev.heap != i {
			t.Fatalf("event %d stores heap index %d at position %d", ev.id, ev.heap, i)
		}
		slot := uint32(ev.id)
		if slot == 0 || int(slot-1) >= len(e.slots) {
			t.Fatalf("queued event %d carries out-of-range slot", ev.id)
		}
		if e.slots[slot-1] != ev {
			t.Fatalf("queued event %d missing from slot index", ev.id)
		}
		if e.gens[slot-1] != uint32(ev.id>>32) {
			t.Fatalf("queued event %d generation mismatch: slot gen %d, id gen %d",
				ev.id, e.gens[slot-1], uint32(ev.id>>32))
		}
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < len(e.queue) && e.queue.Less(child, i) {
				t.Fatalf("heap order violated between %d and child %d", i, child)
			}
		}
	}
	seen := make(map[uint32]bool, len(e.freeSlots))
	for _, s := range e.freeSlots {
		if int(s) >= len(e.slots) {
			t.Fatalf("free slot %d out of range", s)
		}
		if e.slots[s] != nil {
			t.Fatalf("free slot %d still occupied", s)
		}
		if seen[s] {
			t.Fatalf("slot %d free-listed twice", s)
		}
		seen[s] = true
	}
	if len(e.freeSlots)+live != len(e.slots) {
		t.Fatalf("%d free + %d live slots != %d total", len(e.freeSlots), live, len(e.slots))
	}
	for _, ev := range e.free {
		if ev.fn != nil {
			t.Fatal("pooled event retains its closure")
		}
		if got := e.lookup(ev.id); got == ev {
			t.Fatalf("pooled event %d still resolvable", ev.id)
		}
	}
}

// FuzzEventHeap drives an Engine through arbitrary schedule/cancel/run/step
// interleavings against a naive model, asserting that events fire in
// (timestamp, FIFO-at-same-instant) order, cancellation semantics hold
// (including stale Cancels of fired and freshly reused slots staying no-ops),
// and the heap plus the slot index and event pool stay structurally sound
// throughout.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 2, 10})
	f.Add([]byte{0, 5, 0, 5, 0, 5, 1, 0, 2, 255})
	f.Add([]byte{0, 1, 3, 0, 0, 0, 1, 1, 0, 2, 2, 4, 3, 0, 3, 0})
	f.Add([]byte{0, 200, 0, 100, 0, 100, 0, 0, 1, 2, 2, 150, 0, 50, 2, 255, 2, 255})
	// Exercise slot reuse: schedule, run (vacates slot), schedule again (reuses
	// slot under a new generation), then stale-cancel the fired event.
	f.Add([]byte{0, 1, 2, 2, 0, 1, 1, 0, 2, 255, 3, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		e := NewEngine()
		type modelEvent struct {
			at    Time
			label int // scheduling order, the FIFO tie-break
			id    EventID
		}
		var (
			pending []modelEvent
			retired []EventID // IDs whose events fired or were cancelled
			fired   []int
			nextLab int
		)
		schedule := func(delta byte) {
			at := e.Now().Add(Duration(delta))
			label := nextLab
			nextLab++
			id := e.At(at, func() { fired = append(fired, label) })
			pending = append(pending, modelEvent{at: at, label: label, id: id})
		}
		expectUpTo := func(until Time) []int {
			var due []modelEvent
			rest := pending[:0:0]
			for _, ev := range pending {
				if ev.at <= until {
					due = append(due, ev)
				} else {
					rest = append(rest, ev)
				}
			}
			slices.SortStableFunc(due, func(a, b modelEvent) int {
				switch {
				case a.at != b.at:
					return int(a.at - b.at)
				default:
					return a.label - b.label
				}
			})
			pending = rest
			out := make([]int, len(due))
			for i, ev := range due {
				out[i] = ev.label
				retired = append(retired, ev.id)
			}
			return out
		}
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%5, ops[i+1]
			switch op {
			case 0: // schedule arg ns from now
				schedule(arg)
			case 1: // cancel the arg-th pending event (twice: second is a no-op)
				if len(pending) == 0 {
					continue
				}
				k := int(arg) % len(pending)
				ev := pending[k]
				if !e.Cancel(ev.id) {
					t.Fatalf("Cancel(%d) of a pending event returned false", ev.id)
				}
				if e.Cancel(ev.id) {
					t.Fatalf("second Cancel(%d) returned true", ev.id)
				}
				retired = append(retired, ev.id)
				pending = append(pending[:k], pending[k+1:]...)
			case 2: // run to a horizon
				until := e.Now().Add(Duration(arg))
				want := expectUpTo(until)
				fired = fired[:0]
				e.Run(until)
				if !slices.Equal(fired, want) {
					t.Fatalf("Run(%v) fired %v, want %v", until, fired, want)
				}
			case 3: // single step
				want := []int(nil)
				if len(pending) > 0 {
					earliest := pending[0]
					for _, ev := range pending[1:] {
						if ev.at < earliest.at || (ev.at == earliest.at && ev.label < earliest.label) {
							earliest = ev
						}
					}
					want = append(want, earliest.label)
					for k, ev := range pending {
						if ev.id == earliest.id {
							retired = append(retired, ev.id)
							pending = append(pending[:k], pending[k+1:]...)
							break
						}
					}
				}
				fired = fired[:0]
				stepped := e.Step()
				if stepped != (len(want) > 0) {
					t.Fatalf("Step() = %v with %d pending", stepped, len(want))
				}
				if !slices.Equal(fired, want) {
					t.Fatalf("Step fired %v, want %v", fired, want)
				}
			case 4: // stale-cancel the arg-th retired ID: must be a safe no-op
				if len(retired) == 0 {
					continue
				}
				id := retired[int(arg)%len(retired)]
				before := e.Pending()
				if e.Cancel(id) {
					t.Fatalf("stale Cancel(%d) returned true", id)
				}
				if e.Pending() != before {
					t.Fatalf("stale Cancel(%d) changed Pending %d -> %d", id, before, e.Pending())
				}
			}
			if e.Pending() != len(pending) {
				t.Fatalf("Pending() = %d, model has %d", e.Pending(), len(pending))
			}
			if at, ok := e.Next(); ok != (len(pending) > 0) {
				t.Fatalf("Next() ok = %v with %d pending", ok, len(pending))
			} else if ok {
				min := pending[0].at
				for _, ev := range pending[1:] {
					if ev.at < min {
						min = ev.at
					}
				}
				if at != min {
					t.Fatalf("Next() = %v, model min %v", at, min)
				}
			}
			checkHeapInvariants(t, e)
		}
	})
}
