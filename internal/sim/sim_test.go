package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired out of order: %v", got)
	}
	if e.Now() != 100 {
		t.Errorf("clock should advance to horizon, got %v", e.Now())
	}
}

func TestFIFOSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Error("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Error("double Cancel returned true")
	}
	e.Run(100)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	var idz []EventID
	for i := 0; i < 20; i++ {
		i := i
		idz = append(idz, e.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel the odd ones.
	for i := 1; i < 20; i += 2 {
		e.Cancel(idz[i])
	}
	e.Run(1000)
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10", len(got))
	}
	for _, v := range got {
		if v%2 != 0 {
			t.Errorf("cancelled event %d fired", v)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.After(10, chain)
		}
	}
	e.After(10, chain)
	e.Run(1000)
	if count != 5 {
		t.Errorf("chained events fired %d times, want 5", count)
	}
	if e.Now() != 1000 {
		t.Errorf("clock at %v", e.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(50, func() { fired++ })
	e.At(150, func() { fired++ })
	e.Run(100)
	if fired != 1 {
		t.Errorf("fired %d events before horizon 100, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d, want 1", e.Pending())
	}
	e.Run(200)
	if fired != 2 {
		t.Errorf("fired %d after second run, want 2", fired)
	}
}

func TestEventAtHorizonFires(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	e.Run(100)
	if !fired {
		t.Error("event exactly at the horizon should fire")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(200)
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++; e.Stop() })
	e.At(20, func() { fired++ })
	e.Run(100)
	if fired != 1 {
		t.Errorf("Stop did not halt the run: fired=%d", fired)
	}
	if e.Now() != 10 {
		t.Errorf("clock should freeze at stop instant, got %v", e.Now())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	if !e.Step() || fired != 1 || e.Now() != 10 {
		t.Errorf("first Step wrong: fired=%d now=%v", fired, e.Now())
	}
	if !e.Step() || fired != 2 {
		t.Error("second Step wrong")
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5, func() { fired = true })
	e.Run(0)
	if !fired {
		t.Error("negative After should fire immediately")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var at []Time
	tk := e.NewTicker(10, func() Duration {
		at = append(at, e.Now())
		return 0
	})
	e.Run(55)
	tk.Stop()
	e.Run(100)
	if len(at) != 5 {
		t.Fatalf("ticker fired %d times, want 5: %v", len(at), at)
	}
	for i, ts := range at {
		if ts != Time((i+1)*10) {
			t.Errorf("tick %d at %v", i, ts)
		}
	}
}

func TestTickerPeriodChange(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.NewTicker(10, func() Duration {
		at = append(at, e.Now())
		if len(at) == 2 {
			return 30
		}
		return 0
	})
	e.Run(100)
	// Ticks: 10, 20, then every 30: 50, 80.
	want := []Time{10, 20, 50, 80}
	if len(at) != len(want) {
		t.Fatalf("ticks %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks %v, want %v", at, want)
		}
	}
}

func TestTickerSelfStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.NewTicker(10, func() Duration {
		n++
		if n == 3 {
			return -1
		}
		return 0
	})
	e.Run(1000)
	if n != 3 {
		t.Errorf("self-stopping ticker fired %d times, want 3", n)
	}
}

func TestTimeHelpers(t *testing.T) {
	ts := Time(0).Add(3 * Day).Add(5 * Hour)
	if ts.Days() < 3.2 || ts.Days() > 3.3 {
		t.Errorf("Days() = %v", ts.Days())
	}
	if ts.Sub(Time(0)) != 3*Day+5*Hour {
		t.Errorf("Sub wrong")
	}
	if s := ts.String(); s != "d3+5h0m0s" {
		t.Errorf("String() = %q", s)
	}
	if Time(2*Second).Seconds() != 2 {
		t.Error("Seconds() wrong")
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run(100)
	if e.Executed != 7 {
		t.Errorf("Executed = %d, want 7", e.Executed)
	}
}
