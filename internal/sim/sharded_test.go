package sim

import (
	"fmt"
	"sort"
	"testing"
)

// toyMsg is a deferred cross-engine delivery in the test harness below. The
// canonical drain key (at, sendAt, lineage, src, idx) mirrors the policy the
// real netsim layer uses.
type toyMsg struct {
	at, sendAt Time
	lineage    uint64
	src, idx   int
	from, dst  int
	v          uint64
}

// toyNet wires peers spread across engines with deterministic latencies that
// collide on purpose: broadcasts fan out on a millisecond grid, so groups of
// replies arrive at the same instant and the drain's canonical order must
// reproduce the sequential engine's FIFO tie-break exactly.
type toyNet struct {
	engines []*Engine
	peerEng []int // peer -> engine index; control actor is -1 -> engine 0
	outbox  [][]toyMsg
	gorigin uint64
	state   []uint64 // per-peer order-sensitive fold
	control uint64
	deliver func(m toyMsg)
}

func (tn *toyNet) engineOf(actor int) int {
	if actor < 0 {
		return 0
	}
	return tn.peerEng[actor]
}

func (tn *toyNet) send(from, to int, v uint64, delay Duration) {
	src := tn.engineOf(from)
	dst := tn.engineOf(to)
	e := tn.engines[src]
	m := toyMsg{
		at:      e.Now().Add(delay),
		sendAt:  e.Now(),
		lineage: e.CurLineage(),
		src:     src,
		from:    from,
		dst:     to,
		v:       v,
	}
	if src == dst {
		tn.engines[dst].At(m.at, func() { tn.deliver(m) })
		return
	}
	m.idx = len(tn.outbox[src])
	tn.outbox[src] = append(tn.outbox[src], m)
}

func (tn *toyNet) drain() {
	var all []toyMsg
	for s := range tn.outbox {
		all = append(all, tn.outbox[s]...)
		tn.outbox[s] = tn.outbox[s][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		switch {
		case a.at != b.at:
			return a.at < b.at
		case a.sendAt != b.sendAt:
			return a.sendAt < b.sendAt
		case a.lineage != b.lineage:
			return a.lineage < b.lineage
		case a.src != b.src:
			return a.src < b.src
		default:
			return a.idx < b.idx
		}
	})
	for _, m := range all {
		tn.gorigin++
		m := m
		tn.engines[tn.engineOf(m.dst)].AtLineage(m.at, tn.gorigin, func() { tn.deliver(m) })
	}
}

// runToy executes the colliding-broadcast workload on 1+shards engines and
// returns the per-peer folded states plus the control actor's fold.
func runToy(t *testing.T, peers, shards int, horizon Time) ([]uint64, uint64) {
	t.Helper()
	engines := make([]*Engine, 1+shards)
	var lineageCtr uint64
	for i := range engines {
		engines[i] = NewEngine()
		engines[i].SetLineageSource(&lineageCtr)
	}
	tn := &toyNet{
		engines: engines,
		peerEng: make([]int, peers),
		outbox:  make([][]toyMsg, len(engines)),
		state:   make([]uint64, peers),
	}
	for i := 0; i < peers; i++ {
		tn.peerEng[i] = 1 + i*shards/peers
		if shards == 0 {
			tn.peerEng[i] = 0
		}
	}
	fold := func(s uint64, m toyMsg) uint64 {
		return s*1000003 + m.v*31 + uint64(m.sendAt%977)
	}
	tn.deliver = func(m toyMsg) {
		if m.dst < 0 {
			tn.control = fold(tn.control, m)
			return
		}
		tn.state[m.dst] = fold(tn.state[m.dst], m)
		switch m.from {
		case 0:
			// Reply to a broadcast from peer 0. Latency depends only on
			// self%3, so replies from a whole residue class of peers arrive
			// back at peer 0 at the same nanosecond.
			if m.dst != 0 {
				tn.send(m.dst, 0, tn.state[m.dst], 2*Millisecond+Duration(m.dst%3)*Millisecond)
			}
		case -1:
			tn.send(m.dst, -1, tn.state[m.dst], 2*Millisecond+Duration(m.dst%3)*Millisecond)
		}
	}
	// Peer 0 broadcasts on a coarse grid; arrival groups collide by dst%3.
	eng0 := engines[tn.engineOf(0)]
	for k := 0; k < 4; k++ {
		at := Time(10*Millisecond) + Time(k)*Time(100*Millisecond)
		eng0.At(at, func() {
			for d := 1; d < peers; d++ {
				tn.send(0, d, uint64(d)*7, 2*Millisecond+Duration(d%3)*Millisecond)
			}
		})
	}
	// A control-engine actor broadcasts too, exercising exclusive control
	// windows interleaved with peer windows.
	engines[0].At(Time(53*Millisecond), func() {
		for d := 0; d < peers; d++ {
			tn.send(-1, d, 1000+uint64(d), 2*Millisecond+Duration(d%2)*Millisecond)
		}
	})
	// Per-peer local ticks keep every shard busy between broadcasts.
	for i := 0; i < peers; i++ {
		i := i
		e := engines[tn.engineOf(i)]
		e.At(Time(7*Millisecond)+Time(i), func() {
			tn.state[i] = tn.state[i]*31 + uint64(i)
		})
	}

	c := &Coordinator{Engines: engines, Lookahead: 2 * Millisecond, Drain: tn.drain}
	if shards == 0 {
		c.Engines = engines[:1]
	}
	c.Run(horizon)
	for _, e := range c.Engines {
		if e.Now() != horizon {
			t.Fatalf("engine clock %v, want horizon %v", e.Now(), horizon)
		}
	}
	return tn.state, tn.control
}

// TestCoordinatorByteIdentical pins that sharded execution reproduces the
// single-engine run exactly, including the order of same-instant cross-shard
// arrivals produced by colliding fan-out latencies.
func TestCoordinatorByteIdentical(t *testing.T) {
	const peers = 12
	horizon := Time(Second)
	refState, refCtl := runToy(t, peers, 0, horizon)
	for _, shards := range []int{1, 2, 3, 4, 8} {
		state, ctl := runToy(t, peers, shards, horizon)
		for i := range state {
			if state[i] != refState[i] {
				t.Errorf("shards=%d: peer %d state %d, want %d", shards, i, state[i], refState[i])
			}
		}
		if ctl != refCtl {
			t.Errorf("shards=%d: control state %d, want %d", shards, ctl, refCtl)
		}
	}
}

// TestCoordinatorProgress pins that windows always make progress even when a
// control event ties with a peer event at the same instant.
func TestCoordinatorProgress(t *testing.T) {
	ctl := NewEngine()
	peer := NewEngine()
	var order []string
	ctl.At(Time(5), func() { order = append(order, "ctl") })
	peer.At(Time(5), func() { order = append(order, "peer") })
	c := &Coordinator{Engines: []*Engine{ctl, peer}, Lookahead: Duration(100)}
	c.Run(Time(10))
	want := fmt.Sprint([]string{"ctl", "peer"})
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("tied-instant order %v, want %v", got, want)
	}
	if ctl.Now() != Time(10) || peer.Now() != Time(10) {
		t.Fatalf("clocks %v/%v, want 10", ctl.Now(), peer.Now())
	}
}
