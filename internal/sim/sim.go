// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in FIFO order of scheduling, which —
// combined with the deterministic prng package — makes whole simulation runs
// reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant on the simulated timeline, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is layout- and
// unit-compatible with time.Duration so the usual constants compose.
type Duration = time.Duration

// Convenient calendar units for preservation timescales. A month is fixed at
// 30 days and a year at 365 days, matching the coarse calendar the paper's
// evaluation uses (3-month poll intervals, 30-day recuperation periods).
const (
	Millisecond Duration = time.Millisecond
	Second      Duration = time.Second
	Minute      Duration = time.Minute
	Hour        Duration = time.Hour
	Day         Duration = 24 * Hour
	Month       Duration = 30 * Day
	Year        Duration = 365 * Day
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Days returns t as floating-point days since simulation start.
func (t Time) Days() float64 { return float64(t) / float64(Day) }

// String formats the instant as days and a wall-clock remainder, which reads
// well on multi-month preservation timelines.
func (t Time) String() string {
	d := int64(t) / int64(Day)
	rem := Duration(int64(t) % int64(Day))
	return fmt.Sprintf("d%d+%v", d, rem)
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued.
type EventID uint64

type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for events at the same instant
	id   EventID
	fn   func()
	heap int // index within the heap, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.heap = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.heap = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. It is not safe for concurrent
// use; a simulation is a single-goroutine computation by design, which is
// what makes runs deterministic.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	nextID  EventID
	live    map[EventID]*event
	stopped bool
	// free pools event structs released on fire/cancel. A long run schedules
	// millions of events but holds only a bounded number at once, so the hot
	// path recycles instead of allocating. IDs are never reused, so a stale
	// Cancel cannot touch a recycled event.
	free []*event

	// Executed counts events that have fired, for progress reporting and
	// engine benchmarks.
	Executed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{live: make(map[EventID]*event)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// panics: it always indicates a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.nextSeq++
	e.nextID++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: t, seq: e.nextSeq, id: e.nextID, fn: fn}
	} else {
		ev = &event{at: t, seq: e.nextSeq, id: e.nextID, fn: fn}
	}
	heap.Push(&e.queue, ev)
	e.live[ev.id] = ev
	return ev.id
}

// release returns a popped or cancelled event to the pool, dropping its
// closure reference so the pool does not pin captured state.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// After schedules fn to run d after the current instant. Negative durations
// are treated as zero.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.live[id]
	if !ok {
		return false
	}
	delete(e.live, id)
	heap.Remove(&e.queue, ev.heap)
	e.release(ev)
	return true
}

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// clock would pass `until`. Events scheduled exactly at `until` do fire.
// It returns the number of events executed by this call.
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		delete(e.live, ev.id)
		e.now = ev.at
		// Recycle before firing: fn may schedule (and the pool hand out the
		// struct again), which is safe because ev is not touched afterwards.
		fn := ev.fn
		e.release(ev)
		fn()
		n++
		e.Executed++
	}
	// Advance the clock to the horizon even if the queue drained early, so
	// time-integrated metrics cover the full window.
	if !e.stopped && e.now < until {
		e.now = until
	}
	return n
}

// Next returns the timestamp of the earliest pending event.
func (e *Engine) Next() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step executes exactly one event if any is pending and returns whether one
// fired. Useful in unit tests that walk a state machine event by event.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	delete(e.live, ev.id)
	e.now = ev.at
	fn := ev.fn
	e.release(ev)
	fn()
	e.Executed++
	return true
}

// Ticker invokes fn every period until the returned stop function is called.
// The first tick fires one period from now. The period may be jittered by the
// caller between invocations by returning a new period from fn; returning 0
// keeps the current period, returning a negative duration stops the ticker.
type Ticker struct {
	engine *Engine
	id     EventID
	done   bool
}

// NewTicker schedules fn every period. fn may return a replacement period
// (0 keeps the period, negative stops).
func (e *Engine) NewTicker(period Duration, fn func() Duration) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e}
	var tick func()
	current := period
	tick = func() {
		if t.done {
			return
		}
		next := fn()
		if next < 0 {
			t.done = true
			return
		}
		if next > 0 {
			current = next
		}
		if !t.done {
			t.id = e.After(current, tick)
		}
	}
	t.id = e.After(current, tick)
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if !t.done {
		t.done = true
		t.engine.Cancel(t.id)
	}
}
