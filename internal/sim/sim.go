// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in FIFO order of scheduling, which —
// combined with the deterministic prng package — makes whole simulation runs
// reproducible bit-for-bit.
//
// For single-run parallelism, a Coordinator (see sharded.go) drives several
// engines under a conservative time-window barrier; each engine remains a
// single-goroutine computation within its windows.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant on the simulated timeline, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is layout- and
// unit-compatible with time.Duration so the usual constants compose.
type Duration = time.Duration

// Convenient calendar units for preservation timescales. A month is fixed at
// 30 days and a year at 365 days, matching the coarse calendar the paper's
// evaluation uses (3-month poll intervals, 30-day recuperation periods).
const (
	Millisecond Duration = time.Millisecond
	Second      Duration = time.Second
	Minute      Duration = time.Minute
	Hour        Duration = time.Hour
	Day         Duration = 24 * Hour
	Month       Duration = 30 * Day
	Year        Duration = 365 * Day
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Days returns t as floating-point days since simulation start.
func (t Time) Days() float64 { return float64(t) / float64(Day) }

// String formats the instant as days and a wall-clock remainder, which reads
// well on multi-month preservation timelines.
func (t Time) String() string {
	d := int64(t) / int64(Day)
	rem := Duration(int64(t) % int64(Day))
	return fmt.Sprintf("d%d+%v", d, rem)
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued. An ID packs a slot index (low 32 bits, biased by
// one so the zero ID stays invalid) and a per-slot generation tag (high 32
// bits); a slot's generation bumps every time it is vacated, so a stale
// Cancel of a fired or already-cancelled event is a cheap, safe no-op.
type EventID uint64

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	id  EventID
	// lineage is a causal-order tag used by sharded execution: events created
	// while another event runs inherit that event's lineage, and cross-shard
	// deliveries are stamped with a fresh globally-monotone value in canonical
	// drain order. Single-engine runs carry it at no behavioral cost.
	lineage uint64
	fn      func()
	heap    int // index within the heap, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.heap = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.heap = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. It is not safe for concurrent
// use; a simulation is a single-goroutine computation by design, which is
// what makes runs deterministic.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	// Dense event index: slots[i] holds the live event whose ID carries slot
	// i, gens[i] its current generation. A map was measured to dominate
	// schedule/cancel costs at large populations; the dense index makes both
	// O(1) with no hashing and no per-event map buckets.
	slots     []*event
	gens      []uint32
	freeSlots []uint32
	stopped   bool
	// free pools event structs released on fire/cancel. A long run schedules
	// millions of events but holds only a bounded number at once, so the hot
	// path recycles instead of allocating. Slot generations make stale IDs
	// harmless, so recycling never aliases a cancellable event.
	free []*event

	// lineage tagging (see event.lineage). curLineage is the lineage of the
	// currently executing event; inEvent distinguishes execution-time
	// scheduling (inherit) from build-time scheduling (draw fresh from the
	// shared counter, when one is attached).
	curLineage uint64
	inEvent    bool
	lineageCtr *uint64

	// Executed counts events that have fired, for progress reporting and
	// engine benchmarks.
	Executed uint64

	// Progress, when non-nil, is called every progressStride executed events
	// with the current clock and total executed count. Used for coarse
	// observability of long runs; the stride keeps it off the hot path.
	Progress       func(now Time, executed uint64)
	progressStride uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// SetLineageSource attaches a shared counter used to stamp events scheduled
// outside event execution (world construction). Engines sharing one counter
// give build-time events globally ordered lineage tags.
func (e *Engine) SetLineageSource(ctr *uint64) { e.lineageCtr = ctr }

// SetProgress installs a progress callback invoked every stride executed
// events. A nil fn or non-positive stride disables reporting.
func (e *Engine) SetProgress(stride uint64, fn func(now Time, executed uint64)) {
	if fn == nil || stride == 0 {
		e.Progress = nil
		e.progressStride = 0
		return
	}
	e.Progress = fn
	e.progressStride = stride
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// CurLineage returns the lineage tag of the currently executing event (zero
// outside execution or on engines without lineage tracking).
func (e *Engine) CurLineage() uint64 { return e.curLineage }

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// panics: it always indicates a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) EventID {
	lin := e.curLineage
	if !e.inEvent && e.lineageCtr != nil {
		*e.lineageCtr++
		lin = *e.lineageCtr
	}
	return e.AtLineage(t, lin, fn)
}

// AtLineage schedules fn at instant t with an explicit lineage tag. It is
// the scheduling entry point used by the cross-shard drain, which stamps
// deliveries in canonical order.
func (e *Engine) AtLineage(t Time, lineage uint64, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.nextSeq++
	var slot uint32
	if n := len(e.freeSlots); n > 0 {
		slot = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		slot = uint32(len(e.slots))
		e.slots = append(e.slots, nil)
		e.gens = append(e.gens, 0)
	}
	id := EventID(e.gens[slot])<<32 | EventID(slot+1)
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: t, seq: e.nextSeq, id: id, lineage: lineage, fn: fn}
	} else {
		ev = &event{at: t, seq: e.nextSeq, id: id, lineage: lineage, fn: fn}
	}
	heap.Push(&e.queue, ev)
	e.slots[slot] = ev
	return id
}

// detach vacates the slot carried by ev's ID and bumps its generation so the
// ID can never resolve again.
func (e *Engine) detach(ev *event) {
	slot := uint32(ev.id) - 1
	e.gens[slot]++
	e.slots[slot] = nil
	e.freeSlots = append(e.freeSlots, slot)
}

// release returns a popped or cancelled event to the pool, dropping its
// closure reference so the pool does not pin captured state.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// After schedules fn to run d after the current instant. Negative durations
// are treated as zero.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// lookup resolves a live event by ID, or nil for stale/invalid IDs.
func (e *Engine) lookup(id EventID) *event {
	slot := uint32(id)
	if slot == 0 {
		return nil
	}
	slot--
	if int(slot) >= len(e.slots) || e.gens[slot] != uint32(id>>32) {
		return nil
	}
	return e.slots[slot]
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	ev := e.lookup(id)
	if ev == nil {
		return false
	}
	e.detach(ev)
	heap.Remove(&e.queue, ev.heap)
	e.release(ev)
	return true
}

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// fire pops ev (already at the heap root), advances the clock and runs it.
func (e *Engine) fire(ev *event) {
	heap.Pop(&e.queue)
	e.detach(ev)
	e.now = ev.at
	// Recycle before firing: fn may schedule (and the pool hand out the
	// struct again), which is safe because ev is not touched afterwards.
	fn := ev.fn
	lin := ev.lineage
	e.release(ev)
	e.inEvent = true
	e.curLineage = lin
	fn()
	e.inEvent = false
	e.curLineage = 0
	e.Executed++
	if e.Progress != nil && e.Executed%e.progressStride == 0 {
		e.Progress(e.now, e.Executed)
	}
}

// Run executes events in timestamp order until the queue is empty or the
// clock would pass `until`. Events scheduled exactly at `until` do fire.
// It returns the number of events executed by this call.
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		e.fire(ev)
		n++
	}
	// Advance the clock to the horizon even if the queue drained early, so
	// time-integrated metrics cover the full window.
	if !e.stopped && e.now < until {
		e.now = until
	}
	return n
}

// RunBefore executes pending events with timestamps strictly before w and
// returns the number executed. Unlike Run it leaves the clock at the last
// executed event rather than advancing it to the boundary: the caller (the
// shard coordinator) owns horizon bookkeeping. Stop applies as in Run.
func (e *Engine) RunBefore(w Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at >= w {
			break
		}
		e.fire(ev)
		n++
	}
	return n
}

// AdvanceTo moves the clock forward to t without executing anything. Moving
// backward is a no-op. Used by the coordinator to align shard clocks at the
// end of a run.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Next returns the timestamp of the earliest pending event.
func (e *Engine) Next() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step executes exactly one event if any is pending and returns whether one
// fired. Useful in unit tests that walk a state machine event by event.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.fire(e.queue[0])
	return true
}

// Ticker invokes fn every period until the returned stop function is called.
// The first tick fires one period from now. The period may be jittered by the
// caller between invocations by returning a new period from fn; returning 0
// keeps the current period, returning a negative duration stops the ticker.
type Ticker struct {
	engine *Engine
	id     EventID
	done   bool
}

// NewTicker schedules fn every period. fn may return a replacement period
// (0 keeps the period, negative stops).
func (e *Engine) NewTicker(period Duration, fn func() Duration) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e}
	var tick func()
	current := period
	tick = func() {
		if t.done {
			return
		}
		next := fn()
		if next < 0 {
			t.done = true
			return
		}
		if next > 0 {
			current = next
		}
		if !t.done {
			t.id = e.After(current, tick)
		}
	}
	t.id = e.After(current, tick)
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if !t.done {
		t.done = true
		t.engine.Cancel(t.id)
	}
}
