package sim

import "sync"

// Coordinator executes several engines under a conservative time-window
// barrier so one simulation run can use multiple cores while remaining
// byte-identical to single-engine execution.
//
// Engines[0] is the control engine: it owns globally-entangled actors
// (adversaries, churn joiners, minion nodes) whose events read or mutate
// state across many peers. Engines[1:] are peer shards, each owning a
// disjoint contiguous range of peers. The window protocol:
//
//   - T is the globally earliest pending event time.
//   - If the control engine owns T it runs exclusively — every peer shard is
//     quiescent and fully caught up past all events < T, so control events
//     observe exactly the state a sequential run would. Its window is capped
//     at min(T+lookahead, earliest peer event, horizon): the lookahead cap
//     keeps any message it emits from needing to land inside the window, and
//     the peer cap keeps it from running past work peers still owe.
//   - Otherwise every peer shard with an event before W = min(T+lookahead,
//     next control event, horizon) runs [its current position, W) in
//     parallel. Lookahead is a lower bound on cross-engine message latency,
//     so no message sent inside the window can arrive before W.
//
// After every window the Drain hook runs on the coordinator goroutine with
// all engines quiescent; it is where deferred cross-engine deliveries are
// sorted into canonical order and scheduled (see netsim). The barrier
// between a window and its drain is a happens-before edge, so drain-time
// scheduling needs no locks.
type Coordinator struct {
	Engines []*Engine
	// Lookahead is the minimum cross-engine delivery latency. Windows never
	// extend further than this past their opening event, which is what makes
	// in-window sends safe to defer to the next barrier. Values below 1ns are
	// clamped to 1ns (correct, but degenerates to near-sequential stepping).
	Lookahead Duration
	// Drain, if set, is called after every window barrier (and once before
	// the first window) to schedule deferred cross-engine deliveries.
	Drain func()
}

// Run executes events on all engines in global timestamp order up to and
// including until, then advances every engine's clock to the horizon.
// Events remaining beyond the horizon stay queued, as with Engine.Run.
func (c *Coordinator) Run(until Time) {
	n := len(c.Engines)
	if n == 1 {
		if c.Drain != nil {
			c.Drain()
		}
		c.Engines[0].Run(until)
		return
	}
	la := Time(c.Lookahead)
	if la < 1 {
		la = 1
	}

	work := make([]chan Time, n)
	done := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		work[i] = make(chan Time, 1)
		wg.Add(1)
		go func(e *Engine, ch chan Time) {
			defer wg.Done()
			for w := range ch {
				e.RunBefore(w)
				done <- struct{}{}
			}
		}(c.Engines[i], work[i])
	}

	active := make([]int, 0, n)
	for {
		if c.Drain != nil {
			c.Drain()
		}
		var (
			T   Time
			has bool
		)
		for _, e := range c.Engines {
			if t, ok := e.Next(); ok && (!has || t < T) {
				T, has = t, true
			}
		}
		if !has || T > until {
			break
		}
		tc, hasC := c.Engines[0].Next()
		if hasC && tc == T {
			// Control window: exclusive, bounded by lookahead and by the
			// earliest peer event. A peer event tied to the same instant
			// would collapse the window to zero; the canonical rule is that
			// control fires first, so widen to exactly that instant.
			w := tc + la
			for _, e := range c.Engines[1:] {
				if t, ok := e.Next(); ok && t < w {
					w = t
				}
			}
			if until+1 < w {
				w = until + 1
			}
			if w <= tc {
				w = tc + 1
			}
			c.Engines[0].RunBefore(w)
			continue
		}
		w := T + la
		if hasC && tc < w {
			w = tc
		}
		if until+1 < w {
			w = until + 1
		}
		active = active[:0]
		for i := 1; i < n; i++ {
			if t, ok := c.Engines[i].Next(); ok && t < w {
				active = append(active, i)
			}
		}
		if len(active) == 1 {
			// Single-owner window: run inline, skipping the dispatch round
			// trip. Sparse phases of a run spend most windows here.
			c.Engines[active[0]].RunBefore(w)
		} else {
			for _, i := range active {
				work[i] <- w
			}
			for range active {
				<-done
			}
		}
	}
	for i := 1; i < n; i++ {
		close(work[i])
	}
	wg.Wait()
	for _, e := range c.Engines {
		e.AdvanceTo(until)
	}
}
