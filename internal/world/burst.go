package world

import (
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
)

// BurstPayload models an adversary's stream of back-to-back poll
// invitations from distinct identities as a single network event, for
// simulation efficiency. The victim processes each invitation individually
// through its normal admission control path (random drops, refractory
// period, effort verification), exactly as if the messages had arrived one
// by one; the stream stops as soon as one invitation is admitted — the
// adversary, with total information awareness, observes the admission
// instantly and stops wasting effort.
//
// PerMsgCost, when non-zero, is charged to the attacker's ledger for every
// invitation actually emitted (the effortful brute-force adversary pays an
// introductory effort per attempt; the effortless admission-control flooder
// pays nothing).
type BurstPayload struct {
	// First is the identity of the first invitation; successive invitations
	// use consecutive identities when FreshIdentities is set, or identities
	// from the Pool otherwise.
	First ids.PeerID
	// Pool, when non-nil, supplies the rotating identity pool (brute-force
	// in-debt identities).
	Pool []ids.PeerID
	// Count bounds the number of invitations in the stream.
	Count int
	// Template is the invitation; Poller is overridden per copy.
	Template protocol.Msg
	// MakeProof, when non-nil, attaches a fresh effort proof per
	// invitation, bound to the invitation's context, and its generation
	// cost is charged to Ledger.
	MakeProof func(ctx []byte) (effort.Proof, effort.Seconds)
	// Ledger receives the attacker's per-invitation costs.
	Ledger *effort.Ledger
	// Sent, if non-nil, receives the number of invitations emitted.
	Sent func(n int)
}

// Deliver expands the burst at the victim. It stops early once an
// invitation is admitted (observed via the refractory clock or a created
// session), mirroring an attacker who sends until admitted. shard is the
// engine index the victim lives on.
func (b *BurstPayload) Deliver(w *World, shard int32, victim *protocol.Peer) {
	au := b.Template.AU
	rep := victim.Reputation(au)
	if rep == nil {
		return
	}
	now := sched.Time(w.engines[shard].Now())
	emitted := 0
	// One shared copy of the template serves the whole stream: the Poll
	// handler reads the message synchronously and never retains it, so only
	// the per-invitation fields are rewritten between deliveries.
	m := b.Template
	m.Voter = victim.ID()
	for i := 0; i < b.Count; i++ {
		// An admitted unknown/in-debt invitation puts the victim in its
		// refractory period; the attacker stops a stream that has achieved
		// its admission.
		if i > 0 && rep.InRefractory(reputation.Time(now)) {
			break
		}
		var from ids.PeerID
		if len(b.Pool) > 0 {
			from = b.Pool[i%len(b.Pool)]
		} else {
			from = b.First + ids.PeerID(i)
		}
		m.Poller = from
		if b.MakeProof != nil {
			proof, cost := b.MakeProof(m.Context("intro"))
			m.Proof = proof
			if b.Ledger == w.AdversaryLedger {
				// Adversary charges go through the shard-ordered log so the
				// ledger is shard-count invariant.
				w.logCharge(shard, "attack-intro", cost)
			} else if b.Ledger != nil {
				b.Ledger.Charge("attack-intro", cost)
			}
		}
		emitted++
		victim.Receive(from, &m)
	}
	if b.Sent != nil {
		b.Sent(emitted)
	}
}

// BurstWireSize models the transfer size of a burst: the template size times
// the expected emission count is dominated by per-invitation payloads; we
// charge the full worst case, which only makes the attacker's network
// footprint look larger, never smaller.
func (b *BurstPayload) BurstWireSize() int {
	m := b.Template
	return m.WireSize() * b.Count
}
