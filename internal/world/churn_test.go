package world

import (
	"testing"

	"lockss/internal/sim"
)

// TestChurnIntegration: newcomers joining a running network work their way
// into non-friend reference lists within a few poll rounds.
func TestChurnIntegration(t *testing.T) {
	cfg := Default()
	cfg.Peers = 25
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = 2 * sim.Year
	cfg.DamageDiskYears = 0
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := w.EnableChurn(Churn{JoinPerYear: 6, MaxJoins: 5, FriendsPerJoiner: 4})
	w.Run()

	t.Logf("churn: joined=%d integrated=%d newcomerPolls=%d newcomerVotes=%d",
		stats.Joined, stats.Integrated, stats.NewcomerPollsOK, stats.NewcomerVotes)
	if stats.Joined == 0 {
		t.Fatal("nobody joined")
	}
	if stats.NewcomerVotes == 0 {
		t.Error("newcomers never supplied votes")
	}
	if stats.NewcomerPollsOK == 0 {
		t.Error("newcomers never completed a poll")
	}
	if stats.Integrated == 0 {
		t.Error("no newcomer spread beyond its friends")
	}
	if len(w.Peers) != cfg.Peers+stats.Joined {
		t.Errorf("population bookkeeping wrong: %d peers, %d joins", len(w.Peers), stats.Joined)
	}
}

// TestChurnDisabled: zero-rate churn is a no-op.
func TestChurnDisabled(t *testing.T) {
	cfg := Default()
	cfg.Peers = 15
	cfg.AUs = 1
	cfg.AUSize = 16 << 20
	cfg.Duration = sim.Month
	cfg.DamageDiskYears = 0
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := w.EnableChurn(Churn{})
	w.Run()
	if stats.Joined != 0 {
		t.Error("disabled churn admitted joiners")
	}
}
