package world

import (
	"fmt"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/netsim"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sim"
)

// Churn configures dynamic population growth: new loyal peers joining over
// time (the paper's §9: "we need to understand how our defenses against
// attrition work in a more dynamic environment, where new loyal peers
// continually join the system over time").
//
// A joining peer starts cold: it obtains replicas from the publisher, knows
// only its operator-configured friends, and is unknown to everyone else. It
// must work its way into reference lists through the discovery path —
// outer-circle votes, nominations and introductions — against the admission
// control machinery (random drops, refractory periods).
type Churn struct {
	// JoinPerYear is the mean arrival rate of new peers (Poisson).
	JoinPerYear float64
	// MaxJoins caps the number of arrivals.
	MaxJoins int
	// FriendsPerJoiner is how many established peers a newcomer's operator
	// lists as friends (its only warm contacts).
	FriendsPerJoiner int
}

// JoinStats summarizes how newcomers fared.
type JoinStats struct {
	Joined int
	// Integrated counts newcomers that appear in at least one established
	// peer's reference list at the horizon.
	Integrated int
	// NewcomerPollsOK counts successful polls called by newcomers.
	NewcomerPollsOK uint64
	// NewcomerVotes counts votes newcomers supplied (their route to good
	// grades).
	NewcomerVotes uint64
}

// EnableChurn schedules peer arrivals on a world. Call before Run; read the
// returned stats only after Run.
func (w *World) EnableChurn(c Churn) *JoinStats {
	stats := &JoinStats{}
	if c.JoinPerYear <= 0 || c.MaxJoins <= 0 {
		return stats
	}
	if c.FriendsPerJoiner <= 0 {
		c.FriendsPerJoiner = 5
	}
	w.churnOn = true
	rnd := w.Root.Child("churn")
	linkRnd := w.Root.Child("churn/links")
	meanGap := float64(sim.Year) / c.JoinPerYear
	costs := effort.DefaultCostModel()

	var newcomers []*protocol.Peer
	friendSets := make(map[ids.PeerID]map[ids.PeerID]bool)
	var schedule func(k int)
	schedule = func(k int) {
		if k >= c.MaxJoins {
			return
		}
		gap := sim.Duration(rnd.ExpFloat64(meanGap))
		w.Engine.After(gap, func() {
			// Joiners live on the control shard: arrivals mutate founder
			// state across shards, which is only safe inside the control
			// engine's exclusive windows.
			id := PeerIDOf(len(w.Peers))
			env := &Env{w: w, id: id, rnd: w.Root.ChildN("joiner", k), eng: w.Engine, shard: 0}
			p, err := protocol.New(id, w.Cfg.Protocol, costs, env, w.observerFor(0))
			if err != nil {
				panic(fmt.Sprintf("world: churn join: %v", err))
			}
			// Friends: a sample of the founding population.
			n := c.FriendsPerJoiner
			if n > w.Cfg.Peers {
				n = w.Cfg.Peers
			}
			var friends []ids.PeerID
			for _, j := range rnd.Sample(w.Cfg.Peers, n) {
				friends = append(friends, PeerIDOf(j))
			}
			p.SetFriends(friends)
			fs := make(map[ids.PeerID]bool, len(friends))
			for _, f := range friends {
				fs[f] = true
			}
			friendSets[id] = fs
			// Friendship is mutual: the operators of both libraries add
			// each other, so the newcomer gets invited into its friends'
			// polls and can earn grades by supplying votes.
			for _, f := range friends {
				fp := w.Peers[int(f)-1]
				fp.AddFriend(id)
				for _, au := range fp.AUs() {
					fp.AddToReferenceList(au, id)
					fp.SeedGrade(au, id, reputation.Even)
				}
			}
			for _, spec := range w.specs {
				salt := uint64(id)<<20 | uint64(spec.ID)
				replica := content.NewSimReplica(spec, salt)
				// A newcomer's initial reference list is its friends: it
				// has no history with anyone else.
				if err := p.AddAU(replica, friends); err != nil {
					panic(fmt.Sprintf("world: churn AddAU: %v", err))
				}
				w.collectors[0].RegisterReplica(id, spec.ID, replica)
			}
			// The newcomer trusts its friends from day one, too.
			for _, spec := range w.specs {
				for _, f := range friends {
					p.SeedGrade(spec.ID, f, reputation.Even)
				}
			}
			peer := p
			w.Net.AddNode(id, netsim.RandomLink(linkRnd), func(from ids.PeerID, payload any, size int) {
				deliver(w, 0, peer, from, payload)
			})
			w.Peers = append(w.Peers, p)
			newcomers = append(newcomers, p)
			stats.Joined++
			p.Start()
			schedule(k + 1)
		})
	}
	schedule(0)

	// Evaluate integration at the horizon (one tick before Finalize).
	w.Engine.At(sim.Time(w.Cfg.Duration)-1, func() {
		established := w.Peers[:w.Cfg.Peers]
		for _, nc := range newcomers {
			st := nc.Stats()
			stats.NewcomerPollsOK += st.PollsSucceeded
			stats.NewcomerVotes += st.VotesSupplied
			// Integration means spreading beyond the warm start: a
			// non-friend established peer lists the newcomer.
			seen := false
			for _, e := range established {
				if friendSets[nc.ID()][e.ID()] {
					continue
				}
				for _, au := range e.AUs() {
					for _, r := range e.ReferenceList(au) {
						if r == nc.ID() {
							seen = true
						}
					}
				}
				if seen {
					break
				}
			}
			if seen {
				stats.Integrated++
			}
		}
	})
	return stats
}
