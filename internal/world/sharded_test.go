package world

import (
	"math"
	"testing"
)

// worldFingerprint captures every observable of a finished run, with floats
// kept as exact bit patterns: sharded execution must match the single-engine
// run bit for bit, not approximately.
type worldFingerprint struct {
	events       uint64
	accessFail   uint64 // Float64bits
	succPolls    uint64
	totalPolls   uint64
	votes        uint64
	alarms       uint64
	damageEvents uint64
	repairsFixed uint64
	damagedNow   int
	defEffort    uint64 // Float64bits
	advEffort    uint64 // Float64bits
	netSent      uint64
	netDelivered uint64
	netDropped   uint64
	netBytes     uint64
	joined       int
}

func fingerprintRun(t *testing.T, cfg Config, churn Churn) (worldFingerprint, []uint64) {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stats *JoinStats
	if churn.MaxJoins > 0 {
		stats = w.EnableChurn(churn)
	}
	w.Run()
	fp := worldFingerprint{
		events:       w.EventsExecuted(),
		accessFail:   math.Float64bits(w.Metrics.AccessFailureProbability()),
		succPolls:    w.Metrics.SuccessfulPolls(),
		totalPolls:   w.Metrics.TotalPolls(),
		votes:        w.Metrics.VotesSupplied,
		alarms:       w.Metrics.Alarms,
		damageEvents: w.Metrics.DamageEvents,
		repairsFixed: w.Metrics.RepairsFixed,
		damagedNow:   w.Metrics.DamagedNow(),
		defEffort:    math.Float64bits(float64(w.DefenderEffort())),
		advEffort:    math.Float64bits(float64(w.AdversaryLedger.Total)),
		netSent:      w.Net.Sent,
		netDelivered: w.Net.Delivered,
		netDropped:   w.Net.DroppedStoppage,
		netBytes:     w.Net.BytesDelivered,
	}
	ledgers := make([]uint64, 0, len(w.Peers))
	for _, p := range w.Peers {
		ledgers = append(ledgers, math.Float64bits(float64(p.Ledger().Total)))
	}
	if stats != nil {
		fp.joined = stats.Joined
	}
	return fp, ledgers
}

// TestShardedMatchesSequential pins the tentpole guarantee: a sharded run is
// bit-identical to the single-engine run at every shard count, across event
// counts, all metrics aggregates, per-peer effort ledgers and network
// counters — with storage damage and population churn active.
func TestShardedMatchesSequential(t *testing.T) {
	cfg := tinyConfig()
	cfg.Peers = 24
	cfg.DamageDiskYears = 1
	churn := Churn{JoinPerYear: 20, MaxJoins: 3, FriendsPerJoiner: 3}
	ref, refLedgers := fingerprintRun(t, cfg, churn)
	if ref.events == 0 || ref.succPolls == 0 {
		t.Fatalf("reference run inert: %+v", ref)
	}
	for _, shards := range []int{2, 3, 8} {
		c := cfg
		c.Shards = shards
		got, gotLedgers := fingerprintRun(t, c, churn)
		if len(gotLedgers) != len(refLedgers) {
			t.Fatalf("shards=%d: %d peers, want %d", shards, len(gotLedgers), len(refLedgers))
		}
		for i := range refLedgers {
			if gotLedgers[i] != refLedgers[i] {
				t.Errorf("shards=%d: peer %d ledger bits differ", shards, i)
				break
			}
		}
		if got != ref {
			t.Errorf("shards=%d fingerprint mismatch:\n got %+v\nwant %+v", shards, got, ref)
		}
	}
}

// TestShardedShardCountClamped pins that absurd shard counts degrade to one
// peer per shard rather than empty shards.
func TestShardedShardCountClamped(t *testing.T) {
	cfg := tinyConfig()
	cfg.Peers = 12
	cfg.Shards = 64
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(w.engines); n != 13 {
		t.Fatalf("got %d engines for 12 peers at shards=64, want 13", n)
	}
	w.Run()
	if w.Metrics.SuccessfulPolls() == 0 {
		t.Error("clamped sharded run made no progress")
	}
}
