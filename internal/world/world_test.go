package world

import (
	"testing"

	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sim"
)

func tinyConfig() Config {
	cfg := Default()
	cfg.Peers = 20
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = sim.Year / 2
	cfg.DamageDiskYears = 0 // no damage unless the test wants it
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := tinyConfig()
	bad.Peers = 0
	if _, err := New(bad); err == nil {
		t.Error("zero peers accepted")
	}
	bad = tinyConfig()
	bad.Peers = 5 // below quorum 10
	if _, err := New(bad); err == nil {
		t.Error("population below quorum accepted")
	}
	bad = tinyConfig()
	bad.Protocol.Quorum = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid protocol config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64, uint64) {
		cfg := tinyConfig()
		cfg.DamageDiskYears = 1
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Run()
		return w.Engine.Executed, w.Metrics.AccessFailureProbability(), w.Metrics.SuccessfulPolls()
	}
	e1, a1, s1 := run()
	e2, a2, s2 := run()
	if e1 != e2 || a1 != a2 || s1 != s2 {
		t.Errorf("runs with the same seed diverge: (%d,%v,%d) vs (%d,%v,%d)", e1, a1, s1, e2, a2, s2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := tinyConfig()
	cfg.DamageDiskYears = 1
	w1, _ := New(cfg)
	w1.Run()
	cfg2 := cfg
	cfg2.Seed = 999
	w2, _ := New(cfg2)
	w2.Run()
	if w1.Engine.Executed == w2.Engine.Executed && w1.Metrics.VotesSupplied == w2.Metrics.VotesSupplied {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestPopulationWiring(t *testing.T) {
	cfg := tinyConfig()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Peers) != cfg.Peers {
		t.Fatalf("built %d peers", len(w.Peers))
	}
	for i, p := range w.Peers {
		if p.ID() != PeerIDOf(i) {
			t.Errorf("peer %d has ID %v", i, p.ID())
		}
		if got := len(p.AUs()); got != cfg.AUs {
			t.Errorf("peer %d preserves %d AUs", i, got)
		}
		refs := p.ReferenceList(1)
		want := cfg.Protocol.RefListTarget
		if want > cfg.Peers-1 {
			want = cfg.Peers - 1
		}
		if len(refs) != want {
			t.Errorf("peer %d reference list %d, want %d", i, len(refs), want)
		}
		for _, r := range refs {
			if r == p.ID() {
				t.Errorf("peer %d lists itself", i)
			}
		}
	}
	if len(w.Specs()) != cfg.AUs {
		t.Error("spec catalogue wrong")
	}
}

func TestSeedAcquaintance(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = sim.Day // barely run
	w, _ := New(cfg)
	w.Run()
	// After seeding, every pair should be at least Even (decay aside).
	p := w.Peers[0]
	now := reputation.Time(w.Engine.Now())
	even := 0
	for _, q := range w.Peers[1:] {
		if g := p.Reputation(1).GradeOf(now, q.ID()); g >= reputation.Even {
			even++
		}
	}
	if even < cfg.Peers-1 {
		t.Errorf("only %d acquaintances seeded", even)
	}
}

func TestBurstDelivery(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocol.DropUnknown = 0.5 // give admission a chance quickly
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := w.Peers[0]
	sent := -1
	burst := &BurstPayload{
		First: ids.MinionBase + 10,
		Count: 50,
		Template: protocol.Msg{
			Type:   protocol.MsgPoll,
			AU:     1,
			PollID: 7,
		},
		Sent: func(n int) { sent = n },
	}
	// Deliver directly (unit test of the expansion logic).
	burst.Deliver(w, 0, victim)
	if sent <= 0 || sent > 50 {
		t.Fatalf("burst emitted %d", sent)
	}
	rep := victim.Reputation(1)
	if rep.AdmittedUnknown != 1 {
		t.Errorf("admitted %d unknown invitations, want exactly 1 (stream stops)", rep.AdmittedUnknown)
	}
	// The stream stopped at the first admission.
	if uint64(sent) != rep.AdmittedUnknown+rep.DroppedRandom {
		t.Errorf("emitted %d != admitted %d + dropped %d", sent, rep.AdmittedUnknown, rep.DroppedRandom)
	}
}

func TestBurstChargesLedger(t *testing.T) {
	cfg := tinyConfig()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ledger := effort.NewLedger()
	burst := &BurstPayload{
		First: ids.MinionBase + 100,
		Count: 10,
		Template: protocol.Msg{
			Type: protocol.MsgPoll, AU: 1, PollID: 9,
		},
		MakeProof: func(ctx []byte) (effort.Proof, effort.Seconds) {
			return effort.SimProof{Effort: 2, Genuine: true}, 2
		},
		Ledger: ledger,
	}
	burst.Deliver(w, 0, w.Peers[0])
	if ledger.Total == 0 {
		t.Error("burst proofs not charged")
	}
	if ledger.Total > 2*10 {
		t.Error("overcharged")
	}
}

func TestDamageProcessRate(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = 2 * sim.Year
	cfg.DamageDiskYears = 1
	cfg.AUsPerDisk = 2 // one disk per peer at AUs=2
	w, _ := New(cfg)
	w.Run()
	// Expected events: peers x duration/diskyears = 20 x 2 = 40.
	got := float64(w.Metrics.DamageEvents)
	if got < 20 || got > 65 {
		t.Errorf("damage events %v, want ~40", got)
	}
}

func TestDefenderEffortAggregation(t *testing.T) {
	cfg := tinyConfig()
	w, _ := New(cfg)
	w.Run()
	if w.DefenderEffort() <= 0 {
		t.Fatal("no defender effort recorded")
	}
	byKind := w.DefenderEffortByKind()
	var sum effort.Seconds
	for _, v := range byKind {
		sum += v
	}
	if diff := float64(sum - w.DefenderEffort()); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("kind sum %v != total %v", sum, w.DefenderEffort())
	}
	for _, kind := range []string{protocol.KindVote, protocol.KindEval, protocol.KindIntroGen} {
		if byKind[kind] <= 0 {
			t.Errorf("no %q effort recorded", kind)
		}
	}
}
