package world

import (
	"testing"

	"lockss/internal/telemetry"
)

// telemetryRun executes cfg with a fresh telemetry recorder attached and
// returns the run's fingerprint plus every histogram family's snapshot.
func telemetryRun(t *testing.T, cfg Config) (worldFingerprint, map[string]telemetry.Snapshot) {
	t.Helper()
	tel := telemetry.New()
	cfg.Telemetry = tel
	fp, _ := fingerprintRun(t, cfg, Churn{})
	snaps := make(map[string]telemetry.Snapshot)
	for _, h := range tel.Histograms() {
		snaps[h.Name] = h.H.Snapshot()
	}
	return fp, snaps
}

// TestTelemetryDeterministicAcrossShards pins the sim-side telemetry
// contract: attaching a recorder does not perturb the simulation (the
// fingerprint matches a telemetry-free run bit for bit), and the histograms
// it records are fed from virtual time, so their snapshots are identical at
// every shard count.
func TestTelemetryDeterministicAcrossShards(t *testing.T) {
	cfg := tinyConfig()
	cfg.Peers = 24
	cfg.DamageDiskYears = 1

	bare, _ := fingerprintRun(t, cfg, Churn{})
	ref, refSnaps := telemetryRun(t, cfg)
	if ref != bare {
		t.Errorf("telemetry perturbed the run:\n with %+v\n bare %+v", ref, bare)
	}
	if pd := refSnaps["poll_duration"]; pd.Count == 0 || pd.Sum <= 0 {
		t.Fatalf("no poll durations recorded: %+v", pd)
	}
	if sv := refSnaps["solicit_vote"]; sv.Count == 0 {
		t.Errorf("no solicitation→vote latencies recorded: %+v", sv)
	}

	for _, shards := range []int{2, 8} {
		c := cfg
		c.Shards = shards
		got, gotSnaps := telemetryRun(t, c)
		if got != ref {
			t.Errorf("shards=%d fingerprint mismatch:\n got %+v\nwant %+v", shards, got, ref)
		}
		for name, want := range refSnaps {
			if gotSnaps[name] != want {
				t.Errorf("shards=%d: %s histogram differs:\n got %+v\nwant %+v",
					shards, name, gotSnaps[name], want)
			}
		}
	}
}
