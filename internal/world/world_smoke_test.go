package world

import (
	"testing"

	"lockss/internal/protocol"
	"lockss/internal/sim"
)

// TestSmokeBaseline runs a small population with damage and checks that the
// system audits and repairs: most polls succeed, damage gets fixed, and the
// access failure probability stays near the analytic expectation.
func TestSmokeBaseline(t *testing.T) {
	cfg := Default()
	cfg.Peers = 30
	cfg.AUs = 4
	cfg.AUSize = 64 << 20
	cfg.Duration = 2 * sim.Year
	cfg.DamageDiskYears = 1 // high damage rate for signal
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()

	m := w.Metrics
	t.Logf("events=%d polls=%v alarms=%d damage=%d repaired=%d votes=%d afp=%.2e",
		w.Engine.Executed, m.Polls, m.Alarms, m.DamageEvents, m.RepairsFixed, m.VotesSupplied, m.AccessFailureProbability())
	t.Logf("defender effort by kind: %v", w.DefenderEffortByKind())
	if gap, ok := m.MeanSuccessInterval(); ok {
		t.Logf("mean success interval: %.1f days", gap/float64(24*3600*1e9))
	}

	succ := m.Polls[protocol.OutcomeSuccess]
	total := m.TotalPolls()
	if total == 0 {
		t.Fatal("no polls concluded")
	}
	if float64(succ)/float64(total) < 0.8 {
		t.Errorf("success rate %.2f too low (succ=%d total=%d inq=%d inc=%d rf=%d)",
			float64(succ)/float64(total), succ, total,
			m.Polls[protocol.OutcomeInquorate], m.Polls[protocol.OutcomeInconclusive], m.Polls[protocol.OutcomeRepairFailed])
	}
	if m.DamageEvents == 0 {
		t.Fatal("damage process did not fire")
	}
	if m.RepairsFixed == 0 {
		t.Error("no damage was ever repaired")
	}
	if m.DamagedNow() > int(m.DamageEvents)/2 {
		t.Errorf("too many replicas still damaged at end: %d of %d events", m.DamagedNow(), m.DamageEvents)
	}
}
