// Package world assembles complete simulated LOCKSS populations: the event
// engine, the network model, loyal peers with their replicas and bootstrap
// state, the storage-damage process, and metrics collection. Adversaries
// attach to a World through the hooks it exposes.
//
// A world can run sharded (Config.Shards > 1): loyal peers are partitioned
// into contiguous index ranges, each owned by its own event engine, and a
// control engine owns every globally-entangled actor (adversaries, minion
// nodes, churn joiners). The sim.Coordinator interleaves the engines under a
// conservative window barrier and the network layer drains cross-shard
// messages in a canonical order, so every observable — event order, metrics,
// ledgers, RNG streams — is byte-identical at any shard count, including the
// single-engine legacy path.
package world

import (
	"fmt"
	"sort"
	"sync/atomic"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/metrics"
	"lockss/internal/netsim"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/telemetry"
)

// Config sizes a simulated population. The defaults in Default() follow the
// paper's §6.3 operating point.
type Config struct {
	// Seed drives all randomness in the run.
	Seed uint64
	// Peers is the loyal population size (paper: 100).
	Peers int
	// AUs is the number of archival units each peer preserves (paper: 50
	// per layer, up to 600 via layering).
	AUs int
	// AUSize is the content size per AU in bytes (paper: 0.5 GB).
	AUSize int64
	// Protocol is the protocol operating point.
	Protocol protocol.Config
	// DamageDiskYears is the mean time between undetected storage damage
	// events per disk, in years (paper: 1 to 5); zero disables damage.
	DamageDiskYears float64
	// AUsPerDisk divides the collection into disks for the damage process
	// (paper: 50).
	AUsPerDisk int
	// Friends is the operator-maintained friends list size per peer.
	Friends int
	// SeedAllEven initializes every loyal pair at an Even grade, modeling a
	// deployment with history rather than a cold bootstrap. O(Peers²·AUs) —
	// keep it off at 10k+ peer scales.
	SeedAllEven bool
	// HashBytesPerSec overrides the cost model's hashing throughput when
	// positive (ablations use it to raise peer busyness).
	HashBytesPerSec float64
	// Costs, when non-nil, replaces the default cost model wholesale (the
	// cross-backend harness uses it to charge simulated peers the same costs
	// a real node would). HashBytesPerSec still applies on top.
	Costs *effort.CostModel
	// Duration is the simulated horizon.
	Duration sim.Duration
	// Telemetry, when non-nil, receives every peer's poll-lifecycle events
	// teed alongside the metrics collector: the same histograms a real node
	// records, fed from virtual time. Bucket counts depend only on virtual
	// timestamps, so histogram snapshots are identical at every shard count;
	// the flight-recorder ring's interleaving is not deterministic.
	Telemetry *telemetry.Telemetry
	// Shards is the number of parallel peer shards; 0 or 1 selects the
	// single-engine path. Results are byte-identical at every value.
	Shards int
}

// Default returns the paper-scale configuration (one 50-AU layer).
func Default() Config {
	return Config{
		Seed:            1,
		Peers:           100,
		AUs:             50,
		AUSize:          512 << 20,
		Protocol:        protocol.DefaultConfig(),
		DamageDiskYears: 5,
		AUsPerDisk:      50,
		Friends:         5,
		SeedAllEven:     true,
		Duration:        2 * sim.Year,
	}
}

// chargeRec is one deferred adversary-ledger charge. Charges are logged
// per shard during the run and replayed into the ledger in canonical
// (time, shard, log order) at the end, so the ledger's float accumulation
// order — and hence its exact value — is independent of the shard count.
type chargeRec struct {
	t    sim.Time
	kind string
	cost effort.Seconds
}

// World is one assembled simulation.
type World struct {
	Cfg Config
	// Engine is the control engine (the only engine when Shards <= 1):
	// adversaries and churn schedule on it.
	Engine *sim.Engine
	Net    *netsim.Network
	Peers  []*protocol.Peer
	// Metrics is the run's aggregate collector. On a sharded world it is
	// assembled by merging the per-shard collectors after the run; read it
	// only once Run returns.
	Metrics *metrics.Collector
	// AdversaryLedger accumulates attacker effort (effortful attacks). It is
	// populated from the charge log when Run completes; adversaries charge
	// through ChargeAdversary, not directly.
	AdversaryLedger *effort.Ledger
	// Root is the root randomness source; adversaries derive children.
	Root *prng.Source

	specs []content.AUSpec

	// engines[0] == Engine (control); engines[1:] own contiguous peer
	// ranges. Length 1 on the legacy path.
	engines []*sim.Engine
	// collectors and proofCaches parallel engines. collectors[0] observes
	// control-owned replicas (churn joiners); on the legacy path it is
	// Metrics itself.
	collectors []*metrics.Collector
	// proofCaches intern the boxed symbolic proofs MakeProof hands out, one
	// cache per shard so peer events never share a map. Effort costs come
	// from the per-AU cost model, so a run sees only a handful of distinct
	// values; interning avoids re-boxing an identical immutable SimProof on
	// every message.
	proofCaches []map[effort.Seconds]effort.Proof
	// peerShard maps founder index -> owning engine index.
	peerShard []int32
	// lineageCtr is the shared event-lineage counter (see sim.Engine); only
	// attached when sharded.
	lineageCtr uint64
	chargeLog  [][]chargeRec
	churnOn    bool

	progressEvents uint64
}

// Env adapts a World to protocol.Env for one peer. Each peer's Env is bound
// to the engine of the shard that owns the peer.
type Env struct {
	w     *World
	id    ids.PeerID
	rnd   *prng.Source
	eng   *sim.Engine
	shard int32
}

// Now implements protocol.Env.
func (e *Env) Now() sched.Time { return sched.Time(e.eng.Now()) }

// After implements protocol.Env. Engine event IDs are issued from 1, so they
// serve directly as protocol timer IDs (zero = none) without a cancel
// closure per timer.
func (e *Env) After(d sched.Duration, fn func()) protocol.TimerID {
	return protocol.TimerID(e.eng.After(sim.Duration(d), fn))
}

// Cancel implements protocol.Env.
func (e *Env) Cancel(t protocol.TimerID) bool {
	return e.eng.Cancel(sim.EventID(t))
}

// Rand implements protocol.Env.
func (e *Env) Rand() *prng.Source { return e.rnd }

// Send implements protocol.Env.
func (e *Env) Send(to ids.PeerID, m *protocol.Msg) {
	e.w.Net.Send(e.id, to, m, m.WireSize())
}

// MakeProof implements protocol.Env with a symbolic proof; the effort cost
// is charged by the protocol through the peer's ledger and schedule.
func (e *Env) MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt) {
	cache := e.w.proofCaches[e.shard]
	p, ok := cache[cost]
	if !ok {
		p = effort.SimProof{Effort: cost, Genuine: true}
		cache[cost] = p
	}
	return p, effort.SimReceiptFor(ctx, cost)
}

// VerifyProof implements protocol.Env.
func (e *Env) VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool {
	return p != nil && p.Valid(ctx) && p.Cost() >= minCost-1e-9
}

// EvalReceipt implements protocol.Env.
func (e *Env) EvalReceipt(ctx []byte, p effort.Proof) (effort.Receipt, bool) {
	if p == nil || !p.Valid(ctx) {
		return effort.Receipt{}, false
	}
	return effort.SimReceiptFor(ctx, p.Cost()), true
}

// PeerIDOf maps a peer index to its PeerID (1-based).
func PeerIDOf(index int) ids.PeerID { return ids.PeerID(index + 1) }

// observerFor is the protocol observer for a peer on shard si: the shard's
// metrics collector, teed into the world's telemetry recorder when one is
// configured.
func (w *World) observerFor(si int32) protocol.Observer {
	if w.Cfg.Telemetry == nil {
		return w.collectors[si]
	}
	return protocol.TeeObserver(w.collectors[si], w.Cfg.Telemetry)
}

// New assembles a world. Background load hooks (for 600-AU layering) may be
// installed on peer schedules before Run.
func New(cfg Config) (*World, error) {
	if cfg.Peers <= 0 || cfg.AUs <= 0 {
		return nil, fmt.Errorf("world: need positive peers and AUs")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	if cfg.Peers <= cfg.Protocol.Quorum {
		return nil, fmt.Errorf("world: population %d cannot sustain quorum %d", cfg.Peers, cfg.Protocol.Quorum)
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.Peers {
		shards = cfg.Peers
	}
	w := &World{
		Cfg:             cfg,
		Engine:          sim.NewEngine(),
		Metrics:         metrics.NewCollectorSized(cfg.Peers * cfg.AUs),
		AdversaryLedger: effort.NewLedger(),
		Root:            prng.New(cfg.Seed),
	}
	if shards == 1 {
		w.engines = []*sim.Engine{w.Engine}
		w.collectors = []*metrics.Collector{w.Metrics}
	} else {
		w.engines = make([]*sim.Engine, 1+shards)
		w.collectors = make([]*metrics.Collector, 1+shards)
		w.engines[0] = w.Engine
		w.collectors[0] = metrics.NewCollector()
		for s := 1; s <= shards; s++ {
			w.engines[s] = sim.NewEngine()
			w.collectors[s] = metrics.NewCollectorSized(cfg.Peers * cfg.AUs / shards)
		}
		for _, e := range w.engines {
			e.SetLineageSource(&w.lineageCtr)
		}
	}
	w.proofCaches = make([]map[effort.Seconds]effort.Proof, len(w.engines))
	for i := range w.proofCaches {
		w.proofCaches[i] = make(map[effort.Seconds]effort.Proof)
	}
	w.chargeLog = make([][]chargeRec, len(w.engines))

	// Loyal peers plus a margin for adversary-controlled nodes.
	var ctr *uint64
	if len(w.engines) > 1 {
		ctr = &w.lineageCtr
	}
	w.Net = netsim.NewSharded(w.engines, ctr, cfg.Peers+8)

	// AU catalogue.
	w.specs = make([]content.AUSpec, cfg.AUs)
	for i := range w.specs {
		w.specs[i] = content.AUSpec{
			ID:        content.AUID(i + 1),
			Name:      fmt.Sprintf("au-%03d", i+1),
			Size:      cfg.AUSize,
			BlockSize: cfg.Protocol.BlockSize,
		}
	}

	costs := effort.DefaultCostModel()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	if cfg.HashBytesPerSec > 0 {
		costs.HashBytesPerSec = cfg.HashBytesPerSec
	}
	linkRnd := w.Root.Child("links")
	bootRnd := w.Root.Child("bootstrap")

	// Build peers. Shard assignment is contiguous in peer index, so the
	// concatenation of shard collectors in shard order reproduces the
	// single-engine registration order exactly.
	w.Peers = make([]*protocol.Peer, cfg.Peers)
	w.peerShard = make([]int32, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		id := PeerIDOf(i)
		si := int32(0)
		if shards > 1 {
			si = int32(1 + i*shards/cfg.Peers)
		}
		w.peerShard[i] = si
		env := &Env{w: w, id: id, rnd: w.Root.ChildN("peer", i), eng: w.engines[si], shard: si}
		p, err := protocol.New(id, cfg.Protocol, costs, env, w.observerFor(si))
		if err != nil {
			return nil, err
		}
		w.Peers[i] = p
		peer := p
		shard := si
		w.Net.AddNodeOn(int(si), id, netsim.RandomLink(linkRnd), func(from ids.PeerID, payload any, size int) {
			deliver(w, shard, peer, from, payload)
		})
	}

	// Friends lists: a random sample per peer.
	for i, p := range w.Peers {
		n := cfg.Friends
		if n > cfg.Peers-1 {
			n = cfg.Peers - 1
		}
		friends := make([]ids.PeerID, 0, n)
		for _, j := range bootRnd.Sample(cfg.Peers, n+1) {
			if j != i && len(friends) < n {
				friends = append(friends, PeerIDOf(j))
			}
		}
		p.SetFriends(friends)
	}

	// Replicas and bootstrap reference lists.
	for i, p := range w.Peers {
		for _, spec := range w.specs {
			salt := uint64(i+1)<<20 | uint64(spec.ID)
			replica := content.NewSimReplica(spec, salt)
			refs := make([]ids.PeerID, 0, cfg.Protocol.RefListTarget)
			for _, j := range bootRnd.Sample(cfg.Peers, cfg.Protocol.RefListTarget+1) {
				if j != i && len(refs) < cfg.Protocol.RefListTarget {
					refs = append(refs, PeerIDOf(j))
				}
			}
			if err := p.AddAU(replica, refs); err != nil {
				return nil, err
			}
			w.collectors[w.peerShard[i]].RegisterReplica(p.ID(), spec.ID, replica)
		}
	}
	return w, nil
}

// deliver dispatches one delivered payload to a peer, expanding invitation
// bursts (see BurstPayload) into individual protocol messages. shard is the
// engine index the peer lives on.
func deliver(w *World, shard int32, p *protocol.Peer, from ids.PeerID, payload any) {
	switch v := payload.(type) {
	case *protocol.Msg:
		p.Receive(from, v)
	case *BurstPayload:
		v.Deliver(w, shard, p)
	}
}

// ChargeAdversary logs attacker effort against the adversary ledger.
// Adversary code must charge through here (from control-engine events) or
// via BurstPayload so that charges land in the ledger in an order
// independent of the shard count; see replayCharges.
func (w *World) ChargeAdversary(kind string, cost effort.Seconds) {
	w.logCharge(0, kind, cost)
}

func (w *World) logCharge(shard int32, kind string, cost effort.Seconds) {
	w.chargeLog[shard] = append(w.chargeLog[shard], chargeRec{t: w.engines[shard].Now(), kind: kind, cost: cost})
}

// replayCharges folds the per-shard charge logs into the adversary ledger in
// canonical order: by charge time, control shard first on ties, per-shard
// log order last. Each shard's log is already time-sorted (events execute in
// time order), so a stable sort on time alone realizes the full key. On a
// single-engine world the log order is exactly the sequential charge order.
func (w *World) replayCharges() {
	total := 0
	for _, l := range w.chargeLog {
		total += len(l)
	}
	if total == 0 {
		return
	}
	all := make([]chargeRec, 0, total)
	for _, l := range w.chargeLog {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
	for i := range all {
		w.AdversaryLedger.Charge(all[i].kind, all[i].cost)
	}
	for s := range w.chargeLog {
		w.chargeLog[s] = nil
	}
}

// Specs returns the AU catalogue.
func (w *World) Specs() []content.AUSpec {
	out := make([]content.AUSpec, len(w.specs))
	copy(out, w.specs)
	return out
}

// Peer returns the i-th loyal peer.
func (w *World) Peer(i int) *protocol.Peer { return w.Peers[i] }

// SeedAcquaintance initializes the steady-state grade matrix.
func (w *World) seedAcquaintance() {
	if !w.Cfg.SeedAllEven {
		return
	}
	for _, p := range w.Peers {
		for _, au := range p.AUs() {
			for _, q := range w.Peers {
				if q.ID() != p.ID() {
					p.SeedGrade(au, q.ID(), reputation.Even)
				}
			}
		}
	}
}

// startDamage schedules the storage-damage Poisson process on each peer's
// own shard engine.
func (w *World) startDamage() {
	if w.Cfg.DamageDiskYears <= 0 {
		return
	}
	perDisk := w.Cfg.AUsPerDisk
	if perDisk <= 0 {
		perDisk = 50
	}
	// Damage events per peer per year: one per disk per DamageDiskYears,
	// with ceil(AUs/perDisk) disks.
	disks := (w.Cfg.AUs + perDisk - 1) / perDisk
	ratePerYear := float64(disks) / w.Cfg.DamageDiskYears
	meanGap := float64(sim.Year) / ratePerYear
	for i, p := range w.Peers {
		peer := p
		eng := w.engines[w.peerShard[i]]
		col := w.collectors[w.peerShard[i]]
		rnd := w.Root.ChildN("damage", i)
		var schedule func()
		schedule = func() {
			gap := sim.Duration(rnd.ExpFloat64(meanGap))
			eng.After(gap, func() {
				aus := peer.AUs()
				au := aus[rnd.Intn(len(aus))]
				replica := peer.Replica(au)
				block := rnd.Intn(replica.Spec().Blocks())
				replica.Damage(block)
				col.OnDamage(peer.ID(), au, sched.Time(eng.Now()))
				schedule()
			})
		}
		schedule()
	}
}

// Run seeds acquaintance, starts peers and damage, executes the horizon and
// finalizes metrics. Adversaries must be installed before Run.
func (w *World) Run() {
	w.seedAcquaintance()
	for _, p := range w.Peers {
		p.Start()
	}
	w.startDamage()
	if len(w.engines) == 1 {
		w.Engine.Run(sim.Time(w.Cfg.Duration))
	} else {
		la := w.Net.LookaheadFloor()
		if w.churnOn && la > 2*sim.Millisecond {
			// Churn joiners draw links as they arrive; their latency floor
			// (1ms each way) must already be covered by the lookahead.
			la = 2 * sim.Millisecond
		}
		coord := &sim.Coordinator{Engines: w.engines, Lookahead: la, Drain: w.Net.Drain}
		coord.Run(sim.Time(w.Cfg.Duration))
		w.Net.FoldStats()
		// Merge per-shard collectors in registration order: founders live on
		// shards 1..K in contiguous index ranges, churn joiners on control.
		for s := 1; s < len(w.collectors); s++ {
			w.Metrics.Merge(w.collectors[s])
		}
		w.Metrics.Merge(w.collectors[0])
	}
	w.replayCharges()
	w.Metrics.Finalize(sched.Time(w.Engine.Now()))
}

// EventsExecuted totals executed events across all engines.
func (w *World) EventsExecuted() uint64 {
	var n uint64
	for _, e := range w.engines {
		n += e.Executed
	}
	return n
}

// InstallProgress arranges for fn to be called roughly every stride executed
// events with the calling engine's virtual time and the total executed-event
// count. fn may run concurrently from shard goroutines and must be
// thread-safe.
func (w *World) InstallProgress(stride uint64, fn func(vt sim.Time, events uint64)) {
	if stride == 0 {
		return
	}
	for _, e := range w.engines {
		e.SetProgress(stride, func(now sim.Time, _ uint64) {
			fn(now, atomic.AddUint64(&w.progressEvents, stride))
		})
	}
}

// DefenderEffort sums all loyal peers' ledgers.
func (w *World) DefenderEffort() effort.Seconds {
	var total effort.Seconds
	for _, p := range w.Peers {
		total += p.Ledger().Total
	}
	return total
}

// DefenderEffortByKind aggregates loyal ledgers per kind.
func (w *World) DefenderEffortByKind() map[string]effort.Seconds {
	out := make(map[string]effort.Seconds)
	for _, p := range w.Peers {
		for k, v := range p.Ledger().ByKind {
			out[k] += v
		}
	}
	return out
}
