// Package world assembles complete simulated LOCKSS populations: the event
// engine, the network model, loyal peers with their replicas and bootstrap
// state, the storage-damage process, and metrics collection. Adversaries
// attach to a World through the hooks it exposes.
package world

import (
	"fmt"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/metrics"
	"lockss/internal/netsim"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/sim"
)

// Config sizes a simulated population. The defaults in Default() follow the
// paper's §6.3 operating point.
type Config struct {
	// Seed drives all randomness in the run.
	Seed uint64
	// Peers is the loyal population size (paper: 100).
	Peers int
	// AUs is the number of archival units each peer preserves (paper: 50
	// per layer, up to 600 via layering).
	AUs int
	// AUSize is the content size per AU in bytes (paper: 0.5 GB).
	AUSize int64
	// Protocol is the protocol operating point.
	Protocol protocol.Config
	// DamageDiskYears is the mean time between undetected storage damage
	// events per disk, in years (paper: 1 to 5); zero disables damage.
	DamageDiskYears float64
	// AUsPerDisk divides the collection into disks for the damage process
	// (paper: 50).
	AUsPerDisk int
	// Friends is the operator-maintained friends list size per peer.
	Friends int
	// SeedAllEven initializes every loyal pair at an Even grade, modeling a
	// deployment with history rather than a cold bootstrap.
	SeedAllEven bool
	// HashBytesPerSec overrides the cost model's hashing throughput when
	// positive (ablations use it to raise peer busyness).
	HashBytesPerSec float64
	// Costs, when non-nil, replaces the default cost model wholesale (the
	// cross-backend harness uses it to charge simulated peers the same costs
	// a real node would). HashBytesPerSec still applies on top.
	Costs *effort.CostModel
	// Duration is the simulated horizon.
	Duration sim.Duration
}

// Default returns the paper-scale configuration (one 50-AU layer).
func Default() Config {
	return Config{
		Seed:            1,
		Peers:           100,
		AUs:             50,
		AUSize:          512 << 20,
		Protocol:        protocol.DefaultConfig(),
		DamageDiskYears: 5,
		AUsPerDisk:      50,
		Friends:         5,
		SeedAllEven:     true,
		Duration:        2 * sim.Year,
	}
}

// World is one assembled simulation.
type World struct {
	Cfg     Config
	Engine  *sim.Engine
	Net     *netsim.Network
	Peers   []*protocol.Peer
	Metrics *metrics.Collector
	// AdversaryLedger accumulates attacker effort (effortful attacks).
	AdversaryLedger *effort.Ledger
	// Root is the root randomness source; adversaries derive children.
	Root *prng.Source

	specs []content.AUSpec

	// proofCache interns the boxed symbolic proofs MakeProof hands out.
	// Effort costs come from the per-AU cost model, so a run sees only a
	// handful of distinct values; interning avoids re-boxing an identical
	// immutable SimProof on every message. A World is single-goroutine.
	proofCache map[effort.Seconds]effort.Proof
}

// Env adapts a World to protocol.Env for one peer.
type Env struct {
	w   *World
	id  ids.PeerID
	rnd *prng.Source
}

// Now implements protocol.Env.
func (e *Env) Now() sched.Time { return sched.Time(e.w.Engine.Now()) }

// After implements protocol.Env. Engine event IDs are issued from 1, so they
// serve directly as protocol timer IDs (zero = none) without a cancel
// closure per timer.
func (e *Env) After(d sched.Duration, fn func()) protocol.TimerID {
	return protocol.TimerID(e.w.Engine.After(sim.Duration(d), fn))
}

// Cancel implements protocol.Env.
func (e *Env) Cancel(t protocol.TimerID) bool {
	return e.w.Engine.Cancel(sim.EventID(t))
}

// Rand implements protocol.Env.
func (e *Env) Rand() *prng.Source { return e.rnd }

// Send implements protocol.Env.
func (e *Env) Send(to ids.PeerID, m *protocol.Msg) {
	e.w.Net.Send(e.id, to, m, m.WireSize())
}

// MakeProof implements protocol.Env with a symbolic proof; the effort cost
// is charged by the protocol through the peer's ledger and schedule.
func (e *Env) MakeProof(ctx []byte, cost effort.Seconds) (effort.Proof, effort.Receipt) {
	p, ok := e.w.proofCache[cost]
	if !ok {
		p = effort.SimProof{Effort: cost, Genuine: true}
		e.w.proofCache[cost] = p
	}
	return p, effort.SimReceiptFor(ctx, cost)
}

// VerifyProof implements protocol.Env.
func (e *Env) VerifyProof(ctx []byte, p effort.Proof, minCost effort.Seconds) bool {
	return p != nil && p.Valid(ctx) && p.Cost() >= minCost-1e-9
}

// EvalReceipt implements protocol.Env.
func (e *Env) EvalReceipt(ctx []byte, p effort.Proof) (effort.Receipt, bool) {
	if p == nil || !p.Valid(ctx) {
		return effort.Receipt{}, false
	}
	return effort.SimReceiptFor(ctx, p.Cost()), true
}

// PeerIDOf maps a peer index to its PeerID (1-based).
func PeerIDOf(index int) ids.PeerID { return ids.PeerID(index + 1) }

// New assembles a world. Background load hooks (for 600-AU layering) may be
// installed on peer schedules before Run.
func New(cfg Config) (*World, error) {
	if cfg.Peers <= 0 || cfg.AUs <= 0 {
		return nil, fmt.Errorf("world: need positive peers and AUs")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	if cfg.Peers <= cfg.Protocol.Quorum {
		return nil, fmt.Errorf("world: population %d cannot sustain quorum %d", cfg.Peers, cfg.Protocol.Quorum)
	}
	w := &World{
		Cfg:             cfg,
		Engine:          sim.NewEngine(),
		Metrics:         metrics.NewCollectorSized(cfg.Peers * cfg.AUs),
		AdversaryLedger: effort.NewLedger(),
		Root:            prng.New(cfg.Seed),
		proofCache:      make(map[effort.Seconds]effort.Proof),
	}
	// Loyal peers plus a margin for adversary-controlled nodes.
	w.Net = netsim.NewSized(w.Engine, cfg.Peers+8)

	// AU catalogue.
	w.specs = make([]content.AUSpec, cfg.AUs)
	for i := range w.specs {
		w.specs[i] = content.AUSpec{
			ID:        content.AUID(i + 1),
			Name:      fmt.Sprintf("au-%03d", i+1),
			Size:      cfg.AUSize,
			BlockSize: cfg.Protocol.BlockSize,
		}
	}

	costs := effort.DefaultCostModel()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	if cfg.HashBytesPerSec > 0 {
		costs.HashBytesPerSec = cfg.HashBytesPerSec
	}
	linkRnd := w.Root.Child("links")
	bootRnd := w.Root.Child("bootstrap")

	// Build peers.
	w.Peers = make([]*protocol.Peer, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		id := PeerIDOf(i)
		env := &Env{w: w, id: id, rnd: w.Root.ChildN("peer", i)}
		p, err := protocol.New(id, cfg.Protocol, costs, env, w.Metrics)
		if err != nil {
			return nil, err
		}
		w.Peers[i] = p
		peer := p
		w.Net.AddNode(id, netsim.RandomLink(linkRnd), func(from ids.PeerID, payload any, size int) {
			deliver(w, peer, from, payload)
		})
	}

	// Friends lists: a random sample per peer.
	for i, p := range w.Peers {
		n := cfg.Friends
		if n > cfg.Peers-1 {
			n = cfg.Peers - 1
		}
		friends := make([]ids.PeerID, 0, n)
		for _, j := range bootRnd.Sample(cfg.Peers, n+1) {
			if j != i && len(friends) < n {
				friends = append(friends, PeerIDOf(j))
			}
		}
		p.SetFriends(friends)
	}

	// Replicas and bootstrap reference lists.
	for i, p := range w.Peers {
		for _, spec := range w.specs {
			salt := uint64(i+1)<<20 | uint64(spec.ID)
			replica := content.NewSimReplica(spec, salt)
			refs := make([]ids.PeerID, 0, cfg.Protocol.RefListTarget)
			for _, j := range bootRnd.Sample(cfg.Peers, cfg.Protocol.RefListTarget+1) {
				if j != i && len(refs) < cfg.Protocol.RefListTarget {
					refs = append(refs, PeerIDOf(j))
				}
			}
			if err := p.AddAU(replica, refs); err != nil {
				return nil, err
			}
			w.Metrics.RegisterReplica(p.ID(), spec.ID, replica)
		}
	}
	return w, nil
}

// deliver dispatches one delivered payload to a peer, expanding invitation
// bursts (see BurstPayload) into individual protocol messages.
func deliver(w *World, p *protocol.Peer, from ids.PeerID, payload any) {
	switch v := payload.(type) {
	case *protocol.Msg:
		p.Receive(from, v)
	case *BurstPayload:
		v.Deliver(w, p)
	}
}

// Specs returns the AU catalogue.
func (w *World) Specs() []content.AUSpec {
	out := make([]content.AUSpec, len(w.specs))
	copy(out, w.specs)
	return out
}

// Peer returns the i-th loyal peer.
func (w *World) Peer(i int) *protocol.Peer { return w.Peers[i] }

// SeedAcquaintance initializes the steady-state grade matrix.
func (w *World) seedAcquaintance() {
	if !w.Cfg.SeedAllEven {
		return
	}
	for _, p := range w.Peers {
		for _, au := range p.AUs() {
			for _, q := range w.Peers {
				if q.ID() != p.ID() {
					p.SeedGrade(au, q.ID(), reputation.Even)
				}
			}
		}
	}
}

// startDamage schedules the storage-damage Poisson process.
func (w *World) startDamage() {
	if w.Cfg.DamageDiskYears <= 0 {
		return
	}
	perDisk := w.Cfg.AUsPerDisk
	if perDisk <= 0 {
		perDisk = 50
	}
	// Damage events per peer per year: one per disk per DamageDiskYears,
	// with ceil(AUs/perDisk) disks.
	disks := (w.Cfg.AUs + perDisk - 1) / perDisk
	ratePerYear := float64(disks) / w.Cfg.DamageDiskYears
	meanGap := float64(sim.Year) / ratePerYear
	for i, p := range w.Peers {
		peer := p
		rnd := w.Root.ChildN("damage", i)
		var schedule func()
		schedule = func() {
			gap := sim.Duration(rnd.ExpFloat64(meanGap))
			w.Engine.After(gap, func() {
				aus := peer.AUs()
				au := aus[rnd.Intn(len(aus))]
				replica := peer.Replica(au)
				block := rnd.Intn(replica.Spec().Blocks())
				replica.Damage(block)
				w.Metrics.OnDamage(peer.ID(), au, sched.Time(w.Engine.Now()))
				schedule()
			})
		}
		schedule()
	}
}

// Run seeds acquaintance, starts peers and damage, executes the horizon and
// finalizes metrics. Adversaries must be installed before Run.
func (w *World) Run() {
	w.seedAcquaintance()
	for _, p := range w.Peers {
		p.Start()
	}
	w.startDamage()
	w.Engine.Run(sim.Time(w.Cfg.Duration))
	w.Metrics.Finalize(sched.Time(w.Engine.Now()))
}

// DefenderEffort sums all loyal peers' ledgers.
func (w *World) DefenderEffort() effort.Seconds {
	var total effort.Seconds
	for _, p := range w.Peers {
		total += p.Ledger().Total
	}
	return total
}

// DefenderEffortByKind aggregates loyal ledgers per kind.
func (w *World) DefenderEffortByKind() map[string]effort.Seconds {
	out := make(map[string]effort.Seconds)
	for _, p := range w.Peers {
		for k, v := range p.Ledger().ByKind {
			out[k] += v
		}
	}
	return out
}
