// Package experiment runs the paper's evaluation: baseline and attack
// scenarios, multi-seed averaging, the 600-AU layering technique, and one
// generator per figure/table of §7.
package experiment

import (
	"context"
	"math"

	"lockss/internal/adversary"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// RunStats are the raw per-run ingredients of the paper's metrics, averaged
// across seeds.
type RunStats struct {
	// AccessFailure is the time-averaged fraction of damaged replicas.
	AccessFailure float64
	// MeanSuccessGap is the mean time between successful polls on a
	// replica, in days; math.Inf(1) when no gaps were observed.
	MeanSuccessGap float64
	// SuccessfulPolls counts successful polls.
	SuccessfulPolls float64
	// TotalPolls counts all concluded polls.
	TotalPolls float64
	// DefenderEffort is total loyal effort in effort-seconds.
	DefenderEffort float64
	// AttackerEffort is total adversary effort in effort-seconds.
	AttackerEffort float64
	// EffortPerPoll is DefenderEffort / SuccessfulPolls.
	EffortPerPoll float64
	// Alarms counts inconclusive-poll alarms.
	Alarms float64
	// DamageEvents and RepairsFixed count the damage process.
	DamageEvents float64
	RepairsFixed float64
}

// Comparison relates an attack run to its baseline, yielding the paper's
// four metrics (§6.1).
type Comparison struct {
	Attack   RunStats
	Baseline RunStats
	// DelayRatio = attack mean success gap / baseline mean success gap.
	DelayRatio float64
	// Friction = attack effort-per-successful-poll / baseline.
	Friction float64
	// CostRatio = attacker effort / defender effort, during the attack run.
	CostRatio float64
}

// ProgressSink, when non-nil, receives periodic execution progress from
// every unlayered simulation run in the process: the reporting engine's
// virtual time and that run's total executed events, every ProgressStride
// events. Set it before running anything (the CLI's -progress does); the
// callback must be thread-safe, since runs execute concurrently and a
// sharded run reports from several goroutines.
var ProgressSink func(vt sim.Time, events uint64)

// ProgressStride is the reporting granularity of ProgressSink, in events.
var ProgressStride uint64 = 1 << 20

// RunOne executes a single seeded run on the calling goroutine and extracts
// stats. mkAttack may be nil for a baseline.
func RunOne(cfg world.Config, mkAttack func() adversary.Adversary) (RunStats, error) {
	w, err := world.New(cfg)
	if err != nil {
		return RunStats{}, err
	}
	if mkAttack != nil {
		mkAttack().Install(w)
	}
	if ProgressSink != nil {
		w.InstallProgress(ProgressStride, ProgressSink)
	}
	w.Run()
	return statsFromWorld(w), nil
}

// statsFromWorld extracts the per-run metric ingredients of a finished run.
func statsFromWorld(w *world.World) RunStats {
	m := w.Metrics
	var s RunStats
	s.AccessFailure = m.AccessFailureProbability()
	if gap, ok := m.MeanSuccessInterval(); ok {
		s.MeanSuccessGap = gap / float64(sim.Day)
	} else {
		s.MeanSuccessGap = math.Inf(1)
	}
	s.SuccessfulPolls = float64(m.SuccessfulPolls())
	s.TotalPolls = float64(m.TotalPolls())
	s.DefenderEffort = float64(w.DefenderEffort())
	s.AttackerEffort = float64(w.AdversaryLedger.Total)
	if s.SuccessfulPolls > 0 {
		s.EffortPerPoll = s.DefenderEffort / s.SuccessfulPolls
	}
	s.Alarms = float64(m.Alarms)
	s.DamageEvents = float64(m.DamageEvents)
	s.RepairsFixed = float64(m.RepairsFixed)
	return s
}

// average combines runs arithmetically (Inf gaps propagate).
func average(runs []RunStats) RunStats {
	var out RunStats
	n := float64(len(runs))
	if n == 0 {
		return out
	}
	for _, r := range runs {
		out.AccessFailure += r.AccessFailure / n
		out.MeanSuccessGap += r.MeanSuccessGap / n
		out.SuccessfulPolls += r.SuccessfulPolls / n
		out.TotalPolls += r.TotalPolls / n
		out.DefenderEffort += r.DefenderEffort / n
		out.AttackerEffort += r.AttackerEffort / n
		out.EffortPerPoll += r.EffortPerPoll / n
		out.Alarms += r.Alarms / n
		out.DamageEvents += r.DamageEvents / n
		out.RepairsFixed += r.RepairsFixed / n
	}
	return out
}

// Run executes one simulation under the process-wide worker pool, honoring
// context cancellation while queued. mkAttack may be nil for a baseline.
func Run(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary) (RunStats, error) {
	return newSharedEngine().RunOne(ctx, cfg, mkAttack)
}

// RunAveraged executes seeds runs with consecutive seeds and averages,
// fanning the runs across the process-wide worker pool. Results are
// identical to running the seeds serially. seeds must be at least 1.
func RunAveraged(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary, seeds int) (RunStats, error) {
	return newSharedEngine().RunAveraged(ctx, cfg, mkAttack, seeds)
}

// Compare derives the paper's ratio metrics.
func Compare(attack, baseline RunStats) Comparison {
	c := Comparison{Attack: attack, Baseline: baseline}
	if baseline.MeanSuccessGap > 0 && !math.IsInf(attack.MeanSuccessGap, 1) {
		c.DelayRatio = attack.MeanSuccessGap / baseline.MeanSuccessGap
	} else if math.IsInf(attack.MeanSuccessGap, 1) {
		c.DelayRatio = math.Inf(1)
	}
	if baseline.EffortPerPoll > 0 {
		c.Friction = attack.EffortPerPoll / baseline.EffortPerPoll
	}
	if attack.DefenderEffort > 0 {
		c.CostRatio = attack.AttackerEffort / attack.DefenderEffort
	}
	return c
}

// Scale selects the fidelity/runtime trade-off for figure generation.
type Scale int

const (
	// ScaleTiny: seconds per figure; for benchmarks and CI. Shapes hold but
	// variance is high.
	ScaleTiny Scale = iota
	// ScaleSmall: minutes per figure; the CLI default.
	ScaleSmall
	// ScalePaper: the paper's §6.3 operating point; expect long runtimes.
	ScalePaper
	// ScaleLarge: a ~5k-peer population for capacity work. Cold bootstrap
	// (no O(Peers²) acquaintance seeding), few small AUs, short horizon.
	ScaleLarge
	// ScaleHuge: a ~20k-peer population; the sharded engine's target regime.
	ScaleHuge
)

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	case ScaleLarge:
		return "large"
	case ScaleHuge:
		return "huge"
	}
	return "invalid"
}

// Options configures figure generation.
type Options struct {
	Scale Scale
	// Seeds overrides the scale's default seed count when positive.
	Seeds int
	// Shards, when positive, runs every simulation on that many parallel
	// peer shards (world.Config.Shards). Results are byte-identical at any
	// value; larger populations run faster on multi-core hosts.
	Shards int
	// BaseSeed offsets all run seeds.
	BaseSeed uint64
	// Progress, if non-nil, receives one line per completed data point.
	// Lines are delivered in deterministic (serial) order regardless of
	// the engine's worker count.
	Progress func(format string, args ...any)
	// Engine, if non-nil, schedules this generation's simulation runs.
	// Share one Engine across generators to reuse memoized baseline runs
	// (the CLI does, for -figure all); when nil each generator gets a
	// fresh engine sized to GOMAXPROCS.
	Engine *Engine
}

// engine returns the configured engine or a fresh one on the process-wide
// worker pool. Generators call it once per generation so memoized baselines
// are shared at least within one figure.
func (o Options) engine() *Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return newSharedEngine()
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

func (o Options) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	switch o.Scale {
	case ScalePaper:
		return 3
	case ScaleSmall:
		return 2
	default:
		return 1
	}
}

// BaseWorld returns the population config the Options select: the scale's
// population shape, seeded from BaseSeed, with Shards applied. Scenario Base
// functions and capacity benchmarks use it as their starting point.
func (o Options) BaseWorld() world.Config { return o.baseWorld() }

// baseWorld returns the population config for the scale.
func (o Options) baseWorld() world.Config {
	cfg := world.Default()
	cfg.Seed = 1 + o.BaseSeed
	switch o.Scale {
	case ScalePaper:
		// Paper §6.3: 100 peers, 50 AUs/layer, 0.5 GB AUs, 2 years.
	case ScaleSmall:
		cfg.Peers = 40
		cfg.AUs = 10
		cfg.AUSize = 256 << 20
		cfg.Duration = 2 * sim.Year
	case ScaleLarge:
		cfg.Peers = 5000
		cfg.AUs = 2
		cfg.AUSize = 16 << 20
		cfg.Duration = sim.Year / 4
		cfg.SeedAllEven = false // O(Peers²·AUs) — prohibitive at this size
	case ScaleHuge:
		cfg.Peers = 20000
		cfg.AUs = 1
		cfg.AUSize = 8 << 20
		cfg.Duration = sim.Year / 8
		cfg.SeedAllEven = false
	default: // ScaleTiny
		cfg.Peers = 25
		cfg.AUs = 4
		cfg.AUSize = 64 << 20
		cfg.Duration = 1 * sim.Year
	}
	cfg.Shards = o.Shards
	return cfg
}

// layersFor returns how many 1x-AU layers represent the "large collection"
// (600 AUs in the paper) at this scale.
func (o Options) layersFor() int {
	switch o.Scale {
	case ScalePaper:
		return 12 // 12 x 50 = 600 AUs
	case ScaleSmall:
		return 4
	default:
		return 3
	}
}
