package experiment

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lockss/internal/adversary"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// ctx is the default context for engine calls in these tests.
var ctx = context.Background()

// runnerCfg is a deliberately small population so the runner tests can
// afford many full simulation runs.
func runnerCfg() world.Config {
	cfg := world.Default()
	cfg.Peers = 12
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = 120 * sim.Day
	return cfg
}

func runnerAttack() adversary.Adversary {
	return &adversary.PipeStoppage{Pulse: adversary.Pulse{
		Coverage: 1, Duration: 30 * sim.Day, Recuperation: 15 * sim.Day,
	}}
}

// TestEngineDeterminism asserts the engine's results are bit-identical to
// the serial reference loop and invariant under the worker count, for plain,
// attack, and layered runs.
func TestEngineDeterminism(t *testing.T) {
	cfg := runnerCfg()
	const seeds = 3

	// Serial reference: the loop the engine replaced.
	var runs []RunStats
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)*1_000_003
		r, err := RunOne(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	want := average(runs)

	for _, workers := range []int{1, 8} {
		e := NewEngine(workers)
		got, err := e.RunAveraged(ctx, cfg, nil, seeds)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: RunAveraged diverges from serial reference:\n got %+v\nwant %+v", workers, got, want)
		}
	}

	// Attack and layered runs: workers=1 vs workers=8 must agree exactly.
	e1, e8 := NewEngine(1), NewEngine(8)
	a1, err := e1.RunAveraged(ctx, cfg, runnerAttack, 2)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := e8.RunAveraged(ctx, cfg, runnerAttack, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a8 {
		t.Errorf("attack RunAveraged differs across worker counts:\n w1 %+v\n w8 %+v", a1, a8)
	}
	l1, err := e1.RunLayeredAveraged(ctx, cfg, nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	l8, err := e8.RunLayeredAveraged(ctx, cfg, nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l8 {
		t.Errorf("layered run differs across worker counts:\n w1 %+v\n w8 %+v", l1, l8)
	}
}

// TestEngineMemoization asserts attack-free runs are served from the memo on
// repeat, attack runs never are, and memoized results equal computed ones.
func TestEngineMemoization(t *testing.T) {
	cfg := runnerCfg()
	e := NewEngine(4)

	first, err := e.RunAveraged(ctx, cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.MemoStats(); hits != 0 || misses != 2 {
		t.Errorf("after first averaged run: hits=%d misses=%d, want 0/2", hits, misses)
	}
	again, err := e.RunAveraged(ctx, cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.MemoStats(); hits != 2 || misses != 2 {
		t.Errorf("after repeat: hits=%d misses=%d, want 2/2", hits, misses)
	}
	if first != again {
		t.Errorf("memoized result differs from computed: %+v vs %+v", again, first)
	}

	// Attack runs are not memoized (closures have no identity to key on).
	if _, err := e.RunOne(ctx, cfg, runnerAttack); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.MemoStats(); hits != 2 || misses != 2 {
		t.Errorf("attack run touched the memo: hits=%d misses=%d", hits, misses)
	}

	// Layered baselines memoize at the composite granularity.
	if _, err := e.RunLayered(ctx, cfg, nil, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunLayered(ctx, cfg, nil, 2); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.MemoStats(); hits != 3 || misses != 3 {
		t.Errorf("layered memo: hits=%d misses=%d, want 3/3", hits, misses)
	}
}

// TestEngineAbort asserts a failed leaf run aborts the engine: the real
// error surfaces, and runs submitted afterwards fail fast with errAborted
// instead of executing.
func TestEngineAbort(t *testing.T) {
	e := NewEngine(2)
	bad := runnerCfg()
	bad.Peers = 0 // world.New rejects this
	if _, err := e.RunOne(ctx, bad, nil); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, err := e.RunOne(ctx, runnerCfg(), nil); !errors.Is(err, errAborted) {
		t.Fatalf("run after failure: err = %v, want errAborted", err)
	}
	// A fan-out containing one bad config reports the real error, not the
	// abort sentinel, on a fresh engine.
	e2 := NewEngine(2)
	cfgs := []world.Config{runnerCfg(), bad, runnerCfg()}
	_, err := gather(len(cfgs), func(i int) (RunStats, error) {
		return e2.RunOne(ctx, cfgs[i], nil)
	}, nil)
	if err == nil || errors.Is(err, errAborted) {
		t.Fatalf("fan-out with bad config: err = %v, want the world.New error", err)
	}
}

// TestMemoizedRetryAfterCanceledFlight asserts a waiter with a live
// context does not inherit the cancellation of the flight initiator's
// context: when the shared single-flight baseline never executed, live
// waiters start a fresh flight instead of failing.
func TestMemoizedRetryAfterCanceledFlight(t *testing.T) {
	e := NewEngine(1)
	key := memoKey{runnerCfg(), 1}
	started := make(chan struct{})
	release := make(chan struct{})
	go e.memoized(ctx, key, func() (RunStats, error) {
		close(started)
		<-release
		return RunStats{}, context.Canceled // the initiator's ctx was canceled
	})
	<-started
	done := make(chan struct{})
	var got RunStats
	var err error
	go func() {
		defer close(done)
		got, err = e.memoized(ctx, key, func() (RunStats, error) {
			return RunStats{AccessFailure: 0.5}, nil
		})
	}()
	// Let the waiter join the in-progress flight, then fail it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-done
	if err != nil {
		t.Fatalf("live waiter inherited the canceled flight: %v", err)
	}
	if got.AccessFailure != 0.5 {
		t.Errorf("waiter got %+v, want the recomputed result", got)
	}
}

// TestGatherAbort asserts a failing job surfaces its error, stops done
// callbacks, and skips jobs that have not started yet.
func TestGatherAbort(t *testing.T) {
	boom := errors.New("boom")
	var emitted atomic.Int32
	_, err := gather(64, func(i int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		return i, nil
	}, func(i int, v int) {
		emitted.Add(1)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure is at index 0, so no done callback may ever fire — later
	// jobs either abort or complete, but the prefix is broken either way.
	if emitted.Load() != 0 {
		t.Errorf("done fired %d times after index-0 failure", emitted.Load())
	}
}

// TestGatherOrder asserts gather delivers done callbacks and results in
// index order regardless of completion order, and bounds nothing.
func TestGatherOrder(t *testing.T) {
	const n = 20
	var running atomic.Int32
	var emitted []int
	results, err := gather(n, func(i int) (int, error) {
		running.Add(1)
		defer running.Add(-1)
		// Finish in roughly reverse order by spinning longer for low
		// indexes; ordering must still come out strictly ascending.
		for j := 0; j < (n-i)*1000; j++ {
			_ = j
		}
		return i * i, nil
	}, func(i int, v int) {
		if v != i*i {
			t.Errorf("done(%d) got %d", i, v)
		}
		emitted = append(emitted, i)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Errorf("results[%d] = %d", i, v)
		}
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d callbacks, want %d", len(emitted), n)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("done callbacks out of order: %v", emitted)
		}
	}
}
