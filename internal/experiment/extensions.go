package experiment

import (
	"fmt"
	"math"

	"lockss/internal/adversary"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Extension experiments beyond the paper's evaluation, covering its §9
// future-work agenda: dynamic populations (churn) and adaptive acceptance.

// ChurnResult captures one churn scenario's outcome.
type ChurnResult struct {
	Scenario        string
	Joined          float64
	Integrated      float64
	NewcomerPollsOK float64
	NewcomerVotes   float64
	AccessFailure   float64
}

// runChurn executes one seeded churn run.
func runChurn(cfg world.Config, churn world.Churn, mkAttack func() adversary.Adversary) (ChurnResult, error) {
	w, err := world.New(cfg)
	if err != nil {
		return ChurnResult{}, err
	}
	stats := w.EnableChurn(churn)
	if mkAttack != nil {
		mkAttack().Install(w)
	}
	w.Run()
	return ChurnResult{
		Joined:          float64(stats.Joined),
		Integrated:      float64(stats.Integrated),
		NewcomerPollsOK: float64(stats.NewcomerPollsOK),
		NewcomerVotes:   float64(stats.NewcomerVotes),
		AccessFailure:   w.Metrics.AccessFailureProbability(),
	}, nil
}

// ExtensionChurn studies newcomers joining a running network, absent attack
// and under a sustained admission-control flood (which keeps victims'
// refractory periods triggered — exactly the condition that makes cold
// integration hard and that introductions were designed to relieve).
func ExtensionChurn(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension E1",
		Title: "Dynamic population: newcomers joining over time (§9 future work)",
		Columns: []string{"scenario", "joined", "integrated", "newcomer-polls-ok",
			"newcomer-votes", "access-failure"},
	}
	cfg := o.baseWorld()
	cfg.DamageDiskYears = 5
	churn := world.Churn{JoinPerYear: 8, MaxJoins: 8, FriendsPerJoiner: 4}
	if o.Scale == ScalePaper {
		churn = world.Churn{JoinPerYear: 12, MaxJoins: 20, FriendsPerJoiner: 5}
	}

	scenarios := []struct {
		name string
		mk   func() adversary.Adversary
	}{
		{"no attack", nil},
		{"admission flood", func() adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day,
			}}
		}},
	}
	for _, sc := range scenarios {
		var acc ChurnResult
		seeds := o.seeds()
		for s := 0; s < seeds; s++ {
			c := cfg
			c.Seed = cfg.Seed + uint64(s)*1_000_003
			r, err := runChurn(c, churn, sc.mk)
			if err != nil {
				return nil, err
			}
			acc.Joined += r.Joined / float64(seeds)
			acc.Integrated += r.Integrated / float64(seeds)
			acc.NewcomerPollsOK += r.NewcomerPollsOK / float64(seeds)
			acc.NewcomerVotes += r.NewcomerVotes / float64(seeds)
			acc.AccessFailure += r.AccessFailure / float64(seeds)
		}
		t.AddRow(sc.name, fmt.Sprintf("%.1f", acc.Joined), fmt.Sprintf("%.1f", acc.Integrated),
			fmt.Sprintf("%.0f", acc.NewcomerPollsOK), fmt.Sprintf("%.0f", acc.NewcomerVotes),
			fmtProb(acc.AccessFailure))
		o.progress("churn %s joined=%.1f integrated=%.1f", sc.name, acc.Joined, acc.Integrated)
	}
	t.Notes = append(t.Notes,
		"newcomers integrate through mutual friends, discovery nominations and introductions",
		"the admission flood slows but does not prevent integration (friends bypass the refractory period)")
	return t, nil
}

// ExtensionAdaptive evaluates §9's adaptive-acceptance idea against the
// brute-force REMAINING attack: victims modulate acceptance of unknown/
// in-debt invitations by recent busyness.
func ExtensionAdaptive(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension E2",
		Title: "Adaptive acceptance vs brute-force REMAINING (§9 future work)",
		Columns: []string{"adaptive", "coeff-friction", "cost-ratio", "delay-ratio",
			"victim-votes-wasted"},
	}
	for _, enabled := range []bool{false, true} {
		cfg := o.baseWorld()
		cfg.Protocol.AdaptiveAcceptance = enabled
		cfg.Protocol.AdaptiveGain = 5
		// Adaptive acceptance is keyed on busyness; make compute expensive
		// (as with very large collections) so busyness is a real signal.
		cfg.HashBytesPerSec = 16 << 10
		baseline, err := RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return nil, err
		}
		attack, err := RunAveraged(cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectRemaining}
		}, o.seeds())
		if err != nil {
			return nil, err
		}
		cmp := Compare(attack, baseline)
		wasted := attack.DefenderEffort - baseline.DefenderEffort
		if wasted < 0 || math.IsNaN(wasted) {
			wasted = 0
		}
		t.AddRow(fmt.Sprintf("%v", enabled), fmtRatio(cmp.Friction), fmtRatio(cmp.CostRatio),
			fmtRatio(cmp.DelayRatio), fmt.Sprintf("%.0f", wasted))
		o.progress("adaptive=%v friction=%s", enabled, fmtRatio(cmp.Friction))
	}
	t.Notes = append(t.Notes,
		"adaptive acceptance raises the attacker's marginal cost of keeping victims busy (§9)")
	return t, nil
}

// ExtensionCombined studies §9's third question: does an attrition attack
// compose with another to weaken the system more than either alone? We pair
// a pipe stoppage (softening communication) with a brute-force REMAINING
// attacker (draining compute) and compare against each in isolation.
func ExtensionCombined(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension E3",
		Title: "Combined adversary strategies (§9 future work)",
		Columns: []string{"attack", "access-failure", "delay-ratio", "coeff-friction",
			"polls-ok"},
	}
	cfg := o.baseWorld()
	cfg.DamageDiskYears = 1 // strong damage signal

	baseline, err := RunAveraged(cfg, nil, o.seeds())
	if err != nil {
		return nil, err
	}
	stop := func() adversary.Adversary {
		return &adversary.PipeStoppage{Pulse: adversary.Pulse{
			Coverage: 0.7, Duration: 60 * sim.Day, Recuperation: 30 * sim.Day,
		}}
	}
	brute := func() adversary.Adversary {
		return &adversary.BruteForce{Defection: adversary.DefectRemaining}
	}
	scenarios := []struct {
		name string
		mk   func() adversary.Adversary
	}{
		{"baseline", nil},
		{"pipe stoppage 70%/60d", stop},
		{"brute force REMAINING", brute},
		{"combined", func() adversary.Adversary {
			return &adversary.Combined{Parts: []adversary.Adversary{stop(), brute()}}
		}},
	}
	for _, sc := range scenarios {
		stats := baseline
		if sc.mk != nil {
			var err error
			stats, err = RunAveraged(cfg, sc.mk, o.seeds())
			if err != nil {
				return nil, err
			}
		}
		cmp := Compare(stats, baseline)
		t.AddRow(sc.name, fmtProb(stats.AccessFailure), fmtRatio(cmp.DelayRatio),
			fmtRatio(cmp.Friction), fmt.Sprintf("%.0f", stats.SuccessfulPolls))
		o.progress("combined %s afp=%s", sc.name, fmtProb(stats.AccessFailure))
	}
	t.Notes = append(t.Notes,
		"redundancy and rate limits keep the combination roughly additive: the stoppage dominates damage, the brute force dominates friction")
	return t, nil
}
