package experiment

import (
	"fmt"
	"math"

	"lockss/internal/adversary"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Extension experiments beyond the paper's evaluation, covering its §9
// future-work agenda: dynamic populations (churn) and adaptive acceptance.

// ChurnResult captures one churn scenario's outcome.
type ChurnResult struct {
	Scenario        string
	Joined          float64
	Integrated      float64
	NewcomerPollsOK float64
	NewcomerVotes   float64
	AccessFailure   float64
}

// runChurn executes one seeded churn run.
func runChurn(cfg world.Config, churn world.Churn, mkAttack func() adversary.Adversary) (ChurnResult, error) {
	w, err := world.New(cfg)
	if err != nil {
		return ChurnResult{}, err
	}
	stats := w.EnableChurn(churn)
	if mkAttack != nil {
		mkAttack().Install(w)
	}
	w.Run()
	return ChurnResult{
		Joined:          float64(stats.Joined),
		Integrated:      float64(stats.Integrated),
		NewcomerPollsOK: float64(stats.NewcomerPollsOK),
		NewcomerVotes:   float64(stats.NewcomerVotes),
		AccessFailure:   w.Metrics.AccessFailureProbability(),
	}, nil
}

// ExtensionChurn studies newcomers joining a running network, absent attack
// and under a sustained admission-control flood (which keeps victims'
// refractory periods triggered — exactly the condition that makes cold
// integration hard and that introductions were designed to relieve).
func ExtensionChurn(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension E1",
		Title: "Dynamic population: newcomers joining over time (§9 future work)",
		Columns: []string{"scenario", "joined", "integrated", "newcomer-polls-ok",
			"newcomer-votes", "access-failure"},
	}
	cfg := o.baseWorld()
	cfg.DamageDiskYears = 5
	churn := world.Churn{JoinPerYear: 8, MaxJoins: 8, FriendsPerJoiner: 4}
	if o.Scale == ScalePaper {
		churn = world.Churn{JoinPerYear: 12, MaxJoins: 20, FriendsPerJoiner: 5}
	}

	scenarios := []struct {
		name string
		mk   func() adversary.Adversary
	}{
		{"no attack", nil},
		{"admission flood", func() adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day,
			}}
		}},
	}
	// Fan every (scenario, seed) churn run across the engine; accumulation
	// and row emission stay in scenario-major, seed-minor order.
	e := o.engine()
	seeds := o.seeds()
	accs := make([]ChurnResult, len(scenarios))
	_, err := gather(len(scenarios)*seeds, func(i int) (ChurnResult, error) {
		sc := scenarios[i/seeds]
		c := cfg
		c.Seed = cfg.Seed + uint64(i%seeds)*1_000_003
		var r ChurnResult
		err := e.withSlot(func() error {
			var ferr error
			r, ferr = runChurn(c, churn, sc.mk)
			return ferr
		})
		return r, err
	}, func(i int, r ChurnResult) {
		acc := &accs[i/seeds]
		acc.Joined += r.Joined / float64(seeds)
		acc.Integrated += r.Integrated / float64(seeds)
		acc.NewcomerPollsOK += r.NewcomerPollsOK / float64(seeds)
		acc.NewcomerVotes += r.NewcomerVotes / float64(seeds)
		acc.AccessFailure += r.AccessFailure / float64(seeds)
		if (i+1)%seeds == 0 {
			sc := scenarios[i/seeds]
			t.AddRow(sc.name, fmt.Sprintf("%.1f", acc.Joined), fmt.Sprintf("%.1f", acc.Integrated),
				fmt.Sprintf("%.0f", acc.NewcomerPollsOK), fmt.Sprintf("%.0f", acc.NewcomerVotes),
				fmtProb(acc.AccessFailure))
			o.progress("churn %s joined=%.1f integrated=%.1f", sc.name, acc.Joined, acc.Integrated)
		}
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"newcomers integrate through mutual friends, discovery nominations and introductions",
		"the admission flood slows but does not prevent integration (friends bypass the refractory period)")
	return t, nil
}

// ExtensionAdaptive evaluates §9's adaptive-acceptance idea against the
// brute-force REMAINING attack: victims modulate acceptance of unknown/
// in-debt invitations by recent busyness.
func ExtensionAdaptive(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension E2",
		Title: "Adaptive acceptance vs brute-force REMAINING (§9 future work)",
		Columns: []string{"adaptive", "coeff-friction", "cost-ratio", "delay-ratio",
			"victim-votes-wasted"},
	}
	settings := []bool{false, true}
	err := compareSweep(o, len(settings), func(i int) (world.Config, func() adversary.Adversary) {
		cfg := o.baseWorld()
		cfg.Protocol.AdaptiveAcceptance = settings[i]
		cfg.Protocol.AdaptiveGain = 5
		// Adaptive acceptance is keyed on busyness; make compute expensive
		// (as with very large collections) so busyness is a real signal.
		cfg.HashBytesPerSec = 16 << 10
		return cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectRemaining}
		}
	}, func(i int, cmp Comparison) {
		wasted := cmp.Attack.DefenderEffort - cmp.Baseline.DefenderEffort
		if wasted < 0 || math.IsNaN(wasted) {
			wasted = 0
		}
		t.AddRow(fmt.Sprintf("%v", settings[i]), fmtRatio(cmp.Friction), fmtRatio(cmp.CostRatio),
			fmtRatio(cmp.DelayRatio), fmt.Sprintf("%.0f", wasted))
		o.progress("adaptive=%v friction=%s", settings[i], fmtRatio(cmp.Friction))
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"adaptive acceptance raises the attacker's marginal cost of keeping victims busy (§9)")
	return t, nil
}

// ExtensionCombined studies §9's third question: does an attrition attack
// compose with another to weaken the system more than either alone? We pair
// a pipe stoppage (softening communication) with a brute-force REMAINING
// attacker (draining compute) and compare against each in isolation.
func ExtensionCombined(o Options) (*Table, error) {
	t := &Table{
		ID:    "Extension E3",
		Title: "Combined adversary strategies (§9 future work)",
		Columns: []string{"attack", "access-failure", "delay-ratio", "coeff-friction",
			"polls-ok"},
	}
	cfg := o.baseWorld()
	cfg.DamageDiskYears = 1 // strong damage signal

	stop := func() adversary.Adversary {
		return &adversary.PipeStoppage{Pulse: adversary.Pulse{
			Coverage: 0.7, Duration: 60 * sim.Day, Recuperation: 30 * sim.Day,
		}}
	}
	brute := func() adversary.Adversary {
		return &adversary.BruteForce{Defection: adversary.DefectRemaining}
	}
	scenarios := []struct {
		name string
		mk   func() adversary.Adversary
	}{
		{"baseline", nil},
		{"pipe stoppage 70%/60d", stop},
		{"brute force REMAINING", brute},
		{"combined", func() adversary.Adversary {
			return &adversary.Combined{Parts: []adversary.Adversary{stop(), brute()}}
		}},
	}
	// Every scenario job compares against the memoized baseline run, so the
	// baseline is simulated once however the jobs interleave.
	e := o.engine()
	_, err := gather(len(scenarios), func(i int) (Comparison, error) {
		// Attack first: independent runs fill the pool while the shared
		// baseline's single flight is in progress (see attackSweep).
		var stats RunStats
		var err error
		if scenarios[i].mk != nil {
			if stats, err = e.RunAveraged(cfg, scenarios[i].mk, o.seeds()); err != nil {
				return Comparison{}, err
			}
		}
		baseline, err := e.RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return Comparison{}, err
		}
		if scenarios[i].mk == nil {
			stats = baseline
		}
		return Compare(stats, baseline), nil
	}, func(i int, cmp Comparison) {
		t.AddRow(scenarios[i].name, fmtProb(cmp.Attack.AccessFailure), fmtRatio(cmp.DelayRatio),
			fmtRatio(cmp.Friction), fmt.Sprintf("%.0f", cmp.Attack.SuccessfulPolls))
		o.progress("combined %s afp=%s", scenarios[i].name, fmtProb(cmp.Attack.AccessFailure))
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"redundancy and rate limits keep the combination roughly additive: the stoppage dominates damage, the brute force dominates friction")
	return t, nil
}
