package experiment

import (
	"context"
	"fmt"
	"math"

	"lockss/internal/adversary"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Extension experiments beyond the paper's evaluation, covering its §9
// future-work agenda: dynamic populations (churn), adaptive acceptance, and
// combined adversary strategies — each a registered Scenario.

// ChurnResult captures one churn scenario's outcome.
type ChurnResult struct {
	Scenario        string
	Joined          float64
	Integrated      float64
	NewcomerPollsOK float64
	NewcomerVotes   float64
	AccessFailure   float64
}

// runChurn executes one seeded churn run.
func runChurn(cfg world.Config, churn world.Churn, mkAttack func() adversary.Adversary) (ChurnResult, error) {
	w, err := world.New(cfg)
	if err != nil {
		return ChurnResult{}, err
	}
	stats := w.EnableChurn(churn)
	if mkAttack != nil {
		mkAttack().Install(w)
	}
	w.Run()
	return ChurnResult{
		Joined:          float64(stats.Joined),
		Integrated:      float64(stats.Integrated),
		NewcomerPollsOK: float64(stats.NewcomerPollsOK),
		NewcomerVotes:   float64(stats.NewcomerVotes),
		AccessFailure:   w.Metrics.AccessFailureProbability(),
	}, nil
}

// churnNames labels the churn scenario axis.
var churnNames = []string{"no attack", "admission flood"}

// scenarioExtensionChurn studies newcomers joining a running network,
// absent attack and under a sustained admission-control flood (which keeps
// victims' refractory periods triggered — exactly the condition that makes
// cold integration hard and that introductions were designed to relieve).
// The churn statistics are not part of RunStats, so the scenario supplies a
// custom RunPoint that fans the seeded churn runs across the engine and
// reports through PointResult.Extra.
var scenarioExtensionChurn = mustRegister(&Scenario{
	Name:        "extension-churn",
	Description: "Extension E1: dynamic population, newcomers joining over time (§9 future work)",
	Mutators:    []ConfigMutator{func(cfg *world.Config) { cfg.DamageDiskYears = 5 }},
	Axes: []Axis{{
		Name:   "scenario",
		Values: []float64{0, 1},
		Format: func(v float64) string { return churnNames[int(v)] },
	}},
	RunPoint: func(ctx context.Context, e *Engine, o Options, cfg world.Config, pt Point) (PointResult, error) {
		churn := world.Churn{JoinPerYear: 8, MaxJoins: 8, FriendsPerJoiner: 4}
		if o.Scale == ScalePaper {
			churn = world.Churn{JoinPerYear: 12, MaxJoins: 20, FriendsPerJoiner: 5}
		}
		var mk func() adversary.Adversary
		if int(pt.At(0)) == 1 {
			mk = func() adversary.Adversary { return sustainedFlood(cfg) }
		}
		// Fan the seeded churn runs across the engine; accumulation stays
		// in seed order, so results match the serial loop bit-for-bit.
		seeds := o.seeds()
		var acc ChurnResult
		_, err := gather(seeds, func(s int) (ChurnResult, error) {
			c := cfg
			c.Seed = cfg.Seed + uint64(s)*1_000_003
			var r ChurnResult
			err := e.withSlot(ctx, func() error {
				var ferr error
				r, ferr = runChurn(c, churn, mk)
				return ferr
			})
			return r, err
		}, func(s int, r ChurnResult) {
			acc.Joined += r.Joined / float64(seeds)
			acc.Integrated += r.Integrated / float64(seeds)
			acc.NewcomerPollsOK += r.NewcomerPollsOK / float64(seeds)
			acc.NewcomerVotes += r.NewcomerVotes / float64(seeds)
			acc.AccessFailure += r.AccessFailure / float64(seeds)
		})
		if err != nil {
			return PointResult{}, err
		}
		return PointResult{
			Stats: RunStats{AccessFailure: acc.AccessFailure},
			Extra: map[string]float64{
				"joined":            acc.Joined,
				"integrated":        acc.Integrated,
				"newcomer-polls-ok": acc.NewcomerPollsOK,
				"newcomer-votes":    acc.NewcomerVotes,
			},
		}, nil
	},
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:    "Extension E1",
			Title: "Dynamic population: newcomers joining over time (§9 future work)",
			Columns: []string{"scenario", "joined", "integrated", "newcomer-polls-ok",
				"newcomer-votes", "access-failure"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			t.AddCells(Str(churnNames[int(pr.Point.At(0))]),
				Num("%.1f", pr.Extra["joined"]), Num("%.1f", pr.Extra["integrated"]),
				Num("%.0f", pr.Extra["newcomer-polls-ok"]), Num("%.0f", pr.Extra["newcomer-votes"]),
				Prob(pr.Stats.AccessFailure))
		}
		t.Notes = append(t.Notes,
			"newcomers integrate through mutual friends, discovery nominations and introductions",
			"the admission flood slows but does not prevent integration (friends bypass the refractory period)")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		return fmt.Sprintf("churn %s joined=%.1f integrated=%.1f",
			churnNames[int(pt.At(0))], pr.Extra["joined"], pr.Extra["integrated"])
	},
})

// ExtensionChurn reproduces extension E1 through the scenario registry.
func ExtensionChurn(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioExtensionChurn.Name, o))
}

// scenarioExtensionAdaptive evaluates §9's adaptive-acceptance idea against
// the brute-force REMAINING attack: victims modulate acceptance of unknown/
// in-debt invitations by recent busyness.
var scenarioExtensionAdaptive = mustRegister(&Scenario{
	Name:        "extension-adaptive",
	Description: "Extension E2: adaptive acceptance vs brute-force REMAINING (§9 future work)",
	Mutators: []ConfigMutator{func(cfg *world.Config) {
		cfg.Protocol.AdaptiveGain = 5
		// Adaptive acceptance is keyed on busyness; make compute expensive
		// (as with very large collections) so busyness is a real signal.
		cfg.HashBytesPerSec = 16 << 10
	}},
	Axes: []Axis{boolAxis("adaptive", []bool{false, true},
		func(cfg *world.Config, on bool) { cfg.Protocol.AdaptiveAcceptance = on })},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		return bruteRemaining()
	},
	Compare: true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:    "Extension E2",
			Title: "Adaptive acceptance vs brute-force REMAINING (§9 future work)",
			Columns: []string{"adaptive", "coeff-friction", "cost-ratio", "delay-ratio",
				"victim-votes-wasted"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			wasted := pr.Stats.DefenderEffort - pr.Baseline.DefenderEffort
			if wasted < 0 || math.IsNaN(wasted) {
				wasted = 0
			}
			t.AddCells(Bool(pr.Point.At(0) != 0), Ratio(pr.Cmp.Friction), Ratio(pr.Cmp.CostRatio),
				Ratio(pr.Cmp.DelayRatio), Num("%.0f", wasted))
		}
		t.Notes = append(t.Notes,
			"adaptive acceptance raises the attacker's marginal cost of keeping victims busy (§9)")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		return fmt.Sprintf("adaptive=%v friction=%s", pt.At(0) != 0, fmtRatio(pr.Cmp.Friction))
	},
})

// ExtensionAdaptive reproduces extension E2 through the scenario registry.
func ExtensionAdaptive(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioExtensionAdaptive.Name, o))
}

// combinedParts builds the §9 combined-strategy attack roster: a pipe
// stoppage softening communication and a brute-force REMAINING attacker
// draining compute, alone and together.
var combinedNames = []string{"baseline", "pipe stoppage 70%/60d", "brute force REMAINING", "combined"}

func combinedStoppage() adversary.Adversary {
	return &adversary.PipeStoppage{Pulse: adversary.Pulse{
		Coverage: 0.7, Duration: 60 * sim.Day, Recuperation: 30 * sim.Day,
	}}
}

// scenarioExtensionCombined studies §9's third question: does an attrition
// attack compose with another to weaken the system more than either alone?
var scenarioExtensionCombined = mustRegister(&Scenario{
	Name:        "extension-combined",
	Description: "Extension E3: combined adversary strategies (§9 future work)",
	Mutators:    []ConfigMutator{func(cfg *world.Config) { cfg.DamageDiskYears = 1 }}, // strong damage signal
	Axes: []Axis{{
		Name:   "attack",
		Values: []float64{0, 1, 2, 3},
		Format: func(v float64) string { return combinedNames[int(v)] },
	}},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		switch int(pt.At(0)) {
		case 1:
			return combinedStoppage()
		case 2:
			return bruteRemaining()
		case 3:
			return &adversary.Combined{Parts: []adversary.Adversary{combinedStoppage(), bruteRemaining()}}
		}
		return nil // the baseline row compares the memoized baseline to itself
	},
	Compare: true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:    "Extension E3",
			Title: "Combined adversary strategies (§9 future work)",
			Columns: []string{"attack", "access-failure", "delay-ratio", "coeff-friction",
				"polls-ok"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			t.AddCells(Str(combinedNames[int(pr.Point.At(0))]), Prob(pr.Stats.AccessFailure),
				Ratio(pr.Cmp.DelayRatio), Ratio(pr.Cmp.Friction),
				Num("%.0f", pr.Stats.SuccessfulPolls))
		}
		t.Notes = append(t.Notes,
			"redundancy and rate limits keep the combination roughly additive: the stoppage dominates damage, the brute force dominates friction")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		return fmt.Sprintf("combined %s afp=%s", combinedNames[int(pt.At(0))], fmtProb(pr.Stats.AccessFailure))
	},
})

// ExtensionCombined reproduces extension E3 through the scenario registry.
func ExtensionCombined(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioExtensionCombined.Name, o))
}
