package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// typedTable builds a table exercising every cell constructor, including
// the non-finite values dead baselines produce.
func typedTable() *Table {
	t := &Table{
		ID:      "T",
		Title:   "typed cells",
		Columns: []string{"name", "count", "gap(days)", "afp", "ratio", "on"},
		Notes:   []string{"a note"},
	}
	t.AddCells(Str("alive"), Int(42), Num("%.1f", 229.6), Prob(4.8e-4), Ratio(1.5), Bool(true))
	t.AddCells(Str("dead"), Int(0), Num("%.1f", math.Inf(1)), Prob(0), Ratio(math.Inf(1)), Bool(false))
	return t
}

// TestFprintInfAlignment asserts non-finite means render as "inf" (not
// fmt's "+Inf") and stay column-aligned.
func TestFprintInfAlignment(t *testing.T) {
	var buf bytes.Buffer
	typedTable().Fprint(&buf)
	out := buf.String()
	if strings.Contains(out, "+Inf") {
		t.Errorf("Fprint leaked fmt's +Inf spelling:\n%s", out)
	}
	if !strings.Contains(out, "inf") {
		t.Errorf("Inf cell not rendered:\n%s", out)
	}
	// Every data column starts at the same offset on both rows.
	lines := strings.Split(out, "\n")
	var rows []string
	for _, l := range lines {
		if strings.Contains(l, "alive") || strings.Contains(l, "dead") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 data rows, got %d:\n%s", len(rows), out)
	}
	if strings.Index(rows[0], "229.6") != strings.Index(rows[1], "inf") {
		t.Errorf("gap column misaligned:\n%s", out)
	}
}

// TestFprintOverlongRow asserts rows with more cells than declared columns
// still align instead of jamming the extra cells together.
func TestFprintOverlongRow(t *testing.T) {
	tab := &Table{ID: "X", Title: "overlong", Columns: []string{"a"}}
	tab.AddCells(Str("1"), Str("extra"), Str("more"))
	tab.AddCells(Str("22"), Str("x"), Str("y"))
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "1   extra  more") {
		t.Errorf("overlong row not padded:\n%s", out)
	}
}

// TestWriteJSON asserts typed cells marshal as values and non-finite
// floats degrade to their rendered text.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := typedTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"id":"T"`,
		`"columns":["name","count","gap(days)","afp","ratio","on"]`,
		`["alive",42,229.6,0.00048,1.5,true]`,
		`["dead",0,"inf",0,"inf",false]`,
		`"notes":["a note"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	// Plain AddRow tables must marshal too.
	plain := &Table{ID: "P", Title: "plain", Columns: []string{"c"}}
	plain.AddRow("v")
	buf.Reset()
	if err := plain.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `[["v"]]`) {
		t.Errorf("plain rows mangled: %s", buf.String())
	}
}

// TestWriteCSV asserts the CSV emitter writes a header and full-precision
// typed values.
func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := typedTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "name,count,gap(days),afp,ratio,on" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[1] != "alive,42,229.6,0.00048,1.5,true" {
		t.Errorf("CSV row 1 = %q", lines[1])
	}
	if lines[2] != "dead,0,inf,0,inf,false" {
		t.Errorf("CSV row 2 = %q", lines[2])
	}
}
