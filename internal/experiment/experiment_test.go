package experiment

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"lockss/internal/prng"
	"lockss/internal/sched"
	"lockss/internal/sim"
)

func TestCompareRatios(t *testing.T) {
	base := RunStats{MeanSuccessGap: 90, EffortPerPoll: 100, DefenderEffort: 1000}
	attack := RunStats{MeanSuccessGap: 180, EffortPerPoll: 250, DefenderEffort: 2000, AttackerEffort: 3000}
	c := Compare(attack, base)
	if c.DelayRatio != 2.0 {
		t.Errorf("delay ratio %v", c.DelayRatio)
	}
	if c.Friction != 2.5 {
		t.Errorf("friction %v", c.Friction)
	}
	if c.CostRatio != 1.5 {
		t.Errorf("cost ratio %v", c.CostRatio)
	}
}

func TestCompareInfiniteGap(t *testing.T) {
	base := RunStats{MeanSuccessGap: 90, EffortPerPoll: 100}
	attack := RunStats{MeanSuccessGap: math.Inf(1)}
	c := Compare(attack, base)
	if !math.IsInf(c.DelayRatio, 1) {
		t.Errorf("delay ratio should be +Inf, got %v", c.DelayRatio)
	}
}

func TestAverage(t *testing.T) {
	a := RunStats{AccessFailure: 0.1, SuccessfulPolls: 10, DefenderEffort: 100, EffortPerPoll: 10, MeanSuccessGap: 80}
	b := RunStats{AccessFailure: 0.3, SuccessfulPolls: 20, DefenderEffort: 300, EffortPerPoll: 15, MeanSuccessGap: 100}
	avg := average([]RunStats{a, b})
	if math.Abs(avg.AccessFailure-0.2) > 1e-12 || avg.SuccessfulPolls != 15 || avg.MeanSuccessGap != 90 {
		t.Errorf("average wrong: %+v", avg)
	}
}

func TestCombineLayers(t *testing.T) {
	a := RunStats{AccessFailure: 0.2, SuccessfulPolls: 100, DefenderEffort: 1000, MeanSuccessGap: 90}
	b := RunStats{AccessFailure: 0.4, SuccessfulPolls: 300, DefenderEffort: 3000, MeanSuccessGap: 110}
	c := combineLayers([]RunStats{a, b})
	if math.Abs(c.AccessFailure-0.3) > 1e-12 {
		t.Errorf("layer AFP should average: %v", c.AccessFailure)
	}
	if c.SuccessfulPolls != 400 || c.DefenderEffort != 4000 {
		t.Error("layer counts should sum")
	}
	if c.EffortPerPoll != 10 {
		t.Errorf("effort per poll %v", c.EffortPerPoll)
	}
	// Success-weighted gap: (90*100 + 110*300)/400 = 105.
	if math.Abs(c.MeanSuccessGap-105) > 1e-9 {
		t.Errorf("weighted gap %v", c.MeanSuccessGap)
	}
}

func TestBgLoadDeterministicAndSorted(t *testing.T) {
	bg := &bgLoad{seed: 42, ratePerNs: 1e-12, meanDurNs: 1e10, bucket: int64(sim.Day)}
	a := bg.Tasks(0, sched.Time(10*sim.Day))
	b := bg.Tasks(0, sched.Time(10*sim.Day))
	if len(a) != len(b) {
		t.Fatal("background load not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("background tasks differ between queries")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Start < a[i-1].Start {
			t.Fatal("background tasks unsorted")
		}
	}
	// Sub-range queries agree with the full range.
	sub := bg.Tasks(sched.Time(2*sim.Day), sched.Time(3*sim.Day))
	for _, s := range sub {
		found := false
		for _, f := range a {
			if f.Start == s.Start && f.End == s.End {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("sub-range task missing from full range")
		}
	}
}

func TestBgLoadRate(t *testing.T) {
	// Expect ~rate * horizon tasks.
	rate := 2e-13 // per ns => ~17 per day
	bg := &bgLoad{seed: 7, ratePerNs: rate, meanDurNs: 1e9, bucket: int64(sim.Day)}
	horizon := 30 * sim.Day
	n := len(bg.Tasks(0, sched.Time(horizon)))
	want := rate * float64(horizon)
	if math.Abs(float64(n)-want) > 0.25*want {
		t.Errorf("background task count %d, want ~%.0f", n, want)
	}
}

func TestPoisson(t *testing.T) {
	rnd := prngNew(3)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(rnd, 3.5))
	}
	if mean := sum / n; math.Abs(mean-3.5) > 0.1 {
		t.Errorf("poisson mean %.3f, want 3.5", mean)
	}
	if poisson(rnd, 0) != 0 || poisson(rnd, -1) != 0 {
		t.Error("non-positive lambda should yield 0")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "Figure X",
		Title:   "Test table",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Figure X", "Test table", "long-column", "333333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtProb(0) != "0" {
		t.Error("fmtProb(0)")
	}
	if fmtProb(4.8e-4) != "4.80e-04" {
		t.Errorf("fmtProb = %q", fmtProb(4.8e-4))
	}
	if fmtRatio(math.Inf(1)) != "inf" || fmtRatio(0) != "-" || fmtRatio(1.5) != "1.50" {
		t.Error("fmtRatio wrong")
	}
	if fmtSeries(0.4) != "40%" {
		t.Errorf("fmtSeries = %q", fmtSeries(0.4))
	}
}

func TestScaleOptions(t *testing.T) {
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		o := Options{Scale: s}
		cfg := o.baseWorld()
		if cfg.Peers <= cfg.Protocol.Quorum {
			t.Errorf("%v: population too small", s)
		}
		if o.seeds() < 1 || o.layersFor() < 2 {
			t.Errorf("%v: bad defaults", s)
		}
		if s.String() == "invalid" {
			t.Errorf("scale %d has no name", s)
		}
	}
	if (Options{Seeds: 7}).seeds() != 7 {
		t.Error("seed override ignored")
	}
}

func TestRunLayeredAggregates(t *testing.T) {
	o := Options{Scale: ScaleTiny}
	cfg := o.baseWorld()
	cfg.Duration = sim.Year / 2
	cfg.DamageDiskYears = 1
	single, err := RunOne(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	layered, err := RunLayered(context.Background(), cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if layered.SuccessfulPolls < single.SuccessfulPolls*15/10 {
		t.Errorf("two layers should roughly double polls: %v vs %v",
			layered.SuccessfulPolls, single.SuccessfulPolls)
	}
	if layered.AccessFailure <= 0 {
		t.Error("layered run lost the damage signal")
	}
}

// prngNew is a local alias used by the poisson test.
func prngNew(seed uint64) *prng.Source { return prng.New(seed) }
