package experiment

import (
	"testing"

	"lockss/internal/adversary"
	"lockss/internal/sim"
)

// TestAttackSmoke checks the qualitative shape of each adversary's effect at
// tiny scale: attacks hurt in the direction the paper predicts.
func TestAttackSmoke(t *testing.T) {
	o := Options{Scale: ScaleTiny}
	cfg := o.baseWorld()
	cfg.DamageDiskYears = 1 // strong damage signal

	baseline, err := RunOne(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: afp=%.2e gap=%.1fd effort/poll=%.0f polls=%v/%v",
		baseline.AccessFailure, baseline.MeanSuccessGap, baseline.EffortPerPoll,
		baseline.SuccessfulPolls, baseline.TotalPolls)

	stop, err := RunOne(cfg, func() adversary.Adversary {
		return &adversary.PipeStoppage{Pulse: adversary.Pulse{Coverage: 1, Duration: 90 * sim.Day, Recuperation: 30 * sim.Day}}
	})
	if err != nil {
		t.Fatal(err)
	}
	cmpStop := Compare(stop, baseline)
	t.Logf("pipe-stoppage 100%%/90d: afp=%.2e delay=%.2f friction=%.2f polls=%v/%v",
		stop.AccessFailure, cmpStop.DelayRatio, cmpStop.Friction, stop.SuccessfulPolls, stop.TotalPolls)
	if stop.AccessFailure <= baseline.AccessFailure {
		t.Errorf("pipe stoppage should raise access failure: %.2e <= %.2e", stop.AccessFailure, baseline.AccessFailure)
	}
	if cmpStop.DelayRatio <= 1.1 {
		t.Errorf("pipe stoppage 100%%/90d should raise delay ratio well above 1, got %.2f", cmpStop.DelayRatio)
	}

	flood, err := RunOne(cfg, func() adversary.Adversary {
		return &adversary.AdmissionFlood{Pulse: adversary.Pulse{Coverage: 1, Duration: cfg.Duration, Recuperation: 30 * sim.Day}}
	})
	if err != nil {
		t.Fatal(err)
	}
	cmpFlood := Compare(flood, baseline)
	t.Logf("admission-flood: afp=%.2e delay=%.2f friction=%.2f polls=%v/%v",
		flood.AccessFailure, cmpFlood.DelayRatio, cmpFlood.Friction, flood.SuccessfulPolls, flood.TotalPolls)
	if flood.SuccessfulPolls < baseline.SuccessfulPolls*0.7 {
		t.Errorf("admission flood should have little effect on poll success: %v vs %v",
			flood.SuccessfulPolls, baseline.SuccessfulPolls)
	}

	for _, d := range []adversary.Defection{adversary.DefectIntro, adversary.DefectRemaining, adversary.DefectNone} {
		d := d
		bf, err := RunOne(cfg, func() adversary.Adversary { return &adversary.BruteForce{Defection: d} })
		if err != nil {
			t.Fatal(err)
		}
		c := Compare(bf, baseline)
		t.Logf("brute-force %v: afp=%.2e delay=%.2f friction=%.2f cost=%.2f attacker=%.0f polls=%v/%v",
			d, bf.AccessFailure, c.DelayRatio, c.Friction, c.CostRatio, bf.AttackerEffort,
			bf.SuccessfulPolls, bf.TotalPolls)
		if bf.AttackerEffort == 0 {
			t.Errorf("brute force %v: attacker spent no effort", d)
		}
		if bf.SuccessfulPolls < baseline.SuccessfulPolls*0.6 {
			t.Errorf("brute force %v should not collapse polls: %v vs %v", d, bf.SuccessfulPolls, baseline.SuccessfulPolls)
		}
	}
}
