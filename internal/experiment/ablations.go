package experiment

import (
	"fmt"

	"lockss/internal/adversary"
	"lockss/internal/sched"
	"lockss/internal/sim"
)

// Ablation experiments probe the design choices DESIGN.md calls out. Each
// returns a Table in the same style as the paper figures.

// AblationRefractory sweeps the refractory period under a sustained
// full-coverage admission-control flood.
func AblationRefractory(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A1",
		Title:   "Refractory period under sustained admission-control flood",
		Columns: []string{"refractory(days)", "access-failure", "delay-ratio", "coeff-friction"},
	}
	for _, days := range []float64{0.25, 0.5, 1, 2, 4} {
		cfg := o.baseWorld()
		cfg.Protocol.Refractory = sched.Duration(days * float64(sim.Day))
		baseline, err := RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return nil, err
		}
		attack, err := RunAveraged(cfg, func() adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day,
			}}
		}, o.seeds())
		if err != nil {
			return nil, err
		}
		cmp := Compare(attack, baseline)
		t.AddRow(fmt.Sprintf("%.2f", days), fmtProb(attack.AccessFailure),
			fmtRatio(cmp.DelayRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/refractory %gd afp=%s", days, fmtProb(attack.AccessFailure))
	}
	t.Notes = append(t.Notes,
		"longer refractory periods shield busier peers but slow discovery (§9 of the paper)")
	return t, nil
}

// AblationDropProb sweeps the unknown/in-debt drop probabilities under the
// brute-force REMAINING attack.
func AblationDropProb(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A2",
		Title:   "Drop probabilities vs brute-force REMAINING attack",
		Columns: []string{"drop-unknown", "drop-debt", "cost-ratio", "coeff-friction"},
	}
	for _, p := range []struct{ unknown, debt float64 }{
		{0.50, 0.40}, {0.80, 0.60}, {0.90, 0.80}, {0.95, 0.90},
	} {
		cfg := o.baseWorld()
		cfg.Protocol.DropUnknown = p.unknown
		cfg.Protocol.DropDebt = p.debt
		baseline, err := RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return nil, err
		}
		attack, err := RunAveraged(cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectRemaining}
		}, o.seeds())
		if err != nil {
			return nil, err
		}
		cmp := Compare(attack, baseline)
		t.AddRow(fmt.Sprintf("%.2f", p.unknown), fmt.Sprintf("%.2f", p.debt),
			fmtRatio(cmp.CostRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/drop %.2f/%.2f cost=%s", p.unknown, p.debt, fmtRatio(cmp.CostRatio))
	}
	t.Notes = append(t.Notes,
		"higher drop probabilities force the attacker to spend more introductory effort per admission")
	return t, nil
}

// AblationIntroductions toggles peer introductions under a sustained
// admission flood and reports discovery health (successful polls, friction).
func AblationIntroductions(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A3",
		Title:   "Peer introductions on/off under sustained admission-control flood",
		Columns: []string{"introductions", "polls-ok", "delay-ratio", "coeff-friction"},
	}
	for _, enabled := range []bool{true, false} {
		cfg := o.baseWorld()
		cfg.Protocol.Introductions = enabled
		baseline, err := RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return nil, err
		}
		attack, err := RunAveraged(cfg, func() adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day,
			}}
		}, o.seeds())
		if err != nil {
			return nil, err
		}
		cmp := Compare(attack, baseline)
		t.AddRow(fmt.Sprintf("%v", enabled), fmt.Sprintf("%.0f", attack.SuccessfulPolls),
			fmtRatio(cmp.DelayRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/intros=%v polls=%.0f", enabled, attack.SuccessfulPolls)
	}
	t.Notes = append(t.Notes,
		"introductions let loyal-but-unknown pollers bypass refractory periods the flood keeps triggered")
	return t, nil
}

// AblationDesynchronization toggles desynchronized vote solicitation and
// reports poll health, absent and under attack (§5.2's rendezvous problem).
func AblationDesynchronization(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A4",
		Title:   "Desynchronization on/off (baseline and brute-force REMAINING)",
		Columns: []string{"desync", "scenario", "polls-ok", "polls-total", "mean-gap(days)"},
	}
	for _, enabled := range []bool{true, false} {
		cfg := o.baseWorld()
		cfg.Protocol.Desynchronize = enabled
		// The §5.2 rendezvous problem only bites when peers are busy:
		// slow the reference machine's hashing so votes take hours, as
		// they would with hundreds of concurrent AUs.
		cfg.HashBytesPerSec = 4 << 10
		baseline, err := RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%v", enabled), "baseline",
			fmt.Sprintf("%.0f", baseline.SuccessfulPolls),
			fmt.Sprintf("%.0f", baseline.TotalPolls),
			fmt.Sprintf("%.1f", baseline.MeanSuccessGap))
		attack, err := RunAveraged(cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectRemaining}
		}, o.seeds())
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%v", enabled), "brute-force",
			fmt.Sprintf("%.0f", attack.SuccessfulPolls),
			fmt.Sprintf("%.0f", attack.TotalPolls),
			fmt.Sprintf("%.1f", attack.MeanSuccessGap))
		o.progress("ablation/desync=%v ok=%.0f/%.0f", enabled, attack.SuccessfulPolls, attack.TotalPolls)
	}
	t.Notes = append(t.Notes,
		"synchronous solicitation needs a quorum of simultaneously free voters; busyness then collapses polls (§5.2)")
	return t, nil
}

// AblationEffortBalancing toggles effort balancing under the brute-force
// NONE attack, showing the attacker's cost collapsing when requests are
// cheap.
func AblationEffortBalancing(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A5",
		Title:   "Effort balancing on/off under brute-force NONE attack",
		Columns: []string{"effort-balancing", "attacker-effort", "defender-effort", "cost-ratio", "coeff-friction"},
	}
	for _, enabled := range []bool{true, false} {
		cfg := o.baseWorld()
		cfg.Protocol.EffortBalancing = enabled
		baseline, err := RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return nil, err
		}
		attack, err := RunAveraged(cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectNone}
		}, o.seeds())
		if err != nil {
			return nil, err
		}
		cmp := Compare(attack, baseline)
		t.AddRow(fmt.Sprintf("%v", enabled),
			fmt.Sprintf("%.0f", attack.AttackerEffort),
			fmt.Sprintf("%.0f", attack.DefenderEffort),
			fmtRatio(cmp.CostRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/effort=%v cost=%s", enabled, fmtRatio(cmp.CostRatio))
	}
	t.Notes = append(t.Notes,
		"without effort balancing the attacker imposes defender work at near-zero cost to itself")
	return t, nil
}
