package experiment

import (
	"fmt"

	"lockss/internal/adversary"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Ablation experiments probe the design choices DESIGN.md calls out. Each
// is a registered Scenario rendering a Table in the style of the paper
// figures.

// sustainedFlood builds the full-coverage admission flood that lasts the
// whole run — the ablations' standard stressor.
func sustainedFlood(cfg world.Config) adversary.Adversary {
	return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
		Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day,
	}}
}

// bruteRemaining builds the brute-force adversary defecting at REMAINING.
func bruteRemaining() adversary.Adversary {
	return &adversary.BruteForce{Defection: adversary.DefectRemaining}
}

// boolAxis sweeps a protocol toggle in the given order.
func boolAxis(name string, order []bool, apply func(cfg *world.Config, on bool)) Axis {
	vals := make([]float64, len(order))
	for i, on := range order {
		if on {
			vals[i] = 1
		}
	}
	return Axis{
		Name:   name,
		Values: vals,
		Apply:  func(cfg *world.Config, v float64) { apply(cfg, v != 0) },
		Format: func(v float64) string { return fmt.Sprintf("%v", v != 0) },
	}
}

// scenarioAblationRefractory sweeps the refractory period under a sustained
// full-coverage admission-control flood.
var scenarioAblationRefractory = mustRegister(&Scenario{
	Name:        "ablation-refractory",
	Description: "Ablation A1: refractory period under sustained admission-control flood",
	Axes: []Axis{{
		Name:   "refractory(days)",
		Values: []float64{0.25, 0.5, 1, 2, 4},
		Apply: func(cfg *world.Config, v float64) {
			cfg.Protocol.Refractory = sched.Duration(v * float64(sim.Day))
		},
		Format: func(v float64) string { return fmt.Sprintf("%.2f", v) },
	}},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		return sustainedFlood(cfg)
	},
	Compare: true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:      "Ablation A1",
			Title:   "Refractory period under sustained admission-control flood",
			Columns: []string{"refractory(days)", "access-failure", "delay-ratio", "coeff-friction"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			t.AddCells(Num("%.2f", pr.Point.At(0)), Prob(pr.Stats.AccessFailure),
				Ratio(pr.Cmp.DelayRatio), Ratio(pr.Cmp.Friction))
		}
		t.Notes = append(t.Notes,
			"longer refractory periods shield busier peers but slow discovery (§9 of the paper)")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		return fmt.Sprintf("ablation/refractory %gd afp=%s", pt.At(0), fmtProb(pr.Stats.AccessFailure))
	},
})

// AblationRefractory reproduces ablation A1 through the scenario registry.
func AblationRefractory(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioAblationRefractory.Name, o))
}

// ablationDropSettings pairs the swept (drop-unknown, drop-debt)
// probabilities; the axis sweeps indices into it.
var ablationDropSettings = []struct{ unknown, debt float64 }{
	{0.50, 0.40}, {0.80, 0.60}, {0.90, 0.80}, {0.95, 0.90},
}

// scenarioAblationDropProb sweeps the unknown/in-debt drop probabilities
// under the brute-force REMAINING attack.
var scenarioAblationDropProb = mustRegister(&Scenario{
	Name:        "ablation-drop-prob",
	Description: "Ablation A2: drop probabilities vs brute-force REMAINING attack",
	Axes: []Axis{{
		Name:   "setting",
		Values: []float64{0, 1, 2, 3},
		Apply: func(cfg *world.Config, v float64) {
			s := ablationDropSettings[int(v)]
			cfg.Protocol.DropUnknown = s.unknown
			cfg.Protocol.DropDebt = s.debt
		},
		Format: func(v float64) string {
			s := ablationDropSettings[int(v)]
			return fmt.Sprintf("%.2f/%.2f", s.unknown, s.debt)
		},
	}},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		return bruteRemaining()
	},
	Compare: true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:      "Ablation A2",
			Title:   "Drop probabilities vs brute-force REMAINING attack",
			Columns: []string{"drop-unknown", "drop-debt", "cost-ratio", "coeff-friction"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			s := ablationDropSettings[int(pr.Point.At(0))]
			t.AddCells(Num("%.2f", s.unknown), Num("%.2f", s.debt),
				Ratio(pr.Cmp.CostRatio), Ratio(pr.Cmp.Friction))
		}
		t.Notes = append(t.Notes,
			"higher drop probabilities force the attacker to spend more introductory effort per admission")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		s := ablationDropSettings[int(pt.At(0))]
		return fmt.Sprintf("ablation/drop %.2f/%.2f cost=%s", s.unknown, s.debt, fmtRatio(pr.Cmp.CostRatio))
	},
})

// AblationDropProb reproduces ablation A2 through the scenario registry.
func AblationDropProb(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioAblationDropProb.Name, o))
}

// scenarioAblationIntroductions toggles peer introductions under a
// sustained admission flood and reports discovery health.
var scenarioAblationIntroductions = mustRegister(&Scenario{
	Name:        "ablation-introductions",
	Description: "Ablation A3: peer introductions on/off under sustained admission-control flood",
	Axes: []Axis{boolAxis("introductions", []bool{true, false},
		func(cfg *world.Config, on bool) { cfg.Protocol.Introductions = on })},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		return sustainedFlood(cfg)
	},
	Compare: true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:      "Ablation A3",
			Title:   "Peer introductions on/off under sustained admission-control flood",
			Columns: []string{"introductions", "polls-ok", "delay-ratio", "coeff-friction"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			t.AddCells(Bool(pr.Point.At(0) != 0), Num("%.0f", pr.Stats.SuccessfulPolls),
				Ratio(pr.Cmp.DelayRatio), Ratio(pr.Cmp.Friction))
		}
		t.Notes = append(t.Notes,
			"introductions let loyal-but-unknown pollers bypass refractory periods the flood keeps triggered")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		return fmt.Sprintf("ablation/intros=%v polls=%.0f", pt.At(0) != 0, pr.Stats.SuccessfulPolls)
	},
})

// AblationIntroductions reproduces ablation A3 through the scenario
// registry.
func AblationIntroductions(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioAblationIntroductions.Name, o))
}

// scenarioAblationDesynchronization toggles desynchronized vote
// solicitation and reports poll health, absent and under attack (§5.2's
// rendezvous problem).
var scenarioAblationDesynchronization = mustRegister(&Scenario{
	Name:        "ablation-desynchronization",
	Description: "Ablation A4: desynchronization on/off (baseline and brute-force REMAINING)",
	// The §5.2 rendezvous problem only bites when peers are busy: slow the
	// reference machine's hashing so votes take hours, as they would with
	// hundreds of concurrent AUs.
	Mutators: []ConfigMutator{func(cfg *world.Config) { cfg.HashBytesPerSec = 4 << 10 }},
	Axes: []Axis{boolAxis("desync", []bool{true, false},
		func(cfg *world.Config, on bool) { cfg.Protocol.Desynchronize = on })},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		return bruteRemaining()
	},
	Compare: true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:      "Ablation A4",
			Title:   "Desynchronization on/off (baseline and brute-force REMAINING)",
			Columns: []string{"desync", "scenario", "polls-ok", "polls-total", "mean-gap(days)"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			on := Bool(pr.Point.At(0) != 0)
			t.AddCells(on, Str("baseline"),
				Num("%.0f", pr.Baseline.SuccessfulPolls),
				Num("%.0f", pr.Baseline.TotalPolls),
				Num("%.1f", pr.Baseline.MeanSuccessGap))
			t.AddCells(on, Str("brute-force"),
				Num("%.0f", pr.Stats.SuccessfulPolls),
				Num("%.0f", pr.Stats.TotalPolls),
				Num("%.1f", pr.Stats.MeanSuccessGap))
		}
		t.Notes = append(t.Notes,
			"synchronous solicitation needs a quorum of simultaneously free voters; busyness then collapses polls (§5.2)")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		return fmt.Sprintf("ablation/desync=%v ok=%.0f/%.0f",
			pt.At(0) != 0, pr.Stats.SuccessfulPolls, pr.Stats.TotalPolls)
	},
})

// AblationDesynchronization reproduces ablation A4 through the scenario
// registry.
func AblationDesynchronization(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioAblationDesynchronization.Name, o))
}

// scenarioAblationEffortBalancing toggles effort balancing under the
// brute-force NONE attack, showing the attacker's cost collapsing when
// requests are cheap.
var scenarioAblationEffortBalancing = mustRegister(&Scenario{
	Name:        "ablation-effort-balancing",
	Description: "Ablation A5: effort balancing on/off under brute-force NONE attack",
	Axes: []Axis{boolAxis("effort-balancing", []bool{true, false},
		func(cfg *world.Config, on bool) { cfg.Protocol.EffortBalancing = on })},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		return &adversary.BruteForce{Defection: adversary.DefectNone}
	},
	Compare: true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:      "Ablation A5",
			Title:   "Effort balancing on/off under brute-force NONE attack",
			Columns: []string{"effort-balancing", "attacker-effort", "defender-effort", "cost-ratio", "coeff-friction"},
		}
		for i := range res.Points {
			pr := &res.Points[i]
			t.AddCells(Bool(pr.Point.At(0) != 0),
				Num("%.0f", pr.Stats.AttackerEffort),
				Num("%.0f", pr.Stats.DefenderEffort),
				Ratio(pr.Cmp.CostRatio), Ratio(pr.Cmp.Friction))
		}
		t.Notes = append(t.Notes,
			"without effort balancing the attacker imposes defender work at near-zero cost to itself")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		return fmt.Sprintf("ablation/effort=%v cost=%s", pt.At(0) != 0, fmtRatio(pr.Cmp.CostRatio))
	},
})

// AblationEffortBalancing reproduces ablation A5 through the scenario
// registry.
func AblationEffortBalancing(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioAblationEffortBalancing.Name, o))
}
