package experiment

import (
	"fmt"

	"lockss/internal/adversary"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Ablation experiments probe the design choices DESIGN.md calls out. Each
// returns a Table in the same style as the paper figures.

// AblationRefractory sweeps the refractory period under a sustained
// full-coverage admission-control flood.
func AblationRefractory(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A1",
		Title:   "Refractory period under sustained admission-control flood",
		Columns: []string{"refractory(days)", "access-failure", "delay-ratio", "coeff-friction"},
	}
	settings := []float64{0.25, 0.5, 1, 2, 4}
	err := compareSweep(o, len(settings), func(i int) (world.Config, func() adversary.Adversary) {
		cfg := o.baseWorld()
		cfg.Protocol.Refractory = sched.Duration(settings[i] * float64(sim.Day))
		return cfg, func() adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day,
			}}
		}
	}, func(i int, cmp Comparison) {
		t.AddRow(fmt.Sprintf("%.2f", settings[i]), fmtProb(cmp.Attack.AccessFailure),
			fmtRatio(cmp.DelayRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/refractory %gd afp=%s", settings[i], fmtProb(cmp.Attack.AccessFailure))
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"longer refractory periods shield busier peers but slow discovery (§9 of the paper)")
	return t, nil
}

// AblationDropProb sweeps the unknown/in-debt drop probabilities under the
// brute-force REMAINING attack.
func AblationDropProb(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A2",
		Title:   "Drop probabilities vs brute-force REMAINING attack",
		Columns: []string{"drop-unknown", "drop-debt", "cost-ratio", "coeff-friction"},
	}
	settings := []struct{ unknown, debt float64 }{
		{0.50, 0.40}, {0.80, 0.60}, {0.90, 0.80}, {0.95, 0.90},
	}
	err := compareSweep(o, len(settings), func(i int) (world.Config, func() adversary.Adversary) {
		cfg := o.baseWorld()
		cfg.Protocol.DropUnknown = settings[i].unknown
		cfg.Protocol.DropDebt = settings[i].debt
		return cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectRemaining}
		}
	}, func(i int, cmp Comparison) {
		t.AddRow(fmt.Sprintf("%.2f", settings[i].unknown), fmt.Sprintf("%.2f", settings[i].debt),
			fmtRatio(cmp.CostRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/drop %.2f/%.2f cost=%s", settings[i].unknown, settings[i].debt, fmtRatio(cmp.CostRatio))
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"higher drop probabilities force the attacker to spend more introductory effort per admission")
	return t, nil
}

// AblationIntroductions toggles peer introductions under a sustained
// admission flood and reports discovery health (successful polls, friction).
func AblationIntroductions(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A3",
		Title:   "Peer introductions on/off under sustained admission-control flood",
		Columns: []string{"introductions", "polls-ok", "delay-ratio", "coeff-friction"},
	}
	settings := []bool{true, false}
	err := compareSweep(o, len(settings), func(i int) (world.Config, func() adversary.Adversary) {
		cfg := o.baseWorld()
		cfg.Protocol.Introductions = settings[i]
		return cfg, func() adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: 1.0, Duration: cfg.Duration, Recuperation: 30 * sim.Day,
			}}
		}
	}, func(i int, cmp Comparison) {
		t.AddRow(fmt.Sprintf("%v", settings[i]), fmt.Sprintf("%.0f", cmp.Attack.SuccessfulPolls),
			fmtRatio(cmp.DelayRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/intros=%v polls=%.0f", settings[i], cmp.Attack.SuccessfulPolls)
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"introductions let loyal-but-unknown pollers bypass refractory periods the flood keeps triggered")
	return t, nil
}

// AblationDesynchronization toggles desynchronized vote solicitation and
// reports poll health, absent and under attack (§5.2's rendezvous problem).
func AblationDesynchronization(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A4",
		Title:   "Desynchronization on/off (baseline and brute-force REMAINING)",
		Columns: []string{"desync", "scenario", "polls-ok", "polls-total", "mean-gap(days)"},
	}
	e := o.engine()
	settings := []bool{true, false}
	type pair struct{ baseline, attack RunStats }
	_, err := gather(len(settings), func(i int) (pair, error) {
		cfg := o.baseWorld()
		cfg.Protocol.Desynchronize = settings[i]
		// The §5.2 rendezvous problem only bites when peers are busy:
		// slow the reference machine's hashing so votes take hours, as
		// they would with hundreds of concurrent AUs.
		cfg.HashBytesPerSec = 4 << 10
		baseline, err := e.RunAveraged(cfg, nil, o.seeds())
		if err != nil {
			return pair{}, err
		}
		attack, err := e.RunAveraged(cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectRemaining}
		}, o.seeds())
		if err != nil {
			return pair{}, err
		}
		return pair{baseline, attack}, nil
	}, func(i int, p pair) {
		t.AddRow(fmt.Sprintf("%v", settings[i]), "baseline",
			fmt.Sprintf("%.0f", p.baseline.SuccessfulPolls),
			fmt.Sprintf("%.0f", p.baseline.TotalPolls),
			fmt.Sprintf("%.1f", p.baseline.MeanSuccessGap))
		t.AddRow(fmt.Sprintf("%v", settings[i]), "brute-force",
			fmt.Sprintf("%.0f", p.attack.SuccessfulPolls),
			fmt.Sprintf("%.0f", p.attack.TotalPolls),
			fmt.Sprintf("%.1f", p.attack.MeanSuccessGap))
		o.progress("ablation/desync=%v ok=%.0f/%.0f", settings[i], p.attack.SuccessfulPolls, p.attack.TotalPolls)
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"synchronous solicitation needs a quorum of simultaneously free voters; busyness then collapses polls (§5.2)")
	return t, nil
}

// AblationEffortBalancing toggles effort balancing under the brute-force
// NONE attack, showing the attacker's cost collapsing when requests are
// cheap.
func AblationEffortBalancing(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablation A5",
		Title:   "Effort balancing on/off under brute-force NONE attack",
		Columns: []string{"effort-balancing", "attacker-effort", "defender-effort", "cost-ratio", "coeff-friction"},
	}
	settings := []bool{true, false}
	err := compareSweep(o, len(settings), func(i int) (world.Config, func() adversary.Adversary) {
		cfg := o.baseWorld()
		cfg.Protocol.EffortBalancing = settings[i]
		return cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectNone}
		}
	}, func(i int, cmp Comparison) {
		t.AddRow(fmt.Sprintf("%v", settings[i]),
			fmt.Sprintf("%.0f", cmp.Attack.AttackerEffort),
			fmt.Sprintf("%.0f", cmp.Attack.DefenderEffort),
			fmtRatio(cmp.CostRatio), fmtRatio(cmp.Friction))
		o.progress("ablation/effort=%v cost=%s", settings[i], fmtRatio(cmp.CostRatio))
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"without effort balancing the attacker imposes defender work at near-zero cost to itself")
	return t, nil
}
