package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lockss/internal/adversary"
	"lockss/internal/world"
)

// Engine schedules independent simulation runs across a bounded worker pool.
//
// Every (config, seed) run is a self-contained single-goroutine computation,
// so the engine fans them out freely: seeds of an averaged run, data points
// of a figure sweep, and layers 1..n-1 of a layered run (layer 0 must finish
// first — it measures the background load replayed beneath the others) all
// execute concurrently, bounded by the worker count. Results are combined in
// the same order as the serial loops they replace, and per-run seeds use the
// same derivation, so output is bit-identical at any worker count.
//
// Every method takes a context.Context. Cancellation is cooperative at run
// granularity: a leaf simulation cannot be interrupted once started, but
// runs still queued behind the semaphore (and callers waiting on a memo
// flight or a slot) return ctx.Err() promptly.
//
// Attack-free runs are memoized by (Config, layers): figures share their
// baselines, so `-figure all` stops recomputing them. Attack runs are not
// memoized — adversaries are constructed by closures, which have no identity
// to key on. Memoized entries are single-flight: concurrent requests for the
// same baseline wait for the first computation instead of duplicating it.
//
// A failed run aborts the engine: runs still queued fail fast instead of
// completing simulations whose results would be discarded. Discard the
// engine after a failure; a fresh NewEngine costs nothing. Context
// cancellation does not abort the engine — it only abandons the canceled
// call chain.
type Engine struct {
	workers int
	sem     chan struct{}
	// aborted is set when any leaf run fails. Runs still queued behind the
	// semaphore then fail fast with errAborted instead of burning worker
	// slots on results that will be discarded; the engine stays aborted,
	// matching the CLI's fail-on-first-error behavior.
	aborted atomic.Bool

	mu     sync.Mutex
	memo   map[memoKey]*memoEntry
	hits   uint64
	misses uint64
}

// memoKey identifies an attack-free run. world.Config is a flat value
// struct, so it is directly comparable.
type memoKey struct {
	cfg    world.Config
	layers int
}

type memoEntry struct {
	done  chan struct{}
	stats RunStats
	err   error
}

// NewEngine returns an engine running at most workers simulations at once;
// workers <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		memo:    make(map[memoKey]*memoEntry),
	}
}

// defaultSem is the process-wide worker pool behind the package-level Run*
// wrappers and engine-less Options.
var defaultSem = sync.OnceValue(func() chan struct{} {
	return make(chan struct{}, runtime.GOMAXPROCS(0))
})

// newSharedEngine returns an engine with a fresh memo and abort state that
// draws slots from the process-wide pool. Library callers who parallelize
// their own calls to the package-level helpers therefore compose: every
// simulation in the process contends for the same GOMAXPROCS slots instead
// of each call spawning its own full-width pool.
func newSharedEngine() *Engine {
	sem := defaultSem()
	return &Engine{
		workers: cap(sem),
		sem:     sem,
		memo:    make(map[memoKey]*memoEntry),
	}
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// MemoStats reports how many attack-free runs were served from the memo
// versus computed.
func (e *Engine) MemoStats() (hits, misses uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses
}

// errSeeds and errLayers build the descriptive guard errors for the public
// entry points.
func errSeeds(seeds int) error {
	return fmt.Errorf("experiment: seeds must be at least 1, got %d", seeds)
}

func errLayers(layers int) error {
	return fmt.Errorf("experiment: layers must be at least 1, got %d", layers)
}

// withSlot runs one leaf computation under a worker slot. Only leaf
// simulation runs hold slots — orchestration layers (seed and point fan-out,
// memo waits) block without one, so nesting cannot deadlock the pool. The
// abort flag and the context are re-checked after the slot is acquired, so
// runs that were queued when an earlier run failed (or the caller canceled)
// are skipped rather than executed.
func (e *Engine) withSlot(ctx context.Context, fn func() error) error {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-e.sem }()
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.aborted.Load() {
		return errAborted
	}
	if err := fn(); err != nil {
		e.aborted.Store(true)
		return err
	}
	return nil
}

// skippedErr reports whether err marks a run that never executed (abort
// fast-path or context cancellation) rather than a real failure.
func skippedErr(err error) bool {
	return errors.Is(err, errAborted) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// memoized returns the cached result for key, computing it single-flight on
// first request. compute must not hold a worker slot on entry. Waiters
// observing their own cancellation stop waiting; a flight that never
// executed (the initiator's context was canceled, or the engine aborted
// before it ran) is evicted and live waiters retry with a fresh flight
// rather than inheriting the initiator's error.
func (e *Engine) memoized(ctx context.Context, key memoKey, compute func() (RunStats, error)) (RunStats, error) {
	for {
		e.mu.Lock()
		if ent, ok := e.memo[key]; ok {
			e.hits++
			e.mu.Unlock()
			select {
			case <-ent.done:
				if skippedErr(ent.err) {
					// The flight never executed; the initiator already
					// evicted it. Retry unless this caller is canceled too.
					if err := ctx.Err(); err != nil {
						return RunStats{}, err
					}
					continue
				}
				return ent.stats, ent.err
			case <-ctx.Done():
				return RunStats{}, ctx.Err()
			}
		}
		ent := &memoEntry{done: make(chan struct{})}
		e.memo[key] = ent
		e.misses++
		e.mu.Unlock()
		ent.stats, ent.err = compute()
		if skippedErr(ent.err) {
			// The run never executed; don't let the sentinel shadow the root
			// cause for future requests. Evict before waking waiters so
			// their retry starts a fresh flight.
			e.mu.Lock()
			delete(e.memo, key)
			e.mu.Unlock()
		}
		close(ent.done)
		return ent.stats, ent.err
	}
}

// RunOne executes a single seeded run under a worker slot, memoized when
// attack-free.
func (e *Engine) RunOne(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary) (RunStats, error) {
	ctx = orBackground(ctx)
	run := func() (s RunStats, err error) {
		err = e.withSlot(ctx, func() error {
			var ferr error
			s, ferr = RunOne(cfg, mkAttack)
			return ferr
		})
		return s, err
	}
	if mkAttack == nil {
		return e.memoized(ctx, memoKey{cfg, 1}, run)
	}
	return run()
}

// RunAveraged executes seeds runs with consecutive derived seeds across the
// pool and averages. The per-run seed derivation matches the serial path.
func (e *Engine) RunAveraged(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary, seeds int) (RunStats, error) {
	if seeds < 1 {
		return RunStats{}, errSeeds(seeds)
	}
	ctx = orBackground(ctx)
	runs, err := gather(seeds, func(s int) (RunStats, error) {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)*1_000_003
		return e.RunOne(ctx, c, mkAttack)
	}, nil)
	if err != nil {
		return RunStats{}, err
	}
	return average(runs), nil
}

// RunLayered executes a layered run: layer 0 first (it measures the
// background load), then layers 1..n-1 concurrently, aggregated in layer
// order. Memoized when attack-free.
func (e *Engine) RunLayered(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary, layers int) (RunStats, error) {
	if layers < 1 {
		return RunStats{}, errLayers(layers)
	}
	ctx = orBackground(ctx)
	if layers == 1 {
		return e.RunOne(ctx, cfg, mkAttack)
	}
	compute := func() (RunStats, error) {
		first, ratePerNs, meanDurNs, err := e.runLayer(ctx, cfg, mkAttack, 0, 0, 0)
		if err != nil {
			return RunStats{}, err
		}
		rest, err := gather(layers-1, func(i int) (RunStats, error) {
			s, _, _, err := e.runLayer(ctx, cfg, mkAttack, i+1, ratePerNs, meanDurNs)
			return s, err
		}, nil)
		if err != nil {
			return RunStats{}, err
		}
		return combineLayers(append([]RunStats{first}, rest...)), nil
	}
	if mkAttack == nil {
		return e.memoized(ctx, memoKey{cfg, layers}, compute)
	}
	return compute()
}

// runLayer executes one layer's world under a worker slot; layer 0 also
// measures the load replayed beneath later layers.
func (e *Engine) runLayer(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary, layer int,
	ratePerNs, meanDurNs float64) (s RunStats, rate, mean float64, err error) {
	err = e.withSlot(ctx, func() error {
		var ferr error
		s, rate, mean, ferr = runOneLayer(cfg, mkAttack, layer, ratePerNs, meanDurNs)
		return ferr
	})
	return s, rate, mean, err
}

// RunLayeredAveraged repeats RunLayered across seeds, fanned across the pool.
func (e *Engine) RunLayeredAveraged(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary, layers, seeds int) (RunStats, error) {
	if seeds < 1 {
		return RunStats{}, errSeeds(seeds)
	}
	if layers < 1 {
		return RunStats{}, errLayers(layers)
	}
	ctx = orBackground(ctx)
	runs, err := gather(seeds, func(s int) (RunStats, error) {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)*1_000_003
		return e.RunLayered(ctx, c, mkAttack, layers)
	}, nil)
	if err != nil {
		return RunStats{}, err
	}
	return average(runs), nil
}

// orBackground guards against nil contexts at the engine's public surface.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// errAborted marks jobs skipped because an earlier-completing job failed.
var errAborted = errors.New("aborted after earlier failure")

// gather evaluates n independent jobs concurrently and returns their results
// in index order. done, if non-nil, is called in strict index order as each
// prefix completes, so progress reporting and row emission keep the serial
// order at any worker count. After any job fails, jobs that have not yet
// started are skipped (in-flight simulations cannot be interrupted) and the
// lowest-index real error is returned; context errors count as real, so a
// canceled fan-out surfaces ctx.Err().
func gather[T any](n int, run func(i int) (T, error), done func(i int, v T)) ([]T, error) {
	if n == 1 {
		v, err := run(0)
		if err != nil {
			return nil, err
		}
		if done != nil {
			done(0, v)
		}
		return []T{v}, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	var failed atomic.Bool
	for i := 0; i < n; i++ {
		go func(i int) {
			defer close(ready[i])
			if failed.Load() {
				errs[i] = errAborted
				return
			}
			results[i], errs[i] = run(i)
			if errs[i] != nil {
				failed.Store(true)
			}
		}(i)
	}
	var firstErr error
	broken := false
	for i := 0; i < n; i++ {
		<-ready[i]
		if errs[i] != nil {
			broken = true
			if firstErr == nil && !errors.Is(errs[i], errAborted) {
				firstErr = errs[i]
			}
			continue
		}
		if !broken && done != nil {
			done(i, results[i])
		}
	}
	if broken {
		if firstErr == nil {
			firstErr = errAborted
		}
		return nil, firstErr
	}
	return results, nil
}
