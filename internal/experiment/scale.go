package experiment

import (
	"lockss/internal/world"
)

// This file registers the capacity-tier scenarios for the sharded engine:
// populations far beyond the paper's 100 peers, run attack-free to pin the
// protocol's steady-state behavior (and the simulator's determinism) at
// scale. They are not part of `-figure all`; run them by name.

// scaleLargeBaseline pins a ~5k-peer attack-free run. The scenario forces
// ScaleLarge regardless of the invocation's -scale so its golden bytes mean
// one thing; -shards still applies (and must not change a byte).
var scaleLargeBaseline = mustRegister(&Scenario{
	Name:        "scale-large-baseline",
	Description: "attack-free steady state at the ~5k-peer capacity tier",
	Base: func(o Options) world.Config {
		o.Scale = ScaleLarge
		return o.baseWorld()
	},
	Seeds: 1,
})
