package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a printable figure or table reproduction: one row per data point,
// in the same series the paper plots.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// fmtProb formats an access failure probability like the paper's log axes.
func fmtProb(p float64) string {
	if p == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", p)
}

// fmtRatio formats a ratio metric.
func fmtRatio(r float64) string {
	if math.IsInf(r, 1) {
		return "inf"
	}
	if r == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", r)
}
