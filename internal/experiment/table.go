package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Cell is one typed table cell: the rendered text Fprint shows, plus the
// underlying value the JSON and CSV emitters preserve. A zero-value Cell is
// an empty string cell.
type Cell struct {
	// Text is the human-readable rendering (column-aligned by Fprint).
	Text string
	// Value is the typed payload: string, float64, int, or bool. When nil
	// the cell is treated as the string Text.
	Value any
}

// Str returns a string cell.
func Str(s string) Cell { return Cell{Text: s, Value: s} }

// Int returns an integer cell rendered as %d.
func Int(n int) Cell { return Cell{Text: strconv.Itoa(n), Value: n} }

// Num returns a float cell rendered with the given fmt verb (e.g. "%.2f").
// Non-finite values render as "inf", "-inf" or "nan" so columns containing
// them stay cleanly aligned (dead baselines yield +Inf mean success gaps).
func Num(format string, v float64) Cell {
	return Cell{Text: fmtFinite(format, v), Value: v}
}

// Bool returns a boolean cell rendered as true/false.
func Bool(b bool) Cell { return Cell{Text: strconv.FormatBool(b), Value: b} }

// Prob returns an access-failure-probability cell formatted like the
// paper's log axes.
func Prob(p float64) Cell { return Cell{Text: fmtProb(p), Value: p} }

// Ratio returns a ratio-metric cell ("inf" for +Inf, "-" for zero).
func Ratio(r float64) Cell { return Cell{Text: fmtRatio(r), Value: r} }

// MarshalJSON emits the typed value; non-finite floats fall back to the
// rendered text, which encoding/json cannot represent as numbers.
func (c Cell) MarshalJSON() ([]byte, error) {
	if c.Value == nil {
		return json.Marshal(c.Text)
	}
	if f, ok := c.Value.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
		return json.Marshal(c.Text)
	}
	return json.Marshal(c.Value)
}

// csvString renders the cell for CSV: typed values at full precision,
// falling back to the rendered text for strings and non-finite floats.
func (c Cell) csvString() string {
	switch v := c.Value.(type) {
	case float64:
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return c.Text
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	case int:
		return strconv.Itoa(v)
	case bool:
		return strconv.FormatBool(v)
	}
	return c.Text
}

// Table is a printable figure or table reproduction: one row per data point,
// in the same series the paper plots. Cells carry typed values, so a table
// renders as aligned text (Fprint), JSON (WriteJSON) or CSV (WriteCSV).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]Cell
	Notes   []string
}

// AddRow appends a row of plain string cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		row[i] = Str(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddCells appends a row of typed cells.
func (t *Table) AddCells(cells ...Cell) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	// Size every column that appears in any row, including cells beyond the
	// declared Columns, so over-long rows still align.
	width := len(t.Columns)
	for _, row := range t.Rows {
		if len(row) > width {
			width = len(row)
		}
	}
	widths := make([]int, width)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c.Text) > widths[i] {
				widths[i] = len(c.Text)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		texts := make([]string, len(row))
		for i, c := range row {
			texts[i] = c.Text
		}
		line(texts)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// tableJSON is the wire shape of a table.
type tableJSON struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
	Notes   []string `json:"notes,omitempty"`
}

// WriteJSON emits the table as one JSON object. Typed cells marshal as
// their values; non-finite floats marshal as their rendered text.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	rows := t.Rows
	if rows == nil {
		rows = [][]Cell{}
	}
	return enc.Encode(tableJSON{
		ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: rows, Notes: t.Notes,
	})
}

// WriteCSV emits the table as CSV: a header row of column names, then one
// record per row with typed values at full precision.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := make([]string, len(row))
		for i, c := range row {
			rec[i] = c.csvString()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// fmtFinite formats v with the given verb, rendering non-finite values as
// "inf"/"-inf"/"nan" instead of fmt's "+Inf".
func fmtFinite(format string, v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	}
	return fmt.Sprintf(format, v)
}

// fmtProb formats an access failure probability like the paper's log axes.
func fmtProb(p float64) string {
	if p == 0 {
		return "0"
	}
	return fmtFinite("%.2e", p)
}

// fmtRatio formats a ratio metric.
func fmtRatio(r float64) string {
	if math.IsInf(r, 1) {
		return "inf"
	}
	if r == 0 {
		return "-"
	}
	return fmtFinite("%.2f", r)
}
