package experiment

import (
	"fmt"

	"lockss/internal/adversary"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// --- Figure 2: baseline access failure vs inter-poll interval -------------

// figure2Intervals returns the x axis (months) per scale.
func (o Options) figure2Intervals() []int {
	switch o.Scale {
	case ScalePaper:
		return []int{2, 3, 4, 5, 6, 8, 10, 12}
	case ScaleSmall:
		return []int{2, 3, 6, 9, 12}
	default:
		return []int{2, 3, 6, 12}
	}
}

// figure2MTBFs returns the storage-failure series (disk-years) per scale.
func (o Options) figure2MTBFs() []float64 {
	switch o.Scale {
	case ScalePaper:
		return []float64{1, 2, 3, 4, 5}
	case ScaleSmall:
		return []float64{1, 3, 5}
	default:
		return []float64{1, 5}
	}
}

// Figure2 reproduces the baseline: mean access failure probability for
// increasing inter-poll intervals at varying mean times between storage
// failures, for the small and the layered large collection, absent attack.
func Figure2(o Options) (*Table, error) {
	t := &Table{
		ID:      "Figure 2",
		Title:   "Access failure probability vs inter-poll interval (no attack)",
		Columns: []string{"interval(mo)", "mtbf(disk-yr)", "collection", "access-failure", "polls-ok"},
	}
	e := o.engine()
	layers := o.layersFor()
	type spec struct {
		months  int
		mtbf    float64
		layered bool
	}
	var specs []spec
	for _, months := range o.figure2Intervals() {
		for _, mtbf := range o.figure2MTBFs() {
			specs = append(specs, spec{months, mtbf, false})
		}
	}
	// Large-collection curves (paper: 600 AUs at 1 and 5 disk-years).
	for _, mtbf := range []float64{1, 5} {
		for _, months := range o.figure2Intervals() {
			specs = append(specs, spec{months, mtbf, true})
		}
	}
	aus := o.baseWorld().AUs
	_, err := gather(len(specs), func(i int) (RunStats, error) {
		sp := specs[i]
		cfg := o.baseWorld()
		cfg.Protocol.PollInterval = sched.Duration(sim.Duration(sp.months) * sim.Month)
		cfg.Protocol.GradeDecay = cfg.Protocol.PollInterval
		cfg.DamageDiskYears = sp.mtbf
		if sp.layered {
			return e.RunLayeredAveraged(cfg, nil, layers, 1)
		}
		return e.RunAveraged(cfg, nil, o.seeds())
	}, func(i int, stats RunStats) {
		sp := specs[i]
		if sp.layered {
			t.AddRow(fmt.Sprintf("%d", sp.months), fmt.Sprintf("%.0f", sp.mtbf),
				fmt.Sprintf("%d AUs (layered)", aus*layers), fmtProb(stats.AccessFailure),
				fmt.Sprintf("%.0f", stats.SuccessfulPolls))
			o.progress("fig2/large interval=%dmo mtbf=%.0fy afp=%s", sp.months, sp.mtbf, fmtProb(stats.AccessFailure))
		} else {
			t.AddRow(fmt.Sprintf("%d", sp.months), fmt.Sprintf("%.0f", sp.mtbf),
				fmt.Sprintf("%d AUs", aus), fmtProb(stats.AccessFailure),
				fmt.Sprintf("%.0f", stats.SuccessfulPolls))
			o.progress("fig2 interval=%dmo mtbf=%.0fy afp=%s", sp.months, sp.mtbf, fmtProb(stats.AccessFailure))
		}
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: afp rises with the inter-poll interval; ~4.8e-4 at 3mo/5y (50 AUs), 5.2e-4 (600 AUs)")
	return t, nil
}

// --- Figures 3-5: pipe stoppage sweep --------------------------------------

func (o Options) stoppageDurations() []sim.Duration {
	switch o.Scale {
	case ScalePaper:
		return []sim.Duration{1 * sim.Day, 5 * sim.Day, 10 * sim.Day, 30 * sim.Day, 60 * sim.Day, 90 * sim.Day, 180 * sim.Day}
	case ScaleSmall:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 90 * sim.Day, 180 * sim.Day}
	default:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 90 * sim.Day}
	}
}

func (o Options) coverages() []float64 {
	switch o.Scale {
	case ScalePaper:
		return []float64{0.1, 0.4, 0.7, 1.0}
	case ScaleSmall:
		return []float64{0.1, 0.4, 1.0}
	default:
		return []float64{0.4, 1.0}
	}
}

// sweepPoint is one (series, x) cell of an attack sweep.
type sweepPoint struct {
	series   string
	duration sim.Duration
	cmp      Comparison
}

// attackSweep runs a family of attacks against a shared baseline. All
// (series, x) points are fanned across the engine; the baselines are
// memoized, so each is simulated once no matter how many points compare
// against it.
func attackSweep(o Options, durations []sim.Duration, coverages []float64,
	mk func(cov float64, dur sim.Duration) adversary.Adversary) ([]sweepPoint, error) {

	e := o.engine()
	base := o.baseWorld()
	layers := o.layersFor()
	type spec struct {
		series  string
		cov     float64
		dur     sim.Duration
		layered bool
	}
	var specs []spec
	for _, cov := range coverages {
		for _, dur := range durations {
			specs = append(specs, spec{fmtSeries(cov), cov, dur, false})
		}
	}
	// The paper's extra series: 100% coverage on the layered large
	// collection.
	for _, dur := range durations {
		specs = append(specs, spec{fmt.Sprintf("100%% %dAUs", base.AUs*layers), 1.0, dur, true})
	}
	return gather(len(specs), func(i int) (sweepPoint, error) {
		sp := specs[i]
		mkA := func() adversary.Adversary { return mk(sp.cov, sp.dur) }
		// Attack first: every job's attack run is independent, while the
		// baseline is one shared memoized run — requesting it first would
		// idle the pool behind its single flight.
		var baseline, attack RunStats
		var err error
		if sp.layered {
			if attack, err = e.RunLayeredAveraged(base, mkA, layers, 1); err == nil {
				baseline, err = e.RunLayeredAveraged(base, nil, layers, 1)
			}
		} else {
			if attack, err = e.RunAveraged(base, mkA, o.seeds()); err == nil {
				baseline, err = e.RunAveraged(base, nil, o.seeds())
			}
		}
		if err != nil {
			return sweepPoint{}, err
		}
		return sweepPoint{series: sp.series, duration: sp.dur, cmp: Compare(attack, baseline)}, nil
	}, func(i int, p sweepPoint) {
		if specs[i].layered {
			o.progress("sweep/large dur=%dd afp=%s", int(p.duration/sim.Day), fmtProb(p.cmp.Attack.AccessFailure))
		} else {
			o.progress("sweep cov=%s dur=%dd afp=%s delay=%s friction=%s",
				p.series, int(p.duration/sim.Day), fmtProb(p.cmp.Attack.AccessFailure),
				fmtRatio(p.cmp.DelayRatio), fmtRatio(p.cmp.Friction))
		}
	})
}

// sweepTables renders the three standard views of one attack sweep.
func sweepTables(points []sweepPoint, ids [3]string, titles [3]string) []*Table {
	mkTable := func(id, title, metric string, get func(Comparison) string) *Table {
		t := &Table{ID: id, Title: title,
			Columns: []string{"coverage", "attack-days", metric}}
		for _, p := range points {
			t.AddRow(p.series, fmt.Sprintf("%d", int(p.duration/sim.Day)), get(p.cmp))
		}
		return t
	}
	return []*Table{
		mkTable(ids[0], titles[0], "access-failure", func(c Comparison) string { return fmtProb(c.Attack.AccessFailure) }),
		mkTable(ids[1], titles[1], "delay-ratio", func(c Comparison) string { return fmtRatio(c.DelayRatio) }),
		mkTable(ids[2], titles[2], "coeff-friction", func(c Comparison) string { return fmtRatio(c.Friction) }),
	}
}

// FiguresPipeStoppage reproduces Figures 3, 4 and 5: access failure
// probability, delay ratio and coefficient of friction under repeated pipe
// stoppage of varying duration and coverage.
func FiguresPipeStoppage(o Options) ([]*Table, error) {
	points, err := attackSweep(o, o.stoppageDurations(), o.coverages(),
		func(cov float64, dur sim.Duration) adversary.Adversary {
			return &adversary.PipeStoppage{Pulse: adversary.Pulse{
				Coverage: cov, Duration: dur, Recuperation: 30 * sim.Day,
			}}
		})
	if err != nil {
		return nil, err
	}
	tables := sweepTables(points,
		[3]string{"Figure 3", "Figure 4", "Figure 5"},
		[3]string{
			"Access failure probability under pipe stoppage",
			"Delay ratio under pipe stoppage",
			"Coefficient of friction under pipe stoppage",
		})
	tables[0].Notes = append(tables[0].Notes,
		"paper: ~2.9e-3 at 100% coverage, 180-day attacks, 600 AUs; rises with coverage and duration")
	tables[1].Notes = append(tables[1].Notes,
		"paper: attacks must last 60+ days to raise the delay ratio by an order of magnitude")
	tables[2].Notes = append(tables[2].Notes,
		"paper: negligible for short attacks; up to ~10 for long ones")
	return tables, nil
}

// --- Figures 6-8: admission-control flood sweep ----------------------------

func (o Options) floodDurations() []sim.Duration {
	switch o.Scale {
	case ScalePaper:
		return []sim.Duration{1 * sim.Day, 5 * sim.Day, 10 * sim.Day, 30 * sim.Day, 90 * sim.Day, 180 * sim.Day, 720 * sim.Day}
	case ScaleSmall:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 180 * sim.Day, 720 * sim.Day}
	default:
		return []sim.Duration{10 * sim.Day, 90 * sim.Day, 360 * sim.Day}
	}
}

// FiguresAdmissionFlood reproduces Figures 6, 7 and 8: the admission-control
// adversary's garbage invitations from unknown identities.
func FiguresAdmissionFlood(o Options) ([]*Table, error) {
	points, err := attackSweep(o, o.floodDurations(), o.coverages(),
		func(cov float64, dur sim.Duration) adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: cov, Duration: dur, Recuperation: 30 * sim.Day,
			}}
		})
	if err != nil {
		return nil, err
	}
	tables := sweepTables(points,
		[3]string{"Figure 6", "Figure 7", "Figure 8"},
		[3]string{
			"Access failure probability under admission-control attack",
			"Delay ratio under admission-control attack",
			"Coefficient of friction under admission-control attack",
		})
	tables[0].Notes = append(tables[0].Notes,
		"paper: little effect; up to ~5.9e-4 at full coverage for the whole run (600 AUs)")
	tables[2].Notes = append(tables[2].Notes,
		"paper: sustained attacks can raise the cost per successful poll by ~33%")
	return tables, nil
}

// --- Table 1: brute-force defection strategies -----------------------------

// Table1 reproduces the brute-force adversary defecting at INTRO, REMAINING
// and NONE, for the small and layered large collections.
func Table1(o Options) (*Table, error) {
	t := &Table{
		ID:    "Table 1",
		Title: "Brute-force adversary defection strategies (continuous attack, all peers)",
		Columns: []string{"defection", "collection", "coeff-friction", "cost-ratio",
			"delay-ratio", "access-failure"},
	}
	e := o.engine()
	base := o.baseWorld()
	layers := o.layersFor()
	defections := []adversary.Defection{adversary.DefectIntro, adversary.DefectRemaining, adversary.DefectNone}
	type pair struct{ small, large Comparison }
	_, err := gather(len(defections), func(i int) (pair, error) {
		d := defections[i]
		mk := func() adversary.Adversary { return &adversary.BruteForce{Defection: d} }
		// Attacks first; the two baselines are shared memoized runs (see
		// attackSweep).
		attack, err := e.RunAveraged(base, mk, o.seeds())
		if err != nil {
			return pair{}, err
		}
		large, err := e.RunLayeredAveraged(base, mk, layers, 1)
		if err != nil {
			return pair{}, err
		}
		baseline, err := e.RunAveraged(base, nil, o.seeds())
		if err != nil {
			return pair{}, err
		}
		largeBaseline, err := e.RunLayeredAveraged(base, nil, layers, 1)
		if err != nil {
			return pair{}, err
		}
		return pair{Compare(attack, baseline), Compare(large, largeBaseline)}, nil
	}, func(i int, p pair) {
		d := defections[i]
		t.AddRow(d.String(), fmt.Sprintf("%d AUs", base.AUs), fmtRatio(p.small.Friction),
			fmtRatio(p.small.CostRatio), fmtRatio(p.small.DelayRatio), fmtProb(p.small.Attack.AccessFailure))
		o.progress("table1 %v small friction=%s cost=%s", d, fmtRatio(p.small.Friction), fmtRatio(p.small.CostRatio))
		t.AddRow(d.String(), fmt.Sprintf("%d AUs (layered)", base.AUs*layers), fmtRatio(p.large.Friction),
			fmtRatio(p.large.CostRatio), fmtRatio(p.large.DelayRatio), fmtProb(p.large.Attack.AccessFailure))
		o.progress("table1 %v large friction=%s cost=%s", d, fmtRatio(p.large.Friction), fmtRatio(p.large.CostRatio))
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper (50 AUs): INTRO 1.40/1.93/1.11/5.0e-4, REMAINING 2.61/1.55/1.11/5.9e-4, NONE 2.60/1.02/1.11/5.6e-4",
		"shape: friction INTRO < REMAINING ~= NONE; access failure within ~1.3x of baseline for all strategies")
	return t, nil
}

// --- Baseline helper shared by examples and tests ---------------------------

// Baseline runs the no-attack scenario at the given options and returns its
// stats.
func Baseline(o Options) (RunStats, error) {
	return o.engine().RunAveraged(o.baseWorld(), nil, o.seeds())
}

// WorldConfig exposes the scale's world configuration (for examples).
func WorldConfig(o Options) world.Config { return o.baseWorld() }
