package experiment

import (
	"fmt"

	"lockss/internal/adversary"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// --- Figure 2: baseline access failure vs inter-poll interval -------------

// figure2Intervals returns the x axis (months) per scale.
func (o Options) figure2Intervals() []int {
	switch o.Scale {
	case ScalePaper:
		return []int{2, 3, 4, 5, 6, 8, 10, 12}
	case ScaleSmall:
		return []int{2, 3, 6, 9, 12}
	default:
		return []int{2, 3, 6, 12}
	}
}

// figure2MTBFs returns the storage-failure series (disk-years) per scale.
func (o Options) figure2MTBFs() []float64 {
	switch o.Scale {
	case ScalePaper:
		return []float64{1, 2, 3, 4, 5}
	case ScaleSmall:
		return []float64{1, 3, 5}
	default:
		return []float64{1, 5}
	}
}

// Figure2 reproduces the baseline: mean access failure probability for
// increasing inter-poll intervals at varying mean times between storage
// failures, for the small and the layered large collection, absent attack.
func Figure2(o Options) (*Table, error) {
	t := &Table{
		ID:      "Figure 2",
		Title:   "Access failure probability vs inter-poll interval (no attack)",
		Columns: []string{"interval(mo)", "mtbf(disk-yr)", "collection", "access-failure", "polls-ok"},
	}
	for _, months := range o.figure2Intervals() {
		for _, mtbf := range o.figure2MTBFs() {
			cfg := o.baseWorld()
			cfg.Protocol.PollInterval = sched.Duration(sim.Duration(months) * sim.Month)
			cfg.Protocol.GradeDecay = cfg.Protocol.PollInterval
			cfg.DamageDiskYears = mtbf
			stats, err := RunAveraged(cfg, nil, o.seeds())
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", months), fmt.Sprintf("%.0f", mtbf),
				fmt.Sprintf("%d AUs", cfg.AUs), fmtProb(stats.AccessFailure),
				fmt.Sprintf("%.0f", stats.SuccessfulPolls))
			o.progress("fig2 interval=%dmo mtbf=%.0fy afp=%s", months, mtbf, fmtProb(stats.AccessFailure))
		}
	}
	// Large-collection curves (paper: 600 AUs at 1 and 5 disk-years).
	layers := o.layersFor()
	for _, mtbf := range []float64{1, 5} {
		for _, months := range o.figure2Intervals() {
			cfg := o.baseWorld()
			cfg.Protocol.PollInterval = sched.Duration(sim.Duration(months) * sim.Month)
			cfg.Protocol.GradeDecay = cfg.Protocol.PollInterval
			cfg.DamageDiskYears = mtbf
			stats, err := RunLayeredAveraged(cfg, nil, layers, 1)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", months), fmt.Sprintf("%.0f", mtbf),
				fmt.Sprintf("%d AUs (layered)", cfg.AUs*layers), fmtProb(stats.AccessFailure),
				fmt.Sprintf("%.0f", stats.SuccessfulPolls))
			o.progress("fig2/large interval=%dmo mtbf=%.0fy afp=%s", months, mtbf, fmtProb(stats.AccessFailure))
		}
	}
	t.Notes = append(t.Notes,
		"paper: afp rises with the inter-poll interval; ~4.8e-4 at 3mo/5y (50 AUs), 5.2e-4 (600 AUs)")
	return t, nil
}

// --- Figures 3-5: pipe stoppage sweep --------------------------------------

func (o Options) stoppageDurations() []sim.Duration {
	switch o.Scale {
	case ScalePaper:
		return []sim.Duration{1 * sim.Day, 5 * sim.Day, 10 * sim.Day, 30 * sim.Day, 60 * sim.Day, 90 * sim.Day, 180 * sim.Day}
	case ScaleSmall:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 90 * sim.Day, 180 * sim.Day}
	default:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 90 * sim.Day}
	}
}

func (o Options) coverages() []float64 {
	switch o.Scale {
	case ScalePaper:
		return []float64{0.1, 0.4, 0.7, 1.0}
	case ScaleSmall:
		return []float64{0.1, 0.4, 1.0}
	default:
		return []float64{0.4, 1.0}
	}
}

// sweepPoint is one (series, x) cell of an attack sweep.
type sweepPoint struct {
	series   string
	duration sim.Duration
	cmp      Comparison
}

// attackSweep runs a family of attacks against a shared baseline.
func attackSweep(o Options, durations []sim.Duration, coverages []float64,
	mk func(cov float64, dur sim.Duration) adversary.Adversary) ([]sweepPoint, error) {

	base := o.baseWorld()
	baseline, err := RunAveraged(base, nil, o.seeds())
	if err != nil {
		return nil, err
	}
	var points []sweepPoint
	for _, cov := range coverages {
		for _, dur := range durations {
			cov, dur := cov, dur
			attack, err := RunAveraged(base, func() adversary.Adversary { return mk(cov, dur) }, o.seeds())
			if err != nil {
				return nil, err
			}
			cmp := Compare(attack, baseline)
			points = append(points, sweepPoint{series: fmtSeries(cov), duration: dur, cmp: cmp})
			o.progress("sweep cov=%s dur=%dd afp=%s delay=%s friction=%s",
				fmtSeries(cov), int(dur/sim.Day), fmtProb(attack.AccessFailure),
				fmtRatio(cmp.DelayRatio), fmtRatio(cmp.Friction))
		}
	}
	// The paper's extra series: 100% coverage on the layered large
	// collection.
	layers := o.layersFor()
	largeBase, err := RunLayeredAveraged(base, nil, layers, 1)
	if err != nil {
		return nil, err
	}
	for _, dur := range durations {
		dur := dur
		attack, err := RunLayeredAveraged(base, func() adversary.Adversary { return mk(1.0, dur) }, layers, 1)
		if err != nil {
			return nil, err
		}
		cmp := Compare(attack, largeBase)
		points = append(points, sweepPoint{series: fmt.Sprintf("100%% %dAUs", base.AUs*layers), duration: dur, cmp: cmp})
		o.progress("sweep/large dur=%dd afp=%s", int(dur/sim.Day), fmtProb(attack.AccessFailure))
	}
	return points, nil
}

// sweepTables renders the three standard views of one attack sweep.
func sweepTables(points []sweepPoint, ids [3]string, titles [3]string) []*Table {
	mkTable := func(id, title, metric string, get func(Comparison) string) *Table {
		t := &Table{ID: id, Title: title,
			Columns: []string{"coverage", "attack-days", metric}}
		for _, p := range points {
			t.AddRow(p.series, fmt.Sprintf("%d", int(p.duration/sim.Day)), get(p.cmp))
		}
		return t
	}
	return []*Table{
		mkTable(ids[0], titles[0], "access-failure", func(c Comparison) string { return fmtProb(c.Attack.AccessFailure) }),
		mkTable(ids[1], titles[1], "delay-ratio", func(c Comparison) string { return fmtRatio(c.DelayRatio) }),
		mkTable(ids[2], titles[2], "coeff-friction", func(c Comparison) string { return fmtRatio(c.Friction) }),
	}
}

// FiguresPipeStoppage reproduces Figures 3, 4 and 5: access failure
// probability, delay ratio and coefficient of friction under repeated pipe
// stoppage of varying duration and coverage.
func FiguresPipeStoppage(o Options) ([]*Table, error) {
	points, err := attackSweep(o, o.stoppageDurations(), o.coverages(),
		func(cov float64, dur sim.Duration) adversary.Adversary {
			return &adversary.PipeStoppage{Pulse: adversary.Pulse{
				Coverage: cov, Duration: dur, Recuperation: 30 * sim.Day,
			}}
		})
	if err != nil {
		return nil, err
	}
	tables := sweepTables(points,
		[3]string{"Figure 3", "Figure 4", "Figure 5"},
		[3]string{
			"Access failure probability under pipe stoppage",
			"Delay ratio under pipe stoppage",
			"Coefficient of friction under pipe stoppage",
		})
	tables[0].Notes = append(tables[0].Notes,
		"paper: ~2.9e-3 at 100% coverage, 180-day attacks, 600 AUs; rises with coverage and duration")
	tables[1].Notes = append(tables[1].Notes,
		"paper: attacks must last 60+ days to raise the delay ratio by an order of magnitude")
	tables[2].Notes = append(tables[2].Notes,
		"paper: negligible for short attacks; up to ~10 for long ones")
	return tables, nil
}

// --- Figures 6-8: admission-control flood sweep ----------------------------

func (o Options) floodDurations() []sim.Duration {
	switch o.Scale {
	case ScalePaper:
		return []sim.Duration{1 * sim.Day, 5 * sim.Day, 10 * sim.Day, 30 * sim.Day, 90 * sim.Day, 180 * sim.Day, 720 * sim.Day}
	case ScaleSmall:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 180 * sim.Day, 720 * sim.Day}
	default:
		return []sim.Duration{10 * sim.Day, 90 * sim.Day, 360 * sim.Day}
	}
}

// FiguresAdmissionFlood reproduces Figures 6, 7 and 8: the admission-control
// adversary's garbage invitations from unknown identities.
func FiguresAdmissionFlood(o Options) ([]*Table, error) {
	points, err := attackSweep(o, o.floodDurations(), o.coverages(),
		func(cov float64, dur sim.Duration) adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: cov, Duration: dur, Recuperation: 30 * sim.Day,
			}}
		})
	if err != nil {
		return nil, err
	}
	tables := sweepTables(points,
		[3]string{"Figure 6", "Figure 7", "Figure 8"},
		[3]string{
			"Access failure probability under admission-control attack",
			"Delay ratio under admission-control attack",
			"Coefficient of friction under admission-control attack",
		})
	tables[0].Notes = append(tables[0].Notes,
		"paper: little effect; up to ~5.9e-4 at full coverage for the whole run (600 AUs)")
	tables[2].Notes = append(tables[2].Notes,
		"paper: sustained attacks can raise the cost per successful poll by ~33%")
	return tables, nil
}

// --- Table 1: brute-force defection strategies -----------------------------

// Table1 reproduces the brute-force adversary defecting at INTRO, REMAINING
// and NONE, for the small and layered large collections.
func Table1(o Options) (*Table, error) {
	t := &Table{
		ID:    "Table 1",
		Title: "Brute-force adversary defection strategies (continuous attack, all peers)",
		Columns: []string{"defection", "collection", "coeff-friction", "cost-ratio",
			"delay-ratio", "access-failure"},
	}
	base := o.baseWorld()
	baseline, err := RunAveraged(base, nil, o.seeds())
	if err != nil {
		return nil, err
	}
	layers := o.layersFor()
	largeBaseline, err := RunLayeredAveraged(base, nil, layers, 1)
	if err != nil {
		return nil, err
	}
	for _, d := range []adversary.Defection{adversary.DefectIntro, adversary.DefectRemaining, adversary.DefectNone} {
		d := d
		mk := func() adversary.Adversary { return &adversary.BruteForce{Defection: d} }
		attack, err := RunAveraged(base, mk, o.seeds())
		if err != nil {
			return nil, err
		}
		cmp := Compare(attack, baseline)
		t.AddRow(d.String(), fmt.Sprintf("%d AUs", base.AUs), fmtRatio(cmp.Friction),
			fmtRatio(cmp.CostRatio), fmtRatio(cmp.DelayRatio), fmtProb(attack.AccessFailure))
		o.progress("table1 %v small friction=%s cost=%s", d, fmtRatio(cmp.Friction), fmtRatio(cmp.CostRatio))

		large, err := RunLayeredAveraged(base, mk, layers, 1)
		if err != nil {
			return nil, err
		}
		lcmp := Compare(large, largeBaseline)
		t.AddRow(d.String(), fmt.Sprintf("%d AUs (layered)", base.AUs*layers), fmtRatio(lcmp.Friction),
			fmtRatio(lcmp.CostRatio), fmtRatio(lcmp.DelayRatio), fmtProb(large.AccessFailure))
		o.progress("table1 %v large friction=%s cost=%s", d, fmtRatio(lcmp.Friction), fmtRatio(lcmp.CostRatio))
	}
	t.Notes = append(t.Notes,
		"paper (50 AUs): INTRO 1.40/1.93/1.11/5.0e-4, REMAINING 2.61/1.55/1.11/5.9e-4, NONE 2.60/1.02/1.11/5.6e-4",
		"shape: friction INTRO < REMAINING ~= NONE; access failure within ~1.3x of baseline for all strategies")
	return t, nil
}

// --- Baseline helper shared by examples and tests ---------------------------

// Baseline runs the no-attack scenario at the given options and returns its
// stats.
func Baseline(o Options) (RunStats, error) {
	return RunAveraged(o.baseWorld(), nil, o.seeds())
}

// WorldConfig exposes the scale's world configuration (for examples).
func WorldConfig(o Options) world.Config { return o.baseWorld() }
