package experiment

import (
	"context"
	"fmt"

	"lockss/internal/adversary"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// The paper's figures and tables, each expressed as a registered Scenario:
// the sweep grid, attack factory and rendering are declarative data, and
// the exported generator functions are thin wrappers over the registry.

// --- Figure 2: baseline access failure vs inter-poll interval -------------

// figure2Intervals returns the x axis (months) per scale.
func (o Options) figure2Intervals() []int {
	switch o.Scale {
	case ScalePaper:
		return []int{2, 3, 4, 5, 6, 8, 10, 12}
	case ScaleSmall:
		return []int{2, 3, 6, 9, 12}
	default:
		return []int{2, 3, 6, 12}
	}
}

// figure2MTBFs returns the storage-failure series (disk-years) per scale.
func (o Options) figure2MTBFs() []float64 {
	switch o.Scale {
	case ScalePaper:
		return []float64{1, 2, 3, 4, 5}
	case ScaleSmall:
		return []float64{1, 3, 5}
	default:
		return []float64{1, 5}
	}
}

// figure2LargeMTBFs is the subset of storage-failure rates the paper plots
// for the layered large collection.
var figure2LargeMTBFs = []float64{1, 5}

// collectionLabel renders the paper's collection-size labels.
func collectionLabel(o Options, layered bool) string {
	aus := o.baseWorld().AUs
	if layered {
		return fmt.Sprintf("%d AUs (layered)", aus*o.layersFor())
	}
	return fmt.Sprintf("%d AUs", aus)
}

// layeredSeedsAt and layeredLayersAt build the per-point overrides for
// scenarios where layeredAt flags the layered large-collection points:
// those points stack o.layersFor() layers at a single seed, as the paper's
// 600-AU technique does.
func layeredSeedsAt(layeredAt func(o Options, pt Point) bool) func(o Options, pt Point) int {
	return func(o Options, pt Point) int {
		if layeredAt(o, pt) {
			return 1
		}
		return o.seeds()
	}
}

func layeredLayersAt(layeredAt func(o Options, pt Point) bool) func(o Options, pt Point) int {
	return func(o Options, pt Point) int {
		if layeredAt(o, pt) {
			return o.layersFor()
		}
		return 1
	}
}

func intsToFloats(vs []int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

func durationsToDays(ds []sim.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d / sim.Day)
	}
	return out
}

// days converts a day-denominated axis value back to simulated time.
func days(v float64) sim.Duration { return sim.Duration(v) * sim.Day }

// scenarioFigure2 reproduces the baseline: mean access failure probability
// for increasing inter-poll intervals at varying mean times between storage
// failures, for the small and the layered large collection, absent attack.
var scenarioFigure2 = mustRegister(&Scenario{
	Name:        "figure2",
	Description: "Figure 2: baseline access failure vs inter-poll interval (no attack)",
	Axes: []Axis{
		{Name: "collection", Values: []float64{0, 1}},
		{
			Name:      "interval(mo)",
			ValuesFor: func(o Options) []float64 { return intsToFloats(o.figure2Intervals()) },
			Apply: func(cfg *world.Config, v float64) {
				cfg.Protocol.PollInterval = sched.Duration(sim.Duration(v) * sim.Month)
				cfg.Protocol.GradeDecay = cfg.Protocol.PollInterval
			},
		},
		{
			Name:      "mtbf(disk-yr)",
			ValuesFor: func(o Options) []float64 { return o.figure2MTBFs() },
			Apply:     func(cfg *world.Config, v float64) { cfg.DamageDiskYears = v },
		},
	},
	// The paper plots the layered large collection only at 1 and 5
	// disk-years.
	Filter: func(o Options, pt Point) bool {
		if pt.At(0) == 0 {
			return true
		}
		for _, m := range figure2LargeMTBFs {
			if pt.At(2) == m {
				return true
			}
		}
		return false
	},
	SeedsAt:  layeredSeedsAt(func(o Options, pt Point) bool { return pt.At(0) != 0 }),
	LayersAt: layeredLayersAt(func(o Options, pt Point) bool { return pt.At(0) != 0 }),
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:      "Figure 2",
			Title:   "Access failure probability vs inter-poll interval (no attack)",
			Columns: []string{"interval(mo)", "mtbf(disk-yr)", "collection", "access-failure", "polls-ok"},
		}
		intervals := o.figure2Intervals()
		mtbfs := o.figure2MTBFs()
		row := func(pr *PointResult, layered bool) {
			t.AddCells(Int(int(pr.Point.At(1))), Num("%.0f", pr.Point.At(2)),
				Str(collectionLabel(o, layered)), Prob(pr.Stats.AccessFailure),
				Num("%.0f", pr.Stats.SuccessfulPolls))
		}
		for i := range intervals {
			for j := range mtbfs {
				row(res.At(0, i, j), false)
			}
		}
		// Large-collection curves, storage-failure series major like the
		// paper's legend.
		for _, m := range figure2LargeMTBFs {
			for j, v := range mtbfs {
				if v != m {
					continue
				}
				for i := range intervals {
					row(res.At(1, i, j), true)
				}
			}
		}
		t.Notes = append(t.Notes,
			"paper: afp rises with the inter-poll interval; ~4.8e-4 at 3mo/5y (50 AUs), 5.2e-4 (600 AUs)")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		series := "fig2"
		if pt.At(0) != 0 {
			series = "fig2/large"
		}
		return fmt.Sprintf("%s interval=%dmo mtbf=%.0fy afp=%s",
			series, int(pt.At(1)), pt.At(2), fmtProb(pr.Stats.AccessFailure))
	},
})

// Figure2 reproduces the paper's Figure 2 through the scenario registry.
func Figure2(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioFigure2.Name, o))
}

// --- Figures 3-5 and 6-8: pulsed attack sweeps ------------------------------

func (o Options) stoppageDurations() []sim.Duration {
	switch o.Scale {
	case ScalePaper:
		return []sim.Duration{1 * sim.Day, 5 * sim.Day, 10 * sim.Day, 30 * sim.Day, 60 * sim.Day, 90 * sim.Day, 180 * sim.Day}
	case ScaleSmall:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 90 * sim.Day, 180 * sim.Day}
	default:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 90 * sim.Day}
	}
}

func (o Options) floodDurations() []sim.Duration {
	switch o.Scale {
	case ScalePaper:
		return []sim.Duration{1 * sim.Day, 5 * sim.Day, 10 * sim.Day, 30 * sim.Day, 90 * sim.Day, 180 * sim.Day, 720 * sim.Day}
	case ScaleSmall:
		return []sim.Duration{5 * sim.Day, 30 * sim.Day, 180 * sim.Day, 720 * sim.Day}
	default:
		return []sim.Duration{10 * sim.Day, 90 * sim.Day, 360 * sim.Day}
	}
}

func (o Options) coverages() []float64 {
	switch o.Scale {
	case ScalePaper:
		return []float64{0.1, 0.4, 0.7, 1.0}
	case ScaleSmall:
		return []float64{0.1, 0.4, 1.0}
	default:
		return []float64{0.4, 1.0}
	}
}

// sweepSeries resolves one series index of an attack sweep: its coverage
// fraction, whether it is the layered large collection, and its label.
func sweepSeries(o Options, idx int) (cov float64, layered bool, label string) {
	covs := o.coverages()
	if idx < len(covs) {
		return covs[idx], false, fmtSeries(covs[idx])
	}
	base := o.baseWorld()
	return 1.0, true, fmt.Sprintf("100%% %dAUs", base.AUs*o.layersFor())
}

// sweepIsLayered flags the extra large-collection series of a sweep grid.
func sweepIsLayered(o Options, pt Point) bool {
	return int(pt.At(0)) == len(o.coverages())
}

// attackSweepScenario builds the shared shape of the pulsed-attack figures
// (3-5 pipe stoppage, 6-8 admission flood): a (series, attack-days) grid —
// the series are the paper's coverage fractions plus the layered large
// collection at full coverage — with every point compared against the
// shared memoized baseline.
func attackSweepScenario(name, desc string, durations func(o Options) []float64,
	mk func(cov float64, dur sim.Duration) adversary.Adversary,
	ids, titles [3]string, notes [3][]string) *Scenario {

	return mustRegister(&Scenario{
		Name:        name,
		Description: desc,
		Axes: []Axis{
			{
				Name: "series",
				ValuesFor: func(o Options) []float64 {
					vs := make([]float64, len(o.coverages())+1)
					for i := range vs {
						vs[i] = float64(i)
					}
					return vs
				},
			},
			{Name: "attack-days", ValuesFor: durations},
		},
		Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
			cov, _, _ := sweepSeries(o, int(pt.At(0)))
			return mk(cov, days(pt.At(1)))
		},
		SeedsAt:  layeredSeedsAt(sweepIsLayered),
		LayersAt: layeredLayersAt(sweepIsLayered),
		Compare:  true,
		Tables: func(o Options, res *Result) []*Table {
			metrics := [3]func(c Comparison) Cell{
				func(c Comparison) Cell { return Prob(c.Attack.AccessFailure) },
				func(c Comparison) Cell { return Ratio(c.DelayRatio) },
				func(c Comparison) Cell { return Ratio(c.Friction) },
			}
			cols := [3]string{"access-failure", "delay-ratio", "coeff-friction"}
			out := make([]*Table, 3)
			for i := range out {
				t := &Table{ID: ids[i], Title: titles[i],
					Columns: []string{"coverage", "attack-days", cols[i]}}
				for p := range res.Points {
					pr := &res.Points[p]
					_, _, label := sweepSeries(o, int(pr.Point.At(0)))
					t.AddCells(Str(label), Int(int(pr.Point.At(1))), metrics[i](*pr.Cmp))
				}
				t.Notes = append(t.Notes, notes[i]...)
				out[i] = t
			}
			return out
		},
		Progress: func(o Options, pt Point, pr PointResult) string {
			_, layered, label := sweepSeries(o, int(pt.At(0)))
			if layered {
				return fmt.Sprintf("sweep/large dur=%dd afp=%s",
					int(pt.At(1)), fmtProb(pr.Cmp.Attack.AccessFailure))
			}
			return fmt.Sprintf("sweep cov=%s dur=%dd afp=%s delay=%s friction=%s",
				label, int(pt.At(1)), fmtProb(pr.Cmp.Attack.AccessFailure),
				fmtRatio(pr.Cmp.DelayRatio), fmtRatio(pr.Cmp.Friction))
		},
	})
}

// scenarioPipeStoppage reproduces Figures 3, 4 and 5: access failure
// probability, delay ratio and coefficient of friction under repeated pipe
// stoppage of varying duration and coverage.
var scenarioPipeStoppage = attackSweepScenario(
	"figures-pipe-stoppage",
	"Figures 3-5: access failure, delay ratio and friction under pipe stoppage",
	func(o Options) []float64 { return durationsToDays(o.stoppageDurations()) },
	func(cov float64, dur sim.Duration) adversary.Adversary {
		return &adversary.PipeStoppage{Pulse: adversary.Pulse{
			Coverage: cov, Duration: dur, Recuperation: 30 * sim.Day,
		}}
	},
	[3]string{"Figure 3", "Figure 4", "Figure 5"},
	[3]string{
		"Access failure probability under pipe stoppage",
		"Delay ratio under pipe stoppage",
		"Coefficient of friction under pipe stoppage",
	},
	[3][]string{
		{"paper: ~2.9e-3 at 100% coverage, 180-day attacks, 600 AUs; rises with coverage and duration"},
		{"paper: attacks must last 60+ days to raise the delay ratio by an order of magnitude"},
		{"paper: negligible for short attacks; up to ~10 for long ones"},
	},
)

// FiguresPipeStoppage reproduces Figures 3-5 through the scenario registry.
func FiguresPipeStoppage(o Options) ([]*Table, error) {
	return runRegistered(scenarioPipeStoppage.Name, o)
}

// scenarioAdmissionFlood reproduces Figures 6, 7 and 8: the admission-
// control adversary's garbage invitations from unknown identities.
var scenarioAdmissionFlood = attackSweepScenario(
	"figures-admission-flood",
	"Figures 6-8: access failure, delay ratio and friction under admission-control flood",
	func(o Options) []float64 { return durationsToDays(o.floodDurations()) },
	func(cov float64, dur sim.Duration) adversary.Adversary {
		return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
			Coverage: cov, Duration: dur, Recuperation: 30 * sim.Day,
		}}
	},
	[3]string{"Figure 6", "Figure 7", "Figure 8"},
	[3]string{
		"Access failure probability under admission-control attack",
		"Delay ratio under admission-control attack",
		"Coefficient of friction under admission-control attack",
	},
	[3][]string{
		{"paper: little effect; up to ~5.9e-4 at full coverage for the whole run (600 AUs)"},
		nil,
		{"paper: sustained attacks can raise the cost per successful poll by ~33%"},
	},
)

// FiguresAdmissionFlood reproduces Figures 6-8 through the scenario
// registry.
func FiguresAdmissionFlood(o Options) ([]*Table, error) {
	return runRegistered(scenarioAdmissionFlood.Name, o)
}

// --- Table 1: brute-force defection strategies -----------------------------

// table1Defections orders the brute-force strategies as the paper's rows.
var table1Defections = []adversary.Defection{
	adversary.DefectIntro, adversary.DefectRemaining, adversary.DefectNone,
}

// scenarioTable1 reproduces the brute-force adversary defecting at INTRO,
// REMAINING and NONE, for the small and layered large collections.
var scenarioTable1 = mustRegister(&Scenario{
	Name:        "table1",
	Description: "Table 1: brute-force adversary defection strategies",
	Axes: []Axis{
		{
			Name:   "defection",
			Values: []float64{0, 1, 2},
			Format: func(v float64) string { return table1Defections[int(v)].String() },
		},
		{Name: "collection", Values: []float64{0, 1}},
	},
	Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
		return &adversary.BruteForce{Defection: table1Defections[int(pt.At(0))]}
	},
	SeedsAt:  layeredSeedsAt(func(o Options, pt Point) bool { return pt.At(1) != 0 }),
	LayersAt: layeredLayersAt(func(o Options, pt Point) bool { return pt.At(1) != 0 }),
	Compare:  true,
	Tables: func(o Options, res *Result) []*Table {
		t := &Table{
			ID:    "Table 1",
			Title: "Brute-force adversary defection strategies (continuous attack, all peers)",
			Columns: []string{"defection", "collection", "coeff-friction", "cost-ratio",
				"delay-ratio", "access-failure"},
		}
		for d := range table1Defections {
			for c := 0; c < 2; c++ {
				pr := res.At(d, c)
				t.AddCells(Str(table1Defections[d].String()), Str(collectionLabel(o, c == 1)),
					Ratio(pr.Cmp.Friction), Ratio(pr.Cmp.CostRatio),
					Ratio(pr.Cmp.DelayRatio), Prob(pr.Stats.AccessFailure))
			}
		}
		t.Notes = append(t.Notes,
			"paper (50 AUs): INTRO 1.40/1.93/1.11/5.0e-4, REMAINING 2.61/1.55/1.11/5.9e-4, NONE 2.60/1.02/1.11/5.6e-4",
			"shape: friction INTRO < REMAINING ~= NONE; access failure within ~1.3x of baseline for all strategies")
		return []*Table{t}
	},
	Progress: func(o Options, pt Point, pr PointResult) string {
		size := "small"
		if pt.At(1) != 0 {
			size = "large"
		}
		return fmt.Sprintf("table1 %v %s friction=%s cost=%s",
			table1Defections[int(pt.At(0))], size,
			fmtRatio(pr.Cmp.Friction), fmtRatio(pr.Cmp.CostRatio))
	},
})

// Table1 reproduces the paper's Table 1 through the scenario registry.
func Table1(o Options) (*Table, error) {
	return oneTable(runRegistered(scenarioTable1.Name, o))
}

// --- Baseline helper shared by examples and tests ---------------------------

// Baseline runs the no-attack scenario at the given options and returns its
// stats.
func Baseline(o Options) (RunStats, error) {
	return o.engine().RunAveraged(context.Background(), o.baseWorld(), nil, o.seeds())
}

// WorldConfig exposes the scale's world configuration (for examples).
func WorldConfig(o Options) world.Config { return o.baseWorld() }

// fmtSeries formats a coverage fraction as the paper's series label.
func fmtSeries(coverage float64) string {
	return fmt.Sprintf("%.0f%%", coverage*100)
}
