package experiment

import (
	"context"
	"math"
	"sort"

	"lockss/internal/adversary"
	"lockss/internal/prng"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// The paper simulates 600-AU collections by layering 50-AU runs: "layer n is
// a simulation of 50 AUs on peers already running a realistic workload of
// 50(n-1) AUs" (§6.3). We reproduce the technique with a statistical replay:
// from the first layer we measure each population's task arrival rate and
// mean task duration, and feed layer n a deterministic Poisson background
// load of (n-1) layers' intensity through the scheduler's Background hook.
// The substitution (sampled rather than verbatim task replay) preserves the
// contention profile while keeping memory bounded; DESIGN.md records it.

// bgLoad deterministically synthesizes background busy intervals. It is
// pure: the tasks for a bucket depend only on (seed, bucket index), so
// repeated schedule queries see a consistent timeline — which also makes the
// buckets memoizable. Schedule checks hit the same handful of buckets over
// and over as simulated time advances, so each bucket is generated once and
// queries assemble their window from the cache through a reused scratch
// slice (the schedule copies it before sorting).
type bgLoad struct {
	seed      uint64
	ratePerNs float64 // expected task arrivals per nanosecond
	meanDurNs float64
	bucket    int64 // bucket width in nanoseconds

	cache   map[int64][]sched.Task
	scratch []sched.Task
}

// poisson draws a Poisson variate with mean lambda (Knuth's method; lambda
// here is small — a handful of tasks per bucket).
func poisson(rnd *prng.Source, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rnd.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // guard against pathological lambda
			return k
		}
	}
}

// bucketTasks generates (or recalls) bucket k's tasks, sorted by start. The
// draws are identical to generating them inside a query, so memoization is
// invisible to replay.
func (b *bgLoad) bucketTasks(k int64) []sched.Task {
	if ts, ok := b.cache[k]; ok {
		return ts
	}
	rnd := prng.New(b.seed ^ uint64(k)*0x9e3779b97f4a7c15)
	n := poisson(rnd, b.ratePerNs*float64(b.bucket))
	var ts []sched.Task
	for i := 0; i < n; i++ {
		start := sched.Time(k*b.bucket + rnd.Int63n(b.bucket))
		dur := rnd.ExpFloat64(b.meanDurNs)
		if dur < 1 {
			dur = 1
		}
		ts = append(ts, sched.Task{Start: start, End: start + sched.Time(dur), Label: "bg"})
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Start < ts[j].Start })
	if b.cache == nil {
		b.cache = make(map[int64][]sched.Task)
	}
	b.cache[k] = ts
	return ts
}

// Tasks implements the sched.Schedule Background contract for [from, to).
// Buckets ascend and each bucket is start-sorted, so the concatenation is
// sorted without a per-query sort. The result aliases b's scratch; the
// schedule consumes it within the query.
func (b *bgLoad) Tasks(from, to sched.Time) []sched.Task {
	if b.ratePerNs <= 0 || to <= from {
		return nil
	}
	out := b.scratch[:0]
	first := int64(from) / b.bucket
	last := int64(to-1) / b.bucket
	for k := first; k <= last; k++ {
		for _, t := range b.bucketTasks(k) {
			if t.End <= from || t.Start >= to {
				continue
			}
			out = append(out, t)
		}
	}
	b.scratch = out
	return out
}

// measureLoad extracts the mean per-peer task rate and duration of a run.
func measureLoad(w *world.World) (ratePerNs, meanDurNs float64) {
	var count uint64
	var total sched.Duration
	for _, p := range w.Peers {
		count += p.Schedule().CommittedCount
		total += p.Schedule().CommittedTotal
	}
	if count == 0 {
		return 0, 0
	}
	horizon := float64(w.Cfg.Duration) * float64(len(w.Peers))
	return float64(count) / horizon, float64(total) / float64(count)
}

// combineLayers aggregates per-layer stats into collection-wide stats:
// fractions average, counts and efforts sum.
func combineLayers(layers []RunStats) RunStats {
	var out RunStats
	n := float64(len(layers))
	if n == 0 {
		return out
	}
	var gapW float64
	for _, r := range layers {
		out.AccessFailure += r.AccessFailure / n
		out.SuccessfulPolls += r.SuccessfulPolls
		out.TotalPolls += r.TotalPolls
		out.DefenderEffort += r.DefenderEffort
		out.AttackerEffort += r.AttackerEffort
		out.Alarms += r.Alarms
		out.DamageEvents += r.DamageEvents
		out.RepairsFixed += r.RepairsFixed
		if !math.IsInf(r.MeanSuccessGap, 1) && r.SuccessfulPolls > 0 {
			out.MeanSuccessGap += r.MeanSuccessGap * r.SuccessfulPolls
			gapW += r.SuccessfulPolls
		}
	}
	if gapW > 0 {
		out.MeanSuccessGap /= gapW
	} else {
		out.MeanSuccessGap = math.Inf(1)
	}
	if out.SuccessfulPolls > 0 {
		out.EffortPerPoll = out.DefenderEffort / out.SuccessfulPolls
	}
	return out
}

// runOneLayer executes one layer's world on the calling goroutine. Layer 0
// measures and returns the population's task load; later layers carry the
// replayed background load of the layers beneath them (ratePerNs scaled by
// the layer index, as the serial implementation did).
func runOneLayer(cfg world.Config, mkAttack func() adversary.Adversary, layer int,
	ratePerNs, meanDurNs float64) (RunStats, float64, float64, error) {
	c := cfg
	c.Seed = cfg.Seed + uint64(layer)*7_919
	w, err := world.New(c)
	if err != nil {
		return RunStats{}, 0, 0, err
	}
	if layer > 0 {
		for i, p := range w.Peers {
			bg := &bgLoad{
				seed:      c.Seed ^ uint64(i)<<32 ^ 0xb6,
				ratePerNs: ratePerNs * float64(layer),
				meanDurNs: meanDurNs,
				bucket:    int64(sim.Day),
			}
			p.Schedule().Background = bg.Tasks
		}
	}
	if mkAttack != nil {
		mkAttack().Install(w)
	}
	w.Run()
	if layer == 0 {
		ratePerNs, meanDurNs = measureLoad(w)
	}
	return statsFromWorld(w), ratePerNs, meanDurNs, nil
}

// RunLayered executes `layers` stacked runs of cfg, each carrying the
// statistically replayed background load of the layers beneath it, and
// aggregates. cfg.AUs is the per-layer collection size. Layers 1..n-1 run
// concurrently on the process-wide worker pool. layers must be at least 1.
func RunLayered(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary, layers int) (RunStats, error) {
	return newSharedEngine().RunLayered(ctx, cfg, mkAttack, layers)
}

// RunLayeredAveraged repeats RunLayered across seeds; both layers and seeds
// must be at least 1.
func RunLayeredAveraged(ctx context.Context, cfg world.Config, mkAttack func() adversary.Adversary, layers, seeds int) (RunStats, error) {
	return newSharedEngine().RunLayeredAveraged(ctx, cfg, mkAttack, layers, seeds)
}
