package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lockss/internal/adversary"
	"lockss/internal/world"
)

// This file is the declarative scenario API: instead of a closed set of
// hardcoded figure generators, an experiment is a Scenario value — a base
// configuration, config mutators, an attack factory, and sweep axes over
// any numeric or duration parameter — registered under a name and executed
// by RunScenario, which fans the sweep grid across the worker-pool engine
// with full context cancellation. Every figure, table, ablation and
// extension of the paper's evaluation is itself a registered Scenario; the
// legacy generator functions are thin wrappers over the registry.

// ConfigMutator adjusts a world configuration in place before the sweep
// axes apply.
type ConfigMutator func(*world.Config)

// Axis is one swept dimension of a scenario grid. Values may be any
// numeric parameter — probabilities, counts, day-denominated durations, or
// indices into a table of richer settings consumed by Apply and the attack
// factory.
type Axis struct {
	// Name labels the axis in generic tables and progress lines.
	Name string
	// Values are the swept settings. For scale-dependent axes leave it nil
	// and set ValuesFor.
	Values []float64
	// ValuesFor, if non-nil, derives the swept settings from the options
	// (e.g. coarser grids at tiny scale). It takes precedence over Values.
	ValuesFor func(o Options) []float64
	// Apply folds one value into the config. May be nil for axes consumed
	// only by the attack factory, Filter, or per-point hooks.
	Apply func(cfg *world.Config, v float64)
	// Format renders a value for labels; nil means %g.
	Format func(v float64) string
}

// values resolves the axis settings for a generation.
func (a Axis) values(o Options) []float64 {
	if a.ValuesFor != nil {
		return a.ValuesFor(o)
	}
	return a.Values
}

// format renders one axis value.
func (a Axis) format(v float64) string {
	if a.Format != nil {
		return a.Format(v)
	}
	return fmt.Sprintf("%g", v)
}

// Point identifies one cell of a scenario's sweep grid.
type Point struct {
	// Index is the cell's position in the scenario's point list.
	Index int `json:"index"`
	// Coords are the per-axis value indices (empty for axis-less scenarios).
	Coords []int `json:"coords,omitempty"`
	// Values are the per-axis values, parallel to Coords.
	Values []float64 `json:"values,omitempty"`
}

// At returns the value of axis i, or 0 when the point has fewer axes.
func (p Point) At(i int) float64 {
	if i < 0 || i >= len(p.Values) {
		return 0
	}
	return p.Values[i]
}

// PointResult is the structured outcome of one grid cell.
type PointResult struct {
	Point Point `json:"point"`
	// Stats is the cell's (possibly attacked) run outcome.
	Stats RunStats `json:"stats"`
	// Baseline is the attack-free twin when the scenario compares.
	Baseline *RunStats `json:"baseline,omitempty"`
	// Cmp relates Stats to Baseline when the scenario compares.
	Cmp *Comparison `json:"comparison,omitempty"`
	// Extra carries custom measurements from RunPoint scenarios.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Result is a completed scenario run: one PointResult per grid cell, in
// grid order (first axis slowest, last axis fastest).
type Result struct {
	Scenario string        `json:"scenario"`
	Points   []PointResult `json:"points"`
}

// At returns the point result with the given per-axis coordinates, or nil.
func (r *Result) At(coords ...int) *PointResult {
	for i := range r.Points {
		p := &r.Points[i]
		if len(p.Point.Coords) != len(coords) {
			continue
		}
		match := true
		for j, c := range coords {
			if p.Point.Coords[j] != c {
				match = false
				break
			}
		}
		if match {
			return p
		}
	}
	return nil
}

// Scenario declaratively specifies an experiment: how to build the world,
// what to sweep, what attack to install, and how to render the outcome.
// The zero value of every optional field means "the default": scale-derived
// base config, one layer, scale-default seeds, no attack, generic table.
type Scenario struct {
	// Name registers the scenario; lowercase, hyphenated by convention.
	Name string
	// Description is the one-line summary shown by listings.
	Description string

	// Base builds the starting configuration; nil means the scale default
	// (the population Options.Scale selects).
	Base func(o Options) world.Config
	// Mutators adjust the base configuration, in order, before axes apply.
	Mutators []ConfigMutator
	// Axes define the sweep grid as a cross product, first axis slowest.
	// A scenario with no axes runs a single point.
	Axes []Axis
	// Filter, if non-nil, keeps only grid cells it returns true for.
	Filter func(o Options, pt Point) bool

	// Attack builds a fresh adversary for one run of a point: it is invoked
	// once per seeded run, plus one probe per point whose result decides —
	// and is discarded — whether the point runs attack-free. nil, or a nil
	// return from the probe, runs the point attack-free (and lets its run
	// memoize as a baseline). The factory must therefore be a pure function
	// of its arguments.
	Attack func(o Options, cfg world.Config, pt Point) adversary.Adversary

	// Seeds overrides the scale-default seed count when positive.
	Seeds int
	// SeedsAt overrides Seeds per point (e.g. single-seed layered runs).
	SeedsAt func(o Options, pt Point) int
	// Layers stacks each run to model large collections; 0 means 1.
	Layers int
	// LayersAt overrides Layers per point.
	LayersAt func(o Options, pt Point) int

	// Compare also runs each point attack-free and derives the paper's
	// comparison metrics into PointResult.Baseline and PointResult.Cmp.
	Compare bool

	// RunPoint, if non-nil, replaces the standard executor for each point —
	// custom measurement loops (e.g. churn statistics) implement it with
	// the engine's Run* methods and fill PointResult.Extra.
	RunPoint func(ctx context.Context, e *Engine, o Options, cfg world.Config, pt Point) (PointResult, error)

	// Tables renders a completed run; nil selects the generic renderer.
	Tables func(o Options, res *Result) []*Table

	// Progress formats one per-point progress line; nil selects a generic
	// line. Empty returns suppress the line.
	Progress func(o Options, pt Point, pr PointResult) string
}

// --- Registry ---------------------------------------------------------------

var (
	regMu    sync.RWMutex
	registry = make(map[string]*Scenario)
)

// Register adds a scenario to the process-wide registry. Names must be
// non-empty and unique.
func Register(s *Scenario) error {
	if s == nil {
		return fmt.Errorf("experiment: Register(nil)")
	}
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("experiment: scenario needs a name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("experiment: scenario %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// mustRegister registers the built-in scenarios at init.
func mustRegister(s *Scenario) *Scenario {
	if err := Register(s); err != nil {
		panic(err)
	}
	return s
}

// Lookup returns the registered scenario with the given name.
func Lookup(name string) (*Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// List returns every registered scenario, sorted by name.
func List() []*Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- Execution --------------------------------------------------------------

// grid expands the scenario's axes into its point list.
func (s *Scenario) grid(o Options) ([]Point, error) {
	vals := make([][]float64, len(s.Axes))
	n := 1
	for i, ax := range s.Axes {
		vals[i] = ax.values(o)
		if len(vals[i]) == 0 {
			return nil, fmt.Errorf("experiment: scenario %q axis %q has no values", s.Name, ax.Name)
		}
		n *= len(vals[i])
	}
	points := make([]Point, 0, n)
	coords := make([]int, len(s.Axes))
	for i := 0; i < n; i++ {
		pt := Point{
			Coords: append([]int(nil), coords...),
			Values: make([]float64, len(s.Axes)),
		}
		for j, c := range pt.Coords {
			pt.Values[j] = vals[j][c]
		}
		if s.Filter == nil || s.Filter(o, pt) {
			pt.Index = len(points)
			points = append(points, pt)
		}
		// Odometer increment, last axis fastest.
		for j := len(coords) - 1; j >= 0; j-- {
			coords[j]++
			if coords[j] < len(vals[j]) {
				break
			}
			coords[j] = 0
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("experiment: scenario %q has an empty grid", s.Name)
	}
	return points, nil
}

// config builds the world configuration for one point.
func (s *Scenario) config(o Options, pt Point) world.Config {
	var cfg world.Config
	if s.Base != nil {
		cfg = s.Base(o)
	} else {
		cfg = o.baseWorld()
	}
	if o.Shards > 0 {
		// Custom Base functions don't all consult the options; the shard
		// count is an execution concern, so it wins over the base config.
		cfg.Shards = o.Shards
	}
	for _, m := range s.Mutators {
		m(&cfg)
	}
	for i, ax := range s.Axes {
		if ax.Apply != nil {
			ax.Apply(&cfg, pt.Values[i])
		}
	}
	return cfg
}

// seedsFor and layersFor resolve the per-point run shape.
func (s *Scenario) seedsFor(o Options, pt Point) int {
	if s.SeedsAt != nil {
		return s.SeedsAt(o, pt)
	}
	if s.Seeds != 0 {
		return s.Seeds
	}
	return o.seeds()
}

func (s *Scenario) layersForPt(o Options, pt Point) int {
	if s.LayersAt != nil {
		return s.LayersAt(o, pt)
	}
	if s.Layers != 0 {
		return s.Layers
	}
	return 1
}

// Points expands the scenario's sweep grid for the given options. It is the
// exported face of grid, used by external drivers (internal/harness) that
// execute points on alternative backends.
func (s *Scenario) Points(o Options) ([]Point, error) { return s.grid(o) }

// ConfigAt builds the world configuration for one grid point: base, then
// mutators, then axis applications. External drivers may further override the
// returned value before running it.
func (s *Scenario) ConfigAt(o Options, pt Point) world.Config { return s.config(o, pt) }

// RunPointOn executes one grid cell on the engine with a caller-supplied
// configuration (normally ConfigAt plus driver overrides). It is the exported
// face of the standard per-point executor.
func (s *Scenario) RunPointOn(ctx context.Context, e *Engine, o Options, pt Point, cfg world.Config) (PointResult, error) {
	return s.runPointWith(ctx, e, o, pt, cfg)
}

// Render renders a completed result with the scenario's table renderer (the
// custom one when defined, the generic table otherwise).
func (s *Scenario) Render(o Options, res *Result) []*Table {
	if s.Tables != nil {
		return s.Tables(o, res)
	}
	return []*Table{s.genericTable(o, res)}
}

// GenericTable renders a result with the generic per-point renderer
// regardless of the scenario's custom Tables hook. Custom renderers may
// assume comparison data that alternative execution backends (baseline-only
// cluster runs) do not produce; the generic renderer tolerates its absence,
// so cross-backend drivers render both sides through it.
func (s *Scenario) GenericTable(o Options, res *Result) *Table {
	return s.genericTable(o, res)
}

// runPoint executes one grid cell on the engine.
func (s *Scenario) runPoint(ctx context.Context, e *Engine, o Options, pt Point) (PointResult, error) {
	return s.runPointWith(ctx, e, o, pt, s.config(o, pt))
}

// runPointWith executes one grid cell with a prebuilt configuration.
func (s *Scenario) runPointWith(ctx context.Context, e *Engine, o Options, pt Point, cfg world.Config) (PointResult, error) {
	if s.RunPoint != nil {
		pr, err := s.RunPoint(ctx, e, o, cfg, pt)
		pr.Point = pt
		return pr, err
	}
	seeds := s.seedsFor(o, pt)
	layers := s.layersForPt(o, pt)
	if seeds < 1 {
		return PointResult{}, fmt.Errorf("scenario %q point %d: %w", s.Name, pt.Index, errSeeds(seeds))
	}
	if layers < 1 {
		return PointResult{}, fmt.Errorf("scenario %q point %d: %w", s.Name, pt.Index, errLayers(layers))
	}
	run := func(mk func() adversary.Adversary) (RunStats, error) {
		if layers > 1 {
			return e.RunLayeredAveraged(ctx, cfg, mk, layers, seeds)
		}
		return e.RunAveraged(ctx, cfg, mk, seeds)
	}
	// Probe the attack factory once: a nil adversary means the point runs
	// attack-free (and its run memoizes as a baseline).
	var mk func() adversary.Adversary
	if s.Attack != nil && s.Attack(o, cfg, pt) != nil {
		mk = func() adversary.Adversary { return s.Attack(o, cfg, pt) }
	}
	pr := PointResult{Point: pt}
	var err error
	if mk != nil {
		// Attack first: attack runs are independent and fill the pool while
		// the shared baseline's single memo flight is in progress.
		if pr.Stats, err = run(mk); err != nil {
			return PointResult{}, err
		}
	}
	if mk == nil || s.Compare {
		baseline, err := run(nil)
		if err != nil {
			return PointResult{}, err
		}
		if mk == nil {
			pr.Stats = baseline
		}
		if s.Compare {
			pr.Baseline = &baseline
			cmp := Compare(pr.Stats, baseline)
			pr.Cmp = &cmp
		}
	}
	return pr, nil
}

// RunScenario executes a scenario's full sweep grid across the worker-pool
// engine and returns the structured per-point results in grid order. The
// context cancels promptly: runs not yet started are skipped and ctx.Err()
// is returned (in-flight simulations finish and are discarded).
func RunScenario(ctx context.Context, spec *Scenario, o Options) (*Result, error) {
	if spec == nil {
		return nil, fmt.Errorf("experiment: RunScenario(nil scenario)")
	}
	ctx = orBackground(ctx)
	points, err := spec.grid(o)
	if err != nil {
		return nil, err
	}
	e := o.engine()
	prs, err := gather(len(points), func(i int) (PointResult, error) {
		return spec.runPoint(ctx, e, o, points[i])
	}, func(i int, pr PointResult) {
		if line := spec.progressLine(o, points[i], pr, len(points)); line != "" {
			o.progress("%s", line)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{Scenario: spec.Name, Points: prs}, nil
}

// progressLine renders one per-point progress line.
func (s *Scenario) progressLine(o Options, pt Point, pr PointResult, total int) string {
	if s.Progress != nil {
		return s.Progress(o, pt, pr)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d/%d", s.Name, pt.Index+1, total)
	for i, ax := range s.Axes {
		fmt.Fprintf(&b, " %s=%s", ax.Name, ax.format(pt.At(i)))
	}
	fmt.Fprintf(&b, " afp=%s", fmtProb(pr.Stats.AccessFailure))
	return b.String()
}

// Run executes the scenario and renders its tables — the custom renderer
// when the scenario defines one, the generic table otherwise.
func (s *Scenario) Run(ctx context.Context, o Options) ([]*Table, error) {
	res, err := RunScenario(ctx, s, o)
	if err != nil {
		return nil, err
	}
	if s.Tables != nil {
		return s.Tables(o, res), nil
	}
	return []*Table{s.genericTable(o, res)}, nil
}

// genericTable renders a scenario without a custom renderer: one row per
// point — axis values, the standard run metrics, comparison ratios when the
// scenario compares, and any Extra measurements in sorted key order.
func (s *Scenario) genericTable(o Options, res *Result) *Table {
	t := &Table{ID: s.Name, Title: s.Description}
	if t.Title == "" {
		t.Title = "scenario sweep"
	}
	for _, ax := range s.Axes {
		t.Columns = append(t.Columns, ax.Name)
	}
	t.Columns = append(t.Columns, "access-failure", "mean-gap(days)", "polls-ok", "alarms")
	if s.Compare {
		t.Columns = append(t.Columns, "delay-ratio", "coeff-friction", "cost-ratio")
	}
	// Extra columns are the union across points: RunPoint scenarios may
	// report different measurements per point (absent ones render as "-").
	extraSet := make(map[string]bool)
	for _, pr := range res.Points {
		for k := range pr.Extra {
			extraSet[k] = true
		}
	}
	extraKeys := make([]string, 0, len(extraSet))
	for k := range extraSet {
		extraKeys = append(extraKeys, k)
	}
	sort.Strings(extraKeys)
	t.Columns = append(t.Columns, extraKeys...)
	for _, pr := range res.Points {
		var row []Cell
		for i, ax := range s.Axes {
			row = append(row, Cell{Text: ax.format(pr.Point.At(i)), Value: pr.Point.At(i)})
		}
		row = append(row,
			Prob(pr.Stats.AccessFailure),
			Num("%.1f", pr.Stats.MeanSuccessGap),
			Num("%.0f", pr.Stats.SuccessfulPolls),
			Num("%.0f", pr.Stats.Alarms))
		if s.Compare {
			var c Comparison
			if pr.Cmp != nil {
				c = *pr.Cmp
			}
			row = append(row, Ratio(c.DelayRatio), Ratio(c.Friction), Ratio(c.CostRatio))
		}
		for _, k := range extraKeys {
			if v, ok := pr.Extra[k]; ok {
				row = append(row, Num("%g", v))
			} else {
				row = append(row, Str("-"))
			}
		}
		t.AddCells(row...)
	}
	return t
}

// runRegistered runs a built-in scenario for the legacy wrapper functions.
func runRegistered(name string, o Options) ([]*Table, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiment: scenario %q not registered", name)
	}
	return s.Run(context.Background(), o)
}

// oneTable unwraps single-table scenario runs for the legacy wrappers.
func oneTable(ts []*Table, err error) (*Table, error) {
	if err != nil {
		return nil, err
	}
	return ts[0], nil
}
