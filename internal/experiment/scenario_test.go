package experiment

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lockss/internal/adversary"
	"lockss/internal/sim"
	"lockss/internal/world"
)

var updateGolden = flag.Bool("update", false, "rewrite the scenario golden files")

// builtinOrder is the CLI's -figure all emission order; the concatenation
// of these goldens is exactly `lockss-sim -figure all -scale tiny`.
var builtinOrder = []string{
	"figure2",
	"figures-pipe-stoppage",
	"figures-admission-flood",
	"table1",
	"ablation-refractory",
	"ablation-drop-prob",
	"ablation-introductions",
	"ablation-desynchronization",
	"ablation-effort-balancing",
	"extension-churn",
	"extension-adaptive",
	"extension-combined",
}

// legacyWrappers maps a representative subset of scenarios to their legacy
// generator functions, to assert the wrappers and the registry path emit
// identical bytes. (Attack runs are not memoized, so re-running every
// scenario through its wrapper would double the suite's cost for no extra
// coverage — the wrappers are one-line calls into the same registry path.)
var legacyWrappers = map[string]func(Options) ([]*Table, error){
	"figure2":                func(o Options) ([]*Table, error) { return wrapOne(Figure2(o)) },
	"table1":                 func(o Options) ([]*Table, error) { return wrapOne(Table1(o)) },
	"ablation-introductions": func(o Options) ([]*Table, error) { return wrapOne(AblationIntroductions(o)) },
	"extension-combined":     func(o Options) ([]*Table, error) { return wrapOne(ExtensionCombined(o)) },
}

func wrapOne(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

func renderTables(ts []*Table) []byte {
	var buf bytes.Buffer
	for _, t := range ts {
		t.Fprint(&buf)
	}
	return buf.Bytes()
}

// checkGolden diffs got against the golden file at path, rewriting it first
// when -update is set, and returns the golden bytes.
func checkGolden(t *testing.T, path string, got []byte) []byte {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from golden %s (run with -update to inspect):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
	return want
}

// TestScenarioGolden asserts every built-in scenario's tiny-scale output is
// byte-for-byte what the legacy generators produced (recorded in testdata),
// both through the registry path and through the legacy wrappers.
// Regenerate with `go test -run TestScenarioGolden -update`.
func TestScenarioGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario at tiny scale")
	}
	// One shared engine: scenarios share memoized baselines like the CLI.
	eng := NewEngine(0)
	for _, name := range builtinOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, ok := Lookup(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			o := Options{Scale: ScaleTiny, Engine: eng}
			tables, err := spec.Run(context.Background(), o)
			if err != nil {
				t.Fatal(err)
			}
			got := renderTables(tables)
			want := checkGolden(t, filepath.Join("testdata", "golden", name+".golden"), got)

			// The legacy wrapper must emit the same bytes.
			if wrapper, ok := legacyWrappers[name]; ok {
				legacyTables, err := wrapper(Options{Scale: ScaleTiny, Engine: eng})
				if err != nil {
					t.Fatal(err)
				}
				if legacy := renderTables(legacyTables); !bytes.Equal(legacy, want) {
					t.Errorf("legacy wrapper for %q diverges from the registry path", name)
				}
			}
		})
	}
}

// TestScenarioGoldenSmall widens the capture-and-diff net beyond ScaleTiny:
// one registered scenario is pinned byte-for-byte at ScaleSmall, where the
// larger population, longer horizon and multi-seed averaging exercise
// aggregation and float-accumulation paths the tiny goldens cannot reach.
// Together with TestScenarioGolden this is the safety harness for hot-path
// optimization work: any change to seed derivation, RNG consumption order,
// accumulation order or formatting shows up as a byte diff.
// Regenerate with `go test -run TestScenarioGoldenSmall -update`.
func TestScenarioGoldenSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a ScaleSmall scenario (tens of seconds)")
	}
	const name = "ablation-introductions"
	spec, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	tables, err := spec.Run(context.Background(), Options{Scale: ScaleSmall, Engine: NewEngine(0)})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden", name+"@small.golden"), renderTables(tables))
}

// TestScenarioGoldenLarge pins the ~5k-peer capacity tier byte-for-byte:
// the scale-large-baseline scenario runs cold-bootstrap steady state on a
// population 50x the paper's, exercising the code paths (dense event index,
// SoA-ish peer state, shard-ready network) that only matter at scale.
// Regenerate with `go test -run TestScenarioGoldenLarge -update`.
func TestScenarioGoldenLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a ScaleLarge scenario (5k peers)")
	}
	const name = "scale-large-baseline"
	spec, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	tables, err := spec.Run(context.Background(), Options{Scale: ScaleTiny, Engine: NewEngine(0)})
	if err != nil {
		t.Fatal(err)
	}
	got := renderTables(tables)
	checkGolden(t, filepath.Join("testdata", "golden", name+".golden"), got)

	// The same bytes must come out of a sharded run.
	shardedTables, err := spec.Run(context.Background(), Options{Scale: ScaleTiny, Shards: 4, Engine: NewEngine(0)})
	if err != nil {
		t.Fatal(err)
	}
	if sharded := renderTables(shardedTables); !bytes.Equal(sharded, got) {
		t.Errorf("sharded run diverges from single-engine bytes:\n--- shards=4 ---\n%s\n--- shards=1 ---\n%s", sharded, got)
	}
}

// TestShardedRunStatsIdentical pins shard-count invariance through the full
// experiment path with an effortful adversary attached: RunStats — including
// the float-valued effort ledgers on both sides — must be identical at
// shards 1, 2 and 8.
func TestShardedRunStatsIdentical(t *testing.T) {
	run := func(shards int) RunStats {
		cfg := scenarioTestConfig(Options{})
		cfg.DamageDiskYears = 1
		cfg.Shards = shards
		stats, err := RunOne(cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectNone, Minions: 8, Coverage: 1}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	ref := run(1)
	if ref.AttackerEffort == 0 || ref.SuccessfulPolls == 0 {
		t.Fatalf("reference attack run inert: %+v", ref)
	}
	for _, shards := range []int{2, 8} {
		if got := run(shards); got != ref {
			t.Errorf("shards=%d RunStats differ:\n got %+v\nwant %+v", shards, got, ref)
		}
	}
}

// TestRegistryBuiltins asserts every shipped artifact is registered and
// listed in sorted order with a description.
func TestRegistryBuiltins(t *testing.T) {
	listed := List()
	byName := make(map[string]*Scenario, len(listed))
	for i, s := range listed {
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
		if i > 0 && listed[i-1].Name >= s.Name {
			t.Errorf("List() not sorted: %q before %q", listed[i-1].Name, s.Name)
		}
		byName[s.Name] = s
	}
	for _, name := range builtinOrder {
		if _, ok := byName[name]; !ok {
			t.Errorf("built-in scenario %q missing from List()", name)
		}
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
}

// TestRegisterValidation asserts the registry rejects nil, unnamed and
// duplicate scenarios.
func TestRegisterValidation(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Error("Register(nil) should fail")
	}
	if err := Register(&Scenario{Name: "  "}); err == nil {
		t.Error("Register with blank name should fail")
	}
	name := "test-register-validation"
	if err := Register(&Scenario{Name: name, Description: "x"}); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := Register(&Scenario{Name: name, Description: "y"}); err == nil {
		t.Error("duplicate Register should fail")
	}
}

// scenarioTestConfig is a fast population for scenario execution tests.
func scenarioTestConfig(o Options) world.Config {
	cfg := world.Default()
	cfg.Peers = 12
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = 120 * sim.Day
	return cfg
}

// TestRunScenarioGuards asserts seeds and layers below 1 surface
// descriptive errors instead of silently returning zero stats.
func TestRunScenarioGuards(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		spec *Scenario
		want string
	}{
		{"seeds", &Scenario{Name: "g1", Base: scenarioTestConfig, Seeds: -1}, "seeds"},
		{"layers", &Scenario{Name: "g2", Base: scenarioTestConfig, Layers: -2}, "layers"},
		{
			"seeds-at",
			&Scenario{Name: "g3", Base: scenarioTestConfig,
				SeedsAt: func(o Options, pt Point) int { return 0 }},
			"seeds",
		},
	} {
		_, err := RunScenario(ctx, tc.spec, Options{Scale: ScaleTiny})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// The engine entry points guard too.
	e := NewEngine(2)
	cfg := scenarioTestConfig(Options{})
	if _, err := e.RunAveraged(ctx, cfg, nil, 0); err == nil || !strings.Contains(err.Error(), "seeds") {
		t.Errorf("RunAveraged(seeds=0): err = %v", err)
	}
	if _, err := e.RunLayered(ctx, cfg, nil, 0); err == nil || !strings.Contains(err.Error(), "layers") {
		t.Errorf("RunLayered(layers=0): err = %v", err)
	}
	if _, err := e.RunLayeredAveraged(ctx, cfg, nil, 2, -3); err == nil || !strings.Contains(err.Error(), "seeds") {
		t.Errorf("RunLayeredAveraged(seeds=-3): err = %v", err)
	}
	if _, err := RunScenario(ctx, nil, Options{}); err == nil {
		t.Error("RunScenario(nil) should fail")
	}
}

// TestRunScenarioCancel asserts RunScenario honors context cancellation:
// a pre-canceled context fails immediately, and canceling mid-sweep skips
// the queued points and returns promptly with ctx.Err().
func TestRunScenarioCancel(t *testing.T) {
	spec := &Scenario{
		Name: "cancel-test",
		Base: scenarioTestConfig,
		Axes: []Axis{{
			Name: "i",
			ValuesFor: func(o Options) []float64 {
				vs := make([]float64, 64)
				for i := range vs {
					vs[i] = float64(i)
				}
				return vs
			},
			// Vary the seed so no point is served from the memo.
			Apply: func(cfg *world.Config, v float64) { cfg.Seed = uint64(v) + 1 },
		}},
		Seeds: 1,
	}

	// Pre-canceled: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunScenario(ctx, spec, Options{Scale: ScaleTiny, Engine: NewEngine(1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("pre-canceled RunScenario took %v", d)
	}

	// Cancel mid-sweep: point 0 cancels the context from inside its
	// executor (deterministic, unlike waiting for a wall-clock race — the
	// optimized engine can drain a 64-point tiny sweep faster than an
	// external cancel lands), so the remaining queued points must be
	// skipped rather than simulated and the sweep must surface ctx.Err().
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var ran atomic.Int32
	cancelSpec := &Scenario{
		Name: "cancel-test-mid",
		Base: scenarioTestConfig,
		Axes: spec.Axes,
		RunPoint: func(ctx context.Context, e *Engine, o Options, cfg world.Config, pt Point) (PointResult, error) {
			if pt.Index == 0 {
				cancel2()
				return PointResult{}, ctx.Err()
			}
			ran.Add(1)
			stats, err := e.RunOne(ctx, cfg, nil)
			return PointResult{Stats: stats}, err
		},
	}
	start = time.Now()
	_, err = RunScenario(ctx2, cancelSpec, Options{Scale: ScaleTiny, Engine: NewEngine(1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancel: err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("canceled RunScenario took %v; queued points were not skipped", d)
	}
	if n := ran.Load(); n >= 63 {
		t.Errorf("all %d later points simulated despite cancellation", n)
	}
}

// TestRunScenarioCustom exercises a user-defined scenario end to end: grid
// expansion, filtering, attack factory, comparison, and the generic
// renderer.
func TestRunScenarioCustom(t *testing.T) {
	var attacks atomic.Int32
	spec := &Scenario{
		Name:        "custom-test",
		Description: "stoppage coverage sweep",
		Base:        scenarioTestConfig,
		Mutators:    []ConfigMutator{func(cfg *world.Config) { cfg.DamageDiskYears = 1 }},
		Axes: []Axis{{
			Name:   "coverage",
			Values: []float64{0.25, 0.5, 0.75, 1.0},
			Format: func(v float64) string { return fmt.Sprintf("%.0f%%", v*100) },
		}},
		Filter: func(o Options, pt Point) bool { return pt.At(0) != 0.75 },
		Attack: func(o Options, cfg world.Config, pt Point) adversary.Adversary {
			attacks.Add(1)
			return &adversary.PipeStoppage{Pulse: adversary.Pulse{
				Coverage: pt.At(0), Duration: 30 * sim.Day, Recuperation: 15 * sim.Day,
			}}
		},
		Seeds:   1,
		Compare: true,
	}
	res, err := RunScenario(context.Background(), spec, Options{Scale: ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("filtered grid has %d points, want 3", len(res.Points))
	}
	for i, pr := range res.Points {
		if pr.Point.Index != i {
			t.Errorf("point %d has index %d", i, pr.Point.Index)
		}
		if pr.Cmp == nil || pr.Baseline == nil {
			t.Fatalf("point %d missing comparison", i)
		}
		if pr.Stats.TotalPolls == 0 {
			t.Errorf("point %d ran nothing", i)
		}
	}
	// Coords index the axis values, so the filtered-out 0.75 leaves the
	// 100% point addressable at its original coordinate 3.
	if got := res.At(3); got == nil || got.Point.At(0) != 1.0 {
		t.Errorf("At(3) = %+v, want the 100%% coverage point", got)
	}
	if attacks.Load() == 0 {
		t.Error("attack factory never invoked")
	}

	// The generic renderer: axis column + metrics + comparison columns.
	tables, err := spec.Run(context.Background(), Options{Scale: ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tables[0].Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"custom-test", "coverage", "delay-ratio", "100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("generic table missing %q:\n%s", want, out)
		}
	}
	if len(tables[0].Rows) != 3 {
		t.Errorf("generic table has %d rows, want 3", len(tables[0].Rows))
	}
}

// TestScenarioDeterminism asserts the scenario path is invariant under the
// worker count, like the engine beneath it.
func TestScenarioDeterminism(t *testing.T) {
	spec, _ := Lookup("extension-combined")
	run := func(workers int) *Result {
		res, err := RunScenario(context.Background(), spec, Options{
			Scale: ScaleTiny, Seeds: 1, Engine: NewEngine(workers),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].Stats != b.Points[i].Stats {
			t.Errorf("point %d stats differ across worker counts", i)
		}
	}
}
