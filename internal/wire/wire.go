// Package wire implements the binary codec for LOCKSS protocol messages.
// The real networked node (cmd/lockss-node) frames these over encrypted TCP
// sessions; the simulator uses Msg.WireSize (kept consistent with this
// encoding by tests) to model transfer times without serializing.
//
// The format is length-delimited fields in fixed big-endian layout, with
// explicit tags for proof and vote representations. It is not
// self-describing: both ends run the same protocol version.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

// Codec version; bump on incompatible layout changes.
const Version = 1

// Limits protect decoders from hostile inputs.
const (
	MaxNominations = 1024
	MaxBlocks      = 1 << 22 // 4M blocks per AU
	MaxRepairBytes = 64 << 20
	MaxProofUnits  = 1 << 16
	MaxCheckpoints = 1 << 12
)

// ErrTruncated reports input shorter than its encoding requires.
var ErrTruncated = errors.New("wire: truncated message")

// proof representation tags.
const (
	proofNone byte = iota
	proofSim
	proofMBF
)

// vote representation tags.
const (
	voteNone byte = iota
	voteHashes
	voteSim
)

type writer struct{ buf []byte }

func (w *writer) u8(v byte)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)  { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)  { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)  { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bytesMax(max int) []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > max {
		r.err = fmt.Errorf("wire: field of %d bytes exceeds limit %d", n, max)
		return nil
	}
	if !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}

// encodeProof writes a tagged effort proof.
func encodeProof(w *writer, p effort.Proof) error {
	switch pr := p.(type) {
	case nil:
		w.u8(proofNone)
	case effort.SimProof:
		w.u8(proofSim)
		w.f64(float64(pr.Effort))
		if pr.Genuine {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case *effort.MBFProof:
		w.u8(proofMBF)
		w.u32(uint32(pr.Units))
		w.f64(float64(pr.UnitCost))
		if len(pr.Checkpoints) != pr.Units {
			return fmt.Errorf("wire: MBF proof has %d checkpoint rows for %d units", len(pr.Checkpoints), pr.Units)
		}
		if pr.Units > 0 {
			w.u32(uint32(len(pr.Checkpoints[0])))
		} else {
			w.u32(0)
		}
		for _, row := range pr.Checkpoints {
			if pr.Units > 0 && len(row) != len(pr.Checkpoints[0]) {
				return errors.New("wire: ragged MBF checkpoint rows")
			}
			for _, v := range row {
				w.u64(v)
			}
		}
		w.buf = append(w.buf, pr.Digest[:]...)
	default:
		return fmt.Errorf("wire: unencodable proof type %T", p)
	}
	return nil
}

// decodeProof reads a tagged effort proof.
func decodeProof(r *reader) effort.Proof {
	switch tag := r.u8(); tag {
	case proofNone:
		return nil
	case proofSim:
		e := r.f64()
		genuine := r.u8() == 1
		return effort.SimProof{Effort: effort.Seconds(e), Genuine: genuine}
	case proofMBF:
		units := int(r.u32())
		cost := r.f64()
		rowLen := int(r.u32())
		if r.err == nil && (units < 0 || units > MaxProofUnits || rowLen < 0 || rowLen > MaxCheckpoints) {
			r.err = fmt.Errorf("wire: MBF proof dims %dx%d out of range", units, rowLen)
		}
		if r.err != nil {
			return nil
		}
		p := &effort.MBFProof{Units: units, UnitCost: effort.Seconds(cost)}
		p.Checkpoints = make([][]uint64, units)
		for i := 0; i < units; i++ {
			row := make([]uint64, rowLen)
			for j := range row {
				row[j] = r.u64()
			}
			p.Checkpoints[i] = row
		}
		if r.need(len(p.Digest)) {
			copy(p.Digest[:], r.buf[r.off:])
			r.off += len(p.Digest)
		}
		return p
	default:
		r.err = fmt.Errorf("wire: unknown proof tag %d", tag)
		return nil
	}
}

// encodeVote writes a tagged vote body.
func encodeVote(w *writer, v protocol.VoteData) error {
	switch vd := v.(type) {
	case nil:
		w.u8(voteNone)
	case protocol.HashVote:
		w.u8(voteHashes)
		w.u32(uint32(len(vd.Hashes)))
		for _, h := range vd.Hashes {
			w.buf = append(w.buf, h[:]...)
		}
	case protocol.SimVote:
		w.u8(voteSim)
		w.u32(uint32(vd.NumBlocks))
		w.u32(uint32(len(vd.Dam)))
		for _, d := range vd.Dam {
			w.u32(uint32(d.Block))
			w.u64(uint64(d.Mark))
		}
	default:
		return fmt.Errorf("wire: unencodable vote type %T", v)
	}
	return nil
}

// decodeVote reads a tagged vote body.
func decodeVote(r *reader) protocol.VoteData {
	switch tag := r.u8(); tag {
	case voteNone:
		return nil
	case voteHashes:
		n := int(r.u32())
		if r.err == nil && (n < 0 || n > MaxBlocks) {
			r.err = fmt.Errorf("wire: %d vote hashes out of range", n)
		}
		if r.err != nil {
			return nil
		}
		hv := protocol.HashVote{Hashes: make([]content.Hash, n)}
		for i := 0; i < n; i++ {
			if !r.need(32) {
				return nil
			}
			copy(hv.Hashes[i][:], r.buf[r.off:])
			r.off += 32
		}
		return hv
	case voteSim:
		blocks := int(r.u32())
		n := int(r.u32())
		if r.err == nil && (blocks < 0 || blocks > MaxBlocks || n < 0 || n > blocks) {
			r.err = fmt.Errorf("wire: sim vote dims %d/%d out of range", n, blocks)
		}
		if r.err != nil {
			return nil
		}
		sv := protocol.SimVote{NumBlocks: blocks, Dam: make([]content.DamageEntry, n)}
		for i := range sv.Dam {
			sv.Dam[i].Block = int(r.u32())
			sv.Dam[i].Mark = content.Mark(r.u64())
		}
		return sv
	default:
		r.err = fmt.Errorf("wire: unknown vote tag %d", tag)
		return nil
	}
}

// Encode serializes a message.
func Encode(m *protocol.Msg) ([]byte, error) {
	return AppendEncode(make([]byte, 0, 256), m)
}

// AppendEncode serializes a message, appending to dst and returning the
// extended slice. Callers on a send loop pass a recycled buffer so steady-
// state encoding does not allocate.
func AppendEncode(dst []byte, m *protocol.Msg) ([]byte, error) {
	if m == nil {
		return nil, errors.New("wire: nil message")
	}
	w := &writer{buf: dst}
	w.u8(byte(m.Type))
	w.u32(uint32(m.AU))
	w.u64(m.PollID)
	w.u32(uint32(m.Poller))
	w.u32(uint32(m.Voter))
	switch m.Type {
	case protocol.MsgPoll:
		w.u64(uint64(m.VoteBy))
		w.u64(uint64(m.PollDeadline))
		if err := encodeProof(w, m.Proof); err != nil {
			return nil, err
		}
	case protocol.MsgPollAck:
		if m.Accept {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u8(byte(m.Refuse))
	case protocol.MsgPollProof:
		w.buf = append(w.buf, m.Nonce[:]...)
		if err := encodeProof(w, m.Proof); err != nil {
			return nil, err
		}
	case protocol.MsgVote:
		if err := encodeVote(w, m.Vote); err != nil {
			return nil, err
		}
		if len(m.Nominations) > MaxNominations {
			return nil, fmt.Errorf("wire: %d nominations exceed limit", len(m.Nominations))
		}
		w.u16(uint16(len(m.Nominations)))
		for _, nom := range m.Nominations {
			w.u32(uint32(nom))
		}
		if err := encodeProof(w, m.Proof); err != nil {
			return nil, err
		}
	case protocol.MsgRepairRequest:
		w.u32(uint32(m.Block))
	case protocol.MsgRepair:
		w.u32(uint32(m.Block))
		w.bytes(m.RepairData)
	case protocol.MsgEvaluationReceipt:
		w.buf = append(w.buf, m.Receipt[:]...)
	default:
		return nil, fmt.Errorf("wire: unknown message type %v", m.Type)
	}
	return w.buf, nil
}

// Decode parses a message.
func Decode(data []byte) (*protocol.Msg, error) {
	r := &reader{buf: data}
	m := &protocol.Msg{}
	m.Type = protocol.MsgType(r.u8())
	m.AU = content.AUID(r.u32())
	m.PollID = r.u64()
	m.Poller = ids.PeerID(r.u32())
	m.Voter = ids.PeerID(r.u32())
	switch m.Type {
	case protocol.MsgPoll:
		m.VoteBy = sched.Time(r.u64())
		m.PollDeadline = sched.Time(r.u64())
		m.Proof = decodeProof(r)
	case protocol.MsgPollAck:
		m.Accept = r.u8() == 1
		m.Refuse = protocol.RefuseReason(r.u8())
	case protocol.MsgPollProof:
		if r.need(len(m.Nonce)) {
			copy(m.Nonce[:], r.buf[r.off:])
			r.off += len(m.Nonce)
		}
		m.Proof = decodeProof(r)
	case protocol.MsgVote:
		m.Vote = decodeVote(r)
		n := int(r.u16())
		if r.err == nil && n > MaxNominations {
			r.err = fmt.Errorf("wire: %d nominations exceed limit", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Nominations = append(m.Nominations, ids.PeerID(r.u32()))
		}
		m.Proof = decodeProof(r)
	case protocol.MsgRepairRequest:
		m.Block = int32(r.u32())
	case protocol.MsgRepair:
		m.Block = int32(r.u32())
		m.RepairData = r.bytesMax(MaxRepairBytes)
	case protocol.MsgEvaluationReceipt:
		if r.need(len(m.Receipt)) {
			copy(m.Receipt[:], r.buf[r.off:])
			r.off += len(m.Receipt)
		}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", byte(m.Type))
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(data)-r.off)
	}
	return m, nil
}
