package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/sched"
)

// sampleMsgs builds one representative message of every type.
func sampleMsgs() []*protocol.Msg {
	mbf := effort.NewMBF(effort.MBFParams{TableWords: 1 << 8, Steps: 64, Checkpoints: 4, VerifySegments: 2, Seed: 1})
	mbfProof, _ := mbf.Generate([]byte("ctx"), 2, 0.5)
	var nonce protocol.Nonce
	copy(nonce[:], "0123456789abcdef")
	var receipt effort.Receipt
	copy(receipt[:], "receipt-receipt-1234")
	return []*protocol.Msg{
		{
			Type: protocol.MsgPoll, AU: 3, PollID: 77, Poller: 1, Voter: 2,
			VoteBy: 1000, PollDeadline: 2000,
			Proof: effort.SimProof{Effort: 1.5, Genuine: true},
		},
		{
			Type: protocol.MsgPoll, AU: 3, PollID: 78, Poller: 1, Voter: 2,
			VoteBy: 1000, PollDeadline: 2000,
			Proof: mbfProof,
		},
		{
			Type: protocol.MsgPoll, AU: 1, PollID: 79, Poller: 9, Voter: 8,
			VoteBy: 5, PollDeadline: 6, // no proof
		},
		{Type: protocol.MsgPollAck, AU: 3, PollID: 77, Poller: 1, Voter: 2, Accept: true},
		{Type: protocol.MsgPollAck, AU: 3, PollID: 77, Poller: 1, Voter: 2, Accept: false, Refuse: protocol.RefuseBusy},
		{
			Type: protocol.MsgPollProof, AU: 3, PollID: 77, Poller: 1, Voter: 2,
			Nonce: nonce, Proof: effort.SimProof{Effort: 8, Genuine: true},
		},
		{
			Type: protocol.MsgVote, AU: 3, PollID: 77, Poller: 1, Voter: 2,
			Vote:        protocol.HashVote{Hashes: []content.Hash{{1}, {2}, {3}}},
			Nominations: []ids.PeerID{4, 5, 6},
			Proof:       effort.SimProof{Effort: 0.02, Genuine: true},
		},
		{
			Type: protocol.MsgVote, AU: 3, PollID: 77, Poller: 1, Voter: 2,
			Vote: protocol.SimVote{NumBlocks: 512, Dam: []content.DamageEntry{{Block: 9, Mark: 0xdeadbeef}}},
		},
		{Type: protocol.MsgRepairRequest, AU: 3, PollID: 77, Poller: 1, Voter: 2, Block: 42},
		{
			Type: protocol.MsgRepair, AU: 3, PollID: 77, Poller: 1, Voter: 2,
			Block: 42, RepairData: []byte("block content bytes"),
		},
		{Type: protocol.MsgEvaluationReceipt, AU: 3, PollID: 77, Poller: 1, Voter: 2, Receipt: receipt},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for i, m := range sampleMsgs() {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("msg %d (%v): encode: %v", i, m.Type, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("msg %d (%v): decode: %v", i, m.Type, err)
		}
		normalize(m)
		normalize(back)
		if !reflect.DeepEqual(m, back) {
			t.Errorf("msg %d (%v): round trip mismatch:\n got %+v\nwant %+v", i, m.Type, back, m)
		}
	}
}

// normalize clears unexported/unserialized state (the MBF binding) so
// DeepEqual compares wire-visible content.
func normalize(m *protocol.Msg) {
	if mp, ok := m.Proof.(*effort.MBFProof); ok {
		clone := *mp
		m.Proof = &clone
		effortUnbind(m.Proof.(*effort.MBFProof))
	}
}

// effortUnbind zeroes the internal binding via re-construction.
func effortUnbind(p *effort.MBFProof) {
	*p = effort.MBFProof{Units: p.Units, Checkpoints: p.Checkpoints, Digest: p.Digest, UnitCost: p.UnitCost}
}

func TestDecodedMBFProofVerifies(t *testing.T) {
	mbf := effort.NewMBF(effort.MBFParams{TableWords: 1 << 8, Steps: 64, Checkpoints: 4, VerifySegments: 4, Seed: 1})
	proof, _ := mbf.Generate([]byte("ctx"), 1, 1)
	m := &protocol.Msg{Type: protocol.MsgPollProof, AU: 1, PollID: 2, Poller: 3, Voter: 4, Proof: proof}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	mp, ok := back.Proof.(*effort.MBFProof)
	if !ok {
		t.Fatalf("proof decoded as %T", back.Proof)
	}
	mbf.Bind(mp)
	if !mbf.Verify(mp, []byte("ctx")) {
		t.Error("decoded proof does not verify")
	}
}

func TestTruncatedInputs(t *testing.T) {
	for i, m := range sampleMsgs() {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Errorf("msg %d: truncation at %d/%d accepted", i, cut, len(data))
				break
			}
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	data, _ := Encode(sampleMsgs()[0])
	if _, err := Decode(append(data, 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	if _, err := Decode([]byte{0xEE, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4}); err == nil {
		t.Error("unknown message type accepted")
	}
}

func TestHostileDimensionsRejected(t *testing.T) {
	// A Vote claiming 2^31 hashes must not allocate.
	var buf bytes.Buffer
	buf.Write([]byte{byte(protocol.MsgVote)})
	buf.Write([]byte{0, 0, 0, 1})             // au
	buf.Write(make([]byte, 8))                // pollID
	buf.Write([]byte{0, 0, 0, 1, 0, 0, 0, 2}) // poller, voter
	buf.Write([]byte{1})                      // voteHashes tag
	buf.Write([]byte{0x7F, 0xFF, 0xFF, 0xFF}) // count
	if _, err := Decode(buf.Bytes()); err == nil {
		t.Error("hostile hash count accepted")
	}
}

func TestFuzzDecodeNoPanic(t *testing.T) {
	rnd := prng.New(1234)
	err := quick.Check(func(seed uint64, n uint16) bool {
		data := make([]byte, int(n)%512)
		for i := range data {
			data[i] = byte(rnd.Uint64())
		}
		// Must not panic; errors are fine.
		Decode(data)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

// TestFuzzBitFlips: flipping any single byte of a valid encoding must not
// panic, and either errors or decodes to something well-formed.
func TestFuzzBitFlips(t *testing.T) {
	for _, m := range sampleMsgs() {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(data); i++ {
			mut := make([]byte, len(data))
			copy(mut, data)
			mut[i] ^= 0x5A
			Decode(mut) // must not panic
		}
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("nil message encoded")
	}
	if _, err := Encode(&protocol.Msg{Type: 0}); err == nil {
		t.Error("zero message type encoded")
	}
}

func TestNominationLimit(t *testing.T) {
	noms := make([]ids.PeerID, MaxNominations+1)
	m := &protocol.Msg{Type: protocol.MsgVote, Nominations: noms}
	if _, err := Encode(m); err == nil {
		t.Error("oversized nominations encoded")
	}
}

func TestDeadlinesSurvive(t *testing.T) {
	m := &protocol.Msg{
		Type: protocol.MsgPoll, AU: 1, PollID: 1, Poller: 1, Voter: 2,
		VoteBy: sched.Time(1<<60 + 7), PollDeadline: sched.Time(1<<61 + 3),
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.VoteBy != m.VoteBy || back.PollDeadline != m.PollDeadline {
		t.Error("large timestamps corrupted")
	}
}

// TestWireSizeModelsEncoding: the simulator times transfers using
// Msg.WireSize; for messages without effort proofs the model must match the
// real encoding closely, and for proof-bearing messages it must never be
// smaller than a same-shape real proof would occupy (simulated proofs are
// sized as-if-real, so the simulated network is never optimistically fast).
func TestWireSizeModelsEncoding(t *testing.T) {
	for i, m := range sampleMsgs() {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		model := m.WireSize()
		if _, symbolic := m.Vote.(protocol.SimVote); symbolic {
			// Symbolic votes are sized as the hash representation would be
			// (so network timing is representation-independent): the model
			// must dominate the sparse encoding.
			if model < len(data) {
				t.Errorf("msg %d (%v): symbolic model %d below encoding %d", i, m.Type, model, len(data))
			}
			continue
		}
		switch m.Proof.(type) {
		case nil:
			diff := model - len(data)
			if diff < -8 || diff > 8 {
				t.Errorf("msg %d (%v): modeled %d vs encoded %d", i, m.Type, model, len(data))
			}
		case *effort.MBFProof:
			if model < len(data)-32 {
				t.Errorf("msg %d (%v): model %d below encoding %d", i, m.Type, model, len(data))
			}
		case effort.SimProof:
			if model < len(data) {
				t.Errorf("msg %d (%v): sim-proof model %d below encoding %d", i, m.Type, model, len(data))
			}
		}
	}
}
