// Package promtext parses and validates the Prometheus text exposition
// format (version 0.0.4) that the admin control plane hand-writes. It exists
// so the two consumers of that text — the fleet harness, which merges
// scraped histograms across nodes, and the metrics-format lint in the test
// suite — share one strict reader instead of each growing a lenient ad-hoc
// one that silently accepts malformed output.
package promtext

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric name (including any _bucket/_sum/
// _count suffix), its label set and its value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family groups the samples of one declared metric family.
type Family struct {
	Name string
	Help string
	// Type is "counter", "gauge", "histogram" or "untyped" (no TYPE line).
	Type    string
	Samples []Sample
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// histogramSuffixes maps a histogram sample name to its family name, or
// returns the name unchanged.
func familyOf(name string, types map[string]string) string {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// Parse reads a complete exposition into families keyed by family name.
// It is strict: malformed lines, bad metric or label names, duplicate HELP
// or TYPE declarations, and unparseable values are errors, not skips.
func Parse(text string) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	types := make(map[string]string)
	ensure := func(name string) *Family {
		f := fams[name]
		if f == nil {
			f = &Family{Name: name, Type: "untyped"}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, found := strings.Cut(rest, " ")
			if !found || !nameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed HELP %q", ln+1, line)
			}
			f := ensure(name)
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			f.Help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 || !nameRe.MatchString(fields[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[1])
			}
			name := fields[0]
			if _, dup := types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			types[name] = fields[1]
			ensure(name).Type = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			// A bare "# HELP" / "# TYPE" with no payload is a malformed
			// declaration, not a comment.
			if f := strings.Fields(line[1:]); len(f) > 0 && (f[0] == "HELP" || f[0] == "TYPE") {
				return nil, fmt.Errorf("line %d: malformed %s %q", ln+1, f[0], line)
			}
			continue // other comments are legal and ignored
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		f := ensure(familyOf(s.Name, types))
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

// parseSample reads one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	// Name runs to the first '{' or space.
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	// No timestamps in our exposition: exactly one value field remains.
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("want exactly one value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels reads the inside of a {...} label set.
func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		if !labelRe.MatchString(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		rest := body[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		val, remainder, err := scanQuoted(rest)
		if err != nil {
			return nil, err
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val
		body = strings.TrimPrefix(strings.TrimSpace(remainder), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

// scanQuoted reads a leading double-quoted string (with \" \\ \n escapes)
// and returns the unquoted value plus the remainder.
func scanQuoted(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted string at %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c in %q", s[i], s)
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}

// BucketPoint is one cumulative histogram bucket.
type BucketPoint struct {
	LE    float64 // upper bound in seconds; +Inf for the last
	Count uint64  // cumulative observations <= LE
}

// Histogram extracts a histogram family's buckets (sorted by bound), sum and
// count, validating the shape: every _bucket carries an le label, bounds
// parse, cumulative counts are monotone, the +Inf bucket exists and equals
// _count, and _sum/_count appear exactly once.
func (f *Family) Histogram() (buckets []BucketPoint, sum float64, count uint64, err error) {
	if f.Type != "histogram" {
		return nil, 0, 0, fmt.Errorf("%s: type %s, not histogram", f.Name, f.Type)
	}
	var haveSum, haveCount bool
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return nil, 0, 0, fmt.Errorf("%s: bucket without le label", f.Name)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
				return nil, 0, 0, fmt.Errorf("%s: bad le %q: %w", f.Name, le, err)
			}
			if s.Value < 0 || s.Value != math.Trunc(s.Value) {
				return nil, 0, 0, fmt.Errorf("%s: bucket count %g not a whole number", f.Name, s.Value)
			}
			buckets = append(buckets, BucketPoint{LE: bound, Count: uint64(s.Value)})
		case f.Name + "_sum":
			if haveSum {
				return nil, 0, 0, fmt.Errorf("%s: duplicate _sum", f.Name)
			}
			haveSum, sum = true, s.Value
		case f.Name + "_count":
			if haveCount {
				return nil, 0, 0, fmt.Errorf("%s: duplicate _count", f.Name)
			}
			haveCount, count = true, uint64(s.Value)
		default:
			return nil, 0, 0, fmt.Errorf("%s: stray sample %s", f.Name, s.Name)
		}
	}
	if !haveSum || !haveCount {
		return nil, 0, 0, fmt.Errorf("%s: missing _sum or _count", f.Name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].LE < buckets[j].LE })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].LE == buckets[i-1].LE {
			return nil, 0, 0, fmt.Errorf("%s: duplicate bucket bound %g", f.Name, buckets[i].LE)
		}
		if buckets[i].Count < buckets[i-1].Count {
			return nil, 0, 0, fmt.Errorf("%s: bucket counts not cumulative at le=%g (%d < %d)",
				f.Name, buckets[i].LE, buckets[i].Count, buckets[i-1].Count)
		}
	}
	if len(buckets) == 0 || !math.IsInf(buckets[len(buckets)-1].LE, 1) {
		return nil, 0, 0, fmt.Errorf("%s: missing +Inf bucket", f.Name)
	}
	if inf := buckets[len(buckets)-1].Count; inf != count {
		return nil, 0, 0, fmt.Errorf("%s: +Inf bucket %d != _count %d", f.Name, inf, count)
	}
	return buckets, sum, count, nil
}

// Lint validates a whole exposition: it parses, every histogram family passes
// the Histogram shape checks, and every family with samples carrying a
// counter/gauge/histogram TYPE also carries HELP. Returns the parsed families
// on success so callers can make further assertions.
func Lint(text string) (map[string]*Family, error) {
	fams, err := Parse(text)
	if err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if _, _, _, err := f.Histogram(); err != nil {
				return nil, err
			}
		}
		if f.Type != "untyped" && len(f.Samples) > 0 && f.Help == "" {
			return nil, fmt.Errorf("%s: typed family without HELP", f.Name)
		}
	}
	return fams, nil
}

// Value returns the value of the family's single unlabeled sample. Handy for
// flat counter/gauge lookups in tests and the fleet scraper.
func (f *Family) Value() (float64, bool) {
	if len(f.Samples) != 1 {
		return 0, false
	}
	return f.Samples[0].Value, true
}
