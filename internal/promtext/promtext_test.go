package promtext

import (
	"math"
	"strings"
	"testing"
)

const goodExposition = `# HELP lockss_up Whether the node is up.
# TYPE lockss_up gauge
lockss_up 1
# HELP lockss_polls_total Polls concluded.
# TYPE lockss_polls_total counter
lockss_polls_total 42
# HELP lockss_build_info Build metadata.
# TYPE lockss_build_info gauge
lockss_build_info{version="v1.2",goversion="go1.x"} 1
# HELP lockss_poll_seconds Poll duration.
# TYPE lockss_poll_seconds histogram
lockss_poll_seconds_bucket{le="0.5"} 3
lockss_poll_seconds_bucket{le="1"} 5
lockss_poll_seconds_bucket{le="+Inf"} 6
lockss_poll_seconds_sum 4.25
lockss_poll_seconds_count 6
`

func TestParseGoodExposition(t *testing.T) {
	fams, err := Parse(goodExposition)
	if err != nil {
		t.Fatal(err)
	}
	up := fams["lockss_up"]
	if up == nil || up.Type != "gauge" || up.Help == "" {
		t.Fatalf("lockss_up family: %+v", up)
	}
	if v, ok := up.Value(); !ok || v != 1 {
		t.Errorf("lockss_up value = %v, %v", v, ok)
	}
	bi := fams["lockss_build_info"]
	if bi == nil || len(bi.Samples) != 1 {
		t.Fatalf("build_info family: %+v", bi)
	}
	if got := bi.Samples[0].Labels; got["version"] != "v1.2" || got["goversion"] != "go1.x" {
		t.Errorf("build_info labels: %v", got)
	}

	h := fams["lockss_poll_seconds"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family: %+v", h)
	}
	buckets, sum, count, err := h.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 || sum != 4.25 || len(buckets) != 3 {
		t.Fatalf("histogram = %v sum=%g count=%d", buckets, sum, count)
	}
	if buckets[0].LE != 0.5 || buckets[0].Count != 3 {
		t.Errorf("first bucket: %+v", buckets[0])
	}
	if !math.IsInf(buckets[2].LE, 1) || buckets[2].Count != 6 {
		t.Errorf("+Inf bucket: %+v", buckets[2])
	}
	if _, err := Lint(goodExposition); err != nil {
		t.Errorf("Lint rejected good exposition: %v", err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"bare word", "not a metric line\n"},
		{"bad metric name", "2x_bad 1\n"},
		{"missing value", "lockss_up\n"},
		{"two values", "lockss_up 1 2\n"},
		{"bad value", "lockss_up one\n"},
		{"unterminated labels", `m{a="1" 3` + "\n"},
		{"unterminated string", `m{a="1} 3` + "\n"},
		{"unquoted label", "m{a=1} 3\n"},
		{"bad label name", `m{1a="x"} 3` + "\n"},
		{"duplicate label", `m{a="1",a="2"} 3` + "\n"},
		{"bad escape", `m{a="\q"} 3` + "\n"},
		{"malformed HELP", "# HELP\n"},
		{"duplicate HELP", "# HELP m one\n# HELP m two\nm 1\n"},
		{"malformed TYPE", "# TYPE m\n"},
		{"unknown TYPE", "# TYPE m ring\n"},
		{"duplicate TYPE", "# TYPE m gauge\n# TYPE m counter\nm 1\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.text)
		}
	}
}

func TestLabelEscapes(t *testing.T) {
	fams, err := Parse("m{a=\"x\\\\y\\\"z\\nw\"} 1\n")
	if err != nil {
		t.Fatal(err)
	}
	got := fams["m"].Samples[0].Labels["a"]
	if got != "x\\y\"z\nw" {
		t.Errorf("unescaped label = %q", got)
	}
}

func TestHistogramShapeChecks(t *testing.T) {
	mk := func(body string) string {
		return "# HELP h x\n# TYPE h histogram\n" + body
	}
	cases := []struct {
		name string
		text string
	}{
		{"bucket without le", mk("h_bucket 1\nh_sum 0\nh_count 1\n")},
		{"bad le", mk(`h_bucket{le="wide"} 1` + "\nh_sum 0\nh_count 1\n")},
		{"fractional count", mk(`h_bucket{le="+Inf"} 1.5` + "\nh_sum 0\nh_count 1\n")},
		{"missing +Inf", mk(`h_bucket{le="1"} 1` + "\nh_sum 0\nh_count 1\n")},
		{"non-cumulative", mk(`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\nh_sum 0\nh_count 5\n")},
		{"inf != count", mk(`h_bucket{le="+Inf"} 4` + "\nh_sum 0\nh_count 5\n")},
		{"duplicate bound", mk(`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 0\nh_count 2\n")},
		{"duplicate sum", mk(`h_bucket{le="+Inf"} 1` + "\nh_sum 0\nh_sum 0\nh_count 1\n")},
		{"missing count", mk(`h_bucket{le="+Inf"} 1` + "\nh_sum 0\n")},
	}
	for _, c := range cases {
		fams, err := Parse(c.text)
		if err != nil {
			// Some shapes fail at parse time; either layer may reject.
			continue
		}
		f := fams["h"]
		if f == nil {
			t.Errorf("%s: family folded away", c.name)
			continue
		}
		if _, _, _, err := f.Histogram(); err == nil {
			t.Errorf("%s: Histogram() accepted %q", c.name, c.text)
		}
	}
	// A sample in the family that is neither _bucket, _sum nor _count is a
	// shape error (unreachable through Parse, which folds only those three
	// suffixes, but the check guards hand-built families).
	stray := &Family{Name: "h", Type: "histogram", Samples: []Sample{{Name: "h_quantile", Value: 3}}}
	if _, _, _, err := stray.Histogram(); err == nil {
		t.Error("Histogram() accepted a stray sample")
	}

	// Histogram() on a non-histogram family is an error, not a zero value.
	fams, err := Parse("# HELP g x\n# TYPE g gauge\ng 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := fams["g"].Histogram(); err == nil {
		t.Error("Histogram() accepted a gauge family")
	}
}

func TestLintRequiresHelp(t *testing.T) {
	if _, err := Lint("# TYPE m gauge\nm 1\n"); err == nil || !strings.Contains(err.Error(), "HELP") {
		t.Errorf("Lint accepted typed family without HELP: %v", err)
	}
	// Untyped samples without declarations are fine (flat internal counters).
	if _, err := Lint("m 1\n"); err != nil {
		t.Errorf("Lint rejected untyped sample: %v", err)
	}
}
