package ids

import "testing"

func TestMinionRange(t *testing.T) {
	if PeerID(1).IsMinion() || NoPeer.IsMinion() {
		t.Error("loyal IDs classified as minions")
	}
	if !MinionBase.IsMinion() || !(MinionBase + 1000000).IsMinion() {
		t.Error("minion IDs not recognized")
	}
}

func TestStrings(t *testing.T) {
	if NoPeer.String() != "peer:none" {
		t.Errorf("NoPeer = %q", NoPeer.String())
	}
	if PeerID(7).String() != "peer:7" {
		t.Errorf("PeerID(7) = %q", PeerID(7).String())
	}
	if (MinionBase + 3).String() != "minion:3" {
		t.Errorf("minion = %q", (MinionBase + 3).String())
	}
}
