// Package ids defines the identifier types shared across the LOCKSS
// packages.
package ids

import "fmt"

// PeerID identifies a network identity. Loyal peers get small IDs assigned
// at population build time; adversary minions draw from a reserved high
// range (the adversary has unconstrained identities, so minion IDs are
// cheap to mint).
type PeerID uint32

// NoPeer is the zero PeerID; it is never assigned.
const NoPeer PeerID = 0

// MinionBase is the first PeerID in the adversary's reserved range.
const MinionBase PeerID = 1 << 24

// IsMinion reports whether id belongs to the adversary's reserved range.
// Loyal peers never inspect this — it exists for metrics and assertions
// only; to the protocol an identity is just an identity.
func (id PeerID) IsMinion() bool { return id >= MinionBase }

func (id PeerID) String() string {
	if id == NoPeer {
		return "peer:none"
	}
	if id.IsMinion() {
		return fmt.Sprintf("minion:%d", uint32(id-MinionBase))
	}
	return fmt.Sprintf("peer:%d", uint32(id))
}
