package netsim

import (
	"testing"
	"time"

	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/sim"
)

func twoNodes(t *testing.T) (*sim.Engine, *Network, *[]string) {
	t.Helper()
	eng := sim.NewEngine()
	n := New(eng)
	var got []string
	n.AddNode(1, Link{Bandwidth: T1, Latency: 5 * time.Millisecond}, func(from ids.PeerID, payload any, size int) {
		got = append(got, payload.(string))
	})
	n.AddNode(2, Link{Bandwidth: FastEth, Latency: 10 * time.Millisecond}, func(from ids.PeerID, payload any, size int) {
		got = append(got, "2:"+payload.(string))
	})
	return eng, n, &got
}

func TestDeliveryAndTiming(t *testing.T) {
	eng, n, got := twoNodes(t)
	// 1500 bytes over min(1.5Mbps, 100Mbps) = 8ms serialization + 15ms
	// latency = 23ms.
	n.Send(2, 1, "hello", 1500)
	want := n.TransferTime(2, 1, 1500)
	if want != 23*time.Millisecond {
		t.Fatalf("transfer time %v, want 23ms", want)
	}
	eng.Run(sim.Time(want) - 1)
	if len(*got) != 0 {
		t.Fatal("delivered early")
	}
	eng.Run(sim.Time(want))
	if len(*got) != 1 || (*got)[0] != "hello" {
		t.Fatalf("delivery failed: %v", *got)
	}
	if n.Delivered != 1 || n.Sent != 1 || n.BytesDelivered != 1500 {
		t.Errorf("stats wrong: %+v", *n)
	}
}

func TestUnknownEndpointsDrop(t *testing.T) {
	eng, n, got := twoNodes(t)
	n.Send(1, 99, "x", 10)
	n.Send(99, 1, "y", 10)
	eng.Run(sim.Time(time.Second))
	if len(*got) != 0 {
		t.Error("messages to/from unknown nodes delivered")
	}
}

func TestPipeStoppageAtSend(t *testing.T) {
	eng, n, got := twoNodes(t)
	n.SetStopped(1, true)
	n.Send(2, 1, "blocked", 10)
	n.Send(1, 2, "blocked-out", 10)
	eng.Run(sim.Time(time.Second))
	if len(*got) != 0 {
		t.Error("stopped node communicated")
	}
	if n.DroppedStoppage != 2 {
		t.Errorf("dropped count %d", n.DroppedStoppage)
	}
	// Restoration lets traffic flow again.
	n.SetStopped(1, false)
	if n.Stopped(1) {
		t.Error("Stopped state wrong")
	}
	n.Send(2, 1, "ok", 10)
	eng.Run(sim.Time(2 * time.Second))
	if len(*got) != 1 {
		t.Error("restored node did not receive")
	}
}

func TestPipeStoppageInFlight(t *testing.T) {
	eng, n, got := twoNodes(t)
	n.Send(2, 1, "in-flight", 1500)
	// The attack starts while the message is in flight.
	eng.At(sim.Time(time.Millisecond), func() { n.SetStopped(1, true) })
	eng.Run(sim.Time(time.Second))
	if len(*got) != 0 {
		t.Error("in-flight message survived pipe stoppage")
	}
}

func TestRandomLinkDistribution(t *testing.T) {
	rnd := prng.New(5)
	counts := map[Bps]int{}
	for i := 0; i < 3000; i++ {
		l := RandomLink(rnd)
		counts[l.Bandwidth]++
		if l.Latency < time.Millisecond || l.Latency > 30*time.Millisecond {
			t.Fatalf("latency %v out of [1ms,30ms]", l.Latency)
		}
	}
	for _, bw := range []Bps{T1, Ethernet, FastEth} {
		if c := counts[bw]; c < 800 || c > 1200 {
			t.Errorf("bandwidth %v drawn %d/3000 times", bw, c)
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng)
	n.AddNode(1, Link{Bandwidth: T1, Latency: time.Millisecond}, func(ids.PeerID, any, int) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	n.AddNode(1, Link{Bandwidth: T1, Latency: time.Millisecond}, func(ids.PeerID, any, int) {})
}

func TestNodeIDs(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng)
	for i := 1; i <= 5; i++ {
		n.AddNode(ids.PeerID(i), Link{Bandwidth: T1, Latency: time.Millisecond}, func(ids.PeerID, any, int) {})
	}
	if len(n.NodeIDs()) != 5 {
		t.Errorf("NodeIDs returned %d", len(n.NodeIDs()))
	}
}

func TestSetHandler(t *testing.T) {
	eng, n, got := twoNodes(t)
	replaced := false
	n.SetHandler(1, func(from ids.PeerID, payload any, size int) { replaced = true })
	n.Send(2, 1, "x", 10)
	eng.Run(sim.Time(time.Second))
	if !replaced || len(*got) != 0 {
		t.Error("handler replacement failed")
	}
}
