// Package netsim implements the simulated network: per-node access links
// with bandwidth and latency, message transfer timing, and the pipe-stoppage
// control surface the network-level adversary uses.
//
// Following the paper (§6.2), the model accounts for network delays but not
// congestion: transfer time for a message is the sum of both endpoints'
// latencies plus serialization at the slower of the two access links. Pipe
// stoppage suppresses all communication to and from a victim.
//
// A Network can span several event engines (sharded execution): each node is
// pinned to one engine, same-engine sends schedule directly (the legacy
// path), and cross-engine sends are deferred into per-source outboxes that
// the shard coordinator drains at window barriers in a canonical order, so
// delivery order — including same-instant ties — is byte-identical to a
// single-engine run.
package netsim

import (
	"fmt"
	"sort"
	"time"

	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/sim"
)

// Bps is a link bandwidth in bits per second.
type Bps float64

// Standard access-link tiers from the paper: 1.5, 10 and 100 Mbps, assigned
// uniformly at random.
const (
	T1       Bps = 1.5e6
	Ethernet Bps = 10e6
	FastEth  Bps = 100e6
)

// Link describes a node's access link.
type Link struct {
	Bandwidth Bps
	Latency   sim.Duration
}

// RandomLink draws a link from the paper's distribution: bandwidth uniform
// over {1.5, 10, 100} Mbps, latency uniform over [1ms, 30ms].
func RandomLink(rnd *prng.Source) Link {
	bws := [...]Bps{T1, Ethernet, FastEth}
	lat := time.Duration(1+rnd.Int63n(30)) * time.Millisecond
	return Link{Bandwidth: bws[rnd.Intn(len(bws))], Latency: lat}
}

// Handler receives a delivered message.
type Handler func(from ids.PeerID, payload any, size int)

type node struct {
	link    Link
	handler Handler
	stopped bool
	shard   int32
}

// delivery is one in-flight message. Records are pooled per shard: a run
// delivers millions of messages but only a bounded number are in flight at
// once, so each carries a pre-bound run callback instead of a fresh closure
// per Send.
type delivery struct {
	n        *Network
	sh       *netShard
	from     ids.PeerID
	src, dst *node
	payload  any
	size     int
	run      func() // bound to (*delivery).deliver once, when first allocated
}

// deliver completes the transfer and recycles the record. The record is
// recycled before the handler runs (all fields are copied out first), so a
// handler that sends in response reuses it immediately.
func (d *delivery) deliver() {
	n, sh, from, src, dst, payload, size := d.n, d.sh, d.from, d.src, d.dst, d.payload, d.size
	d.src, d.dst, d.payload = nil, nil, nil
	sh.free = append(sh.free, d)
	// Re-check at delivery: an attack that started mid-flight kills the
	// message, matching the paper's "suppresses all communication".
	if src.stopped || dst.stopped {
		if n.sharded {
			sh.droppedStoppage++
		} else {
			n.DroppedStoppage++
		}
		return
	}
	if n.sharded {
		sh.delivered++
		sh.bytesDelivered += uint64(size)
	} else {
		n.Delivered++
		n.BytesDelivered += uint64(size)
	}
	dst.handler(from, payload, size)
}

// netShard is the per-engine slice of network state. Each shard's engine
// goroutine owns its pool, counters and outbox during windows; the
// coordinator owns all of them at barriers.
type netShard struct {
	eng  *sim.Engine
	free []*delivery

	sent            uint64
	delivered       uint64
	droppedStoppage uint64
	bytesDelivered  uint64

	// outbox holds this shard's deferred cross-shard sends until the next
	// window barrier.
	outbox []crossMsg
}

// crossMsg is one deferred cross-shard delivery. The canonical drain key is
// (at, sendAt, lineage, srcShard, idx): arrival time first; then the send
// instant (a sequential engine schedules deliveries in send order); then the
// sender event's causal lineage, which reproduces the sequential FIFO order
// for sends tied to the same instant on different shards (fan-out over a
// millisecond latency grid makes such ties systematic, not rare); then
// source shard and per-source append order as the final total-order anchor.
type crossMsg struct {
	at, sendAt sim.Time
	lineage    uint64
	srcShard   int32
	idx        int32
	src, dst   *node
	from       ids.PeerID
	payload    any
	size       int
}

// Network routes messages between simulated nodes over one or more event
// engines.
type Network struct {
	nodes   map[ids.PeerID]*node
	shards  []netShard
	sharded bool
	// lineageCtr is shared with the engines' build-time lineage counter so
	// drain-assigned lineages stay globally monotone with it.
	lineageCtr *uint64
	scratch    []crossMsg

	// Stats. On a sharded network these are folded from the per-shard
	// counters by FoldStats (world.Run does this); on a single-engine
	// network they update live.
	Sent      uint64
	Delivered uint64
	// DroppedStoppage counts messages suppressed by pipe stoppage.
	DroppedStoppage uint64
	// BytesDelivered totals delivered payload sizes.
	BytesDelivered uint64
}

// New returns an empty network bound to the engine.
func New(eng *sim.Engine) *Network {
	return NewSized(eng, 0)
}

// NewSized returns an empty network with the node table preallocated for the
// expected population size.
func NewSized(eng *sim.Engine, nodes int) *Network {
	return NewSharded([]*sim.Engine{eng}, nil, nodes)
}

// NewSharded returns a network spanning the given engines (engines[0] is the
// control shard). lineageCtr, required when len(engines) > 1, is the shared
// lineage counter also attached to the engines.
func NewSharded(engines []*sim.Engine, lineageCtr *uint64, nodes int) *Network {
	if nodes < 0 {
		nodes = 0
	}
	if len(engines) == 0 {
		panic("netsim: need at least one engine")
	}
	if len(engines) > 1 && lineageCtr == nil {
		panic("netsim: sharded network needs a lineage counter")
	}
	n := &Network{
		nodes:      make(map[ids.PeerID]*node, nodes),
		shards:     make([]netShard, len(engines)),
		sharded:    len(engines) > 1,
		lineageCtr: lineageCtr,
	}
	for i, e := range engines {
		n.shards[i].eng = e
	}
	return n
}

// AddNode registers a node on the control shard. Registering an existing ID
// panics: IDs are assigned centrally at population build time.
func (n *Network) AddNode(id ids.PeerID, link Link, h Handler) {
	n.AddNodeOn(0, id, link, h)
}

// AddNodeOn registers a node pinned to the given shard's engine. Mid-run
// registration is only legal from control-shard events (all other shards are
// quiescent at that point; the world's churn path relies on this).
func (n *Network) AddNodeOn(shard int, id ids.PeerID, link Link, h Handler) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", id))
	}
	if h == nil {
		panic("netsim: nil handler")
	}
	if shard < 0 || shard >= len(n.shards) {
		panic(fmt.Sprintf("netsim: node %v on unknown shard %d", id, shard))
	}
	n.nodes[id] = &node{link: link, handler: h, shard: int32(shard)}
}

// SetHandler replaces a node's handler (used by tests).
func (n *Network) SetHandler(id ids.PeerID, h Handler) {
	nd, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %v", id))
	}
	nd.handler = h
}

// SetStopped marks a node's pipe as stopped (true) or restored (false).
// While stopped, all messages to and from the node are suppressed, both
// newly sent and in flight. On a sharded network this must only be called
// from control-shard events or between runs.
func (n *Network) SetStopped(id ids.PeerID, stopped bool) {
	if nd, ok := n.nodes[id]; ok {
		nd.stopped = stopped
	}
}

// Stopped reports whether a node's pipe is currently stopped.
func (n *Network) Stopped(id ids.PeerID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.stopped
}

// TransferTime returns the modeled delivery delay for size bytes between the
// two nodes.
func (n *Network) TransferTime(from, to ids.PeerID, size int) sim.Duration {
	a, b := n.nodes[from], n.nodes[to]
	if a == nil || b == nil {
		return 0
	}
	bw := a.link.Bandwidth
	if b.link.Bandwidth < bw {
		bw = b.link.Bandwidth
	}
	ser := sim.Duration(float64(size*8) / float64(bw) * float64(sim.Second))
	return a.link.Latency + b.link.Latency + ser
}

// LookaheadFloor returns a lower bound on cross-node transfer time over the
// currently registered population: twice the minimum access latency
// (serialization only adds). Zero when no nodes are registered.
func (n *Network) LookaheadFloor() sim.Duration {
	var min sim.Duration
	for _, nd := range n.nodes {
		if min == 0 || nd.link.Latency < min {
			min = nd.link.Latency
		}
	}
	return 2 * min
}

// alloc takes a pooled delivery for the shard, or grows the pool.
func (n *Network) alloc(sh *netShard) *delivery {
	if k := len(sh.free); k > 0 {
		d := sh.free[k-1]
		sh.free[k-1] = nil
		sh.free = sh.free[:k-1]
		return d
	}
	d := &delivery{n: n, sh: sh}
	d.run = d.deliver
	return d
}

// Send dispatches payload of the given wire size from one node to another.
// Unknown endpoints and stopped pipes silently drop (the sender learns
// nothing, as in the real network). The call must come from the sending
// node's own shard (protocol sends always do; the adversary and churn act
// from the control shard, where their nodes live).
func (n *Network) Send(from, to ids.PeerID, payload any, size int) {
	src, dst := n.nodes[from], n.nodes[to]
	if !n.sharded {
		n.Sent++
		if src == nil || dst == nil {
			return
		}
		if src.stopped || dst.stopped {
			n.DroppedStoppage++
			return
		}
		sh := &n.shards[0]
		d := n.alloc(sh)
		d.from, d.src, d.dst, d.payload, d.size = from, src, dst, payload, size
		sh.eng.After(n.TransferTime(from, to, size), d.run)
		return
	}
	shardIdx := int32(0)
	if src != nil {
		shardIdx = src.shard
	}
	sh := &n.shards[shardIdx]
	sh.sent++
	if src == nil || dst == nil {
		return
	}
	if src.stopped || dst.stopped {
		sh.droppedStoppage++
		return
	}
	delay := n.TransferTime(from, to, size)
	if dst.shard == src.shard {
		d := n.alloc(sh)
		d.from, d.src, d.dst, d.payload, d.size = from, src, dst, payload, size
		sh.eng.After(delay, d.run)
		return
	}
	now := sh.eng.Now()
	sh.outbox = append(sh.outbox, crossMsg{
		at:       now.Add(delay),
		sendAt:   now,
		lineage:  sh.eng.CurLineage(),
		srcShard: src.shard,
		idx:      int32(len(sh.outbox)),
		src:      src,
		dst:      dst,
		from:     from,
		payload:  payload,
		size:     size,
	})
}

// Drain schedules all deferred cross-shard deliveries in canonical order,
// stamping each with a fresh globally-monotone lineage. The coordinator
// calls it at every window barrier, when all engines are quiescent.
func (n *Network) Drain() {
	n.scratch = n.scratch[:0]
	for s := range n.shards {
		sh := &n.shards[s]
		n.scratch = append(n.scratch, sh.outbox...)
		for i := range sh.outbox {
			sh.outbox[i].payload = nil
			sh.outbox[i].src = nil
			sh.outbox[i].dst = nil
		}
		sh.outbox = sh.outbox[:0]
	}
	ms := n.scratch
	sort.Slice(ms, func(i, j int) bool {
		a, b := &ms[i], &ms[j]
		switch {
		case a.at != b.at:
			return a.at < b.at
		case a.sendAt != b.sendAt:
			return a.sendAt < b.sendAt
		case a.lineage != b.lineage:
			return a.lineage < b.lineage
		case a.srcShard != b.srcShard:
			return a.srcShard < b.srcShard
		default:
			return a.idx < b.idx
		}
	})
	for i := range ms {
		m := &ms[i]
		*n.lineageCtr++
		sh := &n.shards[m.dst.shard]
		d := n.alloc(sh)
		d.from, d.src, d.dst, d.payload, d.size = m.from, m.src, m.dst, m.payload, m.size
		sh.eng.AtLineage(m.at, *n.lineageCtr, d.run)
		m.payload, m.src, m.dst = nil, nil, nil
	}
}

// FoldStats sums per-shard counters into the exported stats fields. Call
// once, after a sharded run completes; single-engine networks keep the
// exported fields live and need no fold.
func (n *Network) FoldStats() {
	if !n.sharded {
		return
	}
	n.Sent, n.Delivered, n.DroppedStoppage, n.BytesDelivered = 0, 0, 0, 0
	for s := range n.shards {
		sh := &n.shards[s]
		n.Sent += sh.sent
		n.Delivered += sh.delivered
		n.DroppedStoppage += sh.droppedStoppage
		n.BytesDelivered += sh.bytesDelivered
	}
}

// NodeIDs returns all registered node IDs in unspecified order.
func (n *Network) NodeIDs() []ids.PeerID {
	out := make([]ids.PeerID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}
