// Package netsim implements the simulated network: per-node access links
// with bandwidth and latency, message transfer timing, and the pipe-stoppage
// control surface the network-level adversary uses.
//
// Following the paper (§6.2), the model accounts for network delays but not
// congestion: transfer time for a message is the sum of both endpoints'
// latencies plus serialization at the slower of the two access links. Pipe
// stoppage suppresses all communication to and from a victim.
package netsim

import (
	"fmt"
	"time"

	"lockss/internal/ids"
	"lockss/internal/prng"
	"lockss/internal/sim"
)

// Bps is a link bandwidth in bits per second.
type Bps float64

// Standard access-link tiers from the paper: 1.5, 10 and 100 Mbps, assigned
// uniformly at random.
const (
	T1       Bps = 1.5e6
	Ethernet Bps = 10e6
	FastEth  Bps = 100e6
)

// Link describes a node's access link.
type Link struct {
	Bandwidth Bps
	Latency   sim.Duration
}

// RandomLink draws a link from the paper's distribution: bandwidth uniform
// over {1.5, 10, 100} Mbps, latency uniform over [1ms, 30ms].
func RandomLink(rnd *prng.Source) Link {
	bws := [...]Bps{T1, Ethernet, FastEth}
	lat := time.Duration(1+rnd.Int63n(30)) * time.Millisecond
	return Link{Bandwidth: bws[rnd.Intn(len(bws))], Latency: lat}
}

// Handler receives a delivered message.
type Handler func(from ids.PeerID, payload any, size int)

type node struct {
	link    Link
	handler Handler
	stopped bool
}

// delivery is one in-flight message. Records are pooled on the Network: a
// run delivers millions of messages but only a bounded number are in flight
// at once, so each carries a pre-bound run callback instead of a fresh
// closure per Send.
type delivery struct {
	n        *Network
	from     ids.PeerID
	src, dst *node
	payload  any
	size     int
	run      func() // bound to (*delivery).deliver once, when first allocated
}

// deliver completes the transfer and recycles the record. The record is
// recycled before the handler runs (all fields are copied out first), so a
// handler that sends in response reuses it immediately.
func (d *delivery) deliver() {
	n, from, src, dst, payload, size := d.n, d.from, d.src, d.dst, d.payload, d.size
	d.src, d.dst, d.payload = nil, nil, nil
	n.free = append(n.free, d)
	// Re-check at delivery: an attack that started mid-flight kills the
	// message, matching the paper's "suppresses all communication".
	if src.stopped || dst.stopped {
		n.DroppedStoppage++
		return
	}
	n.Delivered++
	n.BytesDelivered += uint64(size)
	dst.handler(from, payload, size)
}

// Network routes messages between simulated nodes over the event engine.
type Network struct {
	eng   *sim.Engine
	nodes map[ids.PeerID]*node
	free  []*delivery

	// Stats.
	Sent      uint64
	Delivered uint64
	// DroppedStoppage counts messages suppressed by pipe stoppage.
	DroppedStoppage uint64
	// BytesDelivered totals delivered payload sizes.
	BytesDelivered uint64
}

// New returns an empty network bound to the engine.
func New(eng *sim.Engine) *Network {
	return NewSized(eng, 0)
}

// NewSized returns an empty network with the node table preallocated for the
// expected population size.
func NewSized(eng *sim.Engine, nodes int) *Network {
	if nodes < 0 {
		nodes = 0
	}
	return &Network{eng: eng, nodes: make(map[ids.PeerID]*node, nodes)}
}

// AddNode registers a node. Registering an existing ID panics: IDs are
// assigned centrally at population build time.
func (n *Network) AddNode(id ids.PeerID, link Link, h Handler) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", id))
	}
	if h == nil {
		panic("netsim: nil handler")
	}
	n.nodes[id] = &node{link: link, handler: h}
}

// SetHandler replaces a node's handler (used by tests).
func (n *Network) SetHandler(id ids.PeerID, h Handler) {
	nd, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown node %v", id))
	}
	nd.handler = h
}

// SetStopped marks a node's pipe as stopped (true) or restored (false).
// While stopped, all messages to and from the node are suppressed, both
// newly sent and in flight.
func (n *Network) SetStopped(id ids.PeerID, stopped bool) {
	if nd, ok := n.nodes[id]; ok {
		nd.stopped = stopped
	}
}

// Stopped reports whether a node's pipe is currently stopped.
func (n *Network) Stopped(id ids.PeerID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.stopped
}

// TransferTime returns the modeled delivery delay for size bytes between the
// two nodes.
func (n *Network) TransferTime(from, to ids.PeerID, size int) sim.Duration {
	a, b := n.nodes[from], n.nodes[to]
	if a == nil || b == nil {
		return 0
	}
	bw := a.link.Bandwidth
	if b.link.Bandwidth < bw {
		bw = b.link.Bandwidth
	}
	ser := sim.Duration(float64(size*8) / float64(bw) * float64(sim.Second))
	return a.link.Latency + b.link.Latency + ser
}

// Send dispatches payload of the given wire size from one node to another.
// Unknown endpoints and stopped pipes silently drop (the sender learns
// nothing, as in the real network).
func (n *Network) Send(from, to ids.PeerID, payload any, size int) {
	n.Sent++
	src, dst := n.nodes[from], n.nodes[to]
	if src == nil || dst == nil {
		return
	}
	if src.stopped || dst.stopped {
		n.DroppedStoppage++
		return
	}
	delay := n.TransferTime(from, to, size)
	var d *delivery
	if k := len(n.free); k > 0 {
		d = n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
	} else {
		d = &delivery{n: n}
		d.run = d.deliver
	}
	d.from, d.src, d.dst, d.payload, d.size = from, src, dst, payload, size
	n.eng.After(delay, d.run)
}

// NodeIDs returns all registered node IDs in unspecified order.
func (n *Network) NodeIDs() []ids.PeerID {
	out := make([]ids.PeerID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}
