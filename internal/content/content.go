// Package content models archival units (AUs), their block-structured
// replicas, storage damage ("bit rot"), and the block hashing that votes are
// built from.
//
// Three replica implementations share the Replica interface:
//
//   - RealReplica holds actual bytes in memory and hashes them with SHA-256.
//     The real node's synthetic demos, the examples and the integration
//     tests use it.
//   - store.Replica (internal/store) keeps the bytes on disk behind a
//     crash-safe manifest and streams its vote hashes from the block file;
//     it is the durable backend the preservation node runs on.
//   - SimReplica is symbolic: it tracks only which blocks differ from the
//     publisher's correct content, as a sparse set of damage marks. At
//     simulation scale (100 peers x 600 AUs x 0.5 GB) symbolic replicas
//     reproduce exactly the agreement/disagreement pattern of real ones (a
//     property test checks this equivalence) at negligible memory cost.
//
// Every replica carries a salt so that independent damage events produce
// distinct corrupt content: two peers whose replicas rot at the same block
// must disagree with each other as well as with the correct content.
package content

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"slices"
)

// AUID identifies an archival unit (in the target application, a year's run
// of an on-line journal).
type AUID uint32

// Hash is a block hash. Votes carry one running hash per block boundary.
type Hash [32]byte

// AUSpec describes an archival unit's published shape.
type AUSpec struct {
	ID AUID
	// Name is a human-readable title, e.g. "J. Irreproducible Results 2004".
	Name string
	// Size is the total content size in bytes.
	Size int64
	// BlockSize is the audit/repair granularity in bytes.
	BlockSize int64
}

// Blocks returns the number of blocks in the AU.
func (s AUSpec) Blocks() int {
	if s.BlockSize <= 0 {
		return 1
	}
	n := s.Size / s.BlockSize
	if s.Size%s.BlockSize != 0 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return int(n)
}

func (s AUSpec) String() string {
	return fmt.Sprintf("AU%d(%q %dB/%dB)", s.ID, s.Name, s.Size, s.BlockSize)
}

// Mark identifies the content variant occupying a block: zero means the
// publisher's correct content, any other value is a distinct corruption.
type Mark uint64

// DamageEntry reports one damaged block in a replica snapshot.
type DamageEntry struct {
	Block int
	Mark  Mark
}

// Replica is one peer's copy of an AU. Implementations are not safe for
// concurrent use; in the simulator each replica belongs to one peer, and the
// real node serializes access through its scheduler.
type Replica interface {
	// Spec returns the AU's shape.
	Spec() AUSpec
	// VoteHashes returns the running hash at each block boundary for the
	// replica's current content, keyed by the poll nonce. This is the body
	// of a Vote message.
	VoteHashes(nonce []byte) []Hash
	// Snapshot returns the replica's damaged blocks, sorted by block index.
	// The protocol itself never consults it; symbolic votes and damage
	// metrics do.
	Snapshot() []DamageEntry
	// Damage corrupts block i with fresh, replica-unique corrupt content.
	// Out-of-range indices return false.
	Damage(i int) bool
	// RepairBlock returns repair data for block i suitable for ApplyRepair
	// on another replica of the same AU.
	RepairBlock(i int) ([]byte, error)
	// ApplyRepair overwrites block i with repair data received from a peer.
	ApplyRepair(i int, data []byte) error
	// Damaged reports whether any block differs from the correct content.
	Damaged() bool
	// Generation returns a counter that changes on every content mutation
	// (damage and repair), so callers can key caches of derived data — vote
	// bodies, snapshots — on the replica's state.
	Generation() uint64
}

// VoteHasher chains a replica's block hashes through one digest: the
// boundary hash at block i is H(prev || nonce || block-id || payload). All
// the buffers that cross the hash.Hash interface boundary (and would
// therefore escape per call) live in this struct, so hashing a whole replica
// costs a fixed handful of allocations instead of several per block. Every
// Replica implementation — symbolic, in-memory, and the on-disk store —
// chains through this one type, which is what keeps their vote hashes
// interchangeable on the wire.
type VoteHasher struct {
	h    hash.Hash
	hdr  [12]byte
	prev Hash
}

// NewVoteHasher returns a hasher with an all-zero initial chain value.
func NewVoteHasher() *VoteHasher {
	return &VoteHasher{h: sha256.New()}
}

// Step advances the running-hash chain: prev = H(prev || nonce || block-id
// || payload), returning the new boundary hash.
func (v *VoteHasher) Step(nonce []byte, au AUID, block int, payload []byte) Hash {
	v.h.Reset()
	v.h.Write(v.prev[:])
	v.h.Write(nonce)
	binary.BigEndian.PutUint32(v.hdr[0:4], uint32(au))
	binary.BigEndian.PutUint64(v.hdr[4:12], uint64(block))
	v.h.Write(v.hdr[:])
	v.h.Write(payload)
	v.h.Sum(v.prev[:0])
	return v.prev
}

// voteHash computes one running-hash chain step: H(prev || nonce || block-id
// || payload). This one-shot form serves tests and spot checks.
func voteHash(prev Hash, nonce []byte, au AUID, block int, payload []byte) Hash {
	v := NewVoteHasher()
	v.prev = prev
	return v.Step(nonce, au, block, payload)
}

// correctPayload derives the publisher's canonical content token for a
// block. SimReplica hashes short tokens instead of half-gigabyte blocks; the
// hashing *cost* is charged separately by the effort model.
func correctPayload(au AUID, block int) []byte {
	var b [13]byte
	b[0] = 'C'
	binary.BigEndian.PutUint32(b[1:5], uint32(au))
	binary.BigEndian.PutUint64(b[5:13], uint64(block))
	return b[:]
}

// damagedPayload derives the token for a damaged block variant.
func damagedPayload(au AUID, block int, mark Mark) []byte {
	var b [21]byte
	b[0] = 'X'
	binary.BigEndian.PutUint32(b[1:5], uint32(au))
	binary.BigEndian.PutUint64(b[5:13], uint64(block))
	binary.BigEndian.PutUint64(b[13:21], uint64(mark))
	return b[:]
}

// isCorrectPayload reports whether data is the publisher's canonical token
// for the block, without materializing the token.
func isCorrectPayload(data []byte, au AUID, block int) bool {
	return len(data) == 13 && data[0] == 'C' &&
		binary.BigEndian.Uint32(data[1:5]) == uint32(au) &&
		binary.BigEndian.Uint64(data[5:13]) == uint64(block)
}

// SimReplica is the symbolic replica used at simulation scale.
type SimReplica struct {
	spec AUSpec
	salt uint64
	// damaged maps block index -> damage mark (non-zero).
	damaged map[int]Mark
	// events counts local damage events to derive fresh marks.
	events uint32
	// gen counts mutations (damage and repair), so callers can key caches of
	// derived data on the replica's damage state.
	gen uint64
	// snap caches the sorted damage snapshot between mutations. The cached
	// slice may be shared by votes still in flight, so mutations drop it and
	// the next Snapshot builds a fresh slice instead of editing in place.
	snap []DamageEntry
}

// NewSimReplica returns a correct (undamaged) symbolic replica. The salt
// must be unique per (peer, AU) so that independent corruption events yield
// distinct content.
func NewSimReplica(spec AUSpec, salt uint64) *SimReplica {
	return &SimReplica{spec: spec, salt: salt, damaged: make(map[int]Mark)}
}

// Spec implements Replica.
func (r *SimReplica) Spec() AUSpec { return r.spec }

// payload returns the content token for block i.
func (r *SimReplica) payload(i int) []byte {
	if m, ok := r.damaged[i]; ok {
		return damagedPayload(r.spec.ID, i, m)
	}
	return correctPayload(r.spec.ID, i)
}

// appendPayload is payload into a caller-reused buffer.
func (r *SimReplica) appendPayload(dst []byte, i int) []byte {
	if m, ok := r.damaged[i]; ok {
		dst = append(dst, 'X')
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.spec.ID))
		dst = binary.BigEndian.AppendUint64(dst, uint64(i))
		return binary.BigEndian.AppendUint64(dst, uint64(m))
	}
	dst = append(dst, 'C')
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.spec.ID))
	return binary.BigEndian.AppendUint64(dst, uint64(i))
}

// VoteHashes implements Replica.
func (r *SimReplica) VoteHashes(nonce []byte) []Hash {
	n := r.spec.Blocks()
	out := make([]Hash, n)
	v := NewVoteHasher()
	var pbuf [21]byte
	for i := 0; i < n; i++ {
		out[i] = v.Step(nonce, r.spec.ID, i, r.appendPayload(pbuf[:0], i))
	}
	return out
}

// Snapshot implements Replica. The returned slice is cached until the next
// mutation and shared between callers; treat it as read-only.
func (r *SimReplica) Snapshot() []DamageEntry {
	if r.snap == nil {
		out := make([]DamageEntry, 0, len(r.damaged))
		for i, m := range r.damaged {
			out = append(out, DamageEntry{Block: i, Mark: m})
		}
		slices.SortFunc(out, func(a, b DamageEntry) int { return a.Block - b.Block })
		r.snap = out
	}
	return r.snap
}

// Generation returns a counter that changes on every mutation, for keying
// caches of data derived from the damage state.
func (r *SimReplica) Generation() uint64 { return r.gen }

// mutated invalidates snapshot caches after a damage-state change.
func (r *SimReplica) mutated() {
	r.gen++
	r.snap = nil
}

// freshMark derives a new replica-unique damage mark.
func (r *SimReplica) freshMark() Mark {
	r.events++
	m := Mark(r.salt<<20 | uint64(r.events))
	if m == 0 {
		m = 1
	}
	return m
}

// Damage implements Replica. Damaging an already-damaged block re-corrupts
// it with fresh content.
func (r *SimReplica) Damage(i int) bool {
	if i < 0 || i >= r.spec.Blocks() {
		return false
	}
	r.damaged[i] = r.freshMark()
	r.mutated()
	return true
}

// RepairBlock implements Replica: the repair payload is the block's current
// content token (correct if the supplier is undamaged at i).
func (r *SimReplica) RepairBlock(i int) ([]byte, error) {
	if i < 0 || i >= r.spec.Blocks() {
		return nil, fmt.Errorf("content: repair block %d out of range for %v", i, r.spec)
	}
	p := r.payload(i)
	out := make([]byte, len(p))
	copy(out, p)
	return out, nil
}

// ApplyRepair implements Replica. Applying the canonical correct payload
// clears the damage mark; applying a corrupt payload records its mark (a
// damaged supplier propagates corruption — the protocol guards against this
// with landslide majorities and repair re-evaluation, not the replica).
func (r *SimReplica) ApplyRepair(i int, data []byte) error {
	if i < 0 || i >= r.spec.Blocks() {
		return fmt.Errorf("content: repair block %d out of range for %v", i, r.spec)
	}
	if isCorrectPayload(data, r.spec.ID, i) {
		delete(r.damaged, i)
		r.mutated()
		return nil
	}
	if len(data) == 21 && data[0] == 'X' &&
		binary.BigEndian.Uint32(data[1:5]) == uint32(r.spec.ID) &&
		binary.BigEndian.Uint64(data[5:13]) == uint64(i) {
		r.damaged[i] = Mark(binary.BigEndian.Uint64(data[13:21]))
		r.mutated()
		return nil
	}
	return fmt.Errorf("content: malformed symbolic repair payload for block %d", i)
}

// Damaged implements Replica.
func (r *SimReplica) Damaged() bool { return len(r.damaged) > 0 }

// RealReplica holds actual content bytes.
type RealReplica struct {
	spec   AUSpec
	salt   uint64
	events uint32
	gen    uint64
	data   []byte
	// damaged tracks which blocks were corrupted and with what mark, so
	// Snapshot need not diff against the canonical content.
	damaged map[int]Mark
}

// PublisherBytes materializes the publisher's canonical content for spec:
// deterministic pseudo-random bytes derived from the AU ID, so every peer
// starting from the publisher holds identical bytes. The real node's
// synthetic demo AUs and the durable store's ingest both derive publisher
// content from this one function.
func PublisherBytes(spec AUSpec) []byte {
	data := make([]byte, spec.Size)
	var seed [8]byte
	binary.BigEndian.PutUint32(seed[:4], uint32(spec.ID))
	fill := sha256.Sum256(seed[:])
	for off := 0; off < len(data); {
		n := copy(data[off:], fill[:])
		off += n
		fill = sha256.Sum256(fill[:])
	}
	return data
}

// PublisherReader streams the publisher's canonical content for spec — the
// exact bytes PublisherBytes materializes, produced incrementally — so
// archive-sized synthetic AUs can flow through Store.CreateFrom without ever
// existing in memory.
func PublisherReader(spec AUSpec) io.Reader {
	var seed [8]byte
	binary.BigEndian.PutUint32(seed[:4], uint32(spec.ID))
	return &pubReader{fill: sha256.Sum256(seed[:]), rem: spec.Size}
}

type pubReader struct {
	fill [sha256.Size]byte
	off  int
	rem  int64
}

func (r *pubReader) Read(p []byte) (int, error) {
	if r.rem <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.rem {
		p = p[:r.rem]
	}
	n := 0
	for n < len(p) {
		if r.off == len(r.fill) {
			r.fill = sha256.Sum256(r.fill[:])
			r.off = 0
		}
		c := copy(p[n:], r.fill[r.off:])
		n += c
		r.off += c
	}
	r.rem -= int64(n)
	return n, nil
}

// NewRealReplica starts a replica from the publisher's canonical content.
// The salt individualizes corruption, exactly as for SimReplica.
func NewRealReplica(spec AUSpec, salt uint64) *RealReplica {
	return &RealReplica{spec: spec, salt: salt, data: PublisherBytes(spec), damaged: make(map[int]Mark)}
}

// Spec implements Replica.
func (r *RealReplica) Spec() AUSpec { return r.spec }

// block returns the byte range of block i.
func (r *RealReplica) block(i int) []byte {
	lo := int64(i) * r.spec.BlockSize
	hi := lo + r.spec.BlockSize
	if hi > r.spec.Size {
		hi = r.spec.Size
	}
	return r.data[lo:hi]
}

// canonicalBlock regenerates the publisher's bytes for block i.
func (r *RealReplica) canonicalBlock(i int) []byte {
	// Regenerate only the needed range by replaying the fill stream.
	lo := int64(i) * r.spec.BlockSize
	hi := lo + r.spec.BlockSize
	if hi > r.spec.Size {
		hi = r.spec.Size
	}
	var seed [8]byte
	binary.BigEndian.PutUint32(seed[:4], uint32(r.spec.ID))
	fill := sha256.Sum256(seed[:])
	out := make([]byte, hi-lo)
	for off := int64(0); off < hi; {
		chunk := fill[:]
		for _, c := range chunk {
			if off >= hi {
				break
			}
			if off >= lo {
				out[off-lo] = c
			}
			off++
		}
		fill = sha256.Sum256(fill[:])
	}
	return out
}

// VoteHashes implements Replica.
func (r *RealReplica) VoteHashes(nonce []byte) []Hash {
	n := r.spec.Blocks()
	out := make([]Hash, n)
	v := NewVoteHasher()
	for i := 0; i < n; i++ {
		out[i] = v.Step(nonce, r.spec.ID, i, r.block(i))
	}
	return out
}

// Snapshot implements Replica.
func (r *RealReplica) Snapshot() []DamageEntry {
	out := make([]DamageEntry, 0, len(r.damaged))
	for i, m := range r.damaged {
		out = append(out, DamageEntry{Block: i, Mark: m})
	}
	slices.SortFunc(out, func(a, b DamageEntry) int { return a.Block - b.Block })
	return out
}

// CorruptBytes derives the deterministic corrupt content a damage event
// with the given mark produces for a block: distinct marks yield distinct
// bytes, so independently rotted replicas disagree with each other as well
// as with the publisher. RealReplica.Damage and the on-disk store's Damage
// share this one derivation.
func CorruptBytes(mark Mark, block, n int) []byte {
	out := make([]byte, n)
	var seed [16]byte
	binary.BigEndian.PutUint64(seed[0:8], uint64(mark))
	binary.BigEndian.PutUint64(seed[8:16], uint64(block))
	fill := sha256.Sum256(seed[:])
	for off := 0; off < n; {
		c := copy(out[off:], fill[:])
		off += c
		fill = sha256.Sum256(fill[:])
	}
	return out
}

// Damage implements Replica by overwriting block i with replica-unique
// pseudo-random corruption.
func (r *RealReplica) Damage(i int) bool {
	if i < 0 || i >= r.spec.Blocks() {
		return false
	}
	r.events++
	mark := Mark(r.salt<<20 | uint64(r.events))
	if mark == 0 {
		mark = 1
	}
	b := r.block(i)
	copy(b, CorruptBytes(mark, i, len(b)))
	r.damaged[i] = mark
	r.gen++
	return true
}

// RepairBlock implements Replica.
func (r *RealReplica) RepairBlock(i int) ([]byte, error) {
	if i < 0 || i >= r.spec.Blocks() {
		return nil, fmt.Errorf("content: repair block %d out of range for %v", i, r.spec)
	}
	b := r.block(i)
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// ApplyRepair implements Replica.
func (r *RealReplica) ApplyRepair(i int, data []byte) error {
	if i < 0 || i >= r.spec.Blocks() {
		return fmt.Errorf("content: repair block %d out of range for %v", i, r.spec)
	}
	b := r.block(i)
	if len(data) != len(b) {
		return fmt.Errorf("content: repair for block %d has %d bytes, want %d", i, len(data), len(b))
	}
	copy(b, data)
	if string(data) == string(r.canonicalBlock(i)) {
		delete(r.damaged, i)
	} else {
		r.events++
		r.damaged[i] = Mark(r.salt<<20 | uint64(r.events))
	}
	r.gen++
	return nil
}

// Damaged implements Replica.
func (r *RealReplica) Damaged() bool { return len(r.damaged) > 0 }

// Generation implements Replica.
func (r *RealReplica) Generation() uint64 { return r.gen }
