package content

import (
	"bytes"
	"testing"
	"testing/quick"

	"lockss/internal/prng"
)

func testSpec() AUSpec {
	return AUSpec{ID: 7, Name: "test", Size: 4096, BlockSize: 1024}
}

func TestBlocksCount(t *testing.T) {
	cases := []struct {
		size, block int64
		want        int
	}{
		{4096, 1024, 4},
		{4097, 1024, 5},
		{100, 1024, 1},
		{0, 1024, 1},
		{4096, 0, 1},
	}
	for _, c := range cases {
		s := AUSpec{Size: c.size, BlockSize: c.block}
		if got := s.Blocks(); got != c.want {
			t.Errorf("Blocks(%d/%d) = %d, want %d", c.size, c.block, got, c.want)
		}
	}
}

func TestSimReplicaDamageRepair(t *testing.T) {
	r := NewSimReplica(testSpec(), 1)
	if r.Damaged() {
		t.Fatal("fresh replica damaged")
	}
	if r.Damage(99) {
		t.Error("out-of-range damage accepted")
	}
	if !r.Damage(2) {
		t.Fatal("damage failed")
	}
	if !r.Damaged() || len(r.Snapshot()) != 1 || r.Snapshot()[0].Block != 2 {
		t.Fatalf("snapshot wrong: %v", r.Snapshot())
	}
	// Repair from a correct peer replica.
	good := NewSimReplica(testSpec(), 2)
	data, err := good.RepairBlock(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyRepair(2, data); err != nil {
		t.Fatal(err)
	}
	if r.Damaged() {
		t.Error("repair did not clear damage")
	}
}

func TestSimReplicaCorruptRepairPropagates(t *testing.T) {
	a := NewSimReplica(testSpec(), 1)
	b := NewSimReplica(testSpec(), 2)
	b.Damage(3)
	data, _ := b.RepairBlock(3)
	if err := a.ApplyRepair(3, data); err != nil {
		t.Fatal(err)
	}
	if !a.Damaged() {
		t.Error("corrupt repair should leave the recipient damaged")
	}
	// And the two corrupt replicas agree with each other at that block.
	if a.Snapshot()[0].Mark != b.Snapshot()[0].Mark {
		t.Error("propagated corruption should carry the same mark")
	}
}

func TestDistinctSaltsDistinctCorruption(t *testing.T) {
	a := NewSimReplica(testSpec(), 1)
	b := NewSimReplica(testSpec(), 2)
	a.Damage(0)
	b.Damage(0)
	if a.Snapshot()[0].Mark == b.Snapshot()[0].Mark {
		t.Error("independent corruption events share a mark")
	}
}

func TestSimVoteHashesChangeWithDamage(t *testing.T) {
	r := NewSimReplica(testSpec(), 1)
	nonce := []byte("nonce")
	before := r.VoteHashes(nonce)
	if len(before) != 4 {
		t.Fatalf("hash count %d", len(before))
	}
	r.Damage(1)
	after := r.VoteHashes(nonce)
	if before[0] != after[0] {
		t.Error("hash before the damaged block changed")
	}
	for i := 1; i < 4; i++ {
		if before[i] == after[i] {
			t.Errorf("running hash %d unchanged after damage at 1", i)
		}
	}
}

func TestVoteHashesNonceDependence(t *testing.T) {
	r := NewSimReplica(testSpec(), 1)
	a := r.VoteHashes([]byte("n1"))
	b := r.VoteHashes([]byte("n2"))
	if a[0] == b[0] {
		t.Error("different nonces produce identical hashes")
	}
}

func TestRealReplicaBasics(t *testing.T) {
	r := NewRealReplica(testSpec(), 1)
	if r.Damaged() {
		t.Fatal("fresh real replica damaged")
	}
	q := NewRealReplica(testSpec(), 2)
	// Same publisher content regardless of salt.
	if !bytes.Equal(mustRepair(t, r, 0), mustRepair(t, q, 0)) {
		t.Fatal("publisher content differs between replicas")
	}
	if !r.Damage(1) {
		t.Fatal("damage failed")
	}
	if !r.Damaged() {
		t.Fatal("damage not detected")
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Block != 1 {
		t.Fatalf("snapshot %v", snap)
	}
	// Repair from the intact replica.
	if err := r.ApplyRepair(1, mustRepair(t, q, 1)); err != nil {
		t.Fatal(err)
	}
	if r.Damaged() {
		t.Error("repair did not restore content")
	}
	// Wrong-size repair rejected.
	if err := r.ApplyRepair(1, []byte("short")); err == nil {
		t.Error("short repair accepted")
	}
}

func mustRepair(t *testing.T, r Replica, block int) []byte {
	t.Helper()
	data, err := r.RepairBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRealReplicaCorruptRepairDetected(t *testing.T) {
	a := NewRealReplica(testSpec(), 1)
	b := NewRealReplica(testSpec(), 2)
	b.Damage(2)
	if err := a.ApplyRepair(2, mustRepair(t, b, 2)); err != nil {
		t.Fatal(err)
	}
	if !a.Damaged() {
		t.Error("corrupt real repair should leave recipient damaged")
	}
}

func TestRealDamageDistinctContent(t *testing.T) {
	a := NewRealReplica(testSpec(), 1)
	b := NewRealReplica(testSpec(), 2)
	a.Damage(0)
	b.Damage(0)
	if bytes.Equal(mustRepair(t, a, 0), mustRepair(t, b, 0)) {
		t.Error("independent real corruption produced identical bytes")
	}
}

// TestRealSimHashEquivalencePattern: under identical damage patterns, the
// real and symbolic replicas produce the same agreement/disagreement
// structure (which running hashes match between two peers), even though the
// hash values themselves differ.
func TestRealSimHashEquivalencePattern(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rnd := prng.New(seed)
		spec := testSpec()
		nonce := []byte("n")

		simA, simB := NewSimReplica(spec, 1), NewSimReplica(spec, 2)
		realA, realB := NewRealReplica(spec, 1), NewRealReplica(spec, 2)

		// Apply the same random damage to both representations.
		for i := 0; i < 3; i++ {
			if rnd.Bool(0.5) {
				b := rnd.Intn(spec.Blocks())
				simA.Damage(b)
				realA.Damage(b)
			}
			if rnd.Bool(0.5) {
				b := rnd.Intn(spec.Blocks())
				simB.Damage(b)
				realB.Damage(b)
			}
		}
		simHA, simHB := simA.VoteHashes(nonce), simB.VoteHashes(nonce)
		realHA, realHB := realA.VoteHashes(nonce), realB.VoteHashes(nonce)
		for i := range simHA {
			simAgree := simHA[i] == simHB[i]
			realAgree := realHA[i] == realHB[i]
			if simAgree != realAgree {
				t.Logf("block %d: sim agree=%v real agree=%v", i, simAgree, realAgree)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestRepairBlockOutOfRange(t *testing.T) {
	for _, r := range []Replica{NewSimReplica(testSpec(), 1), NewRealReplica(testSpec(), 1)} {
		if _, err := r.RepairBlock(-1); err == nil {
			t.Errorf("%T: negative block accepted", r)
		}
		if _, err := r.RepairBlock(4); err == nil {
			t.Errorf("%T: out-of-range block accepted", r)
		}
		if err := r.ApplyRepair(9, nil); err == nil {
			t.Errorf("%T: out-of-range repair accepted", r)
		}
	}
}

// TestSimReplicaApplyRepairMalformed exercises the symbolic repair payload
// validation: wrong sizes, wrong tags, and payloads minted for a different
// AU or block must all be rejected without mutating the replica.
func TestSimReplicaApplyRepairMalformed(t *testing.T) {
	r := NewSimReplica(testSpec(), 1)
	r.Damage(2)
	gen := r.Generation()
	bad := [][]byte{
		nil,                      // empty
		[]byte("short"),          // wrong size entirely
		make([]byte, 12),         // one byte short of a correct token
		make([]byte, 14),         // one byte long of a correct token
		make([]byte, 20),         // one byte short of a damage token
		make([]byte, 22),         // one byte long of a damage token
		damagedPayload(99, 2, 5), // damage token for another AU
		damagedPayload(7, 3, 5),  // damage token for another block
		correctPayload(99, 2),    // correct token for another AU
		correctPayload(7, 1),     // correct token for another block
	}
	for _, data := range bad {
		if err := r.ApplyRepair(2, data); err == nil {
			t.Errorf("malformed payload %q accepted", data)
		}
	}
	if r.Generation() != gen {
		t.Error("rejected repairs mutated the replica")
	}
	if !r.Damaged() {
		t.Error("rejected repairs cleared the damage mark")
	}
	// The matching token still heals.
	if err := r.ApplyRepair(2, correctPayload(7, 2)); err != nil {
		t.Fatal(err)
	}
	if r.Damaged() {
		t.Error("valid repair did not heal")
	}
}

// TestSimReplicaRepairRoundTripErrors covers the RepairBlock/ApplyRepair
// error paths on block indices outside the AU.
func TestSimReplicaRepairRoundTripErrors(t *testing.T) {
	r := NewSimReplica(testSpec(), 1)
	for _, i := range []int{-1, 4, 1 << 20} {
		if _, err := r.RepairBlock(i); err == nil {
			t.Errorf("RepairBlock(%d) accepted", i)
		}
		if err := r.ApplyRepair(i, correctPayload(7, 0)); err == nil {
			t.Errorf("ApplyRepair(%d) accepted", i)
		}
	}
}

func TestGenerationAdvancesOnMutation(t *testing.T) {
	for _, r := range []Replica{NewSimReplica(testSpec(), 1), NewRealReplica(testSpec(), 1)} {
		g0 := r.Generation()
		r.Damage(1)
		g1 := r.Generation()
		if g1 == g0 {
			t.Errorf("%T: Damage did not advance generation", r)
		}
		q := NewRealReplica(testSpec(), 2)
		var data []byte
		if _, ok := r.(*SimReplica); ok {
			data = correctPayload(7, 1)
		} else {
			data = mustRepair(t, q, 1)
		}
		if err := r.ApplyRepair(1, data); err != nil {
			t.Fatal(err)
		}
		if r.Generation() == g1 {
			t.Errorf("%T: ApplyRepair did not advance generation", r)
		}
	}
}

func TestRedamageFreshMark(t *testing.T) {
	r := NewSimReplica(testSpec(), 1)
	r.Damage(0)
	m1 := r.Snapshot()[0].Mark
	r.Damage(0)
	m2 := r.Snapshot()[0].Mark
	if m1 == m2 {
		t.Error("re-damage should produce fresh corruption")
	}
}

func TestLastPartialBlock(t *testing.T) {
	spec := AUSpec{ID: 1, Name: "partial", Size: 2500, BlockSize: 1024}
	r := NewRealReplica(spec, 1)
	if spec.Blocks() != 3 {
		t.Fatalf("blocks = %d", spec.Blocks())
	}
	data := mustRepair(t, r, 2)
	if len(data) != 2500-2048 {
		t.Errorf("partial block size %d", len(data))
	}
	r.Damage(2)
	q := NewRealReplica(spec, 2)
	if err := r.ApplyRepair(2, mustRepair(t, q, 2)); err != nil {
		t.Fatal(err)
	}
	if r.Damaged() {
		t.Error("partial block repair failed")
	}
}

// TestPublisherReaderMatchesBytes: the streaming publisher source must
// produce the exact bytes PublisherBytes materializes — including sizes that
// end mid-way through a hash-chain step — under any read granularity.
func TestPublisherReaderMatchesBytes(t *testing.T) {
	for _, size := range []int64{0, 1, 31, 32, 33, 4096, 100_003} {
		spec := AUSpec{ID: 12, Name: "stream", Size: size, BlockSize: 1024}
		want := PublisherBytes(spec)
		var got bytes.Buffer
		if _, err := got.ReadFrom(PublisherReader(spec)); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("size %d: streamed bytes differ from PublisherBytes", size)
		}
		// Byte-at-a-time reads must agree too.
		r := PublisherReader(spec)
		one := make([]byte, 1)
		for i := int64(0); i < size; i++ {
			if _, err := r.Read(one); err != nil {
				t.Fatalf("size %d byte %d: %v", size, i, err)
			}
			if one[0] != want[i] {
				t.Fatalf("size %d: byte %d differs under 1-byte reads", size, i)
			}
		}
		if _, err := r.Read(one); err == nil {
			t.Fatalf("size %d: no EOF past the end", size)
		}
	}
}
