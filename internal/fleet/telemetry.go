package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"lockss/internal/promtext"
	"lockss/internal/telemetry"
)

// telemetryFamilies are the histogram families the fleet merges, in report
// order. The names mirror telemetry.(*Telemetry).Histograms.
var telemetryFamilies = []string{
	"poll_duration", "solicit_vote", "tally", "repair",
	"transport_queue_wait", "scrub_pass", "admin_latency",
}

// QuantileRow is one merged fleet-wide latency distribution.
type QuantileRow struct {
	Metric string  `json:"metric"`
	Count  uint64  `json:"count"`
	Mean   float64 `json:"mean_seconds"`
	P50    float64 `json:"p50_seconds"`
	P95    float64 `json:"p95_seconds"`
	P99    float64 `json:"p99_seconds"`
}

// TimelinePoll is one poll in the cross-node timeline: the initiator's span
// joined — by poll ID — with the votes other nodes recorded supplying to it.
type TimelinePoll struct {
	PollID      uint64                 `json:"poll_id"`
	Poller      uint32                 `json:"poller"`
	AU          uint32                 `json:"au"`
	StartedNs   int64                  `json:"started_ns"`
	ConcludedNs int64                  `json:"concluded_ns,omitempty"`
	DurationNs  int64                  `json:"duration_ns,omitempty"`
	Outcome     string                 `json:"outcome,omitempty"`
	Solicits    int                    `json:"solicits"`
	Votes       int                    `json:"votes"`
	Repairs     int                    `json:"repairs"`
	VoterSpans  []telemetry.VoteRecord `json:"voter_spans"`
}

// TelemetrySummary is the fleet-wide flight-recorder digest in the report:
// merged latency quantiles plus the poll timeline.
type TelemetrySummary struct {
	Quantiles    []QuantileRow  `json:"quantiles"`
	Timeline     []TimelinePoll `json:"timeline"`
	ScrapeErrors []string       `json:"scrape_errors,omitempty"`
}

// maxTimelinePolls bounds the report; a long run concludes thousands of
// polls and the timeline keeps the most recent ones.
const maxTimelinePolls = 500

// nodeTelemetry is one node's scraped telemetry.
type nodeTelemetry struct {
	id    int
	hists map[string]telemetry.Snapshot
	polls []telemetry.PollSpan
	votes []telemetry.VoteRecord
}

// scrapeNodeTelemetry pulls one node's histogram families (from /metrics)
// and poll spans plus supplied votes (from /polls).
func scrapeNodeTelemetry(adminAddr string) (*nodeTelemetry, error) {
	nt := &nodeTelemetry{hists: make(map[string]telemetry.Snapshot)}

	resp, err := scrapeClient.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	fams, err := promtext.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("parse metrics: %w", err)
	}
	for _, name := range telemetryFamilies {
		f, ok := fams["lockss_"+name+"_seconds"]
		if !ok {
			continue
		}
		buckets, sum, count, err := f.Histogram()
		if err != nil {
			return nil, err
		}
		snap, err := snapshotFromBuckets(buckets, sum, count)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
		nt.hists[name] = snap
	}

	resp, err = scrapeClient.Get("http://" + adminAddr + "/polls")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("polls status %d", resp.StatusCode)
	}
	var pb struct {
		Peer  uint32                 `json:"peer"`
		Polls []telemetry.PollSpan   `json:"polls"`
		Votes []telemetry.VoteRecord `json:"votes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pb); err != nil {
		return nil, fmt.Errorf("decode polls: %w", err)
	}
	nt.id = int(pb.Peer)
	nt.polls = pb.Polls
	nt.votes = pb.Votes
	return nt, nil
}

// snapshotFromBuckets rebuilds a telemetry.Snapshot from a scraped
// cumulative bucket series, inverting each exposed bound back to its log2
// bucket index so per-node snapshots merge exactly. Observations beyond the
// last finite bound (visible only in +Inf) land in the top bucket.
func snapshotFromBuckets(buckets []promtext.BucketPoint, sumSec float64, count uint64) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	var prev uint64
	for _, b := range buckets[:len(buckets)-1] { // all but +Inf
		idx, ok := telemetry.BucketFromBound(b.LE)
		if !ok {
			return snap, fmt.Errorf("bound %g maps to no telemetry bucket", b.LE)
		}
		snap.Buckets[idx] += b.Count - prev
		prev = b.Count
	}
	if count > prev {
		snap.Buckets[telemetry.NumBuckets-1] += count - prev
	}
	snap.Count = count
	snap.Sum = int64(sumSec * 1e9)
	return snap, nil
}

// collectTelemetry sweeps every up node's telemetry and condenses it: merged
// per-family quantiles and the initiator/voter poll timeline.
func collectTelemetry(targets []scrapeTarget) TelemetrySummary {
	type result struct {
		nt  *nodeTelemetry
		err string
	}
	results := make([]result, len(targets))
	done := make(chan int, len(targets))
	live := 0
	for i, tgt := range targets {
		if tgt.down {
			continue
		}
		live++
		go func(i int, id int, addr string) {
			nt, err := scrapeNodeTelemetry(addr)
			if err != nil {
				results[i].err = fmt.Sprintf("node %d: %v", id, err)
			} else {
				nt.id = id
				results[i].nt = nt
			}
			done <- i
		}(i, tgt.id, tgt.adminAddr)
	}
	for ; live > 0; live-- {
		<-done
	}

	var sum TelemetrySummary
	merged := make(map[string]*telemetry.Snapshot)
	var spans []telemetry.PollSpan
	votesByPoll := make(map[uint64][]telemetry.VoteRecord)
	for _, r := range results {
		if r.err != "" {
			sum.ScrapeErrors = append(sum.ScrapeErrors, r.err)
			continue
		}
		if r.nt == nil {
			continue // down node
		}
		for name, snap := range r.nt.hists {
			m := merged[name]
			if m == nil {
				m = &telemetry.Snapshot{}
				merged[name] = m
			}
			m.Merge(snap)
		}
		spans = append(spans, r.nt.polls...)
		for _, v := range r.nt.votes {
			votesByPoll[v.PollID] = append(votesByPoll[v.PollID], v)
		}
	}

	for _, name := range telemetryFamilies {
		m := merged[name]
		if m == nil {
			continue
		}
		sum.Quantiles = append(sum.Quantiles, QuantileRow{
			Metric: name,
			Count:  m.Count,
			Mean:   m.Mean(),
			P50:    m.Quantile(0.50),
			P95:    m.Quantile(0.95),
			P99:    m.Quantile(0.99),
		})
	}

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartedNs != spans[j].StartedNs {
			return spans[i].StartedNs < spans[j].StartedNs
		}
		return spans[i].PollID < spans[j].PollID
	})
	if len(spans) > maxTimelinePolls {
		spans = spans[len(spans)-maxTimelinePolls:]
	}
	for _, s := range spans {
		tp := TimelinePoll{
			PollID:      s.PollID,
			Poller:      s.Peer,
			AU:          s.AU,
			StartedNs:   s.StartedNs,
			ConcludedNs: s.ConcludedNs,
			DurationNs:  s.DurationNs,
			Outcome:     s.Outcome,
			Solicits:    s.Solicits,
			Votes:       s.Votes,
			Repairs:     s.Repairs,
			VoterSpans:  votesByPoll[s.PollID],
		}
		if tp.VoterSpans == nil {
			tp.VoterSpans = []telemetry.VoteRecord{}
		} else {
			sort.Slice(tp.VoterSpans, func(i, j int) bool { return tp.VoterSpans[i].TNs < tp.VoterSpans[j].TNs })
		}
		sum.Timeline = append(sum.Timeline, tp)
	}
	return sum
}

// render appends the quantile table to a Summary builder.
func (ts *TelemetrySummary) render(b *strings.Builder) {
	if len(ts.Quantiles) == 0 {
		return
	}
	b.WriteString("\nlatency (fleet-wide, seconds):\n")
	fmt.Fprintf(b, "  %-22s %8s %10s %10s %10s %10s\n", "metric", "count", "mean", "p50", "p95", "p99")
	for _, q := range ts.Quantiles {
		fmt.Fprintf(b, "  %-22s %8d %10.4f %10.4f %10.4f %10.4f\n",
			q.Metric, q.Count, q.Mean, q.P50, q.P95, q.P99)
	}
	joined := 0
	for _, tp := range ts.Timeline {
		if len(tp.VoterSpans) > 0 {
			joined++
		}
	}
	fmt.Fprintf(b, "  timeline: %d polls, %d with voter spans joined\n", len(ts.Timeline), joined)
}
