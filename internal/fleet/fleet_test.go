package fleet

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"1.5s"`)); err != nil || time.Duration(d) != 1500*time.Millisecond {
		t.Fatalf("UnmarshalJSON(\"1.5s\") = %v, %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`2000000000`)); err != nil || time.Duration(d) != 2*time.Second {
		t.Fatalf("UnmarshalJSON(ns) = %v, %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`true`)); err == nil {
		t.Fatal("UnmarshalJSON(true) accepted")
	}
	b, err := Duration(time.Second).MarshalJSON()
	if err != nil || string(b) != `"1s"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}

func TestLoadConfigStripsComments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	cfg := `// a commented fleet config
{
  // population
  "nodes": 8,
  "aus": 1,
  "duration": "3s",
  "faults": [
    // one damage event
    {"at": "1s", "kind": "damage", "node": 2, "au": 1, "block": 0}
  ]
}
`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes != 8 || time.Duration(c.Duration) != 3*time.Second || len(c.Faults) != 1 {
		t.Fatalf("loaded config %+v", c)
	}
	if c.Quorum != 3 || c.PollInterval == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{}.withDefaults()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := base
	bad.Nodes = 2
	if err := bad.Validate(); err == nil {
		t.Error("accepted 2-node fleet")
	}
	bad = base
	bad.Faults = []Fault{{Kind: "explode"}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted unknown fault kind")
	}
	bad = base
	bad.Faults = []Fault{{Kind: "damage", AU: 99}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted damage to out-of-range AU")
	}
	bad = base
	bad.Faults = []Fault{{Kind: "partition"}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted partition without a subnet")
	}
}

// TestScheduleDeterministicAndPinned: same seed, same schedule; randoms
// pinned; "for" sugar and churn expanded into inverse pairs in time order.
func TestScheduleDeterministic(t *testing.T) {
	c := Config{
		Nodes: 10, AUs: 1, AUSize: 128 << 10, BlockSize: 32 << 10,
		Duration: Duration(10 * time.Second),
		Faults: []Fault{
			{At: Duration(time.Second), Kind: "damage", Node: 0, AU: 1, Block: -1},
			{At: Duration(2 * time.Second), Kind: "kill", Node: 0, For: Duration(time.Second)},
		},
		Churn: &Churn{Interval: Duration(3 * time.Second), Down: Duration(time.Second)},
	}.withDefaults()
	a := c.schedule(rand.New(rand.NewSource(42)))
	b := c.schedule(rand.New(rand.NewSource(42)))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedule not deterministic:\n%v\n%v", a, b)
	}
	for _, f := range a {
		if f.Node == 0 && f.Kind != "partition" && f.Kind != "heal" {
			t.Errorf("random node not pinned: %+v", f)
		}
		if f.Kind == "damage" && f.Block < 0 {
			t.Errorf("random block not pinned: %+v", f)
		}
	}
	// The kill at 2s must have a matching restart at 3s; churn adds more
	// kill/restart pairs.
	kills, restarts := 0, 0
	for _, f := range a {
		switch f.Kind {
		case "kill":
			kills++
		case "restart":
			restarts++
		}
	}
	if kills < 2 || kills != restarts {
		t.Errorf("kills=%d restarts=%d, want matched pairs incl. churn", kills, restarts)
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].At > a[i].At {
			t.Fatalf("schedule not time-ordered: %v", a)
		}
	}
}

// TestFleetRepairsInjectedDamage runs a real seeded 10-node fleet: one
// damage injection plus one kill/restart, and requires the report to show
// the damage repaired, all nodes back up and healthy. Real-time; skipped by
// -short (CI runs it as a named step).
func TestFleetRepairsInjectedDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time fleet test")
	}
	cfg := Config{
		Nodes:          10,
		AUs:            1,
		AUSize:         128 << 10,
		BlockSize:      32 << 10,
		Seed:           7,
		Duration:       Duration(9 * time.Second),
		ScrapeInterval: Duration(1 * time.Second),
		PollInterval:   Duration(1500 * time.Millisecond),
		Faults: []Fault{
			{At: Duration(300 * time.Millisecond), Kind: "damage", Node: 3, AU: 1, Block: 2},
			{At: Duration(1 * time.Second), Kind: "kill", Node: 7, For: Duration(2 * time.Second)},
		},
	}.withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	f := New(cfg, t.Logf)
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Summary())

	for _, ev := range rep.FaultLog {
		if ev.Error != "" {
			t.Errorf("fault %s at %v failed: %s", ev.Fault.Kind, ev.At, ev.Error)
		}
	}
	if len(rep.FaultLog) != 3 { // damage, kill, restart
		t.Errorf("fault log has %d events, want 3: %+v", len(rep.FaultLog), rep.FaultLog)
	}
	if !rep.Final.Converged || rep.Final.UnrepairedDamage != 0 {
		t.Errorf("fleet did not converge: %d unrepaired damaged blocks", rep.Final.UnrepairedDamage)
	}
	if rep.Final.NodesUp != cfg.Nodes {
		t.Errorf("NodesUp = %d, want %d (kill was scheduled to restart)", rep.Final.NodesUp, cfg.Nodes)
	}
	if !rep.Final.AllHealthy {
		t.Errorf("not all nodes healthy at end: %d/%d", rep.Final.NodesHealthy, cfg.Nodes)
	}
	// The injected damage must have been visible and then repaired: the
	// damaged node received at least one protocol repair.
	last := rep.Samples[len(rep.Samples)-1]
	if last.Aggregate["repairs_received"] < 1 {
		t.Errorf("no repairs received across the fleet; damage was never healed by the protocol")
	}
	if last.Aggregate["polls_concluded"] < float64(cfg.Nodes) {
		t.Errorf("polls_concluded = %v, want >= %d", last.Aggregate["polls_concluded"], cfg.Nodes)
	}

	// The same run's report must carry the fleet-wide flight-recorder sweep:
	// merged latency quantiles and a cross-node poll timeline where initiator
	// spans are joined with voter-side records by poll ID.
	t.Run("telemetry", func(t *testing.T) {
		tel := rep.Telemetry
		for _, e := range tel.ScrapeErrors {
			t.Errorf("telemetry scrape error: %s", e)
		}
		var pd *QuantileRow
		for i := range tel.Quantiles {
			if tel.Quantiles[i].Metric == "poll_duration" {
				pd = &tel.Quantiles[i]
			}
		}
		if pd == nil {
			t.Fatalf("no merged poll_duration quantiles in report: %+v", tel.Quantiles)
		}
		if pd.Count < uint64(cfg.Nodes) {
			t.Errorf("poll_duration count = %d, want >= %d (every node polls)", pd.Count, cfg.Nodes)
		}
		if pd.P50 <= 0 || pd.P95 < pd.P50 || pd.P99 < pd.P95 {
			t.Errorf("poll_duration quantiles not ordered/positive: p50=%g p95=%g p99=%g", pd.P50, pd.P95, pd.P99)
		}
		if len(tel.Timeline) == 0 {
			t.Fatal("poll timeline empty")
		}
		joined := 0
		for _, tp := range tel.Timeline {
			for _, v := range tp.VoterSpans {
				if v.PollID != tp.PollID {
					t.Errorf("voter span poll ID %d attached to poll %d", v.PollID, tp.PollID)
				}
				if v.Voter == tp.Poller {
					t.Errorf("poll %d: initiator %d listed as its own voter", tp.PollID, tp.Poller)
				}
			}
			if len(tp.VoterSpans) > 0 {
				joined++
			}
		}
		if joined == 0 {
			t.Error("no timeline poll has voter spans joined from other nodes")
		}
	})
}
