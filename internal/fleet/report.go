package fleet

import (
	"fmt"
	"strings"
)

// aggregateKeys maps scraped metric names to the Aggregate fields a fleet
// operator reads first. Summed across up nodes per sample.
var aggregateKeys = []struct {
	field  string
	metric string
}{
	{"polls_succeeded", "lockss_polls_succeeded_total"},
	{"polls_concluded", "lockss_polls_concluded_total"},
	{"alarms", "lockss_alarms_total"},
	{"repairs_received", "lockss_repairs_received_total"},
	{"transport_sent", "lockss_transport_sent_total"},
	{"transport_drops", "lockss_transport_drops_total"},
	{"store_damaged", "lockss_store_blocks_damaged_total"},
	{"store_repaired", "lockss_store_blocks_repaired_total"},
}

// NodeSample is one node's scrape in one sweep.
type NodeSample struct {
	Node        int                `json:"node"`
	Down        bool               `json:"down,omitempty"`
	Healthy     bool               `json:"healthy"`
	Damage      int                `json:"damaged_blocks"`
	ActivePolls int                `json:"active_polls"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	MetricsErr  string             `json:"metrics_error,omitempty"`
}

// Sample is one sweep over the population.
type Sample struct {
	At            Duration           `json:"at"`
	NodesUp       int                `json:"nodes_up"`
	NodesDown     int                `json:"nodes_down"`
	NodesHealthy  int                `json:"nodes_healthy"`
	DamagedBlocks float64            `json:"damaged_blocks"`
	Aggregate     map[string]float64 `json:"aggregate"`
	PerNode       []NodeSample       `json:"per_node"`
}

// FaultEvent records one applied (or failed) fault with its randomness
// pinned — the report replays the schedule exactly.
type FaultEvent struct {
	At    Duration `json:"at"`
	Fault Fault    `json:"fault"`
	Desc  string   `json:"desc,omitempty"`
	Error string   `json:"error,omitempty"`
}

// Final is the run verdict the CI gate reads.
type Final struct {
	NodesUp      int  `json:"nodes_up"`
	NodesHealthy int  `json:"nodes_healthy"`
	AllHealthy   bool `json:"all_healthy"`
	// UnrepairedDamage counts damaged blocks across the population at the
	// end: marked damage from the final scrape, overridden by on-disk
	// manifest verification for durable fleets.
	UnrepairedDamage int          `json:"unrepaired_damage"`
	Converged        bool         `json:"converged"`
	PerNode          []NodeSample `json:"per_node"`
}

// Report is the machine-readable record of one fleet run.
type Report struct {
	Nodes    int          `json:"nodes"`
	AUs      int          `json:"aus"`
	Seed     uint64       `json:"seed"`
	Elapsed  Duration     `json:"elapsed"`
	Config   Config       `json:"config"`
	FaultLog []FaultEvent `json:"fault_log"`
	Samples  []Sample     `json:"samples"`
	Final    Final        `json:"final"`
	// Telemetry is the fleet-wide flight-recorder sweep taken right before
	// shutdown: merged latency quantiles and the cross-node poll timeline.
	Telemetry TelemetrySummary `json:"telemetry"`
}

// newSampleAggregate allocates the aggregate map with its known keys.
func newSampleAggregate() map[string]float64 {
	m := make(map[string]float64, len(aggregateKeys))
	for _, k := range aggregateKeys {
		m[k.field] = 0
	}
	return m
}

// Summary renders the human table: the time series of population health and
// repair progress, the fault log, and the verdict.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet run: %d nodes, %d AUs, seed %d, %v\n\n", r.Nodes, r.AUs, r.Seed, r.Elapsed)
	fmt.Fprintf(&b, "%10s %5s %8s %8s %8s %8s %8s %8s\n",
		"t", "up", "healthy", "damaged", "polls", "alarms", "repairs", "drops")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%10v %5d %8d %8.0f %8.0f %8.0f %8.0f %8.0f\n",
			s.At, s.NodesUp, s.NodesHealthy, s.DamagedBlocks,
			s.Aggregate["polls_concluded"], s.Aggregate["alarms"],
			s.Aggregate["repairs_received"], s.Aggregate["transport_drops"])
	}
	if len(r.FaultLog) > 0 {
		b.WriteString("\nfaults:\n")
		for _, ev := range r.FaultLog {
			if ev.Error != "" {
				fmt.Fprintf(&b, "  %10v %s FAILED: %s\n", ev.At, ev.Fault.Kind, ev.Error)
			} else {
				fmt.Fprintf(&b, "  %10v %s\n", ev.At, ev.Desc)
			}
		}
	}
	r.Telemetry.render(&b)
	verdict := "CONVERGED"
	if !r.Final.Converged {
		verdict = "NOT CONVERGED"
	}
	health := "all healthy"
	if !r.Final.AllHealthy {
		health = fmt.Sprintf("%d/%d healthy", r.Final.NodesHealthy, r.Nodes)
	}
	fmt.Fprintf(&b, "\nfinal: %s — %d unrepaired damaged blocks, %d/%d nodes up, %s\n",
		verdict, r.Final.UnrepairedDamage, r.Final.NodesUp, r.Nodes, health)
	return b.String()
}
